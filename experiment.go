package rescq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/experiments"
)

// ExperimentIDs lists the regenerable paper artifacts in evaluation order.
var ExperimentIDs = []string{
	"table1", "table3", "fig3", "fig5", "fig10", "fig11", "fig12",
	"fig13", "fig14", "fig15", "fig16", "appendixA2", "mst-timing",
	"ablation", "heatmap",
}

// Experiment regenerates one paper table or figure and returns its rendered
// report. When quick is true the simulation-backed experiments run a
// reduced sweep (small benchmarks, fewer seeds) that finishes in seconds;
// the full sweeps reproduce the paper's exact configurations.
func Experiment(id string, quick bool) (string, error) {
	o := experiments.Options{Quick: quick}
	switch id {
	case "table1":
		return experiments.Table1().Text, nil
	case "table3":
		return experiments.Table3().Text, nil
	case "fig3":
		return experiments.Figure3(100).Text, nil
	case "fig5":
		r, err := experiments.Figure5(o)
		return r.Text, err
	case "fig10":
		r, err := experiments.Figure10(o)
		return r.Text, err
	case "fig11":
		r, err := experiments.Figure11(o)
		return r.Text, err
	case "fig12":
		r, err := experiments.Figure12(o)
		return r.Text, err
	case "fig13":
		r, err := experiments.Figure13(o)
		return r.Text, err
	case "fig14":
		r, err := experiments.Figure14(o)
		return r.Text, err
	case "fig15":
		return experiments.Figure15(), nil
	case "fig16":
		return experiments.Figure16().Text, nil
	case "appendixA2":
		return experiments.AppendixA2().Text, nil
	case "mst-timing":
		return experiments.MSTTiming().Text, nil
	case "ablation":
		r, err := experiments.Ablation(o)
		return r.Text, err
	case "heatmap":
		r, err := experiments.Heatmap(o, "gcm_n13")
		return r.Text, err
	}
	return "", fmt.Errorf("rescq: unknown experiment %q (known: %s)", id, strings.Join(knownIDs(), ", "))
}

func knownIDs() []string {
	ids := append([]string(nil), ExperimentIDs...)
	sort.Strings(ids)
	return ids
}
