package rescq

import (
	"reflect"
	"testing"
)

// TestParallelDeterminism asserts that Options.Parallel changes only the
// execution strategy, never the results: the pooled Summary must be
// byte-identical to serial execution, including per-run latencies and
// aggregate statistics, because runs are self-contained and aggregated in
// seed order.
func TestParallelDeterminism(t *testing.T) {
	for _, sched := range []SchedulerKind{RESCQ, Greedy} {
		serial, err := Run("gcm_n13", Options{Scheduler: sched, Runs: 4})
		if err != nil {
			t.Fatalf("serial %s: %v", sched, err)
		}
		parallel, err := Run("gcm_n13", Options{Scheduler: sched, Runs: 4, Parallel: true})
		if err != nil {
			t.Fatalf("parallel %s: %v", sched, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%s: parallel Summary differs from serial\nserial:   %+v\nparallel: %+v",
				sched, serial, parallel)
		}
	}
}

// TestParallelDeterminismWithCompression covers the compressed-grid path,
// whose layout RNG is derived per run index and must not depend on
// worker interleaving.
func TestParallelDeterminismWithCompression(t *testing.T) {
	opts := Options{Scheduler: RESCQ, Runs: 3, Compression: 0.5}
	serial, err := Run("vqe_n13", opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = true
	parallel, err := Run("vqe_n13", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("parallel compressed-grid Summary differs from serial")
	}
}
