package rescq

import (
	"strings"
	"testing"
)

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 23 {
		t.Fatalf("Benchmarks = %d entries, want 23", len(bs))
	}
	if bs[0].Name != "ising_n34" {
		t.Errorf("first benchmark = %s, want ising_n34 (Table 3 order)", bs[0].Name)
	}
}

func TestRunFacade(t *testing.T) {
	sum, err := Run("vqe_n13", Options{Scheduler: RESCQ, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanCycles <= 0 || len(sum.Runs) != 2 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.MinCycles > sum.MaxCycles {
		t.Error("min > max")
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown benchmark should error")
	}
}

// Options.Validate / withDefaults / Canonical coverage lives in
// options_test.go.

func TestRunCircuitText(t *testing.T) {
	text := "qubits 3\n3\nh 0\ncx 0 1\nrz 1 pi/3\n"
	sum, err := RunCircuitText("hand", text, Options{Scheduler: Greedy, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanCycles <= 0 {
		t.Error("nonpositive cycles")
	}
	if _, err := RunCircuitText("bad", "not a circuit", Options{}); err == nil {
		t.Error("garbage circuit should error")
	}
}

func TestBenchmarkCircuitTextRoundTrip(t *testing.T) {
	text, err := BenchmarkCircuitText("vqe_n13")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RunCircuitText("vqe_n13", text, Options{Scheduler: AutoBraid, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanCycles <= 0 {
		t.Error("round-tripped circuit did not run")
	}
	if _, err := BenchmarkCircuitText("nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestRESCQBeatsBaselineFacade(t *testing.T) {
	base, err := Run("gcm_n13", Options{Scheduler: Greedy, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	rq, err := Run("gcm_n13", Options{Scheduler: RESCQ, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rq.MeanCycles >= base.MeanCycles {
		t.Errorf("RESCQ %v cycles should beat greedy %v", rq.MeanCycles, base.MeanCycles)
	}
}

func TestCompressionOption(t *testing.T) {
	sum, err := Run("vqe_n13", Options{Scheduler: RESCQ, Runs: 1, Compression: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanCycles <= 0 {
		t.Error("compressed run failed")
	}
}

func TestExperimentDispatch(t *testing.T) {
	for _, id := range []string{"table1", "table3", "fig3", "fig15", "fig16", "appendixA2"} {
		out, err := Experiment(id, true)
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if len(out) == 0 {
			t.Errorf("%s: empty output", id)
		}
	}
	if _, err := Experiment("bogus", true); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestExperimentQuickSimulationBacked(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	out, err := Experiment("fig5", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CNOT latency") {
		t.Error("fig5 output incomplete")
	}
}
