// Package rescq is the public API of the RESCQ reproduction: a realtime
// scheduler for continuous-angle quantum error correction architectures
// (Sethi & Baker, ASPLOS 2025), together with the full simulation substrate
// the paper's evaluation needs — surface-code lattice model, RUS
// state-preparation model, Table 3 benchmark generators, the greedy and
// AutoBraid static baselines, and drivers for every table and figure.
//
// The typical entry point is Run:
//
//	sum, err := rescq.Run("gcm_n13", rescq.Options{Scheduler: rescq.RESCQ})
//
// which simulates a Table 3 benchmark on a fresh STAR grid and returns
// pooled statistics over the configured seeds. RunCircuitText accepts any
// circuit in the artifact's text format instead of a named benchmark, and
// Experiment regenerates a specific paper table or figure as text.
//
// # Layouts and the scheduler registry
//
// Both evaluation axes are open registries rather than closed enums, so
// topology- and policy-sensitivity studies plug in new design points
// without touching this package:
//
//   - Lattice layouts (internal/lattice): Options.Layout names a
//     registered layout, Options.LayoutParams passes its knobs. Built-ins
//     are "star" (the paper's STAR grid and the default — a layout-unset
//     run is byte-identical to the pre-registry code), "linear" (a single
//     block row, the adversarial routing topology), "compact" (the STAR
//     grid with a deterministic fraction of ancillas removed, i.e. paper
//     section 5.3 grid compression as a first-class tiling) and "custom"
//     (an arbitrary tiling from a JSON spec, see the lattice package).
//     New tilings register via lattice.Register(name, builder) and are
//     immediately valid Options.Layout values; Layouts and LayoutCatalog
//     enumerate them.
//   - Schedulers (internal/sched): Options.Scheduler names a registered
//     policy. The paper's three are built in ("greedy", "autobraid" from
//     the sched package itself, "rescq" registered by internal/core); new
//     policies register via sched.Register(name, constructor) taking
//     structured sched.Params and are immediately runnable through Run.
//     Schedulers enumerates them.
//
// The chosen layout and its params are part of a result's identity:
// Options.Canonical folds them into CacheKey (with the default star
// layout canonicalized to the empty value, so every pre-layout cache key
// is preserved), and the rescqd daemon sweeps layouts as a first-class
// grid axis and reports all registered values at GET /v1/capabilities.
//
// # Performance
//
// The simulator is engineered so the realtime scheduler's classical
// control stays realtime-cheap, mirroring the paper's section 5.4:
//
//   - MST maintenance is incremental. The RESCQ scheduler keeps one
//     working minimum spanning tree and applies only the edge weights that
//     changed between activity snapshots through the paper's O(k*sqrt(n))
//     single-edge update (section 5.4.1), falling back to a full — but
//     allocation-free, radix-sorted, O(E) — KruskalInto recompute only
//     when a snapshot changes a large fraction of the edges. Published
//     trees are cloned from the working tree and recycled through a free
//     list, so the Figure 8 pipeline allocates nothing at steady state.
//   - The engine's per-cycle loop is allocation-free: active ops live in
//     an ID-ordered list (no map iteration, no per-cycle sort), completion
//     callbacks reuse one buffer, and per-ancilla activity accounting uses
//     precomputed tile indices.
//   - Options.Parallel runs the Options.Runs seeded simulations on a
//     bounded worker pool (one worker per CPU). Each run owns its grid,
//     scheduler and RNG, and results are aggregated in seed order, so a
//     parallel Summary is byte-identical to a serial one. The experiment
//     drivers behind Experiment use the same pool to spread their
//     benchmark x scheduler x parameter sweeps over all cores.
//
// To reproduce the profile that motivated this layout:
//
//	go test -run '^$' -bench 'BenchmarkSimulatorRESCQ|BenchmarkFigure13MSTFrequency' \
//	    -cpuprofile cpu.out -benchmem .
//	go tool pprof -top cpu.out
//
// BENCH_baseline.json records the before/after numbers of the headline
// benchmarks on the reference machine.
package rescq

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/qbench"
	"repro/internal/sched"
	"repro/internal/sim"
)

// SchedulerKind selects the scheduling policy. The value is a name in the
// open scheduler registry (internal/sched): the three paper schedulers are
// built in, and new policies become valid values the moment they call
// sched.Register — no change to this package required.
type SchedulerKind string

// The three evaluated schedulers.
const (
	// Greedy is the static layered baseline with BFS shortest-path
	// routing (Javadi-Abhari et al.).
	Greedy SchedulerKind = "greedy"
	// AutoBraid is the static layered baseline with row/column braid
	// routing (Hua et al.).
	AutoBraid SchedulerKind = "autobraid"
	// RESCQ is the paper's realtime scheduler.
	RESCQ SchedulerKind = "rescq"
)

// Options configures a simulation. The JSON field names are the wire
// format of the rescqd daemon's job requests (see internal/service).
type Options struct {
	// Scheduler picks the policy by registry name; default RESCQ. See
	// Schedulers() for the registered names.
	Scheduler SchedulerKind `json:"scheduler,omitempty"`
	// Layout picks the lattice layout by registry name; default "star",
	// the paper's STAR grid. See Layouts() for the registered names.
	Layout string `json:"layout,omitempty"`
	// LayoutParams passes layout-specific knobs to the builder (e.g. the
	// "compact" layout's "fraction", or the "custom" layout's JSON
	// "spec"). The chosen layout and its params are part of a result's
	// identity and are folded into CacheKey.
	LayoutParams map[string]string `json:"layout_params,omitempty"`
	// Distance is the surface code distance d; default 7.
	Distance int `json:"distance,omitempty"`
	// PhysError is the physical qubit error rate p; default 1e-4.
	PhysError float64 `json:"phys_error,omitempty"`
	// K is RESCQ's MST recomputation period in cycles; default 25.
	K int `json:"k,omitempty"`
	// TauMST is RESCQ's modeled MST computation latency; default 100.
	TauMST int `json:"tau_mst,omitempty"`
	// Compression removes ancillas down to the STAR compressed blocks:
	// 0 keeps all three ancillas per data qubit, 1 compresses every
	// block to a single ancilla (paper section 5.3).
	Compression float64 `json:"compression,omitempty"`
	// Runs is the number of independent seeded runs; default 3.
	Runs int `json:"runs,omitempty"`
	// Seed is the base random seed; run i uses Seed+i. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// Parallel executes the Runs seeded simulations concurrently on a
	// bounded worker pool (one worker per CPU). Results are aggregated in
	// seed order, so the Summary is byte-identical to a serial run.
	Parallel bool `json:"parallel,omitempty"`
}

func (o Options) withDefaults() Options {
	if o.Scheduler == "" {
		o.Scheduler = RESCQ
	}
	if o.Distance == 0 {
		o.Distance = 7
	}
	if o.PhysError == 0 {
		o.PhysError = 1e-4
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Canonical returns the options in canonical form: defaults applied and
// execution-only fields normalized away. Two Options values that produce
// byte-identical Summaries for the same circuit have equal canonical forms;
// in particular Parallel is cleared (it changes how the seeded runs are
// scheduled, never what they compute) and the K/TauMST knobs of the RESCQ
// scheduler are zeroed for the static baselines, which ignore them. The
// rescqd daemon keys its result cache on this form via CacheKey.
func (o Options) Canonical() Options {
	o = o.withDefaults()
	o.Parallel = false
	// The default layout's explicit and implicit spellings share one
	// canonical form: the zero value, which keeps every pre-layout cache
	// key (and golden file) stable. An unset layout WITH params first
	// materializes the default name, so it cannot alias the plain default
	// key (the params would otherwise be dropped from the hash).
	if o.Layout == "" {
		o.Layout = lattice.DefaultLayout
	}
	if o.Layout == lattice.DefaultLayout && len(o.LayoutParams) == 0 {
		o.Layout = ""
	}
	if len(o.LayoutParams) == 0 {
		o.LayoutParams = nil
	}
	if o.Scheduler != RESCQ {
		o.K = 0
		o.TauMST = 0
	} else {
		// Materialize the engine-side defaults so the implicit and
		// explicit spellings of the paper's operating point (K=25,
		// TauMST=100) share one canonical form. Read from
		// core.DefaultConfig so a future change to the engine's operating
		// point cannot silently diverge from the cache keys.
		def := core.DefaultConfig()
		if o.K <= 0 {
			o.K = def.K
		}
		if o.TauMST < 0 {
			o.TauMST = 0
		} else if o.TauMST == 0 {
			o.TauMST = def.TauMST
		}
	}
	return o
}

// CacheKey returns a stable hex digest identifying the result of simulating
// the given circuit identity (a benchmark name or the full circuit text —
// callers must choose an unambiguous encoding, e.g. "bench:gcm_n13" vs
// "text:<sha>") under the canonical form of o. Equal keys guarantee equal
// Summaries, which is what makes memoizing simulation results sound.
func CacheKey(circuit string, o Options) string {
	c := o.Canonical()
	h := sha256.New()
	fmt.Fprintf(h, "%d:%s\x00sched=%s d=%d p=%.17g k=%d tau=%d comp=%.17g runs=%d seed=%d",
		len(circuit), circuit, c.Scheduler, c.Distance, c.PhysError, c.K, c.TauMST,
		c.Compression, c.Runs, c.Seed)
	// The layout component is appended only for non-default layouts, so
	// every key minted before layouts existed (canonical layout == "")
	// remains byte-identical.
	if c.Layout != "" {
		fmt.Fprintf(h, "\x00layout=%s params=%s", c.Layout, lattice.Params(c.LayoutParams).Canonical())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	o = o.withDefaults()
	if !sched.Known(string(o.Scheduler)) {
		return fmt.Errorf("rescq: unknown scheduler %q (registered: %s)",
			o.Scheduler, strings.Join(sched.Names(), ", "))
	}
	if !lattice.Known(o.Layout) {
		return fmt.Errorf("rescq: unknown layout %q (registered: %s)",
			o.Layout, strings.Join(lattice.Layouts(), ", "))
	}
	if err := lattice.ValidateParams(o.Layout, lattice.Params(o.LayoutParams)); err != nil {
		return fmt.Errorf("rescq: %w", err)
	}
	if o.Distance < 3 || o.Distance%2 == 0 {
		return fmt.Errorf("rescq: distance %d must be odd and >= 3", o.Distance)
	}
	if o.PhysError <= 0 || o.PhysError >= 0.5 {
		return fmt.Errorf("rescq: physical error rate %v out of range", o.PhysError)
	}
	if o.Compression < 0 || o.Compression > 1 {
		return fmt.Errorf("rescq: compression %v out of [0,1]", o.Compression)
	}
	if o.Runs < 1 {
		return fmt.Errorf("rescq: runs must be positive")
	}
	if o.K < 0 || o.TauMST < 0 {
		return fmt.Errorf("rescq: k and tau_mst must be non-negative")
	}
	return nil
}

// Result reports one seeded simulation run.
type Result struct {
	Scheduler string `json:"scheduler"`
	Benchmark string `json:"benchmark"`
	Seed      int64  `json:"seed"`
	// TotalCycles is the program makespan in lattice-surgery cycles.
	TotalCycles int `json:"total_cycles"`
	// CNOTLatencies / RzLatencies give per-gate completion latency in
	// cycles from readiness to completion (Figure 5's quantity). They can
	// run to tens of thousands of entries per run; the rescqd daemon
	// strips them from responses unless the request asks for them.
	CNOTLatencies []int `json:"cnot_latencies,omitempty"`
	RzLatencies   []int `json:"rz_latencies,omitempty"`
	// MeanIdleFraction averages each data qubit's idle share.
	MeanIdleFraction float64 `json:"mean_idle_fraction"`
	PrepsStarted     int     `json:"preps_started"`
	InjectionsCount  int     `json:"injections_count"`
	EdgeRotations    int     `json:"edge_rotations"`
}

// Summary pools the runs of one configuration. Its JSON encoding is the
// rescqd daemon's result payload.
type Summary struct {
	Benchmark  string   `json:"benchmark"`
	Scheduler  string   `json:"scheduler"`
	Runs       []Result `json:"runs"`
	MeanCycles float64  `json:"mean_cycles"`
	MinCycles  int      `json:"min_cycles"`
	MaxCycles  int      `json:"max_cycles"`
	StdCycles  float64  `json:"std_cycles"`
	MeanIdle   float64  `json:"mean_idle"`
}

// BenchmarkInfo describes one Table 3 benchmark.
type BenchmarkInfo struct {
	Name      string `json:"name"`
	Suite     string `json:"suite"`
	Qubits    int    `json:"qubits"`
	PaperRz   int    `json:"paper_rz"`
	PaperCNOT int    `json:"paper_cnot"`
}

// Benchmarks lists the Table 3 suite in the paper's order.
func Benchmarks() []BenchmarkInfo {
	specs := qbench.All()
	out := make([]BenchmarkInfo, len(specs))
	for i, s := range specs {
		out[i] = BenchmarkInfo{Name: s.Name, Suite: s.Suite, Qubits: s.Qubits,
			PaperRz: s.PaperRz, PaperCNOT: s.PaperCNOT}
	}
	return out
}

// BenchmarkCircuitText returns the named benchmark circuit rendered in the
// artifact's text format (usable with RunCircuitText or external tools).
func BenchmarkCircuitText(name string) (string, error) {
	spec, ok := qbench.ByName(name)
	if !ok {
		return "", fmt.Errorf("rescq: unknown benchmark %q", name)
	}
	return circuit.Format(spec.Circuit()), nil
}

// Run simulates a named Table 3 benchmark under the given options.
func Run(benchmark string, opts Options) (Summary, error) {
	return RunContext(context.Background(), benchmark, opts)
}

// RunContext is Run with cooperative cancellation: every seeded run polls
// ctx inside the engine's cycle loop, so cancelling the context aborts a
// long simulation mid-run (the rescqd daemon uses this to honor job
// cancellation promptly instead of at configuration boundaries). The
// returned error wraps ctx.Err() when the run was aborted.
func RunContext(ctx context.Context, benchmark string, opts Options) (Summary, error) {
	spec, ok := qbench.ByName(benchmark)
	if !ok {
		return Summary{}, fmt.Errorf("rescq: unknown benchmark %q (see Benchmarks())", benchmark)
	}
	return runCircuit(ctx, spec.Circuit(), opts)
}

// RunCircuitText simulates a circuit given in the artifact text format:
// the gate count on the first line, then one "<gate> <qubits> [angle]" per
// line (see internal/circuit for the accepted angle syntaxes).
func RunCircuitText(name, text string, opts Options) (Summary, error) {
	return RunCircuitTextContext(context.Background(), name, text, opts)
}

// RunCircuitTextContext is RunCircuitText with cooperative cancellation
// (see RunContext).
func RunCircuitTextContext(ctx context.Context, name, text string, opts Options) (Summary, error) {
	c, err := circuit.ParseString(name, text)
	if err != nil {
		return Summary{}, err
	}
	return runCircuit(ctx, c, opts)
}

func runCircuit(ctx context.Context, c *circuit.Circuit, opts Options) (Summary, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return Summary{}, err
	}
	cfg := sim.Config{Distance: opts.Distance, PhysError: opts.PhysError}
	sum := Summary{Benchmark: c.Name, Scheduler: string(opts.Scheduler)}
	// Each seeded run is self-contained (own grid, scheduler, RNG), so the
	// runs fan out over the bounded pool when Parallel is set; per-index
	// result slots plus seed-order aggregation keep the Summary
	// byte-identical to serial execution.
	results := make([]*sim.Result, opts.Runs)
	errs := make([]error, opts.Runs)
	workers := 1
	if opts.Parallel {
		workers = 0 // GOMAXPROCS
	}
	// The layout build is deterministic in (n, params) and can be
	// expensive (compact's compression search, custom's spec parse), so
	// build it once and hand each seeded run its own clone to mutate.
	baseGrid, err := lattice.Build(opts.Layout, c.NumQubits, lattice.Params(opts.LayoutParams))
	if err != nil {
		return Summary{}, err
	}
	sim.ParallelFor(opts.Runs, workers, func(i int) {
		g := baseGrid.Clone()
		if opts.Compression > 0 {
			g.Compress(opts.Compression, rand.New(rand.NewSource(opts.Seed+int64(i)*7919)))
		}
		s, err := newScheduler(opts)
		if err != nil {
			errs[i] = err
			return
		}
		results[i], errs[i] = sim.RunSeededContext(ctx, g, c, cfg, opts.Seed+int64(i), s)
	})
	for _, err := range errs {
		if err != nil {
			return Summary{}, err
		}
	}
	for _, res := range results {
		sum.Runs = append(sum.Runs, Result{
			Scheduler:        res.Scheduler,
			Benchmark:        res.Benchmark,
			Seed:             res.Seed,
			TotalCycles:      res.TotalCycles,
			CNOTLatencies:    res.CNOTLatencies,
			RzLatencies:      res.RzLatencies,
			MeanIdleFraction: res.MeanIdleFraction,
			PrepsStarted:     res.PrepsStarted,
			InjectionsCount:  res.InjectionsStarted,
			EdgeRotations:    res.EdgeRotations,
		})
	}
	agg := sim.AggregateResults(results)
	sum.MeanCycles = agg.MeanCycles
	sum.MinCycles = agg.MinCycles
	sum.MaxCycles = agg.MaxCycles
	sum.StdCycles = agg.StdCycles
	sum.MeanIdle = agg.MeanIdle
	return sum, nil
}

func newScheduler(opts Options) (sim.Scheduler, error) {
	return sched.New(string(opts.Scheduler), sched.Params{K: opts.K, TauMST: opts.TauMST})
}

// DefaultLayout is the layout used when Options.Layout is unset: the
// paper's STAR grid.
const DefaultLayout = lattice.DefaultLayout

// Schedulers lists the registered scheduler names, sorted. The paper's
// three ("greedy", "autobraid", "rescq") are always present; policies
// added via sched.Register appear automatically.
func Schedulers() []string { return sched.Names() }

// Layouts lists the registered lattice layout names, sorted. The built-ins
// are "star" (the default), "linear", "compact" and "custom"; layouts
// added via lattice.Register appear automatically.
func Layouts() []string { return lattice.Layouts() }

// LayoutInfo describes one registered layout for discovery surfaces (the
// daemon's capabilities endpoint, the CLIs).
type LayoutInfo struct {
	Name        string            `json:"name"`
	Description string            `json:"description"`
	Params      map[string]string `json:"params,omitempty"`
}

// LayoutCatalog returns the registered layouts with their descriptions and
// documented params, sorted by name.
func LayoutCatalog() []LayoutInfo {
	descs := lattice.Describe()
	out := make([]LayoutInfo, len(descs))
	for i, d := range descs {
		out[i] = LayoutInfo{Name: d.Name, Description: d.Description, Params: d.Params}
	}
	return out
}
