package rescq

// bench_test.go is the benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation. Each benchmark regenerates its
// artifact through the experiment drivers and reports the headline metric
// via b.ReportMetric so `go test -bench=. -benchmem` prints the rows the
// paper reports.
//
// By default the simulation-backed experiments run in quick mode (small
// benchmarks, fewer seeds) so the whole harness completes in a couple of
// minutes; set REPRO_FULL=1 to run the paper's full sweeps (about an hour).
// `go run ./cmd/rescq-bench -all` prints the full rendered reports.

import (
	"os"
	"testing"

	"repro/internal/experiments"
	"repro/internal/graph"
)

func benchOpts() experiments.Options {
	if os.Getenv("REPRO_FULL") == "1" {
		return experiments.Options{}
	}
	return experiments.Options{Quick: true, Runs: 1}
}

// BenchmarkTable1InjectionStrategies regenerates Table 1.
func BenchmarkTable1InjectionStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1()
		if r.ZZ.Cycles != 1 || r.CNOT.Cycles != 2 {
			b.Fatal("Table 1 wrong")
		}
	}
}

// BenchmarkTable3BenchmarkSuite regenerates Table 3 (all 23 circuits).
func BenchmarkTable3BenchmarkSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table3()
		if len(r.Rows) != 23 {
			b.Fatal("Table 3 wrong")
		}
	}
}

// BenchmarkFigure3FidelityModel regenerates Figure 3's capacity curves.
func BenchmarkFigure3FidelityModel(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3(100)
		ratio = r.Ratio[1e-7]
	}
	b.ReportMetric(ratio, "RzOverT_capacity")
}

// BenchmarkFigure5LatencyHistograms regenerates the per-gate latency
// histograms for AutoBraid and RESCQ.
func BenchmarkFigure5LatencyHistograms(b *testing.B) {
	var frac2 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		frac2 = r.CNOT["rescq"].Fraction(2)
	}
	b.ReportMetric(100*frac2, "rescq_cnot_2cycle_%")
}

// BenchmarkFigure10NormalizedExecution regenerates the headline comparison
// and reports the geomean RESCQ* speedup over the greedy baseline.
func BenchmarkFigure10NormalizedExecution(b *testing.B) {
	var geomean float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		geomean = r.GeomeanVsGreedy
	}
	b.ReportMetric(geomean, "geomean_speedup")
}

// BenchmarkFigure11DistanceSensitivity regenerates the code-distance sweep.
func BenchmarkFigure11DistanceSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure11(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure12ErrorRateSensitivity regenerates the error-rate sweep.
func BenchmarkFigure12ErrorRateSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure12(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure13MSTFrequency regenerates RESCQ's k-sensitivity study.
func BenchmarkFigure13MSTFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure13(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure14Compression regenerates the grid-compression study and
// reports RESCQ's advantage at full compression.
func BenchmarkFigure14Compression(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure14(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, bySched := range r.Cycles {
			n := len(r.Compressions)
			gain = bySched["greedy"][n-1] / bySched["rescq"][n-1]
		}
	}
	b.ReportMetric(gain, "rescq_gain_at_100%")
}

// BenchmarkFigure15GridRendering regenerates the compression grid examples.
func BenchmarkFigure15GridRendering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.Figure15(); len(s) == 0 {
			b.Fatal("empty render")
		}
	}
}

// BenchmarkFigure16PrepModel regenerates the preparation-model curves.
func BenchmarkFigure16PrepModel(b *testing.B) {
	var cyclesD7 float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure16()
		cyclesD7 = r.Cycles[1e-4][2] // d = 7
	}
	b.ReportMetric(cyclesD7, "prep_cycles_d7_p1e-4")
}

// BenchmarkAppendixA2TInjection regenerates the Clifford+T comparison.
func BenchmarkAppendixA2TInjection(b *testing.B) {
	var hi float64
	for i := 0; i < b.N; i++ {
		r := experiments.AppendixA2()
		hi = r.OverHi
	}
	b.ReportMetric(hi, "tinjection_overhead_x")
}

// BenchmarkAblationStudy regenerates the design-choice ablation: RESCQ
// with each mechanism (parallel prep, eager prep, MST routing) disabled in
// isolation.
func BenchmarkAblationStudy(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, byVariant := range r.Cycles {
			overhead = byVariant["no-parallel-prep"] / byVariant["full"]
		}
	}
	b.ReportMetric(overhead, "no_parallel_prep_slowdown")
}

// BenchmarkMSTCompute measures the full Kruskal MST on a 100x100 grid
// (section 5.4.1; the paper's figure for this size is ~92us with k=200
// incremental updates on an M2).
func BenchmarkMSTCompute(b *testing.B) {
	g := graph.GridGraph(100, 100, 0)
	for e := 0; e < g.NumEdges(); e++ {
		g.SetWeight(e, float64((e*2654435761)%1000)/1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Kruskal(g)
	}
}

// BenchmarkMSTIncrementalUpdate measures one incremental edge update on a
// maintained 100x100 MST (the O(k*sqrt(n)) path of section 5.4.1).
func BenchmarkMSTIncrementalUpdate(b *testing.B) {
	g := graph.GridGraph(100, 100, 0)
	for e := 0; e < g.NumEdges(); e++ {
		g.SetWeight(e, float64((e*2654435761)%1000)/1000)
	}
	tr := graph.Kruskal(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.UpdateWeight((i*7919)%g.NumEdges(), float64((i*104729)%1000)/1000)
	}
}

// BenchmarkMSTIncrementalUpdate1000 is the 1000x1000 point of the same
// analysis (~330us per k=200 batch in the paper).
func BenchmarkMSTIncrementalUpdate1000(b *testing.B) {
	g := graph.GridGraph(1000, 1000, 0)
	for e := 0; e < g.NumEdges(); e++ {
		g.SetWeight(e, float64((e*2654435761)%1000)/1000)
	}
	tr := graph.Kruskal(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.UpdateWeight((i*7919)%g.NumEdges(), float64((i*104729)%1000)/1000)
	}
}

// BenchmarkSimulatorRESCQ measures raw simulator throughput: one full
// RESCQ run of gcm_n13 at the paper's operating point.
func BenchmarkSimulatorRESCQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run("gcm_n13", Options{Scheduler: RESCQ, Runs: 1, Seed: int64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorGreedy is the baseline counterpart.
func BenchmarkSimulatorGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run("gcm_n13", Options{Scheduler: Greedy, Runs: 1, Seed: int64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}
