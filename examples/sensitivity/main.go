// Sensitivity: the paper's section 5.2 studies, on one representative
// benchmark — how execution time responds to the code distance d, the
// physical error rate p, and RESCQ's MST recomputation period k.
package main

import (
	"fmt"
	"log"

	rescq "repro"
)

const bench = "qft_n18"

func main() {
	fmt.Printf("Sensitivity studies on %s (3 seeds per point)\n\n", bench)
	distanceSweep()
	errorRateSweep()
	kSweep()
}

// distanceSweep mirrors Figure 11: cycles improve with d because each
// lattice-surgery cycle packs d measurement rounds, so RUS preparation
// completes in fewer cycles; RESCQ is nearly flat because preparation is
// parallelized away from the critical path.
func distanceSweep() {
	fmt.Println("Code distance sweep (p=1e-4):")
	fmt.Printf("  %-10s %8s %8s\n", "d", "greedy", "rescq")
	for _, d := range []int{5, 7, 9, 11, 13} {
		g := mustRun(rescq.Options{Scheduler: rescq.Greedy, Distance: d})
		r := mustRun(rescq.Options{Scheduler: rescq.RESCQ, Distance: d})
		fmt.Printf("  %-10d %8.0f %8.0f\n", d, g.MeanCycles, r.MeanCycles)
	}
	fmt.Println()
}

// errorRateSweep mirrors Figure 12: all schedulers are comparatively
// insensitive to p in this regime.
func errorRateSweep() {
	fmt.Println("Physical error rate sweep (d=7):")
	fmt.Printf("  %-10s %8s %8s\n", "p", "greedy", "rescq")
	for _, p := range []float64{1e-3, 3e-4, 1e-4, 3e-5, 1e-5} {
		g := mustRun(rescq.Options{Scheduler: rescq.Greedy, PhysError: p})
		r := mustRun(rescq.Options{Scheduler: rescq.RESCQ, PhysError: p})
		fmt.Printf("  %-10.0e %8.0f %8.0f\n", p, g.MeanCycles, r.MeanCycles)
	}
	fmt.Println()
}

// kSweep mirrors Figure 13: recomputing the MST less often (larger k)
// costs almost nothing, because load balancing via activity weights keeps
// working across stale windows.
func kSweep() {
	fmt.Println("RESCQ MST recomputation period sweep (d=7, p=1e-4):")
	fmt.Printf("  %-10s %8s\n", "k", "rescq")
	for _, k := range []int{25, 50, 100, 200} {
		r := mustRun(rescq.Options{Scheduler: rescq.RESCQ, K: k})
		fmt.Printf("  %-10d %8.0f\n", k, r.MeanCycles)
	}
}

func mustRun(opts rescq.Options) rescq.Summary {
	sum, err := rescq.Run(bench, opts)
	if err != nil {
		log.Fatal(err)
	}
	return sum
}
