// Tradeoff: the paper's motivation in numbers (Figure 3 and Appendix A.2)
// — why continuous-angle architectures beat Clifford+T synthesis for
// near-term fault-tolerant machines. Uses the experiment drivers through
// the public Experiment entry point.
package main

import (
	"fmt"
	"log"

	rescq "repro"
)

func main() {
	// Appendix A.2: per-rotation cycle cost, continuous-angle injection
	// vs a synthesized T-gate sequence.
	a2, err := rescq.Experiment("appendixA2", true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a2)

	// Figure 3: how many rotations fit in a program before the target
	// fidelity is lost, per compilation strategy.
	fig3, err := rescq.Experiment("fig3", true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig3)

	// Figure 16: the preparation model behind the simulator.
	fig16, err := rescq.Experiment("fig16", true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig16)
}
