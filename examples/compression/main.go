// Compression: the paper's hardware-software co-design study (section
// 5.3). Near-term devices cannot afford three ancilla tiles per data
// qubit; this example sweeps grid compression from the full STAR layout
// down to one ancilla per data qubit and shows that the static baselines
// crater while RESCQ degrades gracefully.
package main

import (
	"fmt"
	"log"

	rescq "repro"
)

func main() {
	const bench = "gcm_n13"
	schedulers := []rescq.SchedulerKind{rescq.Greedy, rescq.AutoBraid, rescq.RESCQ}
	compressions := []float64{0, 0.25, 0.5, 0.75, 1.0}

	fmt.Printf("Grid compression study on %s (d=7, p=1e-4, 3 seeds per point)\n\n", bench)
	fmt.Printf("%-12s", "compression")
	for _, s := range schedulers {
		fmt.Printf("  %10s", s)
	}
	fmt.Printf("  %12s\n", "RESCQ gain")

	for _, c := range compressions {
		means := map[rescq.SchedulerKind]float64{}
		for _, s := range schedulers {
			sum, err := rescq.Run(bench, rescq.Options{
				Scheduler:   s,
				Compression: c,
			})
			if err != nil {
				log.Fatal(err)
			}
			means[s] = sum.MeanCycles
		}
		fmt.Printf("%10.0f%%", 100*c)
		for _, s := range schedulers {
			fmt.Printf("  %10.0f", means[s])
		}
		fmt.Printf("  %11.2fx\n", means[rescq.Greedy]/means[rescq.RESCQ])
	}

	fmt.Println("\nExpected shape (paper Figure 14): baseline cycles grow steeply with")
	fmt.Println("compression; RESCQ's realtime queues absorb most of the contention,")
	fmt.Println("keeping an average >1.65x advantage even at one ancilla per data qubit.")
}
