// Quickstart: simulate one benchmark under all three schedulers and under
// a hand-written circuit, using only the public rescq API.
package main

import (
	"fmt"
	"log"

	rescq "repro"
)

func main() {
	// 1. Pick a benchmark from the paper's Table 3 suite.
	fmt.Println("Available benchmarks (first five):")
	for _, b := range rescq.Benchmarks()[:5] {
		fmt.Printf("  %-14s %-7s %4d qubits, %4d Rz, %4d CNOT\n",
			b.Name, b.Suite, b.Qubits, b.PaperRz, b.PaperCNOT)
	}

	// 2. Run it under each scheduler at the paper's operating point
	//    (d=7, p=1e-4).
	const bench = "gcm_n13"
	fmt.Printf("\n%s, d=7, p=1e-4, 3 seeds:\n", bench)
	var baseline float64
	for _, s := range []rescq.SchedulerKind{rescq.Greedy, rescq.AutoBraid, rescq.RESCQ} {
		sum, err := rescq.Run(bench, rescq.Options{Scheduler: s})
		if err != nil {
			log.Fatal(err)
		}
		if s == rescq.Greedy {
			baseline = sum.MeanCycles
		}
		fmt.Printf("  %-9s mean=%7.0f cycles  (min %d, max %d)  idle=%.2f  speedup vs greedy: %.2fx\n",
			s, sum.MeanCycles, sum.MinCycles, sum.MaxCycles, sum.MeanIdle,
			baseline/sum.MeanCycles)
	}

	// 3. Run a hand-written Clifford+Rz circuit in the artifact's text
	//    format: gate count first, then one gate per line.
	circuit := `qubits 4
6
h 0
cx 0 1
rz 1 pi/3
cx 1 2
rz 2 5/96
cx 2 3
`
	sum, err := rescq.RunCircuitText("ghz-with-rotations", circuit, rescq.Options{
		Scheduler: rescq.RESCQ,
		Runs:      5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhand-written circuit: mean=%.1f cycles over %d seeds (Rz latencies of run 0: %v)\n",
		sum.MeanCycles, len(sum.Runs), sum.Runs[0].RzLatencies)

	// 4. Topology sensitivity: the lattice layout is a first-class axis.
	//    "star" is the paper's grid (and the default), "linear" stretches
	//    the qubits along one row, "compact" strips the STAR grid down to
	//    about one ancilla per data qubit. See rescq.LayoutCatalog() for
	//    descriptions and params; lattice.Register adds new tilings.
	fmt.Printf("\n%s under rescq on each built-in layout:\n", bench)
	for _, layout := range []string{"star", "linear", "compact"} {
		sum, err := rescq.Run(bench, rescq.Options{Layout: layout})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s mean=%7.0f cycles  idle=%.2f\n", layout, sum.MeanCycles, sum.MeanIdle)
	}
}
