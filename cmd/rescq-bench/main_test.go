package main

import (
	"bytes"
	"strings"
	"testing"

	rescq "repro"
)

func TestListExperiments(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	lines := strings.Fields(out.String())
	if len(lines) != len(rescq.ExperimentIDs) {
		t.Fatalf("-list printed %d ids, want %d", len(lines), len(rescq.ExperimentIDs))
	}
	for i, id := range rescq.ExperimentIDs {
		if lines[i] != id {
			t.Errorf("line %d = %q, want %q", i, lines[i], id)
		}
	}
}

func TestRunOneExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "table1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "==== table1") {
		t.Errorf("missing experiment banner:\n%s", text)
	}
	if len(text) < 100 {
		t.Errorf("suspiciously short report:\n%s", text)
	}
}

func TestRunQuickSimulationExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "heatmap", "-quick"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "==== heatmap") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"bad flag", []string{"-nope"}, 2},
		{"no experiment", []string{}, 2},
		{"unknown experiment", []string{"-exp", "fig99"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run(tc.args, &out, &errOut); code != tc.code {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.code, errOut.String())
			}
			if errOut.Len() == 0 {
				t.Error("error path produced no stderr output")
			}
		})
	}
}
