// Command rescq-bench regenerates the paper's tables and figures. Each
// experiment prints the same rows or series the paper reports, rendered as
// ASCII tables/histograms.
//
// Usage:
//
//	rescq-bench -exp fig10            # one experiment, full sweep
//	rescq-bench -exp fig10 -quick     # reduced sweep (seconds)
//	rescq-bench -all -quick           # everything
//	rescq-bench -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	rescq "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main path. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rescq-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp   = fs.String("exp", "", "experiment id (see -list)")
		all   = fs.Bool("all", false, "run every experiment")
		quick = fs.Bool("quick", false, "reduced sweeps: small benchmarks, fewer seeds")
		list  = fs.Bool("list", false, "list experiment ids and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, id := range rescq.ExperimentIDs {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	ids := []string{*exp}
	if *all {
		ids = rescq.ExperimentIDs
	} else if *exp == "" {
		fmt.Fprintln(stderr, "rescq-bench: need -exp <id> or -all (use -list for ids)")
		return 2
	}
	for _, id := range ids {
		t0 := time.Now()
		out, err := rescq.Experiment(id, *quick)
		if err != nil {
			fmt.Fprintln(stderr, "rescq-bench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "==== %s (%.1fs) ====\n%s\n", id, time.Since(t0).Seconds(), out)
	}
	return 0
}
