// Command rescq-bench regenerates the paper's tables and figures. Each
// experiment prints the same rows or series the paper reports, rendered as
// ASCII tables/histograms.
//
// Usage:
//
//	rescq-bench -exp fig10            # one experiment, full sweep
//	rescq-bench -exp fig10 -quick     # reduced sweep (seconds)
//	rescq-bench -all -quick           # everything
//	rescq-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	rescq "repro"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced sweeps: small benchmarks, fewer seeds")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range rescq.ExperimentIDs {
			fmt.Println(id)
		}
		return
	}
	ids := []string{*exp}
	if *all {
		ids = rescq.ExperimentIDs
	} else if *exp == "" {
		fmt.Fprintln(os.Stderr, "rescq-bench: need -exp <id> or -all (use -list for ids)")
		os.Exit(2)
	}
	for _, id := range ids {
		t0 := time.Now()
		out, err := rescq.Experiment(id, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rescq-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", id, time.Since(t0).Seconds(), out)
	}
}
