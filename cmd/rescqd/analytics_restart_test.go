package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// analyticsIdentityQueries is the query set whose answers must survive a
// kill+restart byte-for-byte. It covers all three endpoint families over
// the resumeSweep axes.
var analyticsIdentityQueries = []string{
	"/v1/analytics/groupby?by=scheduler",
	"/v1/analytics/groupby?by=benchmark,scheduler",
	"/v1/analytics/pareto?benchmark=gcm_n13",
	"/v1/analytics/sensitivity?a=rescq&b=greedy",
}

func analyticsAnswers(t *testing.T, base string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(analyticsIdentityQueries))
	for _, q := range analyticsIdentityQueries {
		resp, err := http.Get(base + q)
		if err != nil {
			t.Fatalf("GET %s: %v", q, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %s: %v", q, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", q, resp.StatusCode, body)
		}
		out[q] = body
	}
	return out
}

// TestDaemonKillRestartAnalytics is the analytics twin of
// TestDaemonKillRestartResume: boot the daemon with a store dir, SIGKILL it
// mid-sweep, reboot on the same dir, let the resumed job finish, and assert
// every analytics query answers byte-identically to a fresh, uninterrupted
// control daemon that ran the same sweep. This is the proof that the
// snapshot+replay rebuild path and the incremental ingest path converge on
// the same aggregate state.
func TestDaemonKillRestartAnalytics(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess + real engine in -short mode")
	}
	dir := t.TempDir()

	// --- Phase 1: the daemon as a subprocess, killed mid-sweep. ---
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "RESCQD_HELPER_STORE="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		if m := listenRe.FindStringSubmatch(sc.Text()); m != nil {
			base = "http://" + m[1]
			break
		}
	}
	if base == "" {
		t.Fatal("daemon subprocess never reported its listen address")
	}
	go func() { // keep the pipe drained
		for sc.Scan() {
		}
	}()

	resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(resumeSweep))
	if err != nil {
		t.Fatalf("POST sweep: %v", err)
	}
	var submitted jobViewLite
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	resp.Body.Close()
	if submitted.ID == "" {
		t.Fatalf("submit failed: %+v", submitted)
	}

	deadline := time.Now().Add(120 * time.Second)
	killed := false
	for time.Now().Before(deadline) {
		v := getJob(t, base, submitted.ID)
		if v.Progress.Done >= 1 {
			if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatalf("SIGKILL: %v", err)
			}
			killed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !killed {
		t.Fatal("no configuration completed before the kill deadline")
	}
	cmd.Wait()

	// --- Phase 2: reboot in-process on the same store dir, let the
	// resumed job finish, and collect the analytics answers. ---
	var out, errOut bytes.Buffer
	ready := make(chan string, 1)
	exitCh := make(chan int, 1)
	go func() {
		exitCh <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-store-dir", dir},
			&out, &errOut, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("restarted daemon did not come up; stderr: %s", errOut.String())
	}
	base2 := "http://" + addr

	var resumed jobViewLite
	for end := time.Now().Add(300 * time.Second); time.Now().Before(end); time.Sleep(25 * time.Millisecond) {
		resumed = getJob(t, base2, submitted.ID)
		if resumed.State == "done" || resumed.State == "failed" || resumed.State == "cancelled" {
			break
		}
	}
	if resumed.State != "done" || resumed.Progress.Done != resumeSweepConfigs {
		t.Fatalf("resumed job = %+v (stderr: %s)", resumed, errOut.String())
	}
	resumedAnswers := analyticsAnswers(t, base2)

	drain := func(which string, ch <-chan int, errOut *bytes.Buffer) {
		t.Helper()
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case code := <-ch:
			if code != 0 {
				t.Fatalf("%s daemon exit %d; stderr: %s", which, code, errOut.String())
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("%s daemon did not drain after SIGTERM", which)
		}
	}
	drain("restarted", exitCh, &errOut)

	// --- Phase 3: a fresh daemon + fresh store dir runs the identical
	// sweep uninterrupted; its analytics answers are the reference. ---
	var cout, cerr bytes.Buffer
	cready := make(chan string, 1)
	cexit := make(chan int, 1)
	go func() {
		cexit <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-store-dir", t.TempDir()},
			&cout, &cerr, cready)
	}()
	var caddr string
	select {
	case caddr = <-cready:
	case <-time.After(30 * time.Second):
		t.Fatalf("control daemon did not come up; stderr: %s", cerr.String())
	}
	control := strings.Replace(resumeSweep, `,"async":true`, "", 1)
	cresp, err := http.Post("http://"+caddr+"/v1/sweep", "application/json", strings.NewReader(control))
	if err != nil {
		t.Fatalf("control sweep: %v", err)
	}
	var controlView jobViewLite
	if err := json.NewDecoder(cresp.Body).Decode(&controlView); err != nil {
		t.Fatalf("decode control: %v", err)
	}
	cresp.Body.Close()
	if controlView.State != "done" {
		t.Fatalf("control sweep = %+v", controlView)
	}
	controlAnswers := analyticsAnswers(t, "http://"+caddr)

	for _, q := range analyticsIdentityQueries {
		if !bytes.Equal(resumedAnswers[q], controlAnswers[q]) {
			t.Errorf("analytics answer for %s differs after kill+resume:\nresumed: %s\ncontrol: %s",
				q, resumedAnswers[q], controlAnswers[q])
		}
	}
	drain("control", cexit, &cerr)
}
