package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// bootDaemon starts run() with the given args on an ephemeral port and
// returns its base URL plus the exit channel.
func bootDaemon(t *testing.T, args []string, out, errOut *bytes.Buffer) (string, chan int) {
	t.Helper()
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() { exit <- run(args, out, errOut, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, exit
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon %v did not start; stderr: %s", args, errOut.String())
		return "", nil
	}
}

// TestClusterQuickstart is the README's three-local-processes walkthrough
// as a test: one coordinator and two workers booted through the real
// main(), a sweep submitted to the coordinator, every configuration
// executed remotely, and a clean SIGTERM drain for all three daemons.
func TestClusterQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("real daemon boot in -short mode")
	}
	var coordOut, coordErr, w1Out, w1Err, w2Out, w2Err bytes.Buffer
	coordURL, coordExit := bootDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-mode", "coordinator", "-workers", "1",
		"-heartbeat-interval", "50ms", "-liveness-expiry", "250ms", "-batch-size", "2",
	}, &coordOut, &coordErr)
	_, w1Exit := bootDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-mode", "worker", "-workers", "1",
		"-coordinator", coordURL, "-heartbeat-interval", "50ms",
	}, &w1Out, &w1Err)
	_, w2Exit := bootDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-mode", "worker", "-workers", "1",
		"-coordinator", coordURL, "-heartbeat-interval", "50ms",
	}, &w2Out, &w2Err)

	// Wait until both workers are registered.
	type clusterView struct {
		LiveWorkers   int   `json:"live_workers"`
		RemoteConfigs int64 `json:"remote_configs"`
	}
	type health struct {
		Cluster *clusterView `json:"cluster"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(coordURL + "/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		var h health
		json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if h.Cluster != nil && h.Cluster.LiveWorkers == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never registered: %+v", h.Cluster)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A 3-configuration sweep, dispatched in 2 batches across the workers.
	body := `{"benchmarks":["vqe_n13"],"distances":[3],"runs":1}`
	resp, err := http.Post(coordURL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	var view struct {
		State   string `json:"state"`
		Results []struct {
			Scheduler string `json:"scheduler"`
			Summary   *struct {
				MeanCycles float64 `json:"mean_cycles"`
			} `json:"summary"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode sweep: %v", err)
	}
	resp.Body.Close()
	if view.State != "done" || len(view.Results) != 3 {
		t.Fatalf("sweep = %+v", view)
	}
	for i, r := range view.Results {
		if r.Summary == nil || r.Summary.MeanCycles <= 0 {
			t.Fatalf("result %d (%s) has no summary", i, r.Scheduler)
		}
	}

	// The work really went over the wire.
	resp, err = http.Get(coordURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h health
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Cluster == nil || h.Cluster.RemoteConfigs != 3 {
		t.Fatalf("remote_configs = %+v, want 3", h.Cluster)
	}

	// One SIGTERM reaches all three daemons (same process); each drains.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	for name, c := range map[string]chan int{"coordinator": coordExit, "worker1": w1Exit, "worker2": w2Exit} {
		select {
		case code := <-c:
			if code != 0 {
				t.Fatalf("%s exited %d\ncoord stderr: %s\nworker stderr: %s %s",
					name, code, coordErr.String(), w1Err.String(), w2Err.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s did not drain after SIGTERM", name)
		}
	}
	for _, out := range []*bytes.Buffer{&coordOut, &w1Out, &w2Out} {
		if !strings.Contains(out.String(), "drained cleanly") {
			t.Errorf("daemon missing drain confirmation:\n%s", out.String())
		}
	}
	if !strings.Contains(w1Out.String(), "heartbeating to "+coordURL) {
		t.Errorf("worker1 stdout missing heartbeat banner:\n%s", w1Out.String())
	}
	if !strings.Contains(coordOut.String(), "mode=coordinator") {
		t.Errorf("coordinator stdout missing mode banner:\n%s", coordOut.String())
	}
}
