package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles as the helper-process entry point for the SIGKILL
// resume test: when RESCQD_HELPER_STORE is set, this binary IS the daemon.
func TestMain(m *testing.M) {
	if dir := os.Getenv("RESCQD_HELPER_STORE"); dir != "" {
		os.Exit(run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-store-dir", dir},
			os.Stdout, os.Stderr, nil))
	}
	os.Exit(m.Run())
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// resumeSweep is the kill-and-restart workload: three real-engine
// configurations, each inflated to ~30 seeded runs (hundreds of ms) so
// the SIGKILL reliably lands mid-sweep rather than after it.
const resumeSweep = `{"benchmarks":["gcm_n13"],"schedulers":["rescq","greedy","autobraid"],"runs":30,"async":true}`

const resumeSweepConfigs = 3

type jobViewLite struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Progress struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	} `json:"progress"`
	Results []json.RawMessage `json:"results"`
}

func getJob(t *testing.T, base, id string) jobViewLite {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	var v jobViewLite
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job view: %v", err)
	}
	return v
}

// TestDaemonKillRestartResume is the end-to-end durability proof on the
// real engine and a real process: boot the daemon with a store dir, start
// a multi-configuration sweep, SIGKILL the process mid-flight, reboot on
// the same store dir, and assert the resumed job's completed result set is
// byte-identical to an uninterrupted run.
func TestDaemonKillRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess + real engine in -short mode")
	}
	dir := t.TempDir()

	// --- Phase 1: the daemon as a subprocess, killed mid-sweep. ---
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "RESCQD_HELPER_STORE="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		if m := listenRe.FindStringSubmatch(sc.Text()); m != nil {
			base = "http://" + m[1]
			break
		}
	}
	if base == "" {
		t.Fatal("daemon subprocess never reported its listen address")
	}
	go func() { // keep the pipe drained
		for sc.Scan() {
		}
	}()

	resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(resumeSweep))
	if err != nil {
		t.Fatalf("POST sweep: %v", err)
	}
	var submitted jobViewLite
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	resp.Body.Close()
	if submitted.ID == "" {
		t.Fatalf("submit failed: %+v", submitted)
	}

	// Wait for at least one configuration to be checkpointed, then KILL —
	// no drain, no store close, a torn WAL tail is fair game.
	deadline := time.Now().Add(120 * time.Second)
	killed := false
	for time.Now().Before(deadline) {
		v := getJob(t, base, submitted.ID)
		if v.Progress.Done >= 1 {
			if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatalf("SIGKILL: %v", err)
			}
			killed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !killed {
		t.Fatal("no configuration completed before the kill deadline")
	}
	cmd.Wait()

	// --- Phase 2: reboot in-process on the same store dir and resume. ---
	var out, errOut bytes.Buffer
	ready := make(chan string, 1)
	exitCh := make(chan int, 1)
	go func() {
		exitCh <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-store-dir", dir},
			&out, &errOut, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("restarted daemon did not come up; stderr: %s", errOut.String())
	}
	base2 := "http://" + addr
	// The kill must have landed mid-sweep: exactly one interrupted job
	// comes back from the WAL and is re-enqueued.
	if !strings.Contains(out.String(), "1 interrupted jobs re-enqueued") {
		t.Errorf("restart banner missing the interrupted-job replay:\n%s", out.String())
	}

	var resumed jobViewLite
	for end := time.Now().Add(300 * time.Second); time.Now().Before(end); time.Sleep(25 * time.Millisecond) {
		resumed = getJob(t, base2, submitted.ID) // same job id across the restart
		if resumed.State == "done" || resumed.State == "failed" || resumed.State == "cancelled" {
			break
		}
	}
	if resumed.State != "done" || resumed.Progress.Done != resumeSweepConfigs {
		t.Fatalf("resumed job = %+v (stderr: %s)", resumed, errOut.String())
	}

	// The restarted daemon must have replayed, not recomputed: /metrics
	// shows the WAL replay counters.
	mresp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody := new(bytes.Buffer)
	mbody.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"rescqd_replayed_jobs_total 1", "rescqd_store_records"} {
		if !strings.Contains(mbody.String(), want) {
			t.Errorf("/metrics missing %q after restart", want)
		}
	}

	// Drain the restarted daemon cleanly before the control boots: an
	// in-process SIGTERM reaches every live run() instance, so only one
	// daemon may be alive at a time.
	drain := func(which string, ch <-chan int, errOut *bytes.Buffer) {
		t.Helper()
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case code := <-ch:
			if code != 0 {
				t.Fatalf("%s daemon exit %d; stderr: %s", which, code, errOut.String())
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("%s daemon did not drain after SIGTERM", which)
		}
	}
	drain("restarted", exitCh, &errOut)

	// --- Phase 3: the uninterrupted control run, byte-for-byte — on a
	// FRESH daemon with a FRESH store dir, so nothing it serves can come
	// from the WAL or cache the resumed run produced (a same-daemon
	// control would compare the resume's bytes against themselves). ---
	var cout, cerr bytes.Buffer
	cready := make(chan string, 1)
	cexit := make(chan int, 1)
	go func() {
		cexit <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-store-dir", t.TempDir()},
			&cout, &cerr, cready)
	}()
	var caddr string
	select {
	case caddr = <-cready:
	case <-time.After(30 * time.Second):
		t.Fatalf("control daemon did not come up; stderr: %s", cerr.String())
	}
	control := strings.Replace(resumeSweep, `,"async":true`, "", 1)
	cresp, err := http.Post("http://"+caddr+"/v1/sweep", "application/json", strings.NewReader(control))
	if err != nil {
		t.Fatalf("control sweep: %v", err)
	}
	var controlView jobViewLite
	if err := json.NewDecoder(cresp.Body).Decode(&controlView); err != nil {
		t.Fatalf("decode control: %v", err)
	}
	cresp.Body.Close()
	if controlView.State != "done" {
		t.Fatalf("control sweep = %+v", controlView)
	}
	// Compare per configuration, ignoring only the cached flag.
	if len(controlView.Results) != len(resumed.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(controlView.Results), len(resumed.Results))
	}
	for i := range resumed.Results {
		a := normalizeResult(t, resumed.Results[i])
		b := normalizeResult(t, controlView.Results[i])
		if !bytes.Equal(a, b) {
			t.Errorf("configuration %d differs after kill+resume:\n%s\n%s", i, a, b)
		}
	}
	drain("control", cexit, &cerr)
}

// normalizeResult re-encodes a ConfigResult with the cached flag zeroed,
// leaving every simulation byte (options, summary, layout) intact.
func normalizeResult(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("bad result %s: %v", raw, err)
	}
	delete(m, "cached")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
