package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonServesAndDrains boots the real daemon on an ephemeral port,
// runs one tiny simulation through the HTTP API, then delivers SIGTERM and
// asserts a clean drain.
func TestDaemonServesAndDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("real daemon boot in -short mode")
	}
	var out, errOut bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-queue", "8"}, &out, &errOut, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not start; stderr: %s", errOut.String())
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	body := `{"benchmark":"vqe_n13","options":{"distance":5,"runs":1}}`
	resp, err = http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var runResp struct {
		State   string `json:"state"`
		Summary *struct {
			MeanCycles float64 `json:"mean_cycles"`
		} `json:"summary"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&runResp); err != nil {
		t.Fatalf("decode run response: %v", err)
	}
	resp.Body.Close()
	if runResp.State != "done" || runResp.Summary == nil || runResp.Summary.MeanCycles <= 0 {
		t.Fatalf("run response = %+v", runResp)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, errOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Errorf("stdout missing drain confirmation:\n%s", out.String())
	}
}

func TestDaemonFlagAndConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"bad flag", []string{"-nope"}, 2},
		{"positional junk", []string{"extra"}, 2},
		{"missing config", []string{"-config", "/does/not/exist.json"}, 1},
		{"invalid workers", []string{"-workers", "-3"}, 1},
		{"unbindable addr", []string{"-addr", "256.0.0.1:99999"}, 1},
		{"unknown mode", []string{"-mode", "leader"}, 1},
		{"worker without coordinator", []string{"-mode", "worker"}, 1},
		{"worker with bad coordinator url", []string{"-mode", "worker", "-coordinator", "not-a-url"}, 1},
		{"coordinator flag in standalone", []string{"-coordinator", "http://coord:8321"}, 1},
		{"advertise flag in standalone", []string{"-advertise", "http://me:9000"}, 1},
		{"negative batch size", []string{"-mode", "coordinator", "-batch-size", "-2"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run(tc.args, &out, &errOut, nil); code != tc.code {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.code, errOut.String())
			}
			if errOut.Len() == 0 {
				t.Error("error path produced no stderr output")
			}
		})
	}
}
