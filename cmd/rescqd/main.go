// Command rescqd serves the rescq simulation engine over HTTP: a job queue
// with a bounded worker pool, an LRU result cache, streaming sweep
// execution, and an optional durable job+result store that lets queued
// jobs and sweep progress survive restarts. See internal/service for the
// endpoint and job-lifecycle documentation, internal/store for the WAL
// format, and README.md in this directory for usage examples.
//
// Usage:
//
//	rescqd                            # listen on :8321, one worker per CPU
//	rescqd -addr :9000 -workers 4 -cache 2048
//	rescqd -store-dir /var/lib/rescqd # durable: jobs + results survive restarts
//	rescqd -config daemon.json        # JSON config (see internal/config.Daemon)
//
// Scale-out (see internal/cluster and the README's "Scaling out" section):
//
//	rescqd -mode coordinator -addr :8321
//	rescqd -mode worker -addr :8322 -coordinator http://coord-host:8321
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/service"
)

// workerCodecs is what a worker advertises at registration: everything it
// speaks, unless -wire-codec json pinned it to the debug path (then it
// advertises only JSON, and every coordinator falls back accordingly).
func workerCodecs(wireCodec string) []string {
	if wireCodec == cluster.CodecJSON {
		return []string{cluster.CodecJSON}
	}
	return cluster.SupportedCodecs()
}

// deriveAdvertiseURL turns a bound listen address into a dialable base URL
// for the local-machine quickstart case: a wildcard or unspecified host
// becomes 127.0.0.1. Multi-host deployments set -advertise explicitly.
func deriveAdvertiseURL(bound string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return "http://" + bound
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable main: it parses flags, serves until the listener
// fails or a SIGINT/SIGTERM arrives, then drains. A non-nil ready channel
// receives the bound address once the daemon is listening (used by tests to
// avoid port races).
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("rescqd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cfgPath  = fs.String("config", "", "JSON daemon config file (overrides the other flags)")
		addr     = fs.String("addr", ":8321", "listen address")
		workers  = fs.Int("workers", 0, "worker pool size (0 = one per CPU)")
		queue    = fs.Int("queue", 256, "pending-job queue depth")
		cache    = fs.Int("cache", 1024, "LRU result-cache entries (negative disables)")
		drain    = fs.Int("drain", 30, "graceful-shutdown drain budget in seconds")
		layout   = fs.String("layout", "", "default lattice layout for requests that name none (default star; see GET /v1/capabilities)")
		storeDir = fs.String("store-dir", "", "durable job+result store directory (WAL); empty disables persistence")
		maxDepth = fs.Int("max-queue-depth", 0, "admission-control bound on unfinished run configurations; beyond it submissions get 429 (0 = default 4096, negative disables)")
		walCodec = fs.String("wal-codec", "", "WAL record format for a fresh store: binary (default) or json (debug; existing logs replay either way)")

		analyticsOn  = fs.Bool("analytics", true, "maintain sweep analytics aggregates and serve GET /v1/analytics/* (false also keeps the WAL free of analytics state records)")
		analyticsCap = fs.Int("analytics-max-groups", 0, "cardinality cap on analytics aggregate cells, one per distinct sweep-axis tuple (0 = default 8192)")

		queuePolicy   = fs.String("queue-policy", "", "job scheduling policy: wfq (default; weighted fair queueing across tenants) or fifo (global arrival order)")
		tenantWeights = fs.String("tenant-weights", "", "per-tenant WFQ weights, e.g. \"alice=3,bob=1\" (\"default\" sets the weight for unlisted tenants)")
		tenantQuota   = fs.String("tenant-quota", "", "per-tenant quotas name=maxQueuedConfigs[:maxInflightJobs], e.g. \"alice=1000:4,bob=200\" (0 = unlimited; \"default\" applies to unlisted tenants)")

		mode        = fs.String("mode", "", "cluster mode: standalone (default), coordinator, or worker")
		coordURL    = fs.String("coordinator", "", "coordinator base URL (worker mode only)")
		advertise   = fs.String("advertise", "", "base URL the coordinator dials back for this worker; empty derives http://127.0.0.1:<bound port>")
		heartbeat   = fs.Duration("heartbeat-interval", 0, "worker heartbeat / coordinator sweep cadence (0 = default 2s; cluster modes only)")
		expiry      = fs.Duration("liveness-expiry", 0, "how long a worker may miss heartbeats before the coordinator expires it (0 = default 3x heartbeat)")
		batchSize   = fs.Int("batch-size", 0, "hard cap on sweep configurations per dispatch batch (0 = default 8; coordinator only)")
		batchTarget = fs.Duration("batch-target", 0, "estimated work the adaptive sizer packs per batch (0 = default 500ms; coordinator only)")
		wireCodec   = fs.String("wire-codec", "", "coordinator<->worker dispatch encoding: binary (default) or json (debug; cluster modes only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "rescqd: unexpected arguments %v\n", fs.Args())
		return 2
	}

	var tenants config.Tenants
	if err := tenants.ApplyWeightFlag(*tenantWeights); err != nil {
		fmt.Fprintln(stderr, "rescqd:", err)
		return 2
	}
	if err := tenants.ApplyQuotaFlag(*tenantQuota); err != nil {
		fmt.Fprintln(stderr, "rescqd:", err)
		return 2
	}

	cfg := config.Daemon{
		Addr: *addr, Workers: *workers, QueueDepth: *queue,
		CacheEntries: *cache, DrainTimeoutSec: *drain, Layout: *layout,
		StoreDir: *storeDir, MaxQueueDepth: *maxDepth, WALCodec: *walCodec,
		Analytics: analyticsOn, AnalyticsMaxGroups: *analyticsCap,
		QueuePolicy: *queuePolicy, Tenants: tenants,
		Cluster: config.Cluster{
			Mode:                *mode,
			CoordinatorURL:      *coordURL,
			AdvertiseURL:        *advertise,
			HeartbeatIntervalMS: int(heartbeat.Milliseconds()),
			LivenessExpiryMS:    int(expiry.Milliseconds()),
			BatchSize:           *batchSize,
			BatchTargetMS:       int(batchTarget.Milliseconds()),
			WireCodec:           *wireCodec,
		},
	}.WithDefaults()
	if *cfgPath != "" {
		loaded, err := config.LoadDaemon(*cfgPath)
		if err != nil {
			fmt.Fprintln(stderr, "rescqd:", err)
			return 1
		}
		cfg = loaded
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(stderr, "rescqd:", err)
		return 1
	}

	// Fault injection: the environment variable wins over the config file
	// (chaos harnesses arm whole process trees through the environment);
	// with neither set every failpoint stays dormant — one atomic load per
	// site. The banner makes an armed daemon impossible to mistake for a
	// production one.
	if spec, err := fault.FromEnv(); err != nil {
		fmt.Fprintln(stderr, "rescqd:", err)
		return 1
	} else if spec == "" && cfg.Failpoints != "" {
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = 1
		}
		if err := fault.Configure(cfg.Failpoints, seed); err != nil {
			fmt.Fprintln(stderr, "rescqd:", err)
			return 1
		}
	}
	if spec := fault.Active(); spec != "" {
		fmt.Fprintf(stdout, "rescqd: FAULT INJECTION ARMED: %s\n", spec)
	}

	svc := service.New(cfg, nil)
	if cfg.StoreDir != "" {
		// Replay the WAL before the worker pool starts: finished jobs come
		// back as history, the result cache is warm, and interrupted jobs
		// are already queued when the first worker wakes.
		rs, err := svc.AttachStore(cfg.StoreDir)
		if err != nil {
			fmt.Fprintln(stderr, "rescqd:", err)
			return 1
		}
		fmt.Fprintf(stdout, "rescqd: store %s replayed %d jobs / %d results (%d cache entries re-seeded, %d interrupted jobs re-enqueued)\n",
			cfg.StoreDir, rs.Jobs, rs.Results, rs.Reseeded, rs.Reenqueued)
		if rs.Dropped > 0 {
			fmt.Fprintf(stderr, "rescqd: %d interrupted jobs could not be re-enqueued (queue full); they remain resumable on disk\n", rs.Dropped)
		}
	}
	svc.Start()
	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		fmt.Fprintln(stderr, "rescqd:", err)
		return 1
	}
	modeNote := ""
	if cfg.Cluster.Clustered() {
		modeNote = " mode=" + cfg.Cluster.Mode
	}
	fmt.Fprintf(stdout, "rescqd: listening on %s (workers=%d queue=%d cache=%d policy=%s%s)\n",
		ln.Addr(), svc.Workers(), cfg.QueueDepth, cfg.CacheEntries, cfg.QueuePolicy, modeNote)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// A worker keeps itself registered with the coordinator: one heartbeat
	// immediately, then one per interval, until shutdown begins. Transient
	// failures (the coordinator not up yet, a coordinator restart) are
	// retried at the heartbeat cadence, logged but not fatal.
	hbCtx, hbStop := context.WithCancel(context.Background())
	defer hbStop()
	if cfg.Cluster.Mode == config.ModeWorker {
		self := cfg.Cluster.AdvertiseURL
		if self == "" {
			self = deriveAdvertiseURL(ln.Addr().String())
		}
		fmt.Fprintf(stdout, "rescqd: worker %s heartbeating to %s every %s\n",
			self, cfg.Cluster.CoordinatorURL, cfg.Cluster.HeartbeatInterval())
		hb := &cluster.Heartbeater{
			Client: cluster.NewTunedClient(cluster.ClientOptions{
				DialTimeout:     cfg.Cluster.DialTimeout(),
				IdleConnTimeout: cfg.Cluster.IdleConnTimeout(),
			}),
			CoordinatorURL: cfg.Cluster.CoordinatorURL,
			Self:           cluster.RegisterRequest{ID: self, URL: self, Capacity: svc.Workers(), Codecs: workerCodecs(cfg.Cluster.WireCodec)},
			Interval:       cfg.Cluster.HeartbeatInterval(),
			Jitter:         cfg.Cluster.HeartbeatJitter,
			Retries:        cfg.Cluster.DispatchRetries,
			OnError:        func(err error) { fmt.Fprintln(stderr, "rescqd: heartbeat:", err) },
			Draining:       svc.WorkerDraining,
			OnReleased: func() {
				fmt.Fprintln(stdout, "rescqd: drained and released by coordinator; heartbeating stopped (safe to terminate)")
			},
		}
		go hb.Run(hbCtx)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case sig := <-sigCh:
		fmt.Fprintf(stdout, "rescqd: %v, draining (budget %s)\n", sig, cfg.DrainTimeout())
	case err := <-serveErr:
		fmt.Fprintln(stderr, "rescqd:", err)
		return 1
	}

	hbStop() // deregistration is implicit: missed heartbeats expire the worker
	ctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout())
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "rescqd: drain budget expired, in-flight jobs cancelled:", err)
		return 1
	}
	fmt.Fprintln(stdout, "rescqd: drained cleanly")
	return 0
}
