// Command rescq-sim runs one simulation configuration — the reproduction's
// analogue of the artifact's `sim` executable. It reads a JSON config file
// (see internal/config), simulates the requested benchmark or circuit file
// under the requested scheduler, and prints a per-seed log plus a pooled
// summary.
//
// Usage:
//
//	rescq-sim -config path/to/config.json
//	rescq-sim -bench gcm_n13 -scheduler rescq -d 7 -p 1e-4 -runs 5
//	rescq-sim -bench gcm_n13 -layout linear
//	rescq-sim -bench gcm_n13 -layout compact -layout-params fraction=0.5,seed=3
//
// Schedulers and layouts resolve through the open registries (see -list
// for the registered names). Layout params that do not fit the flat
// key=value flag syntax — notably the "custom" layout's JSON spec — go in
// the JSON config file's "layout_params" object instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	rescq "repro"
	"repro/internal/config"
)

// parseLayoutParams turns a "k=v,k=v" flag value into a params map.
func parseLayoutParams(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("bad -layout-params entry %q (want key=value)", pair)
		}
		out[k] = v
	}
	return out, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main path: flag parsing, config resolution, one
// simulation, rendered output. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rescq-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cfgPath     = fs.String("config", "", "JSON config file (overrides the other flags)")
		bench       = fs.String("bench", "", "Table 3 benchmark name (see -list)")
		circuitFile = fs.String("circuit", "", "circuit file in the artifact text format")
		scheduler   = fs.String("scheduler", "rescq", "scheduler registry name (see -list)")
		layout      = fs.String("layout", "", "lattice layout registry name (default star; see -list)")
		layoutPs    = fs.String("layout-params", "", "layout params as comma-separated key=value pairs (e.g. fraction=0.5,seed=3)")
		distance    = fs.Int("d", 7, "surface code distance")
		physErr     = fs.Float64("p", 1e-4, "physical qubit error rate")
		k           = fs.Int("k", 25, "RESCQ MST recomputation period (cycles)")
		tau         = fs.Int("tau", 100, "RESCQ MST computation latency (cycles)")
		compression = fs.Float64("compression", 0, "grid compression fraction in [0,1]")
		runs        = fs.Int("runs", 10, "seeded runs")
		seed        = fs.Int64("seed", 1, "base seed")
		parallel    = fs.Bool("parallel", false, "run seeds concurrently on a bounded worker pool (same results as serial)")
		list        = fs.Bool("list", false, "list benchmarks and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "rescq-sim:", err)
		return 1
	}

	if *list {
		for _, b := range rescq.Benchmarks() {
			fmt.Fprintf(stdout, "%-16s %-9s %4d qubits  %5d Rz  %5d CNOT\n",
				b.Name, b.Suite, b.Qubits, b.PaperRz, b.PaperCNOT)
		}
		fmt.Fprintf(stdout, "\nschedulers: %s\n", strings.Join(rescq.Schedulers(), ", "))
		fmt.Fprintln(stdout, "layouts:")
		for _, l := range rescq.LayoutCatalog() {
			fmt.Fprintf(stdout, "  %-8s %s\n", l.Name, l.Description)
		}
		return 0
	}

	layoutParams, err := parseLayoutParams(*layoutPs)
	if err != nil {
		return fail(err)
	}
	cfg := config.Config{
		Benchmark: *bench, CircuitFile: *circuitFile, Scheduler: *scheduler,
		Layout: *layout, LayoutParams: layoutParams,
		Distance: *distance, PhysError: *physErr, K: *k, TauMST: *tau,
		Compression: *compression, NumberOfRuns: *runs, Seed: *seed,
		Parallel: *parallel,
	}.WithDefaults()
	if *cfgPath != "" {
		loaded, err := config.Load(*cfgPath)
		if err != nil {
			return fail(err)
		}
		cfg = loaded
	}
	if err := cfg.Validate(); err != nil {
		return fail(err)
	}

	opts := rescq.Options{
		Scheduler:    rescq.SchedulerKind(cfg.Scheduler),
		Layout:       cfg.Layout,
		LayoutParams: cfg.LayoutParams,
		Distance:     cfg.Distance,
		PhysError:    cfg.PhysError,
		K:            cfg.K,
		TauMST:       cfg.TauMST,
		Compression:  cfg.Compression,
		Runs:         cfg.NumberOfRuns,
		Seed:         cfg.Seed,
		Parallel:     cfg.Parallel,
	}

	var sum rescq.Summary
	switch {
	case cfg.Benchmark != "":
		sum, err = rescq.Run(cfg.Benchmark, opts)
	default:
		data, rerr := os.ReadFile(cfg.CircuitFile)
		if rerr != nil {
			return fail(rerr)
		}
		sum, err = rescq.RunCircuitText(cfg.CircuitFile, string(data), opts)
	}
	if err != nil {
		return fail(err)
	}

	layoutName := cfg.Layout
	if layoutName == "" {
		layoutName = rescq.DefaultLayout
	}
	fmt.Fprintf(stdout, "benchmark=%s scheduler=%s layout=%s d=%d p=%g k=%d compression=%.0f%% runs=%d\n",
		sum.Benchmark, sum.Scheduler, layoutName, cfg.Distance, cfg.PhysError, cfg.K,
		100*cfg.Compression, len(sum.Runs))
	for _, r := range sum.Runs {
		fmt.Fprintf(stdout, "seed=%-4d cycles=%-8d idle=%.3f preps=%-6d injections=%-6d edge_rotations=%d\n",
			r.Seed, r.TotalCycles, r.MeanIdleFraction, r.PrepsStarted, r.InjectionsCount, r.EdgeRotations)
	}
	fmt.Fprintf(stdout, "mean=%.1f min=%d max=%d std=%.1f mean_idle=%.3f\n",
		sum.MeanCycles, sum.MinCycles, sum.MaxCycles, sum.StdCycles, sum.MeanIdle)
	return 0
}
