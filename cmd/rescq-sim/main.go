// Command rescq-sim runs one simulation configuration — the reproduction's
// analogue of the artifact's `sim` executable. It reads a JSON config file
// (see internal/config), simulates the requested benchmark or circuit file
// under the requested scheduler, and prints a per-seed log plus a pooled
// summary.
//
// Usage:
//
//	rescq-sim -config path/to/config.json
//	rescq-sim -bench gcm_n13 -scheduler rescq -d 7 -p 1e-4 -runs 5
package main

import (
	"flag"
	"fmt"
	"os"

	rescq "repro"
	"repro/internal/config"
)

func main() {
	var (
		cfgPath     = flag.String("config", "", "JSON config file (overrides the other flags)")
		bench       = flag.String("bench", "", "Table 3 benchmark name (see -list)")
		circuitFile = flag.String("circuit", "", "circuit file in the artifact text format")
		scheduler   = flag.String("scheduler", "rescq", "greedy | autobraid | rescq")
		distance    = flag.Int("d", 7, "surface code distance")
		physErr     = flag.Float64("p", 1e-4, "physical qubit error rate")
		k           = flag.Int("k", 25, "RESCQ MST recomputation period (cycles)")
		tau         = flag.Int("tau", 100, "RESCQ MST computation latency (cycles)")
		compression = flag.Float64("compression", 0, "grid compression fraction in [0,1]")
		runs        = flag.Int("runs", 10, "seeded runs")
		seed        = flag.Int64("seed", 1, "base seed")
		parallel    = flag.Bool("parallel", false, "run seeds concurrently on a bounded worker pool (same results as serial)")
		list        = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, b := range rescq.Benchmarks() {
			fmt.Printf("%-16s %-9s %4d qubits  %5d Rz  %5d CNOT\n",
				b.Name, b.Suite, b.Qubits, b.PaperRz, b.PaperCNOT)
		}
		return
	}

	cfg := config.Config{
		Benchmark: *bench, CircuitFile: *circuitFile, Scheduler: *scheduler,
		Distance: *distance, PhysError: *physErr, K: *k, TauMST: *tau,
		Compression: *compression, NumberOfRuns: *runs, Seed: *seed,
		Parallel: *parallel,
	}.WithDefaults()
	if *cfgPath != "" {
		loaded, err := config.Load(*cfgPath)
		if err != nil {
			fatal(err)
		}
		cfg = loaded
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	opts := rescq.Options{
		Scheduler:   rescq.SchedulerKind(cfg.Scheduler),
		Distance:    cfg.Distance,
		PhysError:   cfg.PhysError,
		K:           cfg.K,
		TauMST:      cfg.TauMST,
		Compression: cfg.Compression,
		Runs:        cfg.NumberOfRuns,
		Seed:        cfg.Seed,
		Parallel:    cfg.Parallel,
	}

	var (
		sum rescq.Summary
		err error
	)
	switch {
	case cfg.Benchmark != "":
		sum, err = rescq.Run(cfg.Benchmark, opts)
	default:
		data, rerr := os.ReadFile(cfg.CircuitFile)
		if rerr != nil {
			fatal(rerr)
		}
		sum, err = rescq.RunCircuitText(cfg.CircuitFile, string(data), opts)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("benchmark=%s scheduler=%s d=%d p=%g k=%d compression=%.0f%% runs=%d\n",
		sum.Benchmark, sum.Scheduler, cfg.Distance, cfg.PhysError, cfg.K,
		100*cfg.Compression, len(sum.Runs))
	for _, r := range sum.Runs {
		fmt.Printf("seed=%-4d cycles=%-8d idle=%.3f preps=%-6d injections=%-6d edge_rotations=%d\n",
			r.Seed, r.TotalCycles, r.MeanIdleFraction, r.PrepsStarted, r.InjectionsCount, r.EdgeRotations)
	}
	fmt.Printf("mean=%.1f min=%d max=%d std=%.1f mean_idle=%.3f\n",
		sum.MeanCycles, sum.MinCycles, sum.MaxCycles, sum.StdCycles, sum.MeanIdle)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rescq-sim:", err)
	os.Exit(1)
}
