package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListBenchmarks(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"gcm_n13", "qft_n18", "qubits"} {
		if !strings.Contains(text, want) {
			t.Errorf("-list output missing %q:\n%s", want, text)
		}
	}
}

func TestRunTinyBenchmark(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-bench", "vqe_n13", "-d", "5", "-runs", "2", "-seed", "3"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "benchmark=vqe_n13 scheduler=rescq layout=star d=5") {
		t.Errorf("missing header:\n%s", text)
	}
	if got := strings.Count(text, "seed="); got != 2 {
		t.Errorf("per-seed lines = %d, want 2:\n%s", got, text)
	}
	if !strings.Contains(text, "mean=") {
		t.Errorf("missing summary line:\n%s", text)
	}
}

func TestRunFromConfigFileWithCircuit(t *testing.T) {
	dir := t.TempDir()
	circ := filepath.Join(dir, "tiny.circ")
	if err := os.WriteFile(circ, []byte("qubits 3\n3\nh 0\ncnot 0 1\nrz 1 pi/4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := filepath.Join(dir, "cfg.json")
	body := `{"circuit_file":` + jsonStr(circ) + `,"scheduler":"greedy","distance":5,"number_of_runs":1}`
	if err := os.WriteFile(cfg, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-config", cfg}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "scheduler=greedy") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"bad flag", []string{"-nope"}, 2},
		{"no benchmark or circuit", []string{}, 1},
		{"unknown benchmark", []string{"-bench", "nope"}, 1},
		{"bad distance", []string{"-bench", "vqe_n13", "-d", "4"}, 1},
		{"missing config file", []string{"-config", "/does/not/exist.json"}, 1},
		{"missing circuit file", []string{"-circuit", "/does/not/exist.circ"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run(tc.args, &out, &errOut); code != tc.code {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.code, errOut.String())
			}
			if errOut.Len() == 0 {
				t.Error("error path produced no stderr output")
			}
		})
	}
}

func jsonStr(s string) string {
	return `"` + strings.ReplaceAll(s, `\`, `\\`) + `"`
}

func TestRunLayoutFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-bench", "vqe_n13", "-d", "5", "-runs", "1", "-layout", "linear"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "layout=linear") {
		t.Errorf("missing layout in header:\n%s", out.String())
	}
}

func TestRunLayoutParamsFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-bench", "vqe_n13", "-d", "5", "-runs", "1",
		"-layout", "compact", "-layout-params", "fraction=0.5,seed=3"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "layout=compact") {
		t.Errorf("missing layout in header:\n%s", out.String())
	}
}

func TestRunUnknownLayoutEnumerates(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-bench", "vqe_n13", "-layout", "moebius"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	for _, want := range []string{"moebius", "star", "linear", "compact", "custom"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("stderr %q should enumerate %q", errOut.String(), want)
		}
	}
}

func TestRunBadLayoutParams(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-bench", "vqe_n13", "-layout-params", "oops"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "key=value") {
		t.Errorf("stderr %q should explain the key=value syntax", errOut.String())
	}
}

func TestListShowsRegistries(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"schedulers: autobraid, greedy, rescq", "star", "linear", "compact", "custom"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}
