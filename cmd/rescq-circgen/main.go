// Command rescq-circgen emits the Table 3 benchmark circuits in the
// artifact's text format, either one to stdout or the whole suite into a
// directory (the artifact ships a `circuits/` directory the same way).
//
// Usage:
//
//	rescq-circgen -bench gcm_n13            # one circuit to stdout
//	rescq-circgen -all -out circuits/       # whole suite to files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	rescq "repro"
)

func main() {
	var (
		bench = flag.String("bench", "", "benchmark name")
		all   = flag.Bool("all", false, "emit every Table 3 benchmark")
		out   = flag.String("out", "", "output directory (required with -all)")
	)
	flag.Parse()

	switch {
	case *all:
		if *out == "" {
			fatal(fmt.Errorf("-all requires -out <dir>"))
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for _, b := range rescq.Benchmarks() {
			text, err := rescq.BenchmarkCircuitText(b.Name)
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*out, b.Name+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d qubits)\n", path, b.Qubits)
		}
	case *bench != "":
		text, err := rescq.BenchmarkCircuitText(*bench)
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
	default:
		fmt.Fprintln(os.Stderr, "rescq-circgen: need -bench <name> or -all -out <dir>")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rescq-circgen:", err)
	os.Exit(1)
}
