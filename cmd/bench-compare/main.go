// Command bench-compare guards the headline benchmarks against silent
// regressions: it parses `go test -bench` output from stdin, compares each
// benchmark's ns/op against the "after" snapshot in BENCH_baseline.json,
// and exits non-zero when any benchmark regressed beyond the tolerance.
// CI pipes the benchmark run straight into it:
//
//	go test -run '^$' -bench 'BenchmarkSimulatorRESCQ|BenchmarkFigure13MSTFrequency|BenchmarkMSTCompute' \
//	    -benchtime 3x . | bench-compare -baseline BENCH_baseline.json -tolerance 0.25
//
// Benchmarks present in the baseline but absent from the input are
// reported with the named ErrMissingBenchmark and fail the run (a deleted
// benchmark must be removed from the baseline deliberately); input
// benchmarks without a baseline entry are ignored; a baseline entry whose
// after.ns_per_op is zero/NaN is tolerated with an ErrNoBaseline warning
// instead of dividing to NaN, and a NaN/non-positive measurement fails
// with ErrBadMeasurement instead of silently comparing as "ok". The
// default tolerance of 0.25 absorbs shared-runner noise while still
// catching the step-function regressions that matter.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Named comparison errors, so callers (and CI logs) can tell the failure
// modes apart instead of tripping over a zero-division or a NaN that
// compares as "ok".
var (
	// ErrMissingBenchmark: the baseline pins a benchmark the input never
	// measured — a deleted benchmark must be removed from the baseline
	// deliberately, so this fails the run.
	ErrMissingBenchmark = errors.New("in baseline but not in benchmark output")
	// ErrNoBaseline: the entry has an "after" point without a usable
	// (positive, finite) ns_per_op, which would otherwise divide to
	// +Inf/NaN. Tolerated with a warning: the entry cannot gate anything.
	ErrNoBaseline = errors.New("baseline after.ns_per_op is not a positive finite number")
	// ErrBadMeasurement: the input's ns/op is NaN/Inf/non-positive. A NaN
	// silently passes every "got > limit" comparison, so this fails the
	// run instead.
	ErrBadMeasurement = errors.New("measured ns/op is not a positive finite number")
)

func usable(v float64) bool {
	return v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0)
}

// baselineFile mirrors the shape of BENCH_baseline.json.
type baselineFile struct {
	Description string                   `json:"description"`
	Machine     string                   `json:"machine"`
	Benchmarks  map[string]baselineEntry `json:"benchmarks"`
}

type baselineEntry struct {
	After *baselinePoint `json:"after"`
}

type baselinePoint struct {
	NsPerOp float64 `json:"ns_per_op"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench-compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "BENCH_baseline.json", "baseline snapshot file")
		tolerance    = fs.Float64("tolerance", 0.25, "allowed fractional ns/op regression vs the baseline 'after' values")
		emitPath     = fs.String("emit", "", "write the measured ns/op values to this file in the baseline JSON shape (e.g. BENCH_pr.json for a CI artifact); written even when the comparison fails")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "bench-compare:", err)
		return 1
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fail(err)
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fail(fmt.Errorf("parse %s: %w", *baselinePath, err))
	}

	current, err := parseBenchOutput(stdin, stdout)
	if err != nil {
		return fail(err)
	}

	// Emit before comparing: a regressed run is exactly the one whose
	// measurements are worth keeping as an artifact.
	if *emitPath != "" {
		if err := emitSnapshot(*emitPath, current); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "bench-compare: wrote %d measurement(s) to %s\n", len(current), *emitPath)
	}

	lines, warnings, failures := compareBenchmarks(base, current, *tolerance)
	for _, line := range lines {
		fmt.Fprintln(stdout, line)
	}
	for _, warn := range warnings {
		fmt.Fprintln(stderr, "bench-compare: warning:", warn)
	}
	for _, err := range failures {
		fmt.Fprintln(stderr, "bench-compare:", err)
	}
	if len(failures) > 0 {
		// Don't blame every failure on performance: missing benchmarks
		// and unusable measurements are comparison failures, not
		// regressions.
		regressed := 0
		for _, err := range failures {
			if !errors.Is(err, ErrMissingBenchmark) && !errors.Is(err, ErrBadMeasurement) {
				regressed++
			}
		}
		switch {
		case regressed == len(failures):
			fmt.Fprintf(stderr, "bench-compare: %d benchmark(s) regressed beyond %.0f%%\n", regressed, *tolerance*100)
		case regressed == 0:
			fmt.Fprintf(stderr, "bench-compare: %d comparison(s) failed (missing or invalid measurements)\n", len(failures))
		default:
			fmt.Fprintf(stderr, "bench-compare: %d benchmark(s) regressed beyond %.0f%%, %d comparison(s) failed\n",
				regressed, *tolerance*100, len(failures)-regressed)
		}
		return 1
	}
	return 0
}

// emitSnapshot writes the measured ns/op values in the BENCH_baseline.json
// shape, so a run's measurements can be archived per-PR (and even promoted
// to a new baseline verbatim).
func emitSnapshot(path string, current map[string]float64) error {
	out := baselineFile{
		Description: "bench-compare measurement snapshot (ns/op as baseline 'after' points)",
		Machine:     fmt.Sprintf("%s/%s", runtime.GOOS, runtime.GOARCH),
		Benchmarks:  make(map[string]baselineEntry, len(current)),
	}
	for name, ns := range current {
		out.Benchmarks[name] = baselineEntry{After: &baselinePoint{NsPerOp: ns}}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("emit %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("emit: %w", err)
	}
	return nil
}

// compareBenchmarks checks every pinned baseline entry against the
// measured values. It returns the per-benchmark report lines, tolerated
// anomalies (wrapping ErrNoBaseline) and failures (regressions, plus
// ErrMissingBenchmark / ErrBadMeasurement wrapped with the benchmark
// name), keeping the division out of every degenerate case that used to
// produce a silent NaN or +Inf comparison.
func compareBenchmarks(base baselineFile, current map[string]float64, tolerance float64) (lines []string, warnings, failures []error) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		entry := base.Benchmarks[name]
		if entry.After == nil {
			continue // informational baseline entries without a pinned after-value
		}
		if !usable(entry.After.NsPerOp) {
			warnings = append(warnings, fmt.Errorf("%s: %w (%g)", name, ErrNoBaseline, entry.After.NsPerOp))
			continue
		}
		got, ok := current[name]
		if !ok {
			failures = append(failures, fmt.Errorf("%s: %w", name, ErrMissingBenchmark))
			continue
		}
		if !usable(got) {
			failures = append(failures, fmt.Errorf("%s: %w (%g)", name, ErrBadMeasurement, got))
			continue
		}
		limit := entry.After.NsPerOp * (1 + tolerance)
		ratio := got / entry.After.NsPerOp
		verdict := "ok"
		if got > limit {
			verdict = "REGRESSED"
			failures = append(failures, fmt.Errorf("%s: regressed %.2fx vs baseline (limit %.2fx)", name, ratio, 1+tolerance))
		}
		lines = append(lines, fmt.Sprintf("bench-compare: %-32s %12.0f ns/op vs baseline %12.0f (%.2fx, limit %.2fx): %s",
			name, got, entry.After.NsPerOp, ratio, 1+tolerance, verdict))
	}
	return lines, warnings, failures
}

// parseBenchOutput extracts "BenchmarkName ... <ns> ns/op" measurements
// from go test -bench output, echoing every line so the measurements stay
// visible in CI logs. The trailing "-8" GOMAXPROCS suffix is stripped.
// Repeated runs of one benchmark keep the last measurement.
func parseBenchOutput(r io.Reader, echo io.Writer) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  <iters>  <value> ns/op  [more unit pairs...]
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op value in %q: %w", line, err)
				}
				out[name] = v
				break
			}
		}
	}
	return out, sc.Err()
}
