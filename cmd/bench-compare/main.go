// Command bench-compare guards the headline benchmarks against silent
// regressions: it parses `go test -bench` output from stdin, compares each
// benchmark's ns/op against the "after" snapshot in BENCH_baseline.json,
// and exits non-zero when any benchmark regressed beyond the tolerance.
// CI pipes the benchmark run straight into it:
//
//	go test -run '^$' -bench 'BenchmarkSimulatorRESCQ|BenchmarkFigure13MSTFrequency|BenchmarkMSTCompute' \
//	    -benchtime 3x . | bench-compare -baseline BENCH_baseline.json -tolerance 0.25
//
// Benchmarks present in the baseline but absent from the input are
// reported and fail the run (a deleted benchmark must be removed from the
// baseline deliberately); input benchmarks without a baseline entry are
// ignored. The default tolerance of 0.25 absorbs shared-runner noise while
// still catching the step-function regressions that matter.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// baselineFile mirrors the shape of BENCH_baseline.json.
type baselineFile struct {
	Description string                   `json:"description"`
	Machine     string                   `json:"machine"`
	Benchmarks  map[string]baselineEntry `json:"benchmarks"`
}

type baselineEntry struct {
	After *baselinePoint `json:"after"`
}

type baselinePoint struct {
	NsPerOp float64 `json:"ns_per_op"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench-compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "BENCH_baseline.json", "baseline snapshot file")
		tolerance    = fs.Float64("tolerance", 0.25, "allowed fractional ns/op regression vs the baseline 'after' values")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "bench-compare:", err)
		return 1
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fail(err)
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fail(fmt.Errorf("parse %s: %w", *baselinePath, err))
	}

	current, err := parseBenchOutput(stdin, stdout)
	if err != nil {
		return fail(err)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		entry := base.Benchmarks[name]
		if entry.After == nil || entry.After.NsPerOp <= 0 {
			continue // informational baseline entries without a pinned after-value
		}
		got, ok := current[name]
		if !ok {
			fmt.Fprintf(stderr, "bench-compare: %s: in baseline but not in benchmark output\n", name)
			regressions++
			continue
		}
		limit := entry.After.NsPerOp * (1 + *tolerance)
		ratio := got / entry.After.NsPerOp
		verdict := "ok"
		if got > limit {
			verdict = "REGRESSED"
			regressions++
		}
		fmt.Fprintf(stdout, "bench-compare: %-32s %12.0f ns/op vs baseline %12.0f (%.2fx, limit %.2fx): %s\n",
			name, got, entry.After.NsPerOp, ratio, 1+*tolerance, verdict)
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "bench-compare: %d benchmark(s) regressed beyond %.0f%%\n", regressions, *tolerance*100)
		return 1
	}
	return 0
}

// parseBenchOutput extracts "BenchmarkName ... <ns> ns/op" measurements
// from go test -bench output, echoing every line so the measurements stay
// visible in CI logs. The trailing "-8" GOMAXPROCS suffix is stripped.
// Repeated runs of one benchmark keep the last measurement.
func parseBenchOutput(r io.Reader, echo io.Writer) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  <iters>  <value> ns/op  [more unit pairs...]
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op value in %q: %w", line, err)
				}
				out[name] = v
				break
			}
		}
	}
	return out, sc.Err()
}
