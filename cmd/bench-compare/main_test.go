package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testBaseline = `{
  "benchmarks": {
    "BenchmarkSimulatorRESCQ": {"after": {"ns_per_op": 10000000}},
    "BenchmarkMSTCompute": {"after": {"ns_per_op": 2000000}},
    "BenchmarkLegacyNote": {"before": {"ns_per_op": 43457}}
  }
}`

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(testBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func compare(t *testing.T, benchOutput string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run([]string{"-baseline", writeBaseline(t), "-tolerance", "0.25"},
		strings.NewReader(benchOutput), &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestWithinToleranceOK(t *testing.T) {
	code, stdout, stderr := compare(t, `goos: linux
BenchmarkSimulatorRESCQ-8   	     100	  11000000 ns/op	 5454538 B/op	   42971 allocs/op
BenchmarkMSTCompute-8       	     500	   2400000 ns/op
PASS
`)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if strings.Count(stdout, ": ok") != 2 {
		t.Errorf("want two ok verdicts:\n%s", stdout)
	}
}

func TestRegressionFails(t *testing.T) {
	code, stdout, stderr := compare(t, `
BenchmarkSimulatorRESCQ-8   	     100	  13000000 ns/op
BenchmarkMSTCompute-8       	     500	   2000000 ns/op
`)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "REGRESSED") || !strings.Contains(stderr, "regressed beyond 25%") {
		t.Errorf("missing regression report:\nstdout: %s\nstderr: %s", stdout, stderr)
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	code, _, stderr := compare(t, "BenchmarkSimulatorRESCQ-8 100 9000000 ns/op\n")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (BenchmarkMSTCompute missing)", code)
	}
	if !strings.Contains(stderr, "BenchmarkMSTCompute") {
		t.Errorf("stderr should name the missing benchmark: %s", stderr)
	}
}

func TestExtraAndLegacyEntriesIgnored(t *testing.T) {
	code, _, stderr := compare(t, `
BenchmarkSimulatorRESCQ-8   	     100	  9000000 ns/op
BenchmarkMSTCompute-8       	     500	  1900000 ns/op
BenchmarkUnrelated-8        	     1	  99999999999 ns/op
`)
	// BenchmarkUnrelated has no baseline; BenchmarkLegacyNote has no
	// "after" point. Neither may fail the run.
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
}

// TestNamedErrorClassification exercises compareBenchmarks directly: each
// degenerate case maps to its named sentinel instead of a zero-division
// or a NaN that compares as "ok".
func TestNamedErrorClassification(t *testing.T) {
	base := baselineFile{Benchmarks: map[string]baselineEntry{
		"BenchmarkHealthy":     {After: &baselinePoint{NsPerOp: 1000}},
		"BenchmarkMissing":     {After: &baselinePoint{NsPerOp: 1000}},
		"BenchmarkZeroPinned":  {After: &baselinePoint{NsPerOp: 0}},
		"BenchmarkNaNMeasured": {After: &baselinePoint{NsPerOp: 1000}},
		"BenchmarkLegacy":      {},
	}}
	current := map[string]float64{
		"BenchmarkHealthy":     1100,
		"BenchmarkNaNMeasured": math.NaN(),
	}
	lines, warnings, failures := compareBenchmarks(base, current, 0.25)
	if len(lines) != 1 || !strings.Contains(lines[0], "BenchmarkHealthy") || !strings.Contains(lines[0], ": ok") {
		t.Fatalf("report lines = %q", lines)
	}
	if len(warnings) != 1 || !errors.Is(warnings[0], ErrNoBaseline) || !strings.Contains(warnings[0].Error(), "BenchmarkZeroPinned") {
		t.Fatalf("warnings = %v, want one ErrNoBaseline for BenchmarkZeroPinned", warnings)
	}
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want 2", failures)
	}
	var missing, badMeasure bool
	for _, err := range failures {
		if errors.Is(err, ErrMissingBenchmark) && strings.Contains(err.Error(), "BenchmarkMissing") {
			missing = true
		}
		if errors.Is(err, ErrBadMeasurement) && strings.Contains(err.Error(), "BenchmarkNaNMeasured") {
			badMeasure = true
		}
	}
	if !missing || !badMeasure {
		t.Fatalf("failures = %v, want ErrMissingBenchmark + ErrBadMeasurement", failures)
	}
}

// TestNaNMeasurementFails: a NaN ns/op in the input must fail the run (it
// used to slide through every "got > limit" comparison as ok).
func TestNaNMeasurementFails(t *testing.T) {
	code, _, stderr := compare(t, `
BenchmarkSimulatorRESCQ-8   	     100	  NaN ns/op
BenchmarkMSTCompute-8       	     500	  1900000 ns/op
`)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (NaN measurement must fail)", code)
	}
	if !strings.Contains(stderr, "not a positive finite number") {
		t.Errorf("stderr should carry the named measurement error: %s", stderr)
	}
}

// TestZeroBaselineTolerated: a pinned-but-zero baseline point is a
// warning, not a crash or a divide-to-NaN verdict.
func TestZeroBaselineTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{
	  "benchmarks": {"BenchmarkZero": {"after": {"ns_per_op": 0}}}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-baseline", path}, strings.NewReader("BenchmarkZero-8 1 100 ns/op\n"), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (zero baseline is tolerated); stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "warning") || !strings.Contains(errOut.String(), "BenchmarkZero") {
		t.Errorf("stderr should warn about the unusable baseline: %s", errOut.String())
	}
}

func TestParseStripsGomaxprocsSuffix(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(
		"BenchmarkSimulatorRESCQ-16 100 12345 ns/op\nBenchmarkX 1 7 ns/op\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkSimulatorRESCQ"] != 12345 {
		t.Errorf("suffix not stripped: %v", got)
	}
	if got["BenchmarkX"] != 7 {
		t.Errorf("unsuffixed name mishandled: %v", got)
	}
}

// TestEmitSnapshot: -emit writes the measured values in the baseline JSON
// shape, and does so even when the comparison itself fails, so CI can
// archive the measurements of a regressed run.
func TestEmitSnapshot(t *testing.T) {
	emitPath := filepath.Join(t.TempDir(), "BENCH_pr.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-baseline", writeBaseline(t), "-emit", emitPath},
		strings.NewReader(`
BenchmarkSimulatorRESCQ-8   	     100	  99000000 ns/op
BenchmarkMSTCompute-8       	     500	   2000000 ns/op
`), &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (SimulatorRESCQ regressed)", code)
	}
	data, err := os.ReadFile(emitPath)
	if err != nil {
		t.Fatalf("emitted file: %v", err)
	}
	var snap baselineFile
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("emitted file does not parse as a baseline: %v\n%s", err, data)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("emitted %d benchmarks, want 2:\n%s", len(snap.Benchmarks), data)
	}
	got := snap.Benchmarks["BenchmarkSimulatorRESCQ"]
	if got.After == nil || got.After.NsPerOp != 99000000 {
		t.Fatalf("emitted SimulatorRESCQ = %+v", got)
	}
	if snap.Machine == "" {
		t.Error("emitted snapshot has no machine field")
	}
	// The emitted file round-trips as a -baseline input (promotion path).
	var out2, errOut2 bytes.Buffer
	code = run([]string{"-baseline", emitPath},
		strings.NewReader(`
BenchmarkSimulatorRESCQ-8   	     100	  99000000 ns/op
BenchmarkMSTCompute-8       	     500	   2000000 ns/op
`), &out2, &errOut2)
	if code != 0 {
		t.Fatalf("re-comparing against the emitted snapshot failed: %s", errOut2.String())
	}
}

// TestEmitUnwritablePathFails: an unwritable -emit path is a hard error,
// not a silently dropped artifact.
func TestEmitUnwritablePathFails(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-baseline", writeBaseline(t), "-emit", filepath.Join(t.TempDir(), "no", "such", "dir.json")},
		strings.NewReader("BenchmarkMSTCompute-8 500 2000000 ns/op\n"), &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "emit") {
		t.Fatalf("stderr does not mention the emit failure: %s", errOut.String())
	}
}
