package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testBaseline = `{
  "benchmarks": {
    "BenchmarkSimulatorRESCQ": {"after": {"ns_per_op": 10000000}},
    "BenchmarkMSTCompute": {"after": {"ns_per_op": 2000000}},
    "BenchmarkLegacyNote": {"before": {"ns_per_op": 43457}}
  }
}`

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(testBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func compare(t *testing.T, benchOutput string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run([]string{"-baseline", writeBaseline(t), "-tolerance", "0.25"},
		strings.NewReader(benchOutput), &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestWithinToleranceOK(t *testing.T) {
	code, stdout, stderr := compare(t, `goos: linux
BenchmarkSimulatorRESCQ-8   	     100	  11000000 ns/op	 5454538 B/op	   42971 allocs/op
BenchmarkMSTCompute-8       	     500	   2400000 ns/op
PASS
`)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if strings.Count(stdout, ": ok") != 2 {
		t.Errorf("want two ok verdicts:\n%s", stdout)
	}
}

func TestRegressionFails(t *testing.T) {
	code, stdout, stderr := compare(t, `
BenchmarkSimulatorRESCQ-8   	     100	  13000000 ns/op
BenchmarkMSTCompute-8       	     500	   2000000 ns/op
`)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "REGRESSED") || !strings.Contains(stderr, "regressed beyond 25%") {
		t.Errorf("missing regression report:\nstdout: %s\nstderr: %s", stdout, stderr)
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	code, _, stderr := compare(t, "BenchmarkSimulatorRESCQ-8 100 9000000 ns/op\n")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (BenchmarkMSTCompute missing)", code)
	}
	if !strings.Contains(stderr, "BenchmarkMSTCompute") {
		t.Errorf("stderr should name the missing benchmark: %s", stderr)
	}
}

func TestExtraAndLegacyEntriesIgnored(t *testing.T) {
	code, _, stderr := compare(t, `
BenchmarkSimulatorRESCQ-8   	     100	  9000000 ns/op
BenchmarkMSTCompute-8       	     500	  1900000 ns/op
BenchmarkUnrelated-8        	     1	  99999999999 ns/op
`)
	// BenchmarkUnrelated has no baseline; BenchmarkLegacyNote has no
	// "after" point. Neither may fail the run.
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
}

func TestParseStripsGomaxprocsSuffix(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(
		"BenchmarkSimulatorRESCQ-16 100 12345 ns/op\nBenchmarkX 1 7 ns/op\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkSimulatorRESCQ"] != 12345 {
		t.Errorf("suffix not stripped: %v", got)
	}
	if got["BenchmarkX"] != 7 {
		t.Errorf("unsuffixed name mishandled: %v", got)
	}
}
