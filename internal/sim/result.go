package sim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/lattice"
)

// Result summarizes one simulation run.
type Result struct {
	Scheduler string
	Benchmark string
	Seed      int64

	// TotalCycles is the program makespan in lattice-surgery cycles.
	TotalCycles int
	// CNOTLatencies and RzLatencies record, per gate, the cycles from the
	// gate becoming ready (dependencies done) to its completion — the
	// quantity histogrammed in the paper's Figure 5.
	CNOTLatencies []int
	RzLatencies   []int
	// IdlePerQubit is each data qubit's idle fraction; MeanIdleFraction
	// averages them (Figures 11/12 idling panels).
	IdlePerQubit     []float64
	MeanIdleFraction float64
	// AncillaUtilization is each ancilla's busy fraction over the whole
	// run (the artifact's grid-activity heatmap data), indexed by the
	// grid's dense ancilla ID.
	AncillaUtilization []float64

	PrepsStarted      int
	InjectionsStarted int
	InjectionFailures int
	EdgeRotations     int
}

// RunSeeded builds a fresh grid-independent engine run: it simulates circ
// on grid under sched with one seed. The grid is mutated during simulation
// (orientations); callers reusing grids across runs should rebuild them.
func RunSeeded(g *lattice.Grid, c *circuit.Circuit, cfg Config, seed int64, sched Scheduler) (*Result, error) {
	return RunSeededContext(context.Background(), g, c, cfg, seed, sched)
}

// RunSeededContext is RunSeeded with cooperative cancellation: the engine
// polls ctx inside its cycle loop, so cancelling a request aborts a long
// simulation promptly instead of at the run boundary.
func RunSeededContext(ctx context.Context, g *lattice.Grid, c *circuit.Circuit, cfg Config, seed int64, sched Scheduler) (*Result, error) {
	dag := circuit.NewDAG(c)
	eng := NewEngine(g, dag, cfg, seed, sched)
	res, err := eng.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("sim: %s on %s (seed %d): %w", sched.Name(), c.Name, seed, err)
	}
	res.Benchmark = c.Name
	res.Seed = seed
	return res, nil
}

// Aggregate summarizes multiple seeded runs of one configuration.
type Aggregate struct {
	Scheduler string
	Benchmark string
	Runs      int

	MeanCycles float64
	MinCycles  int
	MaxCycles  int
	StdCycles  float64

	MeanIdle float64

	// Pooled per-gate latencies across runs (Figure 5 inputs).
	CNOTLatencies []int
	RzLatencies   []int
}

// Aggregate pools per-run results. It panics on an empty slice.
func AggregateResults(results []*Result) Aggregate {
	if len(results) == 0 {
		panic("sim: aggregating zero results")
	}
	a := Aggregate{
		Scheduler: results[0].Scheduler,
		Benchmark: results[0].Benchmark,
		Runs:      len(results),
		MinCycles: math.MaxInt,
	}
	var sum, sumSq, idle float64
	for _, r := range results {
		c := float64(r.TotalCycles)
		sum += c
		sumSq += c * c
		idle += r.MeanIdleFraction
		if r.TotalCycles < a.MinCycles {
			a.MinCycles = r.TotalCycles
		}
		if r.TotalCycles > a.MaxCycles {
			a.MaxCycles = r.TotalCycles
		}
		a.CNOTLatencies = append(a.CNOTLatencies, r.CNOTLatencies...)
		a.RzLatencies = append(a.RzLatencies, r.RzLatencies...)
	}
	n := float64(len(results))
	a.MeanCycles = sum / n
	variance := sumSq/n - a.MeanCycles*a.MeanCycles
	if variance < 0 {
		variance = 0
	}
	a.StdCycles = math.Sqrt(variance)
	a.MeanIdle = idle / n
	return a
}
