// Package sim is the cycle-accurate lattice-surgery simulator. It advances
// time in integer lattice-surgery cycles, tracks tile and qubit occupancy,
// resolves the stochastic outcomes of RUS state preparation and injection
// with a seeded RNG, and collects the statistics the paper's evaluation
// reports (total cycles, per-gate latency distributions, data-qubit idle
// fractions, ancilla activity).
//
// Schedulers drive the engine through the State API: they start operations
// (CNOT, edge rotation, Hadamard, |m_theta> preparation, injection) on free
// tiles and receive completion callbacks. The engine validates every
// operation's geometry (path contiguity, correct Z/X edge adjacency, tile
// freedom), so a scheduler that violates lattice-surgery rules fails fast.
package sim

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/lattice"
	"repro/internal/rus"
)

// OpKind classifies an in-flight lattice operation.
type OpKind uint8

const (
	// OpCNOT is a two-cycle lattice-surgery CNOT along an ancilla path.
	OpCNOT OpKind = iota
	// OpEdgeRotation is a three-cycle boundary rotation exposing the
	// opposite edge type of a data qubit.
	OpEdgeRotation
	// OpHadamard is a three-cycle patch-deformation Hadamard.
	OpHadamard
	// OpPrep is a repeat-until-success |m_theta> preparation on one
	// ancilla tile; its duration is stochastic.
	OpPrep
	// OpInjection consumes a prepared |m_theta> and injects it into a
	// data qubit; it succeeds with probability 1/2.
	OpInjection
)

var opKindNames = [...]string{
	OpCNOT:         "cnot",
	OpEdgeRotation: "edge-rotation",
	OpHadamard:     "hadamard",
	OpPrep:         "prep",
	OpInjection:    "injection",
}

// String names the op kind.
func (k OpKind) String() string { return opKindNames[k] }

// Fixed lattice-surgery cycle costs (paper sections 3.1, 3.2 and Table 1).
const (
	CNOTCycles         = 2
	EdgeRotationCycles = 3
	HadamardCycles     = 3
)

// Op is an in-flight operation. Ops are created by the State.Start*
// methods and owned by the engine; schedulers hold references but must not
// mutate them.
type Op struct {
	ID   int
	Kind OpKind
	// Node is the DAG node this op works toward, or -1 (edge rotations
	// requested for routing are attributed to their CNOT's node; helper
	// ops may use -1).
	Node int
	// Qubits lists the data qubits reserved by the op.
	Qubits []int
	// Tiles lists the ancilla tiles reserved by the op. For OpInjection
	// the first tile is the prepared-state tile.
	Tiles []lattice.Coord
	// Angle is the rotation being prepared/injected (prep & injection).
	Angle circuit.Angle
	// InjKind selects ZZ vs CNOT injection (injection only).
	InjKind rus.InjectionKind

	start     int // first active cycle
	remaining int // fixed-duration ops; unused for OpPrep
	prepared  bool
	consumed  bool // prepared state claimed by an injection
	done      bool

	// Inline backing for the common reservation sizes, so starting an op
	// allocates nothing beyond the Op itself: Qubits holds at most two
	// entries, and Tiles only exceeds four for long CNOT paths (which then
	// spill to the heap).
	qubitsBuf [2]int
	tilesBuf  [4]lattice.Coord
}

// StartCycle returns the first cycle in which the op was active.
func (o *Op) StartCycle() int { return o.start }

// Prepared reports whether a prep op has finished and holds a usable
// |m_theta> state awaiting injection or discard.
func (o *Op) Prepared() bool { return o.prepared && !o.consumed && !o.done }

// ExpectedRemaining estimates the op's remaining duration in cycles. For
// fixed-duration ops it is exact; for preparations it is the geometric
// mean-time-to-success (memoryless, so independent of elapsed time);
// prepared-but-unconsumed states report zero.
func (o *Op) ExpectedRemaining(prepExpected float64) float64 {
	switch {
	case o.done:
		return 0
	case o.Kind == OpPrep:
		if o.prepared {
			return 0
		}
		return prepExpected
	default:
		return float64(o.remaining)
	}
}

func (o *Op) String() string {
	return fmt.Sprintf("op%d(%s node=%d qubits=%v tiles=%v)", o.ID, o.Kind, o.Node, o.Qubits, o.Tiles)
}
