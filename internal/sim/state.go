package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/lattice"
	"repro/internal/rus"
)

// GateStatus tracks a DAG node through its lifecycle.
type GateStatus uint8

const (
	// GatePending means some dependency has not completed.
	GatePending GateStatus = iota
	// GateReady means all dependencies completed; the scheduler may act.
	GateReady
	// GateDone means the scheduler reported completion.
	GateDone
)

// Config parameterizes one simulation.
type Config struct {
	// Distance is the surface code distance d.
	Distance int
	// PhysError is the physical qubit error rate p.
	PhysError float64
	// ActivityWindow is c, the sliding window (in cycles) over which
	// ancilla activity is measured. Defaults to 100.
	ActivityWindow int
	// MaxCycles aborts runaway simulations. Defaults to 20,000,000.
	MaxCycles int
	// StallLimit aborts if this many consecutive cycles pass with
	// pending gates but no op in flight and none started (a scheduler
	// deadlock). Defaults to 50,000.
	StallLimit int
}

func (c Config) withDefaults() Config {
	if c.ActivityWindow <= 0 {
		c.ActivityWindow = 100
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 20_000_000
	}
	if c.StallLimit <= 0 {
		c.StallLimit = 50_000
	}
	return c
}

// RUSParams returns the preparation-model parameters for this config.
func (c Config) RUSParams() rus.Params {
	return rus.Params{Distance: c.Distance, PhysError: c.PhysError}
}

// State is the complete simulation state visible to schedulers.
type State struct {
	cfg  Config
	grid *lattice.Grid
	dag  *circuit.DAG
	rng  *rand.Rand

	cycle int

	// prepSuccess is the per-cycle completion probability of a prep op;
	// prepExpected is its mean duration in cycles.
	prepSuccess  float64
	prepExpected float64

	// Occupancy: tileOp[tileIndex] and qubitOp[q] hold the reserving op,
	// or nil.
	tileOp  []*Op
	qubitOp []*Op

	ops    map[int]*Op
	nextOp int
	// active is the advancing subset of ops (prepared preps are parked),
	// kept in ID order: IDs increase monotonically and ops are appended at
	// creation, so no per-cycle sort is needed. Entries that park or
	// complete outside the engine's advance loop (e.g. CancelPrep) stay in
	// place until the next advance compacts them away.
	active []*Op

	// Gate bookkeeping.
	status     []GateStatus
	predLeft   []int
	readyAt    []int // cycle at which the node became ready
	doneAt     []int
	numDone    int
	readyCount int

	// Per-cycle outputs collected by the engine.
	startedThisCycle int

	// Activity tracking: ring buffer of busy flags per ancilla ID, plus
	// cumulative busy counts for the utilization heatmap.
	actWindow  int
	actBuf     []uint8 // [ancID * actWindow + (cycle % actWindow)]
	actSum     []int   // rolling sums per ancilla
	actTotal   []int   // cumulative busy cycles per ancilla
	ancTileIdx []int32 // ancilla ID -> dense tile index, precomputed

	// Idle tracking per data qubit.
	idleCycles []int
	lastGateAt []int // cycle when the qubit's last gate finished (-1 while pending)
	gatesLeft  []int // outstanding scheduled gates per qubit

	// Counters for Result.
	prepsStarted      int
	injectionsStarted int
	injectionFailures int
	edgeRotations     int
}

// newState wires a State for the engine; schedulers receive it via Init.
func newState(g *lattice.Grid, dag *circuit.DAG, cfg Config, seed int64) *State {
	cfg = cfg.withDefaults()
	params := cfg.RUSParams()
	st := &State{
		cfg:          cfg,
		grid:         g,
		dag:          dag,
		rng:          rand.New(rand.NewSource(seed)),
		prepSuccess:  params.PrepSuccessPerCycle(),
		prepExpected: params.ExpectedPrepCycles(),
		tileOp:       make([]*Op, g.NumTiles()),
		qubitOp:      make([]*Op, g.NumQubits()),
		ops:          make(map[int]*Op),
		active:       make([]*Op, 0, 64),
		status:       make([]GateStatus, dag.Len()),
		predLeft:     make([]int, dag.Len()),
		readyAt:      make([]int, dag.Len()),
		doneAt:       make([]int, dag.Len()),
		actWindow:    cfg.ActivityWindow,
		actBuf:       make([]uint8, g.NumAncilla()*cfg.ActivityWindow),
		actSum:       make([]int, g.NumAncilla()),
		actTotal:     make([]int, g.NumAncilla()),
		idleCycles:   make([]int, g.NumQubits()),
		lastGateAt:   make([]int, g.NumQubits()),
		gatesLeft:    make([]int, g.NumQubits()),
	}
	for i := 0; i < dag.Len(); i++ {
		st.predLeft[i] = dag.InDegree(i)
		if st.predLeft[i] == 0 {
			st.status[i] = GateReady
			st.readyAt[i] = 1 // ready from the first cycle
			st.readyCount++
		}
		st.doneAt[i] = -1
		g := dag.Gate(i)
		for j := 0; j < g.Kind.NumQubits(); j++ {
			st.gatesLeft[g.Qubits[j]]++
		}
	}
	for q := range st.lastGateAt {
		st.lastGateAt[q] = -1
	}
	st.ancTileIdx = make([]int32, g.NumAncilla())
	for a := range st.ancTileIdx {
		st.ancTileIdx[a] = int32(g.TileIndex(g.AncillaTile(a)))
	}
	return st
}

// Cycle returns the current simulation cycle (first cycle is 1).
func (st *State) Cycle() int { return st.cycle }

// Grid returns the lattice fabric.
func (st *State) Grid() *lattice.Grid { return st.grid }

// DAG returns the gate dependency DAG.
func (st *State) DAG() *circuit.DAG { return st.dag }

// RNG returns the simulation's seeded random source. Schedulers may use it
// for tie-breaking so whole runs stay reproducible from one seed.
func (st *State) RNG() *rand.Rand { return st.rng }

// Config returns the simulation configuration.
func (st *State) Config() Config { return st.cfg }

// PrepExpectedCycles returns the mean |m_theta> preparation time used for
// expected-free-time estimates.
func (st *State) PrepExpectedCycles() float64 { return st.prepExpected }

// Status returns the lifecycle status of DAG node n.
func (st *State) Status(n int) GateStatus { return st.status[n] }

// ReadyAt returns the cycle at which node n became ready (0 for roots).
func (st *State) ReadyAt(n int) int { return st.readyAt[n] }

// NumDone returns the count of completed gates.
func (st *State) NumDone() int { return st.numDone }

// AllDone reports whether every scheduled gate has completed.
func (st *State) AllDone() bool { return st.numDone == st.dag.Len() }

// TileFree reports whether the tile at c is a live ancilla not reserved by
// any op.
func (st *State) TileFree(c lattice.Coord) bool {
	return st.grid.Kind(c) == lattice.TileAncilla && st.tileOp[st.grid.TileIndex(c)] == nil
}

// TileOp returns the op reserving ancilla tile c, or nil.
func (st *State) TileOp(c lattice.Coord) *Op {
	if !st.grid.InBounds(c) {
		return nil
	}
	return st.tileOp[st.grid.TileIndex(c)]
}

// QubitFree reports whether data qubit q is not reserved by any op.
func (st *State) QubitFree(q int) bool { return st.qubitOp[q] == nil }

// QubitOp returns the op reserving data qubit q, or nil.
func (st *State) QubitOp(q int) *Op { return st.qubitOp[q] }

// Activity returns the fraction of the last c cycles during which ancilla
// ancID was reserved (paper section 4.2).
func (st *State) Activity(ancID int) float64 {
	return float64(st.actSum[ancID]) / float64(st.actWindow)
}

// Op returns a live op by ID, or nil.
func (st *State) Op(id int) *Op { return st.ops[id] }

// --- Op starters -----------------------------------------------------

func (st *State) newOp(kind OpKind, node int, dur int) *Op {
	st.nextOp++
	op := &Op{ID: st.nextOp, Kind: kind, Node: node, start: st.cycle, remaining: dur}
	op.Qubits = op.qubitsBuf[:0]
	op.Tiles = op.tilesBuf[:0]
	st.ops[op.ID] = op
	st.active = append(st.active, op)
	st.startedThisCycle++
	return op
}

func (st *State) reserveTile(op *Op, c lattice.Coord) {
	st.tileOp[st.grid.TileIndex(c)] = op
	op.Tiles = append(op.Tiles, c)
}

func (st *State) reserveQubit(op *Op, q int) {
	st.qubitOp[q] = op
	op.Qubits = append(op.Qubits, q)
}

// StartCNOT begins a two-cycle lattice-surgery CNOT for DAG node n between
// control and target along the given ancilla path. The path must be a
// contiguous sequence of free ancilla tiles whose first tile is adjacent to
// the control across a Z edge and whose last tile is adjacent to the target
// across an X edge; both qubits must be free.
func (st *State) StartCNOT(n, control, target int, path []lattice.Coord) (*Op, error) {
	if err := st.checkNode(n); err != nil {
		return nil, err
	}
	if len(path) == 0 {
		return nil, fmt.Errorf("sim: CNOT needs a non-empty ancilla path")
	}
	if !st.QubitFree(control) || !st.QubitFree(target) {
		return nil, fmt.Errorf("sim: CNOT qubits %d,%d not free", control, target)
	}
	if !st.grid.PathContiguous(path) {
		return nil, fmt.Errorf("sim: CNOT path %v not contiguous ancillas", path)
	}
	for _, c := range path {
		if !st.TileFree(c) {
			return nil, fmt.Errorf("sim: CNOT path tile %v busy", c)
		}
	}
	if !st.adjacentAcross(control, path[0], st.grid.ZEdgeDirs(control)) {
		return nil, fmt.Errorf("sim: path head %v not on Z edge of control %d", path[0], control)
	}
	if !st.adjacentAcross(target, path[len(path)-1], st.grid.XEdgeDirs(target)) {
		return nil, fmt.Errorf("sim: path tail %v not on X edge of target %d", path[len(path)-1], target)
	}
	op := st.newOp(OpCNOT, n, CNOTCycles)
	st.reserveQubit(op, control)
	st.reserveQubit(op, target)
	for _, c := range path {
		st.reserveTile(op, c)
	}
	return op, nil
}

// StartEdgeRotation begins a three-cycle edge rotation on qubit q using the
// adjacent free ancilla helper; on completion the qubit's orientation
// toggles. node attributes the rotation to a DAG node for statistics (-1
// is allowed).
func (st *State) StartEdgeRotation(node, q int, helper lattice.Coord) (*Op, error) {
	if !st.QubitFree(q) {
		return nil, fmt.Errorf("sim: edge rotation qubit %d busy", q)
	}
	if !st.TileFree(helper) {
		return nil, fmt.Errorf("sim: edge rotation helper %v not free", helper)
	}
	if !tilesAdjacent(st.grid.DataTile(q), helper) {
		return nil, fmt.Errorf("sim: helper %v not adjacent to qubit %d", helper, q)
	}
	op := st.newOp(OpEdgeRotation, node, EdgeRotationCycles)
	st.reserveQubit(op, q)
	st.reserveTile(op, helper)
	st.edgeRotations++
	return op, nil
}

// StartHadamard begins a three-cycle Hadamard for DAG node n on qubit q
// using one adjacent free ancilla tile.
func (st *State) StartHadamard(n, q int, helper lattice.Coord) (*Op, error) {
	if err := st.checkNode(n); err != nil {
		return nil, err
	}
	if !st.QubitFree(q) {
		return nil, fmt.Errorf("sim: hadamard qubit %d busy", q)
	}
	if !st.TileFree(helper) {
		return nil, fmt.Errorf("sim: hadamard helper %v not free", helper)
	}
	if !tilesAdjacent(st.grid.DataTile(q), helper) {
		return nil, fmt.Errorf("sim: helper %v not adjacent to qubit %d", helper, q)
	}
	op := st.newOp(OpHadamard, n, HadamardCycles)
	st.reserveQubit(op, q)
	st.reserveTile(op, helper)
	return op, nil
}

// StartPrep begins a repeat-until-success |m_theta> preparation on the
// free ancilla tile. The op completes stochastically; once complete it
// parks in the Prepared state, holding the tile until injected or
// discarded.
func (st *State) StartPrep(node int, tile lattice.Coord, angle circuit.Angle) (*Op, error) {
	if !st.TileFree(tile) {
		return nil, fmt.Errorf("sim: prep tile %v not free", tile)
	}
	if angle.IsClifford() {
		return nil, fmt.Errorf("sim: prep of Clifford angle %v is pointless", angle)
	}
	op := st.newOp(OpPrep, node, 0)
	op.Angle = angle
	st.reserveTile(op, tile)
	st.prepsStarted++
	return op, nil
}

// StartInjection consumes the prepared state on prepTile and injects it
// into qubit q for DAG node n. For InjectZZ the prep tile must be adjacent
// to q across a Z edge (1 cycle). For InjectCNOT a free helper ancilla
// adjacent to both the prep tile and q across q's X edge is required
// (2 cycles). The injected angle must match the prepared angle.
func (st *State) StartInjection(n, q int, prepTile lattice.Coord, kind rus.InjectionKind, helper lattice.Coord, angle circuit.Angle) (*Op, error) {
	if err := st.checkNode(n); err != nil {
		return nil, err
	}
	if !st.QubitFree(q) {
		return nil, fmt.Errorf("sim: injection qubit %d busy", q)
	}
	prepOp := st.TileOp(prepTile)
	if prepOp == nil || prepOp.Kind != OpPrep || !prepOp.Prepared() {
		return nil, fmt.Errorf("sim: no prepared state at %v", prepTile)
	}
	if !prepOp.Angle.Equal(angle) {
		return nil, fmt.Errorf("sim: prepared angle %v != requested %v", prepOp.Angle, angle)
	}
	spec := rus.SpecFor(kind)
	switch kind {
	case rus.InjectZZ:
		if !st.adjacentAcross(q, prepTile, st.grid.ZEdgeDirs(q)) {
			return nil, fmt.Errorf("sim: ZZ injection needs prep tile %v on Z edge of %d", prepTile, q)
		}
	case rus.InjectCNOT:
		if !st.TileFree(helper) {
			return nil, fmt.Errorf("sim: CNOT injection helper %v not free", helper)
		}
		if !tilesAdjacent(prepTile, helper) {
			return nil, fmt.Errorf("sim: helper %v not adjacent to prep tile %v", helper, prepTile)
		}
		if !st.adjacentAcross(q, helper, st.grid.XEdgeDirs(q)) {
			return nil, fmt.Errorf("sim: CNOT injection helper %v not on X edge of %d", helper, q)
		}
	default:
		return nil, fmt.Errorf("sim: unknown injection kind %v", kind)
	}
	// Consume the parked prep: its tile transfers to the injection op.
	prepOp.consumed = true
	prepOp.done = true
	delete(st.ops, prepOp.ID)
	st.tileOp[st.grid.TileIndex(prepTile)] = nil

	op := st.newOp(OpInjection, n, spec.Cycles)
	op.Angle = angle
	op.InjKind = kind
	st.reserveQubit(op, q)
	st.reserveTile(op, prepTile)
	if kind == rus.InjectCNOT {
		st.reserveTile(op, helper)
	}
	st.injectionsStarted++
	return op, nil
}

// DiscardPrepared releases a prepared-but-unneeded |m_theta> state,
// freeing its ancilla tile immediately.
func (st *State) DiscardPrepared(tile lattice.Coord) error {
	op := st.TileOp(tile)
	if op == nil || op.Kind != OpPrep || !op.Prepared() {
		return fmt.Errorf("sim: no prepared state at %v to discard", tile)
	}
	op.done = true
	delete(st.ops, op.ID)
	st.tileOp[st.grid.TileIndex(tile)] = nil
	return nil
}

// CancelPrep aborts an in-progress (not yet prepared) preparation,
// reclaiming the ancilla for other work — the paper's "we can reclaim them
// and try to prepare the state using n-m ancilla in the next cycle".
func (st *State) CancelPrep(tile lattice.Coord) error {
	op := st.TileOp(tile)
	if op == nil || op.Kind != OpPrep || op.prepared {
		return fmt.Errorf("sim: no cancellable preparation at %v", tile)
	}
	op.done = true
	delete(st.ops, op.ID)
	st.tileOp[st.grid.TileIndex(tile)] = nil
	return nil
}

// CompleteGate marks DAG node n done, unlocking its successors at the next
// cycle. Schedulers call this after the op(s) realizing the gate finish
// (for Rz, after a successful final injection).
func (st *State) CompleteGate(n int) {
	if st.status[n] != GateReady {
		panic(fmt.Sprintf("sim: CompleteGate(%d) in status %d", n, st.status[n]))
	}
	st.status[n] = GateDone
	st.doneAt[n] = st.cycle
	st.numDone++
	st.readyCount--
	g := st.dag.Gate(n)
	for j := 0; j < g.Kind.NumQubits(); j++ {
		q := g.Qubits[j]
		st.gatesLeft[q]--
		if st.gatesLeft[q] == 0 {
			st.lastGateAt[q] = st.cycle
		}
	}
	for _, s := range st.dag.Succ(n) {
		st.predLeft[s]--
		if st.predLeft[s] == 0 {
			st.status[s] = GateReady
			st.readyAt[s] = st.cycle + 1
			st.readyCount++
		}
	}
}

// --- helpers ----------------------------------------------------------

func (st *State) checkNode(n int) error {
	if n < 0 || n >= st.dag.Len() {
		return fmt.Errorf("sim: node %d out of range", n)
	}
	if st.status[n] != GateReady {
		return fmt.Errorf("sim: node %d not ready (status %d)", n, st.status[n])
	}
	return nil
}

// adjacentAcross reports whether tile t is the neighbour of qubit q in one
// of the given directions.
func (st *State) adjacentAcross(q int, t lattice.Coord, dirs [2]lattice.Dir) bool {
	c := st.grid.DataTile(q)
	return c.Step(dirs[0]) == t || c.Step(dirs[1]) == t
}

func tilesAdjacent(a, b lattice.Coord) bool {
	dr, dc := a.Row-b.Row, a.Col-b.Col
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr+dc == 1
}
