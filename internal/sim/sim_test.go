package sim

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/lattice"
	"repro/internal/rus"
)

// scriptSched is a programmable scheduler for engine tests.
type scriptSched struct {
	name    string
	init    func(st *State) error
	onCycle func(st *State)
	onDone  func(st *State, op *Op, success bool)
}

func (s *scriptSched) Name() string {
	if s.name == "" {
		return "script"
	}
	return s.name
}
func (s *scriptSched) Init(st *State) error {
	if s.init != nil {
		return s.init(st)
	}
	return nil
}
func (s *scriptSched) OnCycle(st *State) {
	if s.onCycle != nil {
		s.onCycle(st)
	}
}
func (s *scriptSched) OnOpDone(st *State, op *Op, success bool) {
	if s.onDone != nil {
		s.onDone(st, op, success)
	}
}

func testCfg() Config { return Config{Distance: 7, PhysError: 1e-4} }

func TestEmptyCircuitCompletesImmediately(t *testing.T) {
	g := lattice.MustBuild("star", 2, nil)
	c := circuit.New("empty", 2)
	c.X(0) // frame-only: DAG is empty
	res, err := RunSeeded(g, c, testCfg(), 1, &scriptSched{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != 0 {
		t.Errorf("TotalCycles = %d, want 0", res.TotalCycles)
	}
}

func TestCNOTTakesTwoCycles(t *testing.T) {
	g := lattice.MustBuild("star", 4, nil)
	c := circuit.New("cnot", 4)
	c.CNOT(0, 1)
	started := false
	sched := &scriptSched{
		onCycle: func(st *State) {
			if started {
				return
			}
			// Control 0 at (1,1): Z edge tiles (0,1)/(2,1). Target 1 at
			// (1,3): X edge tiles (1,2)/(1,4).
			path := []lattice.Coord{lattice.At(2, 1), lattice.At(2, 2), lattice.At(1, 2)}
			if _, err := st.StartCNOT(0, 0, 1, path); err != nil {
				t.Fatalf("StartCNOT: %v", err)
			}
			started = true
		},
		onDone: func(st *State, op *Op, success bool) {
			if op.Kind != OpCNOT || !success {
				t.Fatalf("unexpected completion %v success=%v", op, success)
			}
			st.CompleteGate(op.Node)
		},
	}
	res, err := RunSeeded(g, c, testCfg(), 1, sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != CNOTCycles {
		t.Errorf("TotalCycles = %d, want %d", res.TotalCycles, CNOTCycles)
	}
	if len(res.CNOTLatencies) != 1 || res.CNOTLatencies[0] != 2 {
		t.Errorf("CNOTLatencies = %v, want [2]", res.CNOTLatencies)
	}
}

func TestCNOTValidationErrors(t *testing.T) {
	g := lattice.MustBuild("star", 4, nil)
	c := circuit.New("cnot", 4)
	c.CNOT(0, 1)
	dag := circuit.NewDAG(c)
	eng := NewEngine(g, dag, testCfg(), 1, &scriptSched{})
	st := eng.State()
	st.cycle = 1

	// Path not touching control's Z edge.
	if _, err := st.StartCNOT(0, 0, 1, []lattice.Coord{lattice.At(1, 2)}); err == nil {
		t.Error("expected Z-edge violation")
	}
	// Path not touching target's X edge.
	if _, err := st.StartCNOT(0, 0, 1, []lattice.Coord{lattice.At(0, 1), lattice.At(0, 2), lattice.At(0, 3)}); err == nil {
		t.Error("expected X-edge violation")
	}
	// Non-contiguous path.
	if _, err := st.StartCNOT(0, 0, 1, []lattice.Coord{lattice.At(0, 1), lattice.At(1, 2)}); err == nil {
		t.Error("expected contiguity violation")
	}
	// Empty path.
	if _, err := st.StartCNOT(0, 0, 1, nil); err == nil {
		t.Error("expected empty-path error")
	}
	// Valid path works.
	if _, err := st.StartCNOT(0, 0, 1, []lattice.Coord{lattice.At(2, 1), lattice.At(2, 2), lattice.At(1, 2)}); err != nil {
		t.Errorf("valid CNOT rejected: %v", err)
	}
	// Second CNOT on same qubits: busy.
	if _, err := st.StartCNOT(0, 0, 1, []lattice.Coord{lattice.At(0, 1), lattice.At(0, 2), lattice.At(1, 2)}); err == nil {
		t.Error("expected busy-qubit error")
	}
}

func TestEdgeRotationTogglesOrientation(t *testing.T) {
	g := lattice.MustBuild("star", 4, nil)
	c := circuit.New("h", 4)
	c.H(0) // just to have a nonempty DAG; we complete it after rotating
	rotDone := false
	sched := &scriptSched{
		onCycle: func(st *State) {
			if st.Cycle() == 1 {
				if _, err := st.StartEdgeRotation(-1, 0, lattice.At(0, 1)); err != nil {
					t.Fatalf("StartEdgeRotation: %v", err)
				}
			}
		},
		onDone: func(st *State, op *Op, success bool) {
			switch op.Kind {
			case OpEdgeRotation:
				rotDone = true
				if st.Grid().Orientation(0) != lattice.ZEastWest {
					t.Error("orientation should toggle after edge rotation")
				}
				if st.Cycle() != EdgeRotationCycles {
					t.Errorf("edge rotation finished at cycle %d, want %d", st.Cycle(), EdgeRotationCycles)
				}
				if _, err := st.StartHadamard(0, 0, lattice.At(1, 0)); err != nil {
					t.Fatalf("StartHadamard: %v", err)
				}
			case OpHadamard:
				st.CompleteGate(0)
			}
		},
	}
	res, err := RunSeeded(g, c, testCfg(), 1, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !rotDone {
		t.Fatal("edge rotation never completed")
	}
	// Rotation finishes at the end of cycle 3; the Hadamard started in
	// its completion callback is active cycles 4-6: total 6.
	if res.TotalCycles != 6 {
		t.Errorf("TotalCycles = %d, want 6", res.TotalCycles)
	}
}

func TestPrepInjectLifecycle(t *testing.T) {
	g := lattice.MustBuild("star", 4, nil)
	c := circuit.New("rz", 4)
	angle := circuit.NewAngle(1, 3) // non-dyadic: RUS never leaves injection
	c.Rz(0, angle)
	cur := angle
	sched := &scriptSched{
		onCycle: func(st *State) {
			// Keep a prep going on the Z-edge ancilla whenever idle.
			tile := lattice.At(0, 1)
			if st.TileFree(tile) && st.Status(0) == GateReady {
				if _, err := st.StartPrep(0, tile, cur); err != nil {
					t.Fatalf("StartPrep: %v", err)
				}
			}
		},
		onDone: func(st *State, op *Op, success bool) {
			switch op.Kind {
			case OpPrep:
				if !op.Prepared() {
					t.Fatal("prep completion without Prepared state")
				}
				if _, err := st.StartInjection(0, 0, op.Tiles[0], rus.InjectZZ, lattice.Coord{}, cur); err != nil {
					t.Fatalf("StartInjection: %v", err)
				}
			case OpInjection:
				if success {
					st.CompleteGate(0)
				} else {
					cur = cur.Double()
				}
			}
		},
	}
	res, err := RunSeeded(g, c, testCfg(), 42, sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles < 2 {
		t.Errorf("suspiciously fast Rz: %d cycles", res.TotalCycles)
	}
	if res.InjectionsStarted < 1 || res.PrepsStarted < 1 {
		t.Errorf("counters: preps=%d injections=%d", res.PrepsStarted, res.InjectionsStarted)
	}
	if res.InjectionsStarted != res.InjectionFailures+1 {
		t.Errorf("injection bookkeeping: %d started, %d failed (want exactly one success)",
			res.InjectionsStarted, res.InjectionFailures)
	}
}

func TestInjectionValidation(t *testing.T) {
	g := lattice.MustBuild("star", 4, nil)
	c := circuit.New("rz", 4)
	angle := circuit.NewAngle(1, 3)
	c.Rz(0, angle)
	dag := circuit.NewDAG(c)
	eng := NewEngine(g, dag, testCfg(), 1, &scriptSched{})
	st := eng.State()
	st.cycle = 1

	// No prepared state anywhere.
	if _, err := st.StartInjection(0, 0, lattice.At(0, 1), rus.InjectZZ, lattice.Coord{}, angle); err == nil {
		t.Error("expected error: nothing prepared")
	}
	// Prepare by hand: run a prep op to completion.
	op, err := st.StartPrep(0, lattice.At(0, 1), angle)
	if err != nil {
		t.Fatal(err)
	}
	op.prepared = true

	// Wrong angle.
	if _, err := st.StartInjection(0, 0, op.Tiles[0], rus.InjectZZ, lattice.Coord{}, angle.Double()); err == nil {
		t.Error("expected angle mismatch error")
	}
	// ZZ injection from an X-edge tile must fail: prepare on (1,0).
	op2, err := st.StartPrep(0, lattice.At(1, 0), angle)
	if err != nil {
		t.Fatal(err)
	}
	op2.prepared = true
	if _, err := st.StartInjection(0, 0, lattice.At(1, 0), rus.InjectZZ, lattice.Coord{}, angle); err == nil {
		t.Error("expected Z-edge violation for ZZ injection")
	}
	// CNOT injection via diagonal prep (0,0) and helper (1,0) on X edge:
	if _, err := st.StartInjection(0, 0, lattice.At(0, 1), rus.InjectCNOT, lattice.At(1, 0), angle); err == nil {
		t.Error("expected helper-adjacency violation (helper not adjacent to prep tile)")
	}
	// Free the helper tile by discarding the parked state on (1,0).
	if err := st.DiscardPrepared(lattice.At(1, 0)); err != nil {
		t.Fatalf("DiscardPrepared: %v", err)
	}
	// Valid CNOT injection: prep at (0,0) — adjacent to helper (1,0) which
	// is on the X edge (west) of qubit 0 at (1,1).
	op3, err := st.StartPrep(0, lattice.At(0, 0), angle)
	if err != nil {
		t.Fatal(err)
	}
	op3.prepared = true
	inj, err := st.StartInjection(0, 0, lattice.At(0, 0), rus.InjectCNOT, lattice.At(1, 0), angle)
	if err != nil {
		t.Fatalf("valid CNOT injection rejected: %v", err)
	}
	if inj.remaining != rus.SpecFor(rus.InjectCNOT).Cycles {
		t.Errorf("CNOT injection duration = %d, want 2", inj.remaining)
	}
}

func TestDiscardAndCancelPrep(t *testing.T) {
	g := lattice.MustBuild("star", 4, nil)
	c := circuit.New("rz", 4)
	c.Rz(0, circuit.NewAngle(1, 3))
	dag := circuit.NewDAG(c)
	eng := NewEngine(g, dag, testCfg(), 1, &scriptSched{})
	st := eng.State()
	st.cycle = 1
	tile := lattice.At(0, 1)

	op, err := st.StartPrep(0, tile, circuit.NewAngle(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Cancel while still in progress.
	if err := st.CancelPrep(tile); err != nil {
		t.Fatalf("CancelPrep: %v", err)
	}
	if !st.TileFree(tile) {
		t.Error("tile should be free after cancel")
	}
	// Discard requires a prepared state.
	if err := st.DiscardPrepared(tile); err == nil {
		t.Error("discard of empty tile should fail")
	}
	op, err = st.StartPrep(0, tile, circuit.NewAngle(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	op.prepared = true
	if err := st.CancelPrep(tile); err == nil {
		t.Error("cancel of prepared state should fail (use Discard)")
	}
	if err := st.DiscardPrepared(tile); err != nil {
		t.Fatalf("DiscardPrepared: %v", err)
	}
	if !st.TileFree(tile) {
		t.Error("tile should be free after discard")
	}
}

func TestStallDetection(t *testing.T) {
	g := lattice.MustBuild("star", 2, nil)
	c := circuit.New("stall", 2)
	c.CNOT(0, 1)
	cfg := testCfg()
	cfg.StallLimit = 10
	_, err := RunSeeded(g, c, cfg, 1, &scriptSched{}) // never schedules anything
	if err == nil {
		t.Fatal("expected stall error")
	}
}

func TestMaxCyclesAbort(t *testing.T) {
	g := lattice.MustBuild("star", 2, nil)
	c := circuit.New("slow", 2)
	c.CNOT(0, 1)
	cfg := testCfg()
	cfg.MaxCycles = 5
	busy := &scriptSched{
		onCycle: func(st *State) {
			// Permanently spin an edge rotation so there is "progress"
			// but the gate never completes.
			if st.QubitFree(0) {
				if _, err := st.StartEdgeRotation(-1, 0, lattice.At(0, 1)); err != nil {
					t.Fatalf("StartEdgeRotation: %v", err)
				}
			}
		},
	}
	if _, err := RunSeeded(g, c, cfg, 1, busy); err == nil {
		t.Fatal("expected max-cycles error")
	}
}

func TestInjectionFailureRateNearHalf(t *testing.T) {
	// Run many single-Rz circuits with a non-dyadic angle: across all
	// injections the failure rate must approach 1/2.
	var started, failed int
	for seed := int64(0); seed < 40; seed++ {
		g := lattice.MustBuild("star", 4, nil)
		c := circuit.New("rz", 4)
		angle := circuit.NewAngle(1, 3)
		c.Rz(0, angle)
		cur := angle
		sched := &scriptSched{
			onCycle: func(st *State) {
				tile := lattice.At(0, 1)
				if st.TileFree(tile) && st.Status(0) == GateReady {
					if _, err := st.StartPrep(0, tile, cur); err != nil {
						t.Fatal(err)
					}
				}
			},
			onDone: func(st *State, op *Op, success bool) {
				switch op.Kind {
				case OpPrep:
					if _, err := st.StartInjection(0, 0, op.Tiles[0], rus.InjectZZ, lattice.Coord{}, cur); err != nil {
						t.Fatal(err)
					}
				case OpInjection:
					if success {
						st.CompleteGate(0)
					} else {
						cur = cur.Double()
					}
				}
			},
		}
		res, err := RunSeeded(g, c, testCfg(), seed, sched)
		if err != nil {
			t.Fatal(err)
		}
		started += res.InjectionsStarted
		failed += res.InjectionFailures
		cur = angle
	}
	rate := float64(failed) / float64(started)
	if math.Abs(rate-0.5) > 0.15 {
		t.Errorf("injection failure rate = %v over %d injections, want ~0.5", rate, started)
	}
	// Expected injections per gate is 2 (Equation 1).
	perGate := float64(started) / 40
	if perGate < 1.4 || perGate > 2.8 {
		t.Errorf("injections per gate = %v, want ~2", perGate)
	}
}

func TestActivityWindowTracksBusyAncilla(t *testing.T) {
	g := lattice.MustBuild("star", 4, nil)
	c := circuit.New("busy", 4)
	c.CNOT(0, 1)
	cfg := testCfg()
	cfg.ActivityWindow = 10
	dag := circuit.NewDAG(c)
	var observed float64
	sched := &scriptSched{
		onCycle: func(st *State) {
			if st.Cycle() == 1 {
				path := []lattice.Coord{lattice.At(2, 1), lattice.At(2, 2), lattice.At(1, 2)}
				if _, err := st.StartCNOT(0, 0, 1, path); err != nil {
					t.Fatal(err)
				}
			}
		},
		onDone: func(st *State, op *Op, success bool) {
			observed = st.Activity(st.Grid().AncillaID(lattice.At(2, 2)))
			st.CompleteGate(op.Node)
		},
	}
	eng := NewEngine(g, dag, cfg, 1, sched)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The path ancilla was busy both cycles of a 2-cycle run; window 10.
	if math.Abs(observed-0.2) > 1e-9 {
		t.Errorf("activity = %v, want 0.2", observed)
	}
}

func TestAggregateResults(t *testing.T) {
	rs := []*Result{
		{Scheduler: "s", Benchmark: "b", TotalCycles: 10, MeanIdleFraction: 0.2, CNOTLatencies: []int{2}},
		{Scheduler: "s", Benchmark: "b", TotalCycles: 20, MeanIdleFraction: 0.4, CNOTLatencies: []int{5}},
	}
	a := AggregateResults(rs)
	if a.MeanCycles != 15 || a.MinCycles != 10 || a.MaxCycles != 20 {
		t.Errorf("aggregate cycles = %v/%v/%v", a.MeanCycles, a.MinCycles, a.MaxCycles)
	}
	if math.Abs(a.MeanIdle-0.3) > 1e-12 {
		t.Errorf("MeanIdle = %v, want 0.3", a.MeanIdle)
	}
	if len(a.CNOTLatencies) != 2 {
		t.Errorf("pooled latencies = %v", a.CNOTLatencies)
	}
	if math.Abs(a.StdCycles-5) > 1e-9 {
		t.Errorf("StdCycles = %v, want 5", a.StdCycles)
	}
}

func TestDeterministicUnderSameSeed(t *testing.T) {
	run := func(seed int64) *Result {
		g := lattice.MustBuild("star", 4, nil)
		c := circuit.New("rz", 4)
		angle := circuit.NewAngle(1, 3)
		c.Rz(0, angle)
		cur := angle
		sched := &scriptSched{
			onCycle: func(st *State) {
				tile := lattice.At(0, 1)
				if st.TileFree(tile) && st.Status(0) == GateReady {
					st.StartPrep(0, tile, cur)
				}
			},
			onDone: func(st *State, op *Op, success bool) {
				switch op.Kind {
				case OpPrep:
					st.StartInjection(0, 0, op.Tiles[0], rus.InjectZZ, lattice.Coord{}, cur)
				case OpInjection:
					if success {
						st.CompleteGate(0)
					} else {
						cur = cur.Double()
					}
				}
			},
		}
		res, err := RunSeeded(g, c, testCfg(), seed, sched)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	if a.TotalCycles != b.TotalCycles || a.InjectionsStarted != b.InjectionsStarted {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}
