package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelFor runs fn(i) for every i in [0, n) on a bounded pool of at most
// workers goroutines (workers <= 0 means GOMAXPROCS). With workers == 1 (or
// n < 2) it degenerates to a plain serial loop on the calling goroutine.
//
// The pool imposes no output ordering of its own: callers keep determinism
// by writing each iteration's result into a per-index slot and aggregating
// in index order after ParallelFor returns, so results are byte-identical
// to a serial loop regardless of goroutine completion order. Each seeded
// simulation owns its grid, scheduler state and RNG, which is what makes
// per-run fan-out safe in the first place.
func ParallelFor(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// DefaultWorkers returns the pool width ParallelFor uses for workers <= 0:
// one worker per CPU. Exported so other bounded pools (the rescqd service
// layer) size themselves identically.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }
