package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/lattice"
)

// TestRunContextPreCancelled: a cancelled context aborts before the first
// cycle, with the context error wrapped for callers to classify.
func TestRunContextPreCancelled(t *testing.T) {
	g := lattice.MustBuild("star", 4, nil)
	c := circuit.New("cnot", 4)
	c.CNOT(0, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSeededContext(ctx, g, c, testCfg(), 1, &scriptSched{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextCancelMidRun: cancellation lands inside the cycle loop —
// within one cancel-check stride — instead of waiting for the run to end.
func TestRunContextCancelMidRun(t *testing.T) {
	g := lattice.MustBuild("star", 2, nil)
	c := circuit.New("slow", 2)
	c.CNOT(0, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cycles := 0
	// The never-completing scheduler from the max-cycles test: it spins
	// edge rotations forever (progress every cycle, the gate never done),
	// so only the context check can end the run.
	busy := &scriptSched{
		onCycle: func(st *State) {
			cycles++
			if cycles == 3 {
				cancel()
			}
			if st.QubitFree(0) {
				if _, err := st.StartEdgeRotation(-1, 0, lattice.At(0, 1)); err != nil {
					t.Errorf("StartEdgeRotation: %v", err)
				}
			}
		},
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunSeededContext(ctx, g, c, testCfg(), 1, busy)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not abort")
	}
	if cycles > cancelCheckMask+4 {
		t.Errorf("run kept going for %d cycles after cancellation (stride %d)", cycles, cancelCheckMask+1)
	}
}
