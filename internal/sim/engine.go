package sim

import (
	"context"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/lattice"
)

// Scheduler is the policy plugged into the engine. The engine calls
// OnCycle once per cycle (the scheduler may start ops, which are active in
// the same cycle), then advances all active ops and delivers completion
// callbacks (ops started inside callbacks become active the next cycle).
type Scheduler interface {
	// Name identifies the scheduler in results ("rescq", "greedy", ...).
	Name() string
	// Init is called once before the first cycle.
	Init(st *State) error
	// OnCycle runs at the start of every cycle.
	OnCycle(st *State)
	// OnOpDone reports op completion. For OpInjection, success carries
	// the measurement outcome (true with probability 1/2); for all other
	// kinds success is true. The scheduler owns gate-completion logic
	// (calling st.CompleteGate) and failure handling.
	OnOpDone(st *State, op *Op, success bool)
}

// Engine couples a State with a Scheduler and runs to completion.
type Engine struct {
	st    *State
	sched Scheduler

	// completions is the reused per-cycle callback buffer of advance.
	completions []completion
}

type completion struct {
	op      *Op
	success bool
}

// NewEngine builds an engine over a fresh simulation state.
func NewEngine(g *lattice.Grid, dag *circuit.DAG, cfg Config, seed int64, sched Scheduler) *Engine {
	return &Engine{st: newState(g, dag, cfg, seed), sched: sched}
}

// State exposes the engine's state (mainly for tests).
func (e *Engine) State() *State { return e.st }

// Run executes the simulation until every gate completes and returns the
// collected statistics. It fails on scheduler deadlock (no progress for
// cfg.StallLimit cycles) or when cfg.MaxCycles is exceeded.
func (e *Engine) Run() (*Result, error) {
	return e.RunContext(context.Background())
}

// cancelCheckMask gates how often RunContext polls ctx: every 256 cycles.
// Polling costs a nil-channel select, but even a mutex-guarded ctx would be
// noise at this stride, while 256 cycles is a tiny fraction of any real
// circuit's makespan — cancellation lands promptly mid-run.
const cancelCheckMask = 255

// RunContext is Run with cooperative cancellation: the per-cycle loop
// polls ctx every few hundred cycles and aborts with ctx's error, so a
// cancelled serving request stops a long simulation mid-configuration
// instead of running it to completion.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	st := e.st
	if err := e.sched.Init(st); err != nil {
		return nil, fmt.Errorf("sim: scheduler init: %w", err)
	}
	done := ctx.Done() // nil for Background: the select below never fires
	stall := 0
	for !st.AllDone() {
		if st.cycle&cancelCheckMask == 0 {
			select {
			case <-done:
				return nil, fmt.Errorf("sim: aborted at cycle %d (%d/%d gates done): %w",
					st.cycle, st.numDone, st.dag.Len(), ctx.Err())
			default:
			}
		}
		st.cycle++
		if st.cycle > st.cfg.MaxCycles {
			return nil, fmt.Errorf("sim: exceeded max cycles %d (%d/%d gates done)",
				st.cfg.MaxCycles, st.numDone, st.dag.Len())
		}
		st.startedThisCycle = 0
		e.sched.OnCycle(st)
		// Occupancy is accounted before ops advance so that a tile or
		// qubit counts as busy through the final cycle of its op.
		e.accountActivity()
		e.accountIdle()
		progressed := e.advance()
		if st.startedThisCycle == 0 && !progressed && len(st.active) == 0 {
			stall++
			if stall > st.cfg.StallLimit {
				return nil, fmt.Errorf("sim: scheduler %s stalled for %d cycles at cycle %d (%d/%d gates done)",
					e.sched.Name(), stall, st.cycle, st.numDone, st.dag.Len())
			}
		} else {
			stall = 0
		}
	}
	return e.collect(), nil
}

// advance progresses all active ops by one cycle and fires completion
// callbacks. It reports whether any op advanced. Iteration order is
// deterministic without sorting: st.active is kept in creation (= ID)
// order, and this loop compacts out entries that complete here or parked /
// finished elsewhere since the last cycle. Ops the callbacks start are
// appended behind the compaction point and advance next cycle.
func (e *Engine) advance() bool {
	st := e.st
	if len(st.active) == 0 {
		return false
	}
	prev := st.active
	live := st.active[:0]
	completions := e.completions[:0]
	progressed := false
	for _, op := range prev {
		if op.done || (op.Kind == OpPrep && op.prepared) {
			continue // finished or parked outside this loop (e.g. CancelPrep)
		}
		if op.start > st.cycle {
			live = append(live, op) // starts next cycle (created inside a callback)
			continue
		}
		progressed = true
		switch op.Kind {
		case OpPrep:
			if st.rng.Float64() < st.prepSuccess {
				op.prepared = true // parks holding its tile
				completions = append(completions, completion{op, true})
			} else {
				live = append(live, op)
			}
		default:
			op.remaining--
			if op.remaining <= 0 {
				success := true
				if op.Kind == OpInjection {
					success = st.rng.Float64() < 0.5
					if !success {
						st.injectionFailures++
					}
				}
				e.finish(op)
				completions = append(completions, completion{op, success})
			} else {
				live = append(live, op)
			}
		}
	}
	for i := len(live); i < len(prev); i++ {
		prev[i] = nil // drop compacted-out op references for the GC
	}
	st.active = live
	for _, c := range completions {
		e.sched.OnOpDone(st, c.op, c.success)
	}
	for i := range completions {
		completions[i] = completion{} // drop op references for the GC
	}
	e.completions = completions[:0]
	return progressed
}

// finish releases a fixed-duration op's reservations. Prep ops are not
// finished here: they park holding their tile until consumed or discarded.
func (e *Engine) finish(op *Op) {
	st := e.st
	op.done = true
	delete(st.ops, op.ID)
	for _, q := range op.Qubits {
		if st.qubitOp[q] == op {
			st.qubitOp[q] = nil
		}
	}
	for _, t := range op.Tiles {
		i := st.grid.TileIndex(t)
		if st.tileOp[i] == op {
			st.tileOp[i] = nil
		}
	}
	if op.Kind == OpEdgeRotation {
		st.grid.ToggleOrientation(op.Qubits[0])
	}
}

// accountActivity updates the sliding-window busy counters per ancilla,
// using the tile indices precomputed at state construction.
func (e *Engine) accountActivity() {
	st := e.st
	slot := st.cycle % st.actWindow
	for ancID, tile := range st.ancTileIdx {
		busy := uint8(0)
		if st.tileOp[tile] != nil {
			busy = 1
		}
		pos := ancID*st.actWindow + slot
		st.actSum[ancID] += int(busy) - int(st.actBuf[pos])
		st.actBuf[pos] = busy
		st.actTotal[ancID] += int(busy)
	}
}

// accountIdle counts cycles in which a data qubit still has work but is
// not participating in any op.
func (e *Engine) accountIdle() {
	st := e.st
	for q := range st.idleCycles {
		if st.gatesLeft[q] > 0 && st.qubitOp[q] == nil {
			st.idleCycles[q]++
		}
	}
}

// collect builds the Result after completion.
func (e *Engine) collect() *Result {
	st := e.st
	r := &Result{
		Scheduler:          e.sched.Name(),
		TotalCycles:        st.cycle,
		AncillaUtilization: make([]float64, st.grid.NumAncilla()),
		PrepsStarted:       st.prepsStarted,
		InjectionsStarted:  st.injectionsStarted,
		InjectionFailures:  st.injectionFailures,
		EdgeRotations:      st.edgeRotations,
		IdlePerQubit:       make([]float64, st.grid.NumQubits()),
	}
	for n := 0; n < st.dag.Len(); n++ {
		lat := st.doneAt[n] - st.readyAt[n] + 1
		switch st.dag.Gate(n).Kind {
		case circuit.KindCNOT:
			r.CNOTLatencies = append(r.CNOTLatencies, lat)
		case circuit.KindRz:
			r.RzLatencies = append(r.RzLatencies, lat)
		}
	}
	if st.cycle > 0 {
		for a := range r.AncillaUtilization {
			r.AncillaUtilization[a] = float64(st.actTotal[a]) / float64(st.cycle)
		}
	}
	var idleSum float64
	for q := range r.IdlePerQubit {
		span := st.lastGateAt[q]
		if span <= 0 {
			span = st.cycle
		}
		f := float64(st.idleCycles[q]) / float64(span)
		r.IdlePerQubit[q] = f
		idleSum += f
	}
	r.MeanIdleFraction = idleSum / float64(len(r.IdlePerQubit))
	return r
}
