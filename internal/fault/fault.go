// Package fault is rescqd's deterministic fault-injection framework: named
// failpoints compiled into the daemon's fragile paths (cluster RPCs, WAL
// appends, worker execution) that stay dormant in production and turn into
// injected errors, latency, or both when a fault schedule is activated.
//
// # Failpoints
//
// A failpoint is a named site in the code:
//
//	if err := fault.Check("wal.write"); err != nil {
//	    return err // the injected failure, e.g. "disk full"
//	}
//
// When no schedule is active, Check is one atomic load and returns nil —
// the framework's whole cost on the production hot path. A schedule arms
// some subset of the points with an action (an error to return, a delay to
// sleep) and a trigger (every evaluation, the first N evaluations, or a
// seeded probability per evaluation).
//
// # Schedules
//
// A schedule is a semicolon-separated list of terms, each arming one point:
//
//	wal.write=err(disk full)              always fail with "disk full"
//	wal.write=3*err                       fail the first 3 evaluations
//	cluster.dispatch=err%0.25             fail 25% of evaluations (seeded)
//	cluster.execute=delay(50ms)%0.5       sleep 50ms on half the evaluations
//	cluster.register=2*delay(10ms)        sleep on the first 2 evaluations
//
// Schedules come from the RESCQ_FAILPOINTS environment variable (with
// RESCQ_FAULT_SEED seeding the probabilistic triggers), from the daemon
// config, or from Configure in tests. Probabilistic triggers draw from a
// per-point PRNG seeded by (seed, point name), so two runs with the same
// seed and the same evaluation order make identical decisions — the
// foundation of the repo's chaos suite: randomized fault schedules that a
// failing CI run can reproduce from the printed seed.
//
// The package is global (one schedule per process): failpoints are
// process-wide sites, and the chaos tests drive whole in-process clusters
// through one schedule.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel every injected error matches via errors.Is,
// so callers (and tests) can tell an injected failure from an organic one.
var ErrInjected = errors.New("fault: injected")

// Error is an injected failure: which point fired and the configured
// message.
type Error struct {
	Point string // failpoint name
	Msg   string // configured message, e.g. "disk full"
}

func (e *Error) Error() string { return fmt.Sprintf("fault %s: %s", e.Point, e.Msg) }

// Is makes every injected error match ErrInjected.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// Environment variables read by FromEnv.
const (
	// EnvSpec holds the fault schedule ("" keeps every failpoint dormant).
	EnvSpec = "RESCQ_FAILPOINTS"
	// EnvSeed seeds the probabilistic triggers (decimal int64; default 1).
	EnvSeed = "RESCQ_FAULT_SEED"
)

// kind is what an armed failpoint does when its trigger fires.
type kind int

const (
	kindOff   kind = iota // armed but inert (placeholder in a schedule)
	kindErr               // return an injected error
	kindDelay             // sleep, then continue
)

// point is one armed failpoint.
type point struct {
	mu    sync.Mutex
	name  string
	kind  kind
	msg   string        // kindErr message
	delay time.Duration // kindDelay duration
	prob  float64       // trigger probability; 1 = every evaluation
	count int64         // remaining firings; -1 = unlimited
	rng   *rand.Rand    // per-point, seeded by (seed, name)
	evals int64
	fires int64
}

// PointStats is one failpoint's lifetime evaluation/firing counts.
type PointStats struct {
	Evals int64 `json:"evals"`
	Fires int64 `json:"fires"`
}

var (
	// armed is the fast-path guard: when false (the default), Check is a
	// single atomic load. Go cannot compile the call sites out without
	// build tags, so this is the no-op promise: one predictable load and a
	// branch per failpoint on an unfaulted process.
	armed  atomic.Bool
	mu     sync.Mutex
	points map[string]*point
	specMu sync.Mutex
	spec   string // active schedule, verbatim, for banners and /healthz
)

// Enabled reports whether any failpoint is armed.
func Enabled() bool { return armed.Load() }

// Check evaluates the named failpoint. Dormant (the default) or unarmed
// points return nil immediately. An armed error point whose trigger fires
// returns an *Error matching ErrInjected; an armed delay point sleeps for
// its configured duration and returns nil.
func Check(name string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return nil
	}
	return p.eval()
}

func (p *point) eval() error {
	p.mu.Lock()
	p.evals++
	if p.kind == kindOff || p.count == 0 {
		p.mu.Unlock()
		return nil
	}
	if p.prob < 1 && p.rng.Float64() >= p.prob {
		p.mu.Unlock()
		return nil
	}
	if p.count > 0 {
		p.count--
	}
	p.fires++
	kind, msg, delay := p.kind, p.msg, p.delay
	name := p.name
	p.mu.Unlock()

	switch kind {
	case kindDelay:
		time.Sleep(delay)
		return nil
	default:
		return &Error{Point: name, Msg: msg}
	}
}

// Configure arms the given schedule, replacing any active one. An empty
// spec disarms everything (like Disable). The seed drives every
// probabilistic trigger; each point derives an independent stream from
// (seed, name) so arming an extra point does not perturb the others.
func Configure(schedule string, seed int64) error {
	parsed, err := parse(schedule, seed)
	if err != nil {
		return err
	}
	mu.Lock()
	points = parsed
	mu.Unlock()
	specMu.Lock()
	spec = schedule
	specMu.Unlock()
	armed.Store(len(parsed) > 0)
	return nil
}

// Validate parses a schedule without arming it, for config validation.
func Validate(schedule string) error {
	_, err := parse(schedule, 1)
	return err
}

// Disable disarms every failpoint; Check returns to its one-load fast path.
func Disable() {
	armed.Store(false)
	mu.Lock()
	points = nil
	mu.Unlock()
	specMu.Lock()
	spec = ""
	specMu.Unlock()
}

// FromEnv arms the schedule in RESCQ_FAILPOINTS (seeded by
// RESCQ_FAULT_SEED, default 1). With the variable unset or empty it leaves
// every failpoint dormant. Returns the active schedule ("" when dormant).
func FromEnv() (string, error) {
	schedule := os.Getenv(EnvSpec)
	if schedule == "" {
		return "", nil
	}
	seed := int64(1)
	if raw := os.Getenv(EnvSeed); raw != "" {
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return "", fmt.Errorf("fault: bad %s %q: %w", EnvSeed, raw, err)
		}
		seed = n
	}
	if err := Configure(schedule, seed); err != nil {
		return "", err
	}
	return schedule, nil
}

// Active returns the armed schedule verbatim ("" when dormant).
func Active() string {
	specMu.Lock()
	defer specMu.Unlock()
	if !armed.Load() {
		return ""
	}
	return spec
}

// Stats returns every armed point's evaluation/firing counts, for /healthz
// and test assertions.
func Stats() map[string]PointStats {
	out := make(map[string]PointStats)
	mu.Lock()
	defer mu.Unlock()
	for name, p := range points {
		p.mu.Lock()
		out[name] = PointStats{Evals: p.evals, Fires: p.fires}
		p.mu.Unlock()
	}
	return out
}

// Fires returns one point's firing count (0 when unarmed).
func Fires(name string) int64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fires
}

// parse builds the point set for a schedule. Grammar, per semicolon-
// separated term:
//
//	term    = name "=" action
//	action  = [count "*"] kind ["(" arg ")"] ["%" prob]
//	kind    = "err" | "delay" | "off"
//
// err's arg is the error message (default "injected"); delay's arg is a
// Go duration and is required; off takes no arg. count caps the firings;
// prob in (0, 1] gates each evaluation on a seeded coin flip.
func parse(schedule string, seed int64) (map[string]*point, error) {
	parsed := make(map[string]*point)
	for _, term := range strings.Split(schedule, ";") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		name, action, ok := strings.Cut(term, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" || strings.TrimSpace(action) == "" {
			return nil, fmt.Errorf("fault: bad term %q (want name=action)", term)
		}
		if _, dup := parsed[name]; dup {
			return nil, fmt.Errorf("fault: point %q armed twice", name)
		}
		p, err := parseAction(name, strings.TrimSpace(action))
		if err != nil {
			return nil, err
		}
		p.rng = rand.New(rand.NewSource(pointSeed(seed, name)))
		parsed[name] = p
	}
	return parsed, nil
}

func parseAction(name, action string) (*point, error) {
	p := &point{name: name, prob: 1, count: -1}

	// Trailing "%prob".
	if i := strings.LastIndex(action, "%"); i >= 0 {
		probStr := strings.TrimSpace(action[i+1:])
		prob, err := strconv.ParseFloat(probStr, 64)
		if err != nil || prob <= 0 || prob > 1 {
			return nil, fmt.Errorf("fault: %s: bad probability %q (want a float in (0, 1])", name, probStr)
		}
		p.prob = prob
		action = strings.TrimSpace(action[:i])
	}

	// Leading "count*".
	if i := strings.Index(action, "*"); i >= 0 {
		countStr := strings.TrimSpace(action[:i])
		n, err := strconv.ParseInt(countStr, 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("fault: %s: bad count %q (want a positive integer)", name, countStr)
		}
		p.count = n
		action = strings.TrimSpace(action[i+1:])
	}

	// "kind" or "kind(arg)".
	arg := ""
	if i := strings.Index(action, "("); i >= 0 {
		if !strings.HasSuffix(action, ")") {
			return nil, fmt.Errorf("fault: %s: unclosed argument in %q", name, action)
		}
		arg = action[i+1 : len(action)-1]
		action = action[:i]
	}
	switch action {
	case "err":
		p.kind = kindErr
		p.msg = arg
		if p.msg == "" {
			p.msg = "injected"
		}
	case "delay":
		p.kind = kindDelay
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("fault: %s: delay needs a positive duration argument, got %q", name, arg)
		}
		p.delay = d
	case "off":
		p.kind = kindOff
		if arg != "" {
			return nil, fmt.Errorf("fault: %s: off takes no argument", name)
		}
	default:
		return nil, fmt.Errorf("fault: %s: unknown kind %q (want err, delay or off)", name, action)
	}
	return p, nil
}

// pointSeed derives a per-point seed from the schedule seed and the point
// name, so each point's probabilistic stream is independent of which other
// points are armed and of cross-point evaluation interleaving.
func pointSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// Names returns the armed point names, sorted (for logs and banners).
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for name := range points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
