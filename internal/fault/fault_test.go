package fault

import (
	"errors"
	"testing"
	"time"
)

// arm configures a schedule for one test and disarms on cleanup, so the
// package's global state never leaks between tests.
func arm(t *testing.T, schedule string, seed int64) {
	t.Helper()
	if err := Configure(schedule, seed); err != nil {
		t.Fatalf("Configure(%q): %v", schedule, err)
	}
	t.Cleanup(Disable)
}

func TestDormantIsNil(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() with nothing configured")
	}
	if err := Check("anything"); err != nil {
		t.Fatalf("dormant Check: %v", err)
	}
	if Active() != "" {
		t.Fatalf("dormant Active() = %q", Active())
	}
}

func TestErrAlways(t *testing.T) {
	arm(t, "wal.write=err(disk full)", 1)
	err := Check("wal.write")
	if err == nil {
		t.Fatal("armed err point returned nil")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error does not match ErrInjected: %v", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != "wal.write" || fe.Msg != "disk full" {
		t.Fatalf("error = %#v", err)
	}
	// Unarmed points on an armed schedule stay silent.
	if err := Check("cluster.dispatch"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestCountTrigger(t *testing.T) {
	arm(t, "p=2*err", 1)
	for i := 0; i < 2; i++ {
		if Check("p") == nil {
			t.Fatalf("eval %d: count trigger did not fire", i)
		}
	}
	for i := 0; i < 5; i++ {
		if err := Check("p"); err != nil {
			t.Fatalf("count exhausted but still firing: %v", err)
		}
	}
	if got := Fires("p"); got != 2 {
		t.Fatalf("Fires = %d, want 2", got)
	}
	if st := Stats()["p"]; st.Evals != 7 || st.Fires != 2 {
		t.Fatalf("Stats = %+v, want 7 evals / 2 fires", st)
	}
}

func TestProbabilityIsSeededAndDeterministic(t *testing.T) {
	fires := func(seed int64) []bool {
		arm(t, "p=err%0.5", seed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = Check("p") != nil
		}
		Disable()
		return out
	}
	a, b := fires(42), fires(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at eval %d", i)
		}
	}
	some := 0
	for _, f := range a {
		if f {
			some++
		}
	}
	if some == 0 || some == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times; trigger looks stuck", some, len(a))
	}
	c := fires(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestDelay(t *testing.T) {
	arm(t, "p=delay(30ms)", 1)
	start := time.Now()
	if err := Check("p"); err != nil {
		t.Fatalf("delay point returned an error: %v", err)
	}
	if took := time.Since(start); took < 20*time.Millisecond {
		t.Fatalf("delay(30ms) returned after %s", took)
	}
}

func TestMultiPointSchedule(t *testing.T) {
	arm(t, "a=err; b=1*err(boom); c=off", 7)
	if Check("a") == nil || Check("b") == nil {
		t.Fatal("armed points did not fire")
	}
	if err := Check("b"); err != nil {
		t.Fatalf("b's count exhausted but fired again: %v", err)
	}
	if err := Check("c"); err != nil {
		t.Fatalf("off point fired: %v", err)
	}
	if got := Active(); got != "a=err; b=1*err(boom); c=off" {
		t.Fatalf("Active() = %q", got)
	}
	want := []string{"a", "b", "c"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"noequals",
		"p=",
		"=err",
		"p=explode",
		"p=err%2",
		"p=err%0",
		"p=err%x",
		"p=0*err",
		"p=-1*err",
		"p=delay",
		"p=delay(xyz)",
		"p=delay(-5ms)",
		"p=off(arg)",
		"p=err(unclosed",
		"p=err;p=err",
	} {
		if err := Configure(bad, 1); err == nil {
			Disable()
			t.Fatalf("Configure(%q) accepted a malformed schedule", bad)
		}
	}
	// A failed Configure must not leave a half-armed schedule behind.
	if Enabled() {
		t.Fatal("failed Configure left failpoints armed")
	}
}

func TestEnvActivation(t *testing.T) {
	t.Setenv(EnvSpec, "p=err")
	t.Setenv(EnvSeed, "99")
	spec, err := FromEnv()
	if err != nil || spec != "p=err" {
		t.Fatalf("FromEnv() = %q, %v", spec, err)
	}
	t.Cleanup(Disable)
	if Check("p") == nil {
		t.Fatal("env-armed point did not fire")
	}

	t.Setenv(EnvSeed, "not-a-number")
	if _, err := FromEnv(); err == nil {
		t.Fatal("bad seed accepted")
	}

	Disable()
	t.Setenv(EnvSpec, "")
	if spec, err := FromEnv(); err != nil || spec != "" {
		t.Fatalf("empty env: %q, %v", spec, err)
	}
	if Enabled() {
		t.Fatal("empty env armed failpoints")
	}
}

func TestConcurrentChecks(t *testing.T) {
	arm(t, "p=err%0.5;q=delay(1ms)%0.2", 3)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 200; j++ {
				Check("p")
				Check("q")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	st := Stats()
	if st["p"].Evals != 1600 || st["q"].Evals != 1600 {
		t.Fatalf("Stats = %+v, want 1600 evals each", st)
	}
}
