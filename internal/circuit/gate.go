package circuit

import "fmt"

// Kind identifies a logical gate in the Clifford+Rz basis. The schedulers
// only execute Rz, CNOT and H on the lattice; Pauli and phase gates are
// tracked in the classical Clifford frame at zero lattice-surgery cost, and
// T/Tdg/S/Sdg are canonicalized into Rz rotations when a circuit is built.
type Kind uint8

const (
	// KindRz is an arbitrary-angle Z rotation executed by |m_theta>
	// injection (possibly repeated, per the RUS protocol).
	KindRz Kind = iota
	// KindCNOT is a two-qubit CNOT executed by lattice surgery.
	KindCNOT
	// KindH is a Hadamard, executed by patch deformation using one
	// neighbouring ancilla tile.
	KindH
	// KindX is a Pauli X, tracked in the Pauli frame (zero cycles).
	KindX
	// KindZ is a Pauli Z, tracked in the Pauli frame (zero cycles).
	KindZ
	// KindS is the Clifford phase gate, tracked in the Clifford frame.
	KindS
	// KindSdg is the inverse Clifford phase gate.
	KindSdg
	// KindT is the T gate, an alias for Rz(pi/4).
	KindT
	// KindTdg is the inverse T gate, an alias for Rz(-pi/4).
	KindTdg
)

var kindNames = [...]string{
	KindRz:   "rz",
	KindCNOT: "cx",
	KindH:    "h",
	KindX:    "x",
	KindZ:    "z",
	KindS:    "s",
	KindSdg:  "sdg",
	KindT:    "t",
	KindTdg:  "tdg",
}

// String returns the lowercase OpenQASM-style mnemonic for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromName maps a mnemonic (as used in the artifact circuit files) back
// to a Kind. It accepts both "cx" and "cnot" for CNOT.
func KindFromName(name string) (Kind, bool) {
	switch name {
	case "rz":
		return KindRz, true
	case "cx", "cnot":
		return KindCNOT, true
	case "h":
		return KindH, true
	case "x":
		return KindX, true
	case "z":
		return KindZ, true
	case "s":
		return KindS, true
	case "sdg":
		return KindSdg, true
	case "t":
		return KindT, true
	case "tdg":
		return KindTdg, true
	}
	return 0, false
}

// NumQubits returns the arity of the gate kind (1 or 2).
func (k Kind) NumQubits() int {
	if k == KindCNOT {
		return 2
	}
	return 1
}

// Gate is a single logical operation in a circuit. For one-qubit gates only
// Qubits[0] is meaningful; for CNOT, Qubits[0] is the control and Qubits[1]
// the target. ID is the gate's index within its circuit.
type Gate struct {
	ID     int
	Kind   Kind
	Qubits [2]int
	Angle  Angle // meaningful only for KindRz
}

// Control returns the control qubit of a CNOT (Qubits[0]).
func (g Gate) Control() int { return g.Qubits[0] }

// Target returns the target qubit of a CNOT (Qubits[1]).
func (g Gate) Target() int { return g.Qubits[1] }

// Qubit returns the sole operand of a one-qubit gate.
func (g Gate) Qubit() int { return g.Qubits[0] }

// IsFrameOnly reports whether the gate is absorbed into the classical
// Pauli/Clifford frame and costs zero lattice-surgery cycles. Rz gates whose
// angle is a multiple of pi/2 are frame-only as well.
func (g Gate) IsFrameOnly() bool {
	switch g.Kind {
	case KindX, KindZ, KindS, KindSdg:
		return true
	case KindRz:
		return g.Angle.IsClifford()
	}
	return false
}

// String renders the gate in the artifact's one-line text form.
func (g Gate) String() string {
	switch g.Kind {
	case KindCNOT:
		return fmt.Sprintf("cx %d %d", g.Qubits[0], g.Qubits[1])
	case KindRz:
		return fmt.Sprintf("rz %d %s", g.Qubits[0], g.Angle)
	default:
		return fmt.Sprintf("%s %d", g.Kind, g.Qubits[0])
	}
}
