package circuit_test

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/qbench"
)

// FuzzParse asserts the parser's contract: for arbitrary input it returns
// either a structurally valid circuit or an error — it never panics. A
// successfully parsed circuit must survive Validate and round-trip through
// the writer. Seeds are real qbench generator outputs (what the artifact's
// circuit files look like) plus the corner cases that once panicked:
// cnot with equal operands, qubit indices past the declared count, and
// angle rationals whose canonicalization overflowed int64.
func FuzzParse(f *testing.F) {
	// Emitted circuit texts from the Table 3 generators (small ones).
	for _, name := range []string{"vqe_n13", "gcm_n13", "qaoa_n15"} {
		spec, ok := qbench.ByName(name)
		if !ok {
			f.Fatalf("unknown seed benchmark %q", name)
		}
		f.Add(circuit.Format(spec.Circuit()))
	}
	f.Add("qubits 3\n2\nh 0\ncnot 0 1\n")
	f.Add("2\nrz 0 pi/4\nrz 1 -3pi/8\n")
	f.Add("1\nrz 0 0.785398\n")
	f.Add("1\nrz 0 5/8\n")
	f.Add("# comment\nqubits 2\n1\ncnot 1 0\n")
	// Historical panics.
	f.Add("1\ncnot 1 1\n")
	f.Add("qubits 1\n1\nh 9223372036854775807\n")
	f.Add("1\nrz 0 pi/-9223372036854775808\n")
	f.Add("1\nrz 0 -9223372036854775807/3\n")
	f.Add("1\nrz 0 NaN\n")
	f.Add("1\nrz 0 +Inf\n")

	f.Fuzz(func(t *testing.T, text string) {
		c, err := circuit.ParseString("fuzz", text)
		if err != nil {
			if c != nil {
				t.Fatalf("non-nil circuit alongside error %v", err)
			}
			return
		}
		if c == nil {
			t.Fatal("nil circuit with nil error")
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parsed circuit fails Validate: %v\ninput: %q", err, clip(text))
		}
		// What the parser accepts, the writer must re-emit parseably, and
		// the round trip must preserve the gate list.
		text2 := circuit.Format(c)
		c2, err := circuit.ParseString("fuzz-roundtrip", text2)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v\nre-emitted: %q", err, clip(text2))
		}
		if len(c2.Gates) != len(c.Gates) || c2.NumQubits != c.NumQubits {
			t.Fatalf("round trip changed shape: %d gates/%d qubits -> %d gates/%d qubits",
				len(c.Gates), c.NumQubits, len(c2.Gates), c2.NumQubits)
		}
		for i := range c.Gates {
			a, b := c.Gates[i], c2.Gates[i]
			if a.Kind != b.Kind || a.Qubits != b.Qubits || !a.Angle.Equal(b.Angle) {
				t.Fatalf("round trip changed gate %d: %v -> %v", i, a, b)
			}
		}
	})
}

func clip(s string) string {
	if len(s) > 200 {
		return s[:200] + "..."
	}
	return strings.ToValidUTF8(s, "�")
}
