package circuit

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const sampleText = `# sample circuit
qubits 3
5
h 0
cx 0 1
rz 1 pi/4
rz 2 3pi/8
cx 1 2
`

func TestParseSample(t *testing.T) {
	c, err := ParseString("sample", sampleText)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 3 {
		t.Errorf("NumQubits = %d, want 3", c.NumQubits)
	}
	if len(c.Gates) != 5 {
		t.Fatalf("gates = %d, want 5", len(c.Gates))
	}
	if !c.Gates[2].Angle.Equal(NewAngle(1, 4)) {
		t.Errorf("gate 2 angle = %v, want pi/4", c.Gates[2].Angle)
	}
	if !c.Gates[3].Angle.Equal(NewAngle(3, 8)) {
		t.Errorf("gate 3 angle = %v, want 3pi/8", c.Gates[3].Angle)
	}
}

func TestParseWithoutQubitsDirective(t *testing.T) {
	c, err := ParseString("x", "2\ncx 0 4\nh 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 5 {
		t.Errorf("inferred NumQubits = %d, want 5", c.NumQubits)
	}
}

func TestParseDecimalRadians(t *testing.T) {
	c, err := ParseString("x", "1\nrz 0 0.7853981633974483\n") // pi/4
	if err != nil {
		t.Fatal(err)
	}
	if !c.Gates[0].Angle.Equal(NewAngle(1, 4)) {
		t.Errorf("angle = %v, want pi/4", c.Gates[0].Angle)
	}
}

func TestParseNegativeAngle(t *testing.T) {
	c, err := ParseString("x", "1\nrz 0 -pi/4\n")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Gates[0].Angle.Equal(NewAngle(-1, 4)) {
		t.Errorf("angle = %v, want 7pi/4", c.Gates[0].Angle)
	}
}

func TestParseBareRational(t *testing.T) {
	c, err := ParseString("x", "1\nrz 0 5/8\n")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Gates[0].Angle.Equal(NewAngle(5, 8)) {
		t.Errorf("angle = %v, want 5pi/8", c.Gates[0].Angle)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"count mismatch":  "3\nh 0\n",
		"unknown gate":    "1\nfoo 0\n",
		"missing angle":   "1\nrz 0\n",
		"cnot arity":      "1\ncx 0\n",
		"bad qubit":       "1\nh x\n",
		"no count":        "h 0\n",
		"declared small":  "qubits 2\n1\nh 5\n",
		"bad angle token": "1\nrz 0 pie\n",
	}
	for name, text := range cases {
		if _, err := ParseString(name, text); err == nil {
			t.Errorf("%s: expected parse error for %q", name, text)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	c := New("rt", 4)
	c.H(0)
	c.CNOT(0, 3)
	c.Rz(2, NewAngle(5, 6))
	c.Rz(1, NewAngle(1, 4))
	c.X(3)

	text := Format(c)
	back, err := Parse("rt", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumQubits != c.NumQubits || len(back.Gates) != len(c.Gates) {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.NumQubits, len(back.Gates), c.NumQubits, len(c.Gates))
	}
	for i := range c.Gates {
		a, b := c.Gates[i], back.Gates[i]
		if a.Kind != b.Kind || a.Qubits != b.Qubits || !a.Angle.Equal(b.Angle) {
			t.Errorf("gate %d: %+v != %+v", i, a, b)
		}
	}
}

// Property: Format then Parse is the identity on random circuits.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCircuit(r, 15, 100)
		back, err := ParseString(c.Name, Format(c))
		if err != nil {
			return false
		}
		if back.NumQubits != c.NumQubits || len(back.Gates) != len(c.Gates) {
			return false
		}
		for i := range c.Gates {
			a, b := c.Gates[i], back.Gates[i]
			if a.Kind != b.Kind || a.Qubits != b.Qubits || !a.Angle.Equal(b.Angle) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParseAngleTokens(t *testing.T) {
	cases := map[string]Angle{
		"pi":    NewAngle(1, 1),
		"2pi":   Zero,
		"pi/2":  NewAngle(1, 2),
		"-pi/2": NewAngle(3, 2),
		"3pi/8": NewAngle(3, 8),
		"0":     Zero,
		"0.0":   Zero,
	}
	for tok, want := range cases {
		got, err := ParseAngle(tok)
		if err != nil {
			t.Errorf("ParseAngle(%q): %v", tok, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("ParseAngle(%q) = %v, want %v", tok, got, want)
		}
	}
}
