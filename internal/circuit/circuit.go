package circuit

import (
	"errors"
	"fmt"
)

// Circuit is an ordered list of gates over NumQubits logical qubits. Gate
// IDs always equal the gate's index in Gates. The order is a valid
// topological order of the dependency DAG by construction (gates are
// appended in program order).
type Circuit struct {
	Name      string
	NumQubits int
	Gates     []Gate
}

// New returns an empty circuit over n qubits.
func New(name string, n int) *Circuit {
	if n < 1 {
		panic("circuit: non-positive qubit count")
	}
	return &Circuit{Name: name, NumQubits: n}
}

// append adds a gate after validating operands, canonicalizing T/Tdg into
// Rz rotations so downstream code sees a uniform Clifford+Rz basis.
func (c *Circuit) append(k Kind, q0, q1 int, a Angle) {
	switch k {
	case KindT:
		k, a = KindRz, NewAngle(1, 4)
	case KindTdg:
		k, a = KindRz, NewAngle(-1, 4)
	case KindS:
		k, a = KindRz, NewAngle(1, 2)
	case KindSdg:
		k, a = KindRz, NewAngle(-1, 2)
	}
	if k != KindRz {
		a = Zero // canonical zero angle for non-rotation gates
	}
	g := Gate{ID: len(c.Gates), Kind: k, Qubits: [2]int{q0, q1}, Angle: a}
	c.mustValidOperand(q0)
	if k == KindCNOT {
		c.mustValidOperand(q1)
		if q0 == q1 {
			panic(fmt.Sprintf("circuit: CNOT with equal control and target %d", q0))
		}
	}
	c.Gates = append(c.Gates, g)
}

func (c *Circuit) mustValidOperand(q int) {
	if q < 0 || q >= c.NumQubits {
		panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", q, c.NumQubits))
	}
}

// Rz appends an Rz(theta) rotation on qubit q.
func (c *Circuit) Rz(q int, theta Angle) { c.append(KindRz, q, 0, theta) }

// CNOT appends a CNOT with the given control and target.
func (c *Circuit) CNOT(control, target int) { c.append(KindCNOT, control, target, Zero) }

// H appends a Hadamard on qubit q.
func (c *Circuit) H(q int) { c.append(KindH, q, 0, Zero) }

// X appends a Pauli X on qubit q.
func (c *Circuit) X(q int) { c.append(KindX, q, 0, Zero) }

// Z appends a Pauli Z on qubit q.
func (c *Circuit) Z(q int) { c.append(KindZ, q, 0, Zero) }

// T appends a T gate (canonicalized to Rz(pi/4)).
func (c *Circuit) T(q int) { c.append(KindT, q, 0, Zero) }

// Tdg appends an inverse T gate (canonicalized to Rz(-pi/4)).
func (c *Circuit) Tdg(q int) { c.append(KindTdg, q, 0, Zero) }

// S appends an S gate (canonicalized to Rz(pi/2)).
func (c *Circuit) S(q int) { c.append(KindS, q, 0, Zero) }

// Sdg appends an inverse S gate (canonicalized to Rz(-pi/2)).
func (c *Circuit) Sdg(q int) { c.append(KindSdg, q, 0, Zero) }

// Stats summarizes a circuit the way the paper's Table 3 does.
type Stats struct {
	NumQubits int
	Total     int // total gate count
	Rz        int // non-Clifford Rz rotations (the resource-consuming ones)
	RzTotal   int // all Rz gates, including Clifford ones (rz(pi/2) etc.);
	// this is the count reported in the paper's Table 3, whose circuits
	// were compiled by Qiskit and therefore write S gates as rz(pi/2)
	CNOT      int
	H         int
	FrameOnly int // gates absorbed into the Pauli/Clifford frame
	Depth     int // logical depth over scheduled (non-frame) gates
}

// Stats computes the per-kind gate counts and logical depth.
func (c *Circuit) Stats() Stats {
	s := Stats{NumQubits: c.NumQubits, Total: len(c.Gates)}
	depth := make([]int, c.NumQubits)
	for _, g := range c.Gates {
		if g.Kind == KindRz {
			s.RzTotal++
		}
		if g.IsFrameOnly() {
			s.FrameOnly++
			continue
		}
		switch g.Kind {
		case KindRz:
			s.Rz++
		case KindCNOT:
			s.CNOT++
		case KindH:
			s.H++
		}
		if g.Kind == KindCNOT {
			d := max(depth[g.Qubits[0]], depth[g.Qubits[1]]) + 1
			depth[g.Qubits[0]], depth[g.Qubits[1]] = d, d
		} else {
			depth[g.Qubits[0]]++
		}
	}
	for _, d := range depth {
		s.Depth = max(s.Depth, d)
	}
	return s
}

// Scheduled returns the subsequence of gates that consume lattice resources
// (everything that is not frame-only), preserving order and original IDs.
func (c *Circuit) Scheduled() []Gate {
	out := make([]Gate, 0, len(c.Gates))
	for _, g := range c.Gates {
		if !g.IsFrameOnly() {
			out = append(out, g)
		}
	}
	return out
}

// Validate checks structural invariants: IDs match indices, operands are in
// range, and CNOTs act on distinct qubits. Circuits built through the
// builder methods always validate; the check exists for parsed inputs and
// for property tests.
func (c *Circuit) Validate() error {
	if c.NumQubits < 1 {
		return errors.New("circuit: non-positive qubit count")
	}
	for i, g := range c.Gates {
		if g.ID != i {
			return fmt.Errorf("circuit: gate %d has ID %d", i, g.ID)
		}
		for j := 0; j < g.Kind.NumQubits(); j++ {
			if q := g.Qubits[j]; q < 0 || q >= c.NumQubits {
				return fmt.Errorf("circuit: gate %d operand %d out of range", i, q)
			}
		}
		if g.Kind == KindCNOT && g.Qubits[0] == g.Qubits[1] {
			return fmt.Errorf("circuit: gate %d is a CNOT with equal operands", i)
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
