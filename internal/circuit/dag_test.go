package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDAGChain(t *testing.T) {
	c := New("chain", 2)
	c.H(0)
	c.CNOT(0, 1)
	c.Rz(1, NewAngle(1, 4))
	d := NewDAG(c)

	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	if len(d.Roots()) != 1 || d.Roots()[0] != 0 {
		t.Errorf("Roots = %v, want [0]", d.Roots())
	}
	if d.Height(0) != 3 || d.Height(1) != 2 || d.Height(2) != 1 {
		t.Errorf("Heights = %d,%d,%d, want 3,2,1", d.Height(0), d.Height(1), d.Height(2))
	}
	if d.NumLayers() != 3 {
		t.Errorf("NumLayers = %d, want 3", d.NumLayers())
	}
	if d.CriticalPathLength() != 3 {
		t.Errorf("CriticalPathLength = %d, want 3", d.CriticalPathLength())
	}
}

func TestDAGParallelGates(t *testing.T) {
	c := New("par", 4)
	c.CNOT(0, 1)
	c.CNOT(2, 3)
	d := NewDAG(c)
	if len(d.Roots()) != 2 {
		t.Errorf("Roots = %v, want two independent roots", d.Roots())
	}
	if d.NumLayers() != 1 {
		t.Errorf("NumLayers = %d, want 1", d.NumLayers())
	}
}

func TestDAGSkipsFrameOnly(t *testing.T) {
	c := New("frame", 2)
	c.X(0) // frame-only
	c.CNOT(0, 1)
	c.S(1) // frame-only
	c.H(1)
	d := NewDAG(c)
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.NodeOf(0) != -1 || d.NodeOf(2) != -1 {
		t.Errorf("frame-only gates should map to node -1")
	}
	if d.NodeOf(1) != 0 || d.NodeOf(3) != 1 {
		t.Errorf("NodeOf mapping wrong: %d %d", d.NodeOf(1), d.NodeOf(3))
	}
	// The H on qubit 1 depends on the CNOT even though a frame-only S sits
	// between them.
	if len(d.Pred(1)) != 1 || d.Pred(1)[0] != 0 {
		t.Errorf("Pred(1) = %v, want [0]", d.Pred(1))
	}
}

func TestDAGSharedQubitDependency(t *testing.T) {
	c := New("dep", 3)
	c.CNOT(0, 1) // node 0
	c.CNOT(1, 2) // node 1 depends on node 0 via qubit 1
	c.H(0)       // node 2 depends on node 0 via qubit 0
	d := NewDAG(c)
	if len(d.Succ(0)) != 2 {
		t.Errorf("Succ(0) = %v, want 2 successors", d.Succ(0))
	}
	if d.Layer(1) != 1 || d.Layer(2) != 1 {
		t.Errorf("layers = %d,%d, want 1,1", d.Layer(1), d.Layer(2))
	}
}

// Property: for random circuits the DAG is acyclic-by-construction
// (predecessors always have smaller node indices), heights strictly decrease
// along edges, and layers strictly increase along edges.
func TestDAGStructuralProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCircuit(r, 12, 150)
		d := NewDAG(c)
		for i := 0; i < d.Len(); i++ {
			for _, p := range d.Pred(i) {
				if p >= i {
					return false
				}
				if d.Height(p) <= d.Height(i) {
					return false
				}
				if d.Layer(p) >= d.Layer(i) {
					return false
				}
			}
			for _, s := range d.Succ(i) {
				if s <= i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: executing gates in any topological order derived from the ready
// set reproduces exactly the full gate set (no gate lost or duplicated).
func TestDAGReadySetCoversAllGates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCircuit(r, 10, 120)
		d := NewDAG(c)
		indeg := make([]int, d.Len())
		var ready []int
		for i := 0; i < d.Len(); i++ {
			indeg[i] = d.InDegree(i)
			if indeg[i] == 0 {
				ready = append(ready, i)
			}
		}
		done := 0
		for len(ready) > 0 {
			// Pop a pseudo-random ready node to explore different orders.
			k := r.Intn(len(ready))
			n := ready[k]
			ready[k] = ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			done++
			for _, s := range d.Succ(n) {
				indeg[s]--
				if indeg[s] == 0 {
					ready = append(ready, s)
				}
			}
		}
		return done == d.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
