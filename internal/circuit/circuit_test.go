package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderAndStats(t *testing.T) {
	c := New("demo", 3)
	c.H(0)
	c.CNOT(0, 1)
	c.Rz(1, NewAngle(1, 8))
	c.T(2) // canonicalized to Rz(pi/4)
	c.S(2) // Clifford: frame-only
	c.X(0) // frame-only
	c.CNOT(1, 2)

	s := c.Stats()
	if s.Total != 7 {
		t.Errorf("Total = %d, want 7", s.Total)
	}
	if s.Rz != 2 {
		t.Errorf("Rz = %d, want 2 (rz pi/8 and t)", s.Rz)
	}
	if s.CNOT != 2 {
		t.Errorf("CNOT = %d, want 2", s.CNOT)
	}
	if s.H != 1 {
		t.Errorf("H = %d, want 1", s.H)
	}
	if s.FrameOnly != 2 {
		t.Errorf("FrameOnly = %d, want 2", s.FrameOnly)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestTCanonicalization(t *testing.T) {
	c := New("t", 1)
	c.T(0)
	c.Tdg(0)
	if c.Gates[0].Kind != KindRz || !c.Gates[0].Angle.Equal(NewAngle(1, 4)) {
		t.Errorf("T gate not canonicalized: %+v", c.Gates[0])
	}
	if c.Gates[1].Kind != KindRz || !c.Gates[1].Angle.Equal(NewAngle(-1, 4)) {
		t.Errorf("Tdg gate not canonicalized: %+v", c.Gates[1])
	}
}

func TestDepthSequentialVsParallel(t *testing.T) {
	seq := New("seq", 2)
	for i := 0; i < 5; i++ {
		seq.CNOT(0, 1)
	}
	if d := seq.Stats().Depth; d != 5 {
		t.Errorf("sequential depth = %d, want 5", d)
	}

	par := New("par", 10)
	for i := 0; i < 5; i++ {
		par.CNOT(2*i, 2*i+1)
	}
	if d := par.Stats().Depth; d != 1 {
		t.Errorf("parallel depth = %d, want 1", d)
	}
}

func TestCNOTSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for CNOT(q,q)")
		}
	}()
	c := New("bad", 2)
	c.CNOT(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range qubit")
		}
	}()
	c := New("bad", 2)
	c.H(5)
}

func TestScheduledFiltersFrameOnly(t *testing.T) {
	c := New("f", 2)
	c.X(0)
	c.CNOT(0, 1)
	c.Z(1)
	c.Rz(0, NewAngle(1, 2)) // pi/2 is Clifford: frame-only
	c.Rz(0, NewAngle(1, 4))
	sch := c.Scheduled()
	if len(sch) != 2 {
		t.Fatalf("Scheduled returned %d gates, want 2", len(sch))
	}
	if sch[0].Kind != KindCNOT || sch[1].Kind != KindRz {
		t.Errorf("Scheduled gates = %v", sch)
	}
	// Original IDs preserved.
	if sch[0].ID != 1 || sch[1].ID != 4 {
		t.Errorf("Scheduled IDs = %d,%d, want 1,4", sch[0].ID, sch[1].ID)
	}
}

// randomCircuit builds a pseudo-random valid circuit for property tests.
func randomCircuit(r *rand.Rand, maxQ, maxG int) *Circuit {
	n := 2 + r.Intn(maxQ-1)
	c := New("random", n)
	g := r.Intn(maxG + 1)
	for i := 0; i < g; i++ {
		switch r.Intn(4) {
		case 0:
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				b = (a + 1) % n
			}
			c.CNOT(a, b)
		case 1:
			c.Rz(r.Intn(n), NewAngle(int64(1+r.Intn(15)), int64(2+r.Intn(30))))
		case 2:
			c.H(r.Intn(n))
		case 3:
			c.X(r.Intn(n))
		}
	}
	return c
}

// Property: every randomly built circuit validates, and the scheduled gate
// count plus the frame-only count equals the total.
func TestRandomCircuitInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCircuit(r, 20, 200)
		if c.Validate() != nil {
			return false
		}
		s := c.Stats()
		return len(c.Scheduled())+s.FrameOnly == s.Total &&
			s.Rz+s.CNOT+s.H == len(c.Scheduled())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
