package circuit

// DAG is the gate dependency graph of a circuit restricted to scheduled
// (non-frame-only) gates. Two gates depend on each other iff they share a
// qubit; edges go from the earlier gate to the later one, so the DAG encodes
// exactly the ordering a scheduler must respect.
//
// The DAG also precomputes each gate's "height": the length of the longest
// dependency chain from the gate to the end of the circuit. RESCQ uses
// height as its scheduling priority ("gates on qubits with larger circuit
// depth are prioritised since they are more likely to be on the critical
// path", Figure 7 caption).
type DAG struct {
	circ *Circuit

	// nodes holds the scheduled gates in program order.
	nodes []Gate
	// index maps gate ID -> node index, or -1 for frame-only gates.
	index []int

	succ   [][]int // node index -> successor node indices
	pred   [][]int // node index -> predecessor node indices
	height []int   // node index -> critical-path height (>= 1)
	layer  []int   // node index -> ASAP layer (0-based)
	layers int     // total layer count
}

// NewDAG builds the dependency DAG for c.
func NewDAG(c *Circuit) *DAG {
	d := &DAG{
		circ:  c,
		index: make([]int, len(c.Gates)),
	}
	for i := range d.index {
		d.index[i] = -1
	}
	for _, g := range c.Gates {
		if g.IsFrameOnly() {
			continue
		}
		d.index[g.ID] = len(d.nodes)
		d.nodes = append(d.nodes, g)
	}
	n := len(d.nodes)
	d.succ = make([][]int, n)
	d.pred = make([][]int, n)
	d.height = make([]int, n)
	d.layer = make([]int, n)

	last := make([]int, c.NumQubits) // last node index touching each qubit
	for q := range last {
		last[q] = -1
	}
	for i, g := range d.nodes {
		for j := 0; j < g.Kind.NumQubits(); j++ {
			q := g.Qubits[j]
			if p := last[q]; p >= 0 {
				// Two CNOTs can share both qubits; dedupe the edge so
				// in-degrees and successor notifications stay correct.
				if np := len(d.pred[i]); np == 0 || d.pred[i][np-1] != p {
					d.succ[p] = append(d.succ[p], i)
					d.pred[i] = append(d.pred[i], p)
				}
			}
			last[q] = i
		}
	}
	// Heights: longest chain to the end, computed in reverse program order
	// (program order is a topological order).
	for i := n - 1; i >= 0; i-- {
		h := 0
		for _, s := range d.succ[i] {
			if d.height[s] > h {
				h = d.height[s]
			}
		}
		d.height[i] = h + 1
	}
	// ASAP layers, used by the static baseline schedulers.
	for i := 0; i < n; i++ {
		l := 0
		for _, p := range d.pred[i] {
			if d.layer[p]+1 > l {
				l = d.layer[p] + 1
			}
		}
		d.layer[i] = l
		if l+1 > d.layers {
			d.layers = l + 1
		}
	}
	return d
}

// Circuit returns the underlying circuit.
func (d *DAG) Circuit() *Circuit { return d.circ }

// Len returns the number of scheduled gates.
func (d *DAG) Len() int { return len(d.nodes) }

// Gate returns the scheduled gate at node index i.
func (d *DAG) Gate(i int) Gate { return d.nodes[i] }

// Gates returns all scheduled gates in program order. The returned slice is
// shared; callers must not mutate it.
func (d *DAG) Gates() []Gate { return d.nodes }

// NodeOf returns the node index for a gate ID, or -1 if the gate is
// frame-only and therefore not part of the DAG.
func (d *DAG) NodeOf(gateID int) int { return d.index[gateID] }

// Succ returns the successor node indices of node i (shared slice).
func (d *DAG) Succ(i int) []int { return d.succ[i] }

// Pred returns the predecessor node indices of node i (shared slice).
func (d *DAG) Pred(i int) []int { return d.pred[i] }

// InDegree returns the number of predecessors of node i.
func (d *DAG) InDegree(i int) int { return len(d.pred[i]) }

// Height returns the critical-path height of node i (chain length from i to
// the end of the circuit, inclusive; sinks have height 1).
func (d *DAG) Height(i int) int { return d.height[i] }

// Layer returns the ASAP layer of node i.
func (d *DAG) Layer(i int) int { return d.layer[i] }

// NumLayers returns the total number of ASAP layers (the logical depth).
func (d *DAG) NumLayers() int { return d.layers }

// CriticalPathLength returns the longest dependency chain in the circuit.
func (d *DAG) CriticalPathLength() int {
	m := 0
	for _, h := range d.height {
		if h > m {
			m = h
		}
	}
	return m
}

// Roots returns the node indices with no predecessors (initially ready).
func (d *DAG) Roots() []int {
	var out []int
	for i := range d.nodes {
		if len(d.pred[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}
