package circuit

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The artifact's circuit text format (paper section B.7): the total number
// of gates on the first line, then one gate per line as
//
//	<gate name> <qubit(s)> [<rotation angle for rz gates>]
//
// This parser additionally accepts '#' comments, blank lines, and an
// optional "qubits N" directive before the count line (the writer always
// emits it; without it the qubit count is inferred as max index + 1).
// Rotation angles may be written as rational multiples of pi ("pi/4",
// "3pi/8", "-pi/2", "5/8" meaning 5pi/8) or as decimal radians ("0.785398").

// maxParseDen bounds the rational approximation of decimal angles.
const maxParseDen = 1 << 20

// maxParseQubits bounds qubit indices and declared qubit counts. The
// parser feeds downstream code that allocates per qubit; rejecting absurd
// indices here keeps a hostile circuit from forcing giant allocations (and
// keeps maxQubit+1 arithmetic overflow-free).
const maxParseQubits = 1 << 20

// maxAngleMag bounds the numerator/denominator magnitude of explicit
// rational angles so the canonicalization arithmetic in NewAngle (which
// computes 2*den) can never overflow int64.
const maxAngleMag = 1 << 32

// Parse reads a circuit from r in the artifact text format.
func Parse(name string, r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)

	var (
		lineNo    int
		count     = -1
		numQubits = -1
		gates     []rawGate
		maxQubit  = -1
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "qubits":
			if len(fields) != 2 {
				return nil, parseErr(lineNo, "malformed qubits directive")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 || n > maxParseQubits {
				return nil, parseErr(lineNo, "invalid qubit count %q", fields[1])
			}
			numQubits = n
		case count < 0:
			n, err := strconv.Atoi(fields[0])
			if err != nil || n < 0 || len(fields) != 1 {
				return nil, parseErr(lineNo, "expected gate count, got %q", line)
			}
			count = n
		default:
			g, err := parseGateLine(fields, lineNo)
			if err != nil {
				return nil, err
			}
			gates = append(gates, g)
			for i := 0; i < g.kind.NumQubits(); i++ {
				if g.qubits[i] > maxQubit {
					maxQubit = g.qubits[i]
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("circuit: read: %w", err)
	}
	if count < 0 {
		return nil, fmt.Errorf("circuit: %s: missing gate count line", name)
	}
	if len(gates) != count {
		return nil, fmt.Errorf("circuit: %s: header declares %d gates, found %d", name, count, len(gates))
	}
	// Per-gate parsing bounds qubit indices to maxParseQubits, so maxQubit+1
	// cannot overflow here.
	if numQubits < 0 {
		numQubits = maxQubit + 1
	} else if maxQubit >= numQubits {
		return nil, fmt.Errorf("circuit: %s: qubit index %d exceeds declared count %d", name, maxQubit, numQubits)
	}
	if numQubits < 1 {
		return nil, fmt.Errorf("circuit: %s: empty circuit with no qubit count", name)
	}
	c := New(name, numQubits)
	for _, g := range gates {
		c.append(g.kind, g.qubits[0], g.qubits[1], g.angle)
	}
	return c, nil
}

// ParseString is Parse over an in-memory string.
func ParseString(name, text string) (*Circuit, error) {
	return Parse(name, strings.NewReader(text))
}

type rawGate struct {
	kind   Kind
	qubits [2]int
	angle  Angle
}

func parseGateLine(fields []string, lineNo int) (rawGate, error) {
	var g rawGate
	kind, ok := KindFromName(fields[0])
	if !ok {
		return g, parseErr(lineNo, "unknown gate %q", fields[0])
	}
	g.kind = kind
	nq := kind.NumQubits()
	wantAngle := kind == KindRz
	wantFields := 1 + nq
	if wantAngle {
		wantFields++
	}
	if len(fields) != wantFields {
		return g, parseErr(lineNo, "gate %s expects %d fields, got %d", fields[0], wantFields, len(fields))
	}
	for i := 0; i < nq; i++ {
		q, err := strconv.Atoi(fields[1+i])
		if err != nil || q < 0 || q >= maxParseQubits {
			return g, parseErr(lineNo, "invalid qubit %q", fields[1+i])
		}
		g.qubits[i] = q
	}
	if kind == KindCNOT && g.qubits[0] == g.qubits[1] {
		return g, parseErr(lineNo, "cnot with equal control and target %d", g.qubits[0])
	}
	if wantAngle {
		a, err := ParseAngle(fields[1+nq])
		if err != nil {
			return g, parseErr(lineNo, "%v", err)
		}
		g.angle = a
	}
	return g, nil
}

// ParseAngle parses a rotation angle token: "pi/4", "3pi/8", "-pi", "2pi",
// a bare rational "n/d" (interpreted as n*pi/d), or decimal radians.
func ParseAngle(tok string) (Angle, error) {
	s := tok
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	if i := strings.Index(s, "pi"); i >= 0 {
		numStr, denStr := s[:i], s[i+2:]
		var num int64 = 1
		if numStr != "" {
			n, err := strconv.ParseInt(numStr, 10, 64)
			if err != nil {
				return Zero, fmt.Errorf("invalid angle %q", tok)
			}
			num = n
		}
		var den int64 = 1
		if denStr != "" {
			if !strings.HasPrefix(denStr, "/") {
				return Zero, fmt.Errorf("invalid angle %q", tok)
			}
			d, err := strconv.ParseInt(denStr[1:], 10, 64)
			if err != nil || d == 0 {
				return Zero, fmt.Errorf("invalid angle %q", tok)
			}
			den = d
		}
		if !angleBoundsOK(num, den) {
			return Zero, fmt.Errorf("angle %q out of range", tok)
		}
		if neg {
			num = -num
		}
		return NewAngle(num, den), nil
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		n, err1 := strconv.ParseInt(s[:i], 10, 64)
		d, err2 := strconv.ParseInt(s[i+1:], 10, 64)
		if err1 != nil || err2 != nil || d == 0 {
			return Zero, fmt.Errorf("invalid angle %q", tok)
		}
		if !angleBoundsOK(n, d) {
			return Zero, fmt.Errorf("angle %q out of range", tok)
		}
		if neg {
			n = -n
		}
		return NewAngle(n, d), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return Zero, fmt.Errorf("invalid angle %q", tok)
	}
	if neg {
		f = -f
	}
	return ApproxAngle(f, maxParseDen), nil
}

// angleBoundsOK rejects rational-angle components whose magnitude would let
// NewAngle's normalization (negation of den, 2*den) overflow int64. The
// bound is far beyond any angle a compiler emits.
func angleBoundsOK(num, den int64) bool {
	return num > -maxAngleMag && num < maxAngleMag &&
		den > -maxAngleMag && den < maxAngleMag
}

// Write emits c to w in the artifact text format (with the qubits
// directive so the round trip preserves the qubit count exactly).
func Write(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	fmt.Fprintf(bw, "qubits %d\n", c.NumQubits)
	fmt.Fprintf(bw, "%d\n", len(c.Gates))
	for _, g := range c.Gates {
		fmt.Fprintln(bw, g.String())
	}
	return bw.Flush()
}

// Format renders c as a string in the artifact text format.
func Format(c *Circuit) string {
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		panic(err) // strings.Builder never fails
	}
	return sb.String()
}

func parseErr(line int, format string, args ...any) error {
	return fmt.Errorf("circuit: line %d: %s", line, fmt.Sprintf(format, args...))
}
