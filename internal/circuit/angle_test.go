package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAngleCanonicalization(t *testing.T) {
	cases := []struct {
		num, den     int64
		wantN, wantD int64
	}{
		{1, 4, 1, 4},
		{2, 8, 1, 4},
		{-1, 4, 7, 4},   // -pi/4 = 7pi/4 mod 2pi
		{9, 4, 1, 4},    // 9pi/4 = pi/4
		{1, -4, 7, 4},   // negative denominator
		{0, 7, 0, 1},    // zero reduces denominator to 1
		{8, 4, 0, 1},    // 2pi = 0
		{6, 4, 3, 2},    // 3pi/2
		{-13, 6, 11, 6}, // -13pi/6 = 11pi/6? -13/6 + 2 = -1/6 + ... -13+12=-1 -> -1/6 -> +2 => 11/6
	}
	for _, c := range cases {
		got := NewAngle(c.num, c.den)
		if got.Num != c.wantN || got.Den != c.wantD {
			t.Errorf("NewAngle(%d,%d) = %d/%d, want %d/%d", c.num, c.den, got.Num, got.Den, c.wantN, c.wantD)
		}
	}
}

func TestNewAngleZeroDenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero denominator")
		}
	}()
	NewAngle(1, 0)
}

func TestIsClifford(t *testing.T) {
	clifford := []Angle{Zero, NewAngle(1, 2), NewAngle(1, 1), NewAngle(3, 2), NewAngle(2, 1)}
	for _, a := range clifford {
		if !a.IsClifford() {
			t.Errorf("%v should be Clifford", a)
		}
	}
	nonClifford := []Angle{NewAngle(1, 4), NewAngle(1, 8), NewAngle(1, 3), NewAngle(5, 6), NewAngle(3, 8)}
	for _, a := range nonClifford {
		if a.IsClifford() {
			t.Errorf("%v should not be Clifford", a)
		}
	}
}

func TestDoubleMatchesRadians(t *testing.T) {
	a := NewAngle(3, 8)
	d := a.Double()
	want := math.Mod(2*a.Radians(), 2*math.Pi)
	if math.Abs(d.Radians()-want) > 1e-12 {
		t.Errorf("Double: got %v rad, want %v rad", d.Radians(), want)
	}
}

func TestDoublingsToClifford(t *testing.T) {
	cases := []struct {
		a      Angle
		want   int
		wantOK bool
	}{
		{NewAngle(1, 2), 0, true},  // S gate already Clifford
		{NewAngle(1, 4), 1, true},  // T gate: one doubling -> pi/2
		{NewAngle(1, 8), 2, true},  // sqrt(T)
		{NewAngle(1, 16), 3, true}, //
		{NewAngle(3, 8), 2, true},  // 3pi/8 -> 3pi/4 -> 3pi/2
		{NewAngle(1, 3), 0, false}, // non-dyadic: never terminates
		{NewAngle(5, 6), 0, false},
		{NewAngle(1, 360), 0, false},
	}
	for _, c := range cases {
		n, ok := c.a.DoublingsToClifford()
		if ok != c.wantOK || (ok && n != c.want) {
			t.Errorf("DoublingsToClifford(%v) = (%d,%v), want (%d,%v)", c.a, n, ok, c.want, c.wantOK)
		}
	}
}

func TestAngleString(t *testing.T) {
	cases := map[string]Angle{
		"0":     Zero,
		"pi":    NewAngle(1, 1),
		"pi/4":  NewAngle(1, 4),
		"3pi/8": NewAngle(3, 8),
		"3pi/2": NewAngle(3, 2),
	}
	for want, a := range cases {
		if got := a.String(); got != want {
			t.Errorf("String(%d/%d) = %q, want %q", a.Num, a.Den, got, want)
		}
	}
}

func TestApproxAngleRecoversExactRationals(t *testing.T) {
	for _, a := range []Angle{NewAngle(1, 4), NewAngle(3, 8), NewAngle(5, 6), NewAngle(7, 16), NewAngle(1, 360)} {
		got := ApproxAngle(a.Radians(), maxParseDen)
		if !got.Equal(a) {
			t.Errorf("ApproxAngle(%v rad) = %v, want %v", a.Radians(), got, a)
		}
	}
}

// Property: NewAngle always yields canonical form (Den >= 1, reduced,
// Num in [0, 2*Den)), and Radians is within [0, 2*pi).
func TestAngleCanonicalProperty(t *testing.T) {
	f := func(num int64, den int64) bool {
		if den == 0 {
			den = 1
		}
		// Keep magnitudes sane to avoid overflow in the property itself.
		num %= 1 << 30
		den %= 1 << 30
		if den == 0 {
			den = 3
		}
		a := NewAngle(num, den)
		if a.Den < 1 || a.Num < 0 || a.Num >= 2*a.Den {
			return false
		}
		if g := gcd64(a.Num, a.Den); a.Num != 0 && g != 1 {
			return false
		}
		r := a.Radians()
		return r >= 0 && r < 2*math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: doubling in rational space agrees with doubling in radians
// (mod 2*pi), for bounded inputs.
func TestAngleDoubleProperty(t *testing.T) {
	f := func(num int64, den int64) bool {
		num %= 1 << 20
		den %= 1 << 20
		if den == 0 {
			den = 7
		}
		a := NewAngle(num, den)
		d := a.Double()
		want := math.Mod(2*a.Radians(), 2*math.Pi)
		diff := math.Abs(d.Radians() - want)
		// Allow wraparound at the 2*pi boundary.
		return diff < 1e-6 || math.Abs(diff-2*math.Pi) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a dyadic angle k/2^m always reaches Clifford within m doublings.
func TestDyadicTerminationProperty(t *testing.T) {
	f := func(k int64, m uint8) bool {
		shift := uint(m%20) + 1
		a := NewAngle(k, 1<<shift)
		n, ok := a.DoublingsToClifford()
		return ok && n <= int(shift)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
