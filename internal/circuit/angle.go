// Package circuit provides the Clifford+Rz circuit intermediate
// representation used throughout the RESCQ reproduction: gate kinds, exact
// rotation angles as rational multiples of pi, the circuit container, a
// dependency DAG with critical-path depths, and a parser/writer for the
// artifact's text circuit format.
package circuit

import (
	"fmt"
	"math"
)

// Angle is a Z-rotation angle expressed exactly as theta = pi * Num / Den.
//
// Angles are kept in canonical form: Den >= 1, gcd(|Num|, Den) == 1, and
// Num normalized into [0, 2*Den) so that theta lies in [0, 2*pi). The exact
// rational form matters for the repeat-until-success protocol: a failed
// injection doubles the angle, and the doubling chain terminates as soon as
// the angle becomes a Clifford rotation (a multiple of pi/2). Angles whose
// reduced denominator is a power of two (dyadic angles such as T = pi/4)
// terminate after finitely many doublings; all other angles never do.
type Angle struct {
	Num int64 // numerator of theta/pi
	Den int64 // denominator of theta/pi, always >= 1
}

// Zero is the identity rotation.
var Zero = Angle{Num: 0, Den: 1}

// NewAngle returns the canonical angle pi*num/den. It panics if den == 0.
func NewAngle(num, den int64) Angle {
	if den == 0 {
		panic("circuit: angle with zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	// Normalize num into [0, 2*den): theta mod 2*pi.
	num %= 2 * den
	if num < 0 {
		num += 2 * den
	}
	g := gcd64(num, den)
	if g > 1 {
		num /= g
		den /= g
	}
	return Angle{Num: num, Den: den}
}

// PiOver returns the angle pi/k, e.g. PiOver(4) is the T-gate angle.
func PiOver(k int64) Angle { return NewAngle(1, k) }

// Radians reports the angle in radians.
func (a Angle) Radians() float64 {
	return math.Pi * float64(a.Num) / float64(a.Den)
}

// IsZero reports whether the rotation is the identity.
func (a Angle) IsZero() bool { return a.Num == 0 }

// IsClifford reports whether the rotation is a multiple of pi/2 and can
// therefore be absorbed into the Clifford frame without consuming an |m_theta>
// resource state.
func (a Angle) IsClifford() bool {
	// theta = pi*Num/Den is a multiple of pi/2 iff 2*Num/Den is an integer.
	return (2*a.Num)%a.Den == 0
}

// Double returns the corrective angle 2*theta required after a failed
// |m_theta> injection (paper section 3.2).
func (a Angle) Double() Angle { return NewAngle(2*a.Num, a.Den) }

// DoublingsToClifford returns the number of angle doublings needed before
// the rotation becomes Clifford, and ok=false if the chain never terminates
// (non-dyadic denominator). A T gate (pi/4) returns (1, true): one doubling
// gives pi/2 which is the Clifford S gate.
func (a Angle) DoublingsToClifford() (n int, ok bool) {
	cur := a
	for i := 0; i <= 63; i++ {
		if cur.IsClifford() {
			return i, true
		}
		cur = cur.Double()
	}
	return 0, false
}

// Equal reports exact equality of canonical angles.
func (a Angle) Equal(b Angle) bool { return a.Num == b.Num && a.Den == b.Den }

// String renders the angle as a multiple of pi, e.g. "pi/4" or "3pi/8".
func (a Angle) String() string {
	switch {
	case a.Num == 0:
		return "0"
	case a.Den == 1 && a.Num == 1:
		return "pi"
	case a.Den == 1:
		return fmt.Sprintf("%dpi", a.Num)
	case a.Num == 1:
		return fmt.Sprintf("pi/%d", a.Den)
	default:
		return fmt.Sprintf("%dpi/%d", a.Num, a.Den)
	}
}

// ApproxAngle converts an angle in radians to the nearest canonical rational
// multiple of pi using a continued-fraction expansion with denominators
// bounded by maxDen. It is used when parsing circuits whose angles are
// written as decimal radians.
func ApproxAngle(radians float64, maxDen int64) Angle {
	if maxDen < 1 {
		maxDen = 1
	}
	x := radians / math.Pi
	x = math.Mod(x, 2)
	if x < 0 {
		x += 2
	}
	// Continued-fraction convergents of x with denominator cap.
	var (
		h0, h1 int64 = 1, 0 // numerators
		k0, k1 int64 = 0, 1 // denominators
		t            = x
	)
	for i := 0; i < 64; i++ {
		ai := int64(math.Floor(t))
		h2 := ai*h0 + h1
		k2 := ai*k0 + k1
		if k2 > maxDen || k2 < 0 {
			break
		}
		h1, h0 = h0, h2
		k1, k0 = k0, k2
		frac := t - math.Floor(t)
		if frac < 1e-12 {
			break
		}
		t = 1 / frac
	}
	if k0 == 0 {
		return Zero
	}
	return NewAngle(h0, k0)
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
