package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mustJSON(t testing.TB, v any) json.RawMessage {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func appendJob(t *testing.T, s *Store, id, kind string) {
	t.Helper()
	if err := s.AppendJob(JobRecord{ID: id, Kind: kind, Created: time.Unix(1700000000, 0).UTC(),
		Specs: mustJSON(t, []map[string]string{{"benchmark": "gcm_n13"}})}); err != nil {
		t.Fatalf("AppendJob(%s): %v", id, err)
	}
}

func appendResult(t *testing.T, s *Store, id string, idx int) {
	t.Helper()
	if err := s.AppendResult(ResultRecord{JobID: id, Index: idx, Key: fmt.Sprintf("key-%s-%d", id, idx),
		Result: mustJSON(t, map[string]int{"index": idx})}); err != nil {
		t.Fatalf("AppendResult(%s,%d): %v", id, idx, err)
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendJob(t, s, "job-000001", "sweep")
	appendResult(t, s, "job-000001", 0)
	appendResult(t, s, "job-000001", 1)
	if err := s.AppendDone(DoneRecord{JobID: "job-000001", State: "done"}); err != nil {
		t.Fatal(err)
	}
	appendJob(t, s, "job-000002", "run") // interrupted: no done record
	appendResult(t, s, "job-000002", 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jobs := s2.Replayed()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	j1, j2 := jobs[0], jobs[1]
	if j1.Job.ID != "job-000001" || !j1.Terminal() || j1.State != "done" || len(j1.Results) != 2 {
		t.Fatalf("job 1 = %+v", j1)
	}
	if j1.Results[1].Key != "key-job-000001-1" {
		t.Fatalf("result key = %q", j1.Results[1].Key)
	}
	if j2.Job.ID != "job-000002" || j2.Terminal() || len(j2.Results) != 1 {
		t.Fatalf("interrupted job = %+v", j2)
	}
	if j2.Job.Kind != "run" || string(j2.Job.Specs) == "" {
		t.Fatalf("interrupted job lost its record: %+v", j2.Job)
	}
}

// TestReplayTruncatedTail: a crash mid-append leaves a torn final line;
// replay recovers every complete record before it.
func TestReplayTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendJob(t, s, "job-000001", "sweep")
	appendResult(t, s, "job-000001", 0)
	s.Close()

	path := filepath.Join(dir, WALName)
	// Simulate the crash: append half of a record, no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"type":"result","job":"job-000001","ind`)
	f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	defer s2.Close()
	jobs := s2.Replayed()
	if len(jobs) != 1 || len(jobs[0].Results) != 1 {
		t.Fatalf("replay after torn tail = %+v", jobs)
	}
	if st := s2.Stats(); st.TailDropped != 1 {
		t.Fatalf("tail dropped = %d, want 1", st.TailDropped)
	}
	// Open compacted the torn tail away; a third open is clean.
	s2.Close()
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if st := s3.Stats(); st.TailDropped != 0 {
		t.Fatalf("compaction left a torn tail behind: %+v", st)
	}
}

// TestReplayMidLogCorruption: garbage followed by more complete records is
// not a crash signature — replay refuses rather than silently dropping
// history.
func TestReplayMidLogCorruption(t *testing.T) {
	log := `{"type":"job","id":"job-000001","kind":"run","specs":[]}
NOT JSON AT ALL
{"type":"done","job":"job-000001","state":"done"}
`
	_, _, _, err := Replay(strings.NewReader(log))
	if err == nil {
		t.Fatal("mid-log corruption accepted")
	}
	if !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("err = %v", err)
	}
}

func TestReplayOutOfOrderAndDuplicates(t *testing.T) {
	log := `{"type":"result","job":"job-000002","index":0,"key":"k0","result":{}}
{"type":"job","id":"job-000002","kind":"sweep","specs":[{"benchmark":"x"}]}
{"type":"result","job":"job-000002","index":0,"key":"dup","result":{}}
{"type":"result","job":"job-000002","index":2,"key":"gap","result":{}}
{"type":"result","job":"job-000002","index":1,"key":"k1","result":{}}
{"type":"job","id":"job-000002","kind":"run","specs":[]}
{"type":"done","job":"job-000002","state":"cancelled","error":"ctx"}
{"type":"done","job":"job-000002","state":"done"}
{"type":"result","job":"job-000001","index":0,"key":"orphan","result":{}}
`
	jobs, records, dropped, err := Replay(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if records != 9 || dropped != 0 {
		t.Fatalf("records=%d dropped=%d", records, dropped)
	}
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d, want 2 (orphan job synthesized)", len(jobs))
	}
	orphan, j := jobs[0], jobs[1]
	if j.Job.ID != "job-000002" || j.Job.Kind != "sweep" {
		t.Fatalf("first job record must win: %+v", j.Job)
	}
	if len(j.Results) != 2 || j.Results[0].Key != "k0" || j.Results[1].Key != "k1" {
		t.Fatalf("results = %+v (dups and gaps must be dropped)", j.Results)
	}
	if j.State != "cancelled" || j.Error != "ctx" {
		t.Fatalf("first done record must win: %+v", j)
	}
	if orphan.Job.ID != "job-000001" || orphan.Job.Specs != nil || len(orphan.Results) != 1 {
		t.Fatalf("orphan = %+v", orphan)
	}
}

func TestCompactionRetentionAndShrink(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{RetainJobs: 4, CompactEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		id := fmt.Sprintf("job-%06d", i)
		appendJob(t, s, id, "run")
		appendResult(t, s, id, 0)
		if err := s.AppendDone(DoneRecord{JobID: id, State: "done"}); err != nil {
			t.Fatal(err)
		}
	}
	appendJob(t, s, "job-000011", "sweep") // interrupted: always retained
	before := s.Stats()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Jobs != 5 { // 4 newest terminal + the interrupted one
		t.Fatalf("jobs after compaction = %d, want 5", after.Jobs)
	}
	if after.Bytes >= before.Bytes || after.Records >= before.Records {
		t.Fatalf("compaction did not shrink: before %+v after %+v", before, after)
	}
	if after.Compactions == 0 {
		t.Fatal("compaction not counted")
	}
	s.Close()

	s2, err := Open(dir, Options{RetainJobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jobs := s2.Replayed()
	if len(jobs) != 5 {
		t.Fatalf("replayed %d jobs after compaction, want 5", len(jobs))
	}
	if got := jobs[0].Job.ID; got != "job-000007" {
		t.Fatalf("oldest retained = %s, want job-000007", got)
	}
	last := jobs[len(jobs)-1]
	if last.Job.ID != "job-000011" || last.Terminal() {
		t.Fatalf("interrupted job lost by compaction: %+v", last)
	}
}

func TestAutoCompactionOnThreshold(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{RetainJobs: 2, CompactEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 1; i <= 20; i++ {
		id := fmt.Sprintf("job-%06d", i)
		appendJob(t, s, id, "run")
		if err := s.AppendDone(DoneRecord{JobID: id, State: "done"}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatal("append threshold never triggered compaction")
	}
	if st.Jobs > 4 || st.Records > 8 {
		t.Fatalf("auto-compaction failed to bound the log: %+v", st)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.AppendJob(JobRecord{ID: "job-000001"}); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestDuplicateJobAppendIsNoop(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendJob(t, s, "job-000001", "run")
	recordsBefore := s.Stats().Records
	appendJob(t, s, "job-000001", "run")
	if got := s.Stats().Records; got != recordsBefore {
		t.Fatalf("duplicate job appended a record (%d -> %d)", recordsBefore, got)
	}
}
