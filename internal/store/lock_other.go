//go:build !unix

package store

import "os"

// flockExclusive is a no-op where flock is unavailable: the store still
// works, but the one-writer-per-directory guard is advisory only (the
// O_APPEND single-line writes keep concurrent appends from interleaving
// mid-record).
func flockExclusive(*os.File) error { return nil }
