package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestJobRecordTenantRoundTrip: a tagged job record survives both codecs
// with its tenant intact.
func TestJobRecordTenantRoundTrip(t *testing.T) {
	rec := JobRecord{Type: recJob, ID: "job-000001", Kind: "sweep",
		Created: time.Unix(1700000000, 123).UTC(),
		Specs:   json.RawMessage(`[{"benchmark":"gcm_n13"}]`),
		Tenant:  "alice"}

	t.Run("json", func(t *testing.T) {
		frame, err := encodeRecord(CodecJSON, rec)
		if err != nil {
			t.Fatal(err)
		}
		var got JobRecord
		if err := json.Unmarshal(frame, &got); err != nil {
			t.Fatal(err)
		}
		if got.Tenant != "alice" {
			t.Fatalf("json round-trip tenant = %q, want alice", got.Tenant)
		}
	})

	t.Run("binary", func(t *testing.T) {
		frame, err := encodeBinaryRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		got, complete, err := readBinaryRecord(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil || !complete {
			t.Fatalf("decode: complete=%v err=%v", complete, err)
		}
		jr, ok := got.(JobRecord)
		if !ok {
			t.Fatalf("decoded %T, want JobRecord", got)
		}
		if !bytes.Equal(mustJSON(t, jr), mustJSON(t, rec)) {
			t.Fatalf("binary round-trip:\n got %s\nwant %s", mustJSON(t, jr), mustJSON(t, rec))
		}
	})
}

// TestUntaggedJobRecordUnchanged pins backward compatibility in both
// directions: a record without a tenant encodes exactly as the pre-tenancy
// codecs did (no tenant key, no fifth blob), and pre-tenancy bytes decode
// to Tenant "" (which the service maps to the default tenant on replay).
func TestUntaggedJobRecordUnchanged(t *testing.T) {
	rec := JobRecord{Type: recJob, ID: "job-000007", Kind: "run",
		Created: time.Unix(1700000000, 0).UTC(),
		Specs:   json.RawMessage(`[{"benchmark":"qft_n18"}]`)}

	jsonFrame, err := encodeRecord(CodecJSON, rec)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(jsonFrame), "tenant") {
		t.Fatalf("untagged JSON record leaks a tenant key: %s", jsonFrame)
	}

	plain, err := encodeBinaryRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	tagged := rec
	tagged.Tenant = "alice"
	taggedFrame, err := encodeBinaryRecord(tagged)
	if err != nil {
		t.Fatal(err)
	}
	// The only delta a tenant adds is its own trailing blob (1-byte uvarint
	// length + the name); an untagged record is byte-compatible with logs
	// written before tenancy existed.
	if want := len(plain) + 1 + len("alice"); len(taggedFrame) != want {
		t.Fatalf("tagged frame is %d bytes, want %d (untagged %d + tenant blob)",
			len(taggedFrame), want, len(plain))
	}
	got, complete, err := readBinaryRecord(bufio.NewReader(bytes.NewReader(plain)))
	if err != nil || !complete {
		t.Fatalf("decode untagged: complete=%v err=%v", complete, err)
	}
	if jr := got.(JobRecord); jr.Tenant != "" {
		t.Fatalf("untagged record decodes with tenant %q, want empty", jr.Tenant)
	}
}

// TestReplayMixedTenantRecords: one log holding pre-tenancy (untagged) and
// tenant-tagged job records replays both, preserving each job's tag, on
// both codecs.
func TestReplayMixedTenantRecords(t *testing.T) {
	records := []any{
		JobRecord{Type: recJob, ID: "job-000001", Kind: "sweep",
			Specs: json.RawMessage(`[{"benchmark":"gcm_n13"}]`)}, // pre-tenancy
		ResultRecord{Type: recResult, JobID: "job-000001", Index: 0, Key: "k0",
			Result: json.RawMessage(`{"ok":1}`)},
		DoneRecord{Type: recDone, JobID: "job-000001", State: "done"},
		JobRecord{Type: recJob, ID: "job-000002", Kind: "run", Tenant: "alice",
			Specs: json.RawMessage(`[{"benchmark":"qft_n18"}]`)},
	}
	for _, codec := range []string{CodecJSON, CodecBinary} {
		t.Run(codec, func(t *testing.T) {
			var buf bytes.Buffer
			if codec == CodecBinary {
				buf.Write(walMagic[:])
			}
			for _, rec := range records {
				frame, err := encodeRecord(codec, rec)
				if err != nil {
					t.Fatal(err)
				}
				buf.Write(frame)
			}
			jobs, n, dropped, err := Replay(&buf)
			if err != nil || dropped != 0 {
				t.Fatalf("replay: err=%v dropped=%d", err, dropped)
			}
			if n != len(records) || len(jobs) != 2 {
				t.Fatalf("replayed %d records / %d jobs, want %d / 2", n, len(jobs), len(records))
			}
			if got := jobs[0].Job.Tenant; got != "" {
				t.Fatalf("pre-tenancy job replays with tenant %q, want empty", got)
			}
			if jobs[0].State != "done" || len(jobs[0].Results) != 1 {
				t.Fatalf("job-000001 = state %q, %d results", jobs[0].State, len(jobs[0].Results))
			}
			if got := jobs[1].Job.Tenant; got != "alice" {
				t.Fatalf("tagged job replays with tenant %q, want alice", got)
			}
		})
	}
}

// TestTenantSurvivesStoreReopen: the tenant tag round-trips through the
// real append/compact/replay path, not just the codec.
func TestTenantSurvivesStoreReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendJob(JobRecord{ID: "job-000001", Kind: "run", Tenant: "alice",
		Specs: json.RawMessage(`[{"benchmark":"gcm_n13"}]`)}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendJob(JobRecord{ID: "job-000002", Kind: "run",
		Specs: json.RawMessage(`[{"benchmark":"qft_n18"}]`)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	jobs := st2.Replayed()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	if jobs[0].Job.Tenant != "alice" || jobs[1].Job.Tenant != "" {
		t.Fatalf("tenants = %q/%q, want alice/empty", jobs[0].Job.Tenant, jobs[1].Job.Tenant)
	}
}

// TestBinaryJobTrailingJunkRejected: bytes after the optional tenant blob
// are corruption, not silently ignored.
func TestBinaryJobTrailingJunkRejected(t *testing.T) {
	created, err := time.Time{}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var body []byte
	body = appendBlob(body, []byte("job-000001"))
	body = appendBlob(body, []byte("run"))
	body = appendBlob(body, created)
	body = appendBlob(body, nil) // nil Specs
	body = appendBlob(body, []byte("alice"))
	if _, err := decodeBinaryBody(binKindJob, body); err != nil {
		t.Fatalf("well-formed tagged body rejected: %v", err)
	}
	junk := appendBlob(body, []byte("junk"))
	if _, err := decodeBinaryBody(binKindJob, junk); !errors.Is(err, errCorruptRecord) {
		t.Fatalf("trailing junk decode err = %v, want errCorruptRecord", err)
	}
}
