// Package store implements rescqd's durability layer: an append-only,
// crash-safe on-disk job + result log (a JSON-lines write-ahead log with
// compaction) that lets the daemon survive a restart without dropping
// queued jobs or re-burning completed simulation work.
//
// # Log format
//
// The log is a single file of newline-delimited JSON records, one record
// per line, appended in arrival order:
//
//	{"type":"job","id":"job-000001","kind":"sweep","created":...,"specs":[...]}
//	{"type":"result","job":"job-000001","index":0,"key":"<rescq.CacheKey>","result":{...}}
//	{"type":"done","job":"job-000001","state":"done"}
//
// The store is deliberately ignorant of the payload shapes: specs and
// results travel as json.RawMessage, so the service layer owns the schema
// and the store owns durability. Result records carry the canonical
// rescq.CacheKey of their configuration, which is what lets the daemon
// re-seed its result cache on replay and coalesce identical work across
// restarts.
//
// # Crash safety
//
// The store is single-writer: Open takes a non-blocking exclusive flock
// on the log, so a second process on the same directory fails fast with
// ErrLocked instead of interleaving writes; the kernel releases the lock
// on any process death. Every record is written with a single O_APPEND
// Write call of one complete line, so a crash (SIGKILL included) can
// only ever truncate the final record.
// Replay tolerates exactly that: a trailing partial or corrupt line is
// counted and discarded, every complete record before it is recovered. A
// record that fails to decode mid-log (torn by an external editor, not a
// crash) ends replay at that point rather than guessing.
//
// # Compaction
//
// The in-memory index mirrors the log: jobs, their results, terminal
// states. Compact rewrites the log from that index, dropping jobs beyond
// the terminal-retention bound and any superseded duplicate records, then
// atomically renames the rewrite over the log. Open compacts automatically
// when the replayed log carries enough garbage to matter, and Append*
// triggers a background-free inline compaction when the record count since
// the last compaction exceeds a threshold.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
)

// Record types, the "type" field of every log line.
const (
	recJob    = "job"
	recResult = "result"
	recDone   = "done"
)

// Failpoints on the WAL's write paths (see internal/fault). An injected
// "disk full" here is how the chaos suite proves the daemon degrades to
// lossy serving instead of 5xx-ing submissions.
const (
	// FaultWrite fires in every record append (and in Probe, so a probe
	// sees the same simulated disk the appends do).
	FaultWrite = "wal.write"
	// FaultSync fires in Sync, the OS-crash checkpoint on graceful drain.
	FaultSync = "wal.sync"
)

// JobRecord persists one submitted job: its identity and its fully
// validated run specifications (opaque to the store).
type JobRecord struct {
	Type    string          `json:"type"` // filled by the store
	ID      string          `json:"id"`
	Kind    string          `json:"kind"`
	Created time.Time       `json:"created"`
	Specs   json.RawMessage `json:"specs"`
}

// ResultRecord persists one completed run configuration of a job. Key is
// the configuration's canonical rescq.CacheKey ("" for uncacheable
// configurations); Result is the service-layer ConfigResult payload.
type ResultRecord struct {
	Type   string          `json:"type"` // filled by the store
	JobID  string          `json:"job"`
	Index  int             `json:"index"`
	Key    string          `json:"key,omitempty"`
	Result json.RawMessage `json:"result"`
}

// DoneRecord persists a job's terminal state.
type DoneRecord struct {
	Type  string `json:"type"` // filled by the store
	JobID string `json:"job"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// ReplayedJob is one job reconstructed from the log: the job record, its
// persisted results in index order, and its terminal state ("" while the
// job was still queued or running when the log ended — an interrupted job
// the daemon should re-enqueue).
type ReplayedJob struct {
	Job     JobRecord
	Results []ResultRecord
	State   string
	Error   string
}

// Terminal reports whether the job reached a terminal state before the
// log ended.
func (r *ReplayedJob) Terminal() bool { return r.State != "" }

// Stats is a point-in-time size snapshot of the store.
type Stats struct {
	Jobs        int   `json:"jobs"`         // jobs in the index
	Records     int   `json:"records"`      // records in the log file
	Bytes       int64 `json:"bytes"`        // log file size
	Compactions int64 `json:"compactions"`  // lifetime compaction count
	TailDropped int   `json:"tail_dropped"` // partial/corrupt tail records discarded at Open
}

// Options tunes a Store; the zero value is production-sensible.
type Options struct {
	// RetainJobs bounds how many terminal jobs compaction keeps (oldest
	// evicted first); 0 means the default 1024. Interrupted and running
	// jobs are always retained.
	RetainJobs int
	// CompactEvery triggers an inline compaction after this many appended
	// records; 0 means the default 8192.
	CompactEvery int
}

func (o Options) withDefaults() Options {
	if o.RetainJobs == 0 {
		o.RetainJobs = 1024
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 8192
	}
	return o
}

// WALName is the log's filename inside the store directory.
const WALName = "wal.jsonl"

// Store is the durable job + result log. All methods are safe for
// concurrent use.
type Store struct {
	mu   sync.Mutex
	opts Options
	path string
	f    *os.File

	jobs  map[string]*ReplayedJob
	order []string // job ids in first-seen order

	records     int // records currently in the log file (including garbage)
	sinceComp   int // records appended since the last compaction
	bytes       int64
	compactions int64
	tailDropped int

	replayed []ReplayedJob // snapshot taken at Open, in log order
}

// Open opens (creating if needed) the store in dir and replays the log.
// A partial or corrupt tail record — the signature of a crash mid-append —
// is discarded; everything before it is recovered.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, WALName)
	// O_APPEND: every record lands atomically at EOF even if a stale
	// handle (a crashed-but-lingering writer) races this one.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// One daemon per store dir: an exclusive flock rejects a second Open
	// while the first holder lives; the kernel releases it on any process
	// death, SIGKILL included, so crash-restart never needs cleanup.
	if err := flockExclusive(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	s := &Store{opts: opts, path: path, f: f, jobs: make(map[string]*ReplayedJob)}
	jobs, records, dropped, err := Replay(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: replay %s: %w", path, err)
	}
	s.records = records
	s.tailDropped = dropped
	for i := range jobs {
		j := jobs[i]
		s.jobs[j.Job.ID] = &jobs[i]
		s.order = append(s.order, j.Job.ID)
	}
	s.replayed = append([]ReplayedJob(nil), jobs...)
	if st, err := f.Stat(); err == nil {
		s.bytes = st.Size()
	}
	// A freshly replayed log that carries garbage (dropped tail, evictable
	// jobs, or duplicate records) is compacted right away so a crash-loop
	// cannot grow the file without bound.
	if dropped > 0 || len(s.order) > opts.RetainJobs || records > s.liveRecords() {
		if err := s.compactLocked(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// Replayed returns the jobs reconstructed at Open, in log order.
func (s *Store) Replayed() []ReplayedJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ReplayedJob(nil), s.replayed...)
}

// Stats reports the store's current size.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Jobs:        len(s.jobs),
		Records:     s.records,
		Bytes:       s.bytes,
		Compactions: s.compactions,
		TailDropped: s.tailDropped,
	}
}

// AppendJob logs a submitted job. Re-appending a known id is a no-op
// (resumed jobs are already on disk). AppendJob never compacts inline:
// the service calls it on its submission path (holding a server-wide
// lock so a result can never precede its job record), and a cascaded
// whole-log rewrite there would stall every submission. Results and
// terminal markers — appended from worker goroutines — carry the
// compaction trigger instead, and every job eventually produces one.
func (s *Store) AppendJob(r JobRecord) error {
	r.Type = recJob
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	if _, ok := s.jobs[r.ID]; ok {
		return nil
	}
	if err := s.writeLocked(r); err != nil {
		return err
	}
	s.jobs[r.ID] = &ReplayedJob{Job: r}
	s.order = append(s.order, r.ID)
	return nil
}

// AppendResult logs one completed run configuration. Results must arrive
// in index order per job; a duplicate or out-of-order index is dropped
// (it can only be a replayed configuration re-reported on resume).
func (s *Store) AppendResult(r ResultRecord) error {
	r.Type = recResult
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	j, ok := s.jobs[r.JobID]
	if !ok || r.Index != len(j.Results) {
		return nil
	}
	if err := s.writeLocked(r); err != nil {
		return err
	}
	j.Results = append(j.Results, r)
	return s.maybeCompactLocked()
}

// AppendDone logs a job's terminal state.
func (s *Store) AppendDone(r DoneRecord) error {
	r.Type = recDone
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	j, ok := s.jobs[r.JobID]
	if !ok || j.State != "" {
		return nil
	}
	if err := s.writeLocked(r); err != nil {
		return err
	}
	j.State, j.Error = r.State, r.Error
	return s.maybeCompactLocked()
}

var errClosed = errors.New("store: closed")

// ErrLocked is returned by Open when another live process holds the WAL.
var ErrLocked = errors.New("wal locked by another process")

func (s *Store) writeLocked(v any) error {
	if err := fault.Check(FaultWrite); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	line = append(line, '\n')
	// One complete line per Write call: a crash can truncate the final
	// record but never interleave two.
	n, err := s.f.Write(line)
	s.bytes += int64(n)
	if err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	s.records++
	s.sinceComp++
	return nil
}

// liveRecords counts the records a compacted log would hold.
func (s *Store) liveRecords() int {
	n := 0
	for _, j := range s.jobs {
		n += 1 + len(j.Results)
		if j.State != "" {
			n++
		}
	}
	return n
}

func (s *Store) maybeCompactLocked() error {
	if s.sinceComp < s.opts.CompactEvery && len(s.order) <= 2*s.opts.RetainJobs {
		return nil
	}
	return s.compactLocked()
}

// Compact rewrites the log from the in-memory index, evicting terminal
// jobs beyond the retention bound, and atomically replaces the log file.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	// Evict the oldest terminal jobs beyond the retention bound.
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].Terminal() {
			terminal++
		}
	}
	if evict := terminal - s.opts.RetainJobs; evict > 0 {
		kept := s.order[:0]
		for _, id := range s.order {
			if evict > 0 && s.jobs[id].Terminal() {
				delete(s.jobs, id)
				evict--
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
	}

	tmp, err := os.CreateTemp(filepath.Dir(s.path), WALName+".compact-*")
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the successful rename
	w := bufio.NewWriter(tmp)
	records := 0
	emit := func(v any) bool {
		line, err := json.Marshal(v)
		if err == nil {
			w.Write(line)
			err = w.WriteByte('\n')
		}
		if err != nil {
			return false
		}
		records++
		return true
	}
	for _, id := range s.order {
		j := s.jobs[id]
		ok := emit(j.Job)
		for _, r := range j.Results {
			ok = ok && emit(r)
		}
		if j.State != "" {
			ok = ok && emit(DoneRecord{Type: recDone, JobID: id, State: j.State, Error: j.Error})
		}
		if !ok {
			tmp.Close()
			return fmt.Errorf("store: compact: rewrite failed")
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	st, err := tmp.Stat()
	if err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	// Carry the single-writer lock onto the new inode before it becomes
	// the log; the old inode's lock dies with its fd below.
	if err := flockExclusive(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	s.f.Close()
	s.f = tmp
	s.records = records
	s.sinceComp = 0
	s.bytes = st.Size()
	s.compactions++
	return nil
}

// Sync flushes the log to stable storage (fsync). Appends themselves only
// guarantee process-crash durability (the write reaches the kernel); Sync
// is the OS-crash checkpoint the daemon takes on graceful drain.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	if err := fault.Check(FaultSync); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	return s.f.Sync()
}

// Probe checks whether the WAL can take writes again, for the service's
// durability probe while it serves in lossy mode. It exercises the same
// failpoint and fsync path as a real append — without writing a record,
// because Replay treats unknown record types as corruption and a probe
// marker would poison every future replay of the log.
func (s *Store) Probe() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	if err := fault.Check(FaultWrite); err != nil {
		return fmt.Errorf("store: probe: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: probe: %w", err)
	}
	return nil
}

// Close compacts, syncs and closes the log. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.compactLocked()
	if serr := s.f.Sync(); err == nil {
		err = serr
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// Replay reconstructs jobs from a log stream. It returns the jobs in
// first-seen order, the number of complete records read, and the number of
// partial/corrupt records discarded at the tail. Replay is tolerant of the
// crash signature (a torn final line) and of record interleavings: results
// and done markers arriving before their job record are buffered and
// merged, duplicate and out-of-order result indices are dropped, and a
// second job record for a known id is ignored. Orphan results whose job
// record never appears are attached to a synthetic spec-less job so their
// cache keys remain recoverable.
func Replay(r io.Reader) ([]ReplayedJob, int, int, error) {
	jobs := make(map[string]*ReplayedJob)
	var order []string
	get := func(id string) *ReplayedJob {
		j, ok := jobs[id]
		if !ok {
			j = &ReplayedJob{Job: JobRecord{Type: recJob, ID: id}}
			jobs[id] = j
			order = append(order, id)
		}
		return j
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024*1024)
	records, dropped := 0, 0
	var pendingErr error
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &head); err != nil {
			// Only acceptable as the torn final record of a crash; if more
			// complete records follow, the log is corrupt mid-stream.
			dropped++
			pendingErr = fmt.Errorf("store: corrupt record %d: %w", records+dropped, err)
			continue
		}
		if pendingErr != nil {
			return nil, records, dropped, pendingErr
		}
		switch head.Type {
		case recJob:
			var rec JobRecord
			if err := json.Unmarshal(line, &rec); err != nil || rec.ID == "" {
				dropped++
				pendingErr = fmt.Errorf("store: bad job record %d", records+dropped)
				continue
			}
			j := get(rec.ID)
			if j.Job.Specs == nil {
				created := j.Job.Created
				j.Job = rec
				if rec.Created.IsZero() {
					j.Job.Created = created
				}
			}
		case recResult:
			var rec ResultRecord
			if err := json.Unmarshal(line, &rec); err != nil || rec.JobID == "" {
				dropped++
				pendingErr = fmt.Errorf("store: bad result record %d", records+dropped)
				continue
			}
			j := get(rec.JobID)
			if rec.Index == len(j.Results) {
				j.Results = append(j.Results, rec)
			}
		case recDone:
			var rec DoneRecord
			if err := json.Unmarshal(line, &rec); err != nil || rec.JobID == "" {
				dropped++
				pendingErr = fmt.Errorf("store: bad done record %d", records+dropped)
				continue
			}
			j := get(rec.JobID)
			if j.State == "" {
				j.State, j.Error = rec.State, rec.Error
			}
		default:
			dropped++
			pendingErr = fmt.Errorf("store: unknown record type %q", head.Type)
			continue
		}
		records++
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// An oversized line can only be a torn or hostile tail record;
			// everything already decoded stands.
			dropped++
		} else {
			return nil, records, dropped, fmt.Errorf("store: read log: %w", err)
		}
	}
	out := make([]ReplayedJob, 0, len(order))
	for _, id := range order {
		out = append(out, *jobs[id])
	}
	sort.SliceStable(out, func(a, b int) bool { return JobIDLess(out[a].Job.ID, out[b].Job.ID) })
	return out, records, dropped, nil
}

// JobIDLess orders job ids for replay and listings: ids sharing a prefix
// are compared by their trailing decimal counter, so "job-1000000" sorts
// after "job-999999" (plain string order would put it first the moment the
// counter outgrows its zero padding). Ids without a numeric suffix fall
// back to string order.
func JobIDLess(a, b string) bool {
	pa, na, aok := splitNumericSuffix(a)
	pb, nb, bok := splitNumericSuffix(b)
	if aok && bok && pa == pb {
		if na != nb {
			return na < nb
		}
		return a < b // differing zero padding only
	}
	return a < b
}

// splitNumericSuffix splits "job-001234" into ("job-", 1234, true).
func splitNumericSuffix(id string) (prefix string, n uint64, ok bool) {
	i := len(id)
	for i > 0 && id[i-1] >= '0' && id[i-1] <= '9' {
		i--
	}
	if i == len(id) {
		return id, 0, false
	}
	// Overflow-proof enough for ids minted from an int64 counter; a
	// hostile 30-digit suffix just falls back to string order.
	if len(id)-i > 19 {
		return id, 0, false
	}
	for _, c := range []byte(id[i:]) {
		n = n*10 + uint64(c-'0')
	}
	return id[:i], n, true
}
