// Package store implements rescqd's durability layer: an append-only,
// crash-safe on-disk job + result log (a write-ahead log with snapshot
// compaction) that lets the daemon survive a restart without dropping
// queued jobs or re-burning completed simulation work.
//
// # Log formats
//
// The store speaks two record codecs, selected per-file by sniffing the
// first bytes at replay time, so any mix of files from any daemon version
// reads back correctly:
//
//   - binary (the default): the file opens with an 8-byte magic+version
//     header, then length-prefixed frames — uvarint payload length, the
//     payload (kind byte, flags byte, length-prefixed fields, flate-
//     compressed when it pays), and a CRC32 of the payload. Length+CRC
//     framing makes torn tails and partial appends detectable by
//     construction.
//
//   - json (debug/compat): headerless newline-delimited JSON records,
//     the format of every log written before the binary codec existed:
//
//     {"type":"job","id":"job-000001","kind":"sweep","created":...,"specs":[...]}
//     {"type":"result","job":"job-000001","index":0,"key":"<rescq.CacheKey>","result":{...}}
//     {"type":"done","job":"job-000001","state":"done"}
//
// The store is deliberately ignorant of the payload shapes: specs and
// results travel as opaque bytes, so the service layer owns the schema
// and the store owns durability. Result records carry the canonical
// rescq.CacheKey of their configuration, which is what lets the daemon
// re-seed its result cache on replay and coalesce identical work across
// restarts.
//
// # Crash safety
//
// The store is single-writer: Open takes a non-blocking exclusive flock
// on the log, so a second process on the same directory fails fast with
// ErrLocked instead of interleaving writes; the kernel releases the lock
// on any process death. Every record is written with a single O_APPEND
// Write call of one complete frame or line, so a crash (SIGKILL included)
// can only ever truncate the final record; a short or failed write is
// truncated back off the log immediately so a recovered disk appends onto
// a clean tail, never onto torn garbage.
// Replay tolerates exactly the crash signature: a trailing partial or
// corrupt record is counted and discarded, every complete record before
// it is recovered. A record that fails to decode mid-log (torn by an
// external editor, not a crash) ends replay at that point rather than
// guessing.
//
// # Compaction
//
// The in-memory index mirrors the on-disk state: jobs, their results,
// terminal states. Compact writes the index into a snapshot file
// (atomically renamed over the previous one), then truncates the log in
// place, so replay cost is bounded by live state: Open reads the snapshot
// and the log delta, and the log holds only records appended since the
// last compaction. Compaction always emits the configured codec, which is
// how an old JSON log migrates forward on its first binary-default Open.
// Open compacts automatically when the replayed state carries enough
// garbage to matter (or is in the wrong codec), and Append* triggers an
// inline compaction when the records since the last one exceed a
// threshold.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
)

// Record types, the "type" field of every JSON log line (binary frames
// carry the equivalent kind byte).
const (
	recJob    = "job"
	recResult = "result"
	recDone   = "done"
	recState  = "state"
)

// Failpoints on the WAL's write paths (see internal/fault). An injected
// "disk full" here is how the chaos suite proves the daemon degrades to
// lossy serving instead of 5xx-ing submissions; an injected "short"
// message additionally simulates a partially-completed write so the
// torn-tail rollback is exercised end to end.
const (
	// FaultWrite fires in every record append (and in Probe, so a probe
	// sees the same simulated disk the appends do).
	FaultWrite = "wal.write"
	// FaultSync fires in Sync, the OS-crash checkpoint on graceful drain.
	FaultSync = "wal.sync"
)

// JobRecord persists one submitted job: its identity and its fully
// validated run specifications (opaque to the store). Tenant is the
// owning tenant for scheduler accounting; "" — every record written
// before tenancy existed, and all default-tenant traffic since — replays
// as the default tenant, so old logs need no migration.
type JobRecord struct {
	Type    string          `json:"type"` // filled by the store
	ID      string          `json:"id"`
	Kind    string          `json:"kind"`
	Created time.Time       `json:"created"`
	Specs   json.RawMessage `json:"specs"`
	Tenant  string          `json:"tenant,omitempty"`
}

// ResultRecord persists one completed run configuration of a job. Key is
// the configuration's canonical rescq.CacheKey ("" for uncacheable
// configurations); Result is the service-layer ConfigResult payload.
type ResultRecord struct {
	Type   string          `json:"type"` // filled by the store
	JobID  string          `json:"job"`
	Index  int             `json:"index"`
	Key    string          `json:"key,omitempty"`
	Result json.RawMessage `json:"result"`
}

// DoneRecord persists a job's terminal state.
type DoneRecord struct {
	Type  string `json:"type"` // filled by the store
	JobID string `json:"job"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// StateRecord persists one named auxiliary state blob riding the job log
// — e.g. the analytics aggregate snapshot. Last writer wins per name, the
// current value is carried through every compaction, and replay surfaces
// it via State; it is invisible to job replay. The payload must be valid
// JSON (the JSON codec embeds it verbatim).
//
// Note for downgrades: daemons older than this record kind treat unknown
// record types as corruption, so a log that carries state records does
// not replay on them. Disabling the writer (-analytics=false) keeps a log
// free of state records.
type StateRecord struct {
	Type    string          `json:"type"` // filled by the store
	Name    string          `json:"name"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// ReplayedJob is one job reconstructed from the log: the job record, its
// persisted results in index order, and its terminal state ("" while the
// job was still queued or running when the log ended — an interrupted job
// the daemon should re-enqueue).
type ReplayedJob struct {
	Job     JobRecord
	Results []ResultRecord
	State   string
	Error   string
}

// Terminal reports whether the job reached a terminal state before the
// log ended.
func (r *ReplayedJob) Terminal() bool { return r.State != "" }

// Stats is a point-in-time size snapshot of the store. Records and Bytes
// cover the snapshot plus the log delta — the full on-disk state a replay
// reads.
type Stats struct {
	Jobs        int    `json:"jobs"`         // jobs in the index
	Records     int    `json:"records"`      // records on disk (snapshot + log)
	Bytes       int64  `json:"bytes"`        // on-disk size (snapshot + log)
	Compactions int64  `json:"compactions"`  // lifetime compaction count
	TailDropped int    `json:"tail_dropped"` // partial/corrupt tail records discarded at Open
	Codec       string `json:"codec"`        // the log's active append codec

	SnapshotRecords int   `json:"snapshot_records"` // records in the snapshot file
	SnapshotBytes   int64 `json:"snapshot_bytes"`   // snapshot file size

	// Per-codec append accounting since Open, for the /metrics counters.
	AppendsBinary     int64 `json:"appends_binary"`
	AppendsJSON       int64 `json:"appends_json"`
	AppendBytesBinary int64 `json:"append_bytes_binary"`
	AppendBytesJSON   int64 `json:"append_bytes_json"`
}

// Options tunes a Store; the zero value is production-sensible.
type Options struct {
	// RetainJobs bounds how many terminal jobs compaction keeps (oldest
	// evicted first); 0 means the default 1024. Interrupted and running
	// jobs are always retained.
	RetainJobs int
	// CompactEvery triggers an inline compaction after this many appended
	// records; 0 means the default 8192.
	CompactEvery int
	// Codec selects the append format: CodecBinary (the default) or
	// CodecJSON (the debug/compat path). Replay always sniffs per file,
	// so the knob only governs what new records look like; a log in the
	// other codec is migrated at the first compaction.
	Codec string
}

func (o Options) withDefaults() Options {
	if o.RetainJobs == 0 {
		o.RetainJobs = 1024
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 8192
	}
	return o
}

// WALName is the log's filename inside the store directory. (The name
// predates the binary codec: a binary-codec log keeps it, and announces
// itself with the magic header instead.)
const WALName = "wal.jsonl"

// SnapName is the compaction snapshot's filename inside the store
// directory: the full live state as of the last compaction, atomically
// replaced, replayed before the log delta.
const SnapName = "wal.snap"

// Store is the durable job + result log. All methods are safe for
// concurrent use.
type Store struct {
	mu   sync.Mutex
	opts Options
	path string
	f    *os.File

	jobs   map[string]*ReplayedJob
	order  []string          // job ids in first-seen order
	states map[string][]byte // named auxiliary state blobs, last writer wins

	codec       string // the log's active append codec
	records     int    // records currently in the log file (including garbage)
	sinceComp   int    // records appended since the last compaction
	bytes       int64  // log file size
	snapRecords int    // records in the snapshot file
	snapBytes   int64  // snapshot file size
	torn        bool   // a failed append left a tail we could not truncate yet
	compactions int64
	tailDropped int

	appendsBinary     int64
	appendsJSON       int64
	appendBytesBinary int64
	appendBytesJSON   int64

	replayed []ReplayedJob // snapshot taken at Open, in log order
}

// Open opens (creating if needed) the store in dir and replays the
// snapshot plus the log delta. A partial or corrupt tail record in the
// log — the signature of a crash mid-append — is discarded; everything
// before it is recovered. The snapshot is written atomically, so any
// damage there is fatal rather than tolerated.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	codec, err := normalizeCodec(opts.Codec)
	if err != nil {
		return nil, err
	}
	opts.Codec = codec
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, WALName)
	// O_APPEND: every record lands atomically at EOF even if a stale
	// handle (a crashed-but-lingering writer) races this one.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// One daemon per store dir: an exclusive flock rejects a second Open
	// while the first holder lives; the kernel releases it on any process
	// death, SIGKILL included, so crash-restart never needs cleanup.
	if err := flockExclusive(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	s := &Store{opts: opts, path: path, f: f, jobs: make(map[string]*ReplayedJob)}

	// Snapshot first, then the log delta, merged into one replay state.
	st := newReplayState()
	snapPath := filepath.Join(dir, SnapName)
	snapCodec := ""
	if sf, serr := os.Open(snapPath); serr == nil {
		snapCodec, serr = replayStream(st, sf)
		sf.Close()
		if serr == nil && st.dropped > 0 {
			serr = fmt.Errorf("%d torn records in an atomically-written file", st.dropped)
		}
		if serr != nil {
			f.Close()
			return nil, fmt.Errorf("store: replay snapshot %s: %w", snapPath, serr)
		}
		s.snapRecords = st.records
		if fi, err := os.Stat(snapPath); err == nil {
			s.snapBytes = fi.Size()
		}
	} else if !errors.Is(serr, os.ErrNotExist) {
		f.Close()
		return nil, fmt.Errorf("store: %w", serr)
	}
	logCodec, err := replayStream(st, f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: replay %s: %w", path, err)
	}
	s.records = st.records - s.snapRecords
	s.tailDropped = st.dropped
	for _, id := range st.order {
		s.jobs[id] = st.jobs[id]
		s.order = append(s.order, id)
	}
	s.states = st.states
	if s.states == nil {
		s.states = make(map[string][]byte)
	}
	s.replayed = st.sorted()
	if fi, err := f.Stat(); err == nil {
		s.bytes = fi.Size()
	}
	s.codec = logCodec
	if s.codec == "" {
		// Empty log: adopt the configured codec and stamp the header.
		s.codec = opts.Codec
		if s.codec == CodecBinary && s.bytes == 0 {
			n, werr := f.Write(walMagic[:])
			if werr != nil {
				f.Close()
				return nil, fmt.Errorf("store: write log header: %w", werr)
			}
			s.bytes = int64(n)
		}
	}
	// A freshly replayed state that carries garbage (dropped tail,
	// evictable jobs, duplicate records) or files in the wrong codec is
	// compacted right away, so a crash-loop cannot grow the files without
	// bound and a JSON-era log migrates forward on its first Open.
	if s.tailDropped > 0 || len(s.order) > opts.RetainJobs || st.records > s.liveRecords() ||
		s.codec != opts.Codec || (snapCodec != "" && snapCodec != opts.Codec) {
		if err := s.compactLocked(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// Replayed returns the jobs reconstructed at Open, in log order.
func (s *Store) Replayed() []ReplayedJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ReplayedJob(nil), s.replayed...)
}

// Stats reports the store's current size.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Jobs:              len(s.jobs),
		Records:           s.snapRecords + s.records,
		Bytes:             s.snapBytes + s.bytes,
		Compactions:       s.compactions,
		TailDropped:       s.tailDropped,
		Codec:             s.codec,
		SnapshotRecords:   s.snapRecords,
		SnapshotBytes:     s.snapBytes,
		AppendsBinary:     s.appendsBinary,
		AppendsJSON:       s.appendsJSON,
		AppendBytesBinary: s.appendBytesBinary,
		AppendBytesJSON:   s.appendBytesJSON,
	}
}

// AppendJob logs a submitted job. Re-appending a known id is a no-op
// (resumed jobs are already on disk). AppendJob never compacts inline:
// the service calls it on its submission path (holding a server-wide
// lock so a result can never precede its job record), and a cascaded
// whole-log rewrite there would stall every submission. Results and
// terminal markers — appended from worker goroutines — carry the
// compaction trigger instead, and every job eventually produces one.
func (s *Store) AppendJob(r JobRecord) error {
	r.Type = recJob
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	if _, ok := s.jobs[r.ID]; ok {
		return nil
	}
	if err := s.writeLocked(r); err != nil {
		return err
	}
	s.jobs[r.ID] = &ReplayedJob{Job: r}
	s.order = append(s.order, r.ID)
	return nil
}

// AppendResult logs one completed run configuration. Results must arrive
// in index order per job; a duplicate or out-of-order index is dropped
// (it can only be a replayed configuration re-reported on resume).
func (s *Store) AppendResult(r ResultRecord) error {
	r.Type = recResult
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	j, ok := s.jobs[r.JobID]
	if !ok || r.Index != len(j.Results) {
		return nil
	}
	if err := s.writeLocked(r); err != nil {
		return err
	}
	j.Results = append(j.Results, r)
	return s.maybeCompactLocked()
}

// AppendDone logs a job's terminal state.
func (s *Store) AppendDone(r DoneRecord) error {
	r.Type = recDone
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	j, ok := s.jobs[r.JobID]
	if !ok || j.State != "" {
		return nil
	}
	if err := s.writeLocked(r); err != nil {
		return err
	}
	j.State, j.Error = r.State, r.Error
	return s.maybeCompactLocked()
}

// PutState upserts a named auxiliary state blob (see StateRecord). The
// payload must be valid JSON. Last write wins; the current value rides
// every compaction, so replay cost for the state is one record.
func (s *Store) PutState(name string, payload []byte) error {
	if name == "" {
		return errors.New("store: state name required")
	}
	r := StateRecord{Type: recState, Name: name, Payload: json.RawMessage(payload)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	if err := s.writeLocked(r); err != nil {
		return err
	}
	s.states[name] = append([]byte(nil), payload...)
	return s.maybeCompactLocked()
}

// State returns the named auxiliary state blob as of the last PutState
// (or the replayed value at Open), and whether it exists.
func (s *Store) State(name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.states[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// HasJob reports whether the store's index still holds the job — i.e.
// whether a future replay of this store could resurface its records.
// Callers that keep per-job replay bookkeeping (the analytics watermarks)
// use it to prune entries for jobs compaction has evicted.
func (s *Store) HasJob(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.jobs[id]
	return ok
}

var errClosed = errors.New("store: closed")

// ErrLocked is returned by Open when another live process holds the WAL.
var ErrLocked = errors.New("wal locked by another process")

// rollbackTailLocked truncates a partial append back off the log so the
// next successful write lands on a clean tail. If even the truncate fails
// the log is flagged torn and the next append retries it first — appends
// are refused until the tail is clean again.
func (s *Store) rollbackTailLocked() {
	if err := s.f.Truncate(s.bytes); err != nil {
		s.torn = true
	} else {
		s.torn = false
	}
}

func (s *Store) writeLocked(v any) error {
	frame, err := encodeRecord(s.codec, v)
	if err != nil {
		return err
	}
	if err := fault.Check(FaultWrite); err != nil {
		// An injected "short" message simulates a write that only
		// partially completed (ENOSPC mid-record): half the frame lands
		// on disk and the rollback must clean it up, exactly as for an
		// organic short write below.
		var fe *fault.Error
		if errors.As(err, &fe) && fe.Msg == "short" && len(frame) > 1 {
			if n, _ := s.f.Write(frame[:len(frame)/2]); n > 0 {
				s.rollbackTailLocked()
			}
		}
		return fmt.Errorf("store: append: %w", err)
	}
	if s.torn {
		// A previous failed append left a tail we could not truncate;
		// retry before writing anything after it.
		if terr := s.f.Truncate(s.bytes); terr != nil {
			return fmt.Errorf("store: append: torn tail: %w", terr)
		}
		s.torn = false
	}
	// One complete frame per Write call: a crash can truncate the final
	// record but never interleave two.
	n, werr := s.f.Write(frame)
	if werr != nil || n != len(frame) {
		if n > 0 {
			s.rollbackTailLocked()
		}
		if werr == nil {
			werr = io.ErrShortWrite
		}
		return fmt.Errorf("store: append: %w", werr)
	}
	s.bytes += int64(n)
	s.records++
	s.sinceComp++
	if s.codec == CodecJSON {
		s.appendsJSON++
		s.appendBytesJSON += int64(n)
	} else {
		s.appendsBinary++
		s.appendBytesBinary += int64(n)
	}
	return nil
}

// liveRecords counts the records a compacted log would hold.
func (s *Store) liveRecords() int {
	n := len(s.states)
	for _, j := range s.jobs {
		n += 1 + len(j.Results)
		if j.State != "" {
			n++
		}
	}
	return n
}

func (s *Store) maybeCompactLocked() error {
	if s.sinceComp < s.opts.CompactEvery && len(s.order) <= 2*s.opts.RetainJobs {
		return nil
	}
	return s.compactLocked()
}

// Compact writes the in-memory index into the snapshot file (evicting
// terminal jobs beyond the retention bound), atomically replaces the
// previous snapshot, and truncates the log in place.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	// Evict the oldest terminal jobs beyond the retention bound.
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].Terminal() {
			terminal++
		}
	}
	if evict := terminal - s.opts.RetainJobs; evict > 0 {
		kept := s.order[:0]
		for _, id := range s.order {
			if evict > 0 && s.jobs[id].Terminal() {
				delete(s.jobs, id)
				evict--
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
	}

	// Write the full live state into a fresh snapshot, in the configured
	// codec — this is also where a log in the old codec migrates forward.
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, SnapName+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the successful rename
	w := bufio.NewWriter(tmp)
	if s.opts.Codec == CodecBinary {
		w.Write(walMagic[:])
	}
	records := 0
	emit := func(v any) bool {
		frame, err := encodeRecord(s.opts.Codec, v)
		if err != nil {
			return false
		}
		if _, err := w.Write(frame); err != nil {
			return false
		}
		records++
		return true
	}
	for _, id := range s.order {
		j := s.jobs[id]
		ok := emit(j.Job)
		for _, r := range j.Results {
			ok = ok && emit(r)
		}
		if j.State != "" {
			ok = ok && emit(DoneRecord{Type: recDone, JobID: id, State: j.State, Error: j.Error})
		}
		if !ok {
			tmp.Close()
			return fmt.Errorf("store: compact: rewrite failed")
		}
	}
	// Auxiliary state blobs survive compaction at their latest value,
	// emitted in name order so identical state compacts to identical bytes.
	names := make([]string, 0, len(s.states))
	for name := range s.states {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !emit(StateRecord{Type: recState, Name: name, Payload: json.RawMessage(s.states[name])}) {
			tmp.Close()
			return fmt.Errorf("store: compact: rewrite failed")
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	fi, err := tmp.Stat()
	if err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, SnapName)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	tmp.Close()

	// The snapshot now holds everything: empty the log in place. The fd,
	// its flock and the O_APPEND mode all stay — a crash between the
	// rename and this truncate merely leaves stale log records that the
	// next replay merges idempotently (duplicates are dropped).
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("store: compact: truncate log: %w", err)
	}
	s.bytes = 0
	s.codec = s.opts.Codec
	if s.codec == CodecBinary {
		n, werr := s.f.Write(walMagic[:])
		if werr != nil || n != len(walMagic) {
			if werr == nil {
				werr = io.ErrShortWrite
			}
			return fmt.Errorf("store: compact: write log header: %w", werr)
		}
		s.bytes = int64(n)
	}
	s.records = 0
	s.sinceComp = 0
	s.snapRecords = records
	s.snapBytes = fi.Size()
	s.compactions++
	s.torn = false
	return nil
}

// Sync flushes the log to stable storage (fsync). Appends themselves only
// guarantee process-crash durability (the write reaches the kernel); Sync
// is the OS-crash checkpoint the daemon takes on graceful drain.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	if err := fault.Check(FaultSync); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	return s.f.Sync()
}

// Probe checks whether the WAL can take writes again, for the service's
// durability probe while it serves in lossy mode. It exercises the same
// failpoint and fsync path as a real append — without writing a record,
// because Replay treats unknown record types as corruption and a probe
// marker would poison every future replay of the log.
func (s *Store) Probe() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	if err := fault.Check(FaultWrite); err != nil {
		return fmt.Errorf("store: probe: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: probe: %w", err)
	}
	return nil
}

// Close compacts, syncs and closes the log. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.compactLocked()
	if serr := s.f.Sync(); err == nil {
		err = serr
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// replayState accumulates jobs across one or more replayed streams (the
// snapshot, then the log delta).
type replayState struct {
	jobs    map[string]*ReplayedJob
	order   []string // first-seen order
	states  map[string][]byte
	records int
	dropped int
}

func newReplayState() *replayState {
	return &replayState{jobs: make(map[string]*ReplayedJob)}
}

func (st *replayState) get(id string) *ReplayedJob {
	j, ok := st.jobs[id]
	if !ok {
		j = &ReplayedJob{Job: JobRecord{Type: recJob, ID: id}}
		st.jobs[id] = j
		st.order = append(st.order, id)
	}
	return j
}

// apply merges one decoded record into the state, enforcing the replay
// semantics shared by both codecs: results and done markers arriving
// before their job record are buffered under a synthetic job, duplicate
// and out-of-order result indices are dropped, and the first job record /
// done marker for an id wins. An error means the record is invalid
// (missing its id), not that the merge failed.
func (st *replayState) apply(rec any) error {
	switch r := rec.(type) {
	case JobRecord:
		if r.ID == "" {
			return errors.New("job record without id")
		}
		r.Type = recJob
		j := st.get(r.ID)
		if j.Job.Specs == nil {
			created := j.Job.Created
			j.Job = r
			if r.Created.IsZero() {
				j.Job.Created = created
			}
		}
	case ResultRecord:
		if r.JobID == "" {
			return errors.New("result record without job id")
		}
		r.Type = recResult
		j := st.get(r.JobID)
		if r.Index == len(j.Results) {
			j.Results = append(j.Results, r)
		}
	case DoneRecord:
		if r.JobID == "" {
			return errors.New("done record without job id")
		}
		r.Type = recDone
		j := st.get(r.JobID)
		if j.State == "" {
			j.State, j.Error = r.State, r.Error
		}
	case StateRecord:
		if r.Name == "" {
			return errors.New("state record without name")
		}
		if st.states == nil {
			st.states = make(map[string][]byte)
		}
		// Last writer wins: the log is replayed oldest-first.
		st.states[r.Name] = append([]byte(nil), r.Payload...)
	default:
		return fmt.Errorf("unknown record %T", rec)
	}
	st.records++
	return nil
}

// sorted returns the accumulated jobs ordered by JobIDLess.
func (st *replayState) sorted() []ReplayedJob {
	out := make([]ReplayedJob, 0, len(st.order))
	for _, id := range st.order {
		out = append(out, *st.jobs[id])
	}
	sort.SliceStable(out, func(a, b int) bool { return JobIDLess(out[a].Job.ID, out[b].Job.ID) })
	return out
}

// replayStream sniffs the stream's codec and replays it into st,
// reporting which codec it found ("" for an empty stream).
func replayStream(st *replayState, r io.Reader) (string, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	codec, err := sniffCodec(br)
	if err != nil {
		return "", err
	}
	switch codec {
	case "":
		return "", nil
	case CodecBinary:
		return codec, replayBinary(st, br)
	default:
		return codec, replayJSON(st, br)
	}
}

// replayJSON replays a newline-delimited JSON log. Garbage is tolerated
// only as the final (torn) tail: a complete record following it proves
// mid-log corruption and fails the replay.
func replayJSON(st *replayState, r *bufio.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxRecordBytes)
	var pendingErr error
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &head); err != nil {
			// Only acceptable as the torn final record of a crash; if more
			// complete records follow, the log is corrupt mid-stream.
			st.dropped++
			pendingErr = fmt.Errorf("store: corrupt record %d: %w", st.records+st.dropped, err)
			continue
		}
		if pendingErr != nil {
			return pendingErr
		}
		var rec any
		switch head.Type {
		case recJob:
			var jr JobRecord
			if err := json.Unmarshal(line, &jr); err == nil {
				rec = jr
			}
		case recResult:
			var rr ResultRecord
			if err := json.Unmarshal(line, &rr); err == nil {
				rec = rr
			}
		case recDone:
			var dr DoneRecord
			if err := json.Unmarshal(line, &dr); err == nil {
				rec = dr
			}
		case recState:
			var sr StateRecord
			if err := json.Unmarshal(line, &sr); err == nil {
				rec = sr
			}
		default:
			st.dropped++
			pendingErr = fmt.Errorf("store: unknown record type %q", head.Type)
			continue
		}
		if rec == nil || st.apply(rec) != nil {
			st.dropped++
			pendingErr = fmt.Errorf("store: bad %s record %d", head.Type, st.records+st.dropped)
			continue
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// An oversized line can only be a torn or hostile tail record;
			// everything already decoded stands.
			st.dropped++
		} else {
			return fmt.Errorf("store: read log: %w", err)
		}
	}
	return nil
}

// replayBinary replays length-prefixed binary frames (the header magic
// already consumed by the sniff). An incomplete final frame is the crash
// signature and is dropped; a complete-but-corrupt frame is dropped only
// when nothing follows it — bytes after it prove mid-log corruption.
func replayBinary(st *replayState, br *bufio.Reader) error {
	for {
		rec, _, err := readBinaryRecord(br)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				st.dropped++ // torn tail: the crash signature
				return nil
			}
			st.dropped++
			if _, perr := br.Peek(1); perr == nil {
				return fmt.Errorf("store: corrupt record %d: %w", st.records+st.dropped, err)
			}
			return nil
		}
		if aerr := st.apply(rec); aerr != nil {
			st.dropped++
			if _, perr := br.Peek(1); perr == nil {
				return fmt.Errorf("store: bad record %d: %w", st.records+st.dropped, aerr)
			}
			return nil
		}
	}
}

// Replay reconstructs jobs from a log stream in either codec (sniffed
// from the leading bytes). It returns the jobs in id order, the number of
// complete records read, and the number of partial/corrupt records
// discarded at the tail. Replay is tolerant of the crash signature (a
// torn final record) and of record interleavings: results and done
// markers arriving before their job record are buffered and merged,
// duplicate and out-of-order result indices are dropped, and a second job
// record for a known id is ignored. Orphan results whose job record never
// appears are attached to a synthetic spec-less job so their cache keys
// remain recoverable.
func Replay(r io.Reader) ([]ReplayedJob, int, int, error) {
	st := newReplayState()
	if _, err := replayStream(st, r); err != nil {
		return nil, st.records, st.dropped, err
	}
	return st.sorted(), st.records, st.dropped, nil
}

// JobIDLess orders job ids for replay and listings: ids sharing a prefix
// are compared by their trailing decimal counter, so "job-1000000" sorts
// after "job-999999" (plain string order would put it first the moment the
// counter outgrows its zero padding). Ids without a numeric suffix fall
// back to string order.
func JobIDLess(a, b string) bool {
	pa, na, aok := splitNumericSuffix(a)
	pb, nb, bok := splitNumericSuffix(b)
	if aok && bok && pa == pb {
		if na != nb {
			return na < nb
		}
		return a < b // differing zero padding only
	}
	return a < b
}

// splitNumericSuffix splits "job-001234" into ("job-", 1234, true).
func splitNumericSuffix(id string) (prefix string, n uint64, ok bool) {
	i := len(id)
	for i > 0 && id[i-1] >= '0' && id[i-1] <= '9' {
		i--
	}
	if i == len(id) {
		return id, 0, false
	}
	// Overflow-proof enough for ids minted from an int64 counter; a
	// hostile 30-digit suffix just falls back to string order.
	if len(id)-i > 19 {
		return id, 0, false
	}
	for _, c := range []byte(id[i:]) {
		n = n*10 + uint64(c-'0')
	}
	return id[:i], n, true
}
