package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// resultPayload builds a representative persisted result: a ConfigResult
// summary as the service stores it (latencies stripped), with the heavily
// repeated JSON key structure real summaries have. run varies the numbers
// so payloads are distinct but realistically shaped.
func resultPayload(t testing.TB, run int) json.RawMessage {
	t.Helper()
	type runResult struct {
		Scheduler        string  `json:"scheduler"`
		Benchmark        string  `json:"benchmark"`
		Seed             int64   `json:"seed"`
		TotalCycles      int     `json:"total_cycles"`
		MeanIdleFraction float64 `json:"mean_idle_fraction"`
		PrepsStarted     int     `json:"preps_started"`
		InjectionsCount  int     `json:"injections_count"`
		EdgeRotations    int     `json:"edge_rotations"`
	}
	runs := make([]runResult, 3)
	for i := range runs {
		runs[i] = runResult{
			Scheduler:        "rescq",
			Benchmark:        "gcm_n13",
			Seed:             int64(1000*run + i),
			TotalCycles:      48211 + 13*run + i,
			MeanIdleFraction: 0.31 + float64(run%7)/100,
			PrepsStarted:     911 + run,
			InjectionsCount:  402 + i,
			EdgeRotations:    87,
		}
	}
	payload := map[string]any{
		"summary": map[string]any{
			"benchmark":   "gcm_n13",
			"scheduler":   "rescq",
			"runs":        runs,
			"mean_cycles": 48217.3 + float64(run),
			"min_cycles":  48211 + run,
			"max_cycles":  48224 + run,
			"std_cycles":  5.43,
			"mean_idle":   0.312,
		},
	}
	return mustJSON(t, payload)
}

func TestBinaryRecordRoundTrip(t *testing.T) {
	recs := []any{
		JobRecord{Type: recJob, ID: "job-000001", Kind: "sweep",
			Created: time.Unix(1700000000, 123).UTC(),
			Specs:   json.RawMessage(`[{"benchmark":"gcm_n13"}]`)},
		JobRecord{Type: recJob, ID: "job-000002"}, // zero time, nil specs
		ResultRecord{Type: recResult, JobID: "job-000001", Index: 0, Key: "cache-key",
			Result: resultPayload(t, 0)}, // big enough to take the compressed path
		ResultRecord{Type: recResult, JobID: "job-000001", Index: 1,
			Result: json.RawMessage(`{}`)}, // small: stored uncompressed
		DoneRecord{Type: recDone, JobID: "job-000001", State: "failed", Error: "boom"},
		DoneRecord{Type: recDone, JobID: "job-000002", State: "done"},
	}
	var buf bytes.Buffer
	for _, rec := range recs {
		frame, err := encodeBinaryRecord(rec)
		if err != nil {
			t.Fatalf("encode %T: %v", rec, err)
		}
		buf.Write(frame)
	}
	br := bufio.NewReader(&buf)
	for i, want := range recs {
		got, complete, err := readBinaryRecord(br)
		if err != nil || !complete {
			t.Fatalf("decode record %d: complete=%v err=%v", i, complete, err)
		}
		// Every field (including raw payload bytes) survives the JSON
		// projection, so comparing marshaled forms covers the round-trip
		// without tripping over time.Time's internal representation.
		if !bytes.Equal(mustJSON(t, got), mustJSON(t, want)) {
			t.Fatalf("record %d round-trip:\n got %s\nwant %s", i, mustJSON(t, got), mustJSON(t, want))
		}
	}
	if _, _, err := readBinaryRecord(br); err != io.EOF {
		t.Fatalf("trailing read = %v, want EOF", err)
	}
}

// TestBinaryBytesPerResultRecord pins the acceptance criterion: the
// binary codec spends at least 2x fewer bytes per persisted result record
// than the JSON codec, on representative result payloads.
func TestBinaryBytesPerResultRecord(t *testing.T) {
	const n = 64
	var jsonBytes, binBytes int
	for i := 0; i < n; i++ {
		rec := ResultRecord{Type: recResult, JobID: "job-000042", Index: i,
			Key: fmt.Sprintf("cachekey-%032d", i), Result: resultPayload(t, i)}
		jf, err := encodeRecord(CodecJSON, rec)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := encodeRecord(CodecBinary, rec)
		if err != nil {
			t.Fatal(err)
		}
		jsonBytes += len(jf)
		binBytes += len(bf)
	}
	ratio := float64(jsonBytes) / float64(binBytes)
	t.Logf("bytes/record: json=%d binary=%d ratio=%.2fx", jsonBytes/n, binBytes/n, ratio)
	if ratio < 2 {
		t.Fatalf("binary codec saves only %.2fx bytes per result record, want >= 2x", ratio)
	}
}

// TestJSONLogMigratesForward: a JSON-era wal.jsonl opens under the binary
// default, replays byte-identically, and is migrated to the binary codec
// by the Open-time compaction.
func TestJSONLogMigratesForward(t *testing.T) {
	dir := t.TempDir()
	payload := resultPayload(t, 1)
	log := `{"type":"job","id":"job-000001","kind":"sweep","created":"2026-01-02T03:04:05Z","specs":[{"benchmark":"gcm_n13"}]}
{"type":"result","job":"job-000001","index":0,"key":"k0","result":` + string(payload) + `}
{"type":"done","job":"job-000001","state":"done"}
{"type":"job","id":"job-000002","kind":"run","specs":[{"benchmark":"qft_n18"}]}
`
	if err := os.WriteFile(filepath.Join(dir, WALName), []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open on a JSON-era log: %v", err)
	}
	jobs := s.Replayed()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	if !bytes.Equal(jobs[0].Results[0].Result, payload) {
		t.Fatalf("result payload not byte-identical after migration:\n got %s\nwant %s",
			jobs[0].Results[0].Result, payload)
	}
	st := s.Stats()
	if st.Codec != CodecBinary {
		t.Fatalf("codec after migration = %q, want binary", st.Codec)
	}
	if st.Compactions == 0 {
		t.Fatal("Open did not compact the JSON log forward")
	}
	// New appends land in the binary codec.
	appendResult(t, s, "job-000002", 0)
	if st = s.Stats(); st.AppendsBinary != 1 || st.AppendsJSON != 0 {
		t.Fatalf("append accounting after migration = %+v", st)
	}
	s.Close()

	// The on-disk files are binary now, and a second Open sees it all.
	raw, err := os.ReadFile(filepath.Join(dir, SnapName))
	if err != nil || !bytes.HasPrefix(raw, walMagic[:]) {
		t.Fatalf("snapshot after migration is not binary (err=%v, head=%q)", err, raw[:min(len(raw), 8)])
	}
	raw, err = os.ReadFile(filepath.Join(dir, WALName))
	if err != nil || !bytes.HasPrefix(raw, walMagic[:]) {
		t.Fatalf("log after migration is not binary (err=%v, head=%q)", err, raw[:min(len(raw), 8)])
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jobs = s2.Replayed()
	if len(jobs) != 2 || len(jobs[0].Results) != 1 || len(jobs[1].Results) != 1 {
		t.Fatalf("replay after migration = %+v", jobs)
	}
	if !bytes.Equal(jobs[0].Results[0].Result, payload) {
		t.Fatal("result payload corrupted by the binary round-trip")
	}
}

// TestTornTailShortWriteRecovery is the regression test for the append
// corruption bug: a short write used to leave a torn partial record that
// the next successful append concatenated onto, making the log
// unreplayable. Now the partial write is truncated back immediately, so
// recovery + append + restart replays with zero dropped records.
func TestTornTailShortWriteRecovery(t *testing.T) {
	for _, codec := range []string{CodecBinary, CodecJSON} {
		t.Run(codec, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			appendJob(t, s, "job-000001", "sweep")
			sizeBefore := s.Stats().Bytes

			// The disk completes half the record's write, then errors.
			if err := fault.Configure(FaultWrite+"=1*err(short)", 1); err != nil {
				t.Fatal(err)
			}
			defer fault.Disable()
			err = s.AppendResult(ResultRecord{JobID: "job-000001", Index: 0,
				Key: "k0", Result: resultPayload(t, 0)})
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("append under short write = %v, want ErrInjected", err)
			}

			// The partial record was truncated back off the log: the file
			// is exactly as long as before the failed append, and nothing
			// partial was counted into Stats.Bytes.
			if st := s.Stats(); st.Bytes != sizeBefore {
				t.Fatalf("Stats.Bytes counted a failed append: %d, want %d", st.Bytes, sizeBefore)
			}
			fi, err := os.Stat(filepath.Join(dir, WALName))
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() != sizeBefore {
				t.Fatalf("torn tail left on disk: log is %d bytes, want %d", fi.Size(), sizeBefore)
			}

			// Durability recovers, the append succeeds, and the raw log —
			// before any compaction could paper over damage — replays
			// cleanly with every record intact.
			fault.Disable()
			if err := s.AppendResult(ResultRecord{JobID: "job-000001", Index: 0,
				Key: "k0", Result: resultPayload(t, 0)}); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			raw, err := os.ReadFile(filepath.Join(dir, WALName))
			if err != nil {
				t.Fatal(err)
			}
			jobs, records, dropped, err := Replay(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("replay after recovery: %v", err)
			}
			if records != 2 || dropped != 0 {
				t.Fatalf("replay after recovery: records=%d dropped=%d, want 2/0", records, dropped)
			}
			if len(jobs) != 1 || len(jobs[0].Results) != 1 || jobs[0].Results[0].Key != "k0" {
				t.Fatalf("replay after recovery lost data: %+v", jobs)
			}

			// And the restart path agrees: Open replays without drops.
			s.Close()
			s2, err := Open(dir, Options{Codec: codec})
			if err != nil {
				t.Fatalf("Open after recovery: %v", err)
			}
			defer s2.Close()
			if st := s2.Stats(); st.TailDropped != 0 {
				t.Fatalf("restart dropped %d records after a recovered short write", st.TailDropped)
			}
			if jobs := s2.Replayed(); len(jobs) != 1 || len(jobs[0].Results) != 1 {
				t.Fatalf("restart replay = %+v", jobs)
			}
		})
	}
}

// TestSnapshotDeltaReplay: after a compaction, state lives in the
// snapshot and new appends in the log delta; a crash (no Close, no final
// compaction) must replay the union.
func TestSnapshotDeltaReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendJob(t, s, "job-000001", "sweep")
	appendResult(t, s, "job-000001", 0)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SnapshotRecords != 2 || st.Records != 2 {
		t.Fatalf("after compaction: %+v, want 2 snapshot records", st)
	}
	// Delta after the snapshot.
	appendResult(t, s, "job-000001", 1)
	appendJob(t, s, "job-000002", "run")

	// Crash: drop the handle without Close's final compaction.
	s.mu.Lock()
	s.f.Close()
	s.f = nil
	s.mu.Unlock()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	defer s2.Close()
	jobs := s2.Replayed()
	if len(jobs) != 2 || len(jobs[0].Results) != 2 || jobs[1].Job.Kind != "run" {
		t.Fatalf("snapshot+delta replay = %+v", jobs)
	}
	if st := s2.Stats(); st.TailDropped != 0 {
		t.Fatalf("clean crash replay dropped records: %+v", st)
	}
}

// TestUnsupportedBinaryVersion: a future-versioned log is refused whole
// rather than misparsed.
func TestUnsupportedBinaryVersion(t *testing.T) {
	future := append([]byte{}, walMagic[:]...)
	future[6] = binVersion + 1
	_, _, _, err := Replay(bytes.NewReader(future))
	if err == nil || !strings.Contains(err.Error(), "unsupported binary log version") {
		t.Fatalf("future version replay = %v, want unsupported-version error", err)
	}

	// And Open refuses it too, rather than clobbering the log.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, WALName), future, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "unsupported binary log version") {
		t.Fatalf("Open on future version = %v, want unsupported-version error", err)
	}
}

// TestBinaryMidLogCorruption: a bit flip in a non-final frame fails the
// replay (CRC catches it, and complete records after it prove it is not a
// crash tail); the same flip in the final frame is tolerated as a tail.
func TestBinaryMidLogCorruption(t *testing.T) {
	frame := func(v any) []byte {
		f, err := encodeBinaryRecord(v)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	j := frame(JobRecord{ID: "job-000001", Kind: "run"})
	r := frame(ResultRecord{JobID: "job-000001", Index: 0, Result: json.RawMessage(`{}`)})
	d := frame(DoneRecord{JobID: "job-000001", State: "done"})

	log := append([]byte{}, walMagic[:]...)
	log = append(log, j...)
	log = append(log, r...)
	log = append(log, d...)
	flip := len(walMagic) + len(j) + 4 // inside the result frame's payload
	log[flip] ^= 0x40

	_, _, _, err := Replay(bytes.NewReader(log))
	if err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("mid-log bit flip replay = %v, want corrupt-record error", err)
	}

	// Same flip in the final frame: tolerated as a (possibly torn) tail.
	tail := append([]byte{}, walMagic[:]...)
	tail = append(tail, j...)
	tail = append(tail, r...)
	tail[len(walMagic)+len(j)+4] ^= 0x40
	jobs, records, dropped, err := Replay(bytes.NewReader(tail))
	if err != nil {
		t.Fatalf("corrupt-tail replay = %v, want tolerated", err)
	}
	if records != 1 || dropped != 1 || len(jobs) != 1 {
		t.Fatalf("corrupt tail: records=%d dropped=%d jobs=%d, want 1/1/1", records, dropped, len(jobs))
	}
}
