//go:build unix

package store

import (
	"errors"
	"testing"
)

// TestSecondOpenLocked: one live daemon per store dir — a second Open is
// rejected with ErrLocked while the first holder lives, and admitted the
// moment it closes (a process death releases the flock in the kernel).
func TestSecondOpenLocked(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open = %v, want ErrLocked", err)
	}
	appendJob(t, s, "job-000001", "run")
	if err := s.Compact(); err != nil { // the lock must survive the inode swap
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("Open after compaction = %v, want ErrLocked (lock lost in rename)", err)
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after close: %v", err)
	}
	s2.Close()
}
