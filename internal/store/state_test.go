package store

import (
	"bytes"
	"testing"
)

// TestStateRoundTrip: PutState survives a close/reopen in both codecs,
// last writer wins, and the value rides the compaction snapshot.
func TestStateRoundTrip(t *testing.T) {
	for _, codec := range []string{CodecBinary, CodecJSON} {
		t.Run(codec, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.PutState("analytics", []byte(`{"v":1}`)); err != nil {
				t.Fatal(err)
			}
			if err := s.PutState("analytics", []byte(`{"v":2}`)); err != nil {
				t.Fatal(err)
			}
			if err := s.PutState("other", []byte(`"x"`)); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.State("analytics"); !ok || !bytes.Equal(got, []byte(`{"v":2}`)) {
				t.Fatalf("State before close = %q, %v", got, ok)
			}
			appendJob(t, s, "job-000001", "sweep")
			if err := s.Close(); err != nil { // Close compacts: states must ride the snapshot
				t.Fatal(err)
			}

			s2, err := Open(dir, Options{Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if got, ok := s2.State("analytics"); !ok || !bytes.Equal(got, []byte(`{"v":2}`)) {
				t.Fatalf("State after reopen = %q, %v (last writer must win through compaction)", got, ok)
			}
			if got, ok := s2.State("other"); !ok || !bytes.Equal(got, []byte(`"x"`)) {
				t.Fatalf("second state lost: %q, %v", got, ok)
			}
			if _, ok := s2.State("missing"); ok {
				t.Fatal("missing state reported present")
			}
			if len(s2.Replayed()) != 1 {
				t.Fatalf("state records leaked into job replay: %+v", s2.Replayed())
			}
		})
	}
}

// TestStateCrossCodecMigration: a state written in one codec survives the
// compaction that migrates the log to the other.
func TestStateCrossCodecMigration(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Codec: CodecJSON})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutState("analytics", []byte(`{"cells":[]}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Codec: CodecBinary}) // migrates at Open
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, ok := s2.State("analytics"); !ok || !bytes.Equal(got, []byte(`{"cells":[]}`)) {
		t.Fatalf("state lost across codec migration: %q, %v", got, ok)
	}
	if s2.Stats().Codec != CodecBinary {
		t.Fatalf("codec after migration = %q", s2.Stats().Codec)
	}
}

func TestPutStateValidation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.PutState("", []byte(`{}`)); err == nil {
		t.Fatal("empty state name accepted")
	}
}

func TestHasJob(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{RetainJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendJob(t, s, "job-000001", "sweep")
	if !s.HasJob("job-000001") {
		t.Fatal("appended job not indexed")
	}
	if s.HasJob("job-999999") {
		t.Fatal("unknown job reported present")
	}
	// Push two more terminal jobs through so compaction evicts the oldest.
	for _, id := range []string{"job-000001", "job-000002", "job-000003"} {
		appendJob(t, s, id, "sweep")
		if err := s.AppendDone(DoneRecord{JobID: id, State: "done"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.HasJob("job-000001") {
		t.Fatal("evicted job still reported present")
	}
	if !s.HasJob("job-000003") {
		t.Fatal("retained job lost")
	}
}
