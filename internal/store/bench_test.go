package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// benchAppend measures the serving-path record append: one result record
// per iteration into a live store, compaction disabled so the numbers are
// pure encode+write. bytes/record is the acceptance criterion's metric.
func benchAppend(b *testing.B, codec string) {
	s, err := Open(b.TempDir(), Options{Codec: codec, RetainJobs: 1 << 20, CompactEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendJob(JobRecord{ID: "job-000001", Kind: "sweep", Created: time.Unix(1700000000, 0).UTC(),
		Specs: mustJSON(b, []map[string]string{{"benchmark": "gcm_n13"}})}); err != nil {
		b.Fatal(err)
	}
	payloads := make([]json.RawMessage, 16)
	for i := range payloads {
		payloads[i] = resultPayload(b, i)
	}
	before := s.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.AppendResult(ResultRecord{JobID: "job-000001", Index: i,
			Key: fmt.Sprintf("cachekey-%032d", i), Result: payloads[i%len(payloads)]}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := s.Stats()
	if n := after.Records - before.Records; n > 0 {
		b.ReportMetric(float64(after.Bytes-before.Bytes)/float64(n), "bytes/record")
	}
}

func BenchmarkWALAppendBinary(b *testing.B) { benchAppend(b, CodecBinary) }
func BenchmarkWALAppendJSON(b *testing.B)   { benchAppend(b, CodecJSON) }

// benchReplayLog builds a one-job, many-result log in memory, in the
// requested codec, for the replay benchmarks.
func benchReplayLog(b *testing.B, codec string, results int) []byte {
	var buf bytes.Buffer
	if codec == CodecBinary {
		buf.Write(walMagic[:])
	}
	emit := func(v any) {
		frame, err := encodeRecord(codec, v)
		if err != nil {
			b.Fatal(err)
		}
		buf.Write(frame)
	}
	emit(JobRecord{Type: recJob, ID: "job-000001", Kind: "sweep", Created: time.Unix(1700000000, 0).UTC(),
		Specs: mustJSON(b, []map[string]string{{"benchmark": "gcm_n13"}})})
	payloads := make([]json.RawMessage, 16)
	for i := range payloads {
		payloads[i] = resultPayload(b, i)
	}
	for i := 0; i < results; i++ {
		emit(ResultRecord{Type: recResult, JobID: "job-000001", Index: i,
			Key: fmt.Sprintf("cachekey-%032d", i), Result: payloads[i%len(payloads)]})
	}
	emit(DoneRecord{Type: recDone, JobID: "job-000001", State: "done"})
	return buf.Bytes()
}

// benchReplay measures a full 100k-result WAL replay — the restart cost
// the snapshot+binary work is meant to bound.
func benchReplay(b *testing.B, codec string) {
	const results = 100_000
	log := benchReplayLog(b, codec, results)
	b.SetBytes(int64(len(log)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs, records, dropped, err := Replay(bytes.NewReader(log))
		if err != nil || dropped != 0 {
			b.Fatalf("replay: records=%d dropped=%d err=%v", records, dropped, err)
		}
		if len(jobs) != 1 || len(jobs[0].Results) != results {
			b.Fatalf("replay lost results: %d jobs", len(jobs))
		}
	}
}

func BenchmarkWALReplayBinary(b *testing.B) { benchReplay(b, CodecBinary) }
func BenchmarkWALReplayJSON(b *testing.B)   { benchReplay(b, CodecJSON) }
