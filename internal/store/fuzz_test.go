package store

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReplay hammers the WAL replayer with arbitrary log bytes — valid
// prefixes with truncated/corrupt tails, binary garbage, oversized lines —
// and asserts the crash-tolerance contract: no panic, a clean log replays
// fully, and appending a torn tail to any valid log never loses the
// records before it.
func FuzzReplay(f *testing.F) {
	valid := `{"type":"job","id":"job-000001","kind":"sweep","specs":[{"benchmark":"gcm_n13"}]}
{"type":"result","job":"job-000001","index":0,"key":"abc","result":{"index":0}}
{"type":"done","job":"job-000001","state":"done"}
`
	f.Add([]byte(valid))
	f.Add([]byte(valid + `{"type":"result","job":"job-000001","ind`))
	f.Add([]byte(`{"type":"job","id":"job-000001"`))
	f.Add([]byte("\x00\x01\x02 not a log"))
	f.Add([]byte(`{"type":"mystery","job":"x"}`))
	f.Add([]byte(`{"type":"result","job":"","index":0}` + "\n"))
	f.Add([]byte(strings.Repeat(`{"type":"done","job":"job-000009","state":"done"}`+"\n", 50)))
	f.Add(bytes.Repeat([]byte("a"), 1<<16))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Replay must never panic and must account every input record as
		// either replayed or dropped.
		jobs, records, dropped, err := Replay(bytes.NewReader(data))
		if err != nil {
			return // corrupt mid-log: rejected, fine
		}
		if records < 0 || dropped < 0 {
			t.Fatalf("negative accounting: records=%d dropped=%d", records, dropped)
		}
		for _, j := range jobs {
			if j.Job.ID == "" {
				t.Fatalf("replayed job without id: %+v", j)
			}
			for i, r := range j.Results {
				if r.Index != i {
					t.Fatalf("job %s results out of order: %+v", j.Job.ID, j.Results)
				}
			}
		}

		// Crash signature: any replayable log plus a torn tail must keep
		// every record of the clean prefix.
		torn := append([]byte(valid), data...)
		if i := bytes.LastIndexByte(torn, '\n'); i >= 0 && i < len(torn)-1 {
			torn = torn[:i+1+(len(torn)-i-1)/2] // truncate inside the final line
		}
		jobs2, records2, _, err := Replay(bytes.NewReader(torn))
		if err != nil {
			return // the fuzz payload itself was mid-log corrupt
		}
		if records2 < 3 {
			t.Fatalf("torn tail lost the clean prefix: %d records", records2)
		}
		found := false
		for _, j := range jobs2 {
			if j.Job.ID == "job-000001" && len(j.Results) >= 1 && j.Results[0].Key == "abc" {
				found = true
			}
		}
		if !found {
			t.Fatal("torn tail lost job-000001's persisted result")
		}
	})
}
