package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"
)

// binFrame encodes one record for fuzz seeding, panicking on the
// impossible (seed records are all encodable).
func binFrame(v any) []byte {
	f, err := encodeBinaryRecord(v)
	if err != nil {
		panic(err)
	}
	return f
}

// binLog assembles a header plus frames into one binary log.
func binLog(frames ...[]byte) []byte {
	log := append([]byte{}, walMagic[:]...)
	for _, f := range frames {
		log = append(log, f...)
	}
	return log
}

// FuzzReplay hammers the WAL replayer with arbitrary log bytes — valid
// prefixes with truncated/corrupt tails, binary garbage, oversized lines —
// and asserts the crash-tolerance contract: no panic, a clean log replays
// fully, and appending a torn tail to any valid log never loses the
// records before it.
func FuzzReplay(f *testing.F) {
	valid := `{"type":"job","id":"job-000001","kind":"sweep","specs":[{"benchmark":"gcm_n13"}]}
{"type":"result","job":"job-000001","index":0,"key":"abc","result":{"index":0}}
{"type":"done","job":"job-000001","state":"done"}
`
	f.Add([]byte(valid))
	f.Add([]byte(valid + `{"type":"result","job":"job-000001","ind`))
	f.Add([]byte(`{"type":"job","id":"job-000001"`))
	f.Add([]byte("\x00\x01\x02 not a log"))
	f.Add([]byte(`{"type":"mystery","job":"x"}`))
	f.Add([]byte(`{"type":"result","job":"","index":0}` + "\n"))
	f.Add([]byte(strings.Repeat(`{"type":"done","job":"job-000009","state":"done"}`+"\n", 50)))
	f.Add(bytes.Repeat([]byte("a"), 1<<16))

	// Binary-codec logs: clean, torn mid-frame, bit-flipped, and a bare
	// header — the sniffing replayer must route and survive them all.
	validBin := binLog(
		binFrame(JobRecord{ID: "job-000001", Kind: "sweep", Created: time.Unix(1700000000, 0).UTC(),
			Specs: json.RawMessage(`[{"benchmark":"gcm_n13"}]`)}),
		binFrame(ResultRecord{JobID: "job-000001", Index: 0, Key: "abc", Result: json.RawMessage(`{"index":0}`)}),
		binFrame(DoneRecord{JobID: "job-000001", State: "done"}),
	)
	f.Add(validBin)
	f.Add(validBin[:len(validBin)-7])
	flipped := append([]byte{}, validBin...)
	flipped[len(validBin)/2] ^= 0x20
	f.Add(flipped)
	f.Add(walMagic[:])
	f.Add([]byte("RQWAL\x00\x07\n binary log from the future"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Replay must never panic and must account every input record as
		// either replayed or dropped.
		jobs, records, dropped, err := Replay(bytes.NewReader(data))
		if err != nil {
			return // corrupt mid-log: rejected, fine
		}
		if records < 0 || dropped < 0 {
			t.Fatalf("negative accounting: records=%d dropped=%d", records, dropped)
		}
		for _, j := range jobs {
			if j.Job.ID == "" {
				t.Fatalf("replayed job without id: %+v", j)
			}
			for i, r := range j.Results {
				if r.Index != i {
					t.Fatalf("job %s results out of order: %+v", j.Job.ID, j.Results)
				}
			}
		}

		// Crash signature: any replayable log plus a torn tail must keep
		// every record of the clean prefix.
		torn := append([]byte(valid), data...)
		if i := bytes.LastIndexByte(torn, '\n'); i >= 0 && i < len(torn)-1 {
			torn = torn[:i+1+(len(torn)-i-1)/2] // truncate inside the final line
		}
		jobs2, records2, _, err := Replay(bytes.NewReader(torn))
		if err != nil {
			return // the fuzz payload itself was mid-log corrupt
		}
		if records2 < 3 {
			t.Fatalf("torn tail lost the clean prefix: %d records", records2)
		}
		found := false
		for _, j := range jobs2 {
			if j.Job.ID == "job-000001" && len(j.Results) >= 1 && j.Results[0].Key == "abc" {
				found = true
			}
		}
		if !found {
			t.Fatal("torn tail lost job-000001's persisted result")
		}
	})
}

// FuzzDecodeRecord hammers the binary frame decoder with arbitrary bytes —
// seeded from real encoded records plus truncated, bit-flipped and
// oversized frames — and asserts its contract: no panic, every decoded
// record is well-formed and re-encodable, and errors classify cleanly as
// end-of-stream, torn tail, or corruption.
func FuzzDecodeRecord(f *testing.F) {
	job := binFrame(JobRecord{ID: "job-000001", Kind: "sweep", Created: time.Unix(1700000000, 42).UTC(),
		Specs: json.RawMessage(`[{"benchmark":"gcm_n13"}]`)})
	// Big enough to take the compressed path.
	res := binFrame(ResultRecord{JobID: "job-000001", Index: 3, Key: "abc",
		Result: json.RawMessage(`{"summary":{"runs":[` + strings.Repeat(`{"total_cycles":48211},`, 20) + `{}]}}`)})
	done := binFrame(DoneRecord{JobID: "job-000001", State: "failed", Error: "boom"})

	f.Add(job)
	f.Add(res)
	f.Add(done)
	f.Add(append(append([]byte{}, job...), done...)) // two frames back to back
	f.Add(job[:len(job)/2])                          // torn mid-frame
	f.Add(job[:1])                                   // torn inside the length prefix
	flipped := append([]byte{}, res...)
	flipped[len(res)/2] ^= 0x01
	f.Add(flipped)                                                   // CRC must catch the flip
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1})       // oversized frame length
	f.Add([]byte{0x00})                                              // frame length below minimum
	f.Add([]byte{4, binKindJob, 0xff, 0, 0, 0xde, 0xad, 0xbe, 0xef}) // unknown flags

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			rec, complete, err := readBinaryRecord(br)
			if err != nil {
				if err == io.EOF && complete {
					t.Fatal("EOF reported alongside a complete frame")
				}
				return
			}
			if !complete {
				t.Fatal("decoded record from an incomplete frame")
			}
			// Whatever decodes must be well-formed enough to survive a
			// round-trip: the store re-encodes exactly these shapes at
			// compaction time.
			switch r := rec.(type) {
			case JobRecord:
				if r.Type != recJob {
					t.Fatalf("job record with type %q", r.Type)
				}
			case ResultRecord:
				if r.Type != recResult || r.Index < 0 {
					t.Fatalf("malformed result record: %+v", r)
				}
			case DoneRecord:
				if r.Type != recDone {
					t.Fatalf("done record with type %q", r.Type)
				}
			default:
				t.Fatalf("decoder produced unknown type %T", rec)
			}
			if _, err := encodeBinaryRecord(rec); err != nil {
				t.Fatalf("decoded record does not re-encode: %v (%+v)", err, rec)
			}
		}
	})
}
