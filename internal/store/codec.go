package store

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"
)

// Codec names for Options.Codec (and the daemon's wal_codec knob). Binary
// is the default data plane; JSON is the debug/compat path and the format
// of every log written before the binary codec existed.
const (
	CodecBinary = "binary"
	CodecJSON   = "json"
)

// normalizeCodec maps "" to the default codec and rejects unknown names.
func normalizeCodec(c string) (string, error) {
	switch c {
	case "", CodecBinary:
		return CodecBinary, nil
	case CodecJSON:
		return CodecJSON, nil
	}
	return "", fmt.Errorf("store: unknown codec %q (want %q or %q)", c, CodecBinary, CodecJSON)
}

// binVersion is the binary log format version carried in the file header.
// A reader that sees a version it does not speak refuses the whole file
// rather than guessing at frame boundaries.
const binVersion = 1

// walMagic is the 8-byte header opening every binary log and snapshot
// file: five magic bytes, a NUL, the format version, and a newline (so
// `head` on a binary log prints one clean line instead of flooding the
// terminal). JSON logs are headerless — the first byte of a record is
// always '{' — which is what makes per-file codec sniffing unambiguous.
var walMagic = [8]byte{'R', 'Q', 'W', 'A', 'L', 0, binVersion, '\n'}

// Binary record kinds: payload byte 0 of every frame.
const (
	binKindJob    = 1
	binKindResult = 2
	binKindDone   = 3
	binKindState  = 4
)

// flagCompressed (payload byte 1, bit 0) marks a flate-compressed body.
const flagCompressed = 1 << 0

const (
	// maxRecordBytes caps one record's payload, matching the JSON
	// replayer's maximum line length: anything larger is torn or hostile.
	maxRecordBytes = 64 * 1024 * 1024
	// compressMin is the body size at which flate is worth its CPU:
	// result payloads clear it, done markers and small job records don't.
	compressMin = 256
)

// errCorruptRecord marks a complete-but-invalid binary frame: CRC
// mismatch, an implausible length, or fields that decode to garbage. A
// torn (incomplete) frame is reported as io.ErrUnexpectedEOF instead.
var errCorruptRecord = errors.New("store: corrupt binary record")

// encodeRecord renders one record ready for a single append Write: a JSON
// line, or a length-prefixed CRC-protected binary frame. Writing a whole
// record in one Write call is the crash-safety contract either way — a
// crash can truncate the final record but never interleave two.
func encodeRecord(codec string, v any) ([]byte, error) {
	if codec == CodecJSON {
		line, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("store: encode record: %w", err)
		}
		return append(line, '\n'), nil
	}
	return encodeBinaryRecord(v)
}

// appendBlob appends a uvarint length prefix followed by the bytes.
func appendBlob(b []byte, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// binaryBody renders a record's fields (kind-specific, all blobs
// length-prefixed) without the frame envelope.
func binaryBody(v any) (kind byte, body []byte, err error) {
	switch r := v.(type) {
	case JobRecord:
		created, err := r.Created.MarshalBinary()
		if err != nil {
			return 0, nil, err
		}
		body = appendBlob(body, []byte(r.ID))
		body = appendBlob(body, []byte(r.Kind))
		body = appendBlob(body, created)
		body = appendBlob(body, r.Specs)
		// The tenant rides as an optional trailing blob: omitted when empty,
		// so tenantless records stay byte-identical to what version-1 logs
		// have always held, and old readers' "no trailing bytes" check is
		// the only thing a new field costs.
		if r.Tenant != "" {
			body = appendBlob(body, []byte(r.Tenant))
		}
		return binKindJob, body, nil
	case ResultRecord:
		if r.Index < 0 {
			return 0, nil, fmt.Errorf("store: negative result index %d", r.Index)
		}
		body = appendBlob(body, []byte(r.JobID))
		body = binary.AppendUvarint(body, uint64(r.Index))
		body = appendBlob(body, []byte(r.Key))
		body = appendBlob(body, r.Result)
		return binKindResult, body, nil
	case DoneRecord:
		body = appendBlob(body, []byte(r.JobID))
		body = appendBlob(body, []byte(r.State))
		body = appendBlob(body, []byte(r.Error))
		return binKindDone, body, nil
	case StateRecord:
		body = appendBlob(body, []byte(r.Name))
		body = appendBlob(body, r.Payload)
		return binKindState, body, nil
	}
	return 0, nil, fmt.Errorf("store: unencodable record %T", v)
}

// flateWriters and flateReaders pool the compressor/decompressor state:
// a flate writer alone is over a megabyte, and the append and replay hot
// paths run one (de)compression per record.
var (
	flateWriters sync.Pool
	flateReaders sync.Pool
)

// deflate compresses body, reporting false when compression does not pay.
func deflate(body []byte) ([]byte, bool) {
	var buf bytes.Buffer
	zw, _ := flateWriters.Get().(*flate.Writer)
	if zw == nil {
		var err error
		if zw, err = flate.NewWriter(&buf, flate.BestSpeed); err != nil {
			return nil, false
		}
	} else {
		zw.Reset(&buf)
	}
	defer flateWriters.Put(zw)
	if _, err := zw.Write(body); err != nil {
		return nil, false
	}
	if err := zw.Close(); err != nil {
		return nil, false
	}
	if buf.Len() >= len(body) {
		return nil, false
	}
	return buf.Bytes(), true
}

// inflate decompresses a record body, capped at limit bytes.
func inflate(body []byte, limit int64) ([]byte, error) {
	zr, _ := flateReaders.Get().(io.ReadCloser)
	if zr == nil {
		zr = flate.NewReader(bytes.NewReader(body))
	} else if err := zr.(flate.Resetter).Reset(bytes.NewReader(body), nil); err != nil {
		return nil, err
	}
	defer flateReaders.Put(zr)
	out, err := io.ReadAll(io.LimitReader(zr, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(out)) > limit {
		return nil, errCorruptRecord
	}
	return out, nil
}

// encodeBinaryRecord frames one record:
//
//	uvarint payload length | payload | CRC32-IEEE(payload), little-endian
//
// with payload = kind byte, flags byte, then the (possibly
// flate-compressed) field body. The length prefix is what makes a torn
// tail detectable by construction; the CRC is what catches bit rot and
// partially-flushed frames whose length survived.
func encodeBinaryRecord(v any) ([]byte, error) {
	kind, body, err := binaryBody(v)
	if err != nil {
		return nil, fmt.Errorf("store: encode record: %w", err)
	}
	flags := byte(0)
	if len(body) >= compressMin {
		if c, ok := deflate(body); ok {
			body, flags = c, flagCompressed
		}
	}
	payload := make([]byte, 0, 2+len(body))
	payload = append(payload, kind, flags)
	payload = append(payload, body...)
	frame := binary.AppendUvarint(make([]byte, 0, len(payload)+16), uint64(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	return frame, nil
}

// readBlob splits a length-prefixed field off b.
func readBlob(b []byte) (val, rest []byte, err error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return nil, nil, errCorruptRecord
	}
	return b[sz : sz+int(n)], b[sz+int(n):], nil
}

// decodeBinaryBody parses a record's field body back into its typed
// record, with the Type field reconstructed so binary replay is
// indistinguishable from JSON replay downstream.
func decodeBinaryBody(kind byte, body []byte) (any, error) {
	var f [4][]byte
	fields := func(n int, varintAt int) error {
		var err error
		for i := 0; i < n; i++ {
			if i == varintAt {
				v, sz := binary.Uvarint(body)
				if sz <= 0 || v > maxRecordBytes {
					return errCorruptRecord
				}
				f[i], body = binary.AppendUvarint(nil, v), body[sz:]
				continue
			}
			if f[i], body, err = readBlob(body); err != nil {
				return err
			}
		}
		if len(body) != 0 {
			return errCorruptRecord // trailing junk inside a checksummed frame
		}
		return nil
	}
	switch kind {
	case binKindJob:
		// Hand-rolled instead of fields(): the tenant is an optional fifth
		// blob, so "body consumed exactly" is checked after deciding whether
		// one is present. Records written before tenancy end at blob four.
		var err error
		for i := 0; i < 4; i++ {
			if f[i], body, err = readBlob(body); err != nil {
				return nil, err
			}
		}
		var tenant []byte
		if len(body) > 0 {
			if tenant, body, err = readBlob(body); err != nil {
				return nil, err
			}
		}
		if len(body) != 0 {
			return nil, errCorruptRecord
		}
		var created time.Time
		if err := created.UnmarshalBinary(f[2]); err != nil {
			return nil, errCorruptRecord
		}
		rec := JobRecord{Type: recJob, ID: string(f[0]), Kind: string(f[1]), Created: created, Tenant: string(tenant)}
		if len(f[3]) > 0 {
			rec.Specs = json.RawMessage(f[3])
		}
		return rec, nil
	case binKindResult:
		if err := fields(4, 1); err != nil {
			return nil, err
		}
		idx, _ := binary.Uvarint(f[1])
		rec := ResultRecord{Type: recResult, JobID: string(f[0]), Index: int(idx), Key: string(f[2])}
		if len(f[3]) > 0 {
			rec.Result = json.RawMessage(f[3])
		}
		return rec, nil
	case binKindDone:
		if err := fields(3, -1); err != nil {
			return nil, err
		}
		return DoneRecord{Type: recDone, JobID: string(f[0]), State: string(f[1]), Error: string(f[2])}, nil
	case binKindState:
		if err := fields(2, -1); err != nil {
			return nil, err
		}
		rec := StateRecord{Type: recState, Name: string(f[0])}
		if len(f[1]) > 0 {
			rec.Payload = json.RawMessage(f[1])
		}
		return rec, nil
	}
	return nil, errCorruptRecord
}

// readBinaryRecord reads one frame off br. Errors classify the failure:
// io.EOF is a clean end of stream, io.ErrUnexpectedEOF a torn (incomplete)
// frame — the crash signature — and errCorruptRecord a complete frame that
// failed its CRC or decoded to garbage. complete reports whether a whole
// frame was consumed, which is what lets the replayer tell a tolerable
// corrupt tail from fatal mid-log damage (records following it).
func readBinaryRecord(br *bufio.Reader) (rec any, complete bool, err error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return nil, false, io.EOF
		}
		return nil, false, io.ErrUnexpectedEOF
	}
	if n < 2 || n > maxRecordBytes {
		return nil, false, fmt.Errorf("%w: frame length %d", errCorruptRecord, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, false, io.ErrUnexpectedEOF
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return nil, false, io.ErrUnexpectedEOF
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return nil, true, fmt.Errorf("%w: checksum mismatch", errCorruptRecord)
	}
	kind, flags, body := payload[0], payload[1], payload[2:]
	if flags&^byte(flagCompressed) != 0 {
		return nil, true, fmt.Errorf("%w: unknown flags %#x", errCorruptRecord, flags)
	}
	if flags&flagCompressed != 0 {
		out, err := inflate(body, maxRecordBytes)
		if err != nil {
			return nil, true, fmt.Errorf("%w: bad compressed body", errCorruptRecord)
		}
		body = out
	}
	rec, err = decodeBinaryBody(kind, body)
	if err != nil {
		return nil, true, err
	}
	return rec, true, nil
}

// sniffCodec inspects the opening bytes of a log stream: the binary magic
// selects the binary replayer (consuming the header), anything else is a
// JSON-lines log, and "" means the stream is empty (a fresh file, free to
// adopt whichever codec is configured). An unknown binary version is
// refused outright.
func sniffCodec(br *bufio.Reader) (string, error) {
	hdr, err := br.Peek(len(walMagic))
	if len(hdr) == 0 {
		if err == nil || err == io.EOF {
			return "", nil
		}
		return "", err
	}
	if len(hdr) == len(walMagic) && bytes.Equal(hdr, walMagic[:]) {
		br.Discard(len(walMagic))
		return CodecBinary, nil
	}
	if len(hdr) >= 7 && bytes.Equal(hdr[:6], walMagic[:6]) && hdr[6] != binVersion {
		return "", fmt.Errorf("store: unsupported binary log version %d (this build reads version %d)", hdr[6], binVersion)
	}
	return CodecJSON, nil
}
