//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive lock on the log file,
// enforcing one live writer per store directory. The kernel releases the
// lock on any process death, SIGKILL included.
func flockExclusive(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		if err == syscall.EWOULDBLOCK {
			return ErrLocked
		}
		return fmt.Errorf("flock: %w", err)
	}
	return nil
}
