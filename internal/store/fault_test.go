package store

import (
	"errors"
	"testing"

	"repro/internal/fault"
)

// TestFaultInjectionOnAppendAndProbe: the wal.write and wal.sync
// failpoints surface injected errors from every append path, from Sync
// and from Probe, and clear the moment the schedule is disarmed — the
// store carries no sticky failure state of its own (lossy-mode
// bookkeeping lives in the service layer, keyed off these errors).
func TestFaultInjectionOnAppendAndProbe(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if err := s.AppendJob(JobRecord{ID: "job-000001"}); err != nil {
		t.Fatalf("append before injection: %v", err)
	}

	if err := fault.Configure(FaultWrite+"=err(disk full);"+FaultSync+"=err(io error)", 1); err != nil {
		t.Fatalf("Configure: %v", err)
	}
	defer fault.Disable()

	if err := s.AppendJob(JobRecord{ID: "job-000002"}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("AppendJob under injection = %v, want ErrInjected", err)
	}
	if err := s.AppendResult(ResultRecord{JobID: "job-000001", Index: 0, Result: []byte(`{}`)}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("AppendResult under injection = %v, want ErrInjected", err)
	}
	if err := s.AppendDone(DoneRecord{JobID: "job-000001", State: "done"}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("AppendDone under injection = %v, want ErrInjected", err)
	}
	if err := s.Probe(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Probe under injection = %v, want ErrInjected", err)
	}
	if err := s.Sync(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Sync under injection = %v, want ErrInjected", err)
	}

	// A failed append must not corrupt in-memory state: the job whose
	// record never hit the disk is not tracked.
	if got := s.Stats().Jobs; got != 1 {
		t.Fatalf("tracked jobs after failed appends = %d, want 1", got)
	}

	// Disarming clears the failure instantly: this is the re-attach the
	// service's durability probe waits for.
	fault.Disable()
	if err := s.Probe(); err != nil {
		t.Fatalf("Probe after disarm: %v", err)
	}
	if err := s.AppendJob(JobRecord{ID: "job-000002"}); err != nil {
		t.Fatalf("AppendJob after disarm: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync after disarm: %v", err)
	}
}

// TestFaultCountedBurst: a count-limited wal.write schedule injects
// exactly N failures and then gets out of the way, modelling a transient
// disk hiccup rather than a dead volume.
func TestFaultCountedBurst(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if err := fault.Configure(FaultWrite+"=2*err(disk full)", 1); err != nil {
		t.Fatalf("Configure: %v", err)
	}
	defer fault.Disable()

	for i := 0; i < 2; i++ {
		if err := s.AppendJob(JobRecord{ID: "job-000009"}); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("append %d = %v, want ErrInjected", i, err)
		}
	}
	if err := s.AppendJob(JobRecord{ID: "job-000009"}); err != nil {
		t.Fatalf("append after the burst: %v", err)
	}
	if n := fault.Fires(FaultWrite); n != 2 {
		t.Fatalf("fires = %d, want 2", n)
	}
}
