package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/qbench"
	"repro/internal/rus"
)

// Table1Result reproduces Table 1: the two injection strategies.
type Table1Result struct {
	ZZ, CNOT rus.InjectionSpec
	Text     string
}

// Table1 regenerates the injection-strategy comparison.
func Table1() Table1Result {
	zz, cn := rus.SpecFor(rus.InjectZZ), rus.SpecFor(rus.InjectCNOT)
	t := metrics.NewTable("Parameter", "CNOT", "ZZ")
	t.Row("Exposed edge", string(cn.ExposedEdge), string(zz.ExposedEdge))
	t.Row("Number of ancillas required", cn.Ancillas, zz.Ancillas)
	t.Row("Lattice surgery cycles needed for injection", cn.Cycles, zz.Cycles)
	return Table1Result{ZZ: zz, CNOT: cn, Text: "Table 1: injection strategies\n" + t.String()}
}

// Table3Row is one benchmark row: paper counts vs generated counts.
type Table3Row struct {
	Name, Suite          string
	Qubits               int
	PaperRz, PaperCNOT   int
	OurRz, OurCNOT       int
	NonCliffordRz, Depth int
}

// Table3Result reproduces Table 3, the benchmark suite.
type Table3Result struct {
	Rows []Table3Row
	Text string
}

// Table3 regenerates the benchmark table from the generators, comparing
// against the paper's reported counts.
func Table3() Table3Result {
	t := metrics.NewTable("Suite", "Benchmark", "#Qubits", "#Rz(paper)", "#Rz(ours)", "#CNOT(paper)", "#CNOT(ours)", "non-Clifford Rz", "depth")
	var rows []Table3Row
	for _, spec := range qbench.All() {
		st := spec.Circuit().Stats()
		row := Table3Row{
			Name: spec.Name, Suite: spec.Suite, Qubits: spec.Qubits,
			PaperRz: spec.PaperRz, PaperCNOT: spec.PaperCNOT,
			OurRz: st.RzTotal, OurCNOT: st.CNOT,
			NonCliffordRz: st.Rz, Depth: st.Depth,
		}
		rows = append(rows, row)
		t.Row(row.Suite, row.Name, row.Qubits, row.PaperRz, row.OurRz, row.PaperCNOT, row.OurCNOT, row.NonCliffordRz, row.Depth)
	}
	return Table3Result{Rows: rows, Text: "Table 3: benchmark suite\n" + t.String()}
}

// AppendixA2Result reproduces Appendix A.2: continuous-angle vs Clifford+T
// cost for one Rz(theta).
type AppendixA2Result struct {
	ContinuousCycles   float64
	TCyclesLo, TCycHi  int
	OverheadLo, OverHi float64
	Text               string
}

// AppendixA2 regenerates the injection-cost comparison.
func AppendixA2() AppendixA2Result {
	m := rus.DefaultTModel()
	cont := rus.ContinuousRzCycles(2.2, 2)
	lo, hi := m.RzCyclesRange()
	olo, ohi := m.OverheadRange(cont)
	var sb strings.Builder
	sb.WriteString("Appendix A.2: |m_theta> injection vs T injection\n")
	t := metrics.NewTable("Quantity", "Value")
	t.Row("Continuous-angle Rz cycles (2 steps x (2.2 prep + 2 inject))", fmt.Sprintf("%.1f", cont))
	t.Row("T gates per synthesized Rz", m.TPerRz)
	t.Row("Clifford+T Rz cycles (best case)", lo)
	t.Row("Clifford+T Rz cycles (worst case)", hi)
	t.Row("Clifford+T overhead (low)", fmt.Sprintf("%.0fx", olo))
	t.Row("Clifford+T overhead (high)", fmt.Sprintf("%.0fx", ohi))
	sb.WriteString(t.String())
	return AppendixA2Result{
		ContinuousCycles: cont, TCyclesLo: lo, TCycHi: hi,
		OverheadLo: olo, OverHi: ohi, Text: sb.String(),
	}
}

// MSTTimingResult reproduces the section 5.4.1 timing claims on the host
// machine: full Kruskal and incremental updates on 100x100 and 1000x1000
// grids.
type MSTTimingResult struct {
	Kruskal100, Kruskal1000    time.Duration
	Update100x200, Upd1000x200 time.Duration // 200 incremental updates (k=200)
	Text                       string
}

// MSTTiming measures the classical MST costs of section 5.4.1.
func MSTTiming() MSTTimingResult {
	measure := func(n int) (time.Duration, time.Duration) {
		g := graph.GridGraph(n, n, 0)
		for e := 0; e < g.NumEdges(); e++ {
			g.SetWeight(e, float64((e*2654435761)%1000)/1000)
		}
		t0 := time.Now()
		tr := graph.Kruskal(g)
		full := time.Since(t0)
		t1 := time.Now()
		for i := 0; i < 200; i++ { // k = 200 edge updates per recomputation
			e := (i * 7919) % g.NumEdges()
			tr.UpdateWeight(e, float64((i*104729)%1000)/1000)
		}
		inc := time.Since(t1)
		return full, inc
	}
	k100, u100 := measure(100)
	k1000, u1000 := measure(1000)
	t := metrics.NewTable("Grid", "Full Kruskal", "200 incremental updates (k=200)")
	t.Row("100x100", k100.String(), u100.String())
	t.Row("1000x1000", k1000.String(), u1000.String())
	return MSTTimingResult{
		Kruskal100: k100, Kruskal1000: k1000,
		Update100x200: u100, Upd1000x200: u1000,
		Text: "Section 5.4.1: MST computation cost on this host\n" + t.String() +
			"(paper reports ~92us for 100x100 and ~330us for 1000x1000 incremental updates at k=200)\n",
	}
}
