package experiments_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	rescq "repro"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/ from the current outputs")

// goldenExperiments pins the rendered text of the paper artifacts so a perf
// refactor can't silently change the numbers the reproduction reports. The
// static experiments (tables, analytic figures) are pinned at full fidelity;
// the simulation-backed ones are pinned in quick mode, which runs the same
// engine/scheduler code on fixed seeds in well under a second.
var goldenExperiments = []struct {
	id    string
	quick bool
}{
	{"table1", false},
	{"table3", false},
	{"fig3", false},
	{"fig15", false},
	{"fig16", false},
	{"appendixA2", false},
	{"fig5", true},    // simulation-backed: Figure 5 latency histograms
	{"heatmap", true}, // simulation-backed: grid-activity heatmap
}

func goldenPath(id string, quick bool) string {
	name := id
	if quick {
		name += "_quick"
	}
	return filepath.Join("testdata", name+".golden")
}

func TestGoldenExperiments(t *testing.T) {
	for _, g := range goldenExperiments {
		g := g
		t.Run(g.id, func(t *testing.T) {
			got, err := rescq.Experiment(g.id, g.quick)
			if err != nil {
				t.Fatalf("Experiment(%q, quick=%v): %v", g.id, g.quick, err)
			}
			path := goldenPath(g.id, g.quick)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with `go test ./internal/experiments -run TestGoldenExperiments -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from %s (regenerate with -update ONLY if the change is intended):\n%s",
					g.id, path, diffHint(string(want), got))
			}
		})
	}
}

// TestGoldenExperimentsStable guards the guard: a golden comparison is only
// meaningful if the output is deterministic run-to-run.
func TestGoldenExperimentsStable(t *testing.T) {
	for _, g := range goldenExperiments {
		a, err := rescq.Experiment(g.id, g.quick)
		if err != nil {
			t.Fatalf("Experiment(%q): %v", g.id, err)
		}
		b, _ := rescq.Experiment(g.id, g.quick)
		if a != b {
			t.Errorf("%s output is nondeterministic; it cannot be golden-tested", g.id)
		}
	}
}

// diffHint reports the first line where two texts diverge, with context.
func diffHint(want, got string) string {
	wl, gl := splitLines(want), splitLines(got)
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("first divergence at line %d:\n  golden: %q\n  got:    %q", i+1, w, g)
		}
	}
	return "texts identical (length mismatch?)"
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
