package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/qbench"
	"repro/internal/sim"
)

// AblationResult quantifies each RESCQ mechanism's contribution by
// disabling it in isolation — the design-choice study DESIGN.md calls out.
type AblationResult struct {
	// Cycles[bench][variant] is the mean makespan.
	Cycles map[string]map[string]float64
	Text   string
}

// ablationVariants lists the studied configurations.
var ablationVariants = []struct {
	name string
	cfg  core.Config
}{
	{"full", core.Config{}},
	{"no-parallel-prep", core.Config{MaxParallelPreps: 1}},
	{"no-eager-prep", core.Config{DisableEagerPrep: true}},
	{"no-mst-routing", core.Config{DisableMSTRouting: true}},
	{"stale-mst-k200", core.Config{K: 200}},
}

// Ablation runs every variant on the representative benchmarks.
func Ablation(o Options) (AblationResult, error) {
	o = o.withDefaults()
	res := AblationResult{Cycles: map[string]map[string]float64{}}
	header := []string{"Benchmark"}
	for _, v := range ablationVariants {
		header = append(header, v.name)
	}
	t := metrics.NewTable(header...)
	for _, bench := range o.representative() {
		spec, ok := qbench.ByName(bench)
		if !ok {
			return res, fmt.Errorf("experiments: unknown benchmark %q", bench)
		}
		circ := spec.Circuit()
		res.Cycles[bench] = map[string]float64{}
		cells := []any{bench}
		// Every (variant, seed) run is independent; fan them out over the
		// shared pool and aggregate per variant in seed order.
		results := make([][]*sim.Result, len(ablationVariants))
		for vi := range results {
			results[vi] = make([]*sim.Result, o.Runs)
		}
		errs := make([]error, len(ablationVariants)*o.Runs)
		baseGrid, err := o.buildGrid(circ.NumQubits)
		if err != nil {
			return res, err
		}
		sim.ParallelFor(len(errs), 0, func(u int) {
			vi, i := u/o.Runs, u%o.Runs
			results[vi][i], errs[u] = sim.RunSeeded(baseGrid.Clone(), circ, o.simConfig(),
				o.BaseSeed+int64(i), core.New(ablationVariants[vi].cfg))
		})
		for _, err := range errs {
			if err != nil {
				return res, err
			}
		}
		for vi, v := range ablationVariants {
			agg := sim.AggregateResults(results[vi])
			res.Cycles[bench][v.name] = agg.MeanCycles
			cells = append(cells, fmt.Sprintf("%.0f", agg.MeanCycles))
		}
		t.Row(cells...)
	}
	res.Text = "Ablation: RESCQ mechanisms disabled one at a time (mean cycles)\n" + t.String()
	return res, nil
}
