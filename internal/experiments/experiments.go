// Package experiments regenerates every table and figure of the paper's
// evaluation (section 5 and the appendix) from this repository's own
// simulator, benchmark generators and schedulers. Each experiment returns
// both structured data (asserted by tests and the benchmark harness) and a
// rendered ASCII report (printed by cmd/rescq-bench).
package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/qbench"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Options configures an experiment run.
type Options struct {
	// Distance is the surface code distance (default 7, the paper's
	// headline operating point).
	Distance int
	// PhysError is the physical error rate (default 1e-4).
	PhysError float64
	// Runs is the number of seeds per configuration (default 3).
	Runs int
	// BaseSeed offsets the seed sequence (default 1).
	BaseSeed int64
	// Quick restricts sweeps to the small benchmarks and one seed so the
	// whole harness finishes in seconds; used by tests.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Distance == 0 {
		o.Distance = 7
	}
	if o.PhysError == 0 {
		o.PhysError = 1e-4
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.Quick && o.Runs > 2 {
		o.Runs = 2
	}
	return o
}

func (o Options) simConfig() sim.Config {
	return sim.Config{Distance: o.Distance, PhysError: o.PhysError}
}

// benchList returns the benchmarks an experiment sweeps: all of Table 3,
// or the small subset in Quick mode.
func (o Options) benchList() []string {
	if o.Quick {
		return []string{"vqe_n13", "qaoa_n15", "wstate_n27", "gcm_n13", "qft_n18", "hamsim_n25"}
	}
	return qbench.Names()
}

// representative returns the sensitivity-study benchmarks (section 5.2),
// or a cheaper stand-in set in Quick mode.
func (o Options) representative() []string {
	if o.Quick {
		return []string{"gcm_n13", "qft_n18"}
	}
	return qbench.Representative()
}

// SchedulerNames lists the evaluated schedulers in the paper's order.
var SchedulerNames = []string{"greedy", "autobraid", "rescq"}

// makeScheduler builds a fresh scheduler instance by name. The rescq name
// accepts a recomputation period via k (<= 0 means the default 25).
func makeScheduler(name string, k int) (sim.Scheduler, error) {
	switch name {
	case "greedy":
		return sched.NewGreedy(), nil
	case "autobraid":
		return sched.NewAutoBraid(), nil
	case "rescq":
		return core.New(core.Config{K: k}), nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheduler %q", name)
	}
}

// runConfig simulates one benchmark under one scheduler for o.Runs seeds on
// a fresh grid per run (compression fraction applied when > 0) and pools
// the results.
func runConfig(o Options, benchName, schedName string, k int, compression float64) (sim.Aggregate, error) {
	spec, ok := qbench.ByName(benchName)
	if !ok {
		return sim.Aggregate{}, fmt.Errorf("experiments: unknown benchmark %q", benchName)
	}
	// Runs are independent (own grid, scheduler and RNG), so they execute
	// in parallel; results stay deterministic because each seed's run is
	// self-contained.
	circ := spec.Circuit()
	results := make([]*sim.Result, o.Runs)
	errs := make([]error, o.Runs)
	var wg sync.WaitGroup
	for i := 0; i < o.Runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seed := o.BaseSeed + int64(i)
			g := lattice.NewSTARGrid(circ.NumQubits)
			if compression > 0 {
				// The compression layout is part of the architecture,
				// not the stochastic run: derive its seed from the
				// benchmark so all schedulers see the same compressed
				// grid per run index.
				g.Compress(compression, rand.New(rand.NewSource(int64(len(benchName))*1315423911+int64(i))))
			}
			s, err := makeScheduler(schedName, k)
			if err != nil {
				errs[i] = err
				return
			}
			// Sharing circ across goroutines is safe: RunSeeded builds
			// its own DAG and treats the circuit as read-only.
			results[i], errs[i] = sim.RunSeeded(g, circ, o.simConfig(), seed, s)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return sim.Aggregate{}, err
		}
	}
	return sim.AggregateResults(results), nil
}

// sweep helpers ---------------------------------------------------------

// distances returns the code-distance sweep of Figure 11.
func (o Options) distances() []int {
	if o.Quick {
		return []int{5, 7, 9}
	}
	return []int{5, 7, 9, 11, 13}
}

// errorRates returns the physical-error-rate sweep of Figure 12.
func (o Options) errorRates() []float64 {
	if o.Quick {
		return []float64{1e-3, 1e-4}
	}
	return []float64{1e-3, 3e-4, 1e-4, 3e-5, 1e-5}
}

// kValues returns the MST-recomputation-period sweep of Figures 10/13.
var kValues = []int{25, 50, 100, 200}

// compressions returns the grid-compression sweep of Figure 14.
func (o Options) compressions() []float64 {
	if o.Quick {
		return []float64{0, 0.5, 1.0}
	}
	return []float64{0, 0.25, 0.5, 0.75, 1.0}
}

// frame-only guard used by a couple of drivers.
var _ = circuit.KindRz
