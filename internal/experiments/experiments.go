// Package experiments regenerates every table and figure of the paper's
// evaluation (section 5 and the appendix) from this repository's own
// simulator, benchmark generators and schedulers. Each experiment returns
// both structured data (asserted by tests and the benchmark harness) and a
// rendered ASCII report (printed by cmd/rescq-bench).
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	_ "repro/internal/core" // registers the "rescq" scheduler
	"repro/internal/lattice"
	"repro/internal/qbench"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Options configures an experiment run.
type Options struct {
	// Distance is the surface code distance (default 7, the paper's
	// headline operating point).
	Distance int
	// PhysError is the physical error rate (default 1e-4).
	PhysError float64
	// Runs is the number of seeds per configuration (default 3).
	Runs int
	// BaseSeed offsets the seed sequence (default 1).
	BaseSeed int64
	// Quick restricts sweeps to the small benchmarks and one seed so the
	// whole harness finishes in seconds; used by tests.
	Quick bool
	// Layout names the lattice layout to run on ("" means the default
	// "star", the paper's substrate); LayoutParams passes its knobs. Both
	// resolve through the lattice layout registry, which makes every
	// experiment driver topology-parametric.
	Layout       string
	LayoutParams map[string]string
}

func (o Options) withDefaults() Options {
	if o.Distance == 0 {
		o.Distance = 7
	}
	if o.PhysError == 0 {
		o.PhysError = 1e-4
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.Quick && o.Runs > 2 {
		o.Runs = 2
	}
	return o
}

func (o Options) simConfig() sim.Config {
	return sim.Config{Distance: o.Distance, PhysError: o.PhysError}
}

// buildGrid constructs a fresh grid for n qubits under the options' layout
// via the lattice layout registry.
func (o Options) buildGrid(n int) (*lattice.Grid, error) {
	return lattice.Build(o.Layout, n, lattice.Params(o.LayoutParams))
}

// benchList returns the benchmarks an experiment sweeps: all of Table 3,
// or the small subset in Quick mode.
func (o Options) benchList() []string {
	if o.Quick {
		return []string{"vqe_n13", "qaoa_n15", "wstate_n27", "gcm_n13", "qft_n18", "hamsim_n25"}
	}
	return qbench.Names()
}

// representative returns the sensitivity-study benchmarks (section 5.2),
// or a cheaper stand-in set in Quick mode.
func (o Options) representative() []string {
	if o.Quick {
		return []string{"gcm_n13", "qft_n18"}
	}
	return qbench.Representative()
}

// SchedulerNames lists the evaluated schedulers in the paper's order.
var SchedulerNames = []string{"greedy", "autobraid", "rescq"}

// makeScheduler builds a fresh scheduler instance through the open
// scheduler registry. The rescq name accepts a recomputation period via k
// (<= 0 means the default 25); policies registered by external packages
// resolve the same way.
func makeScheduler(name string, k int) (sim.Scheduler, error) {
	s, err := sched.New(name, sched.Params{K: k})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return s, nil
}

// runJob names one simulation configuration inside a batch: a benchmark, a
// scheduler, RESCQ's k, a compression fraction, and the sweep options whose
// Runs/BaseSeed/Distance/PhysError apply to it.
type runJob struct {
	o           Options
	bench       string
	sched       string
	k           int
	compression float64
}

// runJobs executes a whole batch of configurations on one bounded worker
// pool (sim.ParallelFor), fanning out over every (configuration, seed)
// pair so sweeps saturate all cores even at one seed per configuration.
// The returned aggregates are in input order; each seeded run is
// self-contained (own grid, scheduler, RNG) and aggregation happens in
// seed order, so results are byte-identical to a serial loop regardless of
// goroutine completion order.
func runJobs(jobs []runJob) ([]sim.Aggregate, error) {
	type unit struct{ job, run int }
	var units []unit
	results := make([][]*sim.Result, len(jobs))
	circs := make([]*circuit.Circuit, len(jobs))
	grids := make([]*lattice.Grid, len(jobs))
	for j := range jobs {
		jobs[j].o = jobs[j].o.withDefaults()
		spec, ok := qbench.ByName(jobs[j].bench)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", jobs[j].bench)
		}
		circs[j] = spec.Circuit()
		// One deterministic layout build per configuration; each seeded
		// run below mutates its own clone.
		g, err := jobs[j].o.buildGrid(circs[j].NumQubits)
		if err != nil {
			return nil, err
		}
		grids[j] = g
		results[j] = make([]*sim.Result, jobs[j].o.Runs)
		for i := 0; i < jobs[j].o.Runs; i++ {
			units = append(units, unit{j, i})
		}
	}
	errs := make([]error, len(units))
	sim.ParallelFor(len(units), 0, func(u int) {
		j, i := units[u].job, units[u].run
		jb := jobs[j]
		g := grids[j].Clone()
		if jb.compression > 0 {
			// The compression layout is part of the architecture, not the
			// stochastic run: derive its seed from the benchmark so all
			// schedulers see the same compressed grid per run index.
			g.Compress(jb.compression, rand.New(rand.NewSource(int64(len(jb.bench))*1315423911+int64(i))))
		}
		s, err := makeScheduler(jb.sched, jb.k)
		if err != nil {
			errs[u] = err
			return
		}
		// Sharing circs[j] across goroutines is safe: RunSeeded builds
		// its own DAG and treats the circuit as read-only.
		results[j][i], errs[u] = sim.RunSeeded(g, circs[j], jb.o.simConfig(), jb.o.BaseSeed+int64(i), s)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	aggs := make([]sim.Aggregate, len(jobs))
	for j := range jobs {
		aggs[j] = sim.AggregateResults(results[j])
	}
	return aggs, nil
}

// runConfig simulates one benchmark under one scheduler for o.Runs seeds on
// a fresh grid per run (compression fraction applied when > 0) and pools
// the results.
func runConfig(o Options, benchName, schedName string, k int, compression float64) (sim.Aggregate, error) {
	aggs, err := runJobs([]runJob{{o: o, bench: benchName, sched: schedName, k: k, compression: compression}})
	if err != nil {
		return sim.Aggregate{}, err
	}
	return aggs[0], nil
}

// sweep helpers ---------------------------------------------------------

// distances returns the code-distance sweep of Figure 11.
func (o Options) distances() []int {
	if o.Quick {
		return []int{5, 7, 9}
	}
	return []int{5, 7, 9, 11, 13}
}

// errorRates returns the physical-error-rate sweep of Figure 12.
func (o Options) errorRates() []float64 {
	if o.Quick {
		return []float64{1e-3, 1e-4}
	}
	return []float64{1e-3, 3e-4, 1e-4, 3e-5, 1e-5}
}

// kValues returns the MST-recomputation-period sweep of Figures 10/13.
var kValues = []int{25, 50, 100, 200}

// compressions returns the grid-compression sweep of Figure 14.
func (o Options) compressions() []float64 {
	if o.Quick {
		return []float64{0, 0.5, 1.0}
	}
	return []float64{0, 0.25, 0.5, 0.75, 1.0}
}

// frame-only guard used by a couple of drivers.
var _ = circuit.KindRz
