package experiments

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/sched"
	"repro/internal/sim"
)

// randomProgram builds a random but valid Clifford+Rz program.
func randomProgram(r *rand.Rand) *circuit.Circuit {
	n := 4 + r.Intn(10)
	c := circuit.New("fuzz", n)
	gates := 10 + r.Intn(60)
	for i := 0; i < gates; i++ {
		switch r.Intn(5) {
		case 0, 1:
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				b = (a + 1) % n
			}
			c.CNOT(a, b)
		case 2:
			// Mix dyadic and non-dyadic angles.
			if r.Intn(2) == 0 {
				c.Rz(r.Intn(n), circuit.NewAngle(int64(1+2*r.Intn(8)), 1<<uint(2+r.Intn(5))))
			} else {
				c.Rz(r.Intn(n), circuit.NewAngle(int64(1+2*r.Intn(20)), 96))
			}
		case 3:
			c.H(r.Intn(n))
		case 4:
			c.T(r.Intn(n))
		}
	}
	return c
}

// TestAllSchedulersCompleteRandomPrograms is the system-level fuzz test:
// random programs, random compression, all three schedulers — every run
// must complete every gate with no deadlock and no validation failure.
func TestAllSchedulersCompleteRandomPrograms(t *testing.T) {
	mk := map[string]func() sim.Scheduler{
		"greedy":    func() sim.Scheduler { return sched.NewGreedy() },
		"autobraid": func() sim.Scheduler { return sched.NewAutoBraid() },
		"rescq":     func() sim.Scheduler { return core.New(core.DefaultConfig()) },
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomProgram(r)
		comp := float64(r.Intn(3)) / 2 // 0, 0.5, 1.0
		want := len(circuit.NewDAG(c).Gates())
		for name, make := range mk {
			g := lattice.MustBuild("star", c.NumQubits, nil)
			g.Compress(comp, rand.New(rand.NewSource(seed+1)))
			res, err := sim.RunSeeded(g, c, sim.Config{Distance: 7, PhysError: 1e-4}, seed, make())
			if err != nil {
				t.Logf("seed %d %s (compression %v): %v", seed, name, comp, err)
				return false
			}
			if got := len(res.CNOTLatencies) + len(res.RzLatencies); got > want {
				t.Logf("seed %d %s: more latencies than gates", seed, name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSchedulersAgreeOnDeterministicCircuits checks that a pure-Clifford +
// CNOT circuit (no stochastic Rz) takes identical time across seeds for
// each scheduler: the only randomness in the engine comes from RUS.
func TestSchedulersAgreeOnDeterministicCircuits(t *testing.T) {
	c := circuit.New("det", 9)
	for i := 0; i < 8; i++ {
		c.CNOT(i, i+1)
	}
	for i := 0; i < 9; i++ {
		c.H(i)
	}
	for _, mk := range []func() sim.Scheduler{
		func() sim.Scheduler { return sched.NewGreedy() },
		func() sim.Scheduler { return sched.NewAutoBraid() },
		func() sim.Scheduler { return core.New(core.DefaultConfig()) },
	} {
		var first int
		for seed := int64(1); seed <= 4; seed++ {
			g := lattice.MustBuild("star", c.NumQubits, nil)
			res, err := sim.RunSeeded(g, c, sim.Config{Distance: 7, PhysError: 1e-4}, seed, mk())
			if err != nil {
				t.Fatal(err)
			}
			if seed == 1 {
				first = res.TotalCycles
			} else if res.TotalCycles != first {
				t.Errorf("%s: deterministic circuit varied across seeds: %d vs %d",
					mk().Name(), res.TotalCycles, first)
				break
			}
		}
	}
}

// TestAblationShowsEachMechanismMatters runs the ablation in quick mode
// and checks the full configuration is never slower than the worst ablated
// variant (each mechanism should help or at least not hurt on the
// representative set).
func TestAblationShowsEachMechanismMatters(t *testing.T) {
	r, err := Ablation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for bench, byVariant := range r.Cycles {
		full := byVariant["full"]
		worst := full
		for _, v := range byVariant {
			if v > worst {
				worst = v
			}
		}
		if full > 1.15*worst {
			t.Errorf("%s: full RESCQ (%v) slower than every ablation (worst %v)", bench, full, worst)
		}
		// The single-prep, no-eager variant bundle should cost something
		// on an Rz-heavy benchmark.
		if bench == "gcm_n13" && byVariant["no-parallel-prep"] < full*0.95 {
			t.Errorf("%s: disabling parallel prep made RESCQ faster (%v < %v)?",
				bench, byVariant["no-parallel-prep"], full)
		}
	}
}
