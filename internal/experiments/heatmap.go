package experiments

import (
	"fmt"
	"strings"

	"repro/internal/lattice"
	"repro/internal/qbench"
	"repro/internal/sim"
)

// HeatmapResult renders the grid-activity heatmaps the artifact produces:
// per-ancilla busy fraction over a whole run, drawn on the tile grid.
type HeatmapResult struct {
	// Utilization[scheduler] is the per-ancilla busy fraction.
	Utilization map[string][]float64
	Text        string
}

// heatmapGlyphs maps utilization deciles to characters (light to dark).
const heatmapGlyphs = " .:-=+*#%@"

// Heatmap simulates one benchmark under each scheduler and renders the
// resulting ancilla utilization as an ASCII heatmap ('D' marks data
// qubits; glyphs darken with busy fraction).
func Heatmap(o Options, benchName string) (HeatmapResult, error) {
	o = o.withDefaults()
	if benchName == "" {
		benchName = "gcm_n13"
	}
	spec, ok := qbench.ByName(benchName)
	if !ok {
		return HeatmapResult{}, fmt.Errorf("experiments: unknown benchmark %q", benchName)
	}
	circ := spec.Circuit()
	res := HeatmapResult{Utilization: map[string][]float64{}}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Grid activity heatmaps — %s (d=%d, p=%.0e, seed %d)\n\n",
		benchName, o.Distance, o.PhysError, o.BaseSeed)
	for _, schedName := range SchedulerNames {
		s, err := makeScheduler(schedName, 25)
		if err != nil {
			return res, err
		}
		g, err := o.buildGrid(circ.NumQubits)
		if err != nil {
			return res, err
		}
		r, err := sim.RunSeeded(g, circ, o.simConfig(), o.BaseSeed, s)
		if err != nil {
			return res, err
		}
		res.Utilization[schedName] = r.AncillaUtilization
		fmt.Fprintf(&sb, "%s (%d cycles):\n%s\n", schedName, r.TotalCycles,
			renderHeatmap(g, r.AncillaUtilization))
	}
	res.Text = sb.String()
	return res, nil
}

// renderHeatmap draws per-ancilla utilization on the tile grid.
func renderHeatmap(g *lattice.Grid, util []float64) string {
	var sb strings.Builder
	for row := 0; row < g.Rows(); row++ {
		for col := 0; col < g.Cols(); col++ {
			c := lattice.At(row, col)
			switch g.Kind(c) {
			case lattice.TileData:
				sb.WriteByte('D')
			case lattice.TileAncilla:
				u := util[g.AncillaID(c)]
				idx := int(u * float64(len(heatmapGlyphs)))
				if idx >= len(heatmapGlyphs) {
					idx = len(heatmapGlyphs) - 1
				}
				sb.WriteByte(heatmapGlyphs[idx])
			default:
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
