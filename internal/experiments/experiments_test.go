package experiments

import (
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Quick: true, Runs: 1} }

func TestTable1(t *testing.T) {
	r := Table1()
	if r.ZZ.Ancillas != 1 || r.CNOT.Ancillas != 2 {
		t.Errorf("Table 1 ancilla counts wrong: %+v", r)
	}
	if !strings.Contains(r.Text, "Exposed edge") {
		t.Error("Table 1 text missing rows")
	}
}

func TestTable3(t *testing.T) {
	r := Table3()
	if len(r.Rows) != 23 {
		t.Fatalf("Table 3 rows = %d, want 23", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Name == "multiplier_n45" || row.Name == "multiplier_n75" {
			continue
		}
		if row.OurRz != row.PaperRz || row.OurCNOT != row.PaperCNOT {
			t.Errorf("%s: counts (%d,%d) != paper (%d,%d)",
				row.Name, row.OurRz, row.OurCNOT, row.PaperRz, row.PaperCNOT)
		}
	}
}

func TestFigure3(t *testing.T) {
	r := Figure3(100)
	for ler, ratio := range r.Ratio {
		if ratio < 50 || ratio > 150 {
			t.Errorf("ler=%v: Rz:T capacity ratio = %v, want ~100", ler, ratio)
		}
	}
}

func TestFigure5Shapes(t *testing.T) {
	r, err := Figure5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: >50% of RESCQ CNOTs take 2 cycles, >90% take <= 6 cycles.
	rq := r.CNOT["rescq"]
	if f := rq.Fraction(2); f < 0.5 {
		t.Errorf("RESCQ 2-cycle CNOT fraction = %v, want > 0.5", f)
	}
	if f := rq.FractionAtMost(6); f < 0.80 {
		t.Errorf("RESCQ <=6-cycle CNOT fraction = %v, want high", f)
	}
	// Paper: a large share of AutoBraid CNOTs take 5 and 8 cycles.
	ab := r.CNOT["autobraid"]
	if f := ab.Fraction(5) + ab.Fraction(8); f < 0.15 {
		t.Errorf("AutoBraid 5/8-cycle CNOT fraction = %v, want substantial", f)
	}
	// RESCQ's mean Rz latency is below the baseline's.
	if r.Rz["rescq"].Mean() >= r.Rz["autobraid"].Mean() {
		t.Errorf("RESCQ mean Rz latency %v should beat autobraid %v",
			r.Rz["rescq"].Mean(), r.Rz["autobraid"].Mean())
	}
}

func TestFigure10QuickWin(t *testing.T) {
	r, err := Figure10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	if r.GeomeanVsGreedy < 1.2 {
		t.Errorf("geomean speedup vs greedy = %v, want > 1.2 even in quick mode", r.GeomeanVsGreedy)
	}
	for _, row := range r.Rows {
		if row.RescqBest <= 0 || row.Greedy <= 0 {
			t.Errorf("%s: nonpositive cycles", row.Bench)
		}
	}
}

func TestFigure11DistanceTrend(t *testing.T) {
	r, err := Figure11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Execution time should not increase dramatically with d; the paper
	// reports it improves. Allow noise: last <= first * 1.15 for RESCQ.
	for bench, bySched := range r.Cycles {
		ys := bySched["rescq"]
		if len(ys) < 2 {
			t.Fatalf("%s: missing sweep data", bench)
		}
		if ys[len(ys)-1] > ys[0]*1.25 {
			t.Errorf("%s: RESCQ cycles grew with d: %v", bench, ys)
		}
	}
}

func TestFigure12ErrorRateInsensitive(t *testing.T) {
	r, err := Figure12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// All schemes are relatively insensitive to p (paper 5.2.2): the
	// ratio between the extremes stays modest.
	for bench, bySched := range r.Cycles {
		for schedName, ys := range bySched {
			lo, hi := ys[0], ys[0]
			for _, y := range ys {
				if y < lo {
					lo = y
				}
				if y > hi {
					hi = y
				}
			}
			if hi > 2.0*lo {
				t.Errorf("%s/%s: cycles vary too much with p: %v", bench, schedName, ys)
			}
		}
	}
}

func TestFigure13KInsensitive(t *testing.T) {
	r, err := Figure13(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Performance deteriorates only mildly as k grows (paper 5.2.3).
	for bench, byLabel := range r.Cycles {
		for label, byK := range byLabel {
			if len(byK) < 2 {
				continue
			}
			lo, hi := 0.0, 0.0
			for _, v := range byK {
				if lo == 0 || v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi > 1.6*lo {
				t.Errorf("%s %s: strong k sensitivity: %v", bench, label, byK)
			}
		}
	}
}

func TestFigure14CompressionTrend(t *testing.T) {
	r, err := Figure14(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for bench, bySched := range r.Cycles {
		rescq := bySched["rescq"]
		greedy := bySched["greedy"]
		n := len(r.Compressions)
		if len(rescq) != n || len(greedy) != n {
			t.Fatalf("%s: missing data", bench)
		}
		// At full compression RESCQ keeps an advantage (paper: 1.65x
		// average in the most constrained architecture; our qft runs are
		// thinner, see EXPERIMENTS.md). Quick mode uses few seeds, so
		// assert only that RESCQ still wins.
		if greedy[n-1] < 1.05*rescq[n-1] {
			t.Errorf("%s: at 100%% compression greedy=%v rescq=%v, want rescq much faster",
				bench, greedy[n-1], rescq[n-1])
		}
	}
}

func TestFigure15Render(t *testing.T) {
	s := Figure15()
	if !strings.Contains(s, "0% compression") || !strings.Contains(s, "100% compression") {
		t.Error("Figure 15 render incomplete")
	}
	if strings.Count(s, "D") < 40 { // 8 data qubits x 5 grids
		t.Error("Figure 15 grids missing data tiles")
	}
}

func TestFigure16Shapes(t *testing.T) {
	r := Figure16()
	for p, ys := range r.Cycles {
		if p >= 3e-4 {
			// At p=1e-3 the d^2-scaling of the expansion round's
			// post-selection eventually outweighs the faster attempt
			// rate, so the curve is U-shaped; assert only the net
			// improvement from d=3 to d=7 there.
			if ys[2] >= ys[0] {
				t.Errorf("p=%v: cycles(d=7)=%v should beat cycles(d=3)=%v", p, ys[2], ys[0])
			}
			continue
		}
		for i := 1; i < len(ys); i++ {
			if ys[i] >= ys[i-1] {
				t.Errorf("p=%v: expected cycles should fall with d: %v", p, ys)
				break
			}
		}
	}
	for p, ys := range r.Attempts {
		for i := 1; i < len(ys); i++ {
			if ys[i] <= ys[i-1] {
				t.Errorf("p=%v: expected attempts should rise with d: %v", p, ys)
				break
			}
		}
	}
}

func TestAppendixA2(t *testing.T) {
	r := AppendixA2()
	if r.ContinuousCycles < 8.3 || r.ContinuousCycles > 8.5 {
		t.Errorf("continuous cycles = %v, want 8.4", r.ContinuousCycles)
	}
	if r.OverheadLo < 20 || r.OverHi > 160 {
		t.Errorf("overhead range = %v-%v, want within 20-160x", r.OverheadLo, r.OverHi)
	}
}

func TestMSTTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	r := MSTTiming()
	if r.Kruskal100 <= 0 || r.Kruskal1000 <= 0 {
		t.Error("timings should be positive")
	}
	if !strings.Contains(r.Text, "100x100") {
		t.Error("timing text incomplete")
	}
}

func TestHeatmap(t *testing.T) {
	r, err := Heatmap(quickOpts(), "vqe_n13")
	if err != nil {
		t.Fatal(err)
	}
	for _, schedName := range SchedulerNames {
		util, ok := r.Utilization[schedName]
		if !ok {
			t.Fatalf("missing utilization for %s", schedName)
		}
		var maxU float64
		for _, u := range util {
			if u < 0 || u > 1 {
				t.Fatalf("%s: utilization %v out of [0,1]", schedName, u)
			}
			if u > maxU {
				maxU = u
			}
		}
		if maxU == 0 {
			t.Errorf("%s: no ancilla ever busy", schedName)
		}
	}
	if !strings.Contains(r.Text, "rescq") || !strings.Contains(r.Text, "D") {
		t.Error("heatmap render incomplete")
	}
	if _, err := Heatmap(quickOpts(), "bogus"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestMakeSchedulerUnknown(t *testing.T) {
	if _, err := makeScheduler("bogus", 0); err == nil {
		t.Error("unknown scheduler should error")
	}
}

func TestRunConfigUnknownBench(t *testing.T) {
	if _, err := runConfig(quickOpts().withDefaults(), "bogus", "greedy", 0, 0); err == nil {
		t.Error("unknown benchmark should error")
	}
}
