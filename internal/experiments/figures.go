package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/rus"
)

// Figure3Result reproduces Figure 3: maximum rotation-gate capacity vs
// target program fidelity for Clifford+Rz vs Clifford+T.
type Figure3Result struct {
	// Ratio is the Clifford+Rz : Clifford+T capacity advantage at each
	// logical error rate (~ the T count per rotation).
	Ratio map[float64]float64
	Text  string
}

// Figure3 regenerates the capacity curves for a sweep of logical error
// rates and target fidelities.
func Figure3(tPerRz int) Figure3Result {
	fidelities := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}
	lers := []float64{1e-6, 1e-7, 1e-8}
	res := Figure3Result{Ratio: map[float64]float64{}}
	var series []metrics.Series
	for _, ler := range lers {
		rzS := metrics.Series{Label: fmt.Sprintf("Rz ler=%.0e", ler)}
		tS := metrics.Series{Label: fmt.Sprintf("T  ler=%.0e", ler)}
		for _, f := range fidelities {
			rz, tg := rus.Figure3Point(f, ler, tPerRz)
			rzS.X = append(rzS.X, f)
			rzS.Y = append(rzS.Y, rz)
			tS.X = append(tS.X, f)
			tS.Y = append(tS.Y, tg)
			res.Ratio[ler] = rz / tg
		}
		series = append(series, rzS, tS)
	}
	res.Text = metrics.RenderSeries(
		"Figure 3: max rotation gates vs target fidelity (solid = Clifford+Rz, dashed = Clifford+T)",
		"fidelity", series)
	return res
}

// Figure5Result reproduces Figure 5: the distribution of CNOT and Rz
// completion latency (cycles after the gate is ready) for the AutoBraid
// baseline and RESCQ, pooled over the benchmark suite.
type Figure5Result struct {
	CNOT map[string]*metrics.Histogram // scheduler -> histogram
	Rz   map[string]*metrics.Histogram
	Text string
}

// Figure5 regenerates the latency histograms.
func Figure5(o Options) (Figure5Result, error) {
	o = o.withDefaults()
	res := Figure5Result{
		CNOT: map[string]*metrics.Histogram{},
		Rz:   map[string]*metrics.Histogram{},
	}
	var sb strings.Builder
	sb.WriteString("Figure 5: per-gate completion latency after scheduling (pooled over benchmarks)\n\n")
	scheds := []string{"autobraid", "rescq"}
	benches := o.benchList()
	var jobs []runJob
	for _, schedName := range scheds {
		for _, bench := range benches {
			jobs = append(jobs, runJob{o: o, bench: bench, sched: schedName})
		}
	}
	aggs, err := runJobs(jobs)
	if err != nil {
		return res, err
	}
	for si, schedName := range scheds {
		hc, hr := metrics.NewHistogram(), metrics.NewHistogram()
		for bi := range benches {
			agg := aggs[si*len(benches)+bi]
			hc.AddAll(agg.CNOTLatencies)
			hr.AddAll(agg.RzLatencies)
		}
		res.CNOT[schedName] = hc
		res.Rz[schedName] = hr
		sb.WriteString(hc.Render(fmt.Sprintf("CNOT latency, %s", schedName), 20, 40))
		sb.WriteString(hr.Render(fmt.Sprintf("Rz latency, %s", schedName), 20, 40))
		sb.WriteByte('\n')
	}
	res.Text = sb.String()
	return res, nil
}

// Figure10Row is one benchmark's normalized execution time.
type Figure10Row struct {
	Bench     string
	Greedy    float64 // mean cycles
	AutoBraid float64
	RescqByK  map[int]float64
	RescqBest float64 // RESCQ* of the paper: best mean over k
	MinCycles int     // RESCQ* min across seeds (error bar)
	MaxCycles int     // RESCQ* max across seeds
}

// Figure10Result reproduces Figure 10: normalized average execution time
// for every benchmark plus the geometric-mean summary.
type Figure10Result struct {
	Rows               []Figure10Row
	GeomeanVsGreedy    float64 // geomean over benchmarks of greedy/RESCQ*
	GeomeanVsAutoBraid float64
	Text               string
}

// Figure10 regenerates the headline comparison at the given operating
// point (defaults d=7, p=1e-4), evaluating RESCQ at k in {25,50,100,200}
// and reporting the best as RESCQ*.
func Figure10(o Options) (Figure10Result, error) {
	o = o.withDefaults()
	var res Figure10Result
	t := metrics.NewTable("Benchmark", "greedy", "autobraid", "RESCQ*", "k*", "norm(greedy)", "norm(autobraid)", "norm(RESCQ*)")
	var gRatios, aRatios []float64
	ks := kValues
	if o.Quick {
		ks = []int{25, 100}
	}
	benches := o.benchList()
	// One flat batch over every benchmark and scheduler configuration so
	// the whole figure shares the worker pool.
	stride := 2 + len(ks)
	var jobs []runJob
	for _, bench := range benches {
		jobs = append(jobs,
			runJob{o: o, bench: bench, sched: "greedy"},
			runJob{o: o, bench: bench, sched: "autobraid"})
		for _, k := range ks {
			jobs = append(jobs, runJob{o: o, bench: bench, sched: "rescq", k: k})
		}
	}
	aggs, err := runJobs(jobs)
	if err != nil {
		return res, err
	}
	for bi, bench := range benches {
		row := Figure10Row{Bench: bench, RescqByK: map[int]float64{}}
		g, a := aggs[bi*stride], aggs[bi*stride+1]
		row.Greedy, row.AutoBraid = g.MeanCycles, a.MeanCycles
		bestK := 0
		row.RescqBest = 0
		for ki, k := range ks {
			r := aggs[bi*stride+2+ki]
			row.RescqByK[k] = r.MeanCycles
			if row.RescqBest == 0 || r.MeanCycles < row.RescqBest {
				row.RescqBest = r.MeanCycles
				row.MinCycles, row.MaxCycles = r.MinCycles, r.MaxCycles
				bestK = k
			}
		}
		base := row.Greedy // normalize to the greedy baseline
		t.Row(bench,
			fmt.Sprintf("%.0f", row.Greedy), fmt.Sprintf("%.0f", row.AutoBraid),
			fmt.Sprintf("%.0f", row.RescqBest), bestK,
			1.0, row.AutoBraid/base, row.RescqBest/base)
		gRatios = append(gRatios, row.Greedy/row.RescqBest)
		aRatios = append(aRatios, row.AutoBraid/row.RescqBest)
		res.Rows = append(res.Rows, row)
	}
	res.GeomeanVsGreedy = metrics.GeoMean(gRatios)
	res.GeomeanVsAutoBraid = metrics.GeoMean(aRatios)
	res.Text = fmt.Sprintf(
		"Figure 10: normalized average execution time (d=%d, p=%.0e, %d seeds)\n%s"+
			"Geomean RESCQ* speedup: %.2fx vs greedy, %.2fx vs autobraid\n",
		o.Distance, o.PhysError, o.Runs, t.String(),
		res.GeomeanVsGreedy, res.GeomeanVsAutoBraid)
	return res, nil
}

// SweepResult holds one sensitivity figure: per benchmark, one series per
// scheduler, with execution time and idle fraction.
type SweepResult struct {
	// Cycles[bench][scheduler] is the series of mean cycles over the
	// sweep values; Idle likewise for the mean data-qubit idle fraction.
	Cycles map[string]map[string][]float64
	Idle   map[string]map[string][]float64
	Xs     []float64
	Text   string
}

// Figure11 regenerates the code-distance sensitivity study (k=25 for
// RESCQ, per the paper's "RESCQ25").
func Figure11(o Options) (SweepResult, error) {
	o = o.withDefaults()
	ds := o.distances()
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	return sweep(o, "Figure 11: sensitivity to code distance", "d", xs, func(base Options, i int) Options {
		base.Distance = ds[i]
		return base
	})
}

// Figure12 regenerates the physical-error-rate sensitivity study.
func Figure12(o Options) (SweepResult, error) {
	o = o.withDefaults()
	ps := o.errorRates()
	return sweep(o, "Figure 12: sensitivity to physical error rate", "p", ps, func(base Options, i int) Options {
		base.PhysError = ps[i]
		return base
	})
}

// sweep runs every scheduler on the representative benchmarks across a
// parameter sweep.
func sweep(o Options, title, xName string, xs []float64, apply func(Options, int) Options) (SweepResult, error) {
	res := SweepResult{
		Cycles: map[string]map[string][]float64{},
		Idle:   map[string]map[string][]float64{},
		Xs:     xs,
	}
	var sb strings.Builder
	benches := o.representative()
	// Flatten the whole bench x scheduler x sweep-value space into one
	// batch; results come back in input order, so a cursor walks them in
	// the same nesting below.
	var jobs []runJob
	for _, bench := range benches {
		for _, schedName := range SchedulerNames {
			for i := range xs {
				jobs = append(jobs, runJob{o: apply(o, i), bench: bench, sched: schedName, k: 25})
			}
		}
	}
	aggs, err := runJobs(jobs)
	if err != nil {
		return res, err
	}
	idx := 0
	for _, bench := range benches {
		res.Cycles[bench] = map[string][]float64{}
		res.Idle[bench] = map[string][]float64{}
		var cyc, idle []metrics.Series
		for _, schedName := range SchedulerNames {
			sc := metrics.Series{Label: schedName, X: xs}
			si := metrics.Series{Label: schedName, X: xs}
			for range xs {
				agg := aggs[idx]
				idx++
				sc.Y = append(sc.Y, agg.MeanCycles)
				si.Y = append(si.Y, agg.MeanIdle)
			}
			res.Cycles[bench][schedName] = sc.Y
			res.Idle[bench][schedName] = si.Y
			cyc = append(cyc, sc)
			idle = append(idle, si)
		}
		sb.WriteString(metrics.RenderSeries(fmt.Sprintf("%s — %s (execution cycles)", title, bench), xName, cyc))
		sb.WriteString(metrics.RenderSeries(fmt.Sprintf("%s — %s (mean idle fraction)", title, bench), xName, idle))
		sb.WriteByte('\n')
	}
	res.Text = sb.String()
	return res, nil
}

// Figure13Result holds RESCQ's sensitivity to the MST recomputation
// period k across d and p.
type Figure13Result struct {
	// ByK[bench]["d=5"] etc: mean cycles per k, in kValues order.
	Cycles map[string]map[string]map[int]float64
	Text   string
}

// Figure13 regenerates the k-sensitivity study (RESCQ only).
func Figure13(o Options) (Figure13Result, error) {
	o = o.withDefaults()
	res := Figure13Result{Cycles: map[string]map[string]map[int]float64{}}
	var sb strings.Builder
	ks := kValues
	if o.Quick {
		ks = []int{25, 200}
	}
	// Every (bench, d-or-p label, k) point is an independent RESCQ run;
	// flatten them all into one pool batch, then walk the aggregates with
	// a cursor in the same nesting order.
	type labelled struct {
		label string
		oo    Options
	}
	var labels []labelled
	for _, d := range o.distances() {
		oo := o
		oo.Distance = d
		labels = append(labels, labelled{fmt.Sprintf("d=%d", d), oo})
	}
	for _, p := range o.errorRates() {
		oo := o
		oo.PhysError = p
		labels = append(labels, labelled{fmt.Sprintf("p=%.0e", p), oo})
	}
	benches := o.representative()
	var jobs []runJob
	for _, bench := range benches {
		for _, l := range labels {
			for _, k := range ks {
				jobs = append(jobs, runJob{o: l.oo, bench: bench, sched: "rescq", k: k})
			}
		}
	}
	aggs, err := runJobs(jobs)
	if err != nil {
		return res, err
	}
	idx := 0
	for _, bench := range benches {
		res.Cycles[bench] = map[string]map[int]float64{}
		var series []metrics.Series
		for _, l := range labels {
			res.Cycles[bench][l.label] = map[int]float64{}
			s := metrics.Series{Label: l.label}
			for _, k := range ks {
				agg := aggs[idx]
				idx++
				res.Cycles[bench][l.label][k] = agg.MeanCycles
				s.X = append(s.X, float64(k))
				s.Y = append(s.Y, agg.MeanCycles)
			}
			series = append(series, s)
		}
		sb.WriteString(metrics.RenderSeries(
			fmt.Sprintf("Figure 13: RESCQ sensitivity to k — %s (execution cycles)", bench), "k", series))
		sb.WriteByte('\n')
	}
	res.Text = sb.String()
	return res, nil
}

// Figure14Result holds the grid-compression study.
type Figure14Result struct {
	// Cycles[bench][scheduler] over the compression sweep.
	Cycles       map[string]map[string][]float64
	Compressions []float64
	Text         string
}

// Figure14 regenerates the ancilla-availability (grid compression) study.
func Figure14(o Options) (Figure14Result, error) {
	o = o.withDefaults()
	comps := o.compressions()
	res := Figure14Result{Cycles: map[string]map[string][]float64{}, Compressions: comps}
	var sb strings.Builder
	benches := o.representative()
	var jobs []runJob
	for _, bench := range benches {
		for _, schedName := range SchedulerNames {
			for _, c := range comps {
				jobs = append(jobs, runJob{o: o, bench: bench, sched: schedName, k: 25, compression: c})
			}
		}
	}
	aggs, err := runJobs(jobs)
	if err != nil {
		return res, err
	}
	idx := 0
	for _, bench := range benches {
		res.Cycles[bench] = map[string][]float64{}
		var series []metrics.Series
		for _, schedName := range SchedulerNames {
			s := metrics.Series{Label: schedName}
			for _, c := range comps {
				agg := aggs[idx]
				idx++
				s.X = append(s.X, 100*c)
				s.Y = append(s.Y, agg.MeanCycles)
			}
			res.Cycles[bench][schedName] = s.Y
			series = append(series, s)
		}
		sb.WriteString(metrics.RenderSeries(
			fmt.Sprintf("Figure 14: sensitivity to grid compression — %s (execution cycles)", bench),
			"compression%", series))
		sb.WriteByte('\n')
	}
	res.Text = sb.String()
	return res, nil
}

// Figure15 renders example grids of 8 data qubits at each compression
// level, as in the paper's Figure 15.
func Figure15() string {
	var sb strings.Builder
	sb.WriteString("Figure 15: grids of 8 data qubits at different compressions\n\n")
	for _, c := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		g := lattice.MustBuild(lattice.DefaultLayout, 8, nil)
		g.Compress(c, rand.New(rand.NewSource(15)))
		fmt.Fprintf(&sb, "%.0f%% compression (%d ancillas, %.2f per data qubit):\n%s\n",
			100*c, g.NumAncilla(), g.AncillaPerData(), g.Render())
	}
	return sb.String()
}

// Figure16Result reproduces the preparation-model curves.
type Figure16Result struct {
	// Cycles[p][i] and Attempts[p][i] over the distance sweep.
	Distances []int
	Cycles    map[float64][]float64
	Attempts  map[float64][]float64
	Text      string
}

// Figure16 regenerates expected cycles and attempts to prepare |m_theta>.
func Figure16() Figure16Result {
	ds := []int{3, 5, 7, 9, 11, 13}
	ps := []float64{1e-3, 3e-4, 1e-4, 1e-5}
	res := Figure16Result{
		Distances: ds,
		Cycles:    map[float64][]float64{},
		Attempts:  map[float64][]float64{},
	}
	var cyc, att []metrics.Series
	for _, p := range ps {
		sc := metrics.Series{Label: fmt.Sprintf("p=%.0e", p)}
		sa := metrics.Series{Label: fmt.Sprintf("p=%.0e", p)}
		for _, d := range ds {
			pr := rus.Params{Distance: d, PhysError: p}
			sc.X = append(sc.X, float64(d))
			sc.Y = append(sc.Y, pr.ExpectedPrepCycles())
			sa.X = append(sa.X, float64(d))
			sa.Y = append(sa.Y, pr.ExpectedAttempts())
		}
		res.Cycles[p] = sc.Y
		res.Attempts[p] = sa.Y
		cyc = append(cyc, sc)
		att = append(att, sa)
	}
	res.Text = metrics.RenderSeries("Figure 16a: expected cycles to prepare |m_theta>", "d", cyc) +
		metrics.RenderSeries("Figure 16b: expected attempts to prepare |m_theta>", "d", att)
	return res
}
