package core

import (
	"repro/internal/graph"
	"repro/internal/sim"
)

// mstPipeline models the asynchronous MST recomputation of paper Figure 8.
// Every K cycles a computation starts from a snapshot of the current
// ancilla activity; its result becomes the routing tree TauMST cycles
// later. Routing therefore always uses a tree whose weights are stale by
// at least TauMST cycles — the paper shows (section 5.2.3) this staleness
// is nearly free, which our Figure 13 reproduction confirms.
type mstPipeline struct {
	k, tau int
	g      *graph.Graph
	eps    []float64 // per-edge deterministic tie-break jitter
	cur    *graph.Tree
	jobs   []mstJob
}

type mstJob struct {
	publishAt int
	tree      *graph.Tree
}

// epsScale bounds the tie-break jitter well below one activity quantum
// (1/ActivityWindow), so it only decides ties, never real differences.
const epsScale = 0.004

func newMSTPipeline(st *sim.State, cfg Config) *mstPipeline {
	g := st.Grid().AncillaGraph(cfg.ActivityFloor)
	m := &mstPipeline{
		k:   cfg.K,
		tau: cfg.TauMST,
		g:   g,
		eps: make([]float64, g.NumEdges()),
	}
	// Deterministic per-edge jitter: without it, the all-zero cold-start
	// weights make Kruskal produce a degenerate comb-shaped tree whose
	// paths between nearby tiles detour across the whole fabric. The
	// jitter yields a balanced pseudo-random spanning tree instead.
	for e := range m.eps {
		m.eps[e] = epsScale * splitmixUnit(uint64(e))
		g.SetWeight(e, m.eps[e])
	}
	// The initial tree is computed at compile time (all activities zero)
	// and available from cycle one.
	m.cur = graph.Kruskal(g)
	return m
}

// splitmixUnit hashes x into [0, 1) with the splitmix64 finalizer.
func splitmixUnit(x uint64) float64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// tick publishes any due computation and starts a new one every k cycles.
func (m *mstPipeline) tick(st *sim.State) {
	for len(m.jobs) > 0 && m.jobs[0].publishAt <= st.Cycle() {
		m.cur = m.jobs[0].tree
		m.jobs = m.jobs[1:]
	}
	if (st.Cycle()-1)%m.k == 0 {
		m.snapshotWeights(st)
		m.jobs = append(m.jobs, mstJob{
			publishAt: st.Cycle() + m.tau,
			tree:      graph.Kruskal(m.g),
		})
	}
}

// snapshotWeights sets every edge's weight to the max of its endpoints'
// sliding-window activity (paper section 4.2 / Figure 9).
func (m *mstPipeline) snapshotWeights(st *sim.State) {
	for e := 0; e < m.g.NumEdges(); e++ {
		ed := m.g.Edge(e)
		w := st.Activity(ed.U)
		if a := st.Activity(ed.V); a > w {
			w = a
		}
		m.g.SetWeight(e, w+m.eps[e])
	}
}

// current returns the latest published tree.
func (m *mstPipeline) current() *graph.Tree { return m.cur }
