package core

import (
	"repro/internal/graph"
	"repro/internal/sim"
)

// mstPipeline models the asynchronous MST recomputation of paper Figure 8.
// Every K cycles a computation starts from a snapshot of the current
// ancilla activity; its result becomes the routing tree TauMST cycles
// later. Routing therefore always uses a tree whose weights are stale by
// at least TauMST cycles — the paper shows (section 5.2.3) this staleness
// is nearly free, which our Figure 13 reproduction confirms.
//
// Between snapshots only edge weights change, so the pipeline maintains
// one working minimum spanning forest incrementally via the paper's
// O(k*sqrt(n)) single-edge update (section 5.4.1) and clones it for each
// publication, falling back to one allocation-free full KruskalInto
// recompute when a snapshot changes a large fraction of the edges.
// Published trees that rotate out of use are recycled through a free list,
// so steady-state ticking allocates nothing.
type mstPipeline struct {
	k, tau int
	g      *graph.Graph
	eps    []float64 // per-edge deterministic tie-break jitter
	cur    *graph.Tree
	jobs   []mstJob
	free   []*graph.Tree // retired published trees, reused as clone targets

	// work is the minimum spanning forest of the latest snapshot,
	// maintained incrementally between snapshots.
	work  *graph.Tree
	dsu   *graph.DSU
	order []int32

	chgID []int32 // scratch: edges whose weight changed this snapshot
	chgW  []float64
}

type mstJob struct {
	publishAt int
	tree      *graph.Tree
}

// epsScale bounds the tie-break jitter well below one activity quantum
// (1/ActivityWindow), so it only decides ties, never real differences.
const epsScale = 0.004

// fullRebuildFraction is the incremental-vs-full crossover: when a
// snapshot changes more than this fraction of the edges, one O(E) full
// recompute is cheaper than that many incremental updates (and doubles as
// the correctness fallback for pathological batches).
const fullRebuildFraction = 0.25

func newMSTPipeline(st *sim.State, cfg Config) *mstPipeline {
	g := st.Grid().AncillaGraph(cfg.ActivityFloor)
	m := &mstPipeline{
		k:   cfg.K,
		tau: cfg.TauMST,
		g:   g,
		eps: make([]float64, g.NumEdges()),
	}
	// Deterministic per-edge jitter: without it, the all-zero cold-start
	// weights make Kruskal produce a degenerate comb-shaped tree whose
	// paths between nearby tiles detour across the whole fabric. The
	// jitter yields a balanced pseudo-random spanning tree instead.
	for e := range m.eps {
		m.eps[e] = epsScale * splitmixUnit(uint64(e))
		g.SetWeight(e, m.eps[e])
	}
	// The initial tree is computed at compile time (all activities zero)
	// and available from cycle one.
	m.dsu = graph.NewDSU(g.NumVertices())
	m.order = make([]int32, g.NumEdges())
	m.work = graph.KruskalInto(g, nil, m.dsu, m.order)
	m.cur = m.work.CloneInto(nil)
	return m
}

// splitmixUnit hashes x into [0, 1) with the splitmix64 finalizer.
func splitmixUnit(x uint64) float64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// tick publishes any due computation and starts a new one every k cycles.
func (m *mstPipeline) tick(st *sim.State) {
	for len(m.jobs) > 0 && m.jobs[0].publishAt <= st.Cycle() {
		m.free = append(m.free, m.cur)
		m.cur = m.jobs[0].tree
		// Shift instead of reslicing: m.jobs = m.jobs[1:] would pin the
		// backing array's consumed head slots (and their trees) forever.
		n := copy(m.jobs, m.jobs[1:])
		m.jobs[n] = mstJob{}
		m.jobs = m.jobs[:n]
	}
	if (st.Cycle()-1)%m.k == 0 {
		m.refresh(st)
		var dst *graph.Tree
		if n := len(m.free); n > 0 {
			dst = m.free[n-1]
			m.free[n-1] = nil
			m.free = m.free[:n-1]
		}
		m.jobs = append(m.jobs, mstJob{
			publishAt: st.Cycle() + m.tau,
			tree:      m.work.CloneInto(dst),
		})
	}
}

// refresh applies the activity snapshot (paper section 4.2 / Figure 9:
// each edge weighs the max of its endpoints' sliding-window activity) to
// the working tree. Edges whose weight actually changed go through
// Tree.UpdateWeight one at a time; a batch above fullRebuildFraction of
// the graph triggers one full allocation-free recompute instead.
func (m *mstPipeline) refresh(st *sim.State) {
	m.chgID, m.chgW = m.chgID[:0], m.chgW[:0]
	for e := 0; e < m.g.NumEdges(); e++ {
		ed := m.g.Edge(e)
		w := st.Activity(ed.U)
		if a := st.Activity(ed.V); a > w {
			w = a
		}
		w += m.eps[e]
		if w != ed.W {
			m.chgID = append(m.chgID, int32(e))
			m.chgW = append(m.chgW, w)
		}
	}
	if len(m.chgID) > int(fullRebuildFraction*float64(m.g.NumEdges())) {
		for i, e := range m.chgID {
			m.g.SetWeight(int(e), m.chgW[i])
		}
		graph.KruskalInto(m.g, m.work, m.dsu, m.order)
		return
	}
	for i, e := range m.chgID {
		m.work.UpdateWeight(int(e), m.chgW[i])
	}
}

// current returns the latest published tree.
func (m *mstPipeline) current() *graph.Tree { return m.cur }
