package core

import (
	"math"

	"repro/internal/circuit"
	"repro/internal/lattice"
	"repro/internal/rus"
	"repro/internal/sim"
)

// gateState carries RESCQ's per-gate scheduling state — the Table 2
// metadata plus the routing plan produced at enqueue time.
type gateState struct {
	node int
	kind circuit.Kind
	done bool

	// ancs lists every ancilla (by ID) whose queue holds this gate.
	ancs []int

	// CNOT plan (Algorithm 1).
	control, target    int
	path               []lattice.Coord
	rotC, rotT         bool // edge rotations still required
	rotCBusy, rotTBusy bool
	opBusy             bool // the main op (CNOT / H) is in flight

	// Rz state.
	q          int
	angle      circuit.Angle // current required rotation; doubles on failure
	cands      []injCand
	injecting  bool
	needRotate bool // no viable injection geometry until the qubit rotates
	rotBusy    bool
}

// injCand is one way to deliver |m_theta> into the data qubit.
type injCand struct {
	prep   lattice.Coord
	helper lattice.Coord // X-edge routing ancilla; unused for ZZ
	kind   rus.InjectionKind
}

// plan builds the gateState for a newly ready node, including the CNOT
// routing decision and the Rz preparation-candidate set, and collects the
// ancilla queues the gate must join.
func (s *Scheduler) plan(st *sim.State, n int) *gateState {
	g := st.DAG().Gate(n)
	gs := &gateState{node: n, kind: g.Kind}
	switch g.Kind {
	case circuit.KindCNOT:
		gs.control, gs.target = g.Control(), g.Target()
		s.planCNOT(st, gs)
	case circuit.KindRz:
		gs.q, gs.angle = g.Qubit(), g.Angle
		s.planRz(st, gs)
	case circuit.KindH:
		gs.q = g.Qubit()
		s.planH(st, gs)
	}
	return gs
}

// planRz reserves, per paper section 4.1, every ancilla adjacent to the
// data qubit plus the diagonal ancillas reachable through an X-edge
// routing helper, and derives the injection candidates:
//   - each Z-edge neighbour supports the 1-cycle ZZ injection;
//   - each (diagonal, X-edge helper) pair supports the 2-cycle CNOT
//     injection.
//
// If the current orientation exposes no viable candidate (possible on
// heavily compressed grids), the gate first performs an edge rotation.
func (s *Scheduler) planRz(st *sim.State, gs *gateState) {
	grid := st.Grid()
	reserve := func(c lattice.Coord) {
		id := grid.AncillaID(c)
		if id >= 0 && !containsInt(gs.ancs, id) {
			gs.ancs = append(gs.ancs, id)
		}
	}
	s.nbrBufA = grid.AncillaNeighbors(grid.DataTile(gs.q), s.nbrBufA[:0])
	for _, c := range s.nbrBufA {
		reserve(c)
	}
	for _, c := range grid.DiagonalAncillas(gs.q) {
		reserve(c)
	}
	gs.cands = rzCandidates(grid, gs.q)
	gs.needRotate = len(gs.cands) == 0
}

// rzCandidates enumerates the injection options for qubit q under its
// current orientation.
func rzCandidates(grid *lattice.Grid, q int) []injCand {
	var cands []injCand
	for _, t := range grid.ZEdgeAncillas(q) {
		cands = append(cands, injCand{prep: t, kind: rus.InjectZZ})
	}
	dataTile := grid.DataTile(q)
	for _, helper := range grid.XEdgeAncillas(q) {
		for dir := lattice.North; dir <= lattice.West; dir++ {
			p := helper.Step(dir)
			if p == dataTile || grid.Kind(p) != lattice.TileAncilla {
				continue
			}
			// Preparation happens on the diagonal neighbours only (the
			// reserved set of section 4.1); tiles further out are not
			// enqueued and so cannot be used.
			dr, dc := p.Row-dataTile.Row, p.Col-dataTile.Col
			if dr*dr != 1 || dc*dc != 1 {
				continue
			}
			cands = append(cands, injCand{prep: p, helper: helper, kind: rus.InjectCNOT})
		}
	}
	return cands
}

// planH reserves all ancillas adjacent to the qubit; the Hadamard runs on
// whichever reaches the gate first.
func (s *Scheduler) planH(st *sim.State, gs *gateState) {
	grid := st.Grid()
	s.nbrBufA = grid.AncillaNeighbors(grid.DataTile(gs.q), s.nbrBufA[:0])
	for _, c := range s.nbrBufA {
		if id := grid.AncillaID(c); id >= 0 {
			gs.ancs = append(gs.ancs, id)
		}
	}
}

// pathLenPenalty is the expected extra wait per reserved path tile used in
// Algorithm 1's completion estimate.
const pathLenPenalty = 0.3

// planCNOT is Algorithm 1: consider every (control-neighbour,
// target-neighbour) ancilla pair — up to 16 — route between them on the
// latest published MST, estimate the completion time from the expected
// free times of the path's ancillas plus 3 cycles per required edge
// rotation, and keep the best plan.
func (s *Scheduler) planCNOT(st *sim.State, gs *gateState) {
	if s.cfg.DisableMSTRouting {
		s.planCNOTShortest(st, gs)
		return
	}
	grid := st.Grid()
	tree := s.mst.current()
	s.efEpoch++ // new planning pass: invalidate the expectedFree memo

	s.nbrBufA = grid.AncillaNeighbors(grid.DataTile(gs.control), s.nbrBufA[:0])
	s.nbrBufB = grid.AncillaNeighbors(grid.DataTile(gs.target), s.nbrBufB[:0])
	cNbrs, tNbrs := s.nbrBufA, s.nbrBufB
	zDirs := grid.ZEdgeDirs(gs.control)
	xDirs := grid.XEdgeDirs(gs.target)
	cTile := grid.DataTile(gs.control)
	tTile := grid.DataTile(gs.target)

	best := math.Inf(1)
	bestLen := math.MaxInt
	for _, eC := range cNbrs {
		rotC := eC != cTile.Step(zDirs[0]) && eC != cTile.Step(zDirs[1])
		u := grid.AncillaID(eC)
		for _, eT := range tNbrs {
			rotT := eT != tTile.Step(xDirs[0]) && eT != tTile.Step(xDirs[1])
			v := grid.AncillaID(eT)
			ids := tree.PathInto(s.pathBuf, u, v)
			s.pathBuf = ids[:0]
			if ids == nil {
				continue
			}
			start := 0.0
			for _, id := range ids {
				if f := s.expectedFree(st, id); f > start {
					start = f
				}
			}
			if rotC {
				if f := s.expectedFree(st, u) + sim.EdgeRotationCycles; f > start {
					start = f
				}
			}
			if rotT {
				if f := s.expectedFree(st, v) + sim.EdgeRotationCycles; f > start {
					start = f
				}
			}
			// Expected completion (paper section 4.2):
			// 3*rC + 3*rT + E[tau_CNOT] + max free time, plus a small
			// per-tile term: a longer reservation has a lower chance of
			// finding all its ancillas simultaneously free, so expected
			// wait grows with path length.
			score := start + sim.CNOTCycles + pathLenPenalty*float64(len(ids))
			if rotC {
				score += sim.EdgeRotationCycles
			}
			if rotT {
				score += sim.EdgeRotationCycles
			}
			if score < best || (score == best && len(ids) < bestLen) {
				best, bestLen = score, len(ids)
				gs.rotC, gs.rotT = rotC, rotT
				gs.path = gs.path[:0]
				for _, id := range ids {
					gs.path = append(gs.path, grid.AncillaTile(id))
				}
			}
		}
	}
	if gs.path == nil {
		// The ancilla network is connected by construction, so every
		// neighbour pair yields a tree path; reaching here means the
		// data qubit lost all neighbours, which Compress forbids.
		panic("core: no CNOT plan found")
	}
	collectPathAncs(grid, gs)
}

// collectPathAncs fills gs.ancs with the distinct ancilla IDs along
// gs.path. Paths are short, so a linear containment scan beats a map.
func collectPathAncs(grid *lattice.Grid, gs *gateState) {
	for _, c := range gs.path {
		id := grid.AncillaID(c)
		if !containsInt(gs.ancs, id) {
			gs.ancs = append(gs.ancs, id)
		}
	}
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// planCNOTShortest is the DisableMSTRouting ablation: pick the plain BFS
// shortest path between the control's Z edge and the target's X edge with
// no activity information, adding edge rotations only when an edge exposes
// no ancilla.
func (s *Scheduler) planCNOTShortest(st *sim.State, gs *gateState) {
	grid := st.Grid()
	srcs := grid.ZEdgeAncillas(gs.control)
	if len(srcs) == 0 {
		gs.rotC = true
		s.nbrBufA = grid.AncillaNeighbors(grid.DataTile(gs.control), s.nbrBufA[:0])
		srcs = s.nbrBufA
	}
	dsts := grid.XEdgeAncillas(gs.target)
	if len(dsts) == 0 {
		gs.rotT = true
		s.nbrBufB = grid.AncillaNeighbors(grid.DataTile(gs.target), s.nbrBufB[:0])
		dsts = s.nbrBufB
	}
	path := grid.ShortestAncillaPath(srcs, dsts, nil)
	if path == nil {
		panic("core: no shortest-path CNOT plan found")
	}
	gs.path = path
	collectPathAncs(grid, gs)
}

// expectedFree estimates when ancilla anc will be free: the expected
// remaining time of its current op plus the expected cost of every queued
// gate (paper: E[f_a] = sum over queue of E[tau_o]). The estimate is
// memoized per planning pass (see efEpoch): planCNOT scores up to 16
// candidate paths that revisit the same ancillas, and nothing starts or
// finishes between those scores, so one computation per ancilla suffices.
func (s *Scheduler) expectedFree(st *sim.State, anc int) float64 {
	if s.efMark[anc] == s.efEpoch {
		return s.efVal[anc]
	}
	grid := st.Grid()
	tile := grid.AncillaTile(anc)
	est := 0.0
	if op := st.TileOp(tile); op != nil {
		est += op.ExpectedRemaining(st.PrepExpectedCycles())
	}
	prepCost := st.PrepExpectedCycles() + 2 // prep + injection estimate
	for _, n := range s.queues.q[anc] {
		gs := s.gates[n]
		if gs == nil {
			continue
		}
		switch gs.kind {
		case circuit.KindCNOT:
			est += sim.CNOTCycles
			if gs.rotC || gs.rotT {
				est += sim.EdgeRotationCycles
			}
		case circuit.KindRz:
			est += prepCost
		case circuit.KindH:
			est += sim.HadamardCycles
		}
	}
	s.efMark[anc] = s.efEpoch
	s.efVal[anc] = est
	return est
}
