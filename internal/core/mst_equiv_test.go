package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/lattice"
	"repro/internal/qbench"
	"repro/internal/sim"
)

// mstAuditor wraps the RESCQ scheduler and, on sampled cycles of a real
// simulation, cross-checks the pipeline's incrementally maintained working
// tree against a from-scratch Kruskal over the same live weights: the two
// must agree on total weight and on minimax path bottlenecks. This is the
// in-situ half of the incremental-MST equivalence guarantee (the graph
// package holds the randomized-sequence half).
type mstAuditor struct {
	*Scheduler
	t      *testing.T
	checks int
}

func (a *mstAuditor) OnCycle(st *sim.State) {
	a.Scheduler.OnCycle(st)
	m := a.Scheduler.mst
	if m == nil || st.Cycle()%13 != 0 {
		return
	}
	full := graph.Kruskal(m.g)
	if iw, fw := m.work.TotalWeight(), full.TotalWeight(); math.Abs(iw-fw) > 1e-9 {
		a.t.Errorf("cycle %d: incremental MST weight %v != full Kruskal %v", st.Cycle(), iw, fw)
	}
	n := m.g.NumVertices()
	for i := 0; i < 8; i++ {
		u := int(splitmixUnit(uint64(st.Cycle()*8+i)) * float64(n))
		v := int(splitmixUnit(uint64(st.Cycle()*8+i+1)) * float64(n))
		if u >= n || v >= n {
			continue
		}
		bi, oki := m.work.Bottleneck(u, v)
		bf, okf := full.Bottleneck(u, v)
		if oki != okf {
			a.t.Fatalf("cycle %d: connectivity(%d,%d) differs", st.Cycle(), u, v)
		}
		if oki && math.Abs(bi-bf) > 1e-12 {
			a.t.Errorf("cycle %d: bottleneck(%d,%d) %v != %v", st.Cycle(), u, v, bi, bf)
		}
	}
	a.checks++
}

func TestPipelinePublishesKruskalEquivalentTrees(t *testing.T) {
	spec, ok := qbench.ByName("gcm_n13")
	if !ok {
		t.Fatal("missing benchmark gcm_n13")
	}
	circ := spec.Circuit()
	g := lattice.NewSTARGrid(circ.NumQubits)
	aud := &mstAuditor{Scheduler: New(DefaultConfig()).(*Scheduler), t: t}
	if _, err := sim.RunSeeded(g, circ, cfg(), 5, aud); err != nil {
		t.Fatalf("run: %v", err)
	}
	if aud.checks == 0 {
		t.Fatal("auditor never sampled a cycle")
	}
}
