package core

import (
	"repro/internal/circuit"
	"repro/internal/lattice"
	"repro/internal/rus"
	"repro/internal/sim"
)

// drive.go advances each live gate one scheduling step per cycle and
// handles op completions: the realtime half of RESCQ.

// defaultMaxParallelPreps bounds how many ancillas one Rz gate prepares on
// simultaneously. Preparation at the paper's operating points succeeds
// within one or two attempts, so two parallel attempts already make the
// first-cycle success probability ~95%+; reserving more starves
// neighbouring gates (paper sections 1 and 3.2).
const defaultMaxParallelPreps = 2

// driveCNOT performs pending edge rotations as soon as their endpoint
// ancilla reaches the gate, then fires the 2-cycle surgery once every path
// ancilla is simultaneously free with this gate at its queue head.
func (s *Scheduler) driveCNOT(st *sim.State, gs *gateState) {
	if gs.opBusy {
		return
	}
	head := gs.path[0]
	tail := gs.path[len(gs.path)-1]
	if gs.rotC && !gs.rotCBusy && st.QubitFree(gs.control) &&
		s.tileReady(st, head, gs.node) {
		if _, err := st.StartEdgeRotation(gs.node, gs.control, head); err == nil {
			gs.rotCBusy = true
		}
	}
	if gs.rotT && !gs.rotTBusy && st.QubitFree(gs.target) &&
		s.tileReady(st, tail, gs.node) {
		if _, err := st.StartEdgeRotation(gs.node, gs.target, tail); err == nil {
			gs.rotTBusy = true
		}
	}
	if gs.rotC || gs.rotT {
		return
	}
	if !st.QubitFree(gs.control) || !st.QubitFree(gs.target) {
		return
	}
	for _, c := range gs.path {
		if !s.tileReady(st, c, gs.node) {
			return
		}
	}
	if _, err := st.StartCNOT(gs.node, gs.control, gs.target, gs.path); err == nil {
		gs.opBusy = true
	}
}

// tileReady reports whether tile c is free and the gate owns the head of
// its queue.
func (s *Scheduler) tileReady(st *sim.State, c lattice.Coord, node int) bool {
	if !st.TileFree(c) {
		return false
	}
	id := st.Grid().AncillaID(c)
	return id >= 0 && s.queues.head(id) == node
}

// driveRz runs the parallel-preparation protocol: start (or retarget)
// preparations on every candidate tile the gate currently heads, and
// inject as soon as a matching state is parked and the data qubit plus any
// routing helper are available. While an injection of angle a is in
// flight, the other candidates prepare the correction state |m_2a> —
// the paper's eager in-place queue rewrite.
func (s *Scheduler) driveRz(st *sim.State, gs *gateState) {
	if gs.needRotate {
		s.driveRzRotation(st, gs)
		return
	}
	desired := gs.angle
	if gs.injecting {
		if s.cfg.DisableEagerPrep {
			return // ablation: no correction-state preparation in flight
		}
		desired = gs.angle.Double()
	}
	if !desired.IsClifford() {
		// Count this gate's useful preparations and clear stale ones.
		// Over-provisioning is capped: "allocating excessive ancilla for
		// a single gate operation will starve ancillas for neighbouring
		// gate operations" (paper section 1), and assigned ancillas are
		// reclaimed when redundant (section 3.2).
		active := 0
		for _, cand := range gs.cands {
			op := st.TileOp(cand.prep)
			if op == nil || op.Kind != sim.OpPrep || op.Node != gs.node {
				continue
			}
			if op.Angle.Equal(desired) {
				active++
				continue
			}
			// Stale target: rewrite in place (discard/cancel, restart at
			// the doubled angle below).
			if op.Prepared() {
				_ = st.DiscardPrepared(cand.prep)
			} else {
				_ = st.CancelPrep(cand.prep)
			}
		}
		for _, cand := range gs.cands {
			if active >= s.cfg.MaxParallelPreps {
				break
			}
			if st.TileOp(cand.prep) == nil && s.tileReady(st, cand.prep, gs.node) {
				if _, err := st.StartPrep(gs.node, cand.prep, desired); err == nil {
					active++
				}
			}
		}
	}
	if !gs.injecting {
		s.tryInject(st, gs)
	}
}

// driveRzRotation handles the no-viable-geometry fallback: rotate the data
// qubit using the first reserved ancilla that reaches the gate.
func (s *Scheduler) driveRzRotation(st *sim.State, gs *gateState) {
	if gs.rotBusy || !st.QubitFree(gs.q) {
		return
	}
	grid := st.Grid()
	s.nbrBufA = grid.AncillaNeighbors(grid.DataTile(gs.q), s.nbrBufA[:0])
	for _, c := range s.nbrBufA {
		if s.tileReady(st, c, gs.node) {
			if _, err := st.StartEdgeRotation(gs.node, gs.q, c); err == nil {
				gs.rotBusy = true
				return
			}
		}
	}
}

// tryInject starts an injection if a prepared |m_angle> is parked on some
// candidate and the geometry's resources are available.
func (s *Scheduler) tryInject(st *sim.State, gs *gateState) {
	if gs.injecting || gs.needRotate || !st.QubitFree(gs.q) {
		return
	}
	for _, cand := range gs.cands {
		op := st.TileOp(cand.prep)
		if op == nil || op.Kind != sim.OpPrep || op.Node != gs.node ||
			!op.Prepared() || !op.Angle.Equal(gs.angle) {
			continue
		}
		if cand.kind == rus.InjectCNOT && !s.tileReady(st, cand.helper, gs.node) {
			continue
		}
		if _, err := st.StartInjection(gs.node, gs.q, cand.prep, cand.kind, cand.helper, gs.angle); err == nil {
			gs.injecting = true
			return
		}
	}
}

// driveH fires the Hadamard on the first reserved ancilla that reaches the
// gate.
func (s *Scheduler) driveH(st *sim.State, gs *gateState) {
	if gs.opBusy || !st.QubitFree(gs.q) {
		return
	}
	grid := st.Grid()
	s.nbrBufA = grid.AncillaNeighbors(grid.DataTile(gs.q), s.nbrBufA[:0])
	for _, c := range s.nbrBufA {
		if s.tileReady(st, c, gs.node) {
			if _, err := st.StartHadamard(gs.node, gs.q, c); err == nil {
				gs.opBusy = true
				return
			}
		}
	}
}

// rotationDone clears rotation flags and, for the Rz fallback, recomputes
// the injection candidates under the new orientation.
func (s *Scheduler) rotationDone(st *sim.State, gs *gateState, op *sim.Op) {
	switch gs.kind {
	case circuit.KindCNOT:
		if op.Qubits[0] == gs.control {
			gs.rotC, gs.rotCBusy = false, false
		} else {
			gs.rotT, gs.rotTBusy = false, false
		}
	case circuit.KindRz:
		gs.rotBusy = false
		gs.cands = rzCandidates(st.Grid(), gs.q)
		gs.needRotate = len(gs.cands) == 0
		// If even the flipped orientation offers nothing the fabric is
		// unusable for this qubit; Compress guarantees this cannot
		// happen, but rotating back keeps the scheduler live regardless.
	}
}

// injectionDone resolves the coin flip: success completes the gate (all
// remaining preparations are dropped); failure doubles the required angle
// — if the doubled angle is Clifford the correction is free and the gate
// completes, otherwise the eager |m_2a> preparations keep the retry chain
// moving.
func (s *Scheduler) injectionDone(st *sim.State, gs *gateState, success bool) {
	gs.injecting = false
	if success {
		s.complete(st, gs)
		return
	}
	gs.angle = gs.angle.Double()
	if gs.angle.IsClifford() {
		s.complete(st, gs)
		return
	}
	// Retry immediately if an eager correction state is already parked.
	s.tryInject(st, gs)
}
