package core

import (
	"fmt"
	"testing"

	"repro/internal/circuit"
	"repro/internal/lattice"
	"repro/internal/qbench"
	"repro/internal/sim"
)

func TestDebugQAOAFSwap(t *testing.T) {
	spec, _ := qbench.ByName("qaoafswap_n15")
	c := spec.Circuit()
	g := lattice.NewSTARGrid(c.NumQubits)
	dag := circuit.NewDAG(c)
	scfg := sim.Config{Distance: 7, PhysError: 1e-4, StallLimit: 2000}
	s := New(DefaultConfig()).(*Scheduler)
	eng := sim.NewEngine(g, dag, scfg, 0, s)
	_, err := eng.Run()
	if err == nil {
		t.Skip("no stall")
	}
	st := eng.State()
	fmt.Println("ERR:", err)
	count := 0
	for _, n := range s.live {
		gs := s.gates[n]
		if gs == nil || gs.done {
			continue
		}
		count++
		if count > 8 {
			break
		}
		gate := dag.Gate(n)
		fmt.Printf("node %d %v status=%v gs={rotC:%v rotT:%v rotCBusy:%v rotTBusy:%v opBusy:%v inj:%v needRot:%v angle:%v path:%v}\n",
			n, gate, st.Status(n), gs.rotC, gs.rotT, gs.rotCBusy, gs.rotTBusy, gs.opBusy, gs.injecting, gs.needRotate, gs.angle, gs.path)
		if gs.kind == circuit.KindCNOT {
			for _, tc := range gs.path {
				id := st.Grid().AncillaID(tc)
				fmt.Printf("   tile %v free=%v head=%d queue=%v op=%v\n", tc, st.TileFree(tc), s.queues.head(id), s.queues.q[id], st.TileOp(tc))
			}
			fmt.Printf("   qubits free: c=%v t=%v orientC=%v orientT=%v\n", st.QubitFree(gs.control), st.QubitFree(gs.target), st.Grid().Orientation(gs.control), st.Grid().Orientation(gs.target))
		}
		if gs.kind == circuit.KindRz {
			fmt.Printf("   qubit %d free=%v cands=%v\n", gs.q, st.QubitFree(gs.q), gs.cands)
			for _, cand := range gs.cands {
				id := st.Grid().AncillaID(cand.prep)
				fmt.Printf("   cand prep %v free=%v head=%d op=%v\n", cand.prep, st.TileFree(cand.prep), s.queues.head(id), st.TileOp(cand.prep))
			}
		}
	}
}
