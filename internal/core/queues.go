package core

// queueSet maintains one FIFO gate queue per ancilla tile (the "Q" in
// RESCQ). Gates are appended when they become ready — seniority order — and
// a gate may act on an ancilla only while at the head of its queue, which
// serializes contention without races (paper section 4.1).
type queueSet struct {
	q [][]int
}

func newQueueSet(numAncilla int) *queueSet {
	return &queueSet{q: make([][]int, numAncilla)}
}

// enqueue appends node to ancilla anc's queue.
func (qs *queueSet) enqueue(anc, node int) {
	qs.q[anc] = append(qs.q[anc], node)
}

// head returns the node at the head of anc's queue, or -1 if empty.
func (qs *queueSet) head(anc int) int {
	if len(qs.q[anc]) == 0 {
		return -1
	}
	return qs.q[anc][0]
}

// remove deletes node from anc's queue wherever it sits.
func (qs *queueSet) remove(anc, node int) {
	q := qs.q[anc]
	for i, n := range q {
		if n == node {
			qs.q[anc] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// lenAt returns the queue length of ancilla anc — the paper's proxy for
// contention when choosing among candidate preparation ancillas.
func (qs *queueSet) lenAt(anc int) int { return len(qs.q[anc]) }

// contains reports whether node is queued on anc.
func (qs *queueSet) contains(anc, node int) bool {
	for _, n := range qs.q[anc] {
		if n == node {
			return true
		}
	}
	return false
}
