// Package core implements RESCQ, the paper's realtime scheduler for
// continuous-angle QEC architectures. RESCQ is built on the two data
// structures the name abbreviates (paper section 4):
//
//   - a Rescheduled, activity-weighted minimum spanning tree over the
//     ancilla network, recomputed every K cycles with a modeled
//     computation latency TauMST — so routing always uses a slightly
//     stale tree, exactly like Figure 8's pipeline — and used to pick
//     minimax-bottleneck CNOT paths (Algorithm 1);
//   - a Queue per ancilla tile holding the gates that reserved it, with
//     per-gate metadata (Table 2). A gate acts on an ancilla only while
//     it is at the head of that ancilla's queue, which makes resource
//     allocation race-free and ordered by seniority.
//
// Rz gates are enqueued preemptively on every viable preparation ancilla
// (Z-edge neighbours for ZZ injection, diagonal neighbours routed through
// an X-edge helper for CNOT injection); all of them prepare |m_theta> in
// parallel, and the moment one preparation succeeds the others are
// rewritten in place to the doubled correction angle so a failed injection
// can retry immediately (Figure 1e / Figure 7).
package core

import (
	"repro/internal/circuit"
	"repro/internal/lattice"
	"repro/internal/sched"
	"repro/internal/sim"
)

// init publishes RESCQ in the open scheduler registry next to the static
// baselines, so every scheduler-selection surface (rescq.Options, the
// experiment drivers, the sweep daemon, the CLIs) resolves it by name.
func init() {
	sched.Register("rescq", func(p sched.Params) (sim.Scheduler, error) {
		return New(Config{K: p.K, TauMST: p.TauMST}), nil
	})
}

// Config tunes RESCQ's classical-control model.
type Config struct {
	// K is the MST recomputation period in lattice-surgery cycles
	// (paper sweeps 25, 50, 100, 200). Default 25.
	K int
	// TauMST is the modeled MST computation latency in cycles: a tree
	// snapshotted at cycle t becomes usable at t+TauMST (paper: ~100).
	TauMST int
	// ActivityFloor is added to every edge weight so that zero-activity
	// regions still break ties deterministically. Default 0.
	ActivityFloor float64

	// The remaining fields are ablation switches used by the ablation
	// study (they each disable one of RESCQ's mechanisms).

	// MaxParallelPreps overrides how many ancillas one Rz prepares on
	// simultaneously; 0 means the default (2), 1 disables parallel
	// preparation (the baseline protocol's single attempt).
	MaxParallelPreps int
	// DisableEagerPrep stops candidates from preparing the doubled
	// correction state while an injection is in flight.
	DisableEagerPrep bool
	// DisableMSTRouting replaces Algorithm 1's MST paths with plain BFS
	// shortest paths (no activity awareness).
	DisableMSTRouting bool
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 25
	}
	if c.TauMST < 0 {
		c.TauMST = 0
	} else if c.TauMST == 0 {
		c.TauMST = 100
	}
	if c.MaxParallelPreps <= 0 {
		c.MaxParallelPreps = defaultMaxParallelPreps
	}
	return c
}

// DefaultConfig returns the paper's operating point: K=25, TauMST=100.
func DefaultConfig() Config { return Config{}.withDefaults() }

// New returns a RESCQ scheduler instance.
func New(cfg Config) sim.Scheduler {
	return &Scheduler{cfg: cfg.withDefaults()}
}

// Scheduler is the RESCQ realtime scheduler. It implements sim.Scheduler.
type Scheduler struct {
	cfg Config

	queues *queueSet
	mst    *mstPipeline

	gates   []*gateState // node -> live gate state, nil once completed
	live    []int        // live node ids in enqueue order
	pending []int        // ready nodes awaiting planning/enqueue
	staged  []bool       // node already staged for enqueue (dedup guard)

	// expectedFree memoization, valid within one planning pass: efMark[anc]
	// == efEpoch means efVal[anc] holds this pass's estimate.
	efVal   []float64
	efMark  []int32
	efEpoch int32

	pathBuf []int // reused by planCNOT's tree path queries

	// nbrBufA/nbrBufB are reused by the per-cycle drive steps and the
	// planners for AncillaNeighbors queries (two, because planCNOT needs
	// the control and target neighbour sets alive at the same time).
	nbrBufA, nbrBufB []lattice.Coord
}

// Name implements sim.Scheduler.
func (s *Scheduler) Name() string { return "rescq" }

// Init implements sim.Scheduler.
func (s *Scheduler) Init(st *sim.State) error {
	dag := st.DAG()
	s.queues = newQueueSet(st.Grid().NumAncilla())
	s.mst = newMSTPipeline(st, s.cfg)
	s.gates = make([]*gateState, dag.Len())
	s.staged = make([]bool, dag.Len())
	s.efVal = make([]float64, st.Grid().NumAncilla())
	s.efMark = make([]int32, st.Grid().NumAncilla())
	s.efEpoch = 0
	for n := 0; n < dag.Len(); n++ {
		if st.Status(n) == sim.GateReady {
			s.staged[n] = true
			s.pending = append(s.pending, n)
		}
	}
	return nil
}

// OnCycle implements sim.Scheduler.
func (s *Scheduler) OnCycle(st *sim.State) {
	s.mst.tick(st)
	s.enqueuePending(st)
	s.drive(st)
}

// enqueuePending plans newly ready gates and installs them in the ancilla
// queues, highest critical-path height first (Figure 7 caption).
func (s *Scheduler) enqueuePending(st *sim.State) {
	if len(s.pending) == 0 {
		return
	}
	dag := st.DAG()
	// Insertion sort: the pending set is small most cycles, and this
	// avoids sort.Slice's per-call closure and swapper allocations.
	less := func(a, b int) bool {
		ha, hb := dag.Height(a), dag.Height(b)
		if ha != hb {
			return ha > hb
		}
		return a < b
	}
	for i := 1; i < len(s.pending); i++ {
		for j := i; j > 0 && less(s.pending[j], s.pending[j-1]); j-- {
			s.pending[j], s.pending[j-1] = s.pending[j-1], s.pending[j]
		}
	}
	for _, n := range s.pending {
		gs := s.plan(st, n)
		s.gates[n] = gs
		s.live = append(s.live, n)
		for _, anc := range gs.ancs {
			s.queues.enqueue(anc, n)
		}
	}
	s.pending = s.pending[:0]
}

// drive advances every live gate's state machine by one scheduling step.
func (s *Scheduler) drive(st *sim.State) {
	w := 0
	for _, n := range s.live {
		gs := s.gates[n]
		if gs == nil || gs.done {
			continue // completed; compact away
		}
		s.live[w] = n
		w++
		switch gs.kind {
		case circuit.KindCNOT:
			s.driveCNOT(st, gs)
		case circuit.KindRz:
			s.driveRz(st, gs)
		case circuit.KindH:
			s.driveH(st, gs)
		}
	}
	s.live = s.live[:w]
}

// OnOpDone implements sim.Scheduler.
func (s *Scheduler) OnOpDone(st *sim.State, op *sim.Op, success bool) {
	if op.Node < 0 {
		return // helper op not attributed to a gate
	}
	gs := s.gates[op.Node]
	if gs == nil || gs.done {
		return
	}
	switch op.Kind {
	case sim.OpCNOT:
		s.complete(st, gs)
	case sim.OpHadamard:
		s.complete(st, gs)
	case sim.OpEdgeRotation:
		s.rotationDone(st, gs, op)
	case sim.OpPrep:
		if gs.kind == circuit.KindRz {
			s.tryInject(st, gs)
		}
	case sim.OpInjection:
		s.injectionDone(st, gs, success)
	}
}

// complete finishes a gate: release queue slots, drop any outstanding
// preparations, report completion, and stage newly-ready successors.
func (s *Scheduler) complete(st *sim.State, gs *gateState) {
	gs.done = true
	for _, anc := range gs.ancs {
		s.queues.remove(anc, gs.node)
	}
	if gs.kind == circuit.KindRz {
		s.dropPreps(st, gs, circuit.Angle{}, true)
	}
	st.CompleteGate(gs.node)
	s.gates[gs.node] = nil
	for _, succ := range st.DAG().Succ(gs.node) {
		if st.Status(succ) == sim.GateReady && !s.staged[succ] {
			s.staged[succ] = true
			s.pending = append(s.pending, succ)
		}
	}
}

// dropPreps cancels in-progress and discards parked preparations belonging
// to gs. When all is false, preparations whose angle equals keep survive.
func (s *Scheduler) dropPreps(st *sim.State, gs *gateState, keep circuit.Angle, all bool) {
	for _, cand := range gs.cands {
		op := st.TileOp(cand.prep)
		if op == nil || op.Kind != sim.OpPrep || op.Node != gs.node {
			continue
		}
		if !all && op.Angle.Equal(keep) {
			continue
		}
		if op.Prepared() {
			_ = st.DiscardPrepared(cand.prep)
		} else {
			_ = st.CancelPrep(cand.prep)
		}
	}
}
