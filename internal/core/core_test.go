package core

import (
	mathrand "math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/lattice"
	"repro/internal/qbench"
	"repro/internal/sched"
	"repro/internal/sim"
)

func cfg() sim.Config { return sim.Config{Distance: 7, PhysError: 1e-4} }

func runOn(t *testing.T, c *circuit.Circuit, seed int64) *sim.Result {
	t.Helper()
	g := lattice.NewSTARGrid(c.NumQubits)
	res, err := sim.RunSeeded(g, c, cfg(), seed, New(DefaultConfig()))
	if err != nil {
		t.Fatalf("rescq on %s: %v", c.Name, err)
	}
	return res
}

func TestSingleCNOT(t *testing.T) {
	c := circuit.New("one-cnot", 4)
	c.CNOT(0, 1)
	res := runOn(t, c, 1)
	if res.TotalCycles != 2 {
		t.Errorf("single CNOT took %d cycles, want 2", res.TotalCycles)
	}
}

func TestSingleRz(t *testing.T) {
	c := circuit.New("one-rz", 4)
	c.Rz(0, circuit.NewAngle(5, 96))
	res := runOn(t, c, 3)
	if len(res.RzLatencies) != 1 {
		t.Fatalf("RzLatencies = %v", res.RzLatencies)
	}
	if res.PrepsStarted < 1 {
		t.Error("expected at least one preparation")
	}
}

func TestParallelPreparationUsesMultipleAncillas(t *testing.T) {
	// A single Rz on an interior qubit has several candidates; RESCQ
	// should start preparations on more than one of them in cycle 1.
	c := circuit.New("one-rz", 9)
	c.Rz(4, circuit.NewAngle(5, 96)) // interior qubit of a 3x3 block grid
	var maxSimultaneous int
	for seed := int64(0); seed < 10; seed++ {
		res := runOn(t, c, seed)
		if res.PrepsStarted > maxSimultaneous {
			maxSimultaneous = res.PrepsStarted
		}
	}
	if maxSimultaneous < 2 {
		t.Errorf("parallel preparation never used more than %d ancillas", maxSimultaneous)
	}
}

func TestChainCompletes(t *testing.T) {
	c := circuit.New("chain", 6)
	c.H(0)
	c.CNOT(0, 1)
	c.Rz(1, circuit.NewAngle(5, 96))
	c.CNOT(1, 2)
	c.CNOT(2, 5)
	c.Rz(5, circuit.NewAngle(7, 96))
	res := runOn(t, c, 11)
	if res.TotalCycles <= 0 {
		t.Fatal("nonpositive cycles")
	}
	if len(res.CNOTLatencies) != 3 || len(res.RzLatencies) != 2 {
		t.Errorf("latency counts CNOT=%d Rz=%d", len(res.CNOTLatencies), len(res.RzLatencies))
	}
}

func TestRunsSmallSuite(t *testing.T) {
	for _, name := range []string{"vqe_n13", "qaoa_n15", "wstate_n27", "qft_n18"} {
		spec, ok := qbench.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		circ := spec.Circuit()
		res := runOn(t, circ, 7)
		want := circ.Stats()
		if len(res.CNOTLatencies) != want.CNOT {
			t.Errorf("%s: %d CNOT latencies, want %d", name, len(res.CNOTLatencies), want.CNOT)
		}
		if len(res.RzLatencies) != want.Rz {
			t.Errorf("%s: %d Rz latencies, want %d", name, len(res.RzLatencies), want.Rz)
		}
	}
}

func TestDifferentKValues(t *testing.T) {
	spec, _ := qbench.ByName("vqe_n13")
	for _, k := range []int{25, 50, 100, 200} {
		g := lattice.NewSTARGrid(spec.Qubits)
		res, err := sim.RunSeeded(g, spec.Circuit(), cfg(), 3, New(Config{K: k}))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.TotalCycles <= 0 {
			t.Errorf("k=%d: nonpositive cycles", k)
		}
	}
}

func TestCompressedGridStillCompletes(t *testing.T) {
	spec, _ := qbench.ByName("vqe_n13")
	c := spec.Circuit()
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		g := lattice.NewSTARGrid(c.NumQubits)
		g.Compress(frac, mathrand.New(mathrand.NewSource(13)))
		res, err := sim.RunSeeded(g, c, cfg(), 5, New(DefaultConfig()))
		if err != nil {
			t.Fatalf("compression %v: %v", frac, err)
		}
		if res.TotalCycles <= 0 {
			t.Errorf("compression %v: nonpositive cycles", frac)
		}
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	spec, _ := qbench.ByName("qaoa_n15")
	a := runOn(t, spec.Circuit(), 21)
	b := runOn(t, spec.Circuit(), 21)
	if a.TotalCycles != b.TotalCycles || a.PrepsStarted != b.PrepsStarted {
		t.Errorf("same seed diverged: %d/%d vs %d/%d",
			a.TotalCycles, a.PrepsStarted, b.TotalCycles, b.PrepsStarted)
	}
}

func TestBeatsBaselineOnRzHeavyCircuit(t *testing.T) {
	// The headline claim, in miniature: on an Rz-dense benchmark RESCQ
	// should beat the static greedy baseline.
	spec, _ := qbench.ByName("vqe_n13")
	var rescqSum, greedySum float64
	for seed := int64(0); seed < 3; seed++ {
		g1 := lattice.NewSTARGrid(spec.Qubits)
		r1, err := sim.RunSeeded(g1, spec.Circuit(), cfg(), seed, New(DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		g2 := lattice.NewSTARGrid(spec.Qubits)
		r2, err := sim.RunSeeded(g2, spec.Circuit(), cfg(), seed, sched.NewGreedy())
		if err != nil {
			t.Fatal(err)
		}
		rescqSum += float64(r1.TotalCycles)
		greedySum += float64(r2.TotalCycles)
	}
	if rescqSum >= greedySum {
		t.Errorf("RESCQ (%v total cycles) did not beat greedy (%v)", rescqSum, greedySum)
	}
}

func TestQueueSet(t *testing.T) {
	qs := newQueueSet(3)
	qs.enqueue(0, 10)
	qs.enqueue(0, 11)
	qs.enqueue(1, 11)
	if qs.head(0) != 10 || qs.head(1) != 11 || qs.head(2) != -1 {
		t.Errorf("heads = %d,%d,%d", qs.head(0), qs.head(1), qs.head(2))
	}
	if !qs.contains(0, 11) || qs.contains(2, 11) {
		t.Error("contains wrong")
	}
	if qs.lenAt(0) != 2 {
		t.Errorf("lenAt(0) = %d", qs.lenAt(0))
	}
	qs.remove(0, 10)
	if qs.head(0) != 11 {
		t.Errorf("head after remove = %d", qs.head(0))
	}
	qs.remove(0, 99) // absent: no-op
	if qs.lenAt(0) != 1 {
		t.Errorf("lenAt after bogus remove = %d", qs.lenAt(0))
	}
}

func TestMSTPipelineStaleness(t *testing.T) {
	// With K=5 and TauMST=7, the tree published at cycle 8 is the one
	// snapshotted at cycle 1.
	spec, _ := qbench.ByName("vqe_n13")
	g := lattice.NewSTARGrid(spec.Qubits)
	dag := circuit.NewDAG(spec.Circuit())
	eng := sim.NewEngine(g, dag, cfg(), 1, New(Config{K: 5, TauMST: 7}))
	// Run briefly by driving cycles through the engine's Run with a cap.
	// Simpler: full run must still succeed with aggressive staleness.
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEagerCorrectionPreparation(t *testing.T) {
	// With a non-dyadic angle, every injection failure needs |m_2a>.
	// Eager preparation means the preparation count exceeds the
	// injection count only modestly; without eager prep, failures would
	// serialize. We assert the run completes with at least as many preps
	// as injections (multiple candidates prepare in parallel).
	c := circuit.New("rz-fails", 9)
	c.Rz(4, circuit.NewAngle(5, 96))
	res := runOn(t, c, 2)
	if res.PrepsStarted < res.InjectionsStarted {
		t.Errorf("preps %d < injections %d: parallel prep not happening",
			res.PrepsStarted, res.InjectionsStarted)
	}
}
