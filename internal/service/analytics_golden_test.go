package service

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	rescq "repro"
	"repro/internal/config"
	"repro/internal/store"
)

var update = flag.Bool("update", false, "rewrite the analytics WAL fixture and query goldens under testdata/")

// The golden-query harness: a checked-in multi-axis WAL (testdata/
// analytics_wal.jsonl) is replayed into a fresh daemon, the analytics
// endpoints are queried over HTTP, and every response must match its
// golden byte for byte. The fixture spans two tenants, two benchmarks,
// three schedulers, two layouts, two compressions and an error result,
// so the goldens pin group-by merging, weighted quantiles, area/Pareto
// derivation, scheduler pairing across the k/tau_mst canonicalization,
// and the deterministic orderings all at once. Regenerate both with
// `go test ./internal/service -run TestAnalyticsGoldenQueries -update`.

// goldenQueries is the pinned query list; each entry becomes one golden
// file under testdata/golden/.
var goldenQueries = []struct{ name, url string }{
	{"groupby_scheduler", "/v1/analytics/groupby?by=scheduler"},
	{"groupby_bench_sched_default", "/v1/analytics/groupby?by=benchmark,scheduler&tenant=default"},
	{"groupby_tenant_compression", "/v1/analytics/groupby?by=tenant,compression"},
	{"pareto_gcm", "/v1/analytics/pareto?benchmark=gcm_n13"},
	{"pareto_gcm_rescq", "/v1/analytics/pareto?benchmark=gcm_n13&scheduler=rescq"},
	{"sensitivity_scheduler", "/v1/analytics/sensitivity?a=rescq&b=greedy"},
	{"sensitivity_compression", "/v1/analytics/sensitivity?axis=compression&a=0&b=0.5"},
}

const fixtureWAL = "testdata/analytics_wal.jsonl"

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", "analytics_"+name+".json")
}

// fixtureSummary builds a deterministic Summary whose per-run makespans
// are what analytics aggregates (the derived Mean/Min/Max mirror them).
func fixtureSummary(bench string, opts rescq.Options, cycles []int) *rescq.Summary {
	sum := &rescq.Summary{Benchmark: bench, Scheduler: string(opts.Scheduler), MinCycles: cycles[0], MaxCycles: cycles[0]}
	total := 0
	for i, cyc := range cycles {
		sum.Runs = append(sum.Runs, rescq.Result{
			Benchmark: bench, Scheduler: string(opts.Scheduler),
			Seed: opts.Seed + int64(i), TotalCycles: cyc,
		})
		total += cyc
		if cyc < sum.MinCycles {
			sum.MinCycles = cyc
		}
		if cyc > sum.MaxCycles {
			sum.MaxCycles = cyc
		}
	}
	sum.MeanCycles = float64(total) / float64(len(cycles))
	return sum
}

// fixtureRecords is the WAL content: two terminal sweep jobs (default
// tenant and "acme") whose results fan out over the sweep axes, plus one
// error result occupying an index without measurements.
func fixtureRecords() []any {
	created := time.Date(2026, 1, 15, 10, 0, 0, 0, time.UTC)
	var recs []any

	addJob := func(id, tenant string, specs []runSpec, results []ConfigResult) {
		specsJSON, err := json.Marshal(specs)
		if err != nil {
			panic(err)
		}
		recs = append(recs, store.JobRecord{
			Type: "job", ID: id, Kind: "sweep", Created: created, Specs: specsJSON, Tenant: tenant,
		})
		for i, res := range results {
			payload, err := json.Marshal(res)
			if err != nil {
				panic(err)
			}
			recs = append(recs, store.ResultRecord{
				Type: "result", JobID: id, Index: i, Key: specKey(specs[i]), Result: payload,
			})
		}
		recs = append(recs, store.DoneRecord{Type: "done", JobID: id, State: "done"})
	}

	// Job 1 (default tenant): gcm_n13/qft_n18 x rescq/greedy x
	// compression 0/0.5, two seeded runs each. Compression trades area
	// for latency (fewer tiles, more cycles), so each benchmark's Pareto
	// frontier keeps both compression points.
	var specs1 []runSpec
	var results1 []ConfigResult
	benchOff := map[string]int{"gcm_n13": 0, "qft_n18": 40}
	schedBase := map[string]int{"rescq": 100, "greedy": 150}
	for _, bench := range []string{"gcm_n13", "qft_n18"} {
		for _, sched := range []string{"rescq", "greedy"} {
			for _, comp := range []float64{0, 0.5} {
				opts := rescq.Options{
					Scheduler: rescq.SchedulerKind(sched), Compression: comp, Runs: 2,
				}.Canonical()
				spec := runSpec{Benchmark: bench, Opts: opts}
				base := schedBase[sched] + benchOff[bench] + int(comp*60)
				res := newConfigResult(spec)
				res.Index = len(results1)
				res.Options = &opts
				res.Summary = fixtureSummary(bench, opts, []int{base, base + 7})
				specs1 = append(specs1, spec)
				results1 = append(results1, res)
			}
		}
	}
	// One failed configuration: occupies a result index in the WAL, must
	// advance the analytics watermark without aggregating.
	errOpts := rescq.Options{Scheduler: "rescq", Distance: 9, Runs: 2}.Canonical()
	errSpec := runSpec{Benchmark: "gcm_n13", Opts: errOpts}
	errRes := newConfigResult(errSpec)
	errRes.Index = len(results1)
	errRes.Error = "engine: injected fixture failure"
	specs1 = append(specs1, errSpec)
	results1 = append(results1, errRes)
	addJob("job-000001", "", specs1, results1) // default tenant persists as ""

	// Job 2 (tenant acme): gcm_n13 x rescq/autobraid x star/linear, one
	// run each — a second tenant and a third scheduler for the group-by
	// and sensitivity goldens.
	var specs2 []runSpec
	var results2 []ConfigResult
	for _, sched := range []string{"rescq", "autobraid"} {
		for _, layout := range []string{"star", "linear"} {
			opts := rescq.Options{
				Scheduler: rescq.SchedulerKind(sched), Layout: layout, Runs: 1, Seed: 5,
			}.Canonical()
			spec := runSpec{Benchmark: "gcm_n13", Opts: opts}
			base := 110
			if sched == "autobraid" {
				base = 130
			}
			if layout == "linear" {
				base += 10
			}
			res := newConfigResult(spec)
			res.Index = len(results2)
			res.Options = &opts
			res.Summary = fixtureSummary("gcm_n13", opts, []int{base})
			specs2 = append(specs2, spec)
			results2 = append(results2, res)
		}
	}
	addJob("job-000002", "acme", specs2, results2)
	return recs
}

func writeFixtureWAL(t *testing.T) {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rec := range fixtureRecords() {
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(fixtureWAL, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// replayFixture copies the checked-in WAL into a scratch store dir and
// boots a daemon over it (replay is the only ingest path here). The
// store lifecycle matches production: New, AttachStore, then Start.
func replayFixture(t *testing.T, cfg config.Daemon) *Server {
	t.Helper()
	raw, err := os.ReadFile(fixtureWAL)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update): %v", err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, store.WALName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(cfg, newGatedRunner())
	attachDir(t, s, dir)
	s.Start()
	t.Cleanup(func() { shutdownServer(t, s) })
	return s
}

func attachDir(t *testing.T, s *Server, dir string) {
	t.Helper()
	if _, err := s.AttachStore(dir); err != nil {
		t.Fatalf("AttachStore: %v", err)
	}
}

func TestAnalyticsGoldenQueries(t *testing.T) {
	if *update {
		writeFixtureWAL(t)
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	s := replayFixture(t, config.Daemon{Workers: 1})

	st := s.Analytics().Stats()
	// 12 aggregated configurations; the error result only advances its
	// job's watermark.
	if st.Groups != 12 || st.Ingested != 12 || st.Skipped != 1 {
		t.Fatalf("replayed aggregate shape = %+v, want 12 groups / 12 ingested / 1 skipped", st)
	}

	h := s.Handler()
	for _, q := range goldenQueries {
		t.Run(q.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", q.url, nil))
			if rec.Code != 200 {
				t.Fatalf("GET %s = %d: %s", q.url, rec.Code, rec.Body.String())
			}
			got := rec.Body.Bytes()
			path := goldenPath(q.name)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("GET %s diverged from %s:\n got: %s\nwant: %s", q.url, path, got, want)
			}
		})
	}
}

// TestAnalyticsGoldenRestartIdentity re-opens the replayed store a second
// time — the first close wrote an analytics snapshot state record — and
// every golden query must come back byte-identical from the restored
// snapshot alone (zero re-folds).
func TestAnalyticsGoldenRestartIdentity(t *testing.T) {
	raw, err := os.ReadFile(fixtureWAL)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update): %v", err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, store.WALName), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	answers := func(s *Server) map[string]string {
		t.Helper()
		h := s.Handler()
		out := make(map[string]string, len(goldenQueries))
		for _, q := range goldenQueries {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", q.url, nil))
			if rec.Code != 200 {
				t.Fatalf("GET %s = %d: %s", q.url, rec.Code, rec.Body.String())
			}
			out[q.name] = rec.Body.String()
		}
		return out
	}

	a := New(config.Daemon{Workers: 1}, newGatedRunner())
	attachDir(t, a, dir)
	a.Start()
	first := answers(a)
	// Shutdown's closeStore snapshots the aggregates into the WAL.
	shutdownServer(t, a)

	b := New(config.Daemon{Workers: 1}, newGatedRunner())
	attachDir(t, b, dir)
	b.Start()
	defer shutdownServer(t, b)
	st := b.Analytics().Stats()
	if st.Ingested != 12 || st.IngestLag != 0 {
		t.Fatalf("restore after snapshot = %+v, want 12 ingested with zero lag", st)
	}
	if st.Deduped == 0 {
		t.Fatal("replaying the snapshotted WAL should have watermark-rejected the already-counted suffix")
	}
	for name, body := range answers(b) {
		if body != first[name] {
			t.Errorf("query %s diverged across restart:\n first: %s\nsecond: %s", name, first[name], body)
		}
	}
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestAnalyticsEndpointErrors pins the handler-level error contract:
// unknown axes and missing parameters are 400s with a JSON error, and a
// daemon running with analytics disabled serves 404 on every endpoint
// (and omits them from /v1/capabilities).
func TestAnalyticsEndpointErrors(t *testing.T) {
	s, _ := newTestServer(t, config.Daemon{Workers: 1}, newGatedRunner())
	h := s.Handler()
	for _, url := range []string{
		"/v1/analytics/groupby",                       // no axes
		"/v1/analytics/groupby?by=flavor",             // unknown axis
		"/v1/analytics/groupby?by=scheduler&flavor=x", // unknown filter axis
		"/v1/analytics/pareto",                        // no benchmark
		"/v1/analytics/sensitivity?a=rescq",           // missing b
		"/v1/analytics/sensitivity?axis=k&a=3&b=3",    // equal values
		"/v1/analytics/sensitivity?a=rescq&b=greedy&scheduler=rescq", // filter on swept axis
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 400 {
			t.Errorf("GET %s = %d, want 400 (body %s)", url, rec.Code, rec.Body.String())
		}
		var e errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("GET %s: non-JSON error body %s", url, rec.Body.String())
		}
	}

	off := false
	d, _ := newTestServer(t, config.Daemon{Workers: 1, Analytics: &off}, newGatedRunner())
	if d.Analytics() != nil {
		t.Fatal("analytics constructed despite analytics=false")
	}
	dh := d.Handler()
	for _, url := range []string{"/v1/analytics/groupby?by=scheduler", "/v1/analytics/pareto?benchmark=gcm_n13", "/v1/analytics/sensitivity?a=rescq&b=greedy"} {
		rec := httptest.NewRecorder()
		dh.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 404 {
			t.Errorf("disabled daemon: GET %s = %d, want 404", url, rec.Code)
		}
	}
}

