package service

import (
	"fmt"
	"slices"
	"sync"

	rescq "repro"
	"repro/internal/circuit"
)

// SweepRequest is the POST /v1/sweep payload: the cross product of every
// non-empty axis, simulated per configuration. Empty axes use the engine
// default for that knob (scheduler axis defaults to all three evaluated
// schedulers, mirroring the paper's comparative sweeps).
type SweepRequest struct {
	Benchmarks []string `json:"benchmarks"`
	Schedulers []string `json:"schedulers,omitempty"`
	// Layouts sweeps the lattice topology (an empty axis uses the
	// daemon's default layout); LayoutParams optionally maps a swept
	// layout name to that layout's params, e.g.
	// {"compact": {"fraction": "0.5"}}, so a mixed-layout sweep can
	// parameterize only the layouts that take knobs. See GET
	// /v1/capabilities for the registered names and their params.
	Layouts      []string                     `json:"layouts,omitempty"`
	LayoutParams map[string]map[string]string `json:"layout_params,omitempty"`
	Distances    []int                        `json:"distances,omitempty"`
	PhysErrors   []float64                    `json:"phys_errors,omitempty"`
	KValues      []int                        `json:"k_values,omitempty"`
	Compressions []float64                    `json:"compressions,omitempty"`
	// Runs/Seed/Parallel apply to every configuration.
	Runs     int   `json:"runs,omitempty"`
	Seed     int64 `json:"seed,omitempty"`
	Parallel bool  `json:"parallel,omitempty"`
	// Async returns a job id immediately; Stream ("sse" or "ndjson")
	// streams per-configuration results as they complete. Neither set:
	// the request blocks and returns the whole job.
	Async  bool   `json:"async,omitempty"`
	Stream string `json:"stream,omitempty"`
	// Tenant names the submitting tenant for scheduling and quotas; it
	// overrides the X-Rescq-Tenant header. Empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// Streaming modes for SweepRequest.Stream.
const (
	StreamSSE    = "sse"
	StreamNDJSON = "ndjson"
)

// maxSweepConfigs bounds a single sweep submission; wider grids must be
// split across requests so one job cannot monopolize the queue accounting.
const maxSweepConfigs = 4096

var benchNames = sync.OnceValue(func() map[string]bool {
	set := make(map[string]bool)
	for _, b := range rescq.Benchmarks() {
		set[b.Name] = true
	}
	return set
})

var experimentIDs = sync.OnceValue(func() map[string]bool {
	set := make(map[string]bool)
	for _, id := range rescq.ExperimentIDs {
		set[id] = true
	}
	return set
})

// validateRun turns a RunRequest into a validated runSpec or a 400-worthy
// error.
func (s *Server) validateRun(req RunRequest) (runSpec, error) {
	nSources := 0
	for _, set := range []bool{req.Benchmark != "", req.CircuitText != "", req.Experiment != ""} {
		if set {
			nSources++
		}
	}
	if nSources != 1 {
		return runSpec{}, fmt.Errorf("service: exactly one of benchmark, circuit_text or experiment must be set")
	}
	spec := runSpec{
		Benchmark:     req.Benchmark,
		Name:          req.Name,
		CircuitText:   req.CircuitText,
		Experiment:    req.Experiment,
		Quick:         req.Quick,
		Opts:          req.Options,
		KeepLatencies: req.IncludeLatencies,
	}
	spec.Opts.Parallel = spec.Opts.Parallel || s.cfg.ParallelRuns
	if spec.Opts.Layout == "" {
		spec.Opts.Layout = s.cfg.Layout
	}
	switch {
	case req.Experiment != "":
		if !experimentIDs()[req.Experiment] {
			return runSpec{}, fmt.Errorf("service: unknown experiment %q", req.Experiment)
		}
	case req.Benchmark != "":
		if !benchNames()[req.Benchmark] {
			return runSpec{}, fmt.Errorf("service: unknown benchmark %q", req.Benchmark)
		}
		if err := spec.Opts.Validate(); err != nil {
			return runSpec{}, err
		}
	default:
		if spec.Name == "" {
			spec.Name = "circuit"
		}
		// Reject malformed circuits at submission time so the client gets
		// a 400 with the parse error, not a failed job.
		if _, err := circuit.ParseString(spec.Name, spec.CircuitText); err != nil {
			return runSpec{}, err
		}
		if err := spec.Opts.Validate(); err != nil {
			return runSpec{}, err
		}
	}
	return spec, nil
}

// expandSweep turns a SweepRequest into the validated cross product of its
// axes, in deterministic benchmark-major order.
func (s *Server) expandSweep(req SweepRequest) ([]runSpec, error) {
	switch req.Stream {
	case "", StreamSSE, StreamNDJSON:
	default:
		return nil, fmt.Errorf("service: unknown stream mode %q (want %q or %q)", req.Stream, StreamSSE, StreamNDJSON)
	}
	if len(req.Benchmarks) == 0 {
		return nil, fmt.Errorf("service: sweep needs at least one benchmark")
	}
	for _, b := range req.Benchmarks {
		if !benchNames()[b] {
			return nil, fmt.Errorf("service: unknown benchmark %q", b)
		}
	}
	schedulers := req.Schedulers
	if len(schedulers) == 0 {
		schedulers = []string{string(rescq.Greedy), string(rescq.AutoBraid), string(rescq.RESCQ)}
	}
	layouts := req.Layouts
	if len(layouts) == 0 {
		layouts = []string{s.cfg.Layout}
	}
	for name := range req.LayoutParams {
		if !slices.Contains(layouts, name) {
			return nil, fmt.Errorf("service: layout_params for %q, which is not in the layouts axis %v", name, layouts)
		}
	}
	distances := orDefault(req.Distances)
	physErrors := orDefault(req.PhysErrors)
	kValues := orDefault(req.KValues)
	compressions := orDefault(req.Compressions)

	total := len(req.Benchmarks) * len(schedulers) * len(layouts) * len(distances) *
		len(physErrors) * len(kValues) * len(compressions)
	if total > maxSweepConfigs {
		return nil, fmt.Errorf("service: sweep expands to %d configurations (max %d)", total, maxSweepConfigs)
	}

	// Dedupe by canonical cache key: repeated axis values (distances of
	// [5, 5]), axis values that canonicalize identically (k of 0 and 25),
	// or layouts whose params collapse to the same key would otherwise
	// compute identical work twice inside one sweep. First occurrence
	// wins, preserving benchmark-major order.
	specs := make([]runSpec, 0, total)
	seen := make(map[string]bool, total)
	for _, bench := range req.Benchmarks {
		for _, sched := range schedulers {
			for _, layout := range layouts {
				for _, d := range distances {
					for _, p := range physErrors {
						for _, k := range kValues {
							for _, comp := range compressions {
								opts := rescq.Options{
									Scheduler:    rescq.SchedulerKind(sched),
									Layout:       layout,
									LayoutParams: req.LayoutParams[layout],
									Distance:     d,
									PhysError:    p,
									K:            k,
									Compression:  comp,
									Runs:         req.Runs,
									Seed:         req.Seed,
									Parallel:     req.Parallel || s.cfg.ParallelRuns,
								}
								if err := opts.Validate(); err != nil {
									return nil, fmt.Errorf("service: %s/%s layout=%s d=%d p=%g k=%d c=%g: %w",
										bench, sched, layout, d, p, k, comp, err)
								}
								spec := runSpec{Benchmark: bench, Opts: opts}
								if key := specKey(spec); !seen[key] {
									seen[key] = true
									specs = append(specs, spec)
								}
							}
						}
					}
				}
			}
		}
	}
	return specs, nil
}

// orDefault substitutes the single zero value (-> engine default) for an
// empty sweep axis.
func orDefault[T any](axis []T) []T {
	if len(axis) == 0 {
		return make([]T, 1)
	}
	return axis
}
