package service

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := newResultCache(64)
	if _, ok := c.get("missing"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.put("a", "first")
	v, ok := c.get("a")
	if !ok || v.(string) != "first" {
		t.Fatalf("get after put = %v/%v", v, ok)
	}
	c.put("a", "second")
	if v, _ := c.get("a"); v.(string) != "second" {
		t.Fatalf("same-key put did not overwrite: %v", v)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 (update must not duplicate)", c.len())
	}
}

func TestCacheBoundedEviction(t *testing.T) {
	c := newResultCache(16)
	if got := c.capacity(); got != 16 {
		t.Fatalf("capacity = %d, want 16", got)
	}
	for i := 0; i < 500; i++ {
		c.put(fmt.Sprintf("key-%d", i), i)
	}
	if c.len() > c.capacity() {
		t.Fatalf("len %d exceeds capacity %d", c.len(), c.capacity())
	}
	// The newest keys (per shard) survive; key-499 landed last in its
	// shard so must still be resident.
	if _, ok := c.get("key-499"); !ok {
		t.Fatal("most recent key was evicted")
	}
}

func TestCacheLRUOrderWithinShard(t *testing.T) {
	// One entry per shard: re-touching a key must protect it from the
	// eviction a fresh key in the same shard triggers.
	c := newResultCache(cacheShards)
	sh := c.shard("x")
	var same []string
	for i := 0; same == nil || len(same) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == sh {
			same = append(same, k)
		}
	}
	c.put(same[0], 0)
	c.put(same[1], 1) // evicts same[0] (per-shard cap 1)
	if _, ok := c.get(same[0]); ok {
		t.Fatal("oldest entry survived beyond shard capacity")
	}
	if v, ok := c.get(same[1]); !ok || v.(int) != 1 {
		t.Fatalf("newest entry missing: %v/%v", v, ok)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := newResultCache(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("key-%d", (g*13+i)%64)
				c.put(key, i)
				c.get(key)
				c.len()
			}
		}()
	}
	wg.Wait()
	if c.len() > c.capacity() {
		t.Fatalf("len %d exceeds capacity %d", c.len(), c.capacity())
	}
}
