package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	rescq "repro"
	"repro/internal/cluster"
	"repro/internal/config"
)

// skewRunner is the stub engine behind BenchmarkCoordinatorDispatch: it
// fabricates deterministic summaries like countingRunner, but sleeps a
// per-configuration latency first. Most configurations are fast; the
// distance-5 stripe is a contiguous run of stragglers — exactly the
// workload a static shard assignment handles worst, because the whole
// stripe packs into one batch and rides a single worker while the other
// slots go idle.
type skewRunner struct {
	fast, slow time.Duration
}

func (r skewRunner) delay(opts rescq.Options) time.Duration {
	if opts.Distance == 5 {
		return r.slow
	}
	return r.fast
}

func (r skewRunner) Run(ctx context.Context, bench string, opts rescq.Options) (rescq.Summary, error) {
	t := time.NewTimer(r.delay(opts))
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
		return rescq.Summary{}, ctx.Err()
	}
	return fakeSummary(bench, opts), nil
}

func (r skewRunner) RunCircuitText(ctx context.Context, name, text string, opts rescq.Options) (rescq.Summary, error) {
	return r.Run(ctx, name, opts)
}

func (r skewRunner) Experiment(ctx context.Context, id string, quick bool) (string, error) {
	return fmt.Sprintf("report:%s:quick=%t", id, quick), nil
}

// benchCluster boots an in-process 1-coordinator/N-worker cluster over the
// given stub runner, with caches disabled so every sweep re-executes.
func benchCluster(b *testing.B, runner Runner, workers, capacity int) (*Server, *httptest.Server) {
	b.Helper()
	coordCfg := config.Daemon{
		Workers:      2,
		CacheEntries: -1,
		Cluster: config.Cluster{
			Mode:                config.ModeCoordinator,
			HeartbeatIntervalMS: 50,
			LivenessExpiryMS:    60_000, // never expire a worker mid-measurement
			BatchSize:           8,
			// A small work target makes the adaptive sizer's behavior visible
			// at bench latencies (5-40ms per config): the straggler stripe
			// splits across slots instead of riding one worker as a full
			// -batch-size batch.
			BatchTargetMS: 25,
		},
	}.WithDefaults()
	coord := New(coordCfg, runner)
	coord.Start()
	coordTS := httptest.NewServer(coord.Handler())

	var stops []func()
	for i := 0; i < workers; i++ {
		wCfg := config.Daemon{
			Workers:      capacity,
			CacheEntries: -1,
			Cluster: config.Cluster{
				Mode:                config.ModeWorker,
				CoordinatorURL:      coordTS.URL,
				HeartbeatIntervalMS: 50,
			},
		}.WithDefaults()
		ws := New(wCfg, runner)
		ws.Start()
		wts := httptest.NewServer(ws.Handler())
		ctx, cancel := context.WithCancel(context.Background())
		hb := &cluster.Heartbeater{
			Client:         cluster.NewClient(nil),
			CoordinatorURL: coordTS.URL,
			Self:           cluster.RegisterRequest{ID: wts.URL, URL: wts.URL, Capacity: capacity, Codecs: cluster.SupportedCodecs()},
			Interval:       wCfg.Cluster.HeartbeatInterval(),
		}
		go hb.Run(ctx)
		stops = append(stops, func() {
			cancel()
			wts.Close()
			sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
			ws.Shutdown(sctx)
			scancel()
		})
	}
	b.Cleanup(func() {
		for _, stop := range stops {
			stop()
		}
		coordTS.Close()
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		coord.Shutdown(sctx)
		scancel()
	})

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ws, _ := coord.ClusterWorkers(); len(ws) == workers {
			return coord, coordTS
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.Fatalf("workers never registered")
	return nil, nil
}

// BenchmarkCoordinatorDispatch measures scheduler throughput (configs/sec)
// through a 1-coordinator/3-worker in-process cluster on a skewed-latency
// stub engine: 48 configurations, 40 fast and a contiguous stripe of 8
// stragglers 8x slower. The engine cost per sweep is fixed, so ns/op
// isolates how well the dispatch policy keeps all six worker slots busy.
func BenchmarkCoordinatorDispatch(b *testing.B) {
	runner := skewRunner{fast: 5 * time.Millisecond, slow: 40 * time.Millisecond}
	coord, coordTS := benchCluster(b, runner, 3, 2)

	sweep := SweepRequest{
		Benchmarks: []string{"vqe_n13"},
		Schedulers: []string{"greedy"},
		Distances:  []int{3, 5, 7, 9, 11, 13},
		PhysErrors: []float64{1e-4, 2e-4, 3e-4, 4e-4, 5e-4, 6e-4, 7e-4, 8e-4},
		Runs:       1,
		Async:      true,
	}
	body, err := json.Marshal(sweep)
	if err != nil {
		b.Fatal(err)
	}
	const configs = 48

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(coordTS.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var view JobView
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		j, ok := coord.Job(view.ID)
		if !ok {
			b.Fatalf("job %s not found", view.ID)
		}
		<-j.Done()
		if st := j.State(); st != JobDone {
			b.Fatalf("sweep finished %s", st)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(configs*b.N)/b.Elapsed().Seconds(), "configs/sec")
}
