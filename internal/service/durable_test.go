package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	rescq "repro"
	"repro/internal/config"
	"repro/internal/store"
)

// gatedRunner serves one engine call per token and aborts the in-flight
// call when the job context is cancelled — the same contract the real
// engine honors through rescq.RunContext. Tests use it to freeze a job
// mid-configuration (simulating a long run or a crash point) and to
// observe prompt cancellation.
type gatedRunner struct {
	calls   atomic.Int64
	aborted atomic.Int64
	tokens  chan struct{}
	started chan struct{} // receives one token per call entering the gate
}

func newGatedRunner() *gatedRunner {
	return &gatedRunner{tokens: make(chan struct{}, 64), started: make(chan struct{}, 64)}
}

func (r *gatedRunner) admit(ctx context.Context) error {
	r.calls.Add(1)
	select {
	case r.started <- struct{}{}:
	default:
	}
	select {
	case <-r.tokens:
		return nil
	case <-ctx.Done():
		r.aborted.Add(1)
		return fmt.Errorf("engine aborted mid-run: %w", ctx.Err())
	}
}

func (r *gatedRunner) Run(ctx context.Context, bench string, opts rescq.Options) (rescq.Summary, error) {
	if err := r.admit(ctx); err != nil {
		return rescq.Summary{}, err
	}
	return fakeSummary(bench, opts), nil
}

func (r *gatedRunner) RunCircuitText(ctx context.Context, name, text string, opts rescq.Options) (rescq.Summary, error) {
	if err := r.admit(ctx); err != nil {
		return rescq.Summary{}, err
	}
	return fakeSummary(name, opts), nil
}

func (r *gatedRunner) Experiment(ctx context.Context, id string, quick bool) (string, error) {
	if err := r.admit(ctx); err != nil {
		return "", err
	}
	return fmt.Sprintf("report:%s:quick=%t", id, quick), nil
}

// fourConfigSweep is the restart-resume workload: 2 benchmarks x 2
// schedulers, deterministic under the fake runner.
var fourConfigSweep = SweepRequest{
	Benchmarks: []string{"gcm_n13", "qft_n18"},
	Schedulers: []string{"rescq", "greedy"},
	Runs:       1,
	Async:      true,
}

func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRestartResumeAfterCrash is the durability acceptance test at the
// service level: a sweep is interrupted mid-flight (the daemon "crashes"
// with the WAL as a SIGKILL would leave it — no clean close), a second
// server replays the same store dir, re-enqueues the job, resumes at the
// first unfinished configuration, and the completed result set is
// byte-identical to an uninterrupted run.
func TestRestartResumeAfterCrash(t *testing.T) {
	dir := t.TempDir()

	// --- Server A: run 2 of 4 configurations, then "crash". ---
	runnerA := newGatedRunner()
	a := New(config.Daemon{Workers: 1}, runnerA)
	if _, err := a.AttachStore(dir); err != nil {
		t.Fatal(err)
	}
	a.Start()
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()

	submitted := decode[JobView](t, postJSON(t, tsA.URL+"/v1/sweep", fourConfigSweep))
	if submitted.ID == "" {
		t.Fatalf("submit failed: %+v", submitted)
	}
	runnerA.tokens <- struct{}{}
	runnerA.tokens <- struct{}{}
	pollUntil(t, "two configurations to persist", func() bool {
		resp, err := http.Get(tsA.URL + "/v1/jobs/" + submitted.ID)
		if err != nil {
			return false
		}
		return decode[JobView](t, resp).Progress.Done == 2
	})
	// Server A is abandoned mid-flight: its worker stays parked at the
	// gate and no terminal marker is ever written, so the WAL holds the
	// job record, two results, and nothing else — exactly a SIGKILL's
	// leavings. Only the flock must be released by hand (a real process
	// death releases it in the kernel; cmd/rescqd's subprocess test
	// covers that path literally), which closeStore does without adding
	// records for the interrupted job.
	a.closeStore()

	// --- Server B: replay the same store dir and resume. ---
	runnerB := newGatedRunner()
	b := New(config.Daemon{Workers: 1}, runnerB)
	rs, err := b.AttachStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Jobs != 1 || rs.Results != 2 || rs.Reenqueued != 1 || rs.Reseeded != 2 {
		t.Fatalf("replay stats = %+v, want 1 job / 2 results / 1 re-enqueued / 2 re-seeded", rs)
	}
	b.Start()
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	runnerB.tokens <- struct{}{}
	runnerB.tokens <- struct{}{}
	final := waitForJob(t, tsB.URL, submitted.ID) // same job id across the restart
	if final.State != JobDone || final.Progress.Done != 4 {
		t.Fatalf("resumed job = %+v", final)
	}
	if got := runnerB.calls.Load(); got != 2 {
		t.Fatalf("restarted daemon ran the engine %d times, want 2 (configs 0-1 must come from the WAL)", got)
	}
	snap := b.Stats().Snapshot()
	if snap.ReplayedJobs != 1 || snap.ReplayedResults != 2 {
		t.Fatalf("replay counters = %d/%d, want 1/2", snap.ReplayedJobs, snap.ReplayedResults)
	}

	// --- Server C: the uninterrupted control run. ---
	c := New(config.Daemon{Workers: 1}, &countingRunner{})
	c.Start()
	tsC := httptest.NewServer(c.Handler())
	defer tsC.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	}()
	control := fourConfigSweep
	control.Async = false
	controlView := decode[JobView](t, postJSON(t, tsC.URL+"/v1/sweep", control))
	if controlView.State != JobDone {
		t.Fatalf("control sweep = %+v", controlView)
	}

	resumedView := decode[JobView](t, func() *http.Response {
		resp, err := http.Get(tsB.URL + "/v1/jobs/" + submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}())
	got, _ := json.Marshal(resumedView.Results)
	want, _ := json.Marshal(controlView.Results)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed results differ from uninterrupted run:\nresumed: %s\ncontrol: %s", got, want)
	}

	// /metrics exposes the replayed counters and store gauges.
	resp, err := http.Get(tsB.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"rescqd_replayed_jobs_total 1",
		"rescqd_replayed_results_total 2",
		"rescqd_store_records",
		"rescqd_store_bytes",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Tidy shutdown of B; A's abandoned worker is released last (its
	// stale writes land on an unlinked inode or are compacted away).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("B shutdown: %v", err)
	}
	close(runnerA.tokens)
	ashCtx, ashCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer ashCancel()
	a.Shutdown(ashCtx)
}

// TestRestartResumeFromJSONSeededStore is the codec-migration acceptance
// test: a daemon pinned to the JSON debug codec is interrupted mid-sweep,
// and a binary-default daemon reboots on the same store dir. The JSON-era
// records must replay unchanged (same job id, same completed prefix), the
// open must migrate the files to the binary codec, and the resumed result
// set must stay byte-identical to an uninterrupted run.
func TestRestartResumeFromJSONSeededStore(t *testing.T) {
	dir := t.TempDir()

	// --- Server A: a JSON-codec daemon runs 2 of 4 configurations. ---
	runnerA := newGatedRunner()
	a := New(config.Daemon{Workers: 1, WALCodec: store.CodecJSON}, runnerA)
	if _, err := a.AttachStore(dir); err != nil {
		t.Fatal(err)
	}
	a.Start()
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	if st, ok := a.StoreStats(); !ok || st.Codec != store.CodecJSON {
		t.Fatalf("server A codec = %q, want json", st.Codec)
	}

	submitted := decode[JobView](t, postJSON(t, tsA.URL+"/v1/sweep", fourConfigSweep))
	runnerA.tokens <- struct{}{}
	runnerA.tokens <- struct{}{}
	pollUntil(t, "two configurations to persist", func() bool {
		resp, err := http.Get(tsA.URL + "/v1/jobs/" + submitted.ID)
		if err != nil {
			return false
		}
		return decode[JobView](t, resp).Progress.Done == 2
	})
	a.closeStore() // crash-style abandonment; only the flock is released

	// --- Server B: binary-default daemon on the JSON-era store dir. ---
	runnerB := newGatedRunner()
	b := New(config.Daemon{Workers: 1}, runnerB)
	rs, err := b.AttachStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Jobs != 1 || rs.Results != 2 || rs.Reenqueued != 1 {
		t.Fatalf("replay stats = %+v, want 1 job / 2 results / 1 re-enqueued", rs)
	}
	// The first Open migrated the JSON-era files forward.
	if st, ok := b.StoreStats(); !ok || st.Codec != store.CodecBinary {
		t.Fatalf("server B codec = %q, want binary after migration", st.Codec)
	}
	b.Start()
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	runnerB.tokens <- struct{}{}
	runnerB.tokens <- struct{}{}
	final := waitForJob(t, tsB.URL, submitted.ID)
	if final.State != JobDone || final.Progress.Done != 4 {
		t.Fatalf("resumed job = %+v", final)
	}
	if got := runnerB.calls.Load(); got != 2 {
		t.Fatalf("engine ran %d times after migration, want 2 (configs 0-1 must replay from the JSON records)", got)
	}

	// Byte-identical to an uninterrupted control run.
	c := New(config.Daemon{Workers: 1}, &countingRunner{})
	c.Start()
	tsC := httptest.NewServer(c.Handler())
	defer tsC.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	}()
	control := fourConfigSweep
	control.Async = false
	controlView := decode[JobView](t, postJSON(t, tsC.URL+"/v1/sweep", control))
	resumedView := decode[JobView](t, get(t, tsB.URL+"/v1/jobs/"+submitted.ID))
	got, _ := json.Marshal(resumedView.Results)
	want, _ := json.Marshal(controlView.Results)
	if !bytes.Equal(got, want) {
		t.Fatalf("migrated+resumed results differ from uninterrupted run:\nresumed: %s\ncontrol: %s", got, want)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("B shutdown: %v", err)
	}
	close(runnerA.tokens)
	ashCtx, ashCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer ashCancel()
	a.Shutdown(ashCtx)

	// The store dir is binary end to end now: a third open replays the
	// migrated snapshot and appends binary without another compaction.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Stats().Codec != store.CodecBinary {
		t.Fatalf("reopened codec = %q, want binary", st.Stats().Codec)
	}
	for _, rj := range st.Replayed() {
		if rj.Job.ID == submitted.ID && len(rj.Results) == 4 {
			return
		}
	}
	t.Fatalf("job %s with 4 results not found after migration", submitted.ID)
}

// TestWALHistoryAndCacheReseed: finished jobs replay as inspectable
// history, and their results re-seed the cache under the same canonical
// keys — including the stripped-latency subtlety: a post-restart request
// that wants the latency arrays must recompute instead of serving the
// stripped value.
func TestWALHistoryAndCacheReseed(t *testing.T) {
	dir := t.TempDir()
	req := RunRequest{Benchmark: "gcm_n13", Options: rescq.Options{Runs: 2, Seed: 7}}

	a := New(config.Daemon{}, &countingRunner{})
	if _, err := a.AttachStore(dir); err != nil {
		t.Fatal(err)
	}
	a.Start()
	tsA := httptest.NewServer(a.Handler())
	first := decode[RunResponse](t, postJSON(t, tsA.URL+"/v1/run", req))
	if first.State != JobDone {
		t.Fatalf("first run = %+v", first)
	}
	tsA.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	runnerB := &countingRunner{}
	b := New(config.Daemon{}, runnerB)
	if _, err := b.AttachStore(dir); err != nil {
		t.Fatal(err)
	}
	b.Start()
	tsB := httptest.NewServer(b.Handler())
	t.Cleanup(func() {
		tsB.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		b.Shutdown(ctx)
	})

	// History listing survives the restart.
	resp, err := http.Get(tsB.URL + "/v1/jobs/" + first.JobID)
	if err != nil {
		t.Fatal(err)
	}
	hist := decode[JobView](t, resp)
	if hist.State != JobDone || len(hist.Results) != 1 || hist.Results[0].Summary == nil {
		t.Fatalf("replayed history = %+v", hist)
	}
	if hist.Results[0].Summary.MeanCycles != first.Summary.MeanCycles {
		t.Fatalf("replayed summary differs: %v vs %v", hist.Results[0].Summary.MeanCycles, first.Summary.MeanCycles)
	}

	// Identical submission: served from the re-seeded cache, engine idle.
	second := decode[RunResponse](t, postJSON(t, tsB.URL+"/v1/run", req))
	if !second.Cached || runnerB.calls.Load() != 0 {
		t.Fatalf("post-restart identical run: cached=%v calls=%d, want cached/0", second.Cached, runnerB.calls.Load())
	}
	sa, _ := json.Marshal(first.Summary)
	sb, _ := json.Marshal(second.Summary)
	if !bytes.Equal(sa, sb) {
		t.Fatalf("re-seeded summary not byte-identical:\n%s\n%s", sa, sb)
	}

	// The WAL stores latencies stripped, so include_latencies must
	// recompute rather than serve the partial value.
	lat := req
	lat.IncludeLatencies = true
	third := decode[RunResponse](t, postJSON(t, tsB.URL+"/v1/run", lat))
	if third.Cached || runnerB.calls.Load() != 1 {
		t.Fatalf("include_latencies after restart: cached=%v calls=%d, want recompute", third.Cached, runnerB.calls.Load())
	}
	if len(third.Summary.Runs) == 0 || len(third.Summary.Runs[0].CNOTLatencies) == 0 {
		t.Fatalf("recomputed summary lost its latencies: %+v", third.Summary.Runs)
	}

	// /healthz reports the durability section.
	resp, err = http.Get(tsB.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decode[healthBody](t, resp)
	if health.Store == nil || health.Store.Records == 0 || health.Store.ReplayedJobs != 1 {
		t.Fatalf("healthz store section = %+v", health.Store)
	}
}

// TestResumeEndpoint: a cancelled sweep resumes as a fresh job that
// inherits the completed prefix verbatim and executes only the rest.
func TestResumeEndpoint(t *testing.T) {
	runner := newGatedRunner()
	s, ts := newTestServer(t, config.Daemon{Workers: 1}, runner)

	req := SweepRequest{Benchmarks: []string{"gcm_n13"}, Schedulers: []string{"rescq", "greedy", "autobraid"}, Runs: 1, Async: true}
	submitted := decode[JobView](t, postJSON(t, ts.URL+"/v1/sweep", req))

	// While running: resume conflicts.
	<-runner.started
	resp := postJSON(t, ts.URL+"/v1/jobs/"+submitted.ID+"/resume", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("resume of running job: status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// Let configuration 0 finish, then cancel mid-configuration 1.
	runner.tokens <- struct{}{}
	pollUntil(t, "first configuration", func() bool {
		j, _ := s.Job(submitted.ID)
		_, _, _, results, _ := j.snapshot()
		return len(results) == 1
	})
	httpDelete(t, ts.URL+"/v1/jobs/"+submitted.ID)
	cancelled := waitForJob(t, ts.URL, submitted.ID)
	if cancelled.State != JobCancelled || cancelled.Progress.Done != 1 {
		t.Fatalf("cancelled job = %+v", cancelled)
	}

	// Resume: a new job continues at configuration 1. (Read the call
	// counter first: the worker may enter configuration 1 the moment the
	// resumed job is queued.)
	callsBefore := runner.calls.Load()
	resp = postJSON(t, ts.URL+"/v1/jobs/"+submitted.ID+"/resume", struct{}{})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume status = %d, want 202", resp.StatusCode)
	}
	resumed := decode[JobView](t, resp)
	if resumed.ID == submitted.ID || resumed.ResumedFrom != submitted.ID {
		t.Fatalf("resumed view = %+v", resumed)
	}
	runner.tokens <- struct{}{}
	runner.tokens <- struct{}{}
	final := waitForJob(t, ts.URL, resumed.ID)
	if final.State != JobDone || final.Progress.Done != 3 {
		t.Fatalf("resumed final = %+v", final)
	}
	if got := runner.calls.Load() - callsBefore; got != 2 {
		t.Fatalf("resume ran %d engine calls, want 2 (configuration 0 inherited)", got)
	}

	// The inherited configuration is byte-identical to the original's.
	origJob, _ := s.Job(submitted.ID)
	_, _, _, origResults, _ := origJob.snapshot()
	a, _ := json.Marshal(origResults[0])
	bts, _ := json.Marshal(final.Results[0])
	if !bytes.Equal(a, bts) {
		t.Fatalf("inherited result differs:\n%s\n%s", a, bts)
	}

	// A cleanly completed job has nothing to resume.
	resp = postJSON(t, ts.URL+"/v1/jobs/"+resumed.ID+"/resume", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("resume of complete job: status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// The original job's resume slot is claimed: a second resume cannot
	// duplicate the remaining work, it 409s naming the continuation.
	resp = postJSON(t, ts.URL+"/v1/jobs/"+submitted.ID+"/resume", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second resume: status %d, want 409", resp.StatusCode)
	}
	if body := decode[errorBody](t, resp); !strings.Contains(body.Error, resumed.ID) {
		t.Fatalf("second resume should name the existing continuation: %q", body.Error)
	}
}

func httpDelete(t *testing.T, url string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, url, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", url, err)
	}
	resp.Body.Close()
}

// TestAdmissionControl429: beyond MaxQueueDepth pending configurations,
// submissions are shed with 429 + Retry-After instead of queueing.
func TestAdmissionControl429(t *testing.T) {
	runner := newGatedRunner()
	s, ts := newTestServer(t, config.Daemon{Workers: 1, MaxQueueDepth: 2}, runner)
	t.Cleanup(func() { close(runner.tokens) })

	// One running single-config job: backlog 1.
	postJSON(t, ts.URL+"/v1/run", RunRequest{Benchmark: "gcm_n13", Async: true}).Body.Close()
	<-runner.started

	// A 2-configuration sweep would make the backlog 3 > 2: shed.
	resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Benchmarks: []string{"gcm_n13", "qft_n18"}, Schedulers: []string{"rescq"}, Async: true,
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	body := decode[errorBody](t, resp)
	if !strings.Contains(body.Error, "overloaded") {
		t.Fatalf("shed error = %q", body.Error)
	}
	if snap := s.Stats().Snapshot(); snap.JobsShed != 1 {
		t.Fatalf("shed counter = %d, want 1", snap.JobsShed)
	}

	// A single-config submission still fits (backlog 2 == limit).
	ok := postJSON(t, ts.URL+"/v1/run", RunRequest{Benchmark: "qft_n18", Async: true})
	if ok.StatusCode != http.StatusAccepted {
		t.Fatalf("within-limit submit status = %d, want 202", ok.StatusCode)
	}
	ok.Body.Close()

	// Shed visibility: /metrics counter and /healthz gauges.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mdata), "rescqd_jobs_shed_total 1") {
		t.Errorf("/metrics missing shed counter:\n%s", mdata)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decode[healthBody](t, hresp)
	if health.ShedTotal != 1 || health.MaxQueueDepth != 2 || health.PendingConfigs != 2 {
		t.Fatalf("healthz admission gauges = %+v", health)
	}

	// Draining the backlog restores admission.
	runner.tokens <- struct{}{}
	runner.tokens <- struct{}{}
	pollUntil(t, "backlog to drain", func() bool { return s.pending.Load() == 0 })
	again := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Benchmarks: []string{"gcm_n13", "qft_n18"}, Schedulers: []string{"rescq"}, Async: true,
	})
	if again.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain submit status = %d, want 202", again.StatusCode)
	}
	again.Body.Close()
	runner.tokens <- struct{}{}
	runner.tokens <- struct{}{}
}

// TestSweepDedupesIdenticalConfigs: repeated axis values and values that
// canonicalize to the same cache key collapse to one configuration.
func TestSweepDedupesIdenticalConfigs(t *testing.T) {
	runner := &countingRunner{}
	_, ts := newTestServer(t, config.Daemon{}, runner)
	view := decode[JobView](t, postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Benchmarks: []string{"gcm_n13"},
		Schedulers: []string{"rescq"},
		// distances [7, 7] repeats an axis value; k_values [0, 25] are two
		// spellings of the same canonical configuration (0 -> default 25).
		Distances: []int{7, 7},
		KValues:   []int{0, 25},
		Runs:      1,
	}))
	if view.State != JobDone {
		t.Fatalf("sweep state = %s (%s)", view.State, view.Error)
	}
	if len(view.Results) != 1 {
		t.Fatalf("results = %d, want 1 (4 grid cells, all identical)", len(view.Results))
	}
	if got := runner.calls.Load(); got != 1 {
		t.Fatalf("engine calls = %d, want 1", got)
	}
}

// TestPromptCancellationMidConfiguration: DELETE aborts the in-flight
// configuration through the job context instead of letting it finish.
func TestPromptCancellationMidConfiguration(t *testing.T) {
	runner := newGatedRunner()
	_, ts := newTestServer(t, config.Daemon{Workers: 1}, runner)

	submitted := decode[JobView](t, postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Benchmarks: []string{"gcm_n13"}, Schedulers: []string{"rescq", "greedy"}, Async: true,
	}))
	<-runner.started // configuration 0 is inside the engine, gate held
	httpDelete(t, ts.URL+"/v1/jobs/"+submitted.ID)
	final := waitForJob(t, ts.URL, submitted.ID)
	if final.State != JobCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	if final.Progress.Done != 0 {
		t.Fatalf("aborted configuration produced a result: %+v", final)
	}
	if runner.aborted.Load() != 1 {
		t.Fatalf("engine abort count = %d, want 1 (cancellation must reach the run loop)", runner.aborted.Load())
	}
	if runner.calls.Load() != 1 {
		t.Fatalf("engine calls = %d, want 1 (configuration 1 must never start)", runner.calls.Load())
	}
}

// failingWriter is a ResponseWriter whose Write starts failing after
// failAfter successful writes — the broken-pipe shape of a client that
// disconnected mid-stream.
type failingWriter struct {
	hdr       http.Header
	writes    int
	failAfter int
}

func (w *failingWriter) Header() http.Header {
	if w.hdr == nil {
		w.hdr = make(http.Header)
	}
	return w.hdr
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.failAfter {
		return 0, fmt.Errorf("write tcp: broken pipe")
	}
	return len(p), nil
}

func (w *failingWriter) WriteHeader(int) {}
func (w *failingWriter) Flush()          {}

// TestStreamWriteFailureCancelsJob: a failed stream write (client gone,
// request context not yet fired) stops the stream, cancels the job, and
// lets the handler goroutine exit instead of streaming to nobody.
func TestStreamWriteFailureCancelsJob(t *testing.T) {
	runner := newGatedRunner()
	s, _ := newTestServer(t, config.Daemon{Workers: 1}, runner)

	specs, err := s.expandSweep(SweepRequest{
		Benchmarks: []string{"gcm_n13"}, Schedulers: []string{"rescq", "greedy", "autobraid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	j := s.newJob("sweep", "", specs)
	if err := s.submit(j); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", nil) // context never fires
	fw := &failingWriter{failAfter: 1}                            // first config line ok, second write breaks
	handlerDone := make(chan struct{})
	go func() {
		s.streamNDJSON(fw, req, j)
		close(handlerDone)
	}()

	runner.tokens <- struct{}{} // config 0 completes and streams fine
	runner.tokens <- struct{}{} // config 1 completes; its write fails -> cancel
	// config 2 gets no token: only the cancellation can release it.

	select {
	case <-handlerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("handler goroutine leaked after the stream write failed")
	}
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job not stopped after the client vanished")
	}
	if st := j.State(); st != JobCancelled {
		t.Fatalf("job state = %s, want cancelled", st)
	}
	if runner.aborted.Load() != 1 {
		t.Fatalf("in-flight configuration not aborted (aborted=%d)", runner.aborted.Load())
	}
}

// TestStreamingDisconnectFreesGoroutines is the leak check: disconnecting
// a streaming client cancels the job and returns the goroutine count to
// its baseline.
func TestStreamingDisconnectFreesGoroutines(t *testing.T) {
	runner := newGatedRunner()
	s, ts := newTestServer(t, config.Daemon{Workers: 1}, runner)
	before := runtime.NumGoroutine()

	body, _ := json.Marshal(SweepRequest{
		Benchmarks: []string{"gcm_n13"}, Schedulers: []string{"rescq", "greedy", "autobraid"},
		Stream: StreamNDJSON,
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	<-runner.started // configuration 0 inside the engine
	cancel()         // client disconnects mid-stream
	resp.Body.Close()

	var jobID string
	for _, j := range s.Jobs() {
		jobID = j.ID
	}
	final := waitForJob(t, ts.URL, jobID)
	if final.State != JobCancelled {
		t.Fatalf("state after disconnect = %s, want cancelled", final.State)
	}
	pollUntil(t, "goroutines to return to baseline", func() bool {
		// Drop the test client's own keep-alive read/write loops so only a
		// genuine server-side leak (the abandoned stream handler or a job
		// watcher) can keep the count above baseline.
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}
