package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rescq "repro"
	"repro/internal/config"
)

// countingRunner is a Runner that fabricates deterministic summaries and
// counts engine invocations; block (when non-nil) stalls every call until
// closed, and gate (when non-nil) receives one token per call started.
type countingRunner struct {
	calls   atomic.Int64
	block   chan struct{}
	started chan struct{}
}

func (r *countingRunner) note() {
	r.calls.Add(1)
	if r.started != nil {
		r.started <- struct{}{}
	}
	if r.block != nil {
		<-r.block
	}
}

func fakeSummary(bench string, opts rescq.Options) rescq.Summary {
	c := opts.Canonical()
	return rescq.Summary{
		Benchmark:  bench,
		Scheduler:  string(c.Scheduler),
		MeanCycles: float64(100 + c.Distance),
		MinCycles:  100,
		MaxCycles:  101,
		Runs: []rescq.Result{{
			Benchmark:     bench,
			Scheduler:     string(c.Scheduler),
			Seed:          c.Seed,
			TotalCycles:   100 + c.Distance,
			CNOTLatencies: []int{1, 2, 3},
			RzLatencies:   []int{4, 5},
		}},
	}
}

func (r *countingRunner) Run(ctx context.Context, bench string, opts rescq.Options) (rescq.Summary, error) {
	r.note()
	return fakeSummary(bench, opts), nil
}

func (r *countingRunner) RunCircuitText(ctx context.Context, name, text string, opts rescq.Options) (rescq.Summary, error) {
	r.note()
	return fakeSummary(name, opts), nil
}

func (r *countingRunner) Experiment(ctx context.Context, id string, quick bool) (string, error) {
	r.note()
	return fmt.Sprintf("report:%s:quick=%t", id, quick), nil
}

func newTestServer(t *testing.T, cfg config.Daemon, runner Runner) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg, runner)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

func waitForJob(t *testing.T, baseURL, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		view := decode[JobView](t, resp)
		switch view.State {
		case JobDone, JobFailed, JobCancelled:
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

// TestRunCacheHit is the acceptance-criteria cache proof: identical
// back-to-back /v1/run requests, the second served without invoking the
// engine, asserted via both the runner's own call count and the /metrics
// counters.
func TestRunCacheHit(t *testing.T) {
	runner := &countingRunner{}
	s, ts := newTestServer(t, config.Daemon{}, runner)

	req := RunRequest{Benchmark: "gcm_n13", Options: rescq.Options{Runs: 2, Seed: 7}}
	first := decode[RunResponse](t, postJSON(t, ts.URL+"/v1/run", req))
	if first.State != JobDone || first.Cached {
		t.Fatalf("first run: state=%s cached=%v, want done/uncached", first.State, first.Cached)
	}
	if first.Summary == nil || first.Summary.Benchmark != "gcm_n13" {
		t.Fatalf("first run summary = %+v", first.Summary)
	}
	if len(first.Summary.Runs) == 0 || first.Summary.Runs[0].CNOTLatencies != nil {
		t.Fatalf("latencies should be stripped by default: %+v", first.Summary.Runs)
	}

	second := decode[RunResponse](t, postJSON(t, ts.URL+"/v1/run", req))
	if second.State != JobDone || !second.Cached {
		t.Fatalf("second run: state=%s cached=%v, want done/cached", second.State, second.Cached)
	}
	if got := runner.calls.Load(); got != 1 {
		t.Fatalf("engine invoked %d times, want 1 (second request must be a cache hit)", got)
	}
	snap := s.Stats().Snapshot()
	if snap.CacheHits != 1 || snap.CacheMisses != 1 || snap.EngineRuns != 1 {
		t.Fatalf("metrics hits=%d misses=%d engine=%d, want 1/1/1", snap.CacheHits, snap.CacheMisses, snap.EngineRuns)
	}
	if snap.JobsDone != 2 || snap.JobsQueued != 2 {
		t.Fatalf("metrics done=%d queued=%d, want 2/2", snap.JobsDone, snap.JobsQueued)
	}

	// A semantically identical request written differently (explicit
	// defaults, Parallel toggled) still hits: the key is canonical.
	third := decode[RunResponse](t, postJSON(t, ts.URL+"/v1/run", RunRequest{
		Benchmark: "gcm_n13",
		Options: rescq.Options{
			Scheduler: rescq.RESCQ, Distance: 7, PhysError: 1e-4,
			Runs: 2, Seed: 7, Parallel: true,
		},
	}))
	if !third.Cached || runner.calls.Load() != 1 {
		t.Fatalf("canonicalized request missed the cache (cached=%v calls=%d)", third.Cached, runner.calls.Load())
	}

	// A different seed is a different result: must miss.
	fourth := decode[RunResponse](t, postJSON(t, ts.URL+"/v1/run", RunRequest{
		Benchmark: "gcm_n13", Options: rescq.Options{Runs: 2, Seed: 8},
	}))
	if fourth.Cached || runner.calls.Load() != 2 {
		t.Fatalf("different seed should miss (cached=%v calls=%d)", fourth.Cached, runner.calls.Load())
	}
}

func TestRunIncludeLatencies(t *testing.T) {
	_, ts := newTestServer(t, config.Daemon{}, &countingRunner{})
	resp := decode[RunResponse](t, postJSON(t, ts.URL+"/v1/run", RunRequest{
		Benchmark: "gcm_n13", IncludeLatencies: true,
	}))
	if len(resp.Summary.Runs) == 0 || len(resp.Summary.Runs[0].CNOTLatencies) != 3 {
		t.Fatalf("latencies missing with include_latencies: %+v", resp.Summary.Runs)
	}
}

func TestRunExperimentPayload(t *testing.T) {
	runner := &countingRunner{}
	_, ts := newTestServer(t, config.Daemon{}, runner)
	req := RunRequest{Experiment: "table3", Quick: true}
	first := decode[RunResponse](t, postJSON(t, ts.URL+"/v1/run", req))
	if first.Report != "report:table3:quick=true" {
		t.Fatalf("experiment report = %q", first.Report)
	}
	second := decode[RunResponse](t, postJSON(t, ts.URL+"/v1/run", req))
	if !second.Cached || runner.calls.Load() != 1 {
		t.Fatalf("experiment rerun should hit the cache (cached=%v calls=%d)", second.Cached, runner.calls.Load())
	}
}

func TestRunAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, config.Daemon{}, &countingRunner{})
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{Benchmark: "qft_n18", Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status = %d, want 202", resp.StatusCode)
	}
	view := decode[JobView](t, resp)
	if view.ID == "" || view.Kind != "run" {
		t.Fatalf("async job view = %+v", view)
	}
	final := waitForJob(t, ts.URL, view.ID)
	if final.State != JobDone || final.Progress.Done != 1 || final.Progress.Total != 1 {
		t.Fatalf("final job view = %+v", final)
	}
	if len(final.Results) != 1 || final.Results[0].Summary == nil {
		t.Fatalf("final results = %+v", final.Results)
	}
}

func TestSweepSyncDeterministicOrder(t *testing.T) {
	runner := &countingRunner{}
	_, ts := newTestServer(t, config.Daemon{}, runner)
	req := SweepRequest{
		Benchmarks: []string{"gcm_n13", "qft_n18"},
		Schedulers: []string{"rescq", "greedy"},
		Distances:  []int{5, 7},
		Runs:       1,
	}
	view := decode[JobView](t, postJSON(t, ts.URL+"/v1/sweep", req))
	if view.State != JobDone {
		t.Fatalf("sweep state = %s (%s)", view.State, view.Error)
	}
	if len(view.Results) != 8 {
		t.Fatalf("sweep results = %d, want 8", len(view.Results))
	}
	// Benchmark-major, scheduler, then distance order; indices contiguous.
	want := []string{
		"gcm_n13/rescq/105", "gcm_n13/rescq/107",
		"gcm_n13/greedy/105", "gcm_n13/greedy/107",
		"qft_n18/rescq/105", "qft_n18/rescq/107",
		"qft_n18/greedy/105", "qft_n18/greedy/107",
	}
	for i, res := range view.Results {
		if res.Index != i {
			t.Fatalf("result %d has index %d", i, res.Index)
		}
		got := fmt.Sprintf("%s/%s/%.0f", res.Benchmark, res.Scheduler, res.Summary.MeanCycles)
		if got != want[i] {
			t.Fatalf("result %d = %s, want %s", i, got, want[i])
		}
	}
	if runner.calls.Load() != 8 {
		t.Fatalf("engine calls = %d, want 8", runner.calls.Load())
	}

	// The whole grid re-submitted is served from cache.
	again := decode[JobView](t, postJSON(t, ts.URL+"/v1/sweep", req))
	if again.State != JobDone || runner.calls.Load() != 8 {
		t.Fatalf("resweep: state=%s calls=%d, want done/8", again.State, runner.calls.Load())
	}
	for _, res := range again.Results {
		if !res.Cached {
			t.Fatalf("resweep result %d not cached", res.Index)
		}
	}
}

func TestSweepSSEStreaming(t *testing.T) {
	_, ts := newTestServer(t, config.Daemon{}, &countingRunner{})
	body, _ := json.Marshal(SweepRequest{
		Benchmarks: []string{"gcm_n13"},
		Schedulers: []string{"rescq", "greedy", "autobraid"},
		Stream:     StreamSSE,
	})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST sweep: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if resp.Header.Get("X-Job-ID") == "" {
		t.Fatal("missing X-Job-ID header")
	}
	var configs int
	var done bool
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "config":
				var res ConfigResult
				if err := json.Unmarshal([]byte(data), &res); err != nil {
					t.Fatalf("bad config event %q: %v", data, err)
				}
				if res.Index != configs {
					t.Fatalf("config event index %d, want %d (in-order streaming)", res.Index, configs)
				}
				configs++
			case "done":
				var view JobView
				if err := json.Unmarshal([]byte(data), &view); err != nil {
					t.Fatalf("bad done event %q: %v", data, err)
				}
				if view.State != JobDone || view.Progress.Done != 3 {
					t.Fatalf("done event view = %+v", view)
				}
				done = true
			}
		}
	}
	if configs != 3 || !done {
		t.Fatalf("streamed %d config events, done=%v; want 3/true", configs, done)
	}
}

func TestSweepNDJSONStreaming(t *testing.T) {
	_, ts := newTestServer(t, config.Daemon{}, &countingRunner{})
	body, _ := json.Marshal(SweepRequest{
		Benchmarks: []string{"gcm_n13", "qft_n18"},
		Schedulers: []string{"rescq"},
		Stream:     StreamNDJSON,
	})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST sweep: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			lines = append(lines, sc.Text())
		}
	}
	if len(lines) != 3 {
		t.Fatalf("ndjson lines = %d, want 2 configs + 1 terminal", len(lines))
	}
	var view JobView
	if err := json.Unmarshal([]byte(lines[2]), &view); err != nil || view.State != JobDone {
		t.Fatalf("terminal line %q: %v / %+v", lines[2], err, view)
	}
}

// TestConcurrentMixedTraffic is the acceptance-criteria race exercise:
// concurrent run and sweep submissions (sync, async and streaming) mixed
// with job listing, metrics scrapes and health checks, all against one
// server. Run under -race this proves the queue/cache/registry are
// race-clean.
func TestConcurrentMixedTraffic(t *testing.T) {
	s, ts := newTestServer(t, config.Daemon{QueueDepth: 512}, &countingRunner{})
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				bench := []string{"gcm_n13", "qft_n18", "vqe_n13"}[(i+k)%3]
				resp := postJSON(t, ts.URL+"/v1/run", RunRequest{
					Benchmark: bench,
					Options:   rescq.Options{Seed: int64(1 + k%2), Runs: 1},
				})
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("run status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			stream := []string{"", StreamSSE, StreamNDJSON}[i%3]
			resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
				Benchmarks: []string{"gcm_n13", "qft_n18"},
				Schedulers: []string{"rescq", "greedy"},
				Stream:     stream,
			})
			if resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("sweep status %d", resp.StatusCode)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				for _, path := range []string{"/v1/jobs", "/metrics", "/healthz", "/v1/benchmarks"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						errCh <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	snap := s.Stats().Snapshot()
	if snap.JobsDone != 48 { // 8*5 runs + 8 sweeps
		t.Fatalf("jobs done = %d, want 48", snap.JobsDone)
	}
	if snap.JobsRunning != 0 {
		t.Fatalf("jobs still running = %d", snap.JobsRunning)
	}
	if snap.CacheHits+snap.CacheMisses == 0 || snap.EngineRuns != snap.CacheMisses {
		t.Fatalf("cache counters inconsistent: %+v", snap)
	}
}

// TestDrainOnShutdown is the acceptance-criteria drain proof: a job caught
// in flight when shutdown begins completes, and post-drain submissions are
// rejected.
func TestDrainOnShutdown(t *testing.T) {
	runner := &countingRunner{
		block:   make(chan struct{}),
		started: make(chan struct{}, 16),
	}
	s, ts := newTestServer(t, config.Daemon{}, runner)

	submit := decode[JobView](t, postJSON(t, ts.URL+"/v1/run", RunRequest{
		Benchmark: "gcm_n13", Async: true,
	}))
	<-runner.started // the job is now executing inside a worker

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	// Shutdown must be waiting on the in-flight job, not returning early.
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned %v before the in-flight job finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	// New submissions are rejected while draining.
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{Benchmark: "qft_n18"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	close(runner.block) // let the in-flight job finish
	if err := <-done; err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
	job, ok := s.Job(submit.ID)
	if !ok || job.State() != JobDone {
		t.Fatalf("in-flight job state = %v, want done", job.State())
	}
	if snap := s.Stats().Snapshot(); snap.JobsRejected == 0 {
		t.Fatal("draining rejection not counted")
	}
}

// TestShutdownDeadlineCancelsInFlight: an expired drain budget cancels the
// stuck job instead of hanging forever.
func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	runner := &countingRunner{
		block:   make(chan struct{}),
		started: make(chan struct{}, 16),
	}
	// Not via newTestServer: this test owns shutdown.
	s := New(config.Daemon{}, runner)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One blocked sweep occupying a worker plus one queued behind nothing:
	// the blocked *sweep* has a second configuration it never reaches, so
	// cancellation at the configuration boundary is observable.
	view := decode[JobView](t, postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Benchmarks: []string{"gcm_n13", "qft_n18"},
		Schedulers: []string{"rescq"},
		Async:      true,
	}))
	<-runner.started

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- s.Shutdown(ctx) }()
	time.Sleep(150 * time.Millisecond) // let the budget expire
	close(runner.block)                // unblock the stuck configuration
	if err := <-errCh; err == nil {
		t.Fatal("Shutdown should report the expired drain budget")
	}
	job, _ := s.Job(view.ID)
	final := job.State()
	if final != JobCancelled {
		t.Fatalf("in-flight job state = %s, want cancelled at the configuration boundary", final)
	}
}

// TestInflightCoalescing: two concurrent identical configurations run the
// engine once — the follower waits for the leader and is served from the
// cache the leader fills.
func TestInflightCoalescing(t *testing.T) {
	runner := &countingRunner{
		block:   make(chan struct{}),
		started: make(chan struct{}, 16),
	}
	s, ts := newTestServer(t, config.Daemon{Workers: 2}, runner)

	req := RunRequest{Benchmark: "gcm_n13", Async: true, Options: rescq.Options{Seed: 99}}
	a := decode[JobView](t, postJSON(t, ts.URL+"/v1/run", req))
	<-runner.started // the leader is inside the engine
	b := decode[JobView](t, postJSON(t, ts.URL+"/v1/run", req))

	// Give the follower worker a moment to reach joinFlight, then release.
	time.Sleep(20 * time.Millisecond)
	close(runner.block)

	av := waitForJob(t, ts.URL, a.ID)
	bv := waitForJob(t, ts.URL, b.ID)
	if av.State != JobDone || bv.State != JobDone {
		t.Fatalf("states = %s/%s", av.State, bv.State)
	}
	if got := runner.calls.Load(); got != 1 {
		t.Fatalf("engine ran %d times for concurrent identical requests, want 1", got)
	}
	if !bv.Results[0].Cached {
		t.Fatal("follower result should be served from cache")
	}
	snap := s.Stats().Snapshot()
	if snap.CacheHits != 1 || snap.CacheMisses != 1 || snap.EngineRuns != 1 {
		t.Fatalf("metrics hits=%d misses=%d engine=%d, want 1/1/1", snap.CacheHits, snap.CacheMisses, snap.EngineRuns)
	}
	if snap.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1 (the follower waited on the leader)", snap.Coalesced)
	}
}

// TestFinishedJobEviction: the registry retains at most maxFinishedJobs
// terminal jobs, evicting oldest-first, so a long-running daemon's memory
// stays flat.
func TestFinishedJobEviction(t *testing.T) {
	s := New(config.Daemon{}, &countingRunner{})
	var first *Job
	for i := 0; i < maxFinishedJobs+100; i++ {
		j := s.newJob("run", "", []runSpec{{Benchmark: "gcm_n13", Opts: rescq.Options{Seed: int64(i + 1)}}})
		if first == nil {
			first = j
		}
		s.execute(j)
	}
	if n := len(s.Jobs()); n != maxFinishedJobs {
		t.Fatalf("registry holds %d jobs, want %d", n, maxFinishedJobs)
	}
	if _, ok := s.Job(first.ID); ok {
		t.Fatal("oldest finished job should have been evicted")
	}
	if first.State() != JobDone {
		t.Fatal("eviction must not disturb holders of the *Job itself")
	}
}

// TestSubmitShutdownRace hammers the submit path while Shutdown closes the
// queue: every submission must either enqueue or reject cleanly — never
// panic on a closed channel.
func TestSubmitShutdownRace(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		s := New(config.Daemon{QueueDepth: 4}, &countingRunner{})
		s.Start()
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 10; i++ {
					j := s.newJob("run", "", []runSpec{{Benchmark: "gcm_n13"}})
					if err := s.submit(j); err != nil {
						return // draining: expected
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Error(err)
			}
		}()
		close(start)
		wg.Wait()
	}
}

func TestCancelQueuedJob(t *testing.T) {
	runner := &countingRunner{
		block:   make(chan struct{}),
		started: make(chan struct{}, 64),
	}
	s, ts := newTestServer(t, config.Daemon{Workers: 2, QueueDepth: 16}, runner)

	// Occupy both workers.
	for i := 0; i < 2; i++ {
		postJSON(t, ts.URL+"/v1/run", RunRequest{Benchmark: "gcm_n13", Async: true,
			Options: rescq.Options{Seed: int64(100 + i)}}).Body.Close()
	}
	<-runner.started
	<-runner.started

	// This one is stuck in the queue; cancel it there.
	queued := decode[JobView](t, postJSON(t, ts.URL+"/v1/run", RunRequest{
		Benchmark: "qft_n18", Async: true,
	}))
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE job: %v", err)
	}
	resp.Body.Close()

	calls := runner.calls.Load()
	close(runner.block) // release the workers; the cancelled job is next in line
	final := waitForJob(t, ts.URL, queued.ID)
	if final.State != JobCancelled {
		t.Fatalf("cancelled-in-queue job state = %s", final.State)
	}
	if got := runner.calls.Load(); got != calls {
		t.Fatalf("cancelled job still invoked the engine (%d -> %d calls)", calls, got)
	}
	_ = s
}

func TestQueueFullRejects503(t *testing.T) {
	runner := &countingRunner{
		block:   make(chan struct{}),
		started: make(chan struct{}, 64),
	}
	s, ts := newTestServer(t, config.Daemon{Workers: 2, QueueDepth: 1}, runner)
	defer close(runner.block)

	for i := 0; i < 2; i++ {
		postJSON(t, ts.URL+"/v1/run", RunRequest{Benchmark: "gcm_n13", Async: true,
			Options: rescq.Options{Seed: int64(200 + i)}}).Body.Close()
	}
	<-runner.started
	<-runner.started
	// Fill the queue (depth 1), then overflow it.
	postJSON(t, ts.URL+"/v1/run", RunRequest{Benchmark: "qft_n18", Async: true}).Body.Close()
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{Benchmark: "vqe_n13", Async: true})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow status = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	if snap := s.Stats().Snapshot(); snap.JobsRejected != 1 {
		t.Fatalf("rejected = %d, want 1", snap.JobsRejected)
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, config.Daemon{}, &countingRunner{})
	cases := []struct {
		name string
		path string
		body string
	}{
		{"no source", "/v1/run", `{}`},
		{"two sources", "/v1/run", `{"benchmark":"gcm_n13","experiment":"table3"}`},
		{"unknown benchmark", "/v1/run", `{"benchmark":"nope"}`},
		{"unknown experiment", "/v1/run", `{"experiment":"fig99"}`},
		{"bad distance", "/v1/run", `{"benchmark":"gcm_n13","options":{"distance":4}}`},
		{"bad scheduler", "/v1/run", `{"benchmark":"gcm_n13","options":{"scheduler":"magic"}}`},
		{"malformed circuit", "/v1/run", `{"circuit_text":"1\nbadgate 0\n"}`},
		{"unknown field", "/v1/run", `{"benchmark":"gcm_n13","nope":1}`},
		{"not json", "/v1/run", `hello`},
		{"sweep no benchmarks", "/v1/sweep", `{}`},
		{"sweep unknown benchmark", "/v1/sweep", `{"benchmarks":["nope"]}`},
		{"sweep bad option", "/v1/sweep", `{"benchmarks":["gcm_n13"],"distances":[4]}`},
		{"sweep bad stream mode", "/v1/sweep", `{"benchmarks":["gcm_n13"],"stream":"json"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			body := decode[errorBody](t, resp)
			if body.Error == "" {
				t.Fatal("error body missing")
			}
		})
	}
}

func TestSweepTooWide(t *testing.T) {
	_, ts := newTestServer(t, config.Daemon{}, &countingRunner{})
	wide := SweepRequest{Benchmarks: []string{"gcm_n13"}}
	for i := 0; i < 100; i++ {
		wide.Distances = append(wide.Distances, 7)
		wide.KValues = append(wide.KValues, 25)
	}
	resp := postJSON(t, ts.URL+"/v1/sweep", wide) // 1*3*100*1*100*1 = 30000
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, config.Daemon{}, &countingRunner{})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestBenchmarksEndpoint(t *testing.T) {
	_, ts := newTestServer(t, config.Daemon{}, &countingRunner{})
	resp, err := http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	infos := decode[[]rescq.BenchmarkInfo](t, resp)
	if len(infos) == 0 {
		t.Fatal("no benchmarks listed")
	}
	found := false
	for _, b := range infos {
		if b.Name == "gcm_n13" && b.Qubits > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("gcm_n13 missing from %d benchmarks", len(infos))
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	runner := &countingRunner{}
	s, ts := newTestServer(t, config.Daemon{}, runner)
	postJSON(t, ts.URL+"/v1/run", RunRequest{Benchmark: "gcm_n13"}).Body.Close()
	postJSON(t, ts.URL+"/v1/run", RunRequest{Benchmark: "gcm_n13"}).Body.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decode[healthBody](t, resp)
	if health.Status != "ok" || health.Workers < 1 {
		t.Fatalf("health = %+v", health)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, want := range []string{
		"rescqd_jobs_done_total 2",
		"rescqd_cache_hits_total 1",
		"rescqd_cache_misses_total 1",
		"rescqd_engine_runs_total 1",
		"rescqd_cache_entries 1",
		`rescqd_job_latency_ms{quantile="0.5"}`,
		`rescqd_job_latency_ms{quantile="0.99"}`,
		"rescqd_jobs_running 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}
	_ = s
}

// TestEndToEndRealEngine exercises the full stack once — real engine, real
// benchmark — and proves the cached replay is byte-identical.
func TestEndToEndRealEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("real engine run in -short mode")
	}
	s, ts := newTestServer(t, config.Daemon{}, nil)
	req := RunRequest{
		Benchmark: "vqe_n13",
		Options:   rescq.Options{Runs: 1, Distance: 5},
	}
	first := decode[RunResponse](t, postJSON(t, ts.URL+"/v1/run", req))
	if first.State != JobDone || first.Summary == nil || first.Summary.MeanCycles <= 0 {
		t.Fatalf("real run failed: %+v", first)
	}
	second := decode[RunResponse](t, postJSON(t, ts.URL+"/v1/run", req))
	if !second.Cached {
		t.Fatal("identical real run did not hit the cache")
	}
	a, _ := json.Marshal(first.Summary)
	b, _ := json.Marshal(second.Summary)
	if !bytes.Equal(a, b) {
		t.Fatalf("cached summary differs from computed one:\n%s\n%s", a, b)
	}
	if snap := s.Stats().Snapshot(); snap.EngineRuns != 1 {
		t.Fatalf("engine runs = %d, want 1", snap.EngineRuns)
	}
}

// TestCapabilitiesEndpoint asserts sweep clients can discover every valid
// axis value — benchmarks plus the live scheduler and layout registries —
// instead of guessing.
func TestCapabilitiesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, config.Daemon{Layout: "linear"}, &countingRunner{})
	resp, err := http.Get(ts.URL + "/v1/capabilities")
	if err != nil {
		t.Fatalf("GET capabilities: %v", err)
	}
	caps := decode[Capabilities](t, resp)
	if len(caps.Benchmarks) == 0 {
		t.Error("capabilities list no benchmarks")
	}
	for _, want := range []string{"greedy", "autobraid", "rescq"} {
		if !slices.Contains(caps.Schedulers, want) {
			t.Errorf("schedulers %v missing %q", caps.Schedulers, want)
		}
	}
	var layoutNames []string
	for _, l := range caps.Layouts {
		layoutNames = append(layoutNames, l.Name)
		if l.Description == "" {
			t.Errorf("layout %q has no description", l.Name)
		}
	}
	for _, want := range []string{"star", "linear", "compact", "custom"} {
		if !slices.Contains(layoutNames, want) {
			t.Errorf("layouts %v missing %q", layoutNames, want)
		}
	}
	if len(caps.Experiments) == 0 {
		t.Error("capabilities list no experiments")
	}
	if caps.DefaultLayout != "linear" {
		t.Errorf("default layout = %q, want the configured linear", caps.DefaultLayout)
	}
	for _, want := range []string{"wfq", "fifo"} {
		if !slices.Contains(caps.QueuePolicies, want) {
			t.Errorf("queue policies %v missing %q", caps.QueuePolicies, want)
		}
	}
	for _, want := range []string{"/v1/analytics/groupby", "/v1/analytics/pareto", "/v1/analytics/sensitivity"} {
		if !slices.Contains(caps.Analytics, want) {
			t.Errorf("analytics endpoints %v missing %q", caps.Analytics, want)
		}
	}

	// With analytics disabled, the endpoint list disappears but the rest
	// of the discovery payload is unchanged.
	off := false
	_, ts2 := newTestServer(t, config.Daemon{Analytics: &off}, &countingRunner{})
	resp2, err := http.Get(ts2.URL + "/v1/capabilities")
	if err != nil {
		t.Fatalf("GET capabilities: %v", err)
	}
	caps2 := decode[Capabilities](t, resp2)
	if caps2.Analytics != nil {
		t.Errorf("disabled daemon still advertises analytics endpoints: %v", caps2.Analytics)
	}
	if len(caps2.QueuePolicies) == 0 || len(caps2.Benchmarks) == 0 {
		t.Error("disabling analytics gutted the rest of the capabilities payload")
	}
}

// TestSweepLayoutAxis sweeps the layout dimension with a fake runner and
// asserts the expansion order, the per-configuration layout labels, and
// that distinct layouts produce distinct cache entries.
func TestSweepLayoutAxis(t *testing.T) {
	runner := &countingRunner{}
	_, ts := newTestServer(t, config.Daemon{}, runner)
	req := SweepRequest{
		Benchmarks: []string{"gcm_n13"},
		Schedulers: []string{"rescq"},
		Layouts:    []string{"star", "compact", "linear"},
		Runs:       1,
	}
	view := decode[JobView](t, postJSON(t, ts.URL+"/v1/sweep", req))
	if view.State != JobDone {
		t.Fatalf("sweep state = %s (%s)", view.State, view.Error)
	}
	if len(view.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(view.Results))
	}
	for i, wantLayout := range []string{"star", "compact", "linear"} {
		if view.Results[i].Layout != wantLayout {
			t.Errorf("result %d layout = %q, want %q", i, view.Results[i].Layout, wantLayout)
		}
	}
	if runner.calls.Load() != 3 {
		t.Fatalf("engine calls = %d, want 3 (one per layout; distinct cache keys)", runner.calls.Load())
	}

	// Re-submitting the same grid must hit the cache for every layout.
	again := decode[JobView](t, postJSON(t, ts.URL+"/v1/sweep", req))
	if again.State != JobDone || runner.calls.Load() != 3 {
		t.Fatalf("resweep: state=%s calls=%d, want done/3", again.State, runner.calls.Load())
	}
	for _, res := range again.Results {
		if !res.Cached {
			t.Fatalf("resweep result %d (layout %s) not cached", res.Index, res.Layout)
		}
	}

	// An unknown layout is a 400 whose message enumerates the registry.
	bad := req
	bad.Layouts = []string{"moebius"}
	resp := postJSON(t, ts.URL+"/v1/sweep", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown layout status = %d, want 400", resp.StatusCode)
	}
	body := decode[errorBody](t, resp)
	for _, want := range []string{"moebius", "star", "linear", "compact", "custom"} {
		if !strings.Contains(body.Error, want) {
			t.Errorf("error %q should enumerate %q", body.Error, want)
		}
	}
}

// TestSweepLayoutsRealEngine is the acceptance-criteria sweep: the full
// {star, compact, linear} x {greedy, autobraid, rescq} grid on the real
// engine, streamed per-configuration over NDJSON.
func TestSweepLayoutsRealEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("real engine sweep in -short mode")
	}
	_, ts := newTestServer(t, config.Daemon{}, nil)
	body, _ := json.Marshal(SweepRequest{
		Benchmarks: []string{"vqe_n13"},
		Schedulers: []string{"greedy", "autobraid", "rescq"},
		Layouts:    []string{"star", "compact", "linear"},
		Distances:  []int{5},
		Runs:       1,
		Stream:     StreamNDJSON,
	})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST sweep: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	type cell struct{ sched, layout string }
	seen := map[cell]float64{}
	var lines int
	var terminal JobView
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		lines++
		if lines <= 9 {
			var res ConfigResult
			if err := json.Unmarshal([]byte(line), &res); err != nil {
				t.Fatalf("bad config line %q: %v", line, err)
			}
			if res.Error != "" {
				t.Fatalf("configuration %s/%s failed: %s", res.Scheduler, res.Layout, res.Error)
			}
			if res.Summary == nil || res.Summary.MeanCycles <= 0 {
				t.Fatalf("configuration %s/%s has no usable summary", res.Scheduler, res.Layout)
			}
			seen[cell{res.Scheduler, res.Layout}] = res.Summary.MeanCycles
		} else {
			if err := json.Unmarshal([]byte(line), &terminal); err != nil {
				t.Fatalf("bad terminal line %q: %v", line, err)
			}
		}
	}
	if lines != 10 {
		t.Fatalf("streamed %d lines, want 9 configs + 1 terminal", lines)
	}
	if terminal.State != JobDone || terminal.Progress.Done != 9 {
		t.Fatalf("terminal view = %+v", terminal)
	}
	for _, sched := range []string{"greedy", "autobraid", "rescq"} {
		for _, layout := range []string{"star", "compact", "linear"} {
			if _, ok := seen[cell{sched, layout}]; !ok {
				t.Errorf("missing configuration %s/%s", sched, layout)
			}
		}
	}
}

// TestSweepPerLayoutParams asserts a mixed-layout sweep can parameterize
// just the layouts that take knobs, and that params naming a layout
// outside the axis are rejected up front.
func TestSweepPerLayoutParams(t *testing.T) {
	runner := &countingRunner{}
	_, ts := newTestServer(t, config.Daemon{}, runner)
	req := SweepRequest{
		Benchmarks:   []string{"gcm_n13"},
		Schedulers:   []string{"rescq"},
		Layouts:      []string{"star", "compact"},
		LayoutParams: map[string]map[string]string{"compact": {"fraction": "0.5", "seed": "3"}},
		Runs:         1,
	}
	view := decode[JobView](t, postJSON(t, ts.URL+"/v1/sweep", req))
	if view.State != JobDone {
		t.Fatalf("sweep state = %s (%s)", view.State, view.Error)
	}
	if len(view.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(view.Results))
	}
	star, compact := view.Results[0], view.Results[1]
	if star.Layout != "star" || star.Options.LayoutParams != nil {
		t.Errorf("star config got params: %+v", star.Options)
	}
	if compact.Layout != "compact" || compact.Options.LayoutParams["fraction"] != "0.5" {
		t.Errorf("compact config missing its params: %+v", compact.Options)
	}

	bad := req
	bad.LayoutParams = map[string]map[string]string{"linear": {}}
	resp := postJSON(t, ts.URL+"/v1/sweep", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("params for un-swept layout: status %d, want 400", resp.StatusCode)
	}
	if body := decode[errorBody](t, resp); !strings.Contains(body.Error, "linear") {
		t.Errorf("error should name the offending layout: %s", body.Error)
	}
}
