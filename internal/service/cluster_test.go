package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	rescq "repro"
	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/store"
)

// clusterNode is one in-process cluster member: a service.Server behind a
// real HTTP listener, plus (for workers) the heartbeat loop keeping it
// registered with the coordinator.
type clusterNode struct {
	srv  *Server
	ts   *httptest.Server
	stop context.CancelFunc // heartbeater; nil on the coordinator
	// released is closed when the coordinator acks a drain and the
	// heartbeat loop exits (workers only).
	released chan struct{}
}

// startCoordinator boots a coordinator node (optionally durable).
func startCoordinator(t *testing.T, storeDir string) *clusterNode {
	t.Helper()
	cfg := config.Daemon{
		Workers: 2,
		Cluster: config.Cluster{
			Mode:                config.ModeCoordinator,
			HeartbeatIntervalMS: 50,
			LivenessExpiryMS:    200,
			BatchSize:           3,
		},
	}.WithDefaults()
	s := New(cfg, nil)
	if storeDir != "" {
		if _, err := s.AttachStore(storeDir); err != nil {
			t.Fatalf("AttachStore: %v", err)
		}
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	n := &clusterNode{srv: s, ts: ts}
	t.Cleanup(func() { n.shutdown(t) })
	return n
}

// startWorker boots a worker node with the given runner and keeps it
// heartbeating against the coordinator.
func startWorker(t *testing.T, coordURL string, runner Runner) *clusterNode {
	t.Helper()
	cfg := config.Daemon{
		Workers: 1,
		Cluster: config.Cluster{
			Mode:                config.ModeWorker,
			CoordinatorURL:      coordURL,
			HeartbeatIntervalMS: 50,
		},
	}.WithDefaults()
	s := New(cfg, runner)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	released := make(chan struct{})
	hb := &cluster.Heartbeater{
		Client:         cluster.NewClient(nil),
		CoordinatorURL: coordURL,
		Self:           cluster.RegisterRequest{ID: ts.URL, URL: ts.URL, Capacity: 1, Codecs: cluster.SupportedCodecs()},
		Interval:       cfg.Cluster.HeartbeatInterval(),
		Draining:       s.WorkerDraining,
		OnReleased:     func() { close(released) },
	}
	go hb.Run(ctx)
	n := &clusterNode{srv: s, ts: ts, stop: cancel, released: released}
	t.Cleanup(func() { n.shutdown(t) })
	return n
}

func (n *clusterNode) shutdown(t *testing.T) {
	if n.stop != nil {
		n.stop()
		n.stop = nil
	}
	n.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	n.srv.Shutdown(ctx)
}

// kill hard-kills a worker node, in-process style: heartbeats stop and
// every open connection is severed mid-flight, exactly what the
// coordinator observes when the worker process is SIGKILLed.
func (n *clusterNode) kill() {
	if n.stop != nil {
		n.stop()
		n.stop = nil
	}
	n.ts.CloseClientConnections()
}

func waitForWorkers(t *testing.T, coord *clusterNode, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ws, _ := coord.srv.ClusterWorkers(); len(ws) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	ws, _ := coord.srv.ClusterWorkers()
	t.Fatalf("coordinator sees %d workers, want %d", len(ws), want)
}

// chaosSweep is the kill-mid-sweep workload: 2 benchmarks x 3 schedulers
// x 2 distances x 2 physical error rates = 24 distinct configurations.
var chaosSweep = SweepRequest{
	Benchmarks: []string{"vqe_n13", "qft_n18"},
	Schedulers: []string{"greedy", "autobraid", "rescq"},
	Distances:  []int{3, 5},
	PhysErrors: []float64{1e-4, 1e-3},
	Runs:       1,
	Async:      true,
}

// victimRunner never completes a configuration: it signals the first call
// and then blocks until the request context dies (which is what a real
// engine run does when its worker process is killed mid-simulation).
type victimRunner struct {
	once    sync.Once
	started chan struct{}
}

func (v *victimRunner) stall(ctx context.Context) error {
	v.once.Do(func() { close(v.started) })
	<-ctx.Done()
	return fmt.Errorf("worker killed mid-run: %w", ctx.Err())
}

func (v *victimRunner) Run(ctx context.Context, bench string, opts rescq.Options) (rescq.Summary, error) {
	return rescq.Summary{}, v.stall(ctx)
}

func (v *victimRunner) RunCircuitText(ctx context.Context, name, text string, opts rescq.Options) (rescq.Summary, error) {
	return rescq.Summary{}, v.stall(ctx)
}

func (v *victimRunner) Experiment(ctx context.Context, id string, quick bool) (string, error) {
	return "", v.stall(ctx)
}

// normalizeResults strips the volatile fields (cached) so cluster and
// standalone result sets can be compared byte-for-byte.
func normalizeResults(t *testing.T, results []ConfigResult) []byte {
	t.Helper()
	out := make([]ConfigResult, len(results))
	copy(out, results)
	for i := range out {
		out[i].Cached = false
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestClusterKillWorkerMidSweep is the scale-out acceptance test: one
// coordinator, three workers, a 24-configuration sweep, and one worker
// hard-killed while it holds a batch. The sweep must complete with every
// configuration byte-identical to a standalone run (modulo the cached
// flag), the dead worker's batch must observably re-dispatch to a
// survivor, and the coordinator's WAL must hold the full result sequence
// in index order.
func TestClusterKillWorkerMidSweep(t *testing.T) {
	storeDir := t.TempDir()
	coord := startCoordinator(t, storeDir)

	victim := &victimRunner{started: make(chan struct{})}
	w1 := startWorker(t, coord.ts.URL, nil) // real engine
	w2 := startWorker(t, coord.ts.URL, victim)
	w3 := startWorker(t, coord.ts.URL, nil) // real engine
	_, _ = w1, w3
	waitForWorkers(t, coord, 3)

	// Submit the sweep; the victim stalls the first batch it receives.
	resp := postJSON(t, coord.ts.URL+"/v1/sweep", chaosSweep)
	accepted := decode[JobView](t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: %d", resp.StatusCode)
	}

	select {
	case <-victim.started:
	case <-time.After(10 * time.Second):
		t.Fatal("victim worker never received a batch")
	}
	w2.kill() // SIGKILL-equivalent: heartbeats stop, connections sever

	view := waitForJob(t, coord.ts.URL, accepted.ID)
	if view.State != JobDone {
		t.Fatalf("sweep finished %s (%s), want done", view.State, view.Error)
	}
	if view.Progress.Done != 24 || view.Progress.Total != 24 {
		t.Fatalf("progress = %+v, want 24/24", view.Progress)
	}
	if n := coord.srv.Stats().BatchesRedispatched.Load(); n == 0 {
		t.Fatal("dead worker's batch was never re-dispatched (counter is 0)")
	}
	if n := coord.srv.Stats().RemoteConfigs.Load(); n == 0 {
		t.Fatal("no configuration was executed remotely")
	}
	if n := coord.srv.Stats().WireBinaryBatches.Load(); n == 0 {
		t.Fatal("workers advertised the binary codec but no batch went over the binary wire")
	}
	if n := coord.srv.Stats().WireBinaryBytesOut.Load(); n == 0 {
		t.Fatal("binary batches were counted but no outbound wire bytes were")
	}

	// Fetch the completed results from the coordinator.
	full := decode[JobView](t, get(t, coord.ts.URL+"/v1/jobs/"+accepted.ID))
	gotJSON := normalizeResults(t, full.Results)

	// The same sweep on a standalone daemon must produce byte-identical
	// results.
	standalone, ts := newTestServer(t, config.Daemon{Workers: 2}, nil)
	_ = standalone
	req := chaosSweep
	req.Async = false
	sView := decode[JobView](t, postJSON(t, ts.URL+"/v1/sweep", req))
	wantJSON := normalizeResults(t, sView.Results)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("cluster sweep differs from standalone run:\ncluster:\n%s\nstandalone:\n%s", gotJSON, wantJSON)
	}

	// Re-submitting the sweep hits the coordinator cache for every
	// configuration: no new dispatches, every result flagged cached.
	dispatchedBefore := coord.srv.Stats().BatchesDispatched.Load()
	req2 := chaosSweep
	req2.Async = false
	second := decode[JobView](t, postJSON(t, coord.ts.URL+"/v1/sweep", req2))
	if len(second.Results) != 24 {
		t.Fatalf("second sweep returned %d results", len(second.Results))
	}
	for _, r := range second.Results {
		if !r.Cached {
			t.Fatalf("second sweep config %d not served from cache", r.Index)
		}
	}
	if after := coord.srv.Stats().BatchesDispatched.Load(); after != dispatchedBefore {
		t.Fatalf("cached sweep dispatched %d new batches", after-dispatchedBefore)
	}

	// The WAL holds the job with all 24 results in index order, so a
	// kill-restart of the coordinator would resume/replay it byte-identically.
	coord.shutdown(t)
	st, err := store.Open(storeDir, store.Options{})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer st.Close()
	var found bool
	for _, rj := range st.Replayed() {
		if rj.Job.ID != accepted.ID {
			continue
		}
		found = true
		if rj.State != string(JobDone) {
			t.Fatalf("WAL state = %q, want done", rj.State)
		}
		if len(rj.Results) != 24 {
			t.Fatalf("WAL holds %d results, want 24", len(rj.Results))
		}
		for i, rr := range rj.Results {
			if rr.Index != i {
				t.Fatalf("WAL result %d has index %d (not in order)", i, rr.Index)
			}
		}
	}
	if !found {
		t.Fatalf("job %s not found in WAL", accepted.ID)
	}
}

// TestClusterFallbackWithoutWorkers: a coordinator with no registered
// workers behaves exactly like a standalone daemon (local pool fallback).
func TestClusterFallbackWithoutWorkers(t *testing.T) {
	coord := startCoordinator(t, "")
	req := chaosSweep
	req.Benchmarks = []string{"vqe_n13"}
	req.Async = false
	view := decode[JobView](t, postJSON(t, coord.ts.URL+"/v1/sweep", req))
	if view.State != JobDone || len(view.Results) != 12 {
		t.Fatalf("fallback sweep: state=%s results=%d, want done/12", view.State, len(view.Results))
	}
	if n := coord.srv.Stats().BatchesDispatched.Load(); n != 0 {
		t.Fatalf("workerless coordinator dispatched %d batches", n)
	}
	if n := coord.srv.Stats().EngineRuns.Load(); n == 0 {
		t.Fatal("fallback never ran the local engine")
	}
}

// TestClusterWorkerExpiry: a worker that stops heartbeating is expired by
// the liveness sweeper and disappears from /healthz.
func TestClusterWorkerExpiry(t *testing.T) {
	coord := startCoordinator(t, "")
	client := cluster.NewClient(nil)
	resp, err := client.Register(context.Background(), coord.ts.URL,
		cluster.RegisterRequest{ID: "w-ghost", URL: "http://127.0.0.1:1", Capacity: 1})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if resp.Workers != 1 || resp.ExpiresInMS != 200 {
		t.Fatalf("register response = %+v", resp)
	}
	waitForWorkers(t, coord, 1)
	waitForWorkers(t, coord, 0) // never heartbeats again: expired
	if n := coord.srv.Stats().WorkerExpiries.Load(); n == 0 {
		t.Fatal("expiry counter is 0 after a worker was expired")
	}
	health := decode[healthBody](t, get(t, coord.ts.URL+"/healthz"))
	if health.Cluster == nil || health.Cluster.Mode != config.ModeCoordinator {
		t.Fatalf("healthz cluster section = %+v", health.Cluster)
	}
	if health.Cluster.WorkerExpiries == 0 || health.Cluster.LiveWorkers != 0 {
		t.Fatalf("healthz cluster counters = %+v", health.Cluster)
	}
}

// TestWorkerExecuteEndpoint covers the worker-side dispatch surface
// directly: a valid batch executes in order, malformed batches are 400s.
func TestWorkerExecuteEndpoint(t *testing.T) {
	runner := &countingRunner{}
	cfg := config.Daemon{
		Workers: 1,
		Cluster: config.Cluster{Mode: config.ModeWorker, CoordinatorURL: "http://unused:1"},
	}.WithDefaults()
	s := New(cfg, runner)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	specs := []runSpec{
		{Benchmark: "gcm_n13", Opts: rescq.Options{Runs: 1}},
		{Benchmark: "qft_n18", Opts: rescq.Options{Runs: 1}},
	}
	req := cluster.ExecuteRequest{JobID: "job-000001", Configs: make([]cluster.ExecuteConfig, len(specs))}
	for i, sp := range specs {
		data, err := json.Marshal(sp)
		if err != nil {
			t.Fatal(err)
		}
		req.Configs[i] = cluster.ExecuteConfig{Index: i + 5, Spec: data}
	}
	resp := postJSON(t, ts.URL+cluster.ExecutePath, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute: %d", resp.StatusCode)
	}
	out := decode[cluster.ExecuteResponse](t, resp)
	if len(out.Results) != 2 {
		t.Fatalf("execute returned %d results", len(out.Results))
	}
	for i, raw := range out.Results {
		var res ConfigResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if res.Index != i+5 || res.Summary == nil || res.Benchmark != specs[i].Benchmark {
			t.Fatalf("result %d = %+v", i, res)
		}
	}
	if runner.calls.Load() != 2 {
		t.Fatalf("runner ran %d times, want 2", runner.calls.Load())
	}

	// Malformed batches never reach the engine.
	for _, body := range []string{
		``, `{`, `{"job_id":"j","configs":[]}`,
		`{"job_id":"j","configs":[{"index":0,"spec":"not-a-spec"}]}`,
	} {
		r, err := http.Post(ts.URL+cluster.ExecutePath, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, r.StatusCode)
		}
	}

	// A standalone daemon does not expose the internal endpoints at all.
	sa, tsa := newTestServer(t, config.Daemon{}, &countingRunner{})
	_ = sa
	r := postJSON(t, tsa.URL+cluster.ExecutePath, req)
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("standalone execute endpoint: %d, want 404", r.StatusCode)
	}
}

// TestClusterLegacyWorkerJSONFallback is the mixed-version acceptance
// test: a worker from a build that predates codec negotiation registers
// without a codecs list, and the coordinator must finish the sweep over
// the JSON wire rather than speak binary at a peer that never offered it.
func TestClusterLegacyWorkerJSONFallback(t *testing.T) {
	coord := startCoordinator(t, "")

	cfg := config.Daemon{
		Workers: 1,
		Cluster: config.Cluster{
			Mode:                config.ModeWorker,
			CoordinatorURL:      coord.ts.URL,
			HeartbeatIntervalMS: 50,
		},
	}.WithDefaults()
	s := New(cfg, nil)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	hb := &cluster.Heartbeater{
		Client:         cluster.NewClient(nil),
		CoordinatorURL: coord.ts.URL,
		// No Codecs field: exactly what an old worker binary sends.
		Self:     cluster.RegisterRequest{ID: ts.URL, URL: ts.URL, Capacity: 1},
		Interval: cfg.Cluster.HeartbeatInterval(),
	}
	go hb.Run(ctx)
	legacy := &clusterNode{srv: s, ts: ts, stop: cancel}
	t.Cleanup(func() { legacy.shutdown(t) })
	waitForWorkers(t, coord, 1)

	req := chaosSweep
	req.Benchmarks = []string{"vqe_n13"}
	req.Async = false
	view := decode[JobView](t, postJSON(t, coord.ts.URL+"/v1/sweep", req))
	if view.State != JobDone || len(view.Results) != 12 {
		t.Fatalf("mixed-version sweep: state=%s results=%d, want done/12", view.State, len(view.Results))
	}
	if n := coord.srv.Stats().RemoteConfigs.Load(); n == 0 {
		t.Fatal("legacy worker executed nothing remotely")
	}
	if n := coord.srv.Stats().WireJSONBatches.Load(); n == 0 {
		t.Fatal("no batch fell back to the JSON wire for the legacy worker")
	}
	if n := coord.srv.Stats().WireBinaryBatches.Load(); n != 0 {
		t.Fatalf("%d batches went over the binary wire to a worker that never advertised it", n)
	}
}

// TestWorkerExecuteCancelReturns503: when the coordinator hangs up
// mid-batch, the worker must answer with an explicit 503, not the empty
// 200 it used to write — a coordinator whose cancel came from a proxy
// hiccup rather than its own dispatcher would misread the empty 200 as a
// zero-result success.
func TestWorkerExecuteCancelReturns503(t *testing.T) {
	victim := &victimRunner{started: make(chan struct{})}
	cfg := config.Daemon{
		Workers: 1,
		Cluster: config.Cluster{Mode: config.ModeWorker, CoordinatorURL: "http://unused:1"},
	}.WithDefaults()
	s := New(cfg, victim)
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	spec, err := json.Marshal(runSpec{Benchmark: "vqe_n13", Opts: rescq.Options{Runs: 1}})
	if err != nil {
		t.Fatal(err)
	}
	req := cluster.ExecuteRequest{JobID: "job-000001", Configs: []cluster.ExecuteConfig{
		{Index: 0, Spec: spec}, {Index: 1, Spec: spec},
	}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hr := httptest.NewRequest(http.MethodPost, cluster.ExecutePath, bytes.NewReader(body)).WithContext(ctx)
	hr.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()

	done := make(chan struct{})
	go func() {
		s.handleExecute(rec, hr)
		close(done)
	}()
	select {
	case <-victim.started: // config 0 is on the engine
	case <-time.After(10 * time.Second):
		t.Fatal("batch never reached the runner")
	}
	cancel() // the coordinator hangs up mid-batch
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after cancellation")
	}

	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled batch answered %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "batch abandoned") {
		t.Fatalf("503 body = %q, want an explicit abandonment error", rec.Body.String())
	}
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

// TestBatchSizerProgression pins the adaptive sizer's three regimes: a
// doubling ramp-up while the latency histogram is cold, target/p50-sized
// batches once it is warm (clamped to the BatchSize cap), and the
// tail-split rule spreading a small backlog across every free slot.
func TestBatchSizerProgression(t *testing.T) {
	cfg := config.Daemon{
		Workers: 1,
		Cluster: config.Cluster{
			Mode:                config.ModeCoordinator,
			HeartbeatIntervalMS: 50,
			LivenessExpiryMS:    200,
			BatchSize:           64,
			BatchTargetMS:       100,
		},
	}
	s := New(cfg, nil)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	z := newBatchSizer(s)
	// Cold histogram: ramp-up batches double regardless of a deep backlog.
	for _, want := range []int{1, 2, 4, 8} {
		if got := z.next(1000, 1); got != want {
			t.Fatalf("cold sizer ramp = %d, want %d", got, want)
		}
	}

	// Warm histogram at p50 = 20ms: a 100ms target packs 5 per batch.
	for i := 0; i < 2*minLatencySamples; i++ {
		s.stats.ObserveConfigLatency(20 * time.Millisecond)
	}
	if got := z.next(1000, 1); got != 5 {
		t.Fatalf("steady-state size = %d, want 100ms/20ms = 5", got)
	}

	// Tail split: 10 configs over 4 free slots is ceil(10/4) = 3 per batch,
	// smaller than steady state, so the tail fans out.
	if got := z.next(10, 4); got != 3 {
		t.Fatalf("tail-split size = %d, want 3", got)
	}
	// The split never undercuts 1, and a deep backlog ignores it.
	if got := z.next(1, 8); got != 1 {
		t.Fatalf("tail-split floor = %d, want 1", got)
	}
	if got := z.next(1000, 4); got != 5 {
		t.Fatalf("deep-backlog size = %d, want steady-state 5", got)
	}

	// The -batch-size cap always wins: sub-millisecond configurations would
	// otherwise ask for target/0.
	fast := New(cfg, nil)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		fast.Shutdown(ctx)
	})
	for i := 0; i < 2*minLatencySamples; i++ {
		fast.stats.ObserveConfigLatency(0)
	}
	if got := newBatchSizer(fast).next(1000, 1); got != 64 {
		t.Fatalf("sub-ms size = %d, want the cap 64", got)
	}
}

// TestClusterDrainWorkerMidSweep is the elasticity acceptance test: drain
// one of three workers while a sweep is in flight. The sweep must finish
// with results byte-identical to a standalone run (zero lost or duplicated
// configurations), the drained worker must deregister cleanly (released by
// the coordinator, heartbeat loop exited) and refuse new batches with 503.
func TestClusterDrainWorkerMidSweep(t *testing.T) {
	runner := skewRunner{fast: 15 * time.Millisecond, slow: 15 * time.Millisecond}
	coord := startCoordinator(t, "")
	w1 := startWorker(t, coord.ts.URL, runner)
	victim := startWorker(t, coord.ts.URL, runner)
	w2 := startWorker(t, coord.ts.URL, runner)
	_, _ = w1, w2
	waitForWorkers(t, coord, 3)

	resp := postJSON(t, coord.ts.URL+"/v1/sweep", chaosSweep)
	accepted := decode[JobView](t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: %d", resp.StatusCode)
	}

	// Wait until dispatch is genuinely under way, then drain the victim.
	deadline := time.Now().Add(10 * time.Second)
	for coord.srv.Stats().BatchesDispatched.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no batch dispatched within 10s")
		}
		time.Sleep(time.Millisecond)
	}
	dr := decode[cluster.DrainResponse](t, postJSON(t, victim.ts.URL+cluster.DrainPath, struct{}{}))
	if !dr.Draining {
		t.Fatal("drain not acknowledged")
	}
	// Draining is idempotent: a second POST re-acknowledges.
	dr = decode[cluster.DrainResponse](t, postJSON(t, victim.ts.URL+cluster.DrainPath, struct{}{}))
	if !dr.Draining {
		t.Fatal("second drain not acknowledged")
	}

	view := waitForJob(t, coord.ts.URL, accepted.ID)
	if view.State != JobDone {
		t.Fatalf("sweep finished %s (%s), want done", view.State, view.Error)
	}
	if view.Progress.Done != 24 || view.Progress.Total != 24 {
		t.Fatalf("progress = %+v, want 24/24", view.Progress)
	}

	// Clean deregistration: the registry drops to two workers, the
	// coordinator counts the drain, and the worker's heartbeat loop exits
	// on the released ack.
	waitForWorkers(t, coord, 2)
	if n := coord.srv.Stats().WorkersDrained.Load(); n != 1 {
		t.Fatalf("WorkersDrained = %d, want 1", n)
	}
	select {
	case <-victim.released:
	case <-time.After(10 * time.Second):
		t.Fatal("drained worker's heartbeater never observed the release")
	}

	// The drained worker refuses new batches.
	execReq := cluster.ExecuteRequest{JobID: "job-x", Configs: []cluster.ExecuteConfig{{Index: 0, Spec: json.RawMessage(`{}`)}}}
	execResp := postJSON(t, victim.ts.URL+cluster.ExecutePath, execReq)
	execResp.Body.Close()
	if execResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining worker answered execute with %d, want 503", execResp.StatusCode)
	}

	// Byte-identical to a standalone run over the same stub engine: no
	// configuration was lost to the retiring worker, none was duplicated.
	full := decode[JobView](t, get(t, coord.ts.URL+"/v1/jobs/"+accepted.ID))
	gotJSON := normalizeResults(t, full.Results)
	_, ts := newTestServer(t, config.Daemon{Workers: 2}, runner)
	req := chaosSweep
	req.Async = false
	sView := decode[JobView](t, postJSON(t, ts.URL+"/v1/sweep", req))
	wantJSON := normalizeResults(t, sView.Results)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("drained cluster sweep differs from standalone run:\ncluster:\n%s\nstandalone:\n%s", gotJSON, wantJSON)
	}
}
