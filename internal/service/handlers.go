package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	rescq "repro"
	"repro/internal/analytics"
	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/schedq"
	"repro/internal/store"
)

// RunRequest is the POST /v1/run payload. Exactly one of Benchmark,
// CircuitText or Experiment must be set.
type RunRequest struct {
	// Benchmark names a Table 3 circuit, e.g. "gcm_n13".
	Benchmark string `json:"benchmark,omitempty"`
	// CircuitText is a circuit in the artifact text format; Name labels it.
	CircuitText string `json:"circuit_text,omitempty"`
	Name        string `json:"name,omitempty"`
	// Experiment regenerates a paper table/figure (see GET /v1/benchmarks
	// for benchmarks, rescq.ExperimentIDs for ids); Quick runs the reduced
	// sweep.
	Experiment string `json:"experiment,omitempty"`
	Quick      bool   `json:"quick,omitempty"`
	// Options configures the simulation (ignored for Experiment payloads).
	Options rescq.Options `json:"options"`
	// Async returns a job id immediately instead of waiting.
	Async bool `json:"async,omitempty"`
	// IncludeLatencies keeps the per-gate latency arrays in the response
	// (they are stripped by default — tens of thousands of ints per run).
	IncludeLatencies bool `json:"include_latencies,omitempty"`
	// Tenant names the submitting tenant for scheduling and quotas; it
	// overrides the X-Rescq-Tenant header. Empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// RunResponse is the POST /v1/run reply.
type RunResponse struct {
	JobID   string         `json:"job_id"`
	State   JobState       `json:"state"`
	Cached  bool           `json:"cached,omitempty"`
	Summary *rescq.Summary `json:"summary,omitempty"`
	Report  string         `json:"report,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// JobProgress reports how far a job has advanced.
type JobProgress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// JobView is the GET /v1/jobs/{id} payload.
type JobView struct {
	ID       string         `json:"id"`
	Kind     string         `json:"kind"`
	Tenant   string         `json:"tenant"`
	State    JobState       `json:"state"`
	Created  time.Time      `json:"created"`
	Started  *time.Time     `json:"started,omitempty"`
	Finished *time.Time     `json:"finished,omitempty"`
	Progress JobProgress    `json:"progress"`
	Results  []ConfigResult `json:"results,omitempty"`
	Error    string         `json:"error,omitempty"`
	// ResumedFrom names the job this one continued (POST .../resume).
	ResumedFrom string `json:"resumed_from,omitempty"`
}

func (s *Server) jobView(j *Job, includeResults bool) JobView {
	state, started, finished, results, err := j.snapshot()
	v := JobView{
		ID:       j.ID,
		Kind:     j.Kind,
		Tenant:   j.Tenant,
		State:    state,
		Created:  j.Created,
		Progress: JobProgress{Done: len(results), Total: len(j.specs)},
	}
	if !started.IsZero() {
		v.Started = &started
	}
	if !finished.IsZero() {
		v.Finished = &finished
	}
	if includeResults {
		v.Results = results
	}
	if err != nil {
		v.Error = err.Error()
	}
	v.ResumedFrom = j.resumedFrom
	return v
}

// stripLatencies drops the per-gate latency arrays from a result via a
// fresh Summary copy (the original — e.g. the cache's — is untouched).
// fillResult applies it at store time unless the request opted in with
// include_latencies, so stored jobs stay small.
func stripLatencies(res *ConfigResult) {
	if res.Summary == nil {
		return
	}
	sum := *res.Summary
	sum.Runs = append([]rescq.Result(nil), sum.Runs...)
	for i := range sum.Runs {
		sum.Runs[i].CNOTLatencies = nil
		sum.Runs[i].RzLatencies = nil
	}
	res.Summary = &sum
}

// Handler returns the daemon's HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("POST /v1/jobs/{id}/resume", s.handleResumeJob)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /v1/capabilities", s.handleCapabilities)
	mux.HandleFunc("GET /v1/analytics/groupby", s.handleAnalyticsGroupBy)
	mux.HandleFunc("GET /v1/analytics/pareto", s.handleAnalyticsPareto)
	mux.HandleFunc("GET /v1/analytics/sensitivity", s.handleAnalyticsSensitivity)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.clust != nil {
		switch s.clust.cfg.Mode {
		case config.ModeCoordinator:
			mux.HandleFunc("POST "+cluster.RegisterPath, s.handleRegister)
		case config.ModeWorker:
			mux.HandleFunc("POST "+cluster.ExecutePath, s.handleExecute)
			mux.HandleFunc("POST "+cluster.DrainPath, s.handleDrain)
		}
	}
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// TenantHeader is the request header naming the submitting tenant for /v1
// submissions. A `tenant` body field overrides it; requests carrying
// neither run as the default tenant.
const TenantHeader = "X-Rescq-Tenant"

// resolveTenant derives a submission's tenant identity: body field over
// header over the default tenant. An identity that names a tenant must be
// a valid tenant name (400 otherwise).
func resolveTenant(r *http.Request, bodyTenant string) (string, error) {
	tn := bodyTenant
	if tn == "" {
		tn = r.Header.Get(TenantHeader)
	}
	if tn == "" {
		return schedq.DefaultTenant, nil
	}
	if err := schedq.ValidTenant(tn); err != nil {
		return "", err
	}
	return tn, nil
}

// submitStatus maps a submission error to its HTTP status.
func submitStatus(err error) int {
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDraining) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// writeSubmitError renders a failed submission. Admission-control sheds
// become 429 with a Retry-After hint; queue-full and draining stay 503.
func writeSubmitError(w http.ResponseWriter, err error) {
	var ov *OverloadError
	if errors.As(err, &ov) {
		secs := int(ov.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	}
	writeError(w, submitStatus(err), err)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := s.validateRun(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tenant, err := resolveTenant(r, req.Tenant)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j := s.newJob("run", tenant, []runSpec{spec})
	if err := s.submit(j); err != nil {
		writeSubmitError(w, err)
		return
	}
	if req.Async {
		writeJSON(w, http.StatusAccepted, s.jobView(j, false))
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		// The client went away; nobody will read the result, so stop the
		// job — the cancellation reaches the engine's cycle loop.
		j.Cancel()
		return
	}
	_, _, _, results, jerr := j.snapshot()
	resp := RunResponse{JobID: j.ID, State: j.State()}
	if len(results) == 1 {
		res := results[0]
		resp.Cached = res.Cached
		resp.Summary = res.Summary
		resp.Report = res.Report
		resp.Error = res.Error
	} else if jerr != nil {
		resp.Error = jerr.Error()
	}
	status := http.StatusOK
	if resp.State == JobFailed {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	specs, err := s.expandSweep(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tenant, err := resolveTenant(r, req.Tenant)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j := s.newJob("sweep", tenant, specs)
	if err := s.submit(j); err != nil {
		writeSubmitError(w, err)
		return
	}
	switch {
	case req.Async:
		writeJSON(w, http.StatusAccepted, s.jobView(j, false))
	case req.Stream == StreamSSE:
		s.streamSSE(w, r, j)
	case req.Stream == StreamNDJSON:
		s.streamNDJSON(w, r, j)
	default:
		// Plain synchronous sweep: wait and return the whole job.
		select {
		case <-j.Done():
			writeJSON(w, http.StatusOK, s.jobView(j, true))
		case <-r.Context().Done():
			j.Cancel()
		}
	}
}

// streamSSE publishes one Server-Sent Event per completed configuration,
// then a terminal "done" event with the job view (results elided — the
// client already streamed them).
func (s *Server) streamSSE(w http.ResponseWriter, r *http.Request, j *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("service: streaming unsupported"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Job-ID", j.ID)
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	emit := func(event string, v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return err // client went away mid-write
		}
		flusher.Flush()
		return nil
	}
	s.streamEvents(r, j,
		func(res ConfigResult) error { return emit("config", res) },
		func() { emit("done", s.jobView(j, false)) })
}

// streamNDJSON publishes one JSON line per completed configuration, then a
// terminal line holding the job view.
func (s *Server) streamNDJSON(w http.ResponseWriter, r *http.Request, j *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("service: streaming unsupported"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("X-Job-ID", j.ID)
	w.WriteHeader(http.StatusOK)
	flusher.Flush() // headers reach the client before the first configuration lands
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	s.streamEvents(r, j,
		func(res ConfigResult) error {
			if err := enc.Encode(res); err != nil {
				return err // client went away mid-write
			}
			flusher.Flush()
			return nil
		},
		func() {
			if enc.Encode(s.jobView(j, false)) == nil {
				flusher.Flush()
			}
		})
}

// streamEvents drives a streaming response: per-configuration callbacks in
// completion order, then the terminal callback. A client disconnect —
// whether surfaced by the request context or by a failed write — cancels
// the job and ends the stream, so neither this goroutine nor the job keeps
// burning engine time for a reader that is gone.
func (s *Server) streamEvents(r *http.Request, j *Job, onConfig func(ConfigResult) error, onDone func()) {
	for {
		select {
		case res, ok := <-j.events:
			if !ok {
				onDone()
				return
			}
			if err := onConfig(res); err != nil {
				// The write failed: the connection is dead even if the
				// request context has not fired yet. Stop the job rather
				// than streaming the rest of the sweep to nobody.
				j.Cancel()
				return
			}
		case <-r.Context().Done():
			// The worker's sends are buffered to len(specs), so abandoning
			// the channel cannot block it; stop the job and return now
			// rather than pinning this goroutine until a (possibly still
			// queued) job reaches its cancellation boundary.
			j.Cancel()
			return
		}
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	tenant := r.URL.Query().Get("tenant")
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		if tenant != "" && j.Tenant != tenant {
			continue
		}
		views = append(views, s.jobView(j, false))
	}
	// Sort by the numeric job counter, not the id string: the registry
	// shards (and the WAL-replayed history inside them) iterate in map
	// order, and plain string order misorders ids once the counter
	// outgrows its zero padding — either way restart listings would not be
	// deterministic.
	sort.Slice(views, func(a, b int) bool { return store.JobIDLess(views[a].ID, views[b].ID) })
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.jobView(j, true))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown job %q", r.PathValue("id")))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, s.jobView(j, false))
}

// handleResumeJob continues a finished-but-incomplete job (cancelled,
// failed, or interrupted by a crash and replayed from the WAL) as a fresh
// job: the completed prefix of results is inherited verbatim and execution
// picks up at the first unfinished configuration. Responds 202 with the
// new job's view; 409 when the job is still queued/running or already
// complete.
func (s *Server) handleResumeJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown job %q", r.PathValue("id")))
		return
	}
	state, _, _, results, _ := j.snapshot()
	if err := resumable(state, len(results), len(j.specs)); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	// Claim the resume slot under the job lock: concurrent resumes of one
	// job must not both enqueue the remaining work. Terminal states never
	// regress, so the resumable check above stays valid once claimed.
	j.mu.Lock()
	if prev := j.resumedTo; prev != "" {
		j.mu.Unlock()
		writeError(w, http.StatusConflict,
			fmt.Errorf("service: job already resumed as %s", prev))
		return
	}
	j.resumedTo = "(resuming)"
	j.mu.Unlock()
	nj := s.resumeJob(j)
	if err := s.submit(nj); err != nil {
		j.mu.Lock()
		j.resumedTo = "" // release the claim; the resume never started
		j.mu.Unlock()
		writeSubmitError(w, err)
		return
	}
	j.mu.Lock()
	j.resumedTo = nj.ID
	j.mu.Unlock()
	writeJSON(w, http.StatusAccepted, s.jobView(nj, false))
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rescq.Benchmarks())
}

// Capabilities is the GET /v1/capabilities payload: every valid value of
// every sweepable axis, read live from the benchmark suite and the
// scheduler/layout registries, so sweep clients can discover the space
// instead of guessing (and get new axes the moment a policy or tiling
// registers itself).
type Capabilities struct {
	Benchmarks  []rescq.BenchmarkInfo `json:"benchmarks"`
	Schedulers  []string              `json:"schedulers"`
	Layouts     []rescq.LayoutInfo    `json:"layouts"`
	Experiments []string              `json:"experiments"`
	// QueuePolicies lists the registered job-queue scheduling policies
	// (see internal/schedq and the queue_policy config field).
	QueuePolicies []string `json:"queue_policies"`
	// DefaultLayout is the daemon's configured default for requests that
	// do not name a layout ("star" unless overridden).
	DefaultLayout string `json:"default_layout"`
	// Analytics lists the mounted sweep-analytics endpoints; omitted when
	// the daemon runs with analytics disabled.
	Analytics []string `json:"analytics,omitempty"`
}

func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	def := s.cfg.Layout
	if def == "" {
		def = rescq.DefaultLayout
	}
	caps := Capabilities{
		Benchmarks:    rescq.Benchmarks(),
		Schedulers:    rescq.Schedulers(),
		Layouts:       rescq.LayoutCatalog(),
		Experiments:   append([]string(nil), rescq.ExperimentIDs...),
		QueuePolicies: schedq.Names(),
		DefaultLayout: def,
	}
	if s.an != nil {
		caps.Analytics = analyticsEndpoints()
	}
	writeJSON(w, http.StatusOK, caps)
}

// storeHealth is the /healthz durability section (present only when a
// store is attached): the WAL's size and the replay/coalesce/shed counters
// in JSON form, mirroring their Prometheus twins on /metrics.
type storeHealth struct {
	Jobs        int   `json:"jobs"`
	Records     int   `json:"records"`
	Bytes       int64 `json:"bytes"`
	Compactions int64 `json:"compactions"`
	// Codec is the WAL's on-disk record format ("binary" or "json").
	Codec           string `json:"codec,omitempty"`
	ReplayedJobs    int64  `json:"replayed_jobs"`
	ReplayedResults int64  `json:"replayed_results"`
	// Durable is false while the daemon serves in lossy mode (a WAL write
	// failed; the probe has not yet re-attached the disk) — never omitted,
	// because false is exactly the value a monitor alerts on.
	Durable bool `json:"durable"`
	// ReplayDropped counts interrupted jobs left resumable on disk because
	// re-enqueueing them overflowed the queue at startup.
	ReplayDropped int   `json:"replay_dropped"`
	LossyWrites   int64 `json:"lossy_writes,omitempty"`
}

// clusterHealth is the /healthz scale-out section (present only in
// coordinator or worker mode): the mode, the live worker membership with
// per-worker load, and the dispatch counters in JSON form, mirroring
// their Prometheus twins on /metrics.
type clusterHealth struct {
	Mode string `json:"mode"`
	// LiveWorkers is never omitted: zero is exactly the value a monitor
	// alerts on (a coordinator whose workers all died).
	LiveWorkers         int                  `json:"live_workers"`
	Workers             []cluster.WorkerInfo `json:"workers,omitempty"`
	BatchesDispatched   int64                `json:"batches_dispatched"`
	BatchesRedispatched int64                `json:"batches_redispatched"`
	BatchesHedged       int64                `json:"batches_hedged"`
	DispatchRetries     int64                `json:"dispatch_retries"`
	BreakerOpens        int64                `json:"breaker_opens"`
	RemoteConfigs       int64                `json:"remote_configs"`
	Heartbeats          int64                `json:"heartbeats"`
	WorkerExpiries      int64                `json:"worker_expiries"`
	WorkersDrained      int64                `json:"workers_drained"`
	// Scale signal (coordinator only): the admitted backlog in estimated
	// milliseconds of work, the live non-draining capacity slots it spreads
	// over, and the per-slot quotient — the number an autoscaler compares
	// against batch_target_ms. Never omitted: zero is the "scale down"
	// reading.
	BacklogMS     int64   `json:"backlog_ms"`
	CapacitySlots int64   `json:"capacity_slots"`
	ScaleSignal   float64 `json:"scale_signal_ms_per_slot"`
	// WorkerDraining (worker mode only) reports the retirement latch.
	WorkerDraining bool `json:"worker_draining,omitempty"`
}

// tenantHealth is one tenant's /healthz row: live scheduler state joined
// with the tenant's lifecycle counters.
type tenantHealth struct {
	Weight         int     `json:"weight"`
	QueuedJobs     int     `json:"queued_jobs"`
	OpenJobs       int     `json:"open_jobs"`
	BacklogConfigs int64   `json:"backlog_configs"`
	VirtualTime    float64 `json:"virtual_time"`
	Running        int64   `json:"running"`
	ShedTotal      int64   `json:"shed_total"`
	PreemptedTotal int64   `json:"preempted_total"`
}

type healthBody struct {
	Status         string                  `json:"status"`
	UptimeSec      float64                 `json:"uptime_sec"`
	Draining       bool                    `json:"draining"`
	Workers        int                     `json:"workers"`
	Queued         int                     `json:"queued"`
	QueuePolicy    string                  `json:"queue_policy"`
	PendingConfigs int64                   `json:"pending_configs"`
	MaxQueueDepth  int                     `json:"max_queue_depth,omitempty"`
	CoalescedTotal int64                   `json:"coalesced_total"`
	ShedTotal      int64                   `json:"shed_total"`
	PreemptedTotal int64                   `json:"preempted_total"`
	Tenants        map[string]tenantHealth `json:"tenants,omitempty"`
	Store          *storeHealth            `json:"store,omitempty"`
	Cluster        *clusterHealth          `json:"cluster,omitempty"`
	// Analytics is the aggregate store's health (cardinality against its
	// cap, ingest lag since the last durable snapshot); omitted when
	// analytics is disabled.
	Analytics *analytics.Stats `json:"analytics,omitempty"`
	// Failpoints is the active fault schedule — present only while one is
	// armed, so a chaos run is always distinguishable from production.
	Failpoints string `json:"failpoints,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := healthBody{
		Status:         "ok",
		UptimeSec:      time.Since(s.startTime).Seconds(),
		Draining:       s.Draining(),
		Workers:        s.workers,
		Queued:         s.sched.Len(),
		QueuePolicy:    s.cfg.QueuePolicy,
		PendingConfigs: s.pending.Load(),
		MaxQueueDepth:  s.cfg.MaxQueueDepth,
		CoalescedTotal: s.stats.Coalesced.Load(),
		ShedTotal:      s.stats.JobsShed.Load(),
		PreemptedTotal: s.stats.JobsPreempted.Load(),
	}
	counters := s.stats.TenantSnapshots()
	for _, ts := range s.sched.Snapshot() {
		if body.Tenants == nil {
			body.Tenants = make(map[string]tenantHealth)
		}
		tc := counters[ts.Tenant]
		body.Tenants[ts.Tenant] = tenantHealth{
			Weight:         ts.Weight,
			QueuedJobs:     ts.QueuedJobs,
			OpenJobs:       ts.OpenJobs,
			BacklogConfigs: ts.Backlog,
			VirtualTime:    ts.VirtualTime,
			Running:        tc.Running,
			ShedTotal:      tc.Shed,
			PreemptedTotal: tc.Preempted,
		}
	}
	if st, ok := s.StoreStats(); ok {
		body.Store = &storeHealth{
			Jobs:            st.Jobs,
			Records:         st.Records,
			Bytes:           st.Bytes,
			Compactions:     st.Compactions,
			Codec:           st.Codec,
			ReplayedJobs:    s.stats.ReplayedJobs.Load(),
			ReplayedResults: s.stats.ReplayedResults.Load(),
			Durable:         !s.Lossy(),
			ReplayDropped:   s.ReplayInfo().Dropped,
			LossyWrites:     s.stats.LossyWrites.Load(),
		}
	}
	if s.an != nil {
		as := s.an.Stats()
		body.Analytics = &as
	}
	if spec := fault.Active(); spec != "" {
		body.Failpoints = spec
	}
	if s.clust != nil {
		ch := &clusterHealth{
			Mode:                s.clust.cfg.Mode,
			BatchesDispatched:   s.stats.BatchesDispatched.Load(),
			BatchesRedispatched: s.stats.BatchesRedispatched.Load(),
			BatchesHedged:       s.stats.BatchesHedged.Load(),
			DispatchRetries:     s.stats.DispatchRetries.Load(),
			BreakerOpens:        s.stats.BreakerOpens.Load(),
			RemoteConfigs:       s.stats.RemoteConfigs.Load(),
			Heartbeats:          s.stats.HeartbeatsReceived.Load(),
			WorkerExpiries:      s.stats.WorkerExpiries.Load(),
			WorkersDrained:      s.stats.WorkersDrained.Load(),
			WorkerDraining:      s.WorkerDraining(),
		}
		if ws, ok := s.ClusterWorkers(); ok {
			ch.Workers = ws
			ch.LiveWorkers = len(ws)
			ch.BacklogMS, ch.CapacitySlots, ch.ScaleSignal = s.scaleSignal()
		}
		body.Cluster = ch
	}
	status := http.StatusOK
	if body.Draining {
		body.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	snap := s.stats.Snapshot()
	fmt.Fprint(w, snap.RenderProm("rescqd"))
	entries, capacity := 0, 0
	if s.cache != nil {
		entries, capacity = s.cache.len(), s.cache.capacity()
	}
	fmt.Fprintf(w, "# HELP rescqd_cache_entries Result-cache entries resident.\n# TYPE rescqd_cache_entries gauge\nrescqd_cache_entries %d\n", entries)
	fmt.Fprintf(w, "# HELP rescqd_cache_capacity Result-cache entry budget.\n# TYPE rescqd_cache_capacity gauge\nrescqd_cache_capacity %d\n", capacity)
	fmt.Fprintf(w, "# HELP rescqd_queue_pending Jobs waiting in the queue.\n# TYPE rescqd_queue_pending gauge\nrescqd_queue_pending %d\n", s.sched.Len())
	fmt.Fprintf(w, "# HELP rescqd_pending_configs Run configurations admitted but not yet finished (admission-control backlog).\n# TYPE rescqd_pending_configs gauge\nrescqd_pending_configs %d\n", s.pending.Load())
	if snaps := s.sched.Snapshot(); len(snaps) > 0 {
		fmt.Fprint(w, "# HELP rescqd_tenant_queued_jobs Jobs waiting in the scheduler, by tenant.\n# TYPE rescqd_tenant_queued_jobs gauge\n")
		for _, ts := range snaps {
			fmt.Fprintf(w, "rescqd_tenant_queued_jobs{tenant=%q} %d\n", ts.Tenant, ts.QueuedJobs)
		}
		fmt.Fprint(w, "# HELP rescqd_tenant_open_jobs Queued plus running jobs, by tenant.\n# TYPE rescqd_tenant_open_jobs gauge\n")
		for _, ts := range snaps {
			fmt.Fprintf(w, "rescqd_tenant_open_jobs{tenant=%q} %d\n", ts.Tenant, ts.OpenJobs)
		}
		fmt.Fprint(w, "# HELP rescqd_tenant_backlog_configs Admitted-but-unfinished configurations, by tenant.\n# TYPE rescqd_tenant_backlog_configs gauge\n")
		for _, ts := range snaps {
			fmt.Fprintf(w, "rescqd_tenant_backlog_configs{tenant=%q} %d\n", ts.Tenant, ts.Backlog)
		}
	}
	if st, ok := s.StoreStats(); ok {
		fmt.Fprintf(w, "# HELP rescqd_store_jobs Jobs in the durable store index.\n# TYPE rescqd_store_jobs gauge\nrescqd_store_jobs %d\n", st.Jobs)
		fmt.Fprintf(w, "# HELP rescqd_store_records Records in the WAL file.\n# TYPE rescqd_store_records gauge\nrescqd_store_records %d\n", st.Records)
		fmt.Fprintf(w, "# HELP rescqd_store_bytes WAL file size in bytes.\n# TYPE rescqd_store_bytes gauge\nrescqd_store_bytes %d\n", st.Bytes)
		fmt.Fprintf(w, "# HELP rescqd_store_compactions_total WAL compactions performed.\n# TYPE rescqd_store_compactions_total counter\nrescqd_store_compactions_total %d\n", st.Compactions)
		fmt.Fprint(w, "# HELP rescqd_store_appends_total WAL records appended, by on-disk codec.\n# TYPE rescqd_store_appends_total counter\n")
		fmt.Fprintf(w, "rescqd_store_appends_total{codec=\"binary\"} %d\n", st.AppendsBinary)
		fmt.Fprintf(w, "rescqd_store_appends_total{codec=\"json\"} %d\n", st.AppendsJSON)
		fmt.Fprint(w, "# HELP rescqd_store_append_bytes_total WAL bytes appended, by on-disk codec.\n# TYPE rescqd_store_append_bytes_total counter\n")
		fmt.Fprintf(w, "rescqd_store_append_bytes_total{codec=\"binary\"} %d\n", st.AppendBytesBinary)
		fmt.Fprintf(w, "rescqd_store_append_bytes_total{codec=\"json\"} %d\n", st.AppendBytesJSON)
		durable := 1
		if s.Lossy() {
			durable = 0
		}
		fmt.Fprintf(w, "# HELP rescqd_store_durable Whether the WAL is taking writes (0 while serving in lossy mode).\n# TYPE rescqd_store_durable gauge\nrescqd_store_durable %d\n", durable)
		fmt.Fprintf(w, "# HELP rescqd_replay_dropped Interrupted jobs left resumable on disk after a failed re-enqueue at startup.\n# TYPE rescqd_replay_dropped gauge\nrescqd_replay_dropped %d\n", s.ReplayInfo().Dropped)
	}
	if s.an != nil {
		as := s.an.Stats()
		metrics.PromLine(w, "gauge", "rescqd_analytics_groups", "Materialized analytics aggregate cells (distinct axis tuples).", int64(as.Groups))
		metrics.PromLine(w, "gauge", "rescqd_analytics_group_cap", "Configured aggregate-cell cardinality cap.", int64(as.GroupCap))
		metrics.PromLine(w, "gauge", "rescqd_analytics_benchmarks", "Benchmarks with at least one analytics cell.", int64(as.Benchmarks))
		metrics.PromLine(w, "counter", "rescqd_analytics_results_ingested_total", "Results folded into analytics aggregates.", as.Ingested)
		metrics.PromLine(w, "counter", "rescqd_analytics_results_skipped_total", "Results that advanced a watermark with nothing to aggregate (errors, reports).", as.Skipped)
		metrics.PromLine(w, "counter", "rescqd_analytics_results_deduped_total", "Replayed results rejected by a job watermark.", as.Deduped)
		metrics.PromLine(w, "counter", "rescqd_analytics_results_dropped_total", "Results beyond the cardinality cap, counted but not aggregated.", as.Dropped)
		metrics.PromLine(w, "counter", "rescqd_analytics_queries_total", "Analytics queries served.", as.Queries)
		metrics.PromLine(w, "counter", "rescqd_analytics_snapshots_total", "Analytics snapshots written to the WAL.", as.Snapshots)
		metrics.PromLine(w, "gauge", "rescqd_analytics_ingest_lag", "Results folded since the last durable analytics snapshot (replay cost of a crash now).", as.IngestLag)
	}
	if ws, ok := s.ClusterWorkers(); ok {
		fmt.Fprintf(w, "# HELP rescqd_cluster_workers Live workers registered with the coordinator.\n# TYPE rescqd_cluster_workers gauge\nrescqd_cluster_workers %d\n", len(ws))
		fmt.Fprint(w, "# HELP rescqd_cluster_worker_inflight Batches in flight per worker.\n# TYPE rescqd_cluster_worker_inflight gauge\n")
		for _, wi := range ws {
			fmt.Fprintf(w, "rescqd_cluster_worker_inflight{worker=%q} %d\n", wi.ID, wi.Inflight)
		}
		fmt.Fprint(w, "# HELP rescqd_cluster_worker_capacity Batch capacity per worker.\n# TYPE rescqd_cluster_worker_capacity gauge\n")
		for _, wi := range ws {
			fmt.Fprintf(w, "rescqd_cluster_worker_capacity{worker=%q} %d\n", wi.ID, wi.Capacity)
		}
		backlogMS, slots, perSlot := s.scaleSignal()
		fmt.Fprintf(w, "# HELP rescqd_cluster_backlog_ms Admitted backlog in estimated milliseconds of work (pending configs x p50).\n# TYPE rescqd_cluster_backlog_ms gauge\nrescqd_cluster_backlog_ms %d\n", backlogMS)
		fmt.Fprintf(w, "# HELP rescqd_cluster_capacity_slots Live non-draining dispatch slots across the cluster.\n# TYPE rescqd_cluster_capacity_slots gauge\nrescqd_cluster_capacity_slots %d\n", slots)
		fmt.Fprintf(w, "# HELP rescqd_cluster_scale_signal Backlog-ms per live capacity slot; compare against batch_target_ms to scale.\n# TYPE rescqd_cluster_scale_signal gauge\nrescqd_cluster_scale_signal %g\n", perSlot)
	}
	if s.clust != nil && s.clust.cfg.Mode == config.ModeWorker {
		draining := 0
		if s.WorkerDraining() {
			draining = 1
		}
		fmt.Fprintf(w, "# HELP rescqd_worker_draining Whether this worker is retiring (fenced from new batches).\n# TYPE rescqd_worker_draining gauge\nrescqd_worker_draining %d\n", draining)
	}
	fmt.Fprintf(w, "# HELP rescqd_uptime_seconds Daemon uptime.\n# TYPE rescqd_uptime_seconds gauge\nrescqd_uptime_seconds %.0f\n", time.Since(s.startTime).Seconds())
}

// maxRequestBody bounds a submission body. The largest legitimate payloads
// are circuit texts, which top out well under a megabyte for the Table 3
// suite; 8 MiB leaves room for bigger hand-written circuits while keeping
// one hostile request from buffering unbounded JSON into memory.
const maxRequestBody = 8 << 20

// decodeBody parses a JSON request body strictly (size-capped, unknown
// fields rejected).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: bad request body: %w", err)
	}
	return nil
}
