package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/store"
)

// TestJobsListOrderAfterReplay pins the GET /v1/jobs ordering fix: the
// listing must come back in numeric job-id order regardless of the map
// iteration order of the registry shards the WAL replay landed in, and
// regardless of ids that outgrew their zero padding ("job-1000000" sorts
// after "job-999999", where plain string order would put it first).
func TestJobsListOrderAfterReplay(t *testing.T) {
	dir := t.TempDir()
	// Hand-write a WAL whose record order is maximally unhelpful:
	// terminal jobs appended out of id order, with a 7-digit id between
	// 6-digit ones.
	var wal []byte
	for _, id := range []string{"job-1000000", "job-000007", "job-999999", "job-000002"} {
		wal = append(wal, []byte(fmt.Sprintf(
			`{"type":"job","id":%q,"kind":"run","specs":[{"Benchmark":"gcm_n13"}]}`+"\n"+
				`{"type":"done","job":%q,"state":"done"}`+"\n", id, id))...)
	}
	if err := os.WriteFile(filepath.Join(dir, store.WALName), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(config.Daemon{}, &countingRunner{})
	if _, err := s.AttachStore(dir); err != nil {
		t.Fatalf("AttachStore: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	views := decode[[]JobView](t, resp)
	want := []string{"job-000002", "job-000007", "job-999999", "job-1000000"}
	if len(views) != len(want) {
		t.Fatalf("listed %d jobs, want %d", len(views), len(want))
	}
	for i, v := range views {
		if v.ID != want[i] {
			t.Fatalf("listing[%d] = %s, want %s (full order %v)", i, v.ID, want[i], ids(views))
		}
	}

	// The replay must also have advanced the id counter past the largest
	// replayed id, so a fresh submission cannot collide.
	j := s.newJob("run", "", []runSpec{{Benchmark: "gcm_n13"}})
	if store.JobIDLess(j.ID, "job-1000000") || j.ID == "job-1000000" {
		t.Fatalf("fresh job id %s does not follow job-1000000", j.ID)
	}
}

func ids(views []JobView) []string {
	out := make([]string, len(views))
	for i, v := range views {
		out[i] = v.ID
	}
	return out
}

// TestJobIDLess pins the comparator itself.
func TestJobIDLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"job-000001", "job-000002", true},
		{"job-000002", "job-000001", false},
		{"job-999999", "job-1000000", true},
		{"job-1000000", "job-999999", false},
		{"job-000010", "job-000009", false},
		{"job-01", "job-1", true}, // equal counters: string order breaks the tie
		{"alpha", "beta", true},   // no numeric suffix: string order
		{"job-5", "task-2", true}, // different prefixes: string order
	}
	for _, tc := range cases {
		if got := store.JobIDLess(tc.a, tc.b); got != tc.want {
			t.Errorf("JobIDLess(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
