package service

import (
	"errors"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/analytics"
	"repro/internal/lattice"
	"repro/internal/schedq"
)

// This file wires the analytics aggregate store (internal/analytics) into
// the server: every result the WAL sees is folded into the store at
// persist time, the aggregate state is snapshotted into the WAL as a
// state record on a result cadence (and at close), and boot restores the
// snapshot before replaying the WAL suffix — so a kill-restarted daemon
// answers analytics queries byte-identically to one that never died.

// analyticsStateName is the WAL state record carrying the aggregate
// snapshot (see store.PutState).
const analyticsStateName = "analytics"

// analyticsSnapEvery is the snapshot cadence in folded results: the upper
// bound on how many WAL results a restart has to re-fold into the
// restored snapshot before serving.
const analyticsSnapEvery = 1024

// analyticsSample converts one persisted result into its analytics
// sample. Error results, experiment reports and undecodable summaries
// yield nil — the result still advances the job's replay watermark (it
// occupies a result index in the WAL) without aggregating anything.
func analyticsSample(tenant string, res ConfigResult) *analytics.Sample {
	if res.Error != "" || res.Summary == nil || res.Options == nil {
		return nil
	}
	opts := res.Options // canonical: fillResult stores spec.Opts.Canonical()
	sm := &analytics.Sample{
		Axes: analytics.Axes{
			Tenant:      tenant,
			Benchmark:   res.Benchmark,
			Scheduler:   res.Scheduler,
			Layout:      res.Layout,
			Distance:    opts.Distance,
			PhysError:   opts.PhysError,
			K:           opts.K,
			TauMST:      opts.TauMST,
			Compression: opts.Compression,
			Runs:        opts.Runs,
			Seed:        opts.Seed,
		},
		Params: lattice.Params(opts.LayoutParams),
		Cycles: make([]int, 0, len(res.Summary.Runs)),
	}
	for i := range res.Summary.Runs {
		sm.Cycles = append(sm.Cycles, res.Summary.Runs[i].TotalCycles)
	}
	return sm
}

// analyticsFold folds one result into the aggregate store (no flush).
// Reports whether the result was actually aggregated — false for
// disabled analytics, watermark rejects, and sample-less results.
func (s *Server) analyticsFold(jobID, tenant string, res ConfigResult) bool {
	if s.an == nil {
		return false
	}
	if tenant == "" {
		// WAL job records persist the default tenant as "" (byte-compat
		// with pre-tenancy logs); analytics always uses the real name.
		tenant = schedq.DefaultTenant
	}
	return s.an.Ingest(jobID, res.Index, analyticsSample(tenant, res))
}

// analyticsIngest is the live persist-path hook: fold the result and
// take a durable snapshot every analyticsSnapEvery folded results. The
// flush only ever triggers on a genuinely folded result, so replayed
// duplicates (a /resume re-checkpoint under the server lock) can never
// start a compaction from a call site that must not block.
func (s *Server) analyticsIngest(jobID, tenant string, res ConfigResult) {
	if !s.analyticsFold(jobID, tenant, res) {
		return
	}
	if s.store != nil && s.an.SinceSnapshot() >= analyticsSnapEvery {
		s.flushAnalytics()
	}
}

// flushAnalytics snapshots the aggregate store into the WAL's analytics
// state record. No-op when analytics or the store is absent, when
// nothing was folded since the last snapshot (idle daemons keep their
// WAL byte-stable), or while serving lossy.
func (s *Server) flushAnalytics() {
	if s.an == nil || s.store == nil || s.an.SinceSnapshot() == 0 || s.skipPersist() {
		return
	}
	// Lock order: analytics.mu (Snapshot) then store.mu (HasJob, per
	// job id); the store never calls back into analytics.
	if err := s.store.PutState(analyticsStateName, s.an.Snapshot(s.store.HasJob)); err != nil {
		s.persistFailed()
	}
}

// analyticsForget drops a finished job's replay watermark on storeless
// daemons (nothing will ever replay it). With a WAL attached the
// watermark must outlive the job — replay resurfaces its records — and
// is pruned at snapshot time once compaction evicts the job.
func (s *Server) analyticsForget(jobID string) {
	if s.an != nil && s.store == nil {
		s.an.ForgetJob(jobID)
	}
}

// Analytics exposes the aggregate store (nil when disabled), for tests.
func (s *Server) Analytics() *analytics.Store { return s.an }

// analyticsEndpoints lists the mounted analytics routes, for
// GET /v1/capabilities.
func analyticsEndpoints() []string {
	return []string{
		"/v1/analytics/groupby",
		"/v1/analytics/pareto",
		"/v1/analytics/sensitivity",
	}
}

var errAnalyticsDisabled = errors.New("service: analytics disabled (start the daemon without -analytics=false)")

// analyticsFilter turns the request's query parameters into an axis
// filter, skipping the endpoint's own reserved parameters. Unknown axis
// names are rejected by the query layer with a listing of valid axes.
func analyticsFilter(q url.Values, reserved ...string) map[string]string {
	var filter map[string]string
Params:
	for name := range q {
		for _, r := range reserved {
			if name == r {
				continue Params
			}
		}
		if filter == nil {
			filter = make(map[string]string)
		}
		filter[name] = q.Get(name)
	}
	return filter
}

// GET /v1/analytics/groupby?by=axis1,axis2&<axis>=<value>...
func (s *Server) handleAnalyticsGroupBy(w http.ResponseWriter, r *http.Request) {
	if s.an == nil {
		writeError(w, http.StatusNotFound, errAnalyticsDisabled)
		return
	}
	q := r.URL.Query()
	var by []string
	for _, part := range strings.Split(q.Get("by"), ",") {
		if part = strings.TrimSpace(part); part != "" {
			by = append(by, part)
		}
	}
	resp, err := s.an.GroupBy(by, analyticsFilter(q, "by"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// GET /v1/analytics/pareto?benchmark=name&<axis>=<value>...
func (s *Server) handleAnalyticsPareto(w http.ResponseWriter, r *http.Request) {
	if s.an == nil {
		writeError(w, http.StatusNotFound, errAnalyticsDisabled)
		return
	}
	q := r.URL.Query()
	resp, err := s.an.Pareto(q.Get("benchmark"), analyticsFilter(q, "benchmark"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// GET /v1/analytics/sensitivity?axis=name&a=value&b=value&<axis>=<value>...
// The swept axis defaults to the scheduler — the paper's headline
// comparison (RESCQ against the static baselines).
func (s *Server) handleAnalyticsSensitivity(w http.ResponseWriter, r *http.Request) {
	if s.an == nil {
		writeError(w, http.StatusNotFound, errAnalyticsDisabled)
		return
	}
	q := r.URL.Query()
	axis := q.Get("axis")
	if axis == "" {
		axis = "scheduler"
	}
	resp, err := s.an.Sensitivity(axis, q.Get("a"), q.Get("b"), analyticsFilter(q, "axis", "a", "b"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
