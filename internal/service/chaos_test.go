package service

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	rescq "repro"
	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/store"
)

// chaosSeed is the fault schedule's PRNG seed: RESCQ_CHAOS_SEED when set
// (the CI fault matrix pins several), a fixed default otherwise. A failing
// run reproduces exactly by re-exporting the seed it logs.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	raw := os.Getenv("RESCQ_CHAOS_SEED")
	if raw == "" {
		return 1337
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		t.Fatalf("bad RESCQ_CHAOS_SEED %q: %v", raw, err)
	}
	return n
}

// TestChaosSweepUnderFaults is the resilience acceptance test: a real
// 1-coordinator/3-worker topology runs the 24-configuration sweep while a
// seeded fault schedule injects dispatch failures, worker-side latency,
// heartbeat failures and a WAL write burst. The sweep must still complete
// with zero lost or duplicated configurations and results byte-identical
// to a fault-free standalone run (modulo the cached flag), and the WAL
// burst must degrade durability instead of failing the submission.
func TestChaosSweepUnderFaults(t *testing.T) {
	seed := chaosSeed(t)
	t.Logf("chaos seed %d (reproduce with RESCQ_CHAOS_SEED=%d)", seed, seed)

	// Fault-free standalone baseline, recorded before anything is armed.
	_, baseTS := newTestServer(t, config.Daemon{Workers: 2}, nil)
	base := chaosSweep
	base.Async = false
	baseline := decode[JobView](t, postJSON(t, baseTS.URL+"/v1/sweep", base))
	if baseline.State != JobDone || len(baseline.Results) != 24 {
		t.Fatalf("baseline sweep: state=%s results=%d, want done/24", baseline.State, len(baseline.Results))
	}
	wantJSON := normalizeResults(t, baseline.Results)

	coord := startCoordinator(t, t.TempDir())
	for i := 0; i < 3; i++ {
		startWorker(t, coord.ts.URL, nil)
	}
	waitForWorkers(t, coord, 3)

	// Every fragile layer at once: dispatch RPCs fail, worker execution
	// stalls, heartbeats drop, and the WAL takes a two-write disk-full
	// burst on the coordinator.
	schedule := cluster.FaultDispatch + "=err(chaos: dispatch)%0.25;" +
		cluster.FaultExecute + "=delay(25ms)%0.4;" +
		cluster.FaultRegister + "=err(chaos: register)%0.1;" +
		store.FaultWrite + "=2*err(disk full)"
	if err := fault.Configure(schedule, seed); err != nil {
		t.Fatalf("Configure: %v", err)
	}
	defer fault.Disable()

	resp := postJSON(t, coord.ts.URL+"/v1/sweep", chaosSweep)
	accepted := decode[JobView](t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("seed %d: sweep submit under faults: %d", seed, resp.StatusCode)
	}
	view := waitForJob(t, coord.ts.URL, accepted.ID)
	for _, name := range fault.Names() {
		st := fault.Stats()[name]
		t.Logf("failpoint %s: %d/%d evaluations fired", name, st.Fires, st.Evals)
	}
	if view.State != JobDone {
		t.Fatalf("seed %d: sweep finished %s (%s), want done", seed, view.State, view.Error)
	}
	if view.Progress.Done != 24 || view.Progress.Total != 24 {
		t.Fatalf("seed %d: progress = %+v, want 24/24", seed, view.Progress)
	}

	// Zero lost, zero duplicated configurations.
	full := decode[JobView](t, get(t, coord.ts.URL+"/v1/jobs/"+accepted.ID))
	seen := make(map[int]bool, len(full.Results))
	for _, r := range full.Results {
		if seen[r.Index] {
			t.Fatalf("seed %d: configuration %d delivered twice", seed, r.Index)
		}
		seen[r.Index] = true
	}
	if len(seen) != 24 {
		t.Fatalf("seed %d: %d distinct configurations, want 24", seed, len(seen))
	}
	gotJSON := normalizeResults(t, full.Results)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("seed %d: chaos sweep differs from the fault-free standalone run:\nchaos:\n%s\nbaseline:\n%s",
			seed, gotJSON, wantJSON)
	}

	// The faults ran over the production data plane: the workers advertise
	// the binary codec, so the surviving dispatches must have used it.
	if n := coord.srv.Stats().WireBinaryBatches.Load(); n == 0 {
		t.Fatalf("seed %d: chaos sweep completed without a single binary-wire batch", seed)
	}

	// The schedule was not a no-op: at least one failpoint fired. (Which
	// ones, and how often, is the seed's business.)
	var fires int64
	for _, st := range fault.Stats() {
		fires += st.Fires
	}
	if fires == 0 {
		t.Fatalf("seed %d: no failpoint fired; the sweep was never actually under fault", seed)
	}

	// The WAL burst hit the submission's append and flipped the daemon to
	// lossy serving exactly once — it never surfaced as a request failure.
	if n := coord.srv.Stats().DurabilityLost.Load(); n != 1 {
		t.Fatalf("seed %d: durability lost %d times, want 1", seed, n)
	}
	if n := coord.srv.Stats().LossyWrites.Load(); n == 0 {
		t.Fatalf("seed %d: no writes were skipped in lossy mode", seed)
	}

	// An armed daemon is always distinguishable from production.
	health := decode[healthBody](t, get(t, coord.ts.URL+"/healthz"))
	if health.Failpoints != schedule {
		t.Fatalf("healthz failpoints = %q, want the armed schedule", health.Failpoints)
	}
}

// TestWALDiskFullDegradesToLossy: a WAL write failure must degrade the
// daemon to flagged non-durable serving — submissions keep succeeding,
// /healthz and /metrics show durable=false — and the periodic probe must
// restore durability once the disk takes writes again.
func TestWALDiskFullDegradesToLossy(t *testing.T) {
	cfg := config.Daemon{Workers: 1}.WithDefaults()
	s := New(cfg, nil)
	s.probeEvery = 25 * time.Millisecond // fast re-attach probe for the test
	if _, err := s.AttachStore(t.TempDir()); err != nil {
		t.Fatalf("AttachStore: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	if err := fault.Configure(store.FaultWrite+"=err(disk full)", 1); err != nil {
		t.Fatalf("Configure: %v", err)
	}
	defer fault.Disable()

	// The submission sails through: persistence degrades, requests don't.
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{Benchmark: "gcm_n13", Options: rescq.Options{Runs: 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run under WAL failure: %d, want 200", resp.StatusCode)
	}
	if run := decode[RunResponse](t, resp); run.Summary == nil {
		t.Fatal("run under WAL failure returned no summary")
	}

	health := decode[healthBody](t, get(t, ts.URL+"/healthz"))
	if health.Store == nil || health.Store.Durable {
		t.Fatalf("healthz store = %+v, want durable=false", health.Store)
	}
	if health.Store.LossyWrites == 0 {
		t.Fatal("healthz shows no lossy writes while serving non-durably")
	}
	if n := s.Stats().DurabilityLost.Load(); n != 1 {
		t.Fatalf("durability lost %d times, want 1", n)
	}
	metricsResp := get(t, ts.URL+"/metrics")
	prom, err := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	if !strings.Contains(string(prom), "rescqd_store_durable 0") {
		t.Fatal("/metrics does not report rescqd_store_durable 0 in lossy mode")
	}

	st, _ := s.StoreStats()
	recordsLossy := st.Records

	// Disarm the fault — the disk "takes writes again" — and the probe
	// re-attaches durability without a restart.
	fault.Disable()
	deadline := time.Now().Add(5 * time.Second)
	for {
		health = decode[healthBody](t, get(t, ts.URL+"/healthz"))
		if health.Store != nil && health.Store.Durable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("durability was not restored after the fault cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := s.Stats().DurabilityRestored.Load(); n != 1 {
		t.Fatalf("durability restored %d times, want 1", n)
	}

	// Appends reach the disk again: a fresh job grows the log.
	resp = postJSON(t, ts.URL+"/v1/run", RunRequest{Benchmark: "qft_n18", Options: rescq.Options{Runs: 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run after re-attach: %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	if st, _ = s.StoreStats(); st.Records <= recordsLossy {
		t.Fatalf("log did not grow after re-attach: %d -> %d records", recordsLossy, st.Records)
	}
}
