package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	rescq "repro"
	"repro/internal/schedq"
	"repro/internal/store"
)

// This file wires the durability layer (internal/store) into the server:
// jobs and per-configuration results are checkpointed to an append-only
// WAL as they complete, and on startup the daemon replays the WAL —
// finished jobs become inspectable history, the result cache is re-seeded
// under the same canonical rescq.CacheKeys, and interrupted jobs are
// re-enqueued to resume at their first unfinished configuration.

// partialSummary wraps a cache value re-seeded from the WAL: the WAL
// stores results with their per-gate latency arrays stripped (tens of
// thousands of ints per run), so a post-restart request that asks for
// include_latencies must treat the hit as a miss and recompute (which
// then overwrites the entry with the full value).
type partialSummary struct{ sum rescq.Summary }

// ReplayStats reports what AttachStore recovered from the WAL.
type ReplayStats struct {
	Jobs       int // jobs reconstructed (history + interrupted)
	Results    int // completed configurations replayed
	Reseeded   int // cache entries re-seeded from replayed results
	Reenqueued int // interrupted jobs put back on the queue
	// Dropped counts interrupted jobs that could not be re-enqueued (the
	// job queue overflowed during replay); they are left failed in the
	// registry rather than silently lost, and stay resumable on disk.
	Dropped int
}

// AttachStore opens the WAL in dir and replays it: terminal jobs are
// registered as inspectable history, completed results re-seed the result
// cache, and interrupted jobs are re-enqueued to resume at the first
// unfinished configuration. Must be called after New and before Start
// (the queue exists but no worker is draining it yet), and at most once.
func (s *Server) AttachStore(dir string) (ReplayStats, error) {
	if s.store != nil {
		return ReplayStats{}, errors.New("service: store already attached")
	}
	st, err := store.Open(dir, store.Options{RetainJobs: maxFinishedJobs, Codec: s.cfg.WALCodec})
	if err != nil {
		return ReplayStats{}, err
	}
	s.store = st

	// Seed the analytics aggregates from the last durable snapshot before
	// replaying the log: the watermarks inside the snapshot make the
	// replay loop below re-fold only the WAL suffix the snapshot has not
	// seen. A corrupt snapshot is counted and discarded — the full replay
	// rebuilds the identical state from the records.
	if s.an != nil {
		if blob, ok := st.State(analyticsStateName); ok {
			if err := s.an.Restore(blob); err != nil {
				s.stats.StoreErrors.Add(1)
			}
		}
	}

	var rs ReplayStats
	maxID := int64(0)
	for _, rj := range st.Replayed() {
		// Advance past EVERY replayed id — orphans and undecodable jobs
		// included — before any skip below: the store index still holds
		// them, and minting a colliding id would make the store silently
		// drop the new job's records.
		if id := parseJobID(rj.Job.ID); id > maxID {
			maxID = id
		}
		// Re-seed the cache from every persisted result, job or orphan.
		for _, rr := range rj.Results {
			var res ConfigResult
			if err := json.Unmarshal(rr.Result, &res); err != nil {
				continue
			}
			rs.Results++
			s.stats.ReplayedResults.Add(1)
			s.analyticsFold(rj.Job.ID, rj.Job.Tenant, res)
			if s.cache == nil || rr.Key == "" || res.Error != "" {
				continue
			}
			switch {
			case res.Report != "":
				s.cache.put(rr.Key, res.Report)
				rs.Reseeded++
			case res.Summary != nil:
				s.cache.put(rr.Key, partialSummary{sum: *res.Summary})
				rs.Reseeded++
			}
		}
		if len(rj.Job.Specs) == 0 {
			continue // orphan results: cache re-seed only, no job to rebuild
		}
		var specs []runSpec
		if err := json.Unmarshal(rj.Job.Specs, &specs); err != nil || len(specs) == 0 {
			continue
		}
		j := s.replayJob(rj, specs)
		rs.Jobs++
		s.stats.ReplayedJobs.Add(1)
		if !rj.Terminal() {
			if err := s.submit(j); err == nil {
				rs.Reenqueued++
			} else {
				rs.Dropped++
			}
		}
	}
	// Never mint an id a replayed job already owns.
	for cur := s.nextID.Load(); cur < maxID && !s.nextID.CompareAndSwap(cur, maxID); cur = s.nextID.Load() {
	}
	s.replay = rs
	// One boot checkpoint: whatever the replay loop folded beyond the
	// restored snapshot becomes durable now, so repeated crash loops do
	// not repeatedly re-fold the same suffix. No-op when replay added
	// nothing (an idle restart leaves the WAL byte-stable).
	s.flushAnalytics()
	// The probe runs for the store's whole lifetime (until baseStop): it is
	// idle while durable and becomes the recovery path once a WAL failure
	// flips the daemon into lossy mode.
	go s.durabilityProbe()
	return rs, nil
}

// Lossy reports whether the daemon is serving in degraded (non-durable)
// mode: a WAL write failed and the disk has not yet passed a re-attach
// probe. False without a store — no durability was promised, none is lost.
func (s *Server) Lossy() bool { return s.lossy.Load() }

// ReplayInfo returns what AttachStore recovered (zero value before/without
// a store), for /healthz and the replay_dropped gauge.
func (s *Server) ReplayInfo() ReplayStats { return s.replay }

// persistFailed routes every WAL append failure into lossy mode: the
// failure is counted, the flag raised, and serving continues non-durably
// rather than surfacing 5xx to submitters whose simulations still run fine.
func (s *Server) persistFailed() {
	s.stats.StoreErrors.Add(1)
	if s.lossy.CompareAndSwap(false, true) {
		s.stats.DurabilityLost.Add(1)
	}
}

// skipPersist gates every WAL write while lossy: records are acknowledged
// without touching the failing disk (each skip counted). The store itself
// tolerates the resulting gaps — results must arrive in index order, so a
// job with a lossy hole simply resumes from before the hole after a crash.
func (s *Server) skipPersist() bool {
	if !s.lossy.Load() {
		return false
	}
	s.stats.LossyWrites.Add(1)
	return true
}

// durabilityProbe periodically re-tests a lossy store and restores durable
// mode when the disk heals. It exercises the store's real append/fsync path
// (without writing a record), so an injected or organic write failure keeps
// the daemon lossy until the fault actually clears.
func (s *Server) durabilityProbe() {
	t := time.NewTicker(s.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			if !s.lossy.Load() {
				continue
			}
			if err := s.store.Probe(); err != nil {
				continue
			}
			if s.lossy.CompareAndSwap(true, false) {
				s.stats.DurabilityRestored.Add(1)
			}
		}
	}
}

// replayJob reconstructs a Job from its WAL records and registers it.
// Terminal jobs come back closed (pure history); interrupted jobs come
// back queued with their completed prefix in place, ready to resume.
func (s *Server) replayJob(rj store.ReplayedJob, specs []runSpec) *Job {
	ctx, cancel := context.WithCancel(s.baseCtx)
	tenant := rj.Job.Tenant
	if tenant == "" {
		// Records written before tenancy existed (and all default-tenant
		// traffic since, which persists as "") replay as the default tenant.
		tenant = schedq.DefaultTenant
	}
	j := &Job{
		ID:        rj.Job.ID,
		Kind:      rj.Job.Kind,
		Created:   rj.Job.Created,
		Tenant:    tenant,
		specs:     specs,
		fromStore: true,
		ctx:       ctx,
		cancel:    cancel,
		doneCh:    make(chan struct{}),
		events:    make(chan ConfigResult, len(specs)),
		state:     JobQueued,
	}
	for _, rr := range rj.Results {
		var res ConfigResult
		if err := json.Unmarshal(rr.Result, &res); err != nil {
			break // keep only the decodable contiguous prefix
		}
		j.results = append(j.results, res)
	}
	if rj.Terminal() {
		j.state = JobState(rj.State)
		if rj.Error != "" {
			j.err = errors.New(rj.Error)
		}
		close(j.events)
		close(j.doneCh)
		cancel() // history never runs; release the baseCtx child now
	}
	s.registerJob(j)
	if rj.Terminal() {
		s.retireJob(j.ID) // history counts against the retention bound
	}
	return j
}

// parseJobID extracts the numeric counter from a "job-%06d" id (0 when
// the id has another shape).
func parseJobID(id string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// resumeJob builds a fresh job that continues a terminal one: same specs,
// the completed prefix of results inherited, execution picking up at the
// first unfinished configuration (completed configurations are replayed
// verbatim, so the final result set is byte-identical to an uninterrupted
// run). The inherited prefix is persisted under the new id so a later
// crash resumes from the same point.
func (s *Server) resumeJob(j *Job) *Job {
	_, _, _, results, _ := j.snapshot()
	nj := s.buildJob(j.Kind, j.Tenant, j.specs)
	nj.resumedFrom = j.ID
	nj.results = results
	s.registerJob(nj) // visible to listings only once fully populated
	// Checkpoint the job and its inherited prefix here, outside the
	// server lock — a large prefix means many appends (and possibly a
	// compaction), which must not stall submissions. submit's own
	// persistJob call then no-ops record by record. Should submit reject
	// the job, failFast checkpoints the failure over these records.
	s.persistJob(nj)
	return nj
}

// persistJob checkpoints a newly accepted job. Jobs replayed from the WAL
// are already on disk (and AppendJob would no-op on them anyway — their
// results were folded into analytics by the replay loop too).
func (s *Server) persistJob(j *Job) {
	if j.fromStore {
		return
	}
	if s.store == nil {
		// Storeless daemons skip the WAL but analytics still needs the
		// inherited prefix of a /resume continuation under the NEW job id
		// (watermarks are per-job, and the continuation's live results
		// start above the prefix). Fresh jobs have no results yet.
		j.mu.Lock()
		inherited := append([]ConfigResult(nil), j.results...)
		j.mu.Unlock()
		for _, res := range inherited {
			s.analyticsIngest(j.ID, j.Tenant, res)
		}
		return
	}
	if s.skipPersist() {
		return
	}
	specs, err := json.Marshal(j.specs)
	if err != nil {
		s.stats.StoreErrors.Add(1)
		return
	}
	// Default-tenant jobs persist with an empty tenant so their records
	// stay byte-identical to pre-tenancy logs; replay maps "" back.
	tenant := j.Tenant
	if tenant == schedq.DefaultTenant {
		tenant = ""
	}
	if err := s.store.AppendJob(store.JobRecord{
		ID: j.ID, Kind: j.Kind, Created: j.Created, Specs: specs, Tenant: tenant,
	}); err != nil {
		s.persistFailed()
		return
	}
	// A job resumed via /resume inherits completed results the WAL only
	// knows under the old id; re-checkpoint them under the new one.
	j.mu.Lock()
	inherited := append([]ConfigResult(nil), j.results...)
	j.mu.Unlock()
	for i := range inherited {
		s.persistResultLocked(j.ID, j.Tenant, j.specs[i], inherited[i])
	}
}

// persistResult checkpoints one completed configuration. With a WAL
// attached, analytics mirrors exactly the records the WAL accepted (so a
// replay reconstructs the same aggregates); without one, every completed
// result feeds analytics directly.
func (s *Server) persistResult(j *Job, spec runSpec, res ConfigResult) {
	if s.store == nil {
		s.analyticsIngest(j.ID, j.Tenant, res)
		return
	}
	s.persistResultLocked(j.ID, j.Tenant, spec, res)
}

func (s *Server) persistResultLocked(jobID, tenant string, spec runSpec, res ConfigResult) {
	if s.skipPersist() {
		return
	}
	// The WAL never stores per-gate latency arrays (tens of thousands of
	// ints per run), even for include_latencies jobs: replay re-seeds the
	// cache as partialSummary anyway, and the only jobs that can carry
	// latencies are single-configuration runs, which have no resumable
	// prefix. stripLatencies copies before trimming, so the in-memory
	// result handed to the client keeps its arrays.
	stripLatencies(&res)
	payload, err := json.Marshal(res)
	if err != nil {
		s.stats.StoreErrors.Add(1)
		return
	}
	if err := s.store.AppendResult(store.ResultRecord{
		JobID: jobID, Index: res.Index, Key: specKey(spec), Result: payload,
	}); err != nil {
		s.persistFailed()
		return
	}
	// Fold what the WAL just saw (duplicate appends are dropped by the
	// store AND rejected by the analytics watermark, so the /resume
	// re-checkpoint path stays idempotent end to end).
	s.analyticsIngest(jobID, tenant, res)
}

// persistDone checkpoints a job's terminal state.
func (s *Server) persistDone(j *Job, state JobState, jerr error) {
	if s.store == nil || s.skipPersist() {
		return
	}
	rec := store.DoneRecord{JobID: j.ID, State: string(state)}
	if jerr != nil {
		rec.Error = jerr.Error()
	}
	if err := s.store.AppendDone(rec); err != nil {
		s.persistFailed()
	}
}

// closeStore takes the final durability checkpoint (compact + fsync) and
// closes the WAL; safe to call repeatedly and without a store.
func (s *Server) closeStore() {
	if s.store == nil {
		return
	}
	// The final analytics snapshot rides the shutdown compaction, so the
	// next boot restores instead of re-folding the whole retained log.
	s.flushAnalytics()
	if err := s.store.Close(); err != nil {
		s.stats.StoreErrors.Add(1)
	}
}

// StoreStats reports the WAL's size counters (zero value when no store is
// attached), for /healthz and /metrics.
func (s *Server) StoreStats() (store.Stats, bool) {
	if s.store == nil {
		return store.Stats{}, false
	}
	return s.store.Stats(), true
}

// SyncStore forces an fsync checkpoint of the WAL (no-op without a store).
func (s *Server) SyncStore() error {
	if s.store == nil {
		return nil
	}
	return s.store.Sync()
}

// resumable decides whether POST /v1/jobs/{id}/resume applies: the job
// must be terminal and must have unfinished configurations. A failed job
// whose configurations all ran is not resumable either — the engine is
// deterministic, so re-running the same specs re-fails identically.
func resumable(state JobState, done, total int) error {
	switch state {
	case JobQueued, JobRunning:
		return fmt.Errorf("service: job is %s; only finished jobs can be resumed", state)
	}
	if done >= total {
		return fmt.Errorf("service: all %d configurations already ran; nothing to resume", total)
	}
	return nil
}
