package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
)

// This file wires the horizontal scale-out layer (internal/cluster) into
// the server. In coordinator mode the public API, WAL, admission control
// and result cache stay exactly as in standalone mode, but a job's
// configurations are sharded into batches and dispatched over HTTP to
// registered workers: least-loaded worker first (ties broken by smallest
// worker id), at most one batch per free worker slot, batches from dead
// workers re-dispatched to survivors, and every returned configuration
// checkpointed to the WAL in index order — so streaming, resume and
// kill-restart semantics are byte-identical to a standalone run. With no
// live workers the coordinator falls back to its local pool. In worker
// mode the daemon serves POST /internal/v1/execute and keeps itself
// registered with the coordinator via heartbeats.

// clusterState holds a clustered server's scale-out machinery; nil on a
// standalone server.
type clusterState struct {
	cfg      config.Cluster
	registry *cluster.Registry // coordinator only
	client   *cluster.Client   // coordinator only
}

// newClusterState builds the mode-appropriate cluster machinery.
func newClusterState(cfg config.Cluster) *clusterState {
	if !cfg.Clustered() {
		return nil
	}
	cs := &clusterState{cfg: cfg}
	if cfg.Mode == config.ModeCoordinator {
		cs.registry = cluster.NewRegistry()
		cs.client = cluster.NewClient(nil)
	}
	return cs
}

// ClusterWorkers returns the coordinator's current worker view (empty
// snapshot and false on non-coordinators), for /healthz, /metrics and
// tests.
func (s *Server) ClusterWorkers() ([]cluster.WorkerInfo, bool) {
	if s.clust == nil || s.clust.registry == nil {
		return nil, false
	}
	return s.clust.registry.Snapshot(), true
}

// expirySweeper evicts workers that missed their liveness window. It runs
// on the coordinator at the heartbeat cadence until baseCtx ends.
func (s *Server) expirySweeper() {
	t := time.NewTicker(s.clust.cfg.HeartbeatInterval())
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			expired := s.clust.registry.ExpireDead(s.clust.cfg.LivenessExpiry())
			s.stats.WorkerExpiries.Add(int64(len(expired)))
		}
	}
}

// handleRegister is the coordinator's membership endpoint: a worker's
// first POST registers it, every subsequent POST is a heartbeat renewing
// its liveness lease.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req cluster.RegisterRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.ID == "" || req.URL == "" {
		writeError(w, http.StatusBadRequest, errors.New("service: register needs id and url"))
		return
	}
	s.clust.registry.Upsert(req)
	s.stats.HeartbeatsReceived.Add(1)
	writeJSON(w, http.StatusOK, cluster.RegisterResponse{
		ExpiresInMS: s.clust.cfg.LivenessExpiry().Milliseconds(),
		Workers:     s.clust.registry.Len(),
	})
}

// handleExecute is the worker's dispatch endpoint: it decodes a batch of
// run specifications (strictly — this is the worker's trust boundary),
// executes them in order on the request goroutine, and returns one result
// per configuration. Batch concurrency is the coordinator's job (one
// in-flight batch per acquired worker slot); within a batch,
// configurations run sequentially like a standalone sweep.
func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	req, err := cluster.DecodeExecuteRequest(http.MaxBytesReader(w, r.Body, cluster.MaxExecuteBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	specs := make([]runSpec, len(req.Configs))
	for i, c := range req.Configs {
		if err := json.Unmarshal(c.Spec, &specs[i]); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad spec %d: %w", i, err))
			return
		}
	}
	resp := cluster.ExecuteResponse{Results: make([]json.RawMessage, 0, len(specs))}
	for i, spec := range specs {
		if r.Context().Err() != nil {
			// The coordinator hung up (job cancelled, or it re-dispatched
			// after deciding this worker is dead); stop burning engine time.
			return
		}
		res := s.runOne(r.Context(), spec)
		res.Index = req.Configs[i].Index
		data, err := json.Marshal(res)
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("service: encode result %d: %w", i, err))
			return
		}
		resp.Results = append(resp.Results, data)
	}
	writeJSON(w, http.StatusOK, resp)
}

// dispatchable reports whether a job should go through the sharded
// cluster path: coordinator mode with at least one live worker. Evaluated
// per job, so a coordinator whose workers all died simply falls back to
// its local pool for the next job.
func (s *Server) dispatchable() bool {
	return s.clust != nil && s.clust.registry != nil && s.clust.registry.Len() > 0
}

// sequencer releases out-of-order batch results in strict index order:
// results are buffered until their index is next, then appended to the
// job, checkpointed to the WAL, and published to the events stream —
// exactly the order a standalone run produces, which is what keeps
// streaming output, resume prefixes and the WAL byte-identical across the
// two paths.
type sequencer struct {
	mu    sync.Mutex
	s     *Server
	j     *Job
	next  int
	ready map[int]ConfigResult
}

func (q *sequencer) deliver(idx int, res ConfigResult) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ready[idx] = res
	for {
		r, ok := q.ready[q.next]
		if !ok {
			return
		}
		delete(q.ready, q.next)
		q.j.mu.Lock()
		q.j.results = append(q.j.results, r)
		q.j.mu.Unlock()
		q.s.persistResult(q.j, q.j.specs[q.next], r)
		q.j.events <- r // buffered to len(specs): never blocks
		q.s.pending.Add(-1)
		q.next++
	}
}

// maxBatchRedispatch bounds how many times one batch chases failing
// workers before the coordinator gives up on remote execution and runs it
// locally — a persistent poison batch (or a registry full of half-dead
// workers) must make progress, not loop.
const maxBatchRedispatch = 4

// executeSharded runs a job's unfinished configurations through the
// cluster: coordinator-cache hits are served inline, the misses are packed
// into index-ordered batches and dispatched concurrently to the
// least-loaded live workers. Returns whether the job was cancelled.
func (s *Server) executeSharded(j *Job, startIdx int) (cancelled bool) {
	seq := &sequencer{s: s, j: j, next: startIdx, ready: make(map[int]ConfigResult)}

	// Prepass: serve coordinator-cache hits without dispatching, pack the
	// rest into batches. Misses are NOT counted here — the engine run (and
	// its hit/miss accounting) happens wherever the configuration lands.
	// The sharded path does not consult the in-flight coalescing table:
	// cross-job duplicate configurations dispatched concurrently can
	// compute twice (once per worker). The waste is bounded — every remote
	// result re-seeds the coordinator cache the moment it lands, so a
	// second identical job only duplicates the configurations still in
	// flight, and deterministic simulations make the duplicates harmless.
	batchSize := s.clust.cfg.BatchSize
	var batches [][]int
	var cur []int
	for i := startIdx; i < len(j.specs); i++ {
		spec := j.specs[i]
		if s.cache != nil {
			if v, ok := s.cache.get(specKey(spec)); ok && cacheUsable(v, spec) {
				s.stats.CacheHits.Add(1)
				res := newConfigResult(spec)
				res.Index = i
				res.Cached = true
				fillResult(&res, spec, v)
				seq.deliver(i, res)
				continue
			}
		}
		cur = append(cur, i)
		if len(cur) == batchSize {
			batches = append(batches, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}

	var wg sync.WaitGroup
	for bi, idxs := range batches {
		wg.Add(1)
		go func(bi int, idxs []int) {
			defer wg.Done()
			s.dispatchBatch(j, bi, idxs, seq)
		}(bi, idxs)
	}
	wg.Wait()
	return j.ctx.Err() != nil
}

// buildExecuteRequest marshals one batch's specs into the wire form.
func buildExecuteRequest(j *Job, bi int, idxs []int) (cluster.ExecuteRequest, error) {
	req := cluster.ExecuteRequest{JobID: j.ID, Batch: bi, Configs: make([]cluster.ExecuteConfig, len(idxs))}
	for k, idx := range idxs {
		data, err := json.Marshal(j.specs[idx])
		if err != nil {
			return req, err
		}
		req.Configs[k] = cluster.ExecuteConfig{Index: idx, Spec: data}
	}
	return req, nil
}

// dispatchBatch drives one batch to completion: acquire the least-loaded
// worker slot, POST the batch, deliver its results. A dead or failing
// worker is removed from the registry and the batch re-dispatched to a
// survivor; with no live workers (or after too many re-dispatches) the
// batch runs on the coordinator's local pool. Cancellation of the job
// abandons the batch (the job's final accounting releases its backlog).
func (s *Server) dispatchBatch(j *Job, bi int, idxs []int, seq *sequencer) {
	ctx := j.ctx
	req, err := buildExecuteRequest(j, bi, idxs)
	if err != nil {
		s.runBatchLocally(ctx, j, idxs, seq) // marshal failure: engine still works
		return
	}
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return
		}
		if attempt > maxBatchRedispatch {
			s.runBatchLocally(ctx, j, idxs, seq)
			return
		}
		lease, err := s.clust.registry.Acquire(ctx)
		if errors.Is(err, cluster.ErrNoWorkers) {
			s.runBatchLocally(ctx, j, idxs, seq)
			return
		}
		if err != nil {
			return // job cancelled while waiting for a slot
		}
		resp, err := s.executeOnWorker(ctx, lease, req)
		lease.Release()
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// The worker is observably broken (connection reset by a
			// SIGKILL, a timeout, garbage results): drop it from the
			// registry — a live worker re-registers on its next heartbeat —
			// and send the batch to a survivor.
			s.clust.registry.Remove(lease.ID)
			s.stats.BatchesRedispatched.Add(1)
			continue
		}
		delivered := 0
		for k, raw := range resp.Results {
			idx := idxs[k]
			var res ConfigResult
			if err := json.Unmarshal(raw, &res); err != nil {
				// Treat undecodable results like a failed batch.
				s.clust.registry.Remove(lease.ID)
				s.stats.BatchesRedispatched.Add(1)
				break
			}
			res.Index = idx // the coordinator's index is authoritative
			s.cacheRemoteResult(j.specs[idx], res)
			s.stats.RemoteConfigs.Add(1)
			seq.deliver(idx, res)
			delivered++
		}
		if delivered == len(idxs) {
			return // whole batch delivered
		}
		// A partial decode re-dispatches only the undelivered tail: the
		// sequencer has already released the decoded prefix, and re-sending
		// a released index would append its result a second time.
		idxs = idxs[delivered:]
		req, err = buildExecuteRequest(j, bi, idxs)
		if err != nil {
			s.runBatchLocally(ctx, j, idxs, seq)
			return
		}
	}
}

// executeOnWorker POSTs one batch, aborting the call the moment the
// worker is removed from the registry (liveness expiry fires while the
// socket is still nominally open) so the batch can be re-dispatched
// without waiting on a dead peer.
func (s *Server) executeOnWorker(ctx context.Context, lease cluster.Lease, req cluster.ExecuteRequest) (cluster.ExecuteResponse, error) {
	callCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-lease.Gone:
			cancel()
		case <-done:
		}
	}()
	s.stats.BatchesDispatched.Add(1)
	return s.clust.client.Execute(callCtx, lease.URL, req)
}

// runBatchLocally is the no-live-workers fallback: the coordinator's own
// pool executes the batch, with standalone semantics (runOne re-checks
// the cache, counts hits/misses/engine runs).
func (s *Server) runBatchLocally(ctx context.Context, j *Job, idxs []int, seq *sequencer) {
	for _, idx := range idxs {
		if ctx.Err() != nil {
			return
		}
		res := s.runOne(ctx, j.specs[idx])
		res.Index = idx
		if res.Error != "" && ctx.Err() != nil {
			return // aborted mid-run by cancellation: discard the partial result
		}
		seq.deliver(idx, res)
	}
}

// cacheRemoteResult re-seeds the coordinator cache from a worker-computed
// result. Workers strip latency arrays unless the spec kept them, so a
// stripped summary is cached as partialSummary — an include_latencies
// request later recomputes, exactly like a WAL-reseeded entry.
func (s *Server) cacheRemoteResult(spec runSpec, res ConfigResult) {
	if s.cache == nil || res.Error != "" {
		return
	}
	key := specKey(spec)
	switch {
	case res.Report != "":
		s.cache.put(key, res.Report)
	case res.Summary != nil && spec.KeepLatencies:
		s.cache.put(key, *res.Summary)
	case res.Summary != nil:
		s.cache.put(key, partialSummary{sum: *res.Summary})
	}
}
