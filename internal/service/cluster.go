package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/fault"
)

// This file wires the horizontal scale-out layer (internal/cluster) into
// the server. In coordinator mode the public API, WAL, admission control
// and result cache stay exactly as in standalone mode, but a job's
// configurations are sharded into batches and dispatched over HTTP to
// registered workers: least-loaded worker first (ties broken by smallest
// worker id), at most one batch per free worker slot, batches from dead
// workers re-dispatched to survivors, and every returned configuration
// checkpointed to the WAL in index order — so streaming, resume and
// kill-restart semantics are byte-identical to a standalone run. With no
// live workers the coordinator falls back to its local pool. In worker
// mode the daemon serves POST /internal/v1/execute and keeps itself
// registered with the coordinator via heartbeats.

// clusterState holds a clustered server's scale-out machinery; nil on a
// standalone server.
type clusterState struct {
	cfg      config.Cluster
	registry *cluster.Registry // coordinator only
	client   *cluster.Client   // coordinator only
}

// newClusterState builds the mode-appropriate cluster machinery. Resilience
// knobs left zero (hand-built test configs) take their WithDefaults values.
func newClusterState(cfg config.Cluster) *clusterState {
	if !cfg.Clustered() {
		return nil
	}
	cfg = cfg.WithDefaults()
	cs := &clusterState{cfg: cfg}
	if cfg.Mode == config.ModeCoordinator {
		cs.registry = cluster.NewRegistry()
		cs.registry.SetBreaker(cfg.BreakerFailures, cfg.BreakerCooldown())
		cs.client = cluster.NewTunedClient(cluster.ClientOptions{
			DialTimeout:     cfg.DialTimeout(),
			IdleConnTimeout: cfg.IdleConnTimeout(),
		})
	}
	return cs
}

// ClusterWorkers returns the coordinator's current worker view (empty
// snapshot and false on non-coordinators), for /healthz, /metrics and
// tests.
func (s *Server) ClusterWorkers() ([]cluster.WorkerInfo, bool) {
	if s.clust == nil || s.clust.registry == nil {
		return nil, false
	}
	return s.clust.registry.Snapshot(), true
}

// expirySweeper evicts workers that missed their liveness window. It runs
// on the coordinator at the heartbeat cadence until baseCtx ends.
func (s *Server) expirySweeper() {
	t := time.NewTicker(s.clust.cfg.HeartbeatInterval())
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			expired := s.clust.registry.ExpireDead(s.clust.cfg.LivenessExpiry())
			s.stats.WorkerExpiries.Add(int64(len(expired)))
		}
	}
}

// handleRegister is the coordinator's membership endpoint: a worker's
// first POST registers it, every subsequent POST is a heartbeat renewing
// its liveness lease.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req cluster.RegisterRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.ID == "" || req.URL == "" {
		writeError(w, http.StatusBadRequest, errors.New("service: register needs id and url"))
		return
	}
	st := s.clust.registry.Upsert(req)
	s.stats.HeartbeatsReceived.Add(1)
	if st.Drained {
		s.stats.WorkersDrained.Add(1)
	}
	writeJSON(w, http.StatusOK, cluster.RegisterResponse{
		ExpiresInMS: s.clust.cfg.LivenessExpiry().Milliseconds(),
		Workers:     s.clust.registry.Len(),
		Released:    st.Released,
	})
}

// handleDrain is the worker's retirement endpoint: an autoscaler (or
// operator) POSTs to it and from then on the worker rejects new batches
// with 503 (the coordinator re-dispatches them elsewhere), announces the
// drain on every heartbeat, and exits its heartbeat loop once the
// coordinator confirms its last in-flight batch finished and releases it.
// Idempotent: draining a draining worker re-acknowledges.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.workerDraining.Store(true)
	writeJSON(w, http.StatusOK, cluster.DrainResponse{
		Draining: true,
		Inflight: int(s.execInflight.Load()),
	})
}

// WorkerDraining reports whether this worker has been asked to retire
// (POST /internal/v1/drain). It is what the heartbeater samples to
// announce the drain to the coordinator.
func (s *Server) WorkerDraining() bool { return s.workerDraining.Load() }

// scaleSignal is the autoscaler-facing pressure estimate: the admitted
// backlog in estimated milliseconds of work (pending configurations × the
// observed per-configuration p50, floored at 1ms so a cold histogram still
// reflects queue depth) and the live, non-draining capacity slots it
// spreads over. perSlotMS is the headline gauge: ≫ batch_target_ms means
// add workers; ≈ 0 with idle slots means it is safe to drain some.
func (s *Server) scaleSignal() (backlogMS, slots int64, perSlotMS float64) {
	_, p50, _ := s.stats.ConfigLatency()
	backlogMS = s.pending.Load() * int64(max(p50, 1))
	if s.clust != nil && s.clust.registry != nil {
		n, _ := s.clust.registry.Capacity()
		slots = int64(n)
	}
	return backlogMS, slots, float64(backlogMS) / float64(max(slots, 1))
}

// handleExecute is the worker's dispatch endpoint: it decodes a batch of
// run specifications (strictly — this is the worker's trust boundary),
// executes them in order on the request goroutine, and returns one result
// per configuration. Batch concurrency is the coordinator's job (one
// in-flight batch per acquired worker slot); within a batch,
// configurations run sequentially like a standalone sweep.
func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	// Chaos hook: an injected delay stalls this worker like an overloaded
	// node (exercising the coordinator's deadline and hedging paths); an
	// injected error becomes the 500 a crashing worker would produce.
	if err := fault.Check(cluster.FaultExecute); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// A draining worker takes no new batches; 503 is retryable, so the
	// coordinator re-dispatches elsewhere. In-flight batches (already past
	// this gate) run to completion — that is the point of draining.
	if s.workerDraining.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("service: worker draining"))
		return
	}
	s.execInflight.Add(1)
	defer s.execInflight.Add(-1)
	req, codec, err := cluster.DecodeExecuteRequestAuto(
		http.MaxBytesReader(w, r.Body, cluster.MaxExecuteBody),
		r.Header.Get("Content-Type"), r.Header.Get("Content-Encoding"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	specs := make([]runSpec, len(req.Configs))
	for i, c := range req.Configs {
		if err := json.Unmarshal(c.Spec, &specs[i]); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad spec %d: %w", i, err))
			return
		}
	}
	resp := cluster.ExecuteResponse{Results: make([]json.RawMessage, 0, len(specs))}
	for i, spec := range specs {
		if r.Context().Err() != nil {
			// The coordinator hung up (job cancelled, or it re-dispatched
			// after deciding this worker is dead); stop burning engine time.
			// Say so explicitly: a bare return here wrote an empty 200, which
			// a coordinator still listening (a proxy hiccup cancelled us, not
			// the dispatcher) would misread as a zero-result success.
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("service: batch abandoned %d/%d: %w", i, len(specs), r.Context().Err()))
			return
		}
		res := s.runOne(r.Context(), spec)
		res.Index = req.Configs[i].Index
		data, err := json.Marshal(res)
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("service: encode result %d: %w", i, err))
			return
		}
		resp.Results = append(resp.Results, data)
	}
	if codec == cluster.CodecBinary {
		body := cluster.EncodeExecuteResponseBinary(resp)
		if strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			if gz, ok := cluster.MaybeGzip(body); ok {
				body = gz
				w.Header().Set("Content-Encoding", "gzip")
			}
		}
		w.Header().Set("Content-Type", cluster.BinaryContentType)
		w.Write(body)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// dispatchable reports whether a job should go through the sharded
// cluster path: coordinator mode with at least one live worker. Evaluated
// per job, so a coordinator whose workers all died simply falls back to
// its local pool for the next job.
func (s *Server) dispatchable() bool {
	return s.clust != nil && s.clust.registry != nil && s.clust.registry.Len() > 0
}

// sequencer releases out-of-order batch results in strict index order:
// results are buffered until their index is next, then appended to the
// job, checkpointed to the WAL, and published to the events stream —
// exactly the order a standalone run produces, which is what keeps
// streaming output, resume prefixes and the WAL byte-identical across the
// two paths.
type sequencer struct {
	mu    sync.Mutex
	s     *Server
	j     *Job
	next  int
	ready map[int]ConfigResult
}

func (q *sequencer) deliver(idx int, res ConfigResult) {
	q.mu.Lock()
	defer q.mu.Unlock()
	// First result wins. Hedged re-dispatch can legitimately complete the
	// same index twice (the straggler and its hedge both finish); a released
	// or buffered index must be dropped here, or the job would append the
	// configuration twice and decrement its pending backlog twice.
	if idx < q.next {
		return
	}
	if _, dup := q.ready[idx]; dup {
		return
	}
	q.ready[idx] = res
	for {
		r, ok := q.ready[q.next]
		if !ok {
			return
		}
		delete(q.ready, q.next)
		q.j.mu.Lock()
		q.j.results = append(q.j.results, r)
		q.j.mu.Unlock()
		q.s.persistResult(q.j, q.j.specs[q.next], r)
		q.j.events <- r // buffered to len(specs): never blocks
		q.s.pending.Add(-1)
		q.s.sched.Completed(q.j.Tenant, 1)
		q.next++
	}
}

// progress returns the contiguous completed prefix length — the index the
// job would resume from if preempted right now.
func (q *sequencer) progress() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.next
}

// Deadline and hedge derivation. Both are multiples of the observed
// per-configuration p99 scaled by batch size, and neither engages until
// the histogram holds minLatencySamples — a deadline guessed from a few
// cold-start samples would misclassify healthy workers as stragglers.
const (
	minLatencySamples = 16
	deadlineSlack     = 8                      // deadline = slack × batch × p99
	hedgeSlack        = 3                      // hedge fires earlier than the deadline
	minBatchDeadline  = 2 * time.Second        // floor: fast engines make p99 ≈ 0
	minHedgeDelay     = 500 * time.Millisecond // floor, for the same reason
)

// batchDeadline is the per-batch execution bound: a worker that blows it is
// treated like a failed dispatch (its breaker takes the blame, the batch is
// retried elsewhere). Zero means no deadline yet.
func (s *Server) batchDeadline(batchLen int) time.Duration {
	n, _, p99 := s.stats.ConfigLatency()
	if n < minLatencySamples {
		return 0
	}
	d := time.Duration(deadlineSlack*batchLen*p99) * time.Millisecond
	return max(d, minBatchDeadline)
}

// hedgeDelay is how long a batch may run before the coordinator races a
// duplicate on a second worker. Zero means hedging is off.
func (s *Server) hedgeDelay(batchLen int) time.Duration {
	n, _, p99 := s.stats.ConfigLatency()
	if n < minLatencySamples {
		return 0
	}
	d := time.Duration(hedgeSlack*batchLen*p99) * time.Millisecond
	return max(d, minHedgeDelay)
}

// workQueue is one job's index-ordered queue of cache-miss configurations.
// The streaming prepass appends to it while the dispatch loop (the single
// consumer) pulls batches off its head, so first dispatch overlaps the
// cache scan. unscanned counts configurations the prepass has not yet
// classified; queued()+unscanned is the dispatch loop's backlog estimate
// (an overestimate while hits remain unscanned, exact at the tail — which
// is when the tail-split rule needs it exact).
type workQueue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	idxs      []int
	closed    bool
	unscanned atomic.Int64
}

func newWorkQueue(unscanned int) *workQueue {
	q := &workQueue{}
	q.cond = sync.NewCond(&q.mu)
	q.unscanned.Store(int64(unscanned))
	return q
}

func (q *workQueue) add(idx int) {
	q.mu.Lock()
	q.idxs = append(q.idxs, idx)
	q.mu.Unlock()
	q.cond.Broadcast()
}

// close marks the producer done; wait drains to false once the queue
// empties.
func (q *workQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// wait blocks until work is queued (true) or the queue is closed empty or
// ctx ends (false). With a single consumer, true guarantees the next pull
// returns at least one index.
func (q *workQueue) wait(ctx context.Context) bool {
	// cond.Wait cannot watch a context; convert cancellation into a
	// broadcast so the loop re-checks ctx (same pattern as Registry.Acquire).
	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.idxs) > 0 {
			return true
		}
		if q.closed || ctx.Err() != nil {
			return false
		}
		q.cond.Wait()
	}
}

// pull removes and returns up to n indices from the head of the queue.
func (q *workQueue) pull(n int) []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n = min(n, len(q.idxs))
	out := q.idxs[:n:n]
	q.idxs = q.idxs[n:]
	return out
}

func (q *workQueue) queued() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.idxs)
}

// backlog estimates the configurations still to dispatch: queued misses
// plus everything the prepass has not classified yet.
func (q *workQueue) backlog() int {
	return q.queued() + int(q.unscanned.Load())
}

// batchSizer picks adaptive batch lengths for the pull loop. Three regimes:
// while the latency histogram is cold it ramps 1, 2, 4, ... so the first
// batches return quickly and feed it samples; warm, it packs the configured
// batch target of estimated work (target / p50) per batch; and near the end
// of a job the tail-split rule spreads the remaining backlog across every
// free slot instead of letting the last big batch ride one straggler.
// config.Cluster.BatchSize stays the hard cap throughout. Not safe for
// concurrent use — only the job's single dispatch loop calls next.
type batchSizer struct {
	s      *Server
	target time.Duration // cfg.BatchTarget()
	cap    int           // cfg.BatchSize
	ramp   int           // next cold-histogram batch length
}

func newBatchSizer(s *Server) *batchSizer {
	return &batchSizer{s: s, target: s.clust.cfg.BatchTarget(), cap: s.clust.cfg.BatchSize, ramp: 1}
}

// next returns the length of the next batch given the current backlog and
// the number of dispatch slots that could take work right now (including
// the one the caller already holds).
func (z *batchSizer) next(backlog, freeSlots int) int {
	n := z.steady()
	if freeSlots > 1 {
		// Tail split: when the backlog divides across the idle slots into
		// smaller batches than the steady-state size, prefer the split —
		// finishing the tail in parallel beats amortizing overhead.
		n = min(n, (backlog+freeSlots-1)/freeSlots)
	}
	return max(1, min(n, z.cap))
}

func (z *batchSizer) steady() int {
	n, p50, _ := z.s.stats.ConfigLatency()
	if n < minLatencySamples {
		b := z.ramp
		z.ramp = min(z.ramp*2, z.cap)
		return b
	}
	if p50 <= 0 {
		// Sub-millisecond configurations: per-batch overhead dominates, so
		// fill batches to the cap.
		return z.cap
	}
	return int(z.target.Milliseconds() / int64(p50))
}

// executeSharded runs a job's unfinished configurations through the
// cluster with a pull-based dispatch loop: a streaming prepass serves
// coordinator-cache hits through the sequencer and queues the misses (pre-
// marshalled once) in index order, while this loop pulls adaptively sized
// batches off the queue — one per acquired worker slot. A worker that
// finishes a batch early frees its slot and the loop immediately pulls the
// next batch for it: work steals itself to fast workers without a stealing
// protocol. Returns whether the job was cancelled, and whether the
// scheduler preempted it at a batch boundary (the caller requeues it as a
// resumable continuation).
func (s *Server) executeSharded(j *Job, startIdx int) (cancelled, preempted bool) {
	seq := &sequencer{s: s, j: j, next: startIdx, ready: make(map[int]ConfigResult)}
	q := newWorkQueue(len(j.specs) - startIdx)
	if j.encSpecs == nil {
		j.encSpecs = make([][]byte, len(j.specs))
	}

	var wg sync.WaitGroup
	// Local fallback runs are bounded by a semaphore the width of the local
	// pool, so a cluster that dies mid-job degrades to standalone
	// parallelism instead of unbounded goroutines.
	localSlots := make(chan struct{}, max(1, s.workers))
	runLocal := func(idxs []int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case localSlots <- struct{}{}:
			case <-j.ctx.Done():
				return
			}
			defer func() { <-localSlots }()
			s.runBatchLocally(j.ctx, j, idxs, seq)
		}()
	}

	// Streaming prepass: classify configurations in index order,
	// delivering cache hits through the sequencer and queueing misses for
	// dispatch — concurrently with the dispatch loop, so a mostly-cached
	// sweep's first batch leaves before the scan finishes. Misses are NOT
	// counted here — the engine run (and its hit/miss accounting) happens
	// wherever the configuration lands. The sharded path does not consult
	// the in-flight coalescing table: cross-job duplicate configurations
	// dispatched concurrently can compute twice (once per worker). The
	// waste is bounded — every remote result re-seeds the coordinator cache
	// the moment it lands, and deterministic simulations make the
	// duplicates harmless.
	// preempt stops both the prepass and the dispatch loop at the next
	// boundary once the scheduler asks for the slot back. In-flight batches
	// still land (wg.Wait below): their results re-seed the coordinator
	// cache, so the resumed job replays them as hits instead of recomputing.
	var preempt atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer q.close()
		for i := startIdx; i < len(j.specs); i++ {
			if preempt.Load() {
				return
			}
			spec := j.specs[i]
			if s.cache != nil {
				if v, ok := s.cache.get(specKey(spec)); ok && cacheUsable(v, spec) {
					s.stats.CacheHits.Add(1)
					res := newConfigResult(spec)
					res.Index = i
					res.Cached = true
					fillResult(&res, spec, v)
					seq.deliver(i, res)
					q.unscanned.Add(-1)
					continue
				}
			}
			data, err := json.Marshal(spec)
			if err != nil {
				// Specs are plain validated structs, so this cannot happen in
				// practice; route the orphan to the local pool, which needs
				// no wire encoding.
				q.unscanned.Add(-1)
				runLocal([]int{i})
				continue
			}
			j.encSpecs[i] = data
			q.unscanned.Add(-1)
			q.add(i)
		}
	}()

	sizer := newBatchSizer(s)
	for bi := 0; q.wait(j.ctx); {
		// Preemption check at the batch boundary, only once the quantum has
		// made progress (the contiguous prefix grew past the pickup point) —
		// the same ≥1-configuration guarantee as the local path.
		if seq.progress() > startIdx && s.shouldPreempt(j) {
			preempt.Store(true)
			break
		}
		lease, err := s.clust.registry.Acquire(j.ctx)
		if errors.Is(err, cluster.ErrNoWorkers) {
			// The whole cluster is gone right now. Drain one batch through
			// the local pool, then re-check membership — a worker that
			// (re-)registers mid-job takes the rest of the queue back.
			if idxs := q.pull(s.clust.cfg.BatchSize); len(idxs) > 0 {
				runLocal(idxs)
			}
			continue
		}
		if err != nil {
			break // job cancelled while waiting for a slot
		}
		_, free := s.clust.registry.Capacity()
		idxs := q.pull(sizer.next(q.backlog(), free+1)) // +1: the slot this lease holds
		if len(idxs) == 0 {
			lease.Release()
			continue
		}
		wg.Add(1)
		go func(bi int, idxs []int, lease cluster.Lease) {
			defer wg.Done()
			s.dispatchPulled(j, bi, idxs, seq, lease)
		}(bi, idxs, lease)
		bi++
	}
	// The barrier below is also the preemption fence: every in-flight batch
	// and the old sequencer are fully drained before the job re-enters the
	// scheduler, so a resumed quantum can never race this one.
	wg.Wait()
	cancelled = j.ctx.Err() != nil
	return cancelled, preempt.Load() && !cancelled
}

// buildExecuteRequest assembles one batch's wire form from the job's
// pre-marshalled specs (encoded once by the prepass; reused across every
// dispatch, retry and hedge of the batch).
func buildExecuteRequest(j *Job, bi int, idxs []int) (cluster.ExecuteRequest, error) {
	req := cluster.ExecuteRequest{JobID: j.ID, Batch: bi, Configs: make([]cluster.ExecuteConfig, len(idxs))}
	for k, idx := range idxs {
		data := j.encSpecs[idx]
		if data == nil {
			// Unreachable: the prepass encodes every index before queueing it.
			return req, fmt.Errorf("service: config %d has no encoded spec", idx)
		}
		req.Configs[k] = cluster.ExecuteConfig{Index: idx, Spec: data}
	}
	return req, nil
}

// dispatchPulled drives one pulled batch to completion on the slot the
// dispatch loop acquired for it: POST the batch (racing a hedge replica if
// it straggles), deliver its results. Retryable failures — transport
// errors, 5xx, blown deadlines — charge the worker's circuit breaker and
// re-dispatch the batch on a freshly acquired slot with backoff, up to the
// configured retry budget; terminal failures (a worker 4xx: the batch
// itself is poison) and exhausted budgets fall back to the coordinator's
// local pool, so a batch always makes progress. Cancellation of the job
// abandons the batch (the job's final accounting releases its backlog).
func (s *Server) dispatchPulled(j *Job, bi int, idxs []int, seq *sequencer, lease cluster.Lease) {
	ctx := j.ctx
	haveLease := true
	release := func() {
		if haveLease {
			lease.Release()
			haveLease = false
		}
	}
	req, err := buildExecuteRequest(j, bi, idxs)
	if err != nil {
		release()
		s.runBatchLocally(ctx, j, idxs, seq)
		return
	}
	backoff := cluster.Backoff{Base: s.clust.cfg.RetryBackoff(), Max: 20 * s.clust.cfg.RetryBackoff()}
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			release()
			return
		}
		if attempt > s.clust.cfg.DispatchRetries {
			release()
			s.runBatchLocally(ctx, j, idxs, seq)
			return
		}
		if attempt > 0 {
			s.stats.DispatchRetries.Add(1)
			if !backoff.Sleep(ctx, attempt-1) {
				release()
				return // job cancelled mid-backoff
			}
		}
		if !haveLease {
			lease, err = s.clust.registry.Acquire(ctx)
			if errors.Is(err, cluster.ErrNoWorkers) {
				s.runBatchLocally(ctx, j, idxs, seq)
				return
			}
			if err != nil {
				return // job cancelled while waiting for a slot
			}
		}
		haveLease = false // raceBatch releases every lease it launches
		start := time.Now()
		resp, winner, err := s.raceBatch(ctx, lease, req)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if !cluster.RetryableDispatch(err) {
				// The worker inspected the batch and rejected it (4xx):
				// every other worker would too. Only the local pool — which
				// needs no wire decode — can make progress on it.
				s.runBatchLocally(ctx, j, idxs, seq)
				return
			}
			s.stats.BatchesRedispatched.Add(1)
			continue
		}
		// Feed the deadline/hedge estimator: a batch round-trip amortized
		// over its configurations approximates per-config latency.
		perConfig := time.Since(start) / time.Duration(len(idxs))
		for range idxs {
			s.stats.ObserveConfigLatency(perConfig)
		}
		delivered := 0
		for k, raw := range resp.Results {
			idx := idxs[k]
			var res ConfigResult
			if err := json.Unmarshal(raw, &res); err != nil {
				// Garbage results count against the breaker like a failed
				// dispatch; the worker stays registered for liveness expiry
				// or recovery to decide its fate.
				if winner.ReportFailure() {
					s.stats.BreakerOpens.Add(1)
				}
				s.stats.BatchesRedispatched.Add(1)
				break
			}
			res.Index = idx // the coordinator's index is authoritative
			s.cacheRemoteResult(j.specs[idx], res)
			s.stats.RemoteConfigs.Add(1)
			seq.deliver(idx, res)
			delivered++
		}
		if delivered == len(idxs) {
			return // whole batch delivered
		}
		// A partial decode re-dispatches only the undelivered tail: the
		// sequencer has already released the decoded prefix, and re-sending
		// a released index would append its result a second time.
		idxs = idxs[delivered:]
		req, err = buildExecuteRequest(j, bi, idxs)
		if err != nil {
			s.runBatchLocally(ctx, j, idxs, seq)
			return
		}
	}
}

// raceBatch runs one batch on the acquired lease, hedging a duplicate onto
// a second worker if the primary straggles past the hedge delay. The first
// successful response wins; the loser's call is cancelled (and not blamed
// on its worker). A batch deadline, when enough latency samples exist,
// bounds the whole race — a worker that blows it is charged a failure.
// The winning lease is returned (already released) so the caller can charge
// it for undecodable payloads; it is meaningful only when err is nil.
func (s *Server) raceBatch(ctx context.Context, primary cluster.Lease, req cluster.ExecuteRequest) (cluster.ExecuteResponse, cluster.Lease, error) {
	var callCtx context.Context
	var cancel context.CancelFunc
	if d := s.batchDeadline(len(req.Configs)); d > 0 {
		callCtx, cancel = context.WithTimeout(ctx, d)
	} else {
		callCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	type outcome struct {
		lease cluster.Lease
		resp  cluster.ExecuteResponse
		err   error
	}
	results := make(chan outcome, 2) // buffered: the losing attempt must not leak its goroutine
	var won atomic.Bool
	launch := func(l cluster.Lease) {
		go func() {
			resp, err := s.executeOnWorker(callCtx, l, req)
			switch {
			case err == nil:
				l.ReportSuccess()
			case !won.Load() && ctx.Err() == nil && cluster.RetryableDispatch(err):
				// An organic failure or a blown deadline — not fallout from
				// losing the race or from job cancellation.
				if l.ReportFailure() {
					s.stats.BreakerOpens.Add(1)
				}
			}
			l.Release()
			results <- outcome{lease: l, resp: resp, err: err}
		}()
	}
	launch(primary)

	var hedgeC <-chan time.Time
	if d := s.hedgeDelay(len(req.Configs)); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}

	inflight := 1
	var firstErr error
	for inflight > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			// The primary is straggling. Race a duplicate on a different
			// worker if one is free right now — never block for one, and
			// never double down on the straggler itself. The sequencer's
			// first-result-wins dedup makes the duplicate harmless.
			if l, ok := s.clust.registry.TryAcquire(primary.ID); ok {
				s.stats.BatchesHedged.Add(1)
				inflight++
				launch(l)
			}
		case o := <-results:
			inflight--
			if o.err == nil {
				won.Store(true)
				return o.resp, o.lease, nil
			}
			// A terminal (4xx) verdict outranks retryable errors: it tells
			// the caller re-dispatch is pointless.
			if firstErr == nil || !cluster.RetryableDispatch(o.err) {
				firstErr = o.err
			}
		}
	}
	return cluster.ExecuteResponse{}, cluster.Lease{}, firstErr
}

// wireCodec picks the dispatch encoding for one lease: binary when the
// worker advertised it and the coordinator's wire_codec knob has not
// forced the JSON debug path; JSON otherwise (including every worker that
// predates codec negotiation).
func (s *Server) wireCodec(lease cluster.Lease) string {
	if lease.Binary && s.clust.cfg.WireCodec != cluster.CodecJSON {
		return cluster.CodecBinary
	}
	return cluster.CodecJSON
}

// executeOnWorker POSTs one batch in the lease's negotiated codec,
// aborting the call the moment the worker is removed from the registry
// (liveness expiry fires while the socket is still nominally open) so the
// batch can be re-dispatched without waiting on a dead peer.
func (s *Server) executeOnWorker(ctx context.Context, lease cluster.Lease, req cluster.ExecuteRequest) (cluster.ExecuteResponse, error) {
	callCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-lease.Gone:
			cancel()
		case <-done:
		}
	}()
	s.stats.BatchesDispatched.Add(1)
	resp, traffic, err := s.clust.client.ExecuteWith(callCtx, lease.URL, req, s.wireCodec(lease))
	switch traffic.Codec {
	case cluster.CodecBinary:
		s.stats.WireBinaryBatches.Add(1)
		s.stats.WireBinaryBytesOut.Add(traffic.BytesOut)
		s.stats.WireBinaryBytesIn.Add(traffic.BytesIn)
	case cluster.CodecJSON:
		s.stats.WireJSONBatches.Add(1)
		s.stats.WireJSONBytesOut.Add(traffic.BytesOut)
		s.stats.WireJSONBytesIn.Add(traffic.BytesIn)
	}
	return resp, err
}

// runBatchLocally is the no-live-workers fallback: the coordinator's own
// pool executes the batch, with standalone semantics (runOne re-checks
// the cache, counts hits/misses/engine runs).
func (s *Server) runBatchLocally(ctx context.Context, j *Job, idxs []int, seq *sequencer) {
	for _, idx := range idxs {
		if ctx.Err() != nil {
			return
		}
		res := s.runOne(ctx, j.specs[idx])
		res.Index = idx
		if res.Error != "" && ctx.Err() != nil {
			return // aborted mid-run by cancellation: discard the partial result
		}
		seq.deliver(idx, res)
	}
}

// cacheRemoteResult re-seeds the coordinator cache from a worker-computed
// result. Workers strip latency arrays unless the spec kept them, so a
// stripped summary is cached as partialSummary — an include_latencies
// request later recomputes, exactly like a WAL-reseeded entry.
func (s *Server) cacheRemoteResult(spec runSpec, res ConfigResult) {
	if s.cache == nil || res.Error != "" {
		return
	}
	key := specKey(spec)
	switch {
	case res.Report != "":
		s.cache.put(key, res.Report)
	case res.Summary != nil && spec.KeepLatencies:
		s.cache.put(key, *res.Summary)
	case res.Summary != nil:
		s.cache.put(key, partialSummary{sum: *res.Summary})
	}
}
