package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	rescq "repro"
	"repro/internal/config"
	"repro/internal/store"
)

// slowRunner stretches every engine call so scheduling decisions (fairness,
// preemption) are observable: with instant configs the whale would finish
// before the interactive tenant ever contends.
type slowRunner struct {
	countingRunner
	delay time.Duration
}

func (r *slowRunner) Run(ctx context.Context, bench string, opts rescq.Options) (rescq.Summary, error) {
	time.Sleep(r.delay)
	return r.countingRunner.Run(ctx, bench, opts)
}

// postTenant is postJSON with an X-Rescq-Tenant header.
func postTenant(t *testing.T, url, tenant string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func getJob(t *testing.T, baseURL, id string) JobView {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	return decode[JobView](t, resp)
}

// oddDistances returns n valid surface-code distances (3, 5, 7, ...), the
// cheapest way to build an n-configuration sweep of distinct cache keys.
func oddDistances(n int) []int {
	ds := make([]int, n)
	for i := range ds {
		ds[i] = 3 + 2*i
	}
	return ds
}

// TestFairnessWhaleAndInteractive is the acceptance-criteria fairness
// proof. One worker, default WFQ, equal weights: a whale submits a long
// async sweep, then an interactive tenant issues short synchronous runs.
// Under the old FIFO channel a synchronous run could not return before the
// whale's entire job finished; under WFQ every interactive run completes
// while the whale is still mid-flight, via preemption at configuration
// boundaries — and the whale still finishes with every configuration
// exactly once, byte-identical to an uncontended run.
func TestFairnessWhaleAndInteractive(t *testing.T) {
	const whaleConfigs = 40
	runner := &slowRunner{delay: 5 * time.Millisecond}
	s, ts := newTestServer(t, config.Daemon{Workers: 1, CacheEntries: -1}, runner)

	sweep := SweepRequest{
		Benchmarks: []string{"gcm_n13"},
		Schedulers: []string{"rescq"},
		Distances:  oddDistances(whaleConfigs),
		Async:      true,
	}
	whale := decode[JobView](t, postTenant(t, ts.URL+"/v1/sweep", "whale", sweep))
	if whale.ID == "" || whale.Tenant != "whale" {
		t.Fatalf("whale submit = %+v", whale)
	}
	// Let the whale establish itself: at least one configuration done, so
	// its virtual clock is ahead when the interactive tenant arrives.
	deadline := time.Now().Add(10 * time.Second)
	for getJob(t, ts.URL, whale.ID).Progress.Done < 1 {
		if time.Now().After(deadline) {
			t.Fatal("whale never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Interactive traffic: five synchronous runs, each a distinct config.
	for i := 0; i < 5; i++ {
		rr := decode[RunResponse](t, postTenant(t, ts.URL+"/v1/run", "live",
			RunRequest{Benchmark: "gcm_n13", Options: rescq.Options{Seed: int64(i + 1)}}))
		if rr.State != JobDone {
			t.Fatalf("interactive run %d = %+v", i, rr)
		}
		if v := getJob(t, ts.URL, whale.ID); v.State == JobDone || v.State == JobFailed {
			t.Fatalf("whale already terminal (%s) after interactive run %d: the scheduler let the whale monopolize the worker", v.State, i)
		}
	}
	if got := s.Stats().Snapshot().JobsPreempted; got < 1 {
		t.Fatalf("jobs preempted = %d, want >= 1 (interactive runs should have preempted the whale)", got)
	}

	// The whale still completes: every configuration exactly once, in
	// order, none lost or duplicated across preemptions.
	final := waitForJob(t, ts.URL, whale.ID)
	if final.State != JobDone || final.Progress.Done != whaleConfigs {
		t.Fatalf("whale final = state %s, %d/%d done", final.State, final.Progress.Done, whaleConfigs)
	}
	if len(final.Results) != whaleConfigs {
		t.Fatalf("whale results = %d, want %d", len(final.Results), whaleConfigs)
	}
	for i, res := range final.Results {
		if res.Index != i || res.Error != "" {
			t.Fatalf("result %d = index %d error %q", i, res.Index, res.Error)
		}
	}

	// Byte-identical to the same sweep on an uncontended server.
	control := sweep
	control.Async = false
	_, cts := newTestServer(t, config.Daemon{Workers: 1, CacheEntries: -1}, &countingRunner{})
	controlView := decode[JobView](t, postJSON(t, cts.URL+"/v1/sweep", control))
	if controlView.State != JobDone {
		t.Fatalf("control sweep = %+v", controlView)
	}
	got, _ := json.Marshal(final.Results)
	want, _ := json.Marshal(controlView.Results)
	if !bytes.Equal(got, want) {
		t.Fatalf("preempted whale results differ from uncontended run:\n got: %s\nwant: %s", got, want)
	}
	if snap := s.Stats().Snapshot(); snap.Tenants["whale"].Preempted < 1 || snap.Tenants["live"].Done != 5 {
		t.Fatalf("tenant counters = %+v", snap.Tenants)
	}
}

// TestShedRetryAfterPerTenant pins the per-tenant Retry-After fix: when the
// global queue bound sheds a submission, the hint comes from the shedding
// tenant's own backlog, not the global one. A tenant with nothing queued is
// told to retry in the 1s floor; the whale that owns the backlog is told to
// wait out its own work.
func TestShedRetryAfterPerTenant(t *testing.T) {
	runner := &countingRunner{block: make(chan struct{})}
	s, ts := newTestServer(t, config.Daemon{Workers: 1, MaxQueueDepth: 5, CacheEntries: -1}, runner)
	t.Cleanup(func() { close(runner.block) }) // LIFO: unblock before Shutdown

	// Seed the latency histogram: p50 of 10s per job, one worker, so a
	// backlog of 5 configurations estimates a 50s drain.
	for i := 0; i < 3; i++ {
		s.Stats().ObserveLatency(10 * time.Second)
	}

	whaleSweep := SweepRequest{
		Benchmarks: []string{"gcm_n13"},
		Schedulers: []string{"rescq"},
		Distances:  oddDistances(5),
		Async:      true,
	}
	whale := decode[JobView](t, postTenant(t, ts.URL+"/v1/sweep", "whale", whaleSweep))
	if whale.ID == "" {
		t.Fatalf("whale submit failed: %+v", whale)
	}

	// The whale's next submission is shed against its own 5-config backlog.
	resp := postTenant(t, ts.URL+"/v1/run", "whale", RunRequest{Benchmark: "gcm_n13"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("whale resubmit status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "50" {
		t.Fatalf("whale Retry-After = %q, want \"50\" (5 configs x 10s / 1 worker)", got)
	}
	resp.Body.Close()

	// A quiet tenant hits the same global bound but owns none of the
	// backlog: it gets the floor, not the whale's sentence.
	resp = postTenant(t, ts.URL+"/v1/run", "quiet", RunRequest{Benchmark: "gcm_n13"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quiet tenant status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("quiet tenant Retry-After = %q, want \"1\" (its own backlog is empty)", got)
	}
	resp.Body.Close()

	if snap := s.Stats().Snapshot(); snap.Tenants["whale"].Shed != 1 || snap.Tenants["quiet"].Shed != 1 {
		t.Fatalf("per-tenant shed counters = %+v", snap.Tenants)
	}
}

// TestTenantQuotaShed429: per-tenant quotas shed with 429 + Retry-After
// while other tenants keep submitting freely.
func TestTenantQuotaShed429(t *testing.T) {
	runner := &countingRunner{block: make(chan struct{})}
	cfg := config.Daemon{Workers: 1, CacheEntries: -1, Tenants: config.Tenants{
		Policies: map[string]config.TenantPolicy{
			"small": {MaxQueuedConfigs: 2},
			"solo":  {MaxInflightJobs: 1},
		},
	}}
	_, ts := newTestServer(t, cfg, runner)
	t.Cleanup(func() { close(runner.block) })

	// small fills its 2-config quota...
	sweep := SweepRequest{Benchmarks: []string{"gcm_n13"}, Schedulers: []string{"rescq"},
		Distances: oddDistances(2), Async: true}
	if v := decode[JobView](t, postTenant(t, ts.URL+"/v1/sweep", "small", sweep)); v.ID == "" {
		t.Fatalf("small sweep rejected: %+v", v)
	}
	// ...and its next configuration is shed with the quota's 429.
	resp := postTenant(t, ts.URL+"/v1/run", "small", RunRequest{Benchmark: "gcm_n13"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("small over-quota status = %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("quota shed Retry-After = %q, want >= 1", resp.Header.Get("Retry-After"))
	}
	body := decode[map[string]string](t, resp)
	if !strings.Contains(body["error"], `"small"`) {
		t.Fatalf("quota error should name the tenant: %q", body["error"])
	}

	// Unlimited tenants are unaffected by small's quota.
	resp = postTenant(t, ts.URL+"/v1/run", "big",
		RunRequest{Benchmark: "gcm_n13", Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("big tenant status = %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()

	// solo can hold one open job; the second is shed even though its
	// config backlog is tiny.
	resp = postTenant(t, ts.URL+"/v1/run", "solo",
		RunRequest{Benchmark: "gcm_n13", Options: rescq.Options{Seed: 1}, Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("solo first job status = %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postTenant(t, ts.URL+"/v1/run", "solo",
		RunRequest{Benchmark: "gcm_n13", Options: rescq.Options{Seed: 2}, Async: true})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("solo second job status = %d, want 429 (max_inflight_jobs=1)", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestTenantIdentityResolution: body field over header over the default
// tenant; invalid names are a 400 at the door.
func TestTenantIdentityResolution(t *testing.T) {
	_, ts := newTestServer(t, config.Daemon{}, &countingRunner{})

	// Header alone.
	v := decode[JobView](t, postTenant(t, ts.URL+"/v1/run", "alice",
		RunRequest{Benchmark: "gcm_n13", Async: true}))
	if v.Tenant != "alice" {
		t.Fatalf("header-tagged job tenant = %q, want alice", v.Tenant)
	}
	if got := getJob(t, ts.URL, v.ID); got.Tenant != "alice" {
		t.Fatalf("job view tenant = %q, want alice", got.Tenant)
	}

	// Body field wins over the header.
	v = decode[JobView](t, postTenant(t, ts.URL+"/v1/run", "alice",
		RunRequest{Benchmark: "gcm_n13", Tenant: "bob", Async: true}))
	if v.Tenant != "bob" {
		t.Fatalf("body-tagged job tenant = %q, want bob (body overrides header)", v.Tenant)
	}

	// Untagged requests land on the default tenant.
	v = decode[JobView](t, postJSON(t, ts.URL+"/v1/run",
		RunRequest{Benchmark: "gcm_n13", Async: true}))
	if v.Tenant != "default" {
		t.Fatalf("untagged job tenant = %q, want default", v.Tenant)
	}

	// Invalid names are rejected before a job exists.
	for _, bad := range []string{"has space", strings.Repeat("x", 65), "semi;colon"} {
		resp := postJSON(t, ts.URL+"/v1/run", RunRequest{Benchmark: "gcm_n13", Tenant: bad})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("tenant %q status = %d, want 400", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestJobsTenantFilter: GET /v1/jobs?tenant= narrows the listing to one
// tenant's jobs.
func TestJobsTenantFilter(t *testing.T) {
	_, ts := newTestServer(t, config.Daemon{}, &countingRunner{})

	for i, tenant := range []string{"alice", "alice", "bob"} {
		v := decode[JobView](t, postTenant(t, ts.URL+"/v1/run", tenant,
			RunRequest{Benchmark: "gcm_n13", Options: rescq.Options{Seed: int64(i + 1)}, Async: true}))
		waitForJob(t, ts.URL, v.ID)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs?tenant=alice")
	if err != nil {
		t.Fatal(err)
	}
	views := decode[[]JobView](t, resp)
	if len(views) != 2 {
		t.Fatalf("tenant=alice listed %d jobs, want 2", len(views))
	}
	for _, v := range views {
		if v.Tenant != "alice" {
			t.Fatalf("filtered listing leaked tenant %q", v.Tenant)
		}
	}
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if all := decode[[]JobView](t, resp); len(all) != 3 {
		t.Fatalf("unfiltered listing = %d jobs, want 3", len(all))
	}
}

// TestWALTenantCompat (service layer): default-tenant jobs persist exactly
// as pre-tenancy daemons wrote them — no tenant key at all — and on replay
// untagged records land on the default tenant while tagged ones keep
// their name.
func TestWALTenantCompat(t *testing.T) {
	dir := t.TempDir()

	a := New(config.Daemon{Workers: 1, WALCodec: store.CodecJSON}, &countingRunner{})
	if _, err := a.AttachStore(dir); err != nil {
		t.Fatal(err)
	}
	a.Start()
	tsA := httptest.NewServer(a.Handler())

	first := decode[RunResponse](t, postJSON(t, tsA.URL+"/v1/run", RunRequest{Benchmark: "gcm_n13"}))
	second := decode[RunResponse](t, postTenant(t, tsA.URL+"/v1/run", "alice",
		RunRequest{Benchmark: "gcm_n13", Options: rescq.Options{Seed: 9}}))
	if first.State != JobDone || second.State != JobDone {
		t.Fatalf("runs = %s / %s, want done", first.State, second.State)
	}
	tsA.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, store.WALName))
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec struct {
			Type   string `json:"type"`
			ID     string `json:"id"`
			Tenant string `json:"tenant"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.Type != "job" {
			continue
		}
		switch rec.ID {
		case first.JobID:
			// The default tenant is persisted as the absence of a tag, so
			// default-only traffic writes byte-identical records to older
			// daemons (and their logs replay here symmetrically).
			if strings.Contains(line, "tenant") {
				t.Fatalf("default-tenant job record carries a tenant tag: %s", line)
			}
		case second.JobID:
			if rec.Tenant != "alice" {
				t.Fatalf("tagged job record tenant = %q, want alice: %s", rec.Tenant, line)
			}
		}
	}

	// Restart: the untagged record replays onto the default tenant, the
	// tagged one keeps its identity.
	b := New(config.Daemon{Workers: 1}, &countingRunner{})
	if _, err := b.AttachStore(dir); err != nil {
		t.Fatal(err)
	}
	b.Start()
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		b.Shutdown(ctx)
	}()
	if v := getJob(t, tsB.URL, first.JobID); v.Tenant != "default" {
		t.Fatalf("replayed untagged job tenant = %q, want default", v.Tenant)
	}
	if v := getJob(t, tsB.URL, second.JobID); v.Tenant != "alice" {
		t.Fatalf("replayed tagged job tenant = %q, want alice", v.Tenant)
	}
}
