package service

import (
	"container/list"
	"sync"
)

// fnv32a is an inline, zero-allocation FNV-1a over s, used to pick shards
// on the serving hot path (hash/fnv's hasher allocates per call).
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

const cacheShards = 8

// resultCache is a sharded LRU over deterministic results (rescq.Summary
// for simulations, string reports for experiments). Keys are the stable
// digests from rescq.CacheKey, so sharding by key hash spreads uniformly
// and each shard's lock only contends with 1/8th of the traffic.
type resultCache struct {
	shards [cacheShards]*cacheShard
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	val any
}

func newResultCache(capacity int) *resultCache {
	c := &resultCache{}
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap:     per,
			order:   list.New(),
			entries: make(map[string]*list.Element),
		}
	}
	return c
}

func (c *resultCache) shard(key string) *cacheShard {
	return c.shards[fnv32a(key)%cacheShards]
}

func (c *resultCache) get(key string) (any, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[key]
	if !ok {
		return nil, false
	}
	sh.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *resultCache) put(key string, val any) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		sh.order.MoveToFront(el)
		return
	}
	sh.entries[key] = sh.order.PushFront(&cacheEntry{key: key, val: val})
	for sh.order.Len() > sh.cap {
		oldest := sh.order.Back()
		sh.order.Remove(oldest)
		delete(sh.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the total entry count across shards.
func (c *resultCache) len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}

// capacity reports the total entry budget across shards.
func (c *resultCache) capacity() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.cap
	}
	return n
}
