// Package service implements rescqd, the long-running serving layer in
// front of the rescq simulation engine: an HTTP/JSON daemon that turns the
// one-shot CLI workflow into a job-queue service suitable for sustained
// traffic.
//
// # Endpoints
//
//	POST /v1/run         submit one simulation (benchmark, circuit text, or
//	                     a paper experiment id); waits by default, or
//	                     returns a job id immediately with "async": true
//	POST /v1/sweep       submit a benchmark x scheduler x layout x parameter
//	                     grid; streams per-configuration results (SSE or
//	                     NDJSON) or runs as an async job
//	GET  /v1/jobs        list jobs, including history replayed from the
//	                     durable store across restarts
//	GET  /v1/jobs/{id}   job status, progress and (partial) results
//	DELETE /v1/jobs/{id} cancel a queued or running job
//	POST /v1/jobs/{id}/resume
//	                     continue a cancelled/failed/interrupted job from
//	                     its first unfinished configuration
//	GET  /v1/benchmarks  the Table 3 benchmark suite
//	GET  /v1/capabilities every valid sweep-axis value: benchmarks plus the
//	                     live scheduler and layout registries
//	GET  /healthz        liveness (503 while draining)
//	GET  /metrics        Prometheus text metrics
//
// # Job lifecycle
//
// A submission is validated synchronously (malformed grids and options are
// rejected with 400 before anything is enqueued), expanded into one or
// more run configurations — deduplicated by canonical cache key, so a
// sweep never computes identical work twice — and admitted against two
// bounds: the configuration backlog (Daemon.MaxQueueDepth; beyond it the
// submission is shed with 429 + Retry-After) and the job queue itself (a
// full queue rejects with 503). A bounded worker pool — built on
// sim.ParallelFor, one long-lived worker per slot — drains the queue.
// Jobs move through queued -> running -> done | failed | cancelled. Sweep
// configurations execute in submission order with per-configuration
// progress; cancellation (client disconnect on a waiting/streaming
// request, a failed stream write, or DELETE) propagates through the job
// context into the engine's per-cycle loop, so even a long configuration
// aborts promptly mid-run. On shutdown the daemon stops accepting work,
// lets the workers drain every accepted job, and only cancels in-flight
// jobs if the drain budget expires. Terminal jobs stay inspectable via
// GET /v1/jobs up to a retention bound (the most recent 1024); older ones
// are evicted so a long-running daemon's memory stays flat.
//
// # Durability
//
// With Daemon.StoreDir set, the daemon checkpoints every accepted job and
// every completed configuration to an append-only JSON-lines WAL
// (internal/store), keyed by the same canonical rescq.CacheKey as the
// result cache. On startup the WAL is replayed: terminal jobs come back
// as inspectable history, their results re-seed the cache (latency
// arrays stripped — a post-restart include_latencies request recomputes),
// and interrupted jobs are re-enqueued to resume at their first
// unfinished configuration, yielding a completed result set
// byte-identical to an uninterrupted run. POST /v1/jobs/{id}/resume
// applies the same continuation to cancelled/failed jobs on demand.
// Shutdown takes a final checkpoint: the WAL is compacted, fsynced and
// closed.
//
// # Cache semantics
//
// Results are memoized in a sharded LRU keyed by rescq.CacheKey: a hash of
// the circuit identity (benchmark name, or the full circuit text) and the
// canonical rescq.Options (rescq.Options.Canonical — defaults applied,
// execution-only fields such as Parallel stripped). Simulations are fully
// deterministic given that key, so a hit is byte-identical to a re-run and
// is served without invoking the engine. Identical configurations inside
// one sweep, across sweeps, and across run/sweep requests all share the
// cache. Concurrent identical configurations are coalesced: followers wait
// for the in-flight leader and are then served from the freshly filled
// cache instead of re-running the engine. Paper experiments are cached by
// (experiment id, quick). The hit/miss/engine-run counters on /metrics
// make cache behavior observable (and testable).
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	rescq "repro"
	"repro/internal/analytics"
	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/schedq"
	"repro/internal/sim"
	"repro/internal/store"
)

// Runner abstracts the simulation engine behind the daemon. Production use
// is EngineRunner; tests substitute counting or stalling runners to assert
// cache hits and drain behavior. Implementations must honor ctx promptly:
// a cancelled job's context reaches the engine's per-cycle loop, so a
// DELETE or client disconnect aborts a long configuration mid-run rather
// than at its boundary.
type Runner interface {
	Run(ctx context.Context, benchmark string, opts rescq.Options) (rescq.Summary, error)
	RunCircuitText(ctx context.Context, name, text string, opts rescq.Options) (rescq.Summary, error)
	Experiment(ctx context.Context, id string, quick bool) (string, error)
}

// EngineRunner is the Runner backed by the real rescq engine.
type EngineRunner struct{}

func (EngineRunner) Run(ctx context.Context, benchmark string, opts rescq.Options) (rescq.Summary, error) {
	return rescq.RunContext(ctx, benchmark, opts)
}

func (EngineRunner) RunCircuitText(ctx context.Context, name, text string, opts rescq.Options) (rescq.Summary, error) {
	return rescq.RunCircuitTextContext(ctx, name, text, opts)
}

func (EngineRunner) Experiment(ctx context.Context, id string, quick bool) (string, error) {
	// The experiment drivers are batch paper regeneration and do not
	// thread a context; cancellation takes effect at the job boundary.
	return rescq.Experiment(id, quick)
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// runSpec is one fully-validated run configuration inside a job.
type runSpec struct {
	// Exactly one of Benchmark, CircuitText or Experiment is set.
	Benchmark   string
	Name        string // label for CircuitText runs
	CircuitText string
	Experiment  string
	Quick       bool
	Opts        rescq.Options
	// KeepLatencies retains the per-gate latency arrays in the stored
	// result (tens of thousands of ints per run; stripped otherwise).
	KeepLatencies bool
}

// ConfigResult reports one completed run configuration of a job.
type ConfigResult struct {
	Index     int            `json:"index"`
	Benchmark string         `json:"benchmark,omitempty"`
	Scheduler string         `json:"scheduler,omitempty"`
	Layout    string         `json:"layout,omitempty"`
	Options   *rescq.Options `json:"options,omitempty"`
	Cached    bool           `json:"cached"`
	Summary   *rescq.Summary `json:"summary,omitempty"`
	Report    string         `json:"report,omitempty"` // experiment payloads
	Error     string         `json:"error,omitempty"`
}

// Job is one queued/running/finished unit of work.
type Job struct {
	ID      string
	Kind    string // "run" or "sweep"
	Created time.Time
	// Tenant is the owning tenant for scheduling and accounting — never
	// empty; untagged submissions get schedq.DefaultTenant. Immutable
	// after construction.
	Tenant string

	specs []runSpec
	// encSpecs caches each spec's wire encoding, filled lazily by the
	// cluster prepass the first time the job is dispatched: one marshal per
	// configuration, reused across every dispatch, retry and hedge. Written
	// only by the prepass goroutine; each entry is read by dispatchers only
	// after its index passes through the work queue's mutex.
	encSpecs [][]byte

	// fromStore marks a job reconstructed from the WAL (its job record is
	// already on disk); resumedFrom names the job this one continues.
	fromStore   bool
	resumedFrom string

	ctx    context.Context
	cancel context.CancelFunc
	doneCh chan struct{}
	events chan ConfigResult // buffered len(specs); closed when job finishes

	mu       sync.Mutex
	state    JobState
	started  time.Time
	finished time.Time
	results  []ConfigResult
	err      error
	// resumedTo names the job that continued this one; set (and checked)
	// under mu so concurrent POST .../resume calls cannot both mint a
	// continuation and duplicate the remaining work.
	resumedTo string
}

// State returns the job's current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Cancel requests cancellation. The job context propagates into the
// engine's per-cycle loop, so an in-flight configuration aborts promptly;
// queued jobs are dropped when a worker picks them up.
func (j *Job) Cancel() { j.cancel() }

// snapshot copies the mutable job fields for rendering.
func (j *Job) snapshot() (state JobState, started, finished time.Time, results []ConfigResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.started, j.finished, append([]ConfigResult(nil), j.results...), j.err
}

// ErrQueueFull is returned when the bounded job queue rejects a submission.
var ErrQueueFull = errors.New("service: job queue full")

// ErrDraining is returned for submissions after shutdown began.
var ErrDraining = errors.New("service: draining, not accepting jobs")

// OverloadError is returned when admission control sheds a submission: the
// backlog of admitted-but-unfinished run configurations would exceed
// Daemon.MaxQueueDepth. The HTTP layer maps it to 429 with a Retry-After
// hint derived from the backlog and observed job latency.
type OverloadError struct {
	Pending    int64 // configurations admitted and not yet finished
	Limit      int   // Daemon.MaxQueueDepth (or the tenant's quota)
	RetryAfter time.Duration
	// Tenant is set when a per-tenant quota (not the global backlog bound)
	// shed the submission; Pending and RetryAfter are then the tenant's own.
	Tenant string
}

func (e *OverloadError) Error() string {
	if e.Tenant != "" {
		return fmt.Sprintf("service: tenant %q over quota: %d configurations pending (limit %d), retry in %s",
			e.Tenant, e.Pending, e.Limit, e.RetryAfter)
	}
	return fmt.Sprintf("service: overloaded: %d configurations pending (limit %d), retry in %s",
		e.Pending, e.Limit, e.RetryAfter)
}

const jobShards = 8

// maxFinishedJobs bounds how many terminal jobs the registry retains for
// GET /v1/jobs inspection; beyond it the oldest-finished are evicted so a
// long-running daemon's memory stays flat. Queued/running jobs are never
// evicted.
const maxFinishedJobs = 1024

type jobShard struct {
	mu   sync.Mutex
	jobs map[string]*Job
}

// Server owns the job queue, the worker pool, the result cache and the
// metrics. Create with New, start the pool with Start, serve Handler over
// HTTP, stop with Shutdown.
type Server struct {
	cfg    config.Daemon
	runner Runner
	stats  *metrics.ServiceStats
	cache  *resultCache // nil when caching is disabled
	// sched replaced the original buffered `chan *Job`: submission Pushes
	// under the tenant's quota, workers Pop whichever tenant the policy
	// picks, and running jobs poll Yield for preemption (see internal/schedq).
	sched schedq.Scheduler
	store *store.Store  // nil until AttachStore; durability layer
	clust *clusterState // nil in standalone mode; scale-out layer
	// an aggregates the persisted result stream for GET /v1/analytics/*
	// (nil when disabled); fed at persist time, rebuilt from the WAL at
	// AttachStore. See analytics.go for the wiring.
	an *analytics.Store

	// pending counts run configurations admitted but not yet finished —
	// the quantity Daemon.MaxQueueDepth bounds (admission control).
	pending atomic.Int64

	// workerDraining is the worker-mode retirement latch (POST
	// /internal/v1/drain): sticky, announced on heartbeats, fences the
	// execute endpoint. Distinct from draining, the process-shutdown flag.
	workerDraining atomic.Bool
	// execInflight counts batches currently executing on this worker's
	// execute endpoint (drain observability).
	execInflight atomic.Int64

	shards [jobShards]jobShard

	finMu       sync.Mutex
	finishedIDs []string // terminal jobs in finish order, oldest first

	flightMu sync.Mutex
	inflight map[string]chan struct{} // cache keys being computed right now

	// Degraded durability: lossy flips true when a WAL append fails, and
	// from then on persist* calls skip the disk (counted, not errored)
	// while a background probe retries the store at probeEvery until the
	// disk heals — the daemon keeps serving instead of failing submissions.
	lossy      atomic.Bool
	probeEvery time.Duration
	replay     ReplayStats // what AttachStore recovered, for /healthz

	mu        sync.Mutex
	accepting bool
	started   bool
	draining  atomic.Bool
	poolDone  chan struct{}
	baseCtx   context.Context
	baseStop  context.CancelFunc
	startTime time.Time
	nextID    atomic.Int64
	workers   int
}

// New builds a server from the daemon config. A nil runner uses the real
// engine.
func New(cfg config.Daemon, runner Runner) *Server {
	cfg = cfg.WithDefaults()
	if runner == nil {
		runner = EngineRunner{}
	}
	ctx, stop := context.WithCancel(context.Background())
	sched, err := schedq.New(cfg.QueuePolicy, cfg.Tenants.SchedConfig(cfg.QueueDepth))
	if err != nil {
		// Validate gates every config that reaches a running daemon; an
		// unknown policy here (tests constructing configs by hand) falls
		// back to the default rather than panicking.
		sched, _ = schedq.New("", cfg.Tenants.SchedConfig(cfg.QueueDepth))
	}
	s := &Server{
		cfg:        cfg,
		runner:     runner,
		stats:      metrics.NewServiceStats(),
		sched:      sched,
		poolDone:   make(chan struct{}),
		probeEvery: 2 * time.Second,
		baseCtx:    ctx,
		baseStop:   stop,
		startTime:  time.Now(),
		// Accepting from construction, not from Start: AttachStore
		// re-enqueues interrupted jobs into the scheduler before the
		// worker pool spins up.
		accepting: true,
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries)
		s.inflight = make(map[string]chan struct{})
	}
	if cfg.AnalyticsEnabled() {
		s.an = analytics.New(cfg.AnalyticsMaxGroups)
	}
	s.clust = newClusterState(cfg.Cluster)
	for i := range s.shards {
		s.shards[i].jobs = make(map[string]*Job)
	}
	return s
}

// Stats exposes the metrics counters (used by handlers and tests).
func (s *Server) Stats() *metrics.ServiceStats { return s.stats }

// Workers reports the resolved worker-pool width (valid after Start).
func (s *Server) Workers() int { return s.workers }

// Start launches the worker pool. The pool is literally sim.ParallelFor
// over the worker count — each iteration is one long-lived worker draining
// the shared queue until Shutdown closes it — so the daemon reuses the same
// bounded-pool primitive as the engine's seed fan-out.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = sim.DefaultWorkers() // one per CPU, like the engine's pool
	}
	s.workers = workers
	if s.clust != nil && s.clust.registry != nil {
		// The coordinator's liveness sweeper runs until Shutdown cancels
		// baseCtx, expiring workers that miss their heartbeat window.
		go s.expirySweeper()
	}
	go func() {
		// With workers == 1, ParallelFor runs serially on this goroutine —
		// exactly one dedicated worker, as configured.
		sim.ParallelFor(workers, workers, func(int) { s.worker() })
		close(s.poolDone)
	}()
}

// Shutdown drains gracefully: stop accepting, close the queue, and wait
// for the workers to finish every accepted job. If ctx expires first,
// in-flight jobs are cancelled (the cancellation reaches the engine's
// cycle loop, so even a long configuration aborts promptly) and Shutdown
// returns ctx.Err() after the pool exits. Either way, the WAL — when one
// is attached — takes its final checkpoint: compacted, fsynced, closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.started {
		s.accepting = false
		s.mu.Unlock()
		s.baseStop()
		s.closeStore()
		return nil
	}
	// Close the scheduler under the same lock submit holds for its push
	// (see submit): once we release it no sender can race the close.
	// Queued jobs drain — Pop keeps returning them until empty.
	if s.accepting {
		s.accepting = false
		s.sched.Close()
	}
	s.mu.Unlock()
	s.draining.Store(true)
	select {
	case <-s.poolDone:
		s.baseStop() // every job is terminal; stop the liveness sweeper too
		s.closeStore()
		return nil
	case <-ctx.Done():
		s.baseStop() // cancel in-flight jobs, then wait for the pool
		<-s.poolDone
		s.closeStore()
		return ctx.Err()
	}
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) shard(id string) *jobShard {
	return &s.shards[fnv32a(id)%jobShards]
}

func (s *Server) registerJob(j *Job) {
	sh := s.shard(j.ID)
	sh.mu.Lock()
	sh.jobs[j.ID] = j
	sh.mu.Unlock()
}

// Job looks up a job by id.
func (s *Server) Job(id string) (*Job, bool) {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	j, ok := sh.jobs[id]
	return j, ok
}

// Jobs returns every known job (unordered).
func (s *Server) Jobs() []*Job {
	var out []*Job
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, j := range sh.jobs {
			out = append(out, j)
		}
		sh.mu.Unlock()
	}
	return out
}

// buildJob allocates a job over the given validated specs without
// registering it, so callers can finish populating it (resume prefixes,
// provenance) before it becomes visible to listings.
func (s *Server) buildJob(kind, tenant string, specs []runSpec) *Job {
	if tenant == "" {
		tenant = schedq.DefaultTenant
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	return &Job{
		ID:      fmt.Sprintf("job-%06d", s.nextID.Add(1)),
		Kind:    kind,
		Created: time.Now(),
		Tenant:  tenant,
		specs:   specs,
		ctx:     ctx,
		cancel:  cancel,
		doneCh:  make(chan struct{}),
		events:  make(chan ConfigResult, len(specs)),
		state:   JobQueued,
	}
}

// newJob allocates and registers a job over the given validated specs.
func (s *Server) newJob(kind, tenant string, specs []runSpec) *Job {
	j := s.buildJob(kind, tenant, specs)
	s.registerJob(j)
	return j
}

// submit enqueues a job, rejecting when draining, shedding when admission
// control's configuration backlog (global or the tenant's own quota) is
// exhausted, and rejecting when the scheduler's capacity is full. The
// accepting check, the admission checks and the scheduler push happen
// under one lock so a concurrent Shutdown (which closes the scheduler) or
// submit can never interleave between them.
func (s *Server) submit(j *Job) error {
	// Resumed jobs re-enter with a completed prefix; only the unfinished
	// configurations count against the backlog. No worker owns the job
	// before the scheduler push below, so the unlocked read is safe.
	remaining := int64(len(j.specs) - len(j.results))
	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		s.stats.JobsRejected.Add(1)
		s.failFast(j, ErrDraining)
		return ErrDraining
	}
	// Replayed jobs bypass admission control: the WAL promised them a
	// resume, and their work was already admitted in a previous life.
	if limit := s.cfg.MaxQueueDepth; limit > 0 && !j.fromStore {
		if cur := s.pending.Load(); cur+remaining > int64(limit) {
			s.mu.Unlock()
			s.stats.JobsShed.Add(1)
			s.stats.Tenant(j.Tenant).Shed.Add(1)
			// Retry-After from the shedding tenant's own backlog: under the
			// global bound a tenant with no queued work of its own should
			// not be told to wait out the whale's entire backlog.
			own := s.sched.Backlog(j.Tenant)
			err := &OverloadError{Pending: cur, Limit: limit, RetryAfter: s.retryAfter(own)}
			s.failFast(j, err)
			return err
		}
	}
	// Checkpoint the job record BEFORE it becomes visible to a worker: a
	// fast worker (cache hit) can otherwise persist the first result
	// before the job record exists, and the store would drop it. Holding
	// s.mu across this is fine: AppendJob is a single compaction-free
	// append (resume prefixes are pre-persisted by resumeJob, so the
	// inherited-result loop no-ops here), and the store never takes
	// server locks.
	s.persistJob(j)
	push := s.sched.Push
	if j.fromStore {
		push = s.sched.PushExempt // quota-exempt, like the global bypass above
	}
	err := push(j.Tenant, remaining, j)
	if err == nil {
		s.pending.Add(remaining)
		s.mu.Unlock()
		s.stats.JobsQueued.Add(1)
		s.stats.Tenant(j.Tenant).Queued.Add(1)
		return nil
	}
	s.mu.Unlock()
	var qe *schedq.QuotaError
	switch {
	case errors.Is(err, schedq.ErrClosed):
		err = ErrDraining
		s.stats.JobsRejected.Add(1)
	case errors.As(err, &qe):
		s.stats.JobsShed.Add(1)
		s.stats.Tenant(j.Tenant).Shed.Add(1)
		err = &OverloadError{
			Tenant:     j.Tenant,
			Pending:    qe.Backlog,
			Limit:      int(qe.Limit),
			RetryAfter: s.retryAfter(qe.Backlog),
		}
	default: // schedq.ErrFull
		err = ErrQueueFull
		s.stats.JobsRejected.Add(1)
	}
	s.failFast(j, err)
	return err
}

// retryAfter estimates when the backlog will have drained enough to admit
// new work: pending configurations spread over the worker pool at the
// observed per-configuration latency, clamped to [1s, 5min]. The latency
// histogram tracks whole jobs, so the median is scaled down by the mean
// configurations-per-finished-job — otherwise sweep traffic (one job,
// hundreds of configurations) would overestimate by that factor.
func (s *Server) retryAfter(pending int64) time.Duration {
	p50, _ := s.stats.LatencyPercentiles()
	workers := s.workers
	if workers < 1 {
		workers = 1
	}
	configs := s.stats.CacheHits.Load() + s.stats.EngineRuns.Load()
	jobs := s.stats.JobsDone.Load() + s.stats.JobsFailed.Load() + s.stats.JobsCancelled.Load()
	perJob := int64(1)
	if jobs > 0 && configs > jobs {
		perJob = configs / jobs
	}
	est := time.Duration(pending) * time.Duration(p50) * time.Millisecond /
		time.Duration(workers) / time.Duration(perJob)
	if est < time.Second {
		est = time.Second
	}
	if est > 5*time.Minute {
		est = 5 * time.Minute
	}
	return est.Round(time.Second)
}

// failFast marks a never-enqueued job failed so its registry entry is not
// stuck in "queued" forever. If the job record already reached the WAL
// (queue-full after the pre-send checkpoint), the failure is checkpointed
// too so replay does not resurrect a rejected job; for shed/draining
// rejections the store never saw the job and AppendDone no-ops.
func (s *Server) failFast(j *Job, err error) {
	j.mu.Lock()
	j.state = JobFailed
	j.err = err
	j.finished = time.Now()
	j.mu.Unlock()
	if !j.fromStore {
		// Checkpoint the failure when the job record already reached the
		// WAL (queue-full after the pre-send checkpoint) so replay does
		// not resurrect a rejected job; for shed/draining rejections the
		// store never saw the job and AppendDone no-ops. Replayed jobs
		// are the exception: they stay interrupted on disk so the NEXT
		// restart can retry the re-enqueue.
		s.persistDone(j, JobFailed, err)
	}
	s.analyticsForget(j.ID)
	close(j.events)
	close(j.doneCh)
	j.cancel() // release the baseCtx child (see execute)
	s.retireJob(j.ID)
}

// retireJob records a terminal job and evicts the oldest finished jobs
// beyond the retention bound. Waiters holding the *Job keep it alive
// regardless; eviction only drops the registry's reference.
func (s *Server) retireJob(id string) {
	s.finMu.Lock()
	s.finishedIDs = append(s.finishedIDs, id)
	var evict []string
	if n := len(s.finishedIDs) - maxFinishedJobs; n > 0 {
		evict = append([]string(nil), s.finishedIDs[:n]...)
		s.finishedIDs = append([]string(nil), s.finishedIDs[n:]...)
	}
	s.finMu.Unlock()
	for _, old := range evict {
		sh := s.shard(old)
		sh.mu.Lock()
		delete(sh.jobs, old)
		sh.mu.Unlock()
	}
}

// worker is one pool slot: it drains the scheduler until Shutdown closes
// it (Pop keeps the channel-range contract — it blocks while empty and
// reports ok=false only once closed AND drained).
func (s *Server) worker() {
	for {
		item, ok := s.sched.Pop()
		if !ok {
			return
		}
		s.execute(item.(*Job))
	}
}

// execute runs every configuration of a job, publishing per-configuration
// results and progress as it goes. Resumed jobs (a completed prefix
// replayed from the WAL or inherited via /resume) re-enter at the first
// unfinished configuration.
func (s *Server) execute(j *Job) {
	j.mu.Lock()
	j.state = JobRunning
	if j.started.IsZero() {
		// First pickup; a preempted continuation keeps its original start so
		// the observed latency spans the whole job, waits included.
		j.started = time.Now()
	}
	start := j.started
	startIdx := len(j.results)
	j.mu.Unlock()
	s.stats.JobsRunning.Add(1)
	defer s.stats.JobsRunning.Add(-1)
	tc := s.stats.Tenant(j.Tenant)
	tc.Running.Add(1)
	defer tc.Running.Add(-1)

	var cancelled bool
	for {
		var preempted bool
		if s.dispatchable() {
			// Coordinator mode with live workers: shard the unfinished
			// configurations into batches dispatched across the cluster. The
			// sequencer inside keeps results, WAL records and streamed events
			// in exactly the order this loop would produce them.
			cancelled, preempted = s.executeSharded(j, startIdx)
		} else {
			cancelled, preempted = s.executeLocal(j, startIdx)
		}
		if !preempted {
			break
		}
		if s.requeuePreempted(j) {
			// The continuation is queued; another worker slot (possibly this
			// one) owns it from here. Touch nothing after the handoff.
			return
		}
		// The scheduler refused the requeue (closing); keep executing — the
		// drain contract says every accepted job finishes.
		j.mu.Lock()
		j.state = JobRunning
		startIdx = len(j.results)
		j.mu.Unlock()
	}

	j.mu.Lock()
	failures := 0
	for i := range j.results {
		if j.results[i].Error != "" {
			failures++
		}
	}
	unfinished := len(j.specs) - len(j.results)
	switch {
	case cancelled:
		j.state = JobCancelled
		j.err = context.Canceled
		s.stats.JobsCancelled.Add(1)
	case failures == len(j.specs) || (j.Kind == "run" && failures > 0):
		// A sweep with partial failures still reports as done with
		// per-configuration errors; only total failure (or any failure of
		// a single-configuration run) fails the job.
		j.state = JobFailed
		j.err = fmt.Errorf("service: %d/%d configurations failed", failures, len(j.specs))
		s.stats.JobsFailed.Add(1)
	default:
		j.state = JobDone
		s.stats.JobsDone.Add(1)
	}
	j.finished = time.Now()
	state, err := j.state, j.err
	j.mu.Unlock()
	s.pending.Add(-int64(unfinished)) // configurations the break left behind
	s.sched.Abandon(j.Tenant, int64(unfinished))
	s.sched.JobDone(j.Tenant)
	tc.Done.Add(1)
	s.persistDone(j, state, err)
	s.analyticsForget(j.ID)
	close(j.events)
	close(j.doneCh)
	// Release the context child registered on baseCtx; without this every
	// terminal job would stay in baseCtx's children set forever.
	j.cancel()
	s.retireJob(j.ID)
	s.stats.ObserveLatency(time.Since(start))
}

// requeuePreempted hands a checkpointed job back to the scheduler as a
// resumable continuation: its completed prefix is already appended (and in
// the WAL), so the next pickup re-enters at the first unfinished
// configuration — the same machinery WAL replay and /resume use. Reports
// whether the handoff succeeded; on success the caller must not touch j.
func (s *Server) requeuePreempted(j *Job) bool {
	j.mu.Lock()
	j.state = JobQueued
	j.mu.Unlock()
	if err := s.sched.Requeue(j.Tenant, j); err != nil {
		return false // scheduler closing; the caller keeps executing
	}
	s.stats.JobsPreempted.Add(1)
	s.stats.Tenant(j.Tenant).Preempted.Add(1)
	return true
}

// shouldPreempt reports whether a running job should checkpoint at its
// next configuration boundary and hand the worker slot to a waiting
// better-entitled tenant. Never during drain: Shutdown wants jobs finished,
// not reshuffled.
func (s *Server) shouldPreempt(j *Job) bool {
	return !s.draining.Load() && s.sched.Yield(j.Tenant)
}

// executeLocal is the standalone execution path: every unfinished
// configuration runs in submission order on this worker slot. Returns
// whether the job was cancelled, and whether it was preempted at a
// configuration boundary (the completed prefix is checkpointed; the caller
// requeues the job as a resumable continuation).
func (s *Server) executeLocal(j *Job, startIdx int) (cancelled, preempted bool) {
	for i := startIdx; i < len(j.specs); i++ {
		if j.ctx.Err() != nil {
			return true, false
		}
		// At least one configuration per pickup (i > startIdx): a quantum
		// always makes progress, so two preempting tenants cannot livelock
		// each other into requeue loops.
		if i > startIdx && s.shouldPreempt(j) {
			return false, true
		}
		res := s.runOne(j.ctx, j.specs[i])
		res.Index = i
		if res.Error != "" && j.ctx.Err() != nil {
			// The configuration was aborted mid-run by cancellation, not
			// by a real engine failure: discard the partial result.
			return true, false
		}
		j.mu.Lock()
		j.results = append(j.results, res)
		j.mu.Unlock()
		s.persistResult(j, j.specs[i], res)
		j.events <- res // buffered to len(specs): never blocks
		s.pending.Add(-1)
		s.sched.Completed(j.Tenant, 1)
	}
	return false, false
}

// specKey returns the configuration's cache/store identity: the canonical
// rescq.CacheKey for simulations, an experiment-id key for paper reports.
// It is the key the result cache, the in-flight coalescing table and the
// WAL's result records all share.
func specKey(spec runSpec) string {
	switch {
	case spec.Experiment != "":
		return fmt.Sprintf("exp:%s:quick=%t", spec.Experiment, spec.Quick)
	case spec.CircuitText != "":
		return rescq.CacheKey("text:"+spec.Name+"\x00"+spec.CircuitText, spec.Opts)
	default:
		return rescq.CacheKey("bench:"+spec.Benchmark, spec.Opts)
	}
}

// cacheUsable reports whether a cache hit can serve this spec. Values
// reseeded from the WAL carry stripped latency arrays (partialSummary); a
// request that asked to keep them must recompute.
func cacheUsable(v any, spec runSpec) bool {
	_, partial := v.(partialSummary)
	return !(partial && spec.KeepLatencies)
}

// newConfigResult builds the result skeleton for a spec: the identity
// fields every rendering of the configuration carries, whether it was
// computed locally, served from cache, or returned by a cluster worker.
func newConfigResult(spec runSpec) ConfigResult {
	res := ConfigResult{
		Benchmark: spec.Benchmark,
		Scheduler: string(spec.Opts.Scheduler),
		Layout:    spec.Opts.Layout,
	}
	if res.Layout == "" {
		res.Layout = rescq.DefaultLayout // spelled out for sweep clients
	}
	if spec.Benchmark == "" && spec.CircuitText != "" {
		res.Benchmark = spec.Name
	}
	if spec.Experiment != "" {
		res.Benchmark, res.Scheduler, res.Layout = "", "", ""
	}
	return res
}

// runOne executes (or serves from cache) a single configuration.
func (s *Server) runOne(ctx context.Context, spec runSpec) ConfigResult {
	res := newConfigResult(spec)
	key := specKey(spec)

	if s.cache != nil {
		if v, ok := s.cache.get(key); ok && cacheUsable(v, spec) {
			s.stats.CacheHits.Add(1)
			res.Cached = true
			fillResult(&res, spec, v)
			return res
		}
		// Coalesce concurrent identical configurations: followers wait for
		// the in-flight leader instead of re-running the engine, then are
		// served from the freshly filled cache.
		leader, err := s.joinFlight(ctx, key)
		switch {
		case err != nil:
			// The follower's own job was cancelled while waiting; don't
			// inherit or compute anything for a reader that is gone.
			res.Error = err.Error()
			return res
		case !leader:
			s.stats.Coalesced.Add(1)
			if v, ok := s.cache.get(key); ok && cacheUsable(v, spec) {
				s.stats.CacheHits.Add(1)
				res.Cached = true
				fillResult(&res, spec, v)
				return res
			}
			// The leader failed (or could not cache); compute it ourselves.
		default:
			defer s.leaveFlight(key)
		}
		s.stats.CacheMisses.Add(1)
	}

	// The cache always stores the full Summary (so a later request with
	// include_latencies can still be served); fillResult trims the stored
	// per-job copy unless this spec asked to keep the arrays.

	s.stats.EngineRuns.Add(1)
	start := time.Now()
	var (
		val any
		err error
	)
	switch {
	case spec.Experiment != "":
		val, err = s.runner.Experiment(ctx, spec.Experiment, spec.Quick)
	case spec.CircuitText != "":
		val, err = s.runner.RunCircuitText(ctx, spec.Name, spec.CircuitText, spec.Opts)
	default:
		val, err = s.runner.Run(ctx, spec.Benchmark, spec.Opts)
	}
	s.stats.ObserveConfigLatency(time.Since(start))
	if err != nil {
		res.Error = err.Error()
		return res
	}
	if s.cache != nil {
		s.cache.put(key, val)
	}
	fillResult(&res, spec, val)
	return res
}

// joinFlight returns true if the caller became the leader for key (and
// must call leaveFlight when done); false means an in-flight leader existed
// and has since finished — the caller should re-check the cache. Followers
// block for the leader's whole engine run, which is the point: computing
// the same configuration in parallel would cost the same wall-clock for
// N× the CPU. A follower whose own job is cancelled stops waiting and
// returns ctx's error instead of pinning its worker on the leader.
func (s *Server) joinFlight(ctx context.Context, key string) (leader bool, err error) {
	s.flightMu.Lock()
	if c, ok := s.inflight[key]; ok {
		s.flightMu.Unlock()
		select {
		case <-c:
			return false, nil
		case <-ctx.Done():
			return false, fmt.Errorf("service: abandoned coalesced wait: %w", ctx.Err())
		}
	}
	s.inflight[key] = make(chan struct{})
	s.flightMu.Unlock()
	return true, nil
}

func (s *Server) leaveFlight(key string) {
	s.flightMu.Lock()
	c := s.inflight[key]
	delete(s.inflight, key)
	s.flightMu.Unlock()
	close(c)
}

func fillResult(res *ConfigResult, spec runSpec, val any) {
	if p, ok := val.(partialSummary); ok {
		val = p.sum // WAL-reseeded: already latency-stripped
	}
	switch v := val.(type) {
	case rescq.Summary:
		opts := spec.Opts.Canonical()
		res.Options = &opts
		sum := v
		res.Summary = &sum
		if !spec.KeepLatencies {
			stripLatencies(res)
		}
	case string:
		res.Report = v
	}
}
