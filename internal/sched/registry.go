package sched

// registry.go is the open scheduler registry: named constructors the rest
// of the system (rescq.Options, the experiment drivers, the sweep daemon)
// resolves by name, so new policies plug in without touching any call
// site. This package registers the two static baselines ("greedy",
// "autobraid"); internal/core registers the paper's realtime scheduler
// ("rescq") from its own init, keeping the dependency arrow pointing from
// policy packages into this registry and never back.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Params carries the structured knobs a scheduler constructor may consume.
// Constructors ignore the fields they have no use for (the static
// baselines take none), which is what lets one sweep grid drive
// heterogeneous policies.
type Params struct {
	// K is the MST recomputation period in cycles for RESCQ-style
	// realtime schedulers (<= 0 means the policy default).
	K int
	// TauMST is the modeled MST computation latency in cycles (0 means
	// the policy default).
	TauMST int
	// Extra carries free-form knobs for externally registered policies.
	Extra map[string]string
}

// Constructor builds a fresh scheduler instance from params. Instances
// carry per-run state, so every seeded run constructs its own.
type Constructor func(p Params) (sim.Scheduler, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Constructor{}
)

// Register adds a scheduler constructor under the given name. It panics on
// an empty name, a nil constructor, or a duplicate registration — all
// programmer errors at package-init time.
func Register(name string, c Constructor) {
	if name == "" {
		panic("sched: Register with empty scheduler name")
	}
	if c == nil {
		panic(fmt.Sprintf("sched: Register(%q) with nil constructor", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: scheduler %q registered twice", name))
	}
	registry[name] = c
}

// Known reports whether name is a registered scheduler.
func Known(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names returns the registered scheduler names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New constructs a fresh instance of the named scheduler. Unknown names
// fail with an error enumerating the registered schedulers.
func New(name string, p Params) (sim.Scheduler, error) {
	regMu.RLock()
	c, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return c(p)
}

func init() {
	Register("greedy", func(Params) (sim.Scheduler, error) { return NewGreedy(), nil })
	Register("autobraid", func(Params) (sim.Scheduler, error) { return NewAutoBraid(), nil })
}
