package sched

import (
	mathrand "math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/lattice"
	"repro/internal/qbench"
	"repro/internal/sim"
)

func cfg() sim.Config { return sim.Config{Distance: 7, PhysError: 1e-4} }

func runOn(t *testing.T, c *circuit.Circuit, s sim.Scheduler, seed int64) *sim.Result {
	t.Helper()
	g := lattice.MustBuild("star", c.NumQubits, nil)
	res, err := sim.RunSeeded(g, c, cfg(), seed, s)
	if err != nil {
		t.Fatalf("%s on %s: %v", s.Name(), c.Name, err)
	}
	return res
}

func TestGreedySingleCNOT(t *testing.T) {
	c := circuit.New("one-cnot", 4)
	c.CNOT(0, 1)
	res := runOn(t, c, NewGreedy(), 1)
	// The static baseline routes through the single shared ancilla, whose
	// placement exposes the control's X edge: one 3-cycle edge rotation
	// plus the 2-cycle CNOT (the paper's Figure 5 "5-cycle" mode).
	if res.TotalCycles != 5 {
		t.Errorf("single CNOT took %d cycles, want 5 (rotation + surgery)", res.TotalCycles)
	}
	if res.EdgeRotations != 1 {
		t.Errorf("edge rotations = %d, want 1", res.EdgeRotations)
	}
}

func TestAutoBraidSingleCNOT(t *testing.T) {
	c := circuit.New("one-cnot", 4)
	c.CNOT(0, 1)
	res := runOn(t, c, NewAutoBraid(), 1)
	if res.TotalCycles != 5 {
		t.Errorf("single CNOT took %d cycles, want 5 (rotation + surgery)", res.TotalCycles)
	}
}

func TestSingleRzCompletes(t *testing.T) {
	c := circuit.New("one-rz", 4)
	c.Rz(0, circuit.NewAngle(5, 96))
	res := runOn(t, c, NewGreedy(), 3)
	if res.InjectionsStarted < 1 {
		t.Error("Rz should require at least one injection")
	}
	if len(res.RzLatencies) != 1 {
		t.Fatalf("RzLatencies = %v", res.RzLatencies)
	}
	// Minimum: 1 prep cycle + 1 ZZ injection cycle.
	if res.RzLatencies[0] < 2 {
		t.Errorf("Rz latency %d implausibly small", res.RzLatencies[0])
	}
}

func TestSingleHadamard(t *testing.T) {
	c := circuit.New("one-h", 4)
	c.H(0)
	res := runOn(t, c, NewGreedy(), 1)
	if res.TotalCycles != sim.HadamardCycles {
		t.Errorf("H took %d cycles, want %d", res.TotalCycles, sim.HadamardCycles)
	}
}

func TestLayerBarrier(t *testing.T) {
	// Two independent CNOTs (layer 0) then one dependent CNOT (layer 1).
	// The static scheduler must not start layer 1 before layer 0 is fully
	// done, so total >= 4 cycles.
	c := circuit.New("layers", 6)
	c.CNOT(0, 1)
	c.CNOT(2, 3)
	c.CNOT(1, 2) // depends on both
	res := runOn(t, c, NewGreedy(), 1)
	if res.TotalCycles < 4 {
		t.Errorf("layered run took %d cycles, want >= 4", res.TotalCycles)
	}
}

func TestBothBaselinesRunSmallSuite(t *testing.T) {
	for _, name := range []string{"vqe_n13", "wstate_n27", "qaoa_n15"} {
		spec, ok := qbench.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		for _, mk := range []func() sim.Scheduler{NewGreedy, NewAutoBraid} {
			s := mk()
			res := runOn(t, spec.Circuit(), s, 7)
			if res.TotalCycles <= 0 {
				t.Errorf("%s on %s: nonpositive cycles", s.Name(), name)
			}
			want := spec.Circuit().Stats()
			if len(res.CNOTLatencies) != want.CNOT {
				t.Errorf("%s on %s: %d CNOT latencies, want %d", s.Name(), name, len(res.CNOTLatencies), want.CNOT)
			}
			if len(res.RzLatencies) != want.Rz {
				t.Errorf("%s on %s: %d Rz latencies, want %d (non-Clifford)", s.Name(), name, len(res.RzLatencies), want.Rz)
			}
		}
	}
}

func TestRunsOnCompressedGrid(t *testing.T) {
	spec, _ := qbench.ByName("vqe_n13")
	c := spec.Circuit()
	for _, frac := range []float64{0.5, 1.0} {
		g := lattice.MustBuild("star", c.NumQubits, nil)
		g.Compress(frac, newRand(11))
		res, err := sim.RunSeeded(g, c, cfg(), 5, NewGreedy())
		if err != nil {
			t.Fatalf("compression %v: %v", frac, err)
		}
		if res.TotalCycles <= 0 {
			t.Errorf("compression %v: nonpositive cycles", frac)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	spec, _ := qbench.ByName("vqe_n13")
	a := runOn(t, spec.Circuit(), NewGreedy(), 9)
	b := runOn(t, spec.Circuit(), NewGreedy(), 9)
	if a.TotalCycles != b.TotalCycles {
		t.Errorf("same seed diverged: %d vs %d", a.TotalCycles, b.TotalCycles)
	}
}

func TestInjectionCountMatchesEquationOne(t *testing.T) {
	// Over many non-dyadic Rz gates the mean injections per gate is ~2.
	c := circuit.New("many-rz", 16)
	for q := 0; q < 16; q++ {
		for i := 0; i < 8; i++ {
			c.Rz(q, circuit.NewAngle(5, 96))
		}
	}
	var inj, gates int
	for seed := int64(0); seed < 5; seed++ {
		res := runOn(t, c, NewGreedy(), seed)
		inj += res.InjectionsStarted
		gates += len(res.RzLatencies)
	}
	perGate := float64(inj) / float64(gates)
	if perGate < 1.6 || perGate > 2.5 {
		t.Errorf("injections per Rz = %v, want ~2 (Equation 1)", perGate)
	}
}

// newRand is a tiny helper for tests needing a seeded source.
func newRand(seed int64) *mathrand.Rand { return mathrand.New(mathrand.NewSource(seed)) }
