package sched

import (
	"repro/internal/circuit"
	"repro/internal/lattice"
	"repro/internal/rus"
	"repro/internal/sim"
)

// drivers.go holds the per-gate state machines shared by the static
// baseline schedulers: CNOT routing with on-demand edge rotations, the
// naive single-ancilla Rz protocol, and Hadamard execution.

// cnotDriver executes one CNOT the way the paper's static baselines do
// (section 3.1 / Figure 5): the routing path is selected once, by length
// alone, between *any* ancilla neighbours of the two qubits — without
// regard to which edges the endpoints expose — and edge-rotation gates are
// then inserted as required. A path through the single ancilla between two
// adjacent qubits therefore costs 3+2=5 cycles when one endpoint edge is
// wrong and 3+3+2=8 when both are (rotations are sequential), reproducing
// the 5- and 8-cycle modes of the paper's Figure 5 histogram.
type cnotDriver struct {
	node            int
	control, target int
	find            PathFinder

	path       []lattice.Coord // chosen once, then kept (static schedule)
	rotC, rotT bool
	rotating   bool // an edge rotation op is in flight
	inFlight   bool // the CNOT op is in flight
}

func (d *cnotDriver) tick(st *sim.State) {
	if d.rotating || d.inFlight {
		return
	}
	g := st.Grid()
	if d.path == nil {
		if !st.QubitFree(d.control) || !st.QubitFree(d.target) {
			return
		}
		var cBuf, tBuf []lattice.Coord
		srcs := g.AncillaNeighbors(g.DataTile(d.control), cBuf)
		dsts := g.AncillaNeighbors(g.DataTile(d.target), tBuf)
		p := d.find(g, srcs, dsts, blockedByOps(st))
		if p == nil {
			return // congested; retry next cycle
		}
		d.path = p
		d.rotC = !adjacentAcross(g, d.control, p[0], g.ZEdgeDirs(d.control))
		d.rotT = !adjacentAcross(g, d.target, p[len(p)-1], g.XEdgeDirs(d.target))
	}
	// Rotations first, strictly sequentially (control then target).
	if d.rotC {
		if st.QubitFree(d.control) && st.TileFree(d.path[0]) {
			if _, err := st.StartEdgeRotation(d.node, d.control, d.path[0]); err == nil {
				d.rotating = true
			}
		}
		return
	}
	if d.rotT {
		last := d.path[len(d.path)-1]
		if st.QubitFree(d.target) && st.TileFree(last) {
			if _, err := st.StartEdgeRotation(d.node, d.target, last); err == nil {
				d.rotating = true
			}
		}
		return
	}
	if !st.QubitFree(d.control) || !st.QubitFree(d.target) {
		return
	}
	for _, c := range d.path {
		if !st.TileFree(c) {
			return
		}
	}
	if _, err := st.StartCNOT(d.node, d.control, d.target, d.path); err == nil {
		d.inFlight = true
	}
}

func (d *cnotDriver) opDone(st *sim.State, op *sim.Op, success bool) bool {
	switch op.Kind {
	case sim.OpEdgeRotation:
		d.rotating = false
		if op.Qubits[0] == d.control {
			d.rotC = false
		} else {
			d.rotT = false
		}
		return false
	case sim.OpCNOT:
		st.CompleteGate(d.node)
		return true
	}
	return false
}

// adjacentAcross reports whether tile t neighbours qubit q in one of dirs.
func adjacentAcross(g *lattice.Grid, q int, t lattice.Coord, dirs [2]lattice.Dir) bool {
	c := g.DataTile(q)
	return c.Step(dirs[0]) == t || c.Step(dirs[1]) == t
}

// rzDriver executes one Rz with the baselines' naive protocol (paper
// section 5.1): exactly one ancilla is reserved; |m_theta> is prepared on
// it, injected, and on failure the doubled correction angle is prepared on
// the *same* ancilla from scratch — no parallel attempts, no eager
// preparation.
type rzDriver struct {
	node  int
	q     int
	angle circuit.Angle

	prepTile lattice.Coord
	helper   lattice.Coord
	injKind  rus.InjectionKind

	phase rzPhase
}

type rzPhase uint8

const (
	rzIdle rzPhase = iota
	rzRotating
	rzPreparing
	rzPrepared
	rzInjecting
)

func (d *rzDriver) tick(st *sim.State) {
	switch d.phase {
	case rzIdle:
		d.begin(st)
	case rzPrepared:
		d.tryInject(st)
	}
}

// begin reserves an ancilla and starts preparing the current angle.
// Preference order mirrors the STAR protocol: a Z-edge neighbour with the
// 1-cycle ZZ injection, else a diagonal ancilla routed through an X-edge
// helper with the 2-cycle CNOT injection, else an edge rotation to expose
// a usable edge.
func (d *rzDriver) begin(st *sim.State) {
	g := st.Grid()
	for _, t := range g.ZEdgeAncillas(d.q) {
		if !st.TileFree(t) {
			continue
		}
		if _, err := st.StartPrep(d.node, t, d.angle); err == nil {
			d.prepTile, d.injKind = t, rus.InjectZZ
			d.phase = rzPreparing
			return
		}
	}
	if cand := cnotInjectionCandidates(st, d.q); len(cand) > 0 {
		for _, pc := range cand {
			if !st.TileFree(pc.prep) {
				continue
			}
			if _, err := st.StartPrep(d.node, pc.prep, d.angle); err == nil {
				d.prepTile, d.helper, d.injKind = pc.prep, pc.helper, rus.InjectCNOT
				d.phase = rzPreparing
				return
			}
		}
		return // candidates exist but are busy; wait
	}
	if len(g.ZEdgeAncillas(d.q)) > 0 {
		return // Z-edge tiles exist but are busy; wait
	}
	// No usable geometry in this orientation: rotate the qubit.
	if !st.QubitFree(d.q) {
		return
	}
	if helper, ok := freeAdjacentAncilla(st, d.q); ok {
		if _, err := st.StartEdgeRotation(d.node, d.q, helper); err == nil {
			d.phase = rzRotating
		}
	}
}

func (d *rzDriver) tryInject(st *sim.State) {
	if !st.QubitFree(d.q) {
		return
	}
	if d.injKind == rus.InjectCNOT && !st.TileFree(d.helper) {
		return
	}
	if _, err := st.StartInjection(d.node, d.q, d.prepTile, d.injKind, d.helper, d.angle); err == nil {
		d.phase = rzInjecting
	}
}

func (d *rzDriver) opDone(st *sim.State, op *sim.Op, success bool) bool {
	switch op.Kind {
	case sim.OpEdgeRotation:
		d.phase = rzIdle
		return false
	case sim.OpPrep:
		d.phase = rzPrepared
		d.tryInject(st)
		return false
	case sim.OpInjection:
		if success {
			st.CompleteGate(d.node)
			return true
		}
		d.angle = d.angle.Double()
		if d.angle.IsClifford() {
			// The required correction is Clifford: absorbed into the
			// frame, the gate is done.
			st.CompleteGate(d.node)
			return true
		}
		d.phase = rzIdle // re-prepare from scratch: the naive protocol
		return false
	}
	return false
}

// prepCandidate pairs a diagonal preparation tile with its X-edge routing
// helper for CNOT-type injection.
type prepCandidate struct {
	prep, helper lattice.Coord
}

// cnotInjectionCandidates enumerates (prep, helper) pairs for qubit q: the
// helper must be an ancilla on q's X edge and the prep tile an ancilla
// adjacent to the helper (diagonal to q, or further along the row/column).
func cnotInjectionCandidates(st *sim.State, q int) []prepCandidate {
	g := st.Grid()
	var out []prepCandidate
	dataTile := g.DataTile(q)
	for _, helper := range g.XEdgeAncillas(q) {
		for dir := lattice.North; dir <= lattice.West; dir++ {
			p := helper.Step(dir)
			if p == dataTile || g.Kind(p) != lattice.TileAncilla {
				continue
			}
			out = append(out, prepCandidate{prep: p, helper: helper})
		}
	}
	return out
}

// hDriver executes one Hadamard via patch deformation with one adjacent
// ancilla.
type hDriver struct {
	node     int
	q        int
	inFlight bool
}

func (d *hDriver) tick(st *sim.State) {
	if d.inFlight || !st.QubitFree(d.q) {
		return
	}
	if helper, ok := freeAdjacentAncilla(st, d.q); ok {
		if _, err := st.StartHadamard(d.node, d.q, helper); err == nil {
			d.inFlight = true
		}
	}
}

func (d *hDriver) opDone(st *sim.State, op *sim.Op, success bool) bool {
	if op.Kind == sim.OpHadamard {
		st.CompleteGate(d.node)
		return true
	}
	return false
}
