// Package sched implements the paper's two baseline schedulers: the greedy
// shortest-path scheduler (after Javadi-Abhari et al.) and the
// AutoBraid-style row/column braid scheduler (after Hua et al.). Both are
// *static, layered* schedulers, exactly as the paper evaluates them
// (section 5.1): gates execute layer by layer in ASAP order, and the next
// layer starts only after every gate of the current layer has finished —
// including all its non-deterministic RUS retries. Both use the naive Rz
// protocol: exactly one ancilla is reserved for preparing |m_theta>, with
// no parallel preparation and no eager preparation of the correction state.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/lattice"
	"repro/internal/sim"
)

// PathFinder selects a routing path for a CNOT: it returns a contiguous
// sequence of free ancilla tiles starting at one of srcs and ending at one
// of dsts, or nil if none is currently available.
type PathFinder func(g *lattice.Grid, srcs, dsts []lattice.Coord, blocked func(lattice.Coord) bool) []lattice.Coord

// NewGreedy returns the greedy shortest-path baseline: BFS over free
// ancilla tiles from the control's Z edge to the target's X edge.
func NewGreedy() sim.Scheduler {
	return &layered{
		name: "greedy",
		path: func(g *lattice.Grid, srcs, dsts []lattice.Coord, blocked func(lattice.Coord) bool) []lattice.Coord {
			return g.ShortestAncillaPath(srcs, dsts, blocked)
		},
	}
}

// NewAutoBraid returns the AutoBraid-style baseline: row/column braid
// ("L"-shaped) corridors between endpoint ancillas, trying every
// (source, destination) endpoint combination and keeping the shortest
// braid. When no braid corridor is open it falls back to BFS so the
// schedule can always make progress.
func NewAutoBraid() sim.Scheduler {
	return &layered{
		name: "autobraid",
		path: func(g *lattice.Grid, srcs, dsts []lattice.Coord, blocked func(lattice.Coord) bool) []lattice.Coord {
			var best []lattice.Coord
			for _, s := range srcs {
				if blocked(s) || g.Kind(s) != lattice.TileAncilla {
					continue
				}
				for _, d := range dsts {
					if blocked(d) || g.Kind(d) != lattice.TileAncilla {
						continue
					}
					if p := g.BraidPath(s, d, blocked); p != nil && (best == nil || len(p) < len(best)) {
						best = p
					}
				}
			}
			if best != nil {
				return best
			}
			return g.ShortestAncillaPath(srcs, dsts, blocked)
		},
	}
}

// layered is the shared static-scheduler machinery.
type layered struct {
	name string
	path PathFinder

	layer   int     // current executing layer
	left    int     // unfinished gates in the current layer
	byLayer [][]int // layer -> node IDs, sorted by descending height
	drivers map[int]driver
}

// driver advances one gate's execution state machine each cycle.
type driver interface {
	tick(st *sim.State)
	opDone(st *sim.State, op *sim.Op, success bool) (finished bool)
}

func (l *layered) Name() string { return l.name }

func (l *layered) Init(st *sim.State) error {
	dag := st.DAG()
	l.byLayer = make([][]int, dag.NumLayers())
	for n := 0; n < dag.Len(); n++ {
		l.byLayer[dag.Layer(n)] = append(l.byLayer[dag.Layer(n)], n)
	}
	for _, nodes := range l.byLayer {
		sort.Slice(nodes, func(a, b int) bool {
			ha, hb := dag.Height(nodes[a]), dag.Height(nodes[b])
			if ha != hb {
				return ha > hb // critical path first
			}
			return nodes[a] < nodes[b]
		})
	}
	l.layer = -1
	l.drivers = make(map[int]driver)
	return nil
}

func (l *layered) OnCycle(st *sim.State) {
	if l.left == 0 {
		l.layer++
		if l.layer >= len(l.byLayer) {
			return
		}
		nodes := l.byLayer[l.layer]
		l.left = len(nodes)
		for _, n := range nodes {
			l.drivers[n] = l.newDriver(st, n)
		}
	}
	if l.layer >= len(l.byLayer) {
		return
	}
	for _, n := range l.byLayer[l.layer] {
		if d, ok := l.drivers[n]; ok {
			d.tick(st)
		}
	}
}

func (l *layered) OnOpDone(st *sim.State, op *sim.Op, success bool) {
	d, ok := l.drivers[op.Node]
	if !ok {
		return
	}
	if d.opDone(st, op, success) {
		delete(l.drivers, op.Node)
		l.left--
	}
}

// newDriver builds the state machine for one gate.
func (l *layered) newDriver(st *sim.State, n int) driver {
	g := st.DAG().Gate(n)
	switch g.Kind {
	case circuit.KindCNOT:
		return &cnotDriver{node: n, control: g.Control(), target: g.Target(), find: l.path}
	case circuit.KindRz:
		return &rzDriver{node: n, q: g.Qubit(), angle: g.Angle}
	case circuit.KindH:
		return &hDriver{node: n, q: g.Qubit()}
	default:
		panic(fmt.Sprintf("sched: unschedulable gate kind %v", g.Kind))
	}
}

// blockedByOps returns the standard "tile is reserved" predicate.
func blockedByOps(st *sim.State) func(lattice.Coord) bool {
	return func(c lattice.Coord) bool { return !st.TileFree(c) }
}

// freeAdjacentAncilla returns a free ancilla tile adjacent to qubit q, or
// ok=false.
func freeAdjacentAncilla(st *sim.State, q int) (lattice.Coord, bool) {
	var buf []lattice.Coord
	buf = st.Grid().AncillaNeighbors(st.Grid().DataTile(q), buf)
	for _, c := range buf {
		if st.TileFree(c) {
			return c, true
		}
	}
	return lattice.Coord{}, false
}
