package rus

import "math"

// tmodel.go implements the Clifford+T comparison model of Appendix A.2 and
// the fidelity-capacity curves of Figure 3.

// TModel captures the cost of executing one Rz(theta) in the traditional
// Clifford+T compilation with distillation factories, using the paper's
// Appendix A.2 assumptions (one dedicated factory per data qubit, a valid
// routing path always available — both optimistic for Clifford+T).
type TModel struct {
	// PrepCycles is the T-state distillation latency in lattice-surgery
	// cycles (11 cycles for 99.9% error-detection success, per Litinski's
	// analysis cited by the paper).
	PrepCycles int
	// InjectCycles is the cost of injecting a prepared T state.
	InjectCycles int
	// TPerRz is the number of T gates per synthesized Rz rotation
	// (more than 100 per the paper, citing Ross-Selinger synthesis).
	TPerRz int
}

// DefaultTModel returns the Appendix A.2 constants.
func DefaultTModel() TModel {
	return TModel{PrepCycles: 11, InjectCycles: 2, TPerRz: 100}
}

// TGateCyclesRange returns the best/worst case cycles for one T gate:
// injection only (factory had the state ready) up to injection plus the
// full distillation latency.
func (m TModel) TGateCyclesRange() (lo, hi int) {
	return m.InjectCycles, m.InjectCycles + m.PrepCycles
}

// RzCyclesRange returns the Appendix A.2 bounds for one synthesized
// Rz(theta) in Clifford+T: TPerRz sequential T gates.
func (m TModel) RzCyclesRange() (lo, hi int) {
	tlo, thi := m.TGateCyclesRange()
	return m.TPerRz * tlo, m.TPerRz * thi
}

// ContinuousRzCycles returns the expected cycles for one Rz under the
// baseline continuous-angle policy: E[steps] * (prep + inject), with the
// paper's worst-case prep estimate of 2.2 cycles and a 2-cycle CNOT-type
// injection, giving the 8.4-cycle figure of Appendix A.2.
func ContinuousRzCycles(prepCycles, injectCycles float64) float64 {
	return 2 * (prepCycles + injectCycles)
}

// OverheadRange returns the Clifford+T : Clifford+Rz cycle overhead ratio
// bounds of Appendix A.2 (the paper reports 20-150x using 8.4 cycles for
// the continuous-angle side).
func (m TModel) OverheadRange(continuousCycles float64) (lo, hi float64) {
	l, h := m.RzCyclesRange()
	return float64(l) / continuousCycles, float64(h) / continuousCycles
}

// MaxGatesForFidelity returns the maximum number of gates executable while
// keeping program fidelity above target, given a per-gate logical error
// rate: N = ln(F) / ln(1 - ler). This generates Figure 3's solid curves;
// the dashed Clifford+T curves use an effective per-rotation error rate
// inflated by the T count per rotation.
func MaxGatesForFidelity(targetFidelity, perGateLER float64) float64 {
	if targetFidelity <= 0 || targetFidelity >= 1 || perGateLER <= 0 || perGateLER >= 1 {
		return math.Inf(1)
	}
	return math.Log(targetFidelity) / math.Log(1-perGateLER)
}

// Figure3Point evaluates both compilations at one target fidelity: the
// Clifford+Rz capacity with per-rotation error rate ler, and the Clifford+T
// capacity where each rotation costs tPerRz T gates of the same ler.
func Figure3Point(targetFidelity, ler float64, tPerRz int) (rzGates, tGates float64) {
	rz := MaxGatesForFidelity(targetFidelity, ler)
	// A synthesized rotation accumulates tPerRz opportunities to fail.
	effective := 1 - math.Pow(1-ler, float64(tPerRz))
	return rz, MaxGatesForFidelity(targetFidelity, effective)
}
