// Package rus models the repeat-until-success (RUS) protocols of the
// continuous-angle architecture: non-deterministic |m_theta> state
// preparation inside an ancilla patch (paper Appendix A.1 / Figure 16),
// the two injection strategies (Table 1), the injection retry chain with
// angle doubling (Equation 1), and the Clifford+T comparison cost model
// (Appendix A.2 / Figure 3).
//
// Preparation model. An ancilla patch of distance d embeds
// m = (d^2-1)/2 disjoint [[4,1,1,2]] subsystem codes, each of which
// attempts to prepare |m_theta> under post-selection. A full attempt is:
// first error-detection round on all subsystems in parallel (2 measurement
// rounds), then — if any subsystem accepted — expansion to the full patch
// plus a second error-detection round (d measurement rounds). Acceptance
// probabilities follow post-selection on zero detected errors:
//
//	q_sub = (1-p)^N1           per-subsystem first-round acceptance
//	P1    = 1-(1-q_sub)^m      at least one subsystem accepts
//	P2    = (1-p)^(beta*d^2)   expansion round acceptance
//
// which yields the paper's Figure 16 shapes: expected preparation *cycles*
// (at d measurement rounds per lattice-surgery cycle) fall as d grows or p
// shrinks, while expected *attempts* rise with d because the second
// detection round post-selects over ~d^2 locations.
package rus

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// Defaults for the preparation acceptance model.
const (
	// DefaultFaultLocations is the number of fault locations counted in
	// the [[4,1,1,2]] first-round post-selection.
	DefaultFaultLocations = 40
	// DefaultExpansionBeta scales the d^2 fault locations of the
	// expansion (second error-detection) round.
	DefaultExpansionBeta = 2.0
	// FirstRoundMeasurementRounds is the duration of the subsystem
	// error-detection round, in physical measurement rounds.
	FirstRoundMeasurementRounds = 2
	// InjectionSuccessProb is the intrinsic success probability of every
	// |m_theta> injection measurement (paper section 3.2).
	InjectionSuccessProb = 0.5
)

// Params configures the preparation model for one (d, p) point.
type Params struct {
	// Distance is the surface code distance d (odd, >= 3).
	Distance int
	// PhysError is the physical qubit error rate p.
	PhysError float64
	// FaultLocations overrides DefaultFaultLocations when > 0.
	FaultLocations int
	// ExpansionBeta overrides DefaultExpansionBeta when > 0.
	ExpansionBeta float64
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	if p.Distance < 3 || p.Distance%2 == 0 {
		return fmt.Errorf("rus: distance %d must be odd and >= 3", p.Distance)
	}
	if p.PhysError <= 0 || p.PhysError >= 0.5 {
		return fmt.Errorf("rus: physical error rate %v out of (0, 0.5)", p.PhysError)
	}
	return nil
}

func (p Params) faultLocations() float64 {
	if p.FaultLocations > 0 {
		return float64(p.FaultLocations)
	}
	return DefaultFaultLocations
}

func (p Params) beta() float64 {
	if p.ExpansionBeta > 0 {
		return p.ExpansionBeta
	}
	return DefaultExpansionBeta
}

// SubsystemCount returns m = (d^2-1)/2, the number of [[4,1,1,2]] codes
// embedded in one ancilla patch.
func (p Params) SubsystemCount() int {
	return (p.Distance*p.Distance - 1) / 2
}

// SubsystemAcceptance returns q_sub, the single-subsystem first-round
// acceptance probability.
func (p Params) SubsystemAcceptance() float64 {
	return math.Pow(1-p.PhysError, p.faultLocations())
}

// FirstRoundSuccess returns P1, the probability that at least one of the
// parallel subsystem preparations accepts.
func (p Params) FirstRoundSuccess() float64 {
	q := p.SubsystemAcceptance()
	return 1 - math.Pow(1-q, float64(p.SubsystemCount()))
}

// ExpansionAcceptance returns P2, the probability that the expansion and
// second error-detection round accept.
func (p Params) ExpansionAcceptance() float64 {
	d := float64(p.Distance)
	return math.Pow(1-p.PhysError, p.beta()*d*d)
}

// ExpectedAttempts returns the expected number of full preparation
// attempts (first round + expansion) until success: 1/(P1*P2).
func (p Params) ExpectedAttempts() float64 {
	return 1 / (p.FirstRoundSuccess() * p.ExpansionAcceptance())
}

// ExpectedPrepRounds returns the expected number of physical measurement
// rounds to prepare |m_theta>: first-round retries cost 2 rounds each and
// every expansion costs d rounds, so E[rounds] = (2/P1 + d) / P2.
func (p Params) ExpectedPrepRounds() float64 {
	p1 := p.FirstRoundSuccess()
	p2 := p.ExpansionAcceptance()
	return (FirstRoundMeasurementRounds/p1 + float64(p.Distance)) / p2
}

// ExpectedPrepCycles returns the expected preparation time in
// lattice-surgery cycles (d measurement rounds per cycle).
func (p Params) ExpectedPrepCycles() float64 {
	return p.ExpectedPrepRounds() / float64(p.Distance)
}

// PrepSuccessPerCycle returns the per-lattice-cycle completion probability
// used by the discrete simulator: a geometric approximation with mean
// ExpectedPrepCycles, clamped into (0, 1).
func (p Params) PrepSuccessPerCycle() float64 {
	pr := 1 / p.ExpectedPrepCycles()
	if pr > 1-1e-9 {
		pr = 1 - 1e-9
	}
	if pr < 1e-9 {
		pr = 1e-9
	}
	return pr
}

// ExpectedInjections returns the expected number of injection steps for an
// Rz(theta) gate under the angle-doubling retry chain (paper Equation 1).
// For non-dyadic angles the chain never terminates early and the
// expectation is exactly 2. For dyadic angles the k-th failure may land in
// the Clifford frame: with n doublings to Clifford the expectation is
// sum_{k=1..n} k/2^k + n/2^n < 2.
func ExpectedInjections(a circuit.Angle) float64 {
	if a.IsClifford() {
		return 0
	}
	n, ok := a.DoublingsToClifford()
	if !ok {
		return 2
	}
	e := 0.0
	for k := 1; k <= n; k++ {
		e += float64(k) / math.Pow(2, float64(k))
	}
	e += float64(n) / math.Pow(2, float64(n))
	return e
}

// InjectionKind selects between the two injection strategies of Table 1.
type InjectionKind uint8

const (
	// InjectZZ measures Z(x)Z through one ancilla adjacent to the data
	// qubit's Z edge: 1 ancilla, 1 lattice-surgery cycle.
	InjectZZ InjectionKind = iota
	// InjectCNOT performs a CNOT-based injection through the data qubit's
	// X edge: 2 ancillas, 2 lattice-surgery cycles.
	InjectCNOT
)

// String names the injection kind.
func (k InjectionKind) String() string {
	if k == InjectZZ {
		return "ZZ"
	}
	return "CNOT"
}

// InjectionSpec captures the per-strategy parameters of Table 1.
type InjectionSpec struct {
	Kind        InjectionKind
	ExposedEdge byte // 'Z' or 'X'
	Ancillas    int  // ancilla tiles required
	Cycles      int  // lattice-surgery cycles per injection
}

// SpecFor returns the Table 1 row for the given injection kind.
func SpecFor(k InjectionKind) InjectionSpec {
	if k == InjectZZ {
		return InjectionSpec{Kind: InjectZZ, ExposedEdge: 'Z', Ancillas: 1, Cycles: 1}
	}
	return InjectionSpec{Kind: InjectCNOT, ExposedEdge: 'X', Ancillas: 2, Cycles: 2}
}
