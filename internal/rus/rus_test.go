package rus

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{Distance: 7, PhysError: 1e-4}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Distance: 2, PhysError: 1e-4},
		{Distance: 4, PhysError: 1e-4},
		{Distance: 7, PhysError: 0},
		{Distance: 7, PhysError: 0.6},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v should be invalid", p)
		}
	}
}

func TestSubsystemCount(t *testing.T) {
	cases := map[int]int{3: 4, 5: 12, 7: 24, 9: 40, 11: 60, 13: 84}
	for d, want := range cases {
		p := Params{Distance: d, PhysError: 1e-4}
		if got := p.SubsystemCount(); got != want {
			t.Errorf("SubsystemCount(d=%d) = %d, want %d", d, got, want)
		}
	}
}

// Figure 16 shape: expected prep cycles decrease as d increases.
func TestPrepCyclesDecreaseWithDistance(t *testing.T) {
	prev := math.Inf(1)
	for _, d := range []int{3, 5, 7, 9, 11, 13} {
		p := Params{Distance: d, PhysError: 1e-4}
		c := p.ExpectedPrepCycles()
		if c >= prev {
			t.Errorf("prep cycles should fall with d: d=%d gives %v >= %v", d, c, prev)
		}
		prev = c
	}
}

// Figure 16 shape: expected prep cycles decrease as p decreases.
func TestPrepCyclesDecreaseWithErrorRate(t *testing.T) {
	prev := math.Inf(1)
	for _, p := range []float64{1e-3, 3e-4, 1e-4, 3e-5, 1e-5} {
		c := Params{Distance: 7, PhysError: p}.ExpectedPrepCycles()
		if c >= prev {
			t.Errorf("prep cycles should fall with p: p=%v gives %v >= %v", p, c, prev)
		}
		prev = c
	}
}

// Figure 16 shape: expected attempts increase as d increases (the second
// error-detection round post-selects over more locations).
func TestAttemptsIncreaseWithDistance(t *testing.T) {
	prev := 0.0
	for _, d := range []int{3, 5, 7, 9, 11, 13} {
		a := Params{Distance: d, PhysError: 1e-3}.ExpectedAttempts()
		if a <= prev {
			t.Errorf("attempts should rise with d: d=%d gives %v <= %v", d, a, prev)
		}
		prev = a
	}
}

// Paper: "expected attempts are close to 1 for most combinations of d and
// p" in the near-term regime.
func TestAttemptsNearOneInNearTermRegime(t *testing.T) {
	for _, d := range []int{5, 7, 9} {
		for _, p := range []float64{1e-5, 1e-4} {
			a := Params{Distance: d, PhysError: p}.ExpectedAttempts()
			if a < 1 || a > 1.2 {
				t.Errorf("d=%d p=%v: attempts = %v, want in [1, 1.2]", d, p, a)
			}
		}
	}
}

func TestPrepSuccessPerCycleBounds(t *testing.T) {
	f := func(dRaw uint8, pExp uint8) bool {
		d := 3 + 2*int(dRaw%8)
		p := math.Pow(10, -1.5-3*float64(pExp%100)/100) // p in [10^-4.5, 10^-1.5]
		pr := Params{Distance: d, PhysError: p}.PrepSuccessPerCycle()
		return pr > 0 && pr < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrepCyclesAtPaperOperatingPoint(t *testing.T) {
	// At d=7, p=1e-4 the paper says preparation almost always succeeds in
	// the first parallelized attempt; our model should give close to one
	// cycle and a per-cycle success probability over 0.7.
	p := Params{Distance: 7, PhysError: 1e-4}
	if c := p.ExpectedPrepCycles(); c < 1 || c > 2 {
		t.Errorf("ExpectedPrepCycles = %v, want in [1,2]", c)
	}
	if pr := p.PrepSuccessPerCycle(); pr < 0.5 {
		t.Errorf("PrepSuccessPerCycle = %v, want >= 0.5", pr)
	}
}

func TestExpectedInjections(t *testing.T) {
	if got := ExpectedInjections(circuit.NewAngle(1, 3)); got != 2 {
		t.Errorf("non-dyadic expectation = %v, want 2 (Equation 1)", got)
	}
	if got := ExpectedInjections(circuit.NewAngle(1, 2)); got != 0 {
		t.Errorf("Clifford angle expectation = %v, want 0", got)
	}
	// T gate: one doubling to Clifford -> E = 1/2 + 1/2 = 1.
	if got := ExpectedInjections(circuit.NewAngle(1, 4)); math.Abs(got-1) > 1e-12 {
		t.Errorf("T-gate expectation = %v, want 1", got)
	}
	// pi/8: n=2 -> 1/2 + 2/4 + 2/4 = 1.5.
	if got := ExpectedInjections(circuit.NewAngle(1, 8)); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("pi/8 expectation = %v, want 1.5", got)
	}
}

// Property: dyadic expectations are strictly below 2 and approach 2 as the
// doubling chain lengthens.
func TestExpectedInjectionsMonotoneProperty(t *testing.T) {
	prev := 0.0
	for k := 2; k <= 20; k++ {
		e := ExpectedInjections(circuit.NewAngle(1, 1<<k))
		if e <= prev || e >= 2 {
			t.Fatalf("E[inj] for pi/2^%d = %v, want increasing toward 2 (prev %v)", k, e, prev)
		}
		prev = e
	}
}

func TestInjectionSpecsTable1(t *testing.T) {
	zz := SpecFor(InjectZZ)
	if zz.ExposedEdge != 'Z' || zz.Ancillas != 1 || zz.Cycles != 1 {
		t.Errorf("ZZ spec = %+v, want edge Z, 1 ancilla, 1 cycle", zz)
	}
	cn := SpecFor(InjectCNOT)
	if cn.ExposedEdge != 'X' || cn.Ancillas != 2 || cn.Cycles != 2 {
		t.Errorf("CNOT spec = %+v, want edge X, 2 ancillas, 2 cycles", cn)
	}
}

func TestTModelAppendixA2(t *testing.T) {
	m := DefaultTModel()
	lo, hi := m.RzCyclesRange()
	if lo != 200 || hi != 1300 {
		t.Errorf("RzCyclesRange = %d-%d, want 200-1300", lo, hi)
	}
	cont := ContinuousRzCycles(2.2, 2)
	if math.Abs(cont-8.4) > 1e-9 {
		t.Errorf("ContinuousRzCycles = %v, want 8.4", cont)
	}
	olo, ohi := m.OverheadRange(cont)
	if olo < 20 || olo > 30 || ohi < 140 || ohi > 160 {
		t.Errorf("OverheadRange = %v-%v, want roughly 20-150x", olo, ohi)
	}
}

func TestFigure3RzBeatsT(t *testing.T) {
	for _, f := range []float64{0.5, 0.9, 0.99} {
		for _, ler := range []float64{1e-6, 1e-7, 1e-8} {
			rz, tg := Figure3Point(f, ler, 100)
			if rz <= tg {
				t.Errorf("F=%v ler=%v: Clifford+Rz capacity %v should exceed Clifford+T %v", f, ler, rz, tg)
			}
			ratio := rz / tg
			if ratio < 50 || ratio > 150 {
				t.Errorf("F=%v ler=%v: capacity ratio %v, want near the ~100x T-count factor", f, ler, ratio)
			}
		}
	}
}

func TestMaxGatesForFidelityEdgeCases(t *testing.T) {
	if !math.IsInf(MaxGatesForFidelity(0, 1e-6), 1) {
		t.Error("degenerate fidelity should return +Inf")
	}
	if !math.IsInf(MaxGatesForFidelity(0.9, 0), 1) {
		t.Error("zero LER should return +Inf")
	}
	// Sanity: 50% fidelity at ler=1e-6 allows ~693k gates.
	n := MaxGatesForFidelity(0.5, 1e-6)
	if n < 690000 || n > 695000 {
		t.Errorf("MaxGates(0.5, 1e-6) = %v, want ~693147", n)
	}
}
