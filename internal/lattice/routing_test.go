package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShortestAncillaPathTrivial(t *testing.T) {
	g := NewSTARGrid(4)
	a := Coord{0, 1}
	p := g.ShortestAncillaPath([]Coord{a}, []Coord{a}, nil)
	if len(p) != 1 || p[0] != a {
		t.Errorf("self path = %v, want [%v]", p, a)
	}
}

func TestShortestAncillaPathStraightLine(t *testing.T) {
	g := NewSTARGrid(4)
	// Row 0 is a full ancilla corridor: (0,0) to (0,4) is length 5.
	p := g.ShortestAncillaPath([]Coord{{0, 0}}, []Coord{{0, 4}}, nil)
	if len(p) != 5 {
		t.Fatalf("path = %v, want 5 tiles", p)
	}
	if !g.PathContiguous(p) {
		t.Error("path must be contiguous ancillas")
	}
}

func TestShortestAncillaPathAvoidsBlocked(t *testing.T) {
	g := NewSTARGrid(4)
	blocked := func(c Coord) bool { return c == Coord{0, 2} }
	p := g.ShortestAncillaPath([]Coord{{0, 0}}, []Coord{{0, 4}}, blocked)
	if p == nil {
		t.Fatal("detour should exist")
	}
	for _, c := range p {
		if blocked(c) {
			t.Fatalf("path %v passes through blocked tile", p)
		}
	}
	if len(p) <= 5 {
		t.Errorf("detour should be longer than the straight line, got %d", len(p))
	}
	if !g.PathContiguous(p) {
		t.Error("detour must be contiguous")
	}
}

func TestShortestAncillaPathNoRoute(t *testing.T) {
	g := NewSTARGrid(4)
	blockAll := func(c Coord) bool { return c.Row != 0 }
	p := g.ShortestAncillaPath([]Coord{{0, 0}}, []Coord{{4, 4}}, blockAll)
	if p != nil {
		t.Errorf("expected nil path, got %v", p)
	}
}

func TestShortestAncillaPathMultiSource(t *testing.T) {
	g := NewSTARGrid(4)
	// Sources on opposite corners; nearest one should win.
	p := g.ShortestAncillaPath([]Coord{{4, 4}, {0, 0}}, []Coord{{0, 1}}, nil)
	if p == nil || p[0] != (Coord{0, 0}) {
		t.Errorf("path = %v, want to start at (0,0)", p)
	}
	if len(p) != 2 {
		t.Errorf("path length = %d, want 2", len(p))
	}
}

func TestBraidPath(t *testing.T) {
	g := NewSTARGrid(9) // 7x7 tiles
	a, b := Coord{0, 0}, Coord{0, 6}
	p := g.BraidPath(a, b, nil)
	if p == nil {
		t.Fatal("row corridor braid should exist")
	}
	if !g.PathContiguous(p) {
		t.Error("braid path must be contiguous")
	}
	if p[0] != a || p[len(p)-1] != b {
		t.Errorf("braid endpoints wrong: %v", p)
	}
}

func TestBraidPathAroundData(t *testing.T) {
	g := NewSTARGrid(9)
	// (1,0) to (1,6): row 1 contains data tiles at odd columns, so the
	// row-first L fails; column-first goes through row? Column-first from
	// (1,0): walk column 0 to row 1 (already there), then row 1 East —
	// also blocked. BraidPath should return nil here.
	p := g.BraidPath(Coord{1, 0}, Coord{1, 6}, nil)
	if p != nil {
		t.Errorf("expected nil braid through data row, got %v", p)
	}
}

func TestBraidPathLShape(t *testing.T) {
	g := NewSTARGrid(9)
	p := g.BraidPath(Coord{0, 0}, Coord{6, 0}, nil)
	if p == nil {
		t.Fatal("column corridor braid should exist")
	}
	if len(p) != 7 {
		t.Errorf("braid length = %d, want 7", len(p))
	}
}

// Property: BFS paths are never longer than braid paths between the same
// endpoints, are contiguous, avoid blocked tiles, and start/end correctly.
func TestShortestPathProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewSTARGrid(4 + rng.Intn(12))
		// Random blocked set, not too dense.
		blockedSet := map[Coord]bool{}
		for i := 0; i < g.NumAncilla()/10; i++ {
			blockedSet[g.AncillaTile(rng.Intn(g.NumAncilla()))] = true
		}
		blocked := func(c Coord) bool { return blockedSet[c] }
		for k := 0; k < 8; k++ {
			a := g.AncillaTile(rng.Intn(g.NumAncilla()))
			b := g.AncillaTile(rng.Intn(g.NumAncilla()))
			if blockedSet[a] || blockedSet[b] {
				continue
			}
			bfs := g.ShortestAncillaPath([]Coord{a}, []Coord{b}, blocked)
			braid := g.BraidPath(a, b, blocked)
			if bfs == nil {
				if braid != nil {
					return false // BFS is complete; braid cannot beat it
				}
				continue
			}
			if bfs[0] != a || bfs[len(bfs)-1] != b || !g.PathContiguous(bfs) {
				return false
			}
			for _, c := range bfs {
				if blockedSet[c] {
					return false
				}
			}
			if braid != nil && len(braid) < len(bfs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
