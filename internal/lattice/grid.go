// Package lattice models the surface-code tile fabric the schedulers
// operate on: a grid of d-by-d logical tiles, each a data qubit, a routing
// ancilla, or a hole (removed by grid compression). The default layout is
// the STAR grid of Akahoshi et al. as used by the paper: one data qubit per
// 2x2 block, giving three ancilla tiles per data qubit at 0% compression,
// with full ancilla corridors on even rows and columns. Grid compression
// (paper section 5.3) removes two of a block's three ancillas while keeping
// the ancilla network connected, down to one ancilla per data qubit.
package lattice

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/graph"
)

// TileKind classifies a grid tile.
type TileKind uint8

const (
	// TileHole is an unusable tile (removed by compression or outside the
	// active fabric).
	TileHole TileKind = iota
	// TileData holds a program qubit.
	TileData
	// TileAncilla is a routing / state-preparation ancilla tile.
	TileAncilla
)

// Orientation records which sides of a data tile expose its Z edges. The
// paper's convention (Figure 2) is horizontal edges = Z, i.e. the Z edges
// face north and south; an edge-rotation gate toggles the orientation.
type Orientation uint8

const (
	// ZNorthSouth exposes Z edges to the north/south neighbours and X
	// edges east/west. This is the initial orientation of every qubit.
	ZNorthSouth Orientation = iota
	// ZEastWest is the rotated orientation: Z edges east/west.
	ZEastWest
)

// Toggled returns the opposite orientation.
func (o Orientation) Toggled() Orientation {
	if o == ZNorthSouth {
		return ZEastWest
	}
	return ZNorthSouth
}

// Coord addresses a tile by row and column.
type Coord struct {
	Row, Col int
}

// At is a convenience constructor for Coord.
func At(row, col int) Coord { return Coord{Row: row, Col: col} }

// Dir is one of the four cardinal directions.
type Dir uint8

// Cardinal directions, in the fixed order used by iteration helpers.
const (
	North Dir = iota
	South
	East
	West
)

// Step returns the coordinate one tile away in direction d.
func (c Coord) Step(d Dir) Coord {
	switch d {
	case North:
		return Coord{c.Row - 1, c.Col}
	case South:
		return Coord{c.Row + 1, c.Col}
	case East:
		return Coord{c.Row, c.Col + 1}
	default:
		return Coord{c.Row, c.Col - 1}
	}
}

// String renders the coordinate as (row,col).
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// Grid is the lattice fabric. It is mutable in two ways only: compression
// (ancilla removal) at setup time, and data-qubit orientation toggles during
// simulation (edge-rotation gates).
type Grid struct {
	rows, cols int
	kind       []TileKind
	qubitAt    []int // tile -> qubit ID, -1 if not a data tile
	orient     []Orientation
	dataTile   []Coord // qubit -> tile coordinate

	ancID   []int   // tile -> dense ancilla ID, -1 otherwise
	ancTile []Coord // ancilla ID -> tile coordinate

	blockRows, blockCols int
}

// NewSTARGrid builds the uncompressed STAR grid for n program qubits. The
// qubits are laid out row-major over a near-square block grid; qubit q sits
// at tile (2*(q/C)+1, 2*(q%C)+1).
func NewSTARGrid(n int) *Grid {
	if n < 1 {
		panic("lattice: need at least one qubit")
	}
	bc := 1
	for bc*bc < n {
		bc++
	}
	return newBlockGrid(n, bc)
}

// NewLinearGrid builds the single-row layout: every data qubit sits on one
// block row, giving a 3 x (2n+1) tile strip with full ancilla corridors
// above, below and between the qubits. Routing distance grows linearly with
// qubit separation, which makes this layout the adversarial design point
// for topology-sensitivity sweeps.
func NewLinearGrid(n int) *Grid {
	if n < 1 {
		panic("lattice: need at least one qubit")
	}
	return newBlockGrid(n, n)
}

// newBlockGrid lays n data qubits row-major over a block grid bc blocks
// wide: qubit q sits at tile (2*(q/bc)+1, 2*(q%bc)+1), with ancilla
// corridors on every even row and column.
func newBlockGrid(n, bc int) *Grid {
	br := (n + bc - 1) / bc
	rows, cols := 2*br+1, 2*bc+1
	g := &Grid{
		rows:      rows,
		cols:      cols,
		kind:      make([]TileKind, rows*cols),
		qubitAt:   make([]int, rows*cols),
		orient:    make([]Orientation, rows*cols),
		dataTile:  make([]Coord, n),
		blockRows: br,
		blockCols: bc,
	}
	for i := range g.kind {
		g.kind[i] = TileAncilla
		g.qubitAt[i] = -1
	}
	for q := 0; q < n; q++ {
		c := Coord{2*(q/bc) + 1, 2*(q%bc) + 1}
		i := g.idx(c)
		g.kind[i] = TileData
		g.qubitAt[i] = q
		g.dataTile[q] = c
	}
	g.reindexAncillas()
	return g
}

func (g *Grid) idx(c Coord) int { return c.Row*g.cols + c.Col }

// reindexAncillas rebuilds the dense ancilla ID space after layout changes.
func (g *Grid) reindexAncillas() {
	g.ancID = make([]int, g.rows*g.cols)
	g.ancTile = g.ancTile[:0]
	for i := range g.ancID {
		g.ancID[i] = -1
	}
	for r := 0; r < g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			i := r*g.cols + c
			if g.kind[i] == TileAncilla {
				g.ancID[i] = len(g.ancTile)
				g.ancTile = append(g.ancTile, Coord{r, c})
			}
		}
	}
}

// Rows returns the tile row count.
func (g *Grid) Rows() int { return g.rows }

// NumTiles returns the total tile count (rows * cols).
func (g *Grid) NumTiles() int { return g.rows * g.cols }

// TileIndex returns the dense row-major index of c, for flat per-tile
// arrays maintained by the simulator. The coordinate must be in bounds.
func (g *Grid) TileIndex(c Coord) int {
	if !g.InBounds(c) {
		panic(fmt.Sprintf("lattice: tile %v out of bounds", c))
	}
	return g.idx(c)
}

// Cols returns the tile column count.
func (g *Grid) Cols() int { return g.cols }

// NumQubits returns the data qubit count.
func (g *Grid) NumQubits() int { return len(g.dataTile) }

// NumAncilla returns the live ancilla tile count.
func (g *Grid) NumAncilla() int { return len(g.ancTile) }

// InBounds reports whether c is a valid tile coordinate.
func (g *Grid) InBounds(c Coord) bool {
	return c.Row >= 0 && c.Row < g.rows && c.Col >= 0 && c.Col < g.cols
}

// Kind returns the tile kind at c (TileHole outside the grid).
func (g *Grid) Kind(c Coord) TileKind {
	if !g.InBounds(c) {
		return TileHole
	}
	return g.kind[g.idx(c)]
}

// QubitAt returns the qubit ID at tile c, or -1.
func (g *Grid) QubitAt(c Coord) int {
	if !g.InBounds(c) {
		return -1
	}
	return g.qubitAt[g.idx(c)]
}

// DataTile returns the tile hosting qubit q.
func (g *Grid) DataTile(q int) Coord { return g.dataTile[q] }

// AncillaID returns the dense ancilla ID of tile c, or -1.
func (g *Grid) AncillaID(c Coord) int {
	if !g.InBounds(c) {
		return -1
	}
	return g.ancID[g.idx(c)]
}

// AncillaTile returns the coordinate of ancilla id.
func (g *Grid) AncillaTile(id int) Coord { return g.ancTile[id] }

// Orientation returns the current edge orientation of qubit q.
func (g *Grid) Orientation(q int) Orientation {
	return g.orient[g.idx(g.dataTile[q])]
}

// ToggleOrientation flips the edge orientation of qubit q; this is the
// effect of an edge-rotation gate.
func (g *Grid) ToggleOrientation(q int) {
	i := g.idx(g.dataTile[q])
	g.orient[i] = g.orient[i].Toggled()
}

// SetOrientation forces the orientation of qubit q (used by tests).
func (g *Grid) SetOrientation(q int, o Orientation) {
	g.orient[g.idx(g.dataTile[q])] = o
}

// ZEdgeDirs returns the two directions in which qubit q currently exposes
// its Z edges.
func (g *Grid) ZEdgeDirs(q int) [2]Dir {
	if g.Orientation(q) == ZNorthSouth {
		return [2]Dir{North, South}
	}
	return [2]Dir{East, West}
}

// XEdgeDirs returns the two directions in which qubit q currently exposes
// its X edges.
func (g *Grid) XEdgeDirs(q int) [2]Dir {
	if g.Orientation(q) == ZNorthSouth {
		return [2]Dir{East, West}
	}
	return [2]Dir{North, South}
}

// AncillaNeighbors appends to buf the coordinates of ancilla tiles
// 4-adjacent to c and returns the extended slice.
func (g *Grid) AncillaNeighbors(c Coord, buf []Coord) []Coord {
	for d := North; d <= West; d++ {
		n := c.Step(d)
		if g.Kind(n) == TileAncilla {
			buf = append(buf, n)
		}
	}
	return buf
}

// ZEdgeAncillas returns the ancilla tiles adjacent to qubit q across its Z
// edges (at most two).
func (g *Grid) ZEdgeAncillas(q int) []Coord {
	var out []Coord
	c := g.dataTile[q]
	for _, d := range g.ZEdgeDirs(q) {
		n := c.Step(d)
		if g.Kind(n) == TileAncilla {
			out = append(out, n)
		}
	}
	return out
}

// XEdgeAncillas returns the ancilla tiles adjacent to qubit q across its X
// edges (at most two).
func (g *Grid) XEdgeAncillas(q int) []Coord {
	var out []Coord
	c := g.dataTile[q]
	for _, d := range g.XEdgeDirs(q) {
		n := c.Step(d)
		if g.Kind(n) == TileAncilla {
			out = append(out, n)
		}
	}
	return out
}

// DiagonalAncillas returns the ancilla tiles diagonally adjacent to qubit q.
// RESCQ enqueues Rz preparations on these when they can be routed to the
// data qubit through an X-edge-adjacent routing ancilla (Figure 7).
func (g *Grid) DiagonalAncillas(q int) []Coord {
	c := g.dataTile[q]
	var out []Coord
	for _, dc := range [4]Coord{
		{c.Row - 1, c.Col - 1}, {c.Row - 1, c.Col + 1},
		{c.Row + 1, c.Col - 1}, {c.Row + 1, c.Col + 1},
	} {
		if g.Kind(dc) == TileAncilla {
			out = append(out, dc)
		}
	}
	return out
}

// AncillaGraph builds the undirected graph over ancilla IDs with one edge
// per pair of 4-adjacent ancilla tiles, all weights initialized to w0. The
// returned edge IDs are stable and can be looked up via AncillaGraphEdge.
func (g *Grid) AncillaGraph(w0 float64) *graph.Graph {
	gr := graph.NewGraph(len(g.ancTile))
	for id, c := range g.ancTile {
		// Add each edge once: only toward south and east.
		for _, d := range [2]Dir{South, East} {
			n := c.Step(d)
			if nid := g.AncillaID(n); nid >= 0 {
				gr.AddEdge(id, nid, w0)
			}
		}
	}
	return gr
}

// AncillaConnected reports whether the ancilla tiles form a single
// 4-connected component.
func (g *Grid) AncillaConnected() bool {
	if len(g.ancTile) == 0 {
		return false
	}
	seen := make([]bool, len(g.ancTile))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := g.ancTile[id]
		for d := North; d <= West; d++ {
			if nid := g.AncillaID(c.Step(d)); nid >= 0 && !seen[nid] {
				seen[nid] = true
				count++
				stack = append(stack, nid)
			}
		}
	}
	return count == len(g.ancTile)
}

// Compress removes ancilla tiles to model the paper's section 5.3 grid
// compression, which shrinks STAR blocks from three ancillas per data
// qubit (0%) toward a single ancilla per data qubit (100%). The target
// ancilla count interpolates between the full layout and one-per-data:
// tiles are removed in random order, skipping any removal that would
// disconnect the ancilla network or strand a data qubit with no adjacent
// ancilla — the paper's "while still ensuring the grid remains connected".
// Because a connected network touching every data qubit needs corridor
// tiles, very high compression targets may be unreachable; Compress then
// removes as much as connectivity allows. It returns the number of
// ancillas removed.
func (g *Grid) Compress(fraction float64, rng *rand.Rand) int {
	if fraction <= 0 {
		return 0
	}
	if fraction > 1 {
		fraction = 1
	}
	n := len(g.dataTile)
	a0 := len(g.ancTile)
	target := a0 - int(fraction*float64(a0-n)+0.5)
	removed := 0
	for len(g.ancTile) > target {
		progress := false
		order := rng.Perm(len(g.ancTile))
		tiles := make([]Coord, len(g.ancTile))
		copy(tiles, g.ancTile)
		for _, idx := range order {
			if len(g.ancTile) <= target {
				break
			}
			c := tiles[idx]
			i := g.idx(c)
			if g.kind[i] != TileAncilla {
				continue // removed earlier this pass
			}
			g.kind[i] = TileHole
			if g.compressionValid() {
				removed++
				progress = true
			} else {
				g.kind[i] = TileAncilla
			}
		}
		g.reindexAncillas()
		if !progress {
			break
		}
	}
	g.reindexAncillas()
	return removed
}

// compressionValid checks the two invariants compression must preserve:
// the ancilla network stays 4-connected and every data qubit keeps at
// least one adjacent ancilla tile.
func (g *Grid) compressionValid() bool {
	g.reindexAncillas()
	if !g.AncillaConnected() {
		return false
	}
	var buf []Coord
	for q := range g.dataTile {
		buf = g.AncillaNeighbors(g.dataTile[q], buf[:0])
		if len(buf) == 0 {
			return false
		}
	}
	return true
}

// NewGridFromTiles builds a grid from ASCII-art rows, one character per
// tile: 'D' is a data qubit, '.' an ancilla, ' ' a hole. Qubit IDs are
// assigned row-major over the 'D' tiles. All rows must have equal width.
// The resulting grid must satisfy CheckInvariants; this is the substrate of
// the "custom" layout (JSON-described arbitrary tilings).
func NewGridFromTiles(tiles []string) (*Grid, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("lattice: custom grid needs at least one row")
	}
	rows, cols := len(tiles), len(tiles[0])
	if cols == 0 {
		return nil, fmt.Errorf("lattice: custom grid rows must be non-empty")
	}
	g := &Grid{
		rows:    rows,
		cols:    cols,
		kind:    make([]TileKind, rows*cols),
		qubitAt: make([]int, rows*cols),
		orient:  make([]Orientation, rows*cols),
	}
	for r, row := range tiles {
		if len(row) != cols {
			return nil, fmt.Errorf("lattice: custom grid row %d is %d tiles wide, want %d", r, len(row), cols)
		}
		for c := 0; c < cols; c++ {
			i := r*cols + c
			g.qubitAt[i] = -1
			switch row[c] {
			case 'D':
				g.kind[i] = TileData
				g.qubitAt[i] = len(g.dataTile)
				g.dataTile = append(g.dataTile, Coord{r, c})
			case '.':
				g.kind[i] = TileAncilla
			case ' ':
				g.kind[i] = TileHole
			default:
				return nil, fmt.Errorf("lattice: custom grid row %d col %d: unknown tile %q (want 'D', '.' or ' ')", r, c, row[c])
			}
		}
	}
	if len(g.dataTile) == 0 {
		return nil, fmt.Errorf("lattice: custom grid has no data tiles")
	}
	g.reindexAncillas()
	if err := g.CheckInvariants(); err != nil {
		return nil, err
	}
	return g, nil
}

// Clone returns an independent deep copy of the grid. Layout builders are
// deterministic but can be expensive (compact re-runs the whole
// compression search, custom re-parses its spec), so callers build a
// configuration's grid once and clone it per seeded run — the clone then
// takes the run's private mutations (compression, orientation toggles).
func (g *Grid) Clone() *Grid {
	ng := *g
	ng.kind = append([]TileKind(nil), g.kind...)
	ng.qubitAt = append([]int(nil), g.qubitAt...)
	ng.orient = append([]Orientation(nil), g.orient...)
	ng.dataTile = append([]Coord(nil), g.dataTile...)
	ng.ancID = append([]int(nil), g.ancID...)
	ng.ancTile = append([]Coord(nil), g.ancTile...)
	return &ng
}

// CheckInvariants verifies the two structural properties every usable
// layout must provide: the ancilla network forms one 4-connected component
// (so any pair of qubits can be routed) and every data qubit has at least
// one 4-adjacent ancilla tile (so it can inject and route at all).
func (g *Grid) CheckInvariants() error {
	if !g.AncillaConnected() {
		return fmt.Errorf("lattice: ancilla network is not connected")
	}
	var buf []Coord
	for q := range g.dataTile {
		buf = g.AncillaNeighbors(g.dataTile[q], buf[:0])
		if len(buf) == 0 {
			return fmt.Errorf("lattice: data qubit %d at %v has no adjacent ancilla", q, g.dataTile[q])
		}
	}
	return nil
}

// AncillaPerData returns the current ancilla-to-data-qubit ratio.
func (g *Grid) AncillaPerData() float64 {
	return float64(len(g.ancTile)) / float64(len(g.dataTile))
}

// Render draws the grid as ASCII art (Figure 15-style): data tiles as 'D',
// ancillas as '.', holes as ' '.
func (g *Grid) Render() string {
	var sb strings.Builder
	for r := 0; r < g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			switch g.kind[r*g.cols+c] {
			case TileData:
				sb.WriteByte('D')
			case TileAncilla:
				sb.WriteByte('.')
			default:
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
