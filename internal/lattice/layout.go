package lattice

// layout.go is the open layout registry: named grid builders the rest of
// the system (rescq.Options, the sweep daemon, the CLIs) selects by name,
// so new tilings plug in without touching any call site. Built-ins:
//
//   - "star":    the paper's STAR grid (the default; byte-identical to
//                NewSTARGrid)
//   - "linear":  a single block row (NewLinearGrid)
//   - "compact": the STAR grid with a deterministic fraction of its
//                ancillas removed, generalizing the ad-hoc Grid.Compress
//                path into a first-class reduced-ancilla tiling
//   - "custom":  an arbitrary tiling described by a JSON spec
//
// External packages add layouts with Register; Build resolves a name (""
// means the default "star") into a fresh Grid.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Params carries layout-specific knobs as string key/values. The string
// form keeps the type wire-friendly (it is the JSON "layout_params" object
// of rescq.Options) and canonicalizable for cache keys.
type Params map[string]string

// Canonical renders the params deterministically (sorted "k=v" pairs) for
// inclusion in cache keys: equal canonical strings mean equal params.
func (p Params) Canonical() string {
	if len(p) == 0 {
		return ""
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%q=%q", k, p[k])
	}
	return sb.String()
}

// float reads a float64 param with a default for the missing key. Error
// messages are bare: Build and ValidateParams prepend the layout context.
func (p Params) float(key string, def float64) (float64, error) {
	s, ok := p[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("param %q: %v", key, err)
	}
	return v, nil
}

// int64 reads an int64 param with a default for the missing key.
func (p Params) int64(key string, def int64) (int64, error) {
	s, ok := p[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("param %q: %v", key, err)
	}
	return v, nil
}

// checkKeys rejects params outside the allowed set, so a typoed knob fails
// loudly instead of silently building the wrong fabric (and silently
// fragmenting the result cache).
func (p Params) checkKeys(allowed ...string) error {
	for k := range p {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			if len(allowed) == 0 {
				return fmt.Errorf("takes no parameters (got %q)", k)
			}
			return fmt.Errorf("unknown parameter %q (known: %s)", k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// Builder constructs a fresh grid for n data qubits under the given
// layout params. Builders must be deterministic: the same (n, params) must
// always produce an identical grid, because simulation results are cached
// on (circuit, options-including-layout) alone.
type Builder func(n int, p Params) (*Grid, error)

// Layout describes one registered layout.
type Layout struct {
	// Name is the registry key ("star", "linear", ...).
	Name string `json:"name"`
	// Description is a one-line human-readable summary (shown by the
	// daemon's capabilities endpoint and the CLIs).
	Description string `json:"description"`
	// Params documents the accepted layout params ("key: meaning").
	Params map[string]string `json:"params,omitempty"`

	build Builder
	// checkParams validates params without building (used by
	// ValidateParams so request validation can reject bad knobs before a
	// job is queued). nil means permissive: errors surface at build time.
	checkParams func(p Params) error
}

// DefaultLayout is the layout used when none is named: the paper's STAR
// grid.
const DefaultLayout = "star"

var (
	layoutMu sync.RWMutex
	layouts  = map[string]Layout{}
)

// Register adds a layout builder under the given name. It panics on an
// empty name, a nil builder, or a duplicate registration — all programmer
// errors at package-init time.
func Register(name string, b Builder) {
	RegisterLayout(Layout{Name: name, build: b})
}

// RegisterLayout is Register with a full descriptor (description and
// param documentation included).
func RegisterLayout(l Layout) {
	if l.Name == "" {
		panic("lattice: Register with empty layout name")
	}
	if l.build == nil {
		panic(fmt.Sprintf("lattice: Register(%q) with nil builder", l.Name))
	}
	layoutMu.Lock()
	defer layoutMu.Unlock()
	if _, dup := layouts[l.Name]; dup {
		panic(fmt.Sprintf("lattice: layout %q registered twice", l.Name))
	}
	layouts[l.Name] = l
}

// Known reports whether name is a registered layout ("" counts: it is the
// default).
func Known(name string) bool {
	if name == "" {
		return true
	}
	layoutMu.RLock()
	defer layoutMu.RUnlock()
	_, ok := layouts[name]
	return ok
}

// Layouts returns the registered layout names, sorted.
func Layouts() []string {
	layoutMu.RLock()
	defer layoutMu.RUnlock()
	names := make([]string, 0, len(layouts))
	for name := range layouts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Describe returns the full descriptors of every registered layout, sorted
// by name.
func Describe() []Layout {
	layoutMu.RLock()
	defer layoutMu.RUnlock()
	out := make([]Layout, 0, len(layouts))
	for _, l := range layouts {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ValidateParams checks the params against the named layout ("" means
// DefaultLayout) without building a grid, so request validation can reject
// a typoed or malformed knob up front instead of failing the queued job.
// Layouts registered without a param checker accept anything here; their
// builders still reject bad params at build time. Properties a checker
// cannot see without the qubit count (e.g. the custom layout's data-tile
// count) also remain build-time errors.
func ValidateParams(name string, p Params) error {
	if name == "" {
		name = DefaultLayout
	}
	layoutMu.RLock()
	l, ok := layouts[name]
	layoutMu.RUnlock()
	if !ok {
		return fmt.Errorf("lattice: unknown layout %q (registered: %s)",
			name, strings.Join(Layouts(), ", "))
	}
	if l.checkParams == nil {
		return nil
	}
	if err := l.checkParams(p); err != nil {
		return fmt.Errorf("lattice: layout %q: %w", name, err)
	}
	return nil
}

// Build constructs a fresh grid for n data qubits under the named layout
// ("" means DefaultLayout). Unknown names fail with an error enumerating
// the registered layouts.
func Build(name string, n int, p Params) (*Grid, error) {
	if name == "" {
		name = DefaultLayout
	}
	layoutMu.RLock()
	l, ok := layouts[name]
	layoutMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("lattice: unknown layout %q (registered: %s)",
			name, strings.Join(Layouts(), ", "))
	}
	g, err := l.build(n, p)
	if err != nil {
		// Builders that delegate to package-level constructors
		// (NewGridFromTiles, CheckInvariants) return errors already
		// carrying the package prefix; strip it so the wrapped message
		// reads "lattice: layout X: ..." exactly once.
		return nil, fmt.Errorf("lattice: layout %q: %s", name,
			strings.TrimPrefix(err.Error(), "lattice: "))
	}
	return g, nil
}

// MustBuild is Build for static configurations known to be valid (tests,
// examples); it panics on error.
func MustBuild(name string, n int, p Params) *Grid {
	g, err := Build(name, n, p)
	if err != nil {
		panic(err)
	}
	return g
}

// customSpec is the JSON document of the "custom" layout's "spec" param.
type customSpec struct {
	// Tiles is the grid as ASCII-art rows: 'D' data, '.' ancilla,
	// ' ' hole. All rows must have equal width and the data-tile count
	// must equal the circuit's qubit count.
	Tiles []string `json:"tiles"`
}

// compactParams parses and range-checks the "compact" layout's knobs.
func compactParams(p Params) (fraction float64, seed int64, err error) {
	if err := p.checkKeys("fraction", "seed"); err != nil {
		return 0, 0, err
	}
	fraction, err = p.float("fraction", 1)
	if err != nil {
		return 0, 0, err
	}
	if fraction < 0 || fraction > 1 {
		return 0, 0, fmt.Errorf("fraction %v out of [0,1]", fraction)
	}
	seed, err = p.int64("seed", 1)
	if err != nil {
		return 0, 0, err
	}
	return fraction, seed, nil
}

// customParams parses the "custom" layout's JSON spec. The tiling's shape
// and glyphs are validated here; the n-dependent properties (data-tile
// count, connectivity) are checked when the grid is built.
func customParams(p Params) (customSpec, error) {
	var spec customSpec
	if err := p.checkKeys("spec"); err != nil {
		return spec, err
	}
	raw, ok := p["spec"]
	if !ok {
		return spec, fmt.Errorf("missing required param %q", "spec")
	}
	dec := json.NewDecoder(strings.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("bad spec JSON: %v", err)
	}
	if len(spec.Tiles) == 0 {
		return spec, fmt.Errorf("spec needs at least one row")
	}
	for r, row := range spec.Tiles {
		if len(row) != len(spec.Tiles[0]) {
			return spec, fmt.Errorf("spec row %d is %d tiles wide, want %d", r, len(row), len(spec.Tiles[0]))
		}
		if i := strings.IndexFunc(row, func(c rune) bool { return c != 'D' && c != '.' && c != ' ' }); i >= 0 {
			return spec, fmt.Errorf("spec row %d col %d: unknown tile %q (want 'D', '.' or ' ')", r, i, row[i])
		}
	}
	return spec, nil
}

func init() {
	RegisterLayout(Layout{
		Name:        "star",
		Description: "STAR grid of Akahoshi et al.: one data qubit per 2x2 block on a near-square block grid, full ancilla corridors (the paper's substrate, and the default)",
		checkParams: func(p Params) error { return p.checkKeys() },
		build: func(n int, p Params) (*Grid, error) {
			if err := p.checkKeys(); err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("need at least one qubit (got %d)", n)
			}
			return NewSTARGrid(n), nil
		},
	})
	RegisterLayout(Layout{
		Name:        "linear",
		Description: "single block row: a 3x(2n+1) strip whose routing distance grows linearly with qubit separation (adversarial topology for congestion studies)",
		checkParams: func(p Params) error { return p.checkKeys() },
		build: func(n int, p Params) (*Grid, error) {
			if err := p.checkKeys(); err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("need at least one qubit (got %d)", n)
			}
			return NewLinearGrid(n), nil
		},
	})
	RegisterLayout(Layout{
		Name:        "compact",
		Description: "STAR grid with a deterministic fraction of its ancillas removed (paper section 5.3 grid compression as a first-class tiling)",
		Params: map[string]string{
			"fraction": "compression fraction in [0,1]; 1 targets one ancilla per data qubit (default 1)",
			"seed":     "removal-order seed, part of the layout identity (default 1)",
		},
		checkParams: func(p Params) error { _, _, err := compactParams(p); return err },
		build: func(n int, p Params) (*Grid, error) {
			fraction, seed, err := compactParams(p)
			if err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("need at least one qubit (got %d)", n)
			}
			g := NewSTARGrid(n)
			// The removal order is part of the layout identity, so it uses
			// its own seeded RNG — unlike Options.Compression, which
			// varies the removal per seeded run.
			g.Compress(fraction, rand.New(rand.NewSource(seed)))
			return g, nil
		},
	})
	RegisterLayout(Layout{
		Name:        "custom",
		Description: "arbitrary tiling from a JSON spec: {\"tiles\": [\"row\", ...]} with 'D' data, '.' ancilla, ' ' hole tiles",
		Params: map[string]string{
			"spec": "JSON document {\"tiles\": [...]}; required",
		},
		checkParams: func(p Params) error { _, err := customParams(p); return err },
		build: func(n int, p Params) (*Grid, error) {
			spec, err := customParams(p)
			if err != nil {
				return nil, err
			}
			g, err := NewGridFromTiles(spec.Tiles)
			if err != nil {
				return nil, err
			}
			if g.NumQubits() != n {
				return nil, fmt.Errorf("spec has %d data tiles, circuit needs %d", g.NumQubits(), n)
			}
			return g, nil
		},
	})
}
