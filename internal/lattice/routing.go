package lattice

// routing.go provides geometric path search over ancilla tiles: the BFS
// shortest path used by the greedy baseline and the row/column "braid"
// paths used by the AutoBraid-style baseline.

// ShortestAncillaPath runs a breadth-first search over ancilla tiles from
// any tile in src to any tile in dst, skipping tiles for which blocked
// returns true (busy ancillas). Both src and dst members must be ancilla
// tiles; blocked is not consulted for them if they coincide. It returns the
// tile sequence including the chosen endpoints, or nil if no path exists.
func (g *Grid) ShortestAncillaPath(src, dst []Coord, blocked func(Coord) bool) []Coord {
	if len(src) == 0 || len(dst) == 0 {
		return nil
	}
	isDst := make(map[Coord]bool, len(dst))
	for _, c := range dst {
		if g.Kind(c) == TileAncilla && (blocked == nil || !blocked(c)) {
			isDst[c] = true
		}
	}
	if len(isDst) == 0 {
		return nil
	}
	prev := make(map[Coord]Coord, 64)
	visited := make(map[Coord]bool, 64)
	var queue []Coord
	for _, c := range src {
		if g.Kind(c) != TileAncilla || (blocked != nil && blocked(c)) {
			continue
		}
		if visited[c] {
			continue
		}
		visited[c] = true
		queue = append(queue, c)
		if isDst[c] {
			return []Coord{c}
		}
	}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for d := North; d <= West; d++ {
			n := c.Step(d)
			if g.Kind(n) != TileAncilla || visited[n] {
				continue
			}
			if blocked != nil && blocked(n) {
				continue
			}
			visited[n] = true
			prev[n] = c
			if isDst[n] {
				// Reconstruct.
				var rev []Coord
				cur := n
				for {
					rev = append(rev, cur)
					p, ok := prev[cur]
					if !ok {
						break
					}
					cur = p
				}
				path := make([]Coord, len(rev))
				for i := range rev {
					path[i] = rev[len(rev)-1-i]
				}
				return path
			}
			queue = append(queue, n)
		}
	}
	return nil
}

// BraidPath builds an AutoBraid-style two-segment path between ancilla
// tiles a and b: it walks along a's row to b's column, then along b's
// column (an "L" route). Every tile on the route must be a live, unblocked
// ancilla; otherwise it tries the transposed "L" (column first), and
// returns nil if neither works. This mimics the row/column braid corridors
// of Hua et al. without global search.
func (g *Grid) BraidPath(a, b Coord, blocked func(Coord) bool) []Coord {
	if p := g.straightL(a, b, true, blocked); p != nil {
		return p
	}
	return g.straightL(a, b, false, blocked)
}

// straightL walks row-first (or column-first) from a to b.
func (g *Grid) straightL(a, b Coord, rowFirst bool, blocked func(Coord) bool) []Coord {
	var path []Coord
	ok := func(c Coord) bool {
		return g.Kind(c) == TileAncilla && (blocked == nil || !blocked(c))
	}
	step := func(from, to int) int {
		if to > from {
			return 1
		}
		return -1
	}
	cur := a
	if !ok(cur) {
		return nil
	}
	path = append(path, cur)
	legs := [2]bool{rowFirst, !rowFirst}
	for _, horizontal := range legs {
		if horizontal {
			for cur.Col != b.Col {
				cur = Coord{cur.Row, cur.Col + step(cur.Col, b.Col)}
				if !ok(cur) {
					return nil
				}
				path = append(path, cur)
			}
		} else {
			for cur.Row != b.Row {
				cur = Coord{cur.Row + step(cur.Row, b.Row), cur.Col}
				if !ok(cur) {
					return nil
				}
				path = append(path, cur)
			}
		}
	}
	return path
}

// PathContiguous reports whether path is a sequence of 4-adjacent live
// ancilla tiles (used to validate scheduler output in tests and as a
// defensive check in the engine).
func (g *Grid) PathContiguous(path []Coord) bool {
	for i, c := range path {
		if g.Kind(c) != TileAncilla {
			return false
		}
		if i > 0 {
			p := path[i-1]
			dr, dc := c.Row-p.Row, c.Col-p.Col
			if dr < 0 {
				dr = -dr
			}
			if dc < 0 {
				dc = -dc
			}
			if dr+dc != 1 {
				return false
			}
		}
	}
	return true
}
