package lattice

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateLayouts = flag.Bool("update", false, "rewrite the layout golden files under testdata/ from the current builders")

// customTestSpec is a small hand-written tiling: four qubits around a
// cross-shaped ancilla corridor with the corners punched out.
const customTestSpec = `{"tiles": [
	" .D. ",
	".....",
	"D...D",
	".....",
	" .D. "
]}`

// TestLayoutGoldens pins Grid.Render() for every built-in layout, so a
// registry or constructor refactor cannot silently move a tile. The star
// golden doubles as the byte-identity guarantee for the default path.
func TestLayoutGoldens(t *testing.T) {
	cases := []struct {
		file   string
		layout string
		n      int
		params Params
	}{
		{"layout_star_n8.golden", "star", 8, nil},
		{"layout_star_n13.golden", "star", 13, nil},
		{"layout_linear_n8.golden", "linear", 8, nil},
		{"layout_compact_n8.golden", "compact", 8, nil},
		{"layout_compact_n8_f50.golden", "compact", 8, Params{"fraction": "0.5", "seed": "3"}},
		{"layout_custom_cross.golden", "custom", 4, Params{"spec": customTestSpec}},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			g, err := Build(tc.layout, tc.n, tc.params)
			if err != nil {
				t.Fatalf("Build(%q, %d): %v", tc.layout, tc.n, err)
			}
			got := g.Render()
			path := filepath.Join("testdata", tc.file)
			if *updateLayouts {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `go test ./internal/lattice -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted:\ngot:\n%s\nwant:\n%s", tc.file, got, want)
			}
		})
	}
}

// TestStarBuilderByteIdentical asserts the registry's default path is the
// exact constructor the whole pre-registry codebase used.
func TestStarBuilderByteIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 13, 27, 100} {
		direct := NewSTARGrid(n)
		viaDefault := MustBuild("", n, nil)
		viaName := MustBuild("star", n, nil)
		for _, g := range []*Grid{viaDefault, viaName} {
			if g.Render() != direct.Render() {
				t.Fatalf("n=%d: registry star grid differs from NewSTARGrid", n)
			}
			if g.NumAncilla() != direct.NumAncilla() || g.Rows() != direct.Rows() || g.Cols() != direct.Cols() {
				t.Fatalf("n=%d: registry star grid shape differs", n)
			}
		}
	}
}

// TestLayoutInvariants property-checks every registered layout across a
// size sweep: the builder must produce n data qubits, a single 4-connected
// ancilla network, and at least one adjacent ancilla per data qubit (a
// qubit with no ancilla can neither route nor inject). The corridor
// layouts (star, linear) must additionally expose both a Z-edge and an
// X-edge ancilla for every qubit in the initial orientation.
func TestLayoutInvariants(t *testing.T) {
	sizes := []int{1, 2, 3, 5, 8, 13, 16, 27}
	params := map[string]Params{
		// custom is exercised separately: its tiling fixes the qubit count.
		"custom": nil,
	}
	for _, name := range Layouts() {
		if name == "custom" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			for _, n := range sizes {
				g, err := Build(name, n, params[name])
				if err != nil {
					t.Fatalf("Build(%q, %d): %v", name, n, err)
				}
				checkLayoutInvariants(t, name, n, g)
			}
		})
	}
	t.Run("custom", func(t *testing.T) {
		g, err := Build("custom", 4, Params{"spec": customTestSpec})
		if err != nil {
			t.Fatal(err)
		}
		checkLayoutInvariants(t, "custom", 4, g)
	})
}

func checkLayoutInvariants(t *testing.T, name string, n int, g *Grid) {
	t.Helper()
	if g.NumQubits() != n {
		t.Fatalf("%s n=%d: grid has %d qubits", name, n, g.NumQubits())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("%s n=%d: %v", name, n, err)
	}
	seen := make(map[Coord]bool, n)
	for q := 0; q < n; q++ {
		c := g.DataTile(q)
		if g.QubitAt(c) != q {
			t.Fatalf("%s n=%d: DataTile/QubitAt disagree for qubit %d", name, n, q)
		}
		if seen[c] {
			t.Fatalf("%s n=%d: two qubits share tile %v", name, n, c)
		}
		seen[c] = true
		if len(g.ZEdgeAncillas(q))+len(g.XEdgeAncillas(q)) == 0 {
			t.Fatalf("%s n=%d: qubit %d has neither Z- nor X-edge ancillas", name, n, q)
		}
		// The full-corridor layouts guarantee both edge types.
		if name == "star" || name == "linear" {
			if len(g.ZEdgeAncillas(q)) == 0 {
				t.Fatalf("%s n=%d: qubit %d has no Z-edge ancilla", name, n, q)
			}
			if len(g.XEdgeAncillas(q)) == 0 {
				t.Fatalf("%s n=%d: qubit %d has no X-edge ancilla", name, n, q)
			}
		}
	}
}

// TestLayoutRegistry covers the registry plumbing itself.
func TestLayoutRegistry(t *testing.T) {
	for _, want := range []string{"star", "linear", "compact", "custom"} {
		if !Known(want) {
			t.Errorf("built-in layout %q not registered", want)
		}
	}
	if !Known("") {
		t.Error("empty name should be known (the default)")
	}
	if Known("definitely-not-registered") {
		t.Error("unknown name reported as known")
	}

	if _, err := Build("definitely-not-registered", 4, nil); err == nil {
		t.Error("unknown layout should fail")
	} else {
		for _, want := range []string{"definitely-not-registered", "star", "linear", "compact", "custom"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q should enumerate %q", err, want)
			}
		}
	}

	// Registration guards are programmer errors: they panic.
	mustPanic(t, "empty name", func() { Register("", func(int, Params) (*Grid, error) { return nil, nil }) })
	mustPanic(t, "nil builder", func() { Register("nil-builder", nil) })
	mustPanic(t, "duplicate", func() { Register("star", func(int, Params) (*Grid, error) { return nil, nil }) })
}

// TestLayoutParamErrors asserts builders are strict about their params, so
// a typo cannot silently build the wrong fabric.
func TestLayoutParamErrors(t *testing.T) {
	cases := []struct {
		name    string
		layout  string
		n       int
		params  Params
		wantErr string
	}{
		{"star takes no params", "star", 4, Params{"fraction": "1"}, "takes no parameters"},
		{"linear takes no params", "linear", 4, Params{"x": "1"}, "takes no parameters"},
		{"compact rejects unknown keys", "compact", 4, Params{"fractoin": "1"}, "unknown parameter"},
		{"compact rejects bad fraction", "compact", 4, Params{"fraction": "pony"}, "fraction"},
		{"compact rejects out-of-range fraction", "compact", 4, Params{"fraction": "1.5"}, "out of [0,1]"},
		{"compact rejects bad seed", "compact", 4, Params{"seed": "x"}, "seed"},
		{"custom requires spec", "custom", 4, nil, "spec"},
		{"custom rejects bad JSON", "custom", 4, Params{"spec": "{"}, "bad spec JSON"},
		{"custom rejects unknown JSON fields", "custom", 4, Params{"spec": `{"tiles":["D."],"x":1}`}, "bad spec JSON"},
		{"custom qubit-count mismatch", "custom", 3, Params{"spec": customTestSpec}, "needs 3"},
		{"custom ragged rows", "custom", 1, Params{"spec": `{"tiles":["D.", "."]}`}, "wide"},
		{"custom unknown tile glyph", "custom", 1, Params{"spec": `{"tiles":["Dx"]}`}, "unknown tile"},
		{"custom disconnected ancillas", "custom", 2, Params{"spec": `{"tiles":[".D D."]}`}, "not connected"},
		{"custom stranded qubit", "custom", 2, Params{"spec": `{"tiles":["D .", "  .", "D ."]}`}, "no adjacent ancilla"},
		{"custom no data tiles", "custom", 0, Params{"spec": `{"tiles":["..."]}`}, "no data tiles"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Build(tc.layout, tc.n, tc.params)
			if err == nil {
				t.Fatalf("Build(%q, %v) succeeded, want error containing %q", tc.layout, tc.params, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestCompactDeterministic asserts the compact layout is a function of
// (n, params) alone — the property result caching relies on.
func TestCompactDeterministic(t *testing.T) {
	p := Params{"fraction": "0.75", "seed": "9"}
	a := MustBuild("compact", 16, p)
	b := MustBuild("compact", 16, p)
	if a.Render() != b.Render() {
		t.Fatal("compact layout not deterministic for equal params")
	}
	c := MustBuild("compact", 16, Params{"fraction": "0.75", "seed": "10"})
	if a.Render() == c.Render() {
		t.Fatal("different seeds produced identical compact grids (suspicious)")
	}
	if a.NumAncilla() >= MustBuild("star", 16, nil).NumAncilla() {
		t.Fatal("compact layout removed no ancillas")
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	f()
}

// TestCloneIndependence asserts a cloned grid shares no mutable state with
// its source — runs mutate clones while the configuration's base grid is
// reused.
func TestCloneIndependence(t *testing.T) {
	base := MustBuild("star", 9, nil)
	render := base.Render()
	c := base.Clone()
	if c.Render() != render {
		t.Fatal("clone renders differently")
	}
	c.ToggleOrientation(0)
	if base.Orientation(0) != ZNorthSouth {
		t.Error("clone orientation toggle leaked into the base grid")
	}
	if removed := c.Compress(1, rand.New(rand.NewSource(1))); removed == 0 {
		t.Fatal("compress removed nothing")
	}
	if base.Render() != render || base.NumAncilla() == c.NumAncilla() {
		t.Error("clone compression leaked into the base grid")
	}
	if err := base.CheckInvariants(); err != nil {
		t.Errorf("base grid corrupted: %v", err)
	}
}
