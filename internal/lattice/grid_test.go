package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSTARGridLayout(t *testing.T) {
	g := NewSTARGrid(4) // 2x2 block grid -> 5x5 tiles
	if g.Rows() != 5 || g.Cols() != 5 {
		t.Fatalf("dims = %dx%d, want 5x5", g.Rows(), g.Cols())
	}
	if g.NumQubits() != 4 {
		t.Fatalf("NumQubits = %d, want 4", g.NumQubits())
	}
	// Data qubits at odd/odd coordinates, row-major.
	want := []Coord{{1, 1}, {1, 3}, {3, 1}, {3, 3}}
	for q, c := range want {
		if g.DataTile(q) != c {
			t.Errorf("DataTile(%d) = %v, want %v", q, g.DataTile(q), c)
		}
		if g.QubitAt(c) != q {
			t.Errorf("QubitAt(%v) = %d, want %d", c, g.QubitAt(c), q)
		}
	}
	if g.NumAncilla() != 25-4 {
		t.Errorf("NumAncilla = %d, want 21", g.NumAncilla())
	}
	if !g.AncillaConnected() {
		t.Error("fresh STAR grid must have a connected ancilla network")
	}
}

func TestSTARGridRatioApproachesThree(t *testing.T) {
	// For large filled grids the ancilla:data ratio tends to 3 (plus
	// boundary), per the STAR architecture.
	g := NewSTARGrid(400) // 20x20 blocks
	ratio := g.AncillaPerData()
	if ratio < 3.0 || ratio > 3.5 {
		t.Errorf("ancilla per data = %v, want ~3", ratio)
	}
}

func TestEdgeDirections(t *testing.T) {
	g := NewSTARGrid(4)
	if g.Orientation(0) != ZNorthSouth {
		t.Fatal("initial orientation must be ZNorthSouth")
	}
	z := g.ZEdgeDirs(0)
	if z != [2]Dir{North, South} {
		t.Errorf("ZEdgeDirs = %v, want [North South]", z)
	}
	x := g.XEdgeDirs(0)
	if x != [2]Dir{East, West} {
		t.Errorf("XEdgeDirs = %v, want [East West]", x)
	}
	g.ToggleOrientation(0)
	if g.Orientation(0) != ZEastWest {
		t.Error("toggle should flip orientation")
	}
	if g.ZEdgeDirs(0) != [2]Dir{East, West} {
		t.Error("rotated qubit should expose Z edges east/west")
	}
	g.ToggleOrientation(0)
	if g.Orientation(0) != ZNorthSouth {
		t.Error("double toggle should restore orientation")
	}
}

func TestEdgeAncillas(t *testing.T) {
	g := NewSTARGrid(4)
	// Qubit 0 at (1,1): Z neighbours at (0,1) and (2,1).
	za := g.ZEdgeAncillas(0)
	if len(za) != 2 {
		t.Fatalf("ZEdgeAncillas = %v, want 2 tiles", za)
	}
	xa := g.XEdgeAncillas(0)
	if len(xa) != 2 {
		t.Fatalf("XEdgeAncillas = %v, want 2 tiles", xa)
	}
	diag := g.DiagonalAncillas(0)
	if len(diag) != 4 {
		t.Fatalf("DiagonalAncillas = %v, want 4 tiles", diag)
	}
}

func TestAncillaIDsDense(t *testing.T) {
	g := NewSTARGrid(9)
	seen := make(map[int]bool)
	for r := 0; r < g.Rows(); r++ {
		for c := 0; c < g.Cols(); c++ {
			co := Coord{r, c}
			id := g.AncillaID(co)
			if g.Kind(co) == TileAncilla {
				if id < 0 || id >= g.NumAncilla() {
					t.Fatalf("ancilla at %v has bad ID %d", co, id)
				}
				if seen[id] {
					t.Fatalf("duplicate ancilla ID %d", id)
				}
				seen[id] = true
				if g.AncillaTile(id) != co {
					t.Fatalf("AncillaTile(%d) = %v, want %v", id, g.AncillaTile(id), co)
				}
			} else if id != -1 {
				t.Fatalf("non-ancilla %v has ID %d", co, id)
			}
		}
	}
	if len(seen) != g.NumAncilla() {
		t.Errorf("found %d ancillas, want %d", len(seen), g.NumAncilla())
	}
}

func TestAncillaGraphStructure(t *testing.T) {
	g := NewSTARGrid(4)
	gr := g.AncillaGraph(0)
	if gr.NumVertices() != g.NumAncilla() {
		t.Fatalf("graph vertices = %d, want %d", gr.NumVertices(), g.NumAncilla())
	}
	if !gr.Connected() {
		t.Error("ancilla graph of a fresh grid must be connected")
	}
	// Each edge must join 4-adjacent ancilla tiles.
	for i := 0; i < gr.NumEdges(); i++ {
		e := gr.Edge(i)
		a, b := g.AncillaTile(e.U), g.AncillaTile(e.V)
		dr, dc := a.Row-b.Row, a.Col-b.Col
		if dr < 0 {
			dr = -dr
		}
		if dc < 0 {
			dc = -dc
		}
		if dr+dc != 1 {
			t.Fatalf("edge %v-%v joins non-adjacent tiles", a, b)
		}
	}
}

func TestCompressZero(t *testing.T) {
	g := NewSTARGrid(8)
	n := g.NumAncilla()
	if got := g.Compress(0, rand.New(rand.NewSource(1))); got != 0 {
		t.Errorf("Compress(0) = %d, want 0", got)
	}
	if g.NumAncilla() != n {
		t.Error("Compress(0) must not remove ancillas")
	}
}

func TestCompressFull(t *testing.T) {
	g := NewSTARGrid(8)
	before := g.NumAncilla()
	done := g.Compress(1.0, rand.New(rand.NewSource(7)))
	if done == 0 {
		t.Fatal("expected some blocks to compress")
	}
	if g.NumAncilla() >= before {
		t.Error("compression should remove ancillas")
	}
	if !g.AncillaConnected() {
		t.Error("compression must preserve ancilla connectivity")
	}
	var buf []Coord
	for q := 0; q < g.NumQubits(); q++ {
		buf = g.AncillaNeighbors(g.DataTile(q), buf[:0])
		if len(buf) == 0 {
			t.Errorf("qubit %d lost all adjacent ancillas", q)
		}
	}
}

func TestCompressMonotone(t *testing.T) {
	counts := make([]int, 0, 5)
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		g := NewSTARGrid(16)
		g.Compress(f, rand.New(rand.NewSource(3)))
		counts = append(counts, g.NumAncilla())
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Errorf("ancilla count should not increase with compression: %v", counts)
		}
	}
	if counts[len(counts)-1] >= counts[0] {
		t.Errorf("full compression should remove ancillas: %v", counts)
	}
}

// Property: any compression level preserves connectivity, data adjacency,
// and never touches data tiles.
func TestCompressInvariantsProperty(t *testing.T) {
	f := func(seed int64, frac8 uint8, nq uint8) bool {
		n := 2 + int(nq)%30
		frac := float64(frac8%101) / 100
		g := NewSTARGrid(n)
		g.Compress(frac, rand.New(rand.NewSource(seed)))
		if !g.AncillaConnected() {
			return false
		}
		var buf []Coord
		for q := 0; q < g.NumQubits(); q++ {
			if g.Kind(g.DataTile(q)) != TileData {
				return false
			}
			buf = g.AncillaNeighbors(g.DataTile(q), buf[:0])
			if len(buf) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRender(t *testing.T) {
	g := NewSTARGrid(2)
	s := g.Render()
	if s == "" {
		t.Fatal("empty render")
	}
	countD := 0
	for _, ch := range s {
		if ch == 'D' {
			countD++
		}
	}
	if countD != 2 {
		t.Errorf("render shows %d data tiles, want 2", countD)
	}
}
