package qbench

import (
	"testing"

	"repro/internal/circuit"
)

// exactFamilies lists benchmarks whose generated Rz/CNOT counts must equal
// Table 3 exactly. Multiplier is excluded (documented few-percent match).
func exactFamilies() map[string]bool {
	out := map[string]bool{}
	for _, s := range registry {
		out[s.Name] = true
	}
	out["multiplier_n45"] = false
	out["multiplier_n75"] = false
	return out
}

func TestAllBenchmarksValidate(t *testing.T) {
	for _, s := range All() {
		c := s.Circuit()
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if c.NumQubits != s.Qubits {
			t.Errorf("%s: qubits = %d, want %d", s.Name, c.NumQubits, s.Qubits)
		}
		if c.Name != s.Name {
			t.Errorf("circuit name %q != spec name %q", c.Name, s.Name)
		}
	}
}

func TestTable3CountsExact(t *testing.T) {
	exact := exactFamilies()
	for _, s := range All() {
		st := s.Circuit().Stats()
		if exact[s.Name] {
			if st.RzTotal != s.PaperRz {
				t.Errorf("%s: Rz = %d, want %d (Table 3)", s.Name, st.RzTotal, s.PaperRz)
			}
			if st.CNOT != s.PaperCNOT {
				t.Errorf("%s: CNOT = %d, want %d (Table 3)", s.Name, st.CNOT, s.PaperCNOT)
			}
		} else {
			// Multiplier: within 10% on both axes.
			if !within(st.RzTotal, s.PaperRz, 0.10) {
				t.Errorf("%s: Rz = %d, want within 10%% of %d", s.Name, st.RzTotal, s.PaperRz)
			}
			if !within(st.CNOT, s.PaperCNOT, 0.10) {
				t.Errorf("%s: CNOT = %d, want within 10%% of %d", s.Name, st.CNOT, s.PaperCNOT)
			}
		}
	}
}

func within(got, want int, tol float64) bool {
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	return d <= tol*float64(want)
}

func TestRzToCNOTRatioSpread(t *testing.T) {
	// Paper section 5.1: benchmarks span Rz:CNOT ratios from ~0.4 to ~6.5.
	lo, hi := 100.0, 0.0
	for _, s := range All() {
		st := s.Circuit().Stats()
		r := float64(st.RzTotal) / float64(st.CNOT)
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if lo > 0.5 {
		t.Errorf("minimum Rz:CNOT ratio = %v, want <= 0.5 (QAOAFermionicSwap)", lo)
	}
	if hi < 6 {
		t.Errorf("maximum Rz:CNOT ratio = %v, want >= 6 (dnn)", hi)
	}
}

func TestSequentialVsParallelStructure(t *testing.T) {
	// Paper: wstate and qft are largely sequential, ising largely parallel.
	depthFrac := func(name string) float64 {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		c := s.Circuit()
		d := circuit.NewDAG(c)
		return float64(d.NumLayers()) / float64(d.Len())
	}
	wstate := depthFrac("wstate_n27")
	ising := depthFrac("ising_n34")
	if wstate < 0.5 {
		t.Errorf("wstate depth fraction = %v, want >= 0.5 (sequential)", wstate)
	}
	if ising > 0.25 {
		t.Errorf("ising depth fraction = %v, want <= 0.25 (parallel)", ising)
	}
	if wstate <= ising {
		t.Error("wstate should be more sequential than ising")
	}
}

func TestQubitRange(t *testing.T) {
	// Table 3 spans 13 to 420 qubits.
	lo, hi := 1<<30, 0
	for _, s := range All() {
		if s.Qubits < lo {
			lo = s.Qubits
		}
		if s.Qubits > hi {
			hi = s.Qubits
		}
	}
	if lo != 13 || hi != 420 {
		t.Errorf("qubit range = [%d,%d], want [13,420]", lo, hi)
	}
}

func TestByNameAndNames(t *testing.T) {
	if len(Names()) != 23 {
		t.Errorf("Table 3 has 23 benchmark rows, got %d", len(Names()))
	}
	for _, n := range Names() {
		if _, ok := ByName(n); !ok {
			t.Errorf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName should fail for unknown names")
	}
}

func TestRepresentativeSet(t *testing.T) {
	for _, n := range Representative() {
		if _, ok := ByName(n); !ok {
			t.Errorf("representative benchmark %q not registered", n)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range []string{"gcm_n13", "dnn_n16", "qft_n18", "vqe_n13"} {
		s, _ := ByName(name)
		a := circuit.Format(s.Circuit())
		b := circuit.Format(s.Circuit())
		if a != b {
			t.Errorf("%s: generator is not deterministic", name)
		}
	}
}

func TestNonCliffordAnglesAreNonDyadic(t *testing.T) {
	// The variational families must use generic angles whose RUS chain
	// never terminates early (excluding the deliberate dyadic families:
	// qft's CP ladders and multiplier's T gates).
	for _, name := range []string{"dnn_n16", "wstate_n27", "qugan_n39", "vqe_n13"} {
		s, _ := ByName(name)
		for _, g := range s.Circuit().Gates {
			if g.Kind != circuit.KindRz || g.Angle.IsClifford() {
				continue
			}
			if _, dyadic := g.Angle.DoublingsToClifford(); dyadic {
				t.Errorf("%s: angle %v is dyadic", name, g.Angle)
				break
			}
		}
	}
}

func TestQFTUsesApproximationCutoff(t *testing.T) {
	c := QFT(29)
	// No controlled phase beyond distance 17: every CNOT's operands are
	// at most 17 apart.
	for _, g := range c.Gates {
		if g.Kind != circuit.KindCNOT {
			continue
		}
		d := g.Qubits[0] - g.Qubits[1]
		if d < 0 {
			d = -d
		}
		if d > QFTApproxDegree {
			t.Fatalf("CNOT distance %d exceeds approximation degree", d)
		}
	}
}

func TestSmallSetNonEmpty(t *testing.T) {
	small := SmallSet()
	if len(small) < 5 {
		t.Errorf("SmallSet = %v, want at least 5 entries", small)
	}
	for _, n := range small {
		s, ok := ByName(n)
		if !ok || s.Qubits > 30 {
			t.Errorf("SmallSet entry %q invalid", n)
		}
	}
}
