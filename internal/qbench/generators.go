package qbench

import (
	"repro/internal/circuit"
)

// QFTApproxDegree is the maximum controlled-phase distance in the QFT
// circuits. The value 17 is reverse-engineered from Table 3: it reproduces
// the paper's CNOT counts exactly for qft_n18/29/63/160 (the QASMBench
// circuits are approximate QFTs that drop rotations below pi/2^18).
const QFTApproxDegree = 17

// Ising builds the QASMBench-style transverse-field Ising chain: one
// Trotter step of nearest-neighbour ZZ couplings plus longitudinal and
// transverse field rotations. Gate counts match Table 3 exactly:
// CNOT = 2(n-1), Rz = ceil(2.5n) - 2. The circuit is wide and parallel —
// the paper calls ising "largely parallel".
func Ising(n int) *circuit.Circuit {
	c := circuit.New(benchName("ising", n), n)
	ag := &angleGen{k: int64(n)}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	// Brick pattern (even bonds then odd bonds) keeps the step parallel.
	for parity := 0; parity < 2; parity++ {
		for i := parity; i < n-1; i += 2 {
			c.CNOT(i, i+1)
			c.Rz(i+1, ag.next())
			c.CNOT(i, i+1)
		}
	}
	for q := 0; q < n; q++ {
		c.Rz(q, ag.next())
	}
	extra := (5*n+1)/2 - 2 - (2*n - 1)
	for q := 0; q < extra; q++ {
		c.Rz(2*q%n, ag.next())
	}
	return mustMatch(c, n)
}

// QFT builds the approximate quantum Fourier transform with controlled
// phases CP(pi/2^k) decomposed into 2 CNOTs and 2 dyadic Rz rotations,
// truncated at distance QFTApproxDegree, plus one residual phase rotation
// per non-final qubit. Rz and CNOT counts match Table 3 exactly for all
// four qft benchmarks. Dependencies chain through every qubit — "largely
// sequential" per the paper.
func QFT(n int) *circuit.Circuit {
	c := circuit.New(benchName("qft", n), n)
	for i := 0; i < n; i++ {
		c.H(i)
		last := i + QFTApproxDegree
		if last > n-1 {
			last = n - 1
		}
		for j := i + 1; j <= last; j++ {
			k := int64(j - i + 1) // CP(pi/2^(j-i)) -> rz(pi/2^k)
			c.CNOT(j, i)
			c.Rz(i, circuit.NewAngle(-1, 1<<k))
			c.CNOT(j, i)
			c.Rz(j, circuit.NewAngle(1, 1<<k))
		}
	}
	for i := 0; i < n-1; i++ {
		c.Rz(i, circuit.NewAngle(1, 1<<uint(min(2+i%16, 18))))
	}
	return mustMatch(c, n)
}

// Multiplier builds a k-bit shift-and-add multiplier over n = 3k qubits
// (registers a, b and the product accumulator) as a dense network of
// Toffoli gates decomposed into the standard 6-CNOT/7-T construction, with
// a carry-propagation pass after each partial-product row. Counts land
// within a few percent of Table 3 (the only family without an exact match;
// see DESIGN.md).
func Multiplier(n int) *circuit.Circuit {
	k := n / 3
	if 3*k != n {
		panic("qbench: multiplier qubit count must be divisible by 3")
	}
	c := circuit.New(benchName("multiplier", n), n)
	a := func(i int) int { return i }
	b := func(i int) int { return k + i }
	p := func(i int) int { return 2*k + i%k }
	carry := (k + 1) / 2
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			toffoli(c, a(i), b(j), p(i+j))
		}
		for j := 0; j < carry; j++ {
			toffoli(c, p(j), p(j+1), p(j+2))
		}
		for j := 0; j < k-1; j++ {
			c.CNOT(p(j), p(j+1))
		}
	}
	return mustMatch(c, n)
}

// toffoli emits the standard Clifford+T decomposition: 6 CNOTs, 7 T/Tdg
// rotations (dyadic rz(pi/4)), 2 Hadamards.
func toffoli(c *circuit.Circuit, a, b, t int) {
	c.H(t)
	c.CNOT(b, t)
	c.Tdg(t)
	c.CNOT(a, t)
	c.T(t)
	c.CNOT(b, t)
	c.Tdg(t)
	c.CNOT(a, t)
	c.T(b)
	c.T(t)
	c.H(t)
	c.CNOT(a, b)
	c.T(a)
	c.Tdg(b)
	c.CNOT(a, b)
}

// QuGAN builds the quantum GAN variational ansatz: four entangling layers
// (forward and backward CNOT chains bracketed by rotation columns) over the
// generator register, followed by readout rotations on the discriminator
// pair. Counts match Table 3 exactly: Rz = 11n - 18, CNOT = 8n - 16.
func QuGAN(n int) *circuit.Circuit {
	c := circuit.New(benchName("qugan", n), n)
	ag := &angleGen{k: int64(2 * n)}
	w := n - 2 // generator register width
	for layer := 0; layer < 4; layer++ {
		for q := 0; q < w; q++ {
			c.Rz(q, ag.next())
		}
		for q := 0; q < w-1; q++ {
			c.CNOT(q, q+1)
		}
		c.CNOT(w-1, w)
		for q := 0; q < w; q++ {
			c.Rz(q, ag.next())
		}
		for q := w - 2; q >= 0; q-- {
			c.CNOT(q+1, q)
		}
		c.CNOT(w, w+1)
	}
	for col := 0; col < 3; col++ {
		for q := 0; q < w; q++ {
			c.Rz(q, ag.next())
		}
	}
	c.Rz(n-2, ag.next())
	c.Rz(n-2, ag.next())
	c.Rz(n-1, ag.next())
	c.Rz(n-1, ag.next())
	return mustMatch(c, n)
}

// GCM builds the generator-coordinate-method chemistry circuit: 31 Trotter
// sweeps of alternating XX and YY pair couplings (YY terms carry the
// rz(+-pi/2) basis changes Qiskit emits for S/Sdg, which Table 3 counts)
// plus a single-qubit rotation column per sweep and a short XX tail.
// Rz and CNOT counts match Table 3 exactly for n=13: 1528 and 762.
func GCM(n int) *circuit.Circuit {
	c := circuit.New(benchName("gcm", n), n)
	ag := &angleGen{k: int64(3 * n)}
	xxTerm := func(a, b int) {
		c.H(a)
		c.H(b)
		c.CNOT(a, b)
		c.Rz(b, ag.next())
		c.CNOT(a, b)
		c.H(a)
		c.H(b)
	}
	yyTerm := func(a, b int) {
		c.Rz(a, circuit.NewAngle(-1, 2))
		c.Rz(b, circuit.NewAngle(-1, 2))
		c.H(a)
		c.H(b)
		c.CNOT(a, b)
		c.Rz(b, ag.next())
		c.CNOT(a, b)
		c.H(a)
		c.H(b)
		c.Rz(a, circuit.NewAngle(1, 2))
		c.Rz(b, circuit.NewAngle(1, 2))
	}
	for sweep := 0; sweep < 31; sweep++ {
		for q := 0; q < n; q++ {
			c.Rz(q, ag.next())
		}
		for i := 0; i < n-1; i++ {
			if i%2 == 0 {
				xxTerm(i, i+1)
			} else {
				yyTerm(i, i+1)
			}
		}
	}
	for i := 0; i < 9; i++ {
		xxTerm(i, i+1)
	}
	return mustMatch(c, n)
}

// DNN builds the quantum deep-neural-network ansatz: an angle-encoding
// column, 24 dense layers (each a u3-style rotation triple on every qubit,
// a brick of nearest CNOT pairs, a second rotation triple and the shifted
// brick), and two readout rotation columns. This is the suite's most
// Rz-dense benchmark (~6.3 Rz per CNOT). Counts match Table 3 exactly for
// n=16: Rz 2432, CNOT 384.
func DNN(n int) *circuit.Circuit {
	c := circuit.New(benchName("dnn", n), n)
	ag := &angleGen{k: int64(5 * n)}
	u3col := func() {
		for q := 0; q < n; q++ {
			c.Rz(q, ag.next())
			c.H(q)
			c.Rz(q, ag.next())
			c.H(q)
			c.Rz(q, ag.next())
		}
	}
	for q := 0; q < n; q++ {
		c.Rz(q, ag.next())
		c.Rz(q, ag.next())
	}
	for layer := 0; layer < 24; layer++ {
		u3col()
		for i := 0; i < n/2; i++ {
			c.CNOT(2*i, 2*i+1)
		}
		u3col()
		for i := 0; i < n/2; i++ {
			c.CNOT(2*i+1, (2*i+2)%n)
		}
	}
	u3col()
	u3col()
	return mustMatch(c, n)
}

// WState builds the sequential W-state preparation chain: one controlled
// rotation block per link, each 6 Rz + 2 CNOT (the compiled cu3 gadget),
// strictly chained — the paper calls wstate "largely sequential". Counts
// match Table 3 exactly: Rz = 6(n-1), CNOT = 2(n-1).
func WState(n int) *circuit.Circuit {
	c := circuit.New(benchName("wstate", n), n)
	ag := &angleGen{k: int64(7 * n)}
	c.X(0)
	for i := 0; i < n-1; i++ {
		t := i + 1
		c.Rz(t, ag.next())
		c.Rz(t, ag.next())
		c.H(t)
		c.Rz(t, ag.next())
		c.CNOT(i, t)
		c.Rz(t, ag.next())
		c.H(t)
		c.Rz(t, ag.next())
		c.CNOT(i, t)
		c.Rz(t, ag.next())
	}
	return mustMatch(c, n)
}

// HamiltonianSimulation builds the SupermarQ TFIM Trotter step: one ZZ
// coupling per chain bond and one field rotation per qubit. Counts match
// Table 3 exactly: Rz = 2n - 1, CNOT = 2(n-1). Maximally parallel.
func HamiltonianSimulation(n int) *circuit.Circuit {
	c := circuit.New(benchName("hamsim", n), n)
	ag := &angleGen{k: int64(11 * n)}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for i := 0; i < n-1; i++ {
		c.CNOT(i, i+1)
		c.Rz(i+1, ag.next())
		c.CNOT(i, i+1)
	}
	for q := 0; q < n; q++ {
		c.Rz(q, ag.next())
	}
	return mustMatch(c, n)
}

// QAOAFermionicSwap builds one QAOA round on a fully connected problem
// graph routed through a fermionic swap network: n brick layers of
// adjacent swap+ZZ gadgets (3 CNOTs + 1 Rz each) cover all n(n-1)/2 pairs
// exactly once, followed by the transverse mixer. Counts match Table 3
// exactly for n=15: Rz 120, CNOT 315.
func QAOAFermionicSwap(n int) *circuit.Circuit {
	c := circuit.New(benchName("qaoafswap", n), n)
	ag := &angleGen{k: int64(13 * n)}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for layer := 0; layer < n; layer++ {
		for i := layer % 2; i+1 < n; i += 2 {
			c.CNOT(i, i+1)
			c.Rz(i+1, ag.next())
			c.CNOT(i+1, i)
			c.CNOT(i, i+1)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
		c.Rz(q, ag.next())
		c.H(q)
	}
	return mustMatch(c, n)
}

// QAOAVanilla builds one QAOA round on the fully connected graph with
// direct long-range ZZ terms (2 CNOTs + 1 Rz per pair) and the transverse
// mixer. Counts match Table 3 exactly for n=15: Rz 120, CNOT 210.
func QAOAVanilla(n int) *circuit.Circuit {
	c := circuit.New(benchName("qaoa", n), n)
	ag := &angleGen{k: int64(17 * n)}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.CNOT(i, j)
			c.Rz(j, ag.next())
			c.CNOT(i, j)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
		c.Rz(q, ag.next())
		c.H(q)
	}
	return mustMatch(c, n)
}

// VQE builds the SupermarQ hardware-efficient VQE ansatz: a u3 rotation
// column, one entangling CNOT chain, and a second rotation column. Counts
// match Table 3 exactly for n=13: Rz 78, CNOT 12.
func VQE(n int) *circuit.Circuit {
	c := circuit.New(benchName("vqe", n), n)
	ag := &angleGen{k: int64(19 * n)}
	u3col := func() {
		for q := 0; q < n; q++ {
			c.Rz(q, ag.next())
			c.H(q)
			c.Rz(q, ag.next())
			c.H(q)
			c.Rz(q, ag.next())
		}
	}
	u3col()
	for i := 0; i < n-1; i++ {
		c.CNOT(i, i+1)
	}
	u3col()
	return mustMatch(c, n)
}

func benchName(family string, n int) string {
	return family + "_n" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
