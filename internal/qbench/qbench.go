// Package qbench generates the benchmark circuits of the paper's Table 3 in
// the Clifford+Rz basis. The originals are QASMBench (medium/large) and
// SupermarQ circuits compiled by Qiskit into {rz, h, x, cx}; since those
// files are external data, this package synthesizes the same circuit
// families from their mathematical definitions, matched to the paper's
// qubit counts and — for every family except multiplier, where the match is
// within a few percent — the exact Rz and CNOT counts of Table 3.
//
// Structural fidelity is what the schedulers observe and is preserved:
// ising and the SupermarQ Hamiltonian-simulation circuits are wide and
// parallel, qft and wstate are chains of long sequential dependencies, dnn
// has the suite's highest Rz:CNOT ratio (~6), QAOAFermionicSwap is
// CNOT-dominated (ratio ~0.4), and the multiplier is a dense Toffoli
// network. Note that Table 3's Rz column counts every rz emitted by the
// compiler, including Clifford rotations such as rz(pi/2): those are
// likewise emitted here and likewise free at runtime (Pauli/Clifford
// frame), exactly as in the artifact.
package qbench

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
)

// Spec describes one Table 3 benchmark.
type Spec struct {
	// Name is the canonical benchmark name, e.g. "ising_n34".
	Name string
	// Suite is "large", "medium" or "supermarq" (Table 3 grouping).
	Suite string
	// Qubits is the paper's qubit count.
	Qubits int
	// PaperRz and PaperCNOT are the gate counts reported in Table 3.
	PaperRz, PaperCNOT int
	// Build generates the circuit.
	Build func() *circuit.Circuit
}

// Circuit builds the benchmark circuit.
func (s Spec) Circuit() *circuit.Circuit { return s.Build() }

// All returns every Table 3 benchmark in the paper's order.
func All() []Spec { return append([]Spec(nil), registry...) }

// Names returns all benchmark names in Table 3 order.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}

// ByName looks up one benchmark.
func ByName(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Representative returns the three benchmarks the paper's sensitivity
// studies single out (section 5.2): dnn_n16 (highest Rz density), gcm_n13
// (~2 Rz per CNOT) and qft_n160 (balanced, and the most qubits among the
// representative set).
func Representative() []string {
	return []string{"dnn_n16", "gcm_n13", "qft_n160"}
}

// SmallSet returns a subset of benchmarks with modest qubit counts, used by
// quick regression tests and the quickstart example.
func SmallSet() []string {
	var names []string
	for _, s := range registry {
		if s.Qubits <= 30 {
			names = append(names, s.Name)
		}
	}
	sort.Strings(names)
	return names
}

var registry = []Spec{
	{"ising_n34", "large", 34, 83, 66, func() *circuit.Circuit { return Ising(34) }},
	{"ising_n42", "large", 42, 103, 82, func() *circuit.Circuit { return Ising(42) }},
	{"ising_n66", "large", 66, 163, 130, func() *circuit.Circuit { return Ising(66) }},
	{"ising_n98", "large", 98, 243, 194, func() *circuit.Circuit { return Ising(98) }},
	{"ising_n420", "large", 420, 1048, 838, func() *circuit.Circuit { return Ising(420) }},
	{"multiplier_n45", "large", 45, 2237, 2286, func() *circuit.Circuit { return Multiplier(45) }},
	{"multiplier_n75", "large", 75, 6384, 6510, func() *circuit.Circuit { return Multiplier(75) }},
	{"qft_n29", "large", 29, 708, 680, func() *circuit.Circuit { return QFT(29) }},
	{"qft_n63", "large", 63, 1898, 1836, func() *circuit.Circuit { return QFT(63) }},
	{"qft_n160", "large", 160, 5293, 5134, func() *circuit.Circuit { return QFT(160) }},
	{"qugan_n39", "large", 39, 411, 296, func() *circuit.Circuit { return QuGAN(39) }},
	{"qugan_n71", "large", 71, 763, 552, func() *circuit.Circuit { return QuGAN(71) }},
	{"qugan_n111", "large", 111, 1203, 872, func() *circuit.Circuit { return QuGAN(111) }},
	{"gcm_n13", "medium", 13, 1528, 762, func() *circuit.Circuit { return GCM(13) }},
	{"dnn_n16", "medium", 16, 2432, 384, func() *circuit.Circuit { return DNN(16) }},
	{"qft_n18", "medium", 18, 323, 306, func() *circuit.Circuit { return QFT(18) }},
	{"wstate_n27", "medium", 27, 156, 52, func() *circuit.Circuit { return WState(27) }},
	{"hamsim_n25", "supermarq", 25, 49, 48, func() *circuit.Circuit { return HamiltonianSimulation(25) }},
	{"hamsim_n50", "supermarq", 50, 99, 98, func() *circuit.Circuit { return HamiltonianSimulation(50) }},
	{"hamsim_n75", "supermarq", 75, 149, 148, func() *circuit.Circuit { return HamiltonianSimulation(75) }},
	{"qaoafswap_n15", "supermarq", 15, 120, 315, func() *circuit.Circuit { return QAOAFermionicSwap(15) }},
	{"qaoa_n15", "supermarq", 15, 120, 210, func() *circuit.Circuit { return QAOAVanilla(15) }},
	{"vqe_n13", "supermarq", 13, 78, 12, func() *circuit.Circuit { return VQE(13) }},
}

// angleGen deterministically produces non-Clifford, non-dyadic rotation
// angles (denominator keeps an odd factor, so the RUS doubling chain never
// terminates early — the generic continuous-rotation case). Each benchmark
// uses its own sequence so circuits are reproducible.
type angleGen struct{ k int64 }

func (a *angleGen) next() circuit.Angle {
	for {
		a.k++
		num := 2*a.k + 1 // odd
		if num%3 == 0 {
			continue // keep gcd(num, 96) free of the factor 3
		}
		return circuit.NewAngle(num, 96)
	}
}

// mustMatch panics if a generator's circuit disagrees with the requested
// qubit count — a guard for the registry entries.
func mustMatch(c *circuit.Circuit, qubits int) *circuit.Circuit {
	if c.NumQubits != qubits {
		panic(fmt.Sprintf("qbench: %s has %d qubits, want %d", c.Name, c.NumQubits, qubits))
	}
	return c
}
