package config

import (
	"strings"
	"testing"
	"time"
)

func TestDaemonDefaults(t *testing.T) {
	d := Daemon{}.WithDefaults()
	if d.Addr != ":8321" || d.QueueDepth != 256 || d.CacheEntries != 1024 || d.DrainTimeoutSec != 30 {
		t.Fatalf("defaults = %+v", d)
	}
	if d.Workers != 0 || d.ParallelRuns {
		t.Fatalf("workers/parallel defaults = %+v", d)
	}
	if d.MaxQueueDepth != 4096 {
		t.Fatalf("max_queue_depth default = %d, want 4096", d.MaxQueueDepth)
	}
	if d.StoreDir != "" {
		t.Fatalf("store_dir default = %q, want disabled", d.StoreDir)
	}
	if d.DrainTimeout() != 30*time.Second {
		t.Fatalf("drain timeout = %v", d.DrainTimeout())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
}

func TestDaemonCacheDisabled(t *testing.T) {
	// 0 is "unset" (re-defaulted), negative is the explicit off switch.
	d := Daemon{CacheEntries: -1}.WithDefaults()
	if d.CacheEntries != -1 || !d.CacheDisabled() {
		t.Fatalf("negative cache_entries should survive defaults and disable: %+v", d)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("disabled cache should validate: %v", err)
	}
	if (Daemon{}).WithDefaults().CacheDisabled() {
		t.Fatal("default config should have the cache enabled")
	}
}

func TestDaemonAnalytics(t *testing.T) {
	// Unset means on; an explicit false survives both defaults and a
	// config-file round trip.
	if !(Daemon{}).WithDefaults().AnalyticsEnabled() {
		t.Fatal("analytics should default to enabled")
	}
	d, err := ReadDaemon(strings.NewReader(`{"analytics":false,"analytics_max_groups":128}`))
	if err != nil {
		t.Fatal(err)
	}
	if d.AnalyticsEnabled() || d.AnalyticsMaxGroups != 128 {
		t.Fatalf("analytics config lost in parsing: enabled=%t cap=%d", d.AnalyticsEnabled(), d.AnalyticsMaxGroups)
	}
	on := true
	if !(Daemon{Analytics: &on}).AnalyticsEnabled() {
		t.Fatal("explicit true should enable analytics")
	}
}

func TestDaemonValidate(t *testing.T) {
	cases := []struct {
		name string
		d    Daemon
		want string
	}{
		{"negative workers", Daemon{Workers: -1, QueueDepth: 1}, "workers"},
		{"zero queue", Daemon{QueueDepth: 0}, "queue_depth"},
		{"negative drain", Daemon{QueueDepth: 1, DrainTimeoutSec: -1}, "drain_timeout_sec"},
		{"negative analytics cap", Daemon{QueueDepth: 1, AnalyticsMaxGroups: -1}, "analytics_max_groups"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.d.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

func TestDaemonStoreAndAdmission(t *testing.T) {
	d, err := ReadDaemon(strings.NewReader(`{"store_dir":"/tmp/rescqd-wal","max_queue_depth":64}`))
	if err != nil {
		t.Fatal(err)
	}
	if d.StoreDir != "/tmp/rescqd-wal" || d.MaxQueueDepth != 64 {
		t.Fatalf("parsed durability fields = %+v", d)
	}
	// Negative disables admission control and must survive defaulting.
	d = Daemon{MaxQueueDepth: -1}.WithDefaults()
	if d.MaxQueueDepth != -1 {
		t.Fatalf("negative max_queue_depth re-defaulted: %+v", d)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("disabled admission control should validate: %v", err)
	}
}

func TestReadDaemon(t *testing.T) {
	d, err := ReadDaemon(strings.NewReader(`{"addr":":9000","workers":4,"cache_entries":16}`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Addr != ":9000" || d.Workers != 4 || d.CacheEntries != 16 || d.QueueDepth != 256 {
		t.Fatalf("parsed daemon = %+v", d)
	}
	if _, err := ReadDaemon(strings.NewReader(`{"nope":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ReadDaemon(strings.NewReader(`{"workers":-2}`)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestDaemonLayout(t *testing.T) {
	d, err := ReadDaemon(strings.NewReader(`{"layout": "linear"}`))
	if err != nil {
		t.Fatalf("ReadDaemon: %v", err)
	}
	if d.Layout != "linear" {
		t.Errorf("layout = %q, want linear", d.Layout)
	}
	if err := (Daemon{}.WithDefaults()).Validate(); err != nil {
		t.Errorf("unset layout should validate (engine default): %v", err)
	}
	_, err = ReadDaemon(strings.NewReader(`{"layout": "moebius"}`))
	if err == nil {
		t.Fatal("unknown layout accepted")
	}
	for _, want := range []string{"moebius", "star", "linear", "compact", "custom"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should enumerate %q", err, want)
		}
	}
}
