package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/lattice"
	"repro/internal/schedq"
)

// Daemon configures the rescqd serving daemon (see internal/service). A
// zero value is usable: every field has a production-sensible default.
type Daemon struct {
	// Addr is the listen address (default ":8321").
	Addr string `json:"addr,omitempty"`
	// Workers bounds the job worker pool; 0 means one worker per CPU.
	Workers int `json:"workers,omitempty"`
	// QueueDepth bounds the pending-job queue; excess submissions are
	// rejected with 503 (default 256).
	QueueDepth int `json:"queue_depth,omitempty"`
	// CacheEntries bounds the LRU result cache; 0 means the default 1024,
	// negative disables caching (0 cannot mean "disabled" — it is JSON's
	// and the zero-value's "unset").
	CacheEntries int `json:"cache_entries,omitempty"`
	// DrainTimeoutSec bounds graceful shutdown: in-flight jobs get this
	// many seconds to finish before the daemon exits anyway (default 30).
	DrainTimeoutSec int `json:"drain_timeout_sec,omitempty"`
	// ParallelRuns makes each simulation spread its seeded runs over the
	// worker pool's CPUs (rescq.Options.Parallel) unless the request says
	// otherwise (default false: one job, one core, many jobs in flight).
	ParallelRuns bool `json:"parallel_runs,omitempty"`
	// Layout is the default lattice layout for requests that do not name
	// one ("" means the engine default, "star"). Must be a registered
	// layout name; see GET /v1/capabilities for the live list.
	Layout string `json:"layout,omitempty"`
	// StoreDir enables the durability layer: the directory holding the
	// append-only job + result WAL (see internal/store). Jobs and
	// per-configuration results are checkpointed as they complete; on
	// restart the daemon replays the WAL, re-seeds the result cache and
	// re-enqueues interrupted jobs. Empty disables persistence.
	StoreDir string `json:"store_dir,omitempty"`
	// WALCodec selects the on-disk record format for a fresh WAL: "binary"
	// (the default — length-prefixed CRC-protected frames) or "json" (the
	// debug/compat path, one JSON object per line). Existing logs are read
	// in whichever format they were written and migrated to this codec at
	// the first compaction.
	WALCodec string `json:"wal_codec,omitempty"`
	// MaxQueueDepth bounds admission control: the total backlog of
	// admitted-but-unfinished run configurations across all queued and
	// running jobs (a sweep counts one per configuration). Submissions
	// beyond it are shed with 429 + Retry-After instead of queueing
	// unboundedly. 0 means the default 4096; negative disables shedding.
	MaxQueueDepth int `json:"max_queue_depth,omitempty"`
	// Cluster configures coordinator/worker scale-out (see Cluster). The
	// zero value is standalone: single-node, byte-identical to pre-cluster
	// behavior.
	Cluster Cluster `json:"cluster"`
	// Failpoints arms a fault-injection schedule at startup (see
	// internal/fault for the grammar, e.g. "wal.write=err(disk full)").
	// Empty — the default — keeps every failpoint dormant; the
	// RESCQ_FAILPOINTS environment variable overrides this field.
	Failpoints string `json:"failpoints,omitempty"`
	// FaultSeed seeds the schedule's probabilistic triggers (default 1), so
	// a chaos run reproduces exactly from its printed seed.
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// Analytics toggles the sweep-analytics aggregate store behind GET
	// /v1/analytics/* (see internal/analytics): maintained incrementally
	// from the persisted result stream, snapshotted into the WAL, rebuilt
	// at boot. Unset/true enables; false disables — which also keeps the
	// WAL free of analytics state records, the knob to reach for when a
	// log must stay readable by pre-analytics daemon builds.
	Analytics *bool `json:"analytics,omitempty"`
	// AnalyticsMaxGroups caps the number of distinct aggregate cells (one
	// per complete sweep-axis tuple); results for configurations beyond
	// the cap are counted as dropped, not aggregated. 0 means the default
	// 8192 (analytics.DefaultMaxGroups).
	AnalyticsMaxGroups int `json:"analytics_max_groups,omitempty"`
	// QueuePolicy selects the job scheduler (see internal/schedq): "wfq"
	// (the default — weighted fair queueing across tenants) or "fifo"
	// (global arrival order, the pre-tenant behavior).
	QueuePolicy string `json:"queue_policy,omitempty"`
	// Tenants configures per-tenant weights and quotas for the scheduler.
	// The zero value is fully permissive (weight 1, no quotas).
	Tenants Tenants `json:"tenants"`
}

// WithDefaults fills unset daemon fields.
func (d Daemon) WithDefaults() Daemon {
	if d.Addr == "" {
		d.Addr = ":8321"
	}
	if d.QueueDepth == 0 {
		d.QueueDepth = 256
	}
	if d.CacheEntries == 0 {
		d.CacheEntries = 1024
	}
	if d.DrainTimeoutSec == 0 {
		d.DrainTimeoutSec = 30
	}
	if d.MaxQueueDepth == 0 {
		d.MaxQueueDepth = 4096
	}
	if d.QueuePolicy == "" {
		d.QueuePolicy = schedq.WFQ
	}
	d.Cluster = d.Cluster.WithDefaults()
	d.Tenants = d.Tenants.WithDefaults()
	return d
}

// DrainTimeout returns the drain budget as a duration.
func (d Daemon) DrainTimeout() time.Duration {
	return time.Duration(d.DrainTimeoutSec) * time.Second
}

// CacheDisabled reports whether the result cache is turned off
// (CacheEntries < 0).
func (d Daemon) CacheDisabled() bool { return d.CacheEntries < 0 }

// AnalyticsEnabled reports whether the sweep-analytics store is on
// (unset means on).
func (d Daemon) AnalyticsEnabled() bool { return d.Analytics == nil || *d.Analytics }

// Validate reports daemon configuration errors.
func (d Daemon) Validate() error {
	if d.Workers < 0 {
		return fmt.Errorf("config: workers must be non-negative")
	}
	if d.QueueDepth < 1 {
		return fmt.Errorf("config: queue_depth must be positive")
	}
	if d.DrainTimeoutSec < 0 {
		return fmt.Errorf("config: drain_timeout_sec must be non-negative")
	}
	if !lattice.Known(d.Layout) {
		return fmt.Errorf("config: unknown layout %q (registered: %s)",
			d.Layout, strings.Join(lattice.Layouts(), ", "))
	}
	switch d.WALCodec {
	case "", "binary", "json":
	default:
		return fmt.Errorf("config: unknown wal_codec %q (want \"binary\" or \"json\")", d.WALCodec)
	}
	if d.Failpoints != "" {
		if err := fault.Validate(d.Failpoints); err != nil {
			return fmt.Errorf("config: failpoints: %w", err)
		}
	}
	if d.AnalyticsMaxGroups < 0 {
		return fmt.Errorf("config: analytics_max_groups must be non-negative")
	}
	if !schedq.Known(d.QueuePolicy) {
		return fmt.Errorf("config: unknown queue_policy %q (registered: %s)",
			d.QueuePolicy, strings.Join(schedq.Names(), ", "))
	}
	if err := d.Tenants.Validate(); err != nil {
		return err
	}
	return d.Cluster.Validate()
}

// LoadDaemon reads and validates a daemon config file.
func LoadDaemon(path string) (Daemon, error) {
	f, err := os.Open(path)
	if err != nil {
		return Daemon{}, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return ReadDaemon(f)
}

// ReadDaemon parses a daemon config from r and validates it.
func ReadDaemon(r io.Reader) (Daemon, error) {
	var d Daemon
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return Daemon{}, fmt.Errorf("config: parse: %w", err)
	}
	d = d.WithDefaults()
	return d, d.Validate()
}
