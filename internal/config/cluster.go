package config

import (
	"fmt"
	"net/url"
	"time"

	"repro/internal/cluster"
)

// Daemon modes: how a rescqd process participates in a cluster.
const (
	// ModeStandalone is the single-node default: the daemon executes every
	// configuration on its own worker pool. An empty mode means standalone.
	ModeStandalone = "standalone"
	// ModeCoordinator keeps the public v1 API, WAL, admission control and
	// result cache, but shards sweep configurations into batches dispatched
	// to registered workers (falling back to the local pool when none are
	// registered).
	ModeCoordinator = "coordinator"
	// ModeWorker serves POST /internal/v1/execute for a coordinator and
	// keeps itself registered there via heartbeats.
	ModeWorker = "worker"
)

// Cluster configures the coordinator/worker scale-out of a rescqd daemon
// (see internal/cluster). The zero value means standalone — today's
// single-node behavior, byte-identical.
type Cluster struct {
	// Mode is "", "standalone", "coordinator" or "worker".
	Mode string `json:"mode,omitempty"`
	// CoordinatorURL is the coordinator's base URL; required in worker
	// mode, rejected otherwise.
	CoordinatorURL string `json:"coordinator_url,omitempty"`
	// AdvertiseURL is the base URL the coordinator should dial back for
	// this worker's execute endpoint. Empty lets cmd/rescqd derive
	// http://127.0.0.1:<bound port>. Worker mode only.
	AdvertiseURL string `json:"advertise_url,omitempty"`
	// HeartbeatIntervalMS is the worker registration/heartbeat cadence and
	// the coordinator's expiry-sweep cadence (default 2000).
	HeartbeatIntervalMS int `json:"heartbeat_interval_ms,omitempty"`
	// LivenessExpiryMS is how long a worker may miss heartbeats before the
	// coordinator expires it and re-dispatches its batches (default 3x the
	// heartbeat interval). Must exceed the heartbeat interval.
	LivenessExpiryMS int `json:"liveness_expiry_ms,omitempty"`
	// BatchSize is the hard cap on sweep configurations per dispatch batch
	// (default 8). The adaptive sizer never exceeds it.
	BatchSize int `json:"batch_size,omitempty"`
	// BatchTargetMS is how much estimated work (per-config p50 latency x
	// batch length, in milliseconds) the coordinator aims to pack into one
	// dispatch batch (default 500). Lower values favour load balance on
	// skewed workloads; higher values favour per-batch overhead
	// amortization. BatchSize stays the hard per-batch cap.
	BatchTargetMS int `json:"batch_target_ms,omitempty"`
	// DialTimeoutMS bounds connection establishment to a cluster peer, so
	// an unreachable or blackholed node fails fast instead of hanging a
	// dispatcher (default 10000).
	DialTimeoutMS int `json:"dial_timeout_ms,omitempty"`
	// IdleConnTimeoutMS is how long pooled intra-cluster connections stay
	// open unused (default 90000).
	IdleConnTimeoutMS int `json:"idle_conn_timeout_ms,omitempty"`
	// RetryBackoffMS is the base of the exponential backoff (with jitter)
	// between dispatch retries of one batch (default 100).
	RetryBackoffMS int `json:"retry_backoff_ms,omitempty"`
	// DispatchRetries is the retry budget: how many times one batch chases
	// failing workers before the coordinator runs it locally (default 4).
	DispatchRetries int `json:"dispatch_retries,omitempty"`
	// BreakerFailures is the per-worker circuit-breaker threshold: this
	// many consecutive dispatch failures open the breaker, taking the
	// worker out of rotation until a half-open probe succeeds (default 3).
	BreakerFailures int `json:"breaker_failures,omitempty"`
	// BreakerCooldownMS is how long an open breaker waits before allowing
	// a half-open probe batch (default 5000).
	BreakerCooldownMS int `json:"breaker_cooldown_ms,omitempty"`
	// HeartbeatJitter spreads each worker's heartbeat interval by up to
	// this fraction in either direction, so a restarted coordinator is not
	// hit by a synchronized re-register thundering herd (default 0.2,
	// max 0.5; negative disables — exact cadence, test use only).
	HeartbeatJitter float64 `json:"heartbeat_jitter,omitempty"`
	// WireCodec selects the coordinator<->worker dispatch encoding:
	// "binary" (the default — compact frames, gzip-compressed when that
	// pays) or "json" (the debug path, and what old workers are spoken to
	// in regardless of this knob). On a worker, "json" stops advertising
	// the binary codec, forcing coordinators onto the JSON path.
	WireCodec string `json:"wire_codec,omitempty"`
}

// Clustered reports whether the daemon participates in a cluster (either
// side); standalone and empty modes are not clustered.
func (c Cluster) Clustered() bool {
	return c.Mode == ModeCoordinator || c.Mode == ModeWorker
}

// WithDefaults fills unset cluster fields. Defaults are only materialized
// for cluster modes, so a standalone daemon's config stays zero (and
// byte-identical to pre-cluster configs).
func (c Cluster) WithDefaults() Cluster {
	if !c.Clustered() {
		return c
	}
	if c.HeartbeatIntervalMS == 0 {
		c.HeartbeatIntervalMS = 2000
	}
	if c.LivenessExpiryMS == 0 {
		c.LivenessExpiryMS = 3 * c.HeartbeatIntervalMS
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.BatchTargetMS == 0 {
		c.BatchTargetMS = 500
	}
	if c.DialTimeoutMS == 0 {
		c.DialTimeoutMS = 10_000
	}
	if c.IdleConnTimeoutMS == 0 {
		c.IdleConnTimeoutMS = 90_000
	}
	if c.RetryBackoffMS == 0 {
		c.RetryBackoffMS = 100
	}
	if c.DispatchRetries == 0 {
		c.DispatchRetries = 4
	}
	if c.BreakerFailures == 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldownMS == 0 {
		c.BreakerCooldownMS = 5000
	}
	if c.HeartbeatJitter == 0 {
		c.HeartbeatJitter = 0.2
	}
	if c.HeartbeatJitter < 0 {
		c.HeartbeatJitter = 0 // explicit opt-out: exact cadence
	}
	if c.WireCodec == "" {
		c.WireCodec = cluster.CodecBinary
	}
	return c
}

// BatchTarget returns the per-batch work target as a duration.
func (c Cluster) BatchTarget() time.Duration {
	return time.Duration(c.BatchTargetMS) * time.Millisecond
}

// HeartbeatInterval returns the heartbeat cadence as a duration.
func (c Cluster) HeartbeatInterval() time.Duration {
	return time.Duration(c.HeartbeatIntervalMS) * time.Millisecond
}

// LivenessExpiry returns the liveness window as a duration.
func (c Cluster) LivenessExpiry() time.Duration {
	return time.Duration(c.LivenessExpiryMS) * time.Millisecond
}

// DialTimeout returns the peer-dial bound as a duration.
func (c Cluster) DialTimeout() time.Duration {
	return time.Duration(c.DialTimeoutMS) * time.Millisecond
}

// IdleConnTimeout returns the pooled-connection idle bound as a duration.
func (c Cluster) IdleConnTimeout() time.Duration {
	return time.Duration(c.IdleConnTimeoutMS) * time.Millisecond
}

// RetryBackoff returns the dispatch-retry backoff base as a duration.
func (c Cluster) RetryBackoff() time.Duration {
	return time.Duration(c.RetryBackoffMS) * time.Millisecond
}

// BreakerCooldown returns the open-breaker cooldown as a duration.
func (c Cluster) BreakerCooldown() time.Duration {
	return time.Duration(c.BreakerCooldownMS) * time.Millisecond
}

// peerURL validates a cluster peer URL: absolute http(s) with a host.
func peerURL(field, raw string) error {
	u, err := url.Parse(raw)
	if err != nil {
		return fmt.Errorf("config: %s %q: %w", field, raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("config: %s %q must be an absolute http(s) URL", field, raw)
	}
	if u.Host == "" {
		return fmt.Errorf("config: %s %q has no host", field, raw)
	}
	return nil
}

// Validate reports cluster configuration errors.
func (c Cluster) Validate() error {
	switch c.Mode {
	case "", ModeStandalone:
		// Cluster-only knobs set without a cluster mode are a config
		// mistake (a worker that silently never registers), not a default
		// to be ignored.
		if c.CoordinatorURL != "" {
			return fmt.Errorf("config: coordinator_url is set but mode is standalone")
		}
		if c.AdvertiseURL != "" {
			return fmt.Errorf("config: advertise_url is set but mode is standalone")
		}
		return nil
	case ModeCoordinator:
		if c.CoordinatorURL != "" {
			return fmt.Errorf("config: coordinator_url is set but mode is coordinator (workers dial in; the coordinator has no upstream)")
		}
		if c.AdvertiseURL != "" {
			return fmt.Errorf("config: advertise_url is worker-only")
		}
	case ModeWorker:
		if c.CoordinatorURL == "" {
			return fmt.Errorf("config: worker mode requires coordinator_url")
		}
		if err := peerURL("coordinator_url", c.CoordinatorURL); err != nil {
			return err
		}
		if c.AdvertiseURL != "" {
			if err := peerURL("advertise_url", c.AdvertiseURL); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("config: unknown mode %q (want %s, %s or %s)",
			c.Mode, ModeStandalone, ModeCoordinator, ModeWorker)
	}
	// Cluster modes from here on.
	if c.HeartbeatIntervalMS <= 0 {
		return fmt.Errorf("config: heartbeat_interval_ms must be positive, got %d", c.HeartbeatIntervalMS)
	}
	if c.LivenessExpiryMS <= c.HeartbeatIntervalMS {
		return fmt.Errorf("config: liveness_expiry_ms (%d) must exceed heartbeat_interval_ms (%d)",
			c.LivenessExpiryMS, c.HeartbeatIntervalMS)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("config: batch_size must be positive, got %d", c.BatchSize)
	}
	if c.BatchSize > cluster.MaxBatchConfigs {
		// Workers hard-reject oversized batches at their decode boundary;
		// letting one through would make the coordinator misread every
		// healthy worker's 400 as a death and churn the registry.
		return fmt.Errorf("config: batch_size %d exceeds the per-batch limit %d",
			c.BatchSize, cluster.MaxBatchConfigs)
	}
	if c.BatchTargetMS < 0 {
		return fmt.Errorf("config: batch_target_ms must be non-negative, got %d", c.BatchTargetMS)
	}
	// Resilience knobs: zero means "the WithDefaults value applies" (the
	// daemon flow fills defaults before validating), so only explicitly
	// negative settings are configuration errors here.
	if c.DialTimeoutMS < 0 {
		return fmt.Errorf("config: dial_timeout_ms must be non-negative, got %d", c.DialTimeoutMS)
	}
	if c.IdleConnTimeoutMS < 0 {
		return fmt.Errorf("config: idle_conn_timeout_ms must be non-negative, got %d", c.IdleConnTimeoutMS)
	}
	if c.RetryBackoffMS < 0 {
		return fmt.Errorf("config: retry_backoff_ms must be non-negative, got %d", c.RetryBackoffMS)
	}
	if c.DispatchRetries < 0 {
		return fmt.Errorf("config: dispatch_retries must be non-negative, got %d", c.DispatchRetries)
	}
	if c.BreakerFailures < 0 {
		return fmt.Errorf("config: breaker_failures must be non-negative, got %d", c.BreakerFailures)
	}
	if c.BreakerCooldownMS < 0 {
		return fmt.Errorf("config: breaker_cooldown_ms must be non-negative, got %d", c.BreakerCooldownMS)
	}
	if c.HeartbeatJitter > 0.5 {
		return fmt.Errorf("config: heartbeat_jitter must be at most 0.5, got %g", c.HeartbeatJitter)
	}
	switch c.WireCodec {
	case "", cluster.CodecBinary, cluster.CodecJSON:
	default:
		return fmt.Errorf("config: unknown wire_codec %q (want %q or %q)",
			c.WireCodec, cluster.CodecBinary, cluster.CodecJSON)
	}
	return nil
}
