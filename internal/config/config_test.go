package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadMinimal(t *testing.T) {
	c, err := Read(strings.NewReader(`{"benchmark":"gcm_n13"}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Scheduler != "rescq" || c.Distance != 7 || c.PhysError != 1e-4 ||
		c.K != 25 || c.TauMST != 100 || c.NumberOfRuns != 10 || c.Seed != 1 {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestReadFull(t *testing.T) {
	text := `{
		"benchmark": "dnn_n16",
		"scheduler": "autobraid",
		"distance": 9,
		"phys_error": 0.001,
		"k": 100,
		"tau_mst": 50,
		"compression": 0.5,
		"number_of_runs": 4,
		"seed": 42
	}`
	c, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if c.Distance != 9 || c.K != 100 || c.Compression != 0.5 || c.Seed != 42 {
		t.Errorf("parsed config wrong: %+v", c)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"no target":       `{}`,
		"both targets":    `{"benchmark":"x","circuit_file":"y"}`,
		"bad scheduler":   `{"benchmark":"x","scheduler":"magic"}`,
		"even distance":   `{"benchmark":"x","distance":8}`,
		"bad error rate":  `{"benchmark":"x","phys_error":0.7}`,
		"bad compression": `{"benchmark":"x","compression":2}`,
		"negative runs":   `{"benchmark":"x","number_of_runs":-1}`,
		"unknown field":   `{"benchmark":"x","wat":1}`,
		"not json":        `benchmark: x`,
	}
	for name, text := range cases {
		if _, err := Read(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected error for %s", name, text)
		}
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.json")
	if err := os.WriteFile(path, []byte(`{"benchmark":"vqe_n13","scheduler":"greedy"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Benchmark != "vqe_n13" || c.Scheduler != "greedy" {
		t.Errorf("loaded config wrong: %+v", c)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestReadLayout(t *testing.T) {
	c, err := Read(strings.NewReader(`{
		"benchmark": "gcm_n13",
		"layout": "compact",
		"layout_params": {"fraction": "0.5", "seed": "3"}
	}`))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if c.Layout != "compact" || c.LayoutParams["fraction"] != "0.5" || c.LayoutParams["seed"] != "3" {
		t.Errorf("layout fields not threaded: %+v", c)
	}

	_, err = Read(strings.NewReader(`{"benchmark": "gcm_n13", "layout": "moebius"}`))
	if err == nil {
		t.Fatal("unknown layout accepted")
	}
	for _, want := range []string{"moebius", "star", "linear", "compact", "custom"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should enumerate %q", err, want)
		}
	}
}

func TestUnknownSchedulerEnumeratesRegistry(t *testing.T) {
	_, err := Read(strings.NewReader(`{"benchmark": "gcm_n13", "scheduler": "magic"}`))
	if err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	for _, want := range []string{"magic", "greedy", "autobraid", "rescq"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should enumerate %q", err, want)
		}
	}
}
