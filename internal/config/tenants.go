package config

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/schedq"
)

// TenantPolicy is one tenant's scheduling policy in the daemon config.
// Weight 0 inherits the section default; quota fields 0 mean unlimited
// for this tenant (an explicit entry spells out its own bounds — the
// section defaults apply only to tenants without an entry).
type TenantPolicy struct {
	// Weight is the tenant's relative share of the worker pool under
	// contention (weighted fair queueing); 0 inherits DefaultWeight.
	Weight int `json:"weight,omitempty"`
	// MaxQueuedConfigs bounds the tenant's admitted-but-unfinished run
	// configurations; submissions beyond it are shed with 429 and a
	// Retry-After computed from this tenant's own backlog. 0 = unlimited.
	MaxQueuedConfigs int `json:"max_queued_configs,omitempty"`
	// MaxInflightJobs bounds the tenant's open (queued + running) jobs.
	// 0 = unlimited.
	MaxInflightJobs int `json:"max_inflight_jobs,omitempty"`
}

// Tenants is the daemon's multi-tenant scheduling section: the default
// policy for unlisted tenants and per-tenant overrides. The zero value is
// fully permissive — weight 1 for everyone, no quotas — which is exactly
// the pre-tenant behavior for a daemon serving only untagged traffic.
type Tenants struct {
	// DefaultWeight is the WFQ weight for tenants without an entry in
	// Policies (0 means 1).
	DefaultWeight int `json:"default_weight,omitempty"`
	// DefaultMaxQueuedConfigs / DefaultMaxInflightJobs are the quotas for
	// tenants without an entry (0 = unlimited).
	DefaultMaxQueuedConfigs int `json:"default_max_queued_configs,omitempty"`
	DefaultMaxInflightJobs  int `json:"default_max_inflight_jobs,omitempty"`
	// Policies maps tenant name to its policy.
	Policies map[string]TenantPolicy `json:"policies,omitempty"`
}

// WithDefaults fills unset tenant-section fields.
func (t Tenants) WithDefaults() Tenants {
	if t.DefaultWeight == 0 {
		t.DefaultWeight = 1
	}
	return t
}

// Validate reports tenant-section configuration errors.
func (t Tenants) Validate() error {
	if t.DefaultWeight < 0 || t.DefaultMaxQueuedConfigs < 0 || t.DefaultMaxInflightJobs < 0 {
		return fmt.Errorf("config: tenants: defaults must be non-negative")
	}
	for name, p := range t.Policies {
		if err := schedq.ValidTenant(name); err != nil {
			return fmt.Errorf("config: tenants: %w", err)
		}
		if p.Weight < 0 {
			return fmt.Errorf("config: tenants: %s: weight must be non-negative", name)
		}
		if p.MaxQueuedConfigs < 0 || p.MaxInflightJobs < 0 {
			return fmt.Errorf("config: tenants: %s: quotas must be non-negative", name)
		}
	}
	return nil
}

// SchedConfig resolves the section into the scheduler's config: weights
// inherited, quotas spelled out per entry, capacity from the job-queue
// depth (the bound the buffered channel used to impose).
func (t Tenants) SchedConfig(capacity int) schedq.Config {
	t = t.WithDefaults()
	def := schedq.Policy{
		Weight:           t.DefaultWeight,
		MaxQueuedConfigs: int64(t.DefaultMaxQueuedConfigs),
		MaxInflightJobs:  t.DefaultMaxInflightJobs,
	}
	var m map[string]schedq.Policy
	if len(t.Policies) > 0 {
		m = make(map[string]schedq.Policy, len(t.Policies))
		for name, p := range t.Policies {
			w := p.Weight
			if w <= 0 {
				w = def.Weight
			}
			m[name] = schedq.Policy{
				Weight:           w,
				MaxQueuedConfigs: int64(p.MaxQueuedConfigs),
				MaxInflightJobs:  p.MaxInflightJobs,
			}
		}
	}
	return schedq.Config{Capacity: capacity, Default: def, Tenants: m}
}

// policyFor returns (creating if needed) the named tenant's policy entry
// for flag application.
func (t *Tenants) policyFor(name string) TenantPolicy {
	if p, ok := t.Policies[name]; ok {
		return p
	}
	return TenantPolicy{}
}

func (t *Tenants) setPolicy(name string, p TenantPolicy) {
	if t.Policies == nil {
		t.Policies = make(map[string]TenantPolicy)
	}
	t.Policies[name] = p
}

// ApplyWeightFlag parses a -tenant-weights value — comma-separated
// name=weight pairs, e.g. "alice=3,bob=1" — into the section. The name
// "default" sets DefaultWeight (untagged traffic IS the default tenant,
// so the spelling is literal, not special).
func (t *Tenants) ApplyWeightFlag(s string) error {
	return applyPairs(s, func(name, val string) error {
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return fmt.Errorf("config: tenant weight %q=%q: want a positive integer", name, val)
		}
		if name == schedq.DefaultTenant {
			t.DefaultWeight = w
			return nil
		}
		p := t.policyFor(name)
		p.Weight = w
		t.setPolicy(name, p)
		return nil
	})
}

// ApplyQuotaFlag parses a -tenant-quota value — comma-separated
// name=maxQueuedConfigs[:maxInflightJobs] entries, e.g.
// "alice=1000:4,bob=200" (0 = unlimited). The name "default" sets the
// section defaults applied to unlisted tenants.
func (t *Tenants) ApplyQuotaFlag(s string) error {
	return applyPairs(s, func(name, val string) error {
		cfgPart, jobsPart, hasJobs := strings.Cut(val, ":")
		maxConfigs, err := strconv.Atoi(cfgPart)
		if err != nil || maxConfigs < 0 {
			return fmt.Errorf("config: tenant quota %q=%q: want maxQueuedConfigs[:maxInflightJobs]", name, val)
		}
		maxJobs := 0
		if hasJobs {
			if maxJobs, err = strconv.Atoi(jobsPart); err != nil || maxJobs < 0 {
				return fmt.Errorf("config: tenant quota %q=%q: want maxQueuedConfigs[:maxInflightJobs]", name, val)
			}
		}
		if name == schedq.DefaultTenant {
			t.DefaultMaxQueuedConfigs = maxConfigs
			t.DefaultMaxInflightJobs = maxJobs
			return nil
		}
		p := t.policyFor(name)
		p.MaxQueuedConfigs = maxConfigs
		p.MaxInflightJobs = maxJobs
		t.setPolicy(name, p)
		return nil
	})
}

// applyPairs splits "a=1,b=2" and validates each tenant name before
// handing the pair to apply.
func applyPairs(s string, apply func(name, val string) error) error {
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("config: tenant entry %q: want name=value", pair)
		}
		if err := schedq.ValidTenant(name); err != nil {
			return fmt.Errorf("config: %w", err)
		}
		if err := apply(name, val); err != nil {
			return err
		}
	}
	return nil
}
