package config

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestClusterValidate is the table-driven coverage of every cluster
// configuration error path: bad peer URLs, degenerate heartbeat/liveness
// windows, and cluster-only knobs leaking into standalone mode.
func TestClusterValidate(t *testing.T) {
	valid := Cluster{
		Mode:                ModeWorker,
		CoordinatorURL:      "http://coord:8321",
		HeartbeatIntervalMS: 2000,
		LivenessExpiryMS:    6000,
		BatchSize:           8,
	}
	cases := []struct {
		name    string
		mutate  func(*Cluster)
		wantErr string // substring; "" means valid
	}{
		{"zero value is standalone", func(c *Cluster) { *c = Cluster{} }, ""},
		{"explicit standalone", func(c *Cluster) { *c = Cluster{Mode: ModeStandalone} }, ""},
		{"valid worker", func(c *Cluster) {}, ""},
		{"valid worker with advertise", func(c *Cluster) { c.AdvertiseURL = "http://me:9000" }, ""},
		{"valid coordinator", func(c *Cluster) {
			*c = Cluster{Mode: ModeCoordinator, HeartbeatIntervalMS: 2000, LivenessExpiryMS: 6000, BatchSize: 8}
		}, ""},
		{"unknown mode", func(c *Cluster) { c.Mode = "leader" }, `unknown mode "leader"`},
		{"coordinator_url in standalone", func(c *Cluster) {
			*c = Cluster{CoordinatorURL: "http://coord:8321"}
		}, "mode is standalone"},
		{"advertise_url in standalone", func(c *Cluster) {
			*c = Cluster{Mode: ModeStandalone, AdvertiseURL: "http://me:9000"}
		}, "mode is standalone"},
		{"coordinator with upstream", func(c *Cluster) {
			*c = Cluster{Mode: ModeCoordinator, CoordinatorURL: "http://other:8321",
				HeartbeatIntervalMS: 2000, LivenessExpiryMS: 6000, BatchSize: 8}
		}, "mode is coordinator"},
		{"coordinator with advertise", func(c *Cluster) {
			*c = Cluster{Mode: ModeCoordinator, AdvertiseURL: "http://me:9000",
				HeartbeatIntervalMS: 2000, LivenessExpiryMS: 6000, BatchSize: 8}
		}, "worker-only"},
		{"worker without coordinator", func(c *Cluster) { c.CoordinatorURL = "" }, "requires coordinator_url"},
		{"relative coordinator url", func(c *Cluster) { c.CoordinatorURL = "coord:8321" }, "absolute http(s)"},
		{"bad scheme", func(c *Cluster) { c.CoordinatorURL = "ftp://coord:8321" }, "absolute http(s)"},
		{"hostless url", func(c *Cluster) { c.CoordinatorURL = "http://" }, "no host"},
		{"unparseable url", func(c *Cluster) { c.CoordinatorURL = "http://bad host\x00" }, "coordinator_url"},
		{"bad advertise url", func(c *Cluster) { c.AdvertiseURL = "not-a-url" }, "absolute http(s)"},
		{"zero heartbeat interval", func(c *Cluster) { c.HeartbeatIntervalMS = 0 }, "heartbeat_interval_ms must be positive"},
		{"negative heartbeat interval", func(c *Cluster) { c.HeartbeatIntervalMS = -5 }, "heartbeat_interval_ms must be positive"},
		{"expiry not beyond heartbeat", func(c *Cluster) { c.LivenessExpiryMS = 2000 }, "must exceed heartbeat_interval_ms"},
		{"zero batch size", func(c *Cluster) { c.BatchSize = 0 }, "batch_size must be positive"},
		{"negative batch size", func(c *Cluster) { c.BatchSize = -1 }, "batch_size must be positive"},
		{"batch size at the wire limit", func(c *Cluster) { c.BatchSize = cluster.MaxBatchConfigs }, ""},
		{"batch size beyond the wire limit", func(c *Cluster) { c.BatchSize = cluster.MaxBatchConfigs + 1 }, "exceeds the per-batch limit"},
		{"resilience knobs set", func(c *Cluster) {
			c.DialTimeoutMS = 5000
			c.IdleConnTimeoutMS = 30_000
			c.RetryBackoffMS = 50
			c.DispatchRetries = 2
			c.BreakerFailures = 5
			c.BreakerCooldownMS = 1000
			c.HeartbeatJitter = 0.5
		}, ""},
		{"negative dial timeout", func(c *Cluster) { c.DialTimeoutMS = -1 }, "dial_timeout_ms must be non-negative"},
		{"negative idle timeout", func(c *Cluster) { c.IdleConnTimeoutMS = -1 }, "idle_conn_timeout_ms must be non-negative"},
		{"negative retry backoff", func(c *Cluster) { c.RetryBackoffMS = -1 }, "retry_backoff_ms must be non-negative"},
		{"negative dispatch retries", func(c *Cluster) { c.DispatchRetries = -1 }, "dispatch_retries must be non-negative"},
		{"negative breaker failures", func(c *Cluster) { c.BreakerFailures = -1 }, "breaker_failures must be non-negative"},
		{"negative breaker cooldown", func(c *Cluster) { c.BreakerCooldownMS = -1 }, "breaker_cooldown_ms must be non-negative"},
		{"jitter beyond half", func(c *Cluster) { c.HeartbeatJitter = 0.6 }, "heartbeat_jitter must be at most 0.5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := valid
			tc.mutate(&c)
			err := c.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestClusterDefaults: cluster modes get production defaults; standalone
// stays zero so pre-cluster configs remain byte-identical.
func TestClusterDefaults(t *testing.T) {
	if got := (Cluster{}).WithDefaults(); got != (Cluster{}) {
		t.Fatalf("standalone defaults mutated the zero value: %+v", got)
	}
	c := Cluster{Mode: ModeCoordinator}.WithDefaults()
	if c.HeartbeatIntervalMS != 2000 || c.LivenessExpiryMS != 6000 || c.BatchSize != 8 {
		t.Fatalf("coordinator defaults = %+v", c)
	}
	if c.HeartbeatInterval() != 2*time.Second || c.LivenessExpiry() != 6*time.Second {
		t.Fatalf("duration accessors = %v/%v", c.HeartbeatInterval(), c.LivenessExpiry())
	}
	if c.DialTimeout() != 10*time.Second || c.IdleConnTimeout() != 90*time.Second {
		t.Fatalf("HTTP timeout defaults = %v/%v", c.DialTimeout(), c.IdleConnTimeout())
	}
	if c.RetryBackoff() != 100*time.Millisecond || c.DispatchRetries != 4 {
		t.Fatalf("retry defaults = %v/%d", c.RetryBackoff(), c.DispatchRetries)
	}
	if c.BreakerFailures != 3 || c.BreakerCooldown() != 5*time.Second {
		t.Fatalf("breaker defaults = %d/%v", c.BreakerFailures, c.BreakerCooldown())
	}
	if c.HeartbeatJitter != 0.2 {
		t.Fatalf("heartbeat jitter default = %g, want 0.2", c.HeartbeatJitter)
	}
	// Negative jitter is the explicit opt-out: exact cadence.
	c = Cluster{Mode: ModeCoordinator, HeartbeatJitter: -1}.WithDefaults()
	if c.HeartbeatJitter != 0 {
		t.Fatalf("negative jitter should clamp to 0, got %g", c.HeartbeatJitter)
	}
	// A custom heartbeat scales the derived expiry default.
	c = Cluster{Mode: ModeWorker, CoordinatorURL: "http://c", HeartbeatIntervalMS: 500}.WithDefaults()
	if c.LivenessExpiryMS != 1500 {
		t.Fatalf("derived expiry = %d, want 1500", c.LivenessExpiryMS)
	}
}

// TestDaemonValidatesCluster: Daemon.Validate covers the nested cluster
// section, and daemon JSON configs can carry it.
func TestDaemonValidatesCluster(t *testing.T) {
	d := Daemon{Cluster: Cluster{Mode: "nonsense"}}.WithDefaults()
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Fatalf("Daemon.Validate() = %v, want unknown-mode error", err)
	}
	cfg, err := ReadDaemon(strings.NewReader(`{
		"workers": 2,
		"cluster": {"mode": "worker", "coordinator_url": "http://coord:8321"}
	}`))
	if err != nil {
		t.Fatalf("ReadDaemon: %v", err)
	}
	if cfg.Cluster.Mode != ModeWorker || cfg.Cluster.HeartbeatIntervalMS != 2000 {
		t.Fatalf("parsed cluster = %+v", cfg.Cluster)
	}
	if _, err := ReadDaemon(strings.NewReader(`{"cluster": {"mode": "worker"}}`)); err == nil {
		t.Fatal("ReadDaemon accepted a worker without coordinator_url")
	}
}
