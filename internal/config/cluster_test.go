package config

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestClusterValidate is the table-driven coverage of every cluster
// configuration error path: bad peer URLs, degenerate heartbeat/liveness
// windows, and cluster-only knobs leaking into standalone mode.
func TestClusterValidate(t *testing.T) {
	valid := Cluster{
		Mode:                ModeWorker,
		CoordinatorURL:      "http://coord:8321",
		HeartbeatIntervalMS: 2000,
		LivenessExpiryMS:    6000,
		BatchSize:           8,
	}
	cases := []struct {
		name    string
		mutate  func(*Cluster)
		wantErr string // substring; "" means valid
	}{
		{"zero value is standalone", func(c *Cluster) { *c = Cluster{} }, ""},
		{"explicit standalone", func(c *Cluster) { *c = Cluster{Mode: ModeStandalone} }, ""},
		{"valid worker", func(c *Cluster) {}, ""},
		{"valid worker with advertise", func(c *Cluster) { c.AdvertiseURL = "http://me:9000" }, ""},
		{"valid coordinator", func(c *Cluster) {
			*c = Cluster{Mode: ModeCoordinator, HeartbeatIntervalMS: 2000, LivenessExpiryMS: 6000, BatchSize: 8}
		}, ""},
		{"unknown mode", func(c *Cluster) { c.Mode = "leader" }, `unknown mode "leader"`},
		{"coordinator_url in standalone", func(c *Cluster) {
			*c = Cluster{CoordinatorURL: "http://coord:8321"}
		}, "mode is standalone"},
		{"advertise_url in standalone", func(c *Cluster) {
			*c = Cluster{Mode: ModeStandalone, AdvertiseURL: "http://me:9000"}
		}, "mode is standalone"},
		{"coordinator with upstream", func(c *Cluster) {
			*c = Cluster{Mode: ModeCoordinator, CoordinatorURL: "http://other:8321",
				HeartbeatIntervalMS: 2000, LivenessExpiryMS: 6000, BatchSize: 8}
		}, "mode is coordinator"},
		{"coordinator with advertise", func(c *Cluster) {
			*c = Cluster{Mode: ModeCoordinator, AdvertiseURL: "http://me:9000",
				HeartbeatIntervalMS: 2000, LivenessExpiryMS: 6000, BatchSize: 8}
		}, "worker-only"},
		{"worker without coordinator", func(c *Cluster) { c.CoordinatorURL = "" }, "requires coordinator_url"},
		{"relative coordinator url", func(c *Cluster) { c.CoordinatorURL = "coord:8321" }, "absolute http(s)"},
		{"bad scheme", func(c *Cluster) { c.CoordinatorURL = "ftp://coord:8321" }, "absolute http(s)"},
		{"hostless url", func(c *Cluster) { c.CoordinatorURL = "http://" }, "no host"},
		{"unparseable url", func(c *Cluster) { c.CoordinatorURL = "http://bad host\x00" }, "coordinator_url"},
		{"bad advertise url", func(c *Cluster) { c.AdvertiseURL = "not-a-url" }, "absolute http(s)"},
		{"zero heartbeat interval", func(c *Cluster) { c.HeartbeatIntervalMS = 0 }, "heartbeat_interval_ms must be positive"},
		{"negative heartbeat interval", func(c *Cluster) { c.HeartbeatIntervalMS = -5 }, "heartbeat_interval_ms must be positive"},
		{"expiry not beyond heartbeat", func(c *Cluster) { c.LivenessExpiryMS = 2000 }, "must exceed heartbeat_interval_ms"},
		{"zero batch size", func(c *Cluster) { c.BatchSize = 0 }, "batch_size must be positive"},
		{"negative batch size", func(c *Cluster) { c.BatchSize = -1 }, "batch_size must be positive"},
		{"batch size at the wire limit", func(c *Cluster) { c.BatchSize = cluster.MaxBatchConfigs }, ""},
		{"batch size beyond the wire limit", func(c *Cluster) { c.BatchSize = cluster.MaxBatchConfigs + 1 }, "exceeds the per-batch limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := valid
			tc.mutate(&c)
			err := c.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestClusterDefaults: cluster modes get production defaults; standalone
// stays zero so pre-cluster configs remain byte-identical.
func TestClusterDefaults(t *testing.T) {
	if got := (Cluster{}).WithDefaults(); got != (Cluster{}) {
		t.Fatalf("standalone defaults mutated the zero value: %+v", got)
	}
	c := Cluster{Mode: ModeCoordinator}.WithDefaults()
	if c.HeartbeatIntervalMS != 2000 || c.LivenessExpiryMS != 6000 || c.BatchSize != 8 {
		t.Fatalf("coordinator defaults = %+v", c)
	}
	if c.HeartbeatInterval() != 2*time.Second || c.LivenessExpiry() != 6*time.Second {
		t.Fatalf("duration accessors = %v/%v", c.HeartbeatInterval(), c.LivenessExpiry())
	}
	// A custom heartbeat scales the derived expiry default.
	c = Cluster{Mode: ModeWorker, CoordinatorURL: "http://c", HeartbeatIntervalMS: 500}.WithDefaults()
	if c.LivenessExpiryMS != 1500 {
		t.Fatalf("derived expiry = %d, want 1500", c.LivenessExpiryMS)
	}
}

// TestDaemonValidatesCluster: Daemon.Validate covers the nested cluster
// section, and daemon JSON configs can carry it.
func TestDaemonValidatesCluster(t *testing.T) {
	d := Daemon{Cluster: Cluster{Mode: "nonsense"}}.WithDefaults()
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Fatalf("Daemon.Validate() = %v, want unknown-mode error", err)
	}
	cfg, err := ReadDaemon(strings.NewReader(`{
		"workers": 2,
		"cluster": {"mode": "worker", "coordinator_url": "http://coord:8321"}
	}`))
	if err != nil {
		t.Fatalf("ReadDaemon: %v", err)
	}
	if cfg.Cluster.Mode != ModeWorker || cfg.Cluster.HeartbeatIntervalMS != 2000 {
		t.Fatalf("parsed cluster = %+v", cfg.Cluster)
	}
	if _, err := ReadDaemon(strings.NewReader(`{"cluster": {"mode": "worker"}}`)); err == nil {
		t.Fatal("ReadDaemon accepted a worker without coordinator_url")
	}
}
