// Package config reads the JSON experiment configurations consumed by
// cmd/rescq-sim, mirroring the artifact's config-file workflow: one file
// describes the benchmark (or an external circuit file), the scheduler and
// its parameters, the code point (d, p), the grid compression, and the
// number of seeded runs.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	_ "repro/internal/core" // registers the "rescq" scheduler
	"repro/internal/lattice"
	"repro/internal/sched"
)

// Config is one simulation configuration.
type Config struct {
	// Benchmark names a Table 3 circuit (e.g. "gcm_n13"). Mutually
	// exclusive with CircuitFile.
	Benchmark string `json:"benchmark,omitempty"`
	// CircuitFile points at a circuit in the artifact text format.
	CircuitFile string `json:"circuit_file,omitempty"`
	// Scheduler names a registered scheduler: "greedy", "autobraid" or
	// "rescq" (default), plus anything added via sched.Register.
	Scheduler string `json:"scheduler,omitempty"`
	// Layout names a registered lattice layout (default "star").
	Layout string `json:"layout,omitempty"`
	// LayoutParams passes layout-specific knobs (e.g. the "compact"
	// layout's "fraction", or the "custom" layout's JSON "spec").
	LayoutParams map[string]string `json:"layout_params,omitempty"`
	// Distance is the surface code distance (default 7).
	Distance int `json:"distance,omitempty"`
	// PhysError is the physical error rate (default 1e-4).
	PhysError float64 `json:"phys_error,omitempty"`
	// K is RESCQ's MST recomputation period (default 25).
	K int `json:"k,omitempty"`
	// TauMST is RESCQ's MST latency in cycles (default 100).
	TauMST int `json:"tau_mst,omitempty"`
	// Compression in [0,1] (default 0).
	Compression float64 `json:"compression,omitempty"`
	// NumberOfRuns is the seeded-run count (default 10, the artifact's
	// reduced default).
	NumberOfRuns int `json:"number_of_runs,omitempty"`
	// Seed is the base seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Parallel runs the seeded runs concurrently on a bounded worker
	// pool; results are identical to serial execution (default false).
	Parallel bool `json:"parallel,omitempty"`
}

// Load reads and validates a config file.
func Load(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Read parses a config from r and validates it.
func Read(r io.Reader) (Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("config: parse: %w", err)
	}
	c = c.WithDefaults()
	return c, c.Validate()
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Scheduler == "" {
		c.Scheduler = "rescq"
	}
	if c.Distance == 0 {
		c.Distance = 7
	}
	if c.PhysError == 0 {
		c.PhysError = 1e-4
	}
	if c.K == 0 {
		c.K = 25
	}
	if c.TauMST == 0 {
		c.TauMST = 100
	}
	if c.NumberOfRuns == 0 {
		c.NumberOfRuns = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Benchmark == "" && c.CircuitFile == "" {
		return fmt.Errorf("config: need benchmark or circuit_file")
	}
	if c.Benchmark != "" && c.CircuitFile != "" {
		return fmt.Errorf("config: benchmark and circuit_file are mutually exclusive")
	}
	if !sched.Known(c.Scheduler) {
		return fmt.Errorf("config: unknown scheduler %q (registered: %s)",
			c.Scheduler, strings.Join(sched.Names(), ", "))
	}
	if !lattice.Known(c.Layout) {
		return fmt.Errorf("config: unknown layout %q (registered: %s)",
			c.Layout, strings.Join(lattice.Layouts(), ", "))
	}
	if err := lattice.ValidateParams(c.Layout, lattice.Params(c.LayoutParams)); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if c.Distance < 3 || c.Distance%2 == 0 {
		return fmt.Errorf("config: distance %d must be odd and >= 3", c.Distance)
	}
	if c.PhysError <= 0 || c.PhysError >= 0.5 {
		return fmt.Errorf("config: phys_error %v out of range", c.PhysError)
	}
	if c.Compression < 0 || c.Compression > 1 {
		return fmt.Errorf("config: compression %v out of [0,1]", c.Compression)
	}
	if c.NumberOfRuns < 1 {
		return fmt.Errorf("config: number_of_runs must be positive")
	}
	if c.K < 0 || c.TauMST < 0 {
		return fmt.Errorf("config: k and tau_mst must be non-negative")
	}
	return nil
}
