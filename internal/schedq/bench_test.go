package schedq

import (
	"fmt"
	"testing"
)

// BenchmarkSchedulerPickNext measures the WFQ hot path at steady state:
// one Pop (a victim scan over the tenant table) plus the completion
// charge and requeue that put the item back, over a table of 64
// backlogged tenants with 16 queued jobs each. This is the per-pickup
// overhead every worker slot pays, so it rides the bench-compare gate —
// a regression here taxes every job in the system.
func BenchmarkSchedulerPickNext(b *testing.B) {
	const tenants, jobsPer = 64, 16
	q, err := New(WFQ, Config{})
	if err != nil {
		b.Fatal(err)
	}
	type tagged struct{ tenant string }
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("tenant-%02d", i)
		for k := 0; k < jobsPer; k++ {
			if err := q.Push(name, 100, &tagged{tenant: name}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, ok := q.Pop()
		if !ok {
			b.Fatal("scheduler closed")
		}
		tg := it.(*tagged)
		q.Completed(tg.tenant, 1)
		if err := q.Requeue(tg.tenant, it); err != nil {
			b.Fatal(err)
		}
	}
}
