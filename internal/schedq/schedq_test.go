package schedq

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func mustPush(t *testing.T, q Scheduler, tenant string, cost int64, item any) {
	t.Helper()
	if err := q.Push(tenant, cost, item); err != nil {
		t.Fatalf("Push(%s): %v", tenant, err)
	}
}

// popAll drains n items without blocking semantics mattering (everything
// is already queued).
func popAll(t *testing.T, q Scheduler, n int) []any {
	t.Helper()
	out := make([]any, 0, n)
	for i := 0; i < n; i++ {
		it, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop %d/%d: scheduler closed", i, n)
		}
		out = append(out, it)
	}
	return out
}

func TestFIFOPreservesArrivalOrder(t *testing.T) {
	q, err := New(FIFO, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustPush(t, q, "a", 1, "a1")
	mustPush(t, q, "b", 1, "b1")
	mustPush(t, q, "a", 1, "a2")
	got := popAll(t, q, 3)
	want := []any{"a1", "b1", "a2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
	if q.Yield("a") {
		t.Fatal("FIFO must never yield")
	}
}

// TestWFQAlternatesEqualWeights: a whale with a deep backlog and an
// interactive tenant submitting singles must alternate — the whale's
// completed work advances its clock past the newcomer's.
func TestWFQAlternatesEqualWeights(t *testing.T) {
	q, err := New(WFQ, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Whale admitted first and "runs" 10 configurations.
	mustPush(t, q, "whale", 100, "whale-job")
	it, _ := q.Pop()
	if it != "whale-job" {
		t.Fatalf("popped %v", it)
	}
	q.Completed("whale", 10)

	// Interactive jobs arrive; their clock floors to the global vtime
	// (0 — the whale's clock at pickup), far behind the whale's 10.
	for i := 0; i < 3; i++ {
		mustPush(t, q, "live", 1, fmt.Sprintf("live-%d", i))
	}
	if !q.Yield("whale") {
		t.Fatal("whale should yield to the waiting interactive tenant")
	}
	if err := q.Requeue("whale", "whale-job"); err != nil {
		t.Fatal(err)
	}
	// The interactive tenant wins until its clock catches the whale's.
	for i := 0; i < 3; i++ {
		it, _ := q.Pop()
		if it != fmt.Sprintf("live-%d", i) {
			t.Fatalf("pop %d = %v, want live-%d", i, it, i)
		}
		q.Completed("live", 1)
		q.JobDone("live")
	}
	it, _ = q.Pop()
	if it != "whale-job" {
		t.Fatalf("whale should resume after interactive drains, got %v", it)
	}
	if q.Yield("whale") {
		t.Fatal("nothing queued: no yield")
	}
}

func TestWFQWeightsSkewService(t *testing.T) {
	q, err := New(WFQ, Config{Tenants: map[string]Policy{
		"heavy": {Weight: 3},
		"light": {Weight: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Both backlogged from the start; each completion charges 1/weight.
	// Count service in a window: heavy should get ~3x light's picks.
	mustPush(t, q, "heavy", 1000, "H")
	mustPush(t, q, "light", 1000, "L")
	served := map[any]int{}
	for i := 0; i < 40; i++ {
		it, _ := q.Pop()
		served[it]++
		tn := "heavy"
		if it == "L" {
			tn = "light"
		}
		q.Completed(tn, 1)
		if err := q.Requeue(tn, it); err != nil {
			t.Fatal(err)
		}
	}
	if served["H"] != 30 || served["L"] != 10 {
		t.Fatalf("service split H=%d L=%d, want 30/10", served["H"], served["L"])
	}
}

func TestQuotaConfigsAndJobs(t *testing.T) {
	q, err := New(WFQ, Config{Tenants: map[string]Policy{
		"small": {MaxQueuedConfigs: 5, MaxInflightJobs: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	mustPush(t, q, "small", 3, "j1")
	var qe *QuotaError
	if err := q.Push("small", 3, "j2"); !errors.As(err, &qe) || qe.Kind != "configs" {
		t.Fatalf("want configs QuotaError, got %v", err)
	}
	if qe.Backlog != 3 || qe.Limit != 5 {
		t.Fatalf("QuotaError backlog=%d limit=%d, want 3/5", qe.Backlog, qe.Limit)
	}
	mustPush(t, q, "small", 1, "j2") // 4 <= 5, second open job
	if err := q.Push("small", 1, "j3"); !errors.As(err, &qe) || qe.Kind != "jobs" {
		t.Fatalf("want jobs QuotaError, got %v", err)
	}
	// Exempt pushes (WAL replay) bypass both bounds.
	if err := q.PushExempt("small", 50, "replayed"); err != nil {
		t.Fatalf("PushExempt: %v", err)
	}
	// Completion + terminal accounting reopens admission.
	q.Completed("small", 54)
	q.JobDone("small")
	q.JobDone("small")
	q.JobDone("small")
	popAll(t, q, 3)
	mustPush(t, q, "small", 5, "j4")
}

func TestCapacityFullAndRequeueExempt(t *testing.T) {
	q, err := New(WFQ, Config{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustPush(t, q, "a", 1, 1)
	mustPush(t, q, "a", 1, 2)
	if err := q.Push("a", 1, 3); !errors.Is(err, ErrFull) {
		t.Fatalf("want ErrFull, got %v", err)
	}
	// A preempted continuation re-enters above capacity.
	if err := q.Requeue("a", 3); err != nil {
		t.Fatalf("Requeue over capacity: %v", err)
	}
	if q.Len() != 3 {
		t.Fatalf("Len=%d, want 3", q.Len())
	}
}

func TestCloseDrainsThenStops(t *testing.T) {
	q, err := New(WFQ, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustPush(t, q, "a", 1, "x")
	q.Close()
	if err := q.Push("a", 1, "y"); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := q.Requeue("a", "y"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Requeue after close: want ErrClosed, got %v", err)
	}
	if it, ok := q.Pop(); !ok || it != "x" {
		t.Fatalf("Pop should drain queued item, got %v/%v", it, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop after drain should report closed")
	}
}

func TestPopBlocksUntilPushOrClose(t *testing.T) {
	q, err := New(WFQ, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan any, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		it, ok := q.Pop()
		if ok {
			got <- it
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the popper block
	// A blocked (idle) worker means Yield must not fire even with work
	// queued the instant before the worker wakes.
	mustPush(t, q, "b", 1, "wake")
	select {
	case it := <-got:
		if it != "wake" {
			t.Fatalf("got %v", it)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop never woke")
	}
	wg.Wait()
	q.Close()
	if _, ok := q.Pop(); ok {
		t.Fatal("closed empty scheduler must report ok=false")
	}
}

func TestYieldSuppressedByIdleWorker(t *testing.T) {
	q := newQueue(Config{}, false)
	if err := q.Push("whale", 10, "w"); err != nil {
		t.Fatal(err)
	}
	q.Pop()
	q.Completed("whale", 5)
	done := make(chan struct{})
	go func() {
		defer close(done)
		q.Pop() // idle worker parks
	}()
	for {
		q.mu.Lock()
		waiting := q.waiters > 0
		q.mu.Unlock()
		if waiting {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Queued work + an idle worker: the worker takes it, no preemption.
	// (Racing the push against the parked worker is the exact scenario;
	// Yield must be false both before the worker wakes and after.)
	if err := q.Push("live", 1, "l"); err != nil {
		t.Fatal(err)
	}
	<-done
	if q.Yield("whale") {
		t.Fatal("no queued work remains; yield must be false")
	}
	q.Close()
}

func TestIdleTenantEarnsNoCredit(t *testing.T) {
	q, err := New(WFQ, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Whale works alone for a long time, advancing the global clock.
	mustPush(t, q, "whale", 1000, "w")
	q.Pop()
	q.Completed("whale", 500)
	if err := q.Requeue("whale", "w"); err != nil {
		t.Fatal(err)
	}
	q.Pop() // vtime advances to the whale's clock (500)
	// A newcomer floors at the global clock — it is entitled to preempt
	// only the whale's progress since its last pickup, not 500 configs.
	mustPush(t, q, "newbie", 1, "n")
	snaps := q.Snapshot()
	var newbieVT, whaleVT float64
	for _, s := range snaps {
		switch s.Tenant {
		case "newbie":
			newbieVT = s.VirtualTime
		case "whale":
			whaleVT = s.VirtualTime
		}
	}
	if newbieVT != whaleVT {
		t.Fatalf("newcomer clock %v, want floored to whale's %v", newbieVT, whaleVT)
	}
	if q.Yield("whale") {
		t.Fatal("equal clocks: no yield until the whale completes more work")
	}
	q.Completed("whale", 1)
	if !q.Yield("whale") {
		t.Fatal("whale ahead by one config: yield")
	}
}

func TestBacklogAndSnapshot(t *testing.T) {
	q, err := New(WFQ, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustPush(t, q, "a", 7, "j")
	if got := q.Backlog("a"); got != 7 {
		t.Fatalf("Backlog=%d, want 7", got)
	}
	q.Completed("a", 2)
	q.Abandon("a", 5)
	if got := q.Backlog("a"); got != 0 {
		t.Fatalf("Backlog=%d, want 0", got)
	}
	snaps := q.Snapshot()
	if len(snaps) != 1 || snaps[0].Tenant != "a" || snaps[0].QueuedJobs != 1 || snaps[0].OpenJobs != 1 {
		t.Fatalf("snapshot %+v", snaps)
	}
	q.Pop()
	q.JobDone("a")
	if got := q.Backlog("missing"); got != 0 {
		t.Fatalf("unknown tenant backlog=%d", got)
	}
}

func TestRegistry(t *testing.T) {
	if !Known("") || !Known(WFQ) || !Known(FIFO) || Known("nope") {
		t.Fatalf("Known: %v %v %v %v", Known(""), Known(WFQ), Known(FIFO), Known("nope"))
	}
	if _, err := New("nope", Config{}); err == nil {
		t.Fatal("unknown policy must error")
	}
	names := Names()
	if len(names) < 2 {
		t.Fatalf("Names() = %v", names)
	}
}

func TestValidTenant(t *testing.T) {
	for _, ok := range []string{"default", "a", "team-1", "A.B_c-9"} {
		if err := ValidTenant(ok); err != nil {
			t.Errorf("ValidTenant(%q): %v", ok, err)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "has space", "sneaky/../path", "emoji✨", string(long)} {
		if err := ValidTenant(bad); err == nil {
			t.Errorf("ValidTenant(%q): want error", bad)
		}
	}
}
