package schedq

import (
	"sort"
	"sync"
)

// maxIdleTenants bounds the tenant table: beyond it, a Push sweeps out
// fully idle tenants (nothing queued, nothing open, nothing backlogged)
// regardless of residual virtual-time debt. Idle tenants are otherwise
// evicted only once the global clock catches up with theirs, so a whale
// that pauses cannot shed its debt by going briefly silent.
const maxIdleTenants = 4096

// entry is one queued job with its admission sequence number (the FIFO
// key, and the tie-breaker inside a tenant under WFQ).
type entry struct {
	item any
	seq  uint64
}

// tenant is one tenant's scheduling state.
type tenant struct {
	name   string
	weight float64
	policy Policy
	queue  []entry
	// vt is the tenant's virtual clock: configurations completed on its
	// behalf divided by weight, floored to the global clock whenever the
	// tenant arrives from idleness (idle tenants earn no credit).
	vt      float64
	backlog int64 // admitted-but-unfinished configurations
	open    int   // queued + running jobs
}

// idle reports whether the tenant holds no scheduler state worth keeping
// beyond its clock.
func (t *tenant) idle() bool {
	return len(t.queue) == 0 && t.open == 0 && t.backlog == 0
}

// queue implements Scheduler for both registered policies: virtual-time
// WFQ (fifo=false) and global arrival order (fifo=true). The two share
// the tenant table, quota enforcement and accounting; only Pop's victim
// selection and Yield differ.
type queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	cfg     Config
	fifo    bool
	tenants map[string]*tenant
	queued  int    // items across all tenant queues
	waiters int    // workers blocked in Pop
	seq     uint64 // admission sequence, the FIFO/tie-break key
	closed  bool
	// vtime is the global virtual clock: the virtual time of the last
	// tenant served. New arrivals floor their clock here, which is what
	// keeps long-idle tenants from starving everyone on their return.
	vtime float64
}

func newQueue(cfg Config, fifo bool) *queue {
	q := &queue{cfg: cfg, fifo: fifo, tenants: make(map[string]*tenant)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// tenantLocked returns (creating if needed) the named tenant's state.
func (q *queue) tenantLocked(name string) *tenant {
	if t, ok := q.tenants[name]; ok {
		return t
	}
	if len(q.tenants) >= maxIdleTenants {
		for n, t := range q.tenants {
			if t.idle() {
				delete(q.tenants, n)
			}
		}
	}
	pol, ok := q.cfg.Tenants[name]
	if !ok {
		pol = q.cfg.Default
	}
	w := pol.Weight
	if w <= 0 {
		w = q.cfg.Default.Weight
	}
	if w <= 0 {
		w = 1
	}
	t := &tenant{name: name, weight: float64(w), policy: pol, vt: q.vtime}
	q.tenants[name] = t
	return t
}

func (q *queue) Push(tn string, cost int64, item any) error {
	return q.push(tn, cost, item, false)
}

func (q *queue) PushExempt(tn string, cost int64, item any) error {
	return q.push(tn, cost, item, true)
}

func (q *queue) push(tn string, cost int64, item any, exempt bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	t := q.tenantLocked(tn)
	if !exempt {
		if lim := t.policy.MaxQueuedConfigs; lim > 0 && t.backlog+cost > lim {
			return &QuotaError{Tenant: tn, Kind: "configs", Backlog: t.backlog, Limit: lim}
		}
		if lim := t.policy.MaxInflightJobs; lim > 0 && t.open+1 > lim {
			return &QuotaError{Tenant: tn, Kind: "jobs", Backlog: t.backlog, Limit: int64(lim)}
		}
	}
	if q.cfg.Capacity > 0 && q.queued >= q.cfg.Capacity {
		return ErrFull
	}
	if t.idle() && t.vt < q.vtime {
		t.vt = q.vtime // arriving from idleness earns no credit
	}
	t.backlog += cost
	t.open++
	q.enqueueLocked(t, item)
	return nil
}

func (q *queue) Requeue(tn string, item any) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	// The continuation's cost and open-job slot are already held; it also
	// bypasses capacity — the job was admitted once, and refusing the
	// requeue would strand it with no owner.
	q.enqueueLocked(q.tenantLocked(tn), item)
	return nil
}

func (q *queue) enqueueLocked(t *tenant, item any) {
	q.seq++
	t.queue = append(t.queue, entry{item: item, seq: q.seq})
	q.queued++
	q.cond.Signal()
}

// pickLocked selects the tenant to serve next: under FIFO the one whose
// head arrived first, under WFQ the one with the least virtual time
// (arrival order breaking ties, so equal-clock tenants alternate
// deterministically instead of by map order).
func (q *queue) pickLocked() *tenant {
	var best *tenant
	for _, t := range q.tenants {
		if len(t.queue) == 0 {
			continue
		}
		switch {
		case best == nil:
			best = t
		case q.fifo:
			if t.queue[0].seq < best.queue[0].seq {
				best = t
			}
		case t.vt < best.vt || (t.vt == best.vt && t.queue[0].seq < best.queue[0].seq):
			best = t
		}
	}
	return best
}

func (q *queue) Pop() (any, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if t := q.pickLocked(); t != nil {
			e := t.queue[0]
			t.queue = t.queue[1:]
			q.queued--
			if t.vt > q.vtime {
				q.vtime = t.vt
			}
			return e.item, true
		}
		if q.closed {
			return nil, false
		}
		q.waiters++
		q.cond.Wait()
		q.waiters--
	}
}

func (q *queue) Completed(tn string, n int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tenants[tn]
	if !ok || n <= 0 {
		return
	}
	t.backlog -= n
	if t.backlog < 0 {
		t.backlog = 0
	}
	t.vt += float64(n) / t.weight
}

func (q *queue) Abandon(tn string, n int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t, ok := q.tenants[tn]; ok && n > 0 {
		t.backlog -= n
		if t.backlog < 0 {
			t.backlog = 0
		}
	}
}

func (q *queue) JobDone(tn string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tenants[tn]
	if !ok {
		return
	}
	if t.open > 0 {
		t.open--
	}
	// Evict once fully idle with no residual virtual-time debt; a tenant
	// still ahead of the global clock keeps its state until it drains.
	if t.idle() && t.vt <= q.vtime {
		delete(q.tenants, tn)
	}
}

func (q *queue) Yield(tn string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	// An idle worker blocked in Pop will take any queued item directly —
	// preempting would only churn the running job.
	if q.fifo || q.closed || q.queued == 0 || q.waiters > 0 {
		return false
	}
	me, ok := q.tenants[tn]
	if !ok {
		return false
	}
	for _, t := range q.tenants {
		if t != me && len(t.queue) > 0 && t.vt < me.vt {
			return true
		}
	}
	return false
}

func (q *queue) Backlog(tn string) int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t, ok := q.tenants[tn]; ok {
		return t.backlog
	}
	return 0
}

func (q *queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

func (q *queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *queue) Snapshot() []TenantSnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(q.tenants))
	for _, t := range q.tenants {
		out = append(out, TenantSnapshot{
			Tenant:      t.name,
			Weight:      int(t.weight),
			QueuedJobs:  len(t.queue),
			OpenJobs:    t.open,
			Backlog:     t.backlog,
			VirtualTime: t.vt,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Tenant < out[b].Tenant })
	return out
}
