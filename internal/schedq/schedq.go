// Package schedq is rescqd's tenant-aware scheduling layer: the pluggable
// job queue sitting between submission and the worker pool. It replaces
// the single buffered channel the daemon started with — under which one
// tenant's multi-thousand-configuration sweep starved every submission
// behind it — with per-tenant queues drained by a policy.
//
// Two policies are registered:
//
//   - "wfq" (the default): weighted fair queueing over virtual time. Each
//     tenant accumulates virtual time proportional to the configurations
//     executed on its behalf divided by its weight; Pop always serves the
//     backlogged tenant with the least virtual time, and Yield tells a
//     running job to checkpoint at its next configuration boundary when a
//     lower-virtual-time tenant is waiting. Idle tenants earn no credit:
//     on arrival after idleness a tenant's clock is floored to the global
//     virtual time, so a tenant cannot bank hours of silence and then
//     monopolize the pool.
//   - "fifo": strict arrival order across all tenants (the pre-scheduler
//     behavior). Quota enforcement and per-tenant accounting still apply;
//     Yield never fires.
//
// The scheduler also owns per-tenant admission quotas: a bound on
// admitted-but-unfinished configurations (backlog) and on open (queued +
// running) jobs. Quota rejections carry the tenant's own backlog so the
// HTTP layer can compute a per-tenant Retry-After instead of quoting the
// global queue.
//
// Accounting protocol (the service drives it):
//
//	Push / PushExempt  admit a job of `cost` unfinished configurations
//	Requeue            re-enter a preempted continuation (nothing recounted)
//	Pop                worker pickup; blocks, drains after Close
//	Completed          n configurations finished: backlog down, clock up
//	Abandon            n configurations that will never run: backlog down
//	JobDone            the job reached a terminal state: open-jobs down
package schedq

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// DefaultTenant is the identity assigned to untagged traffic — requests
// that name no tenant, and every job written to the WAL before tenancy
// existed.
const DefaultTenant = "default"

// Typed admission errors. The service maps ErrClosed to its draining
// rejection and ErrFull to its queue-full rejection; QuotaError becomes a
// 429 with a per-tenant Retry-After.
var (
	ErrClosed = errors.New("schedq: scheduler closed")
	ErrFull   = errors.New("schedq: queue full")
)

// QuotaError reports a per-tenant admission rejection: the submission
// would exceed the tenant's configured quota. Backlog is the tenant's own
// admitted-but-unfinished configuration count at rejection time — the
// number a Retry-After hint should be derived from.
type QuotaError struct {
	Tenant  string
	Kind    string // "configs" (backlog bound) or "jobs" (open-job bound)
	Backlog int64
	Limit   int64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("schedq: tenant %q over %s quota (backlog %d, limit %d)",
		e.Tenant, e.Kind, e.Backlog, e.Limit)
}

// Policy is one tenant's resolved scheduling policy. Zero quota fields
// mean unlimited; Weight <= 0 falls back to the configured default.
type Policy struct {
	Weight           int   // relative share of the pool under contention
	MaxQueuedConfigs int64 // bound on admitted-but-unfinished configurations
	MaxInflightJobs  int   // bound on open (queued + running) jobs
}

// Config parameterizes a scheduler instance.
type Config struct {
	// Capacity bounds queued jobs (the channel-depth analogue); <= 0 means
	// unbounded. Preempted continuations re-enter above this bound — they
	// were admitted once and dropping them would strand the job.
	Capacity int
	// Default applies to tenants without an explicit entry in Tenants.
	Default Policy
	// Tenants maps tenant name to its resolved policy.
	Tenants map[string]Policy
}

// TenantSnapshot is one tenant's live scheduling state, for /healthz and
// the per-tenant Prometheus gauges.
type TenantSnapshot struct {
	Tenant      string  `json:"tenant"`
	Weight      int     `json:"weight"`
	QueuedJobs  int     `json:"queued_jobs"`
	OpenJobs    int     `json:"open_jobs"`
	Backlog     int64   `json:"backlog_configs"`
	VirtualTime float64 `json:"virtual_time"`
}

// Scheduler is the pluggable queue between submission and the worker
// pool. Push/Pop carry opaque items (the service's *Job) so the package
// stays dependency-free. All methods are safe for concurrent use.
type Scheduler interface {
	// Push admits one job for tenant, costing `cost` unfinished
	// configurations against its quota and backlog. Returns ErrClosed
	// after Close, a *QuotaError over a tenant bound, or ErrFull when the
	// global capacity is exhausted.
	Push(tenant string, cost int64, item any) error
	// PushExempt admits bypassing the tenant quotas (WAL-replayed jobs:
	// their work was admitted in a previous life) but still counting the
	// backlog and respecting capacity.
	PushExempt(tenant string, cost int64, item any) error
	// Requeue re-enqueues a preempted continuation. Its cost and open-job
	// slot are already accounted, so neither quotas nor capacity apply;
	// only ErrClosed is possible.
	Requeue(tenant string, item any) error
	// Pop blocks until an item is available, returning ok=false only once
	// the scheduler is closed AND drained — the channel-range contract the
	// worker pool was built on.
	Pop() (item any, ok bool)
	// Completed reports n configurations of tenant's admitted work
	// executed: backlog shrinks and the tenant's virtual clock advances.
	Completed(tenant string, n int64)
	// Abandon releases n admitted configurations that will never run
	// (cancelled or failed jobs): backlog shrinks, no virtual-time charge.
	Abandon(tenant string, n int64)
	// JobDone reports one of tenant's open jobs reaching a terminal state.
	JobDone(tenant string)
	// Yield reports whether work running on tenant's behalf should
	// checkpoint at its next configuration boundary because a
	// better-entitled tenant is waiting. Always false under FIFO.
	Yield(tenant string) bool
	// Backlog returns tenant's admitted-but-unfinished configurations.
	Backlog(tenant string) int64
	// Len returns the queued-job count across all tenants.
	Len() int
	// Close stops admission and wakes every Pop; queued items drain first.
	Close()
	// Snapshot returns per-tenant live state, sorted by tenant name.
	Snapshot() []TenantSnapshot
}

// Registered policy names.
const (
	WFQ  = "wfq"
	FIFO = "fifo"
)

var (
	regMu     sync.RWMutex
	factories = map[string]func(Config) Scheduler{}
)

// Register adds a scheduler factory under name, following the same
// registry idiom as the engine's scheduler and layout registries, so an
// alternative policy plugs in without touching the service.
func Register(name string, f func(Config) Scheduler) {
	regMu.Lock()
	defer regMu.Unlock()
	factories[name] = f
}

// New builds the named scheduler ("" means the default, WFQ).
func New(name string, cfg Config) (Scheduler, error) {
	if name == "" {
		name = WFQ
	}
	regMu.RLock()
	f, ok := factories[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("schedq: unknown policy %q (registered: %v)", name, Names())
	}
	return f(cfg), nil
}

// Known reports whether name resolves to a registered policy ("" counts:
// it resolves to the default).
func Known(name string) bool {
	if name == "" {
		return true
	}
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := factories[name]
	return ok
}

// Names returns the registered policy names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ValidTenant reports whether name is usable as a tenant identity: 1-64
// characters from [A-Za-z0-9._-]. Shared by the HTTP layer (request
// validation) and the config layer (policy-table validation) so the two
// can never disagree.
func ValidTenant(name string) error {
	if name == "" || len(name) > 64 {
		return fmt.Errorf("schedq: tenant name must be 1-64 characters")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("schedq: tenant name %q: invalid character %q (want [A-Za-z0-9._-])", name, c)
		}
	}
	return nil
}

func init() {
	Register(WFQ, func(cfg Config) Scheduler { return newQueue(cfg, false) })
	Register(FIFO, func(cfg Config) Scheduler { return newQueue(cfg, true) })
}
