package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ServiceStats is the rescqd daemon's counter set: job lifecycle counts,
// result-cache effectiveness, and a latency histogram from which the p50 and
// p99 job latencies are derived. All methods are safe for concurrent use;
// the counters are atomics so the serving hot path never takes a lock, and
// only latency observation/rendering shares a mutex.
type ServiceStats struct {
	JobsQueued    atomic.Int64 // jobs accepted and enqueued, lifetime total
	JobsRunning   atomic.Int64 // jobs currently executing (gauge)
	JobsDone      atomic.Int64 // jobs finished successfully
	JobsFailed    atomic.Int64 // jobs finished with an error
	JobsCancelled atomic.Int64 // jobs cancelled before completion
	JobsRejected  atomic.Int64 // jobs refused because the queue was full or draining
	JobsShed      atomic.Int64 // submissions shed by admission control (429 + Retry-After)
	JobsPreempted atomic.Int64 // running jobs checkpointed and requeued by the scheduler
	CacheHits     atomic.Int64 // run configurations served from the result cache
	CacheMisses   atomic.Int64 // run configurations that had to simulate
	EngineRuns    atomic.Int64 // actual engine invocations (miss + uncacheable)
	Coalesced     atomic.Int64 // configurations that waited on an identical in-flight run

	ReplayedJobs    atomic.Int64 // jobs reconstructed from the WAL at startup
	ReplayedResults atomic.Int64 // completed configurations replayed from the WAL
	StoreErrors     atomic.Int64 // WAL append/close failures (durability degraded)

	// Degraded-durability counters: a WAL failure flips the daemon into a
	// non-durable "lossy" mode instead of failing submissions; a periodic
	// probe re-attaches the store when the disk heals.
	DurabilityLost     atomic.Int64 // times the daemon entered lossy mode
	DurabilityRestored atomic.Int64 // times the probe restored durable mode
	LossyWrites        atomic.Int64 // WAL records skipped while lossy

	// Cluster counters (coordinator side; zero in standalone mode).
	BatchesDispatched   atomic.Int64 // batches POSTed to workers
	BatchesRedispatched atomic.Int64 // batches re-dispatched after a worker died or errored
	BatchesHedged       atomic.Int64 // hedge batches raced against stragglers
	DispatchRetries     atomic.Int64 // dispatch attempts retried after a failure
	BreakerOpens        atomic.Int64 // per-worker circuit breakers opened
	RemoteConfigs       atomic.Int64 // configurations whose results came back from a worker
	HeartbeatsReceived  atomic.Int64 // register/heartbeat POSTs accepted
	WorkerExpiries      atomic.Int64 // workers expired by the liveness sweeper
	WorkersDrained      atomic.Int64 // draining workers released after their last in-flight batch

	// Wire-codec counters (coordinator side): which codec each dispatched
	// batch was spoken in, and the bytes that actually crossed the wire
	// (post-compression), per direction.
	WireBinaryBatches  atomic.Int64 // batches dispatched in the binary wire codec
	WireBinaryBytesOut atomic.Int64 // binary-dispatch request bytes on the wire
	WireBinaryBytesIn  atomic.Int64 // binary-dispatch response bytes on the wire
	WireJSONBatches    atomic.Int64 // batches dispatched in the JSON wire codec
	WireJSONBytesOut   atomic.Int64 // JSON-dispatch request bytes on the wire
	WireJSONBytesIn    atomic.Int64 // JSON-dispatch response bytes on the wire

	mu            sync.Mutex
	latency       *Histogram // completed-job latency in milliseconds
	configLatency *Histogram // per-configuration execution latency in milliseconds

	tenantMu sync.Mutex
	tenants  map[string]*TenantCounters
}

// TenantCounters is one tenant's slice of the job-lifecycle counters, fed
// by the service alongside the global set and rendered as labeled
// rescqd_tenant_* series. The struct is created on first touch and lives
// for the daemon's lifetime — tenant cardinality is bounded by the
// scheduler's own tenant-table cap.
type TenantCounters struct {
	Queued    atomic.Int64 // jobs accepted for this tenant, lifetime total
	Running   atomic.Int64 // this tenant's jobs currently executing (gauge)
	Done      atomic.Int64 // this tenant's jobs reaching a terminal state
	Shed      atomic.Int64 // submissions shed by this tenant's quota (429)
	Preempted atomic.Int64 // times this tenant's running jobs were preempted
}

// Tenant returns (creating if needed) the named tenant's counter set.
func (s *ServiceStats) Tenant(name string) *TenantCounters {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if s.tenants == nil {
		s.tenants = make(map[string]*TenantCounters)
	}
	tc, ok := s.tenants[name]
	if !ok {
		tc = &TenantCounters{}
		s.tenants[name] = tc
	}
	return tc
}

// TenantSnapshot is a point-in-time copy of one tenant's counters.
type TenantSnapshot struct {
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Done      int64 `json:"done"`
	Shed      int64 `json:"shed"`
	Preempted int64 `json:"preempted"`
}

// TenantSnapshots captures every tenant's counters, keyed by tenant name.
// Returns nil when no tenant has been touched (a daemon serving only
// untagged traffic still counts it all under the default tenant).
func (s *ServiceStats) TenantSnapshots() map[string]TenantSnapshot {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if len(s.tenants) == 0 {
		return nil
	}
	out := make(map[string]TenantSnapshot, len(s.tenants))
	for name, tc := range s.tenants {
		out[name] = TenantSnapshot{
			Queued:    tc.Queued.Load(),
			Running:   tc.Running.Load(),
			Done:      tc.Done.Load(),
			Shed:      tc.Shed.Load(),
			Preempted: tc.Preempted.Load(),
		}
	}
	return out
}

// NewServiceStats returns a zeroed counter set.
func NewServiceStats() *ServiceStats {
	return &ServiceStats{latency: NewHistogram(), configLatency: NewHistogram()}
}

// ObserveLatency records one completed job's wall-clock latency.
func (s *ServiceStats) ObserveLatency(d time.Duration) {
	ms := int(d.Milliseconds())
	if ms < 0 {
		ms = 0
	}
	s.mu.Lock()
	s.latency.Add(ms)
	s.mu.Unlock()
}

// LatencyPercentiles returns the p50 and p99 completed-job latencies in
// milliseconds (0, 0 before any job completes).
func (s *ServiceStats) LatencyPercentiles() (p50, p99 int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.latency.N() == 0 {
		return 0, 0
	}
	return s.latency.Percentile(0.50), s.latency.Percentile(0.99)
}

// ObserveConfigLatency records one configuration's execution latency —
// local engine runs directly, remote batches as round-trip ÷ batch size.
// This is the distribution batch deadlines and hedge delays are derived
// from.
func (s *ServiceStats) ObserveConfigLatency(d time.Duration) {
	ms := int(d.Milliseconds())
	if ms < 0 {
		ms = 0
	}
	s.mu.Lock()
	s.configLatency.Add(ms)
	s.mu.Unlock()
}

// ConfigLatency returns the per-configuration latency sample count and its
// p50 and p99 in milliseconds. The p50 sizes adaptive dispatch batches, the
// p99 derives batch deadlines and hedge delays. Callers must check n
// themselves: percentiles from a handful of samples are noise, not a
// distribution.
func (s *ServiceStats) ConfigLatency() (n, p50ms, p99ms int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n = s.configLatency.N()
	if n == 0 {
		return 0, 0, 0
	}
	return n, s.configLatency.Percentile(0.50), s.configLatency.Percentile(0.99)
}

// Snapshot is a point-in-time copy of every counter, used by the /metrics
// endpoint and by tests asserting cache behavior.
type Snapshot struct {
	JobsQueued      int64 `json:"jobs_queued"`
	JobsRunning     int64 `json:"jobs_running"`
	JobsDone        int64 `json:"jobs_done"`
	JobsFailed      int64 `json:"jobs_failed"`
	JobsCancelled   int64 `json:"jobs_cancelled"`
	JobsRejected    int64 `json:"jobs_rejected"`
	JobsShed        int64 `json:"jobs_shed"`
	JobsPreempted   int64 `json:"jobs_preempted"`
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	EngineRuns      int64 `json:"engine_runs"`
	Coalesced       int64 `json:"coalesced"`
	ReplayedJobs    int64 `json:"replayed_jobs"`
	ReplayedResults int64 `json:"replayed_results"`
	StoreErrors     int64 `json:"store_errors"`

	DurabilityLost     int64 `json:"durability_lost"`
	DurabilityRestored int64 `json:"durability_restored"`
	LossyWrites        int64 `json:"lossy_writes"`

	BatchesDispatched   int64 `json:"batches_dispatched"`
	BatchesRedispatched int64 `json:"batches_redispatched"`
	BatchesHedged       int64 `json:"batches_hedged"`
	DispatchRetries     int64 `json:"dispatch_retries"`
	BreakerOpens        int64 `json:"breaker_opens"`
	RemoteConfigs       int64 `json:"remote_configs"`
	HeartbeatsReceived  int64 `json:"heartbeats_received"`
	WorkerExpiries      int64 `json:"worker_expiries"`
	WorkersDrained      int64 `json:"workers_drained"`

	WireBinaryBatches  int64 `json:"wire_binary_batches"`
	WireBinaryBytesOut int64 `json:"wire_binary_bytes_out"`
	WireBinaryBytesIn  int64 `json:"wire_binary_bytes_in"`
	WireJSONBatches    int64 `json:"wire_json_batches"`
	WireJSONBytesOut   int64 `json:"wire_json_bytes_out"`
	WireJSONBytesIn    int64 `json:"wire_json_bytes_in"`

	LatencyCount int64 `json:"latency_count"`
	LatencyP50ms int64 `json:"latency_p50_ms"`
	LatencyP99ms int64 `json:"latency_p99_ms"`

	ConfigLatencyCount int64 `json:"config_latency_count"`
	ConfigLatencyP50ms int64 `json:"config_latency_p50_ms"`
	ConfigLatencyP99ms int64 `json:"config_latency_p99_ms"`

	// Tenants holds per-tenant lifecycle counters, keyed by tenant name
	// (nil when no tenant has been touched).
	Tenants map[string]TenantSnapshot `json:"tenants,omitempty"`
}

// Snapshot captures the current counter values.
func (s *ServiceStats) Snapshot() Snapshot {
	p50, p99 := s.LatencyPercentiles()
	cfgN, cfgP50, cfgP99 := s.ConfigLatency()
	s.mu.Lock()
	n := s.latency.N()
	s.mu.Unlock()
	return Snapshot{
		JobsQueued:      s.JobsQueued.Load(),
		JobsRunning:     s.JobsRunning.Load(),
		JobsDone:        s.JobsDone.Load(),
		JobsFailed:      s.JobsFailed.Load(),
		JobsCancelled:   s.JobsCancelled.Load(),
		JobsRejected:    s.JobsRejected.Load(),
		JobsShed:        s.JobsShed.Load(),
		JobsPreempted:   s.JobsPreempted.Load(),
		CacheHits:       s.CacheHits.Load(),
		CacheMisses:     s.CacheMisses.Load(),
		EngineRuns:      s.EngineRuns.Load(),
		Coalesced:       s.Coalesced.Load(),
		ReplayedJobs:    s.ReplayedJobs.Load(),
		ReplayedResults: s.ReplayedResults.Load(),
		StoreErrors:     s.StoreErrors.Load(),

		DurabilityLost:     s.DurabilityLost.Load(),
		DurabilityRestored: s.DurabilityRestored.Load(),
		LossyWrites:        s.LossyWrites.Load(),

		BatchesDispatched:   s.BatchesDispatched.Load(),
		BatchesRedispatched: s.BatchesRedispatched.Load(),
		BatchesHedged:       s.BatchesHedged.Load(),
		DispatchRetries:     s.DispatchRetries.Load(),
		BreakerOpens:        s.BreakerOpens.Load(),
		RemoteConfigs:       s.RemoteConfigs.Load(),
		HeartbeatsReceived:  s.HeartbeatsReceived.Load(),
		WorkerExpiries:      s.WorkerExpiries.Load(),
		WorkersDrained:      s.WorkersDrained.Load(),

		WireBinaryBatches:  s.WireBinaryBatches.Load(),
		WireBinaryBytesOut: s.WireBinaryBytesOut.Load(),
		WireBinaryBytesIn:  s.WireBinaryBytesIn.Load(),
		WireJSONBatches:    s.WireJSONBatches.Load(),
		WireJSONBytesOut:   s.WireJSONBytesOut.Load(),
		WireJSONBytesIn:    s.WireJSONBytesIn.Load(),

		LatencyCount: int64(n),
		LatencyP50ms: int64(p50),
		LatencyP99ms: int64(p99),

		ConfigLatencyCount: int64(cfgN),
		ConfigLatencyP50ms: int64(cfgP50),
		ConfigLatencyP99ms: int64(cfgP99),

		Tenants: s.TenantSnapshots(),
	}
}

// RenderProm renders the snapshot in the Prometheus text exposition format
// under the given metric-name prefix (e.g. "rescqd").
func (s Snapshot) RenderProm(prefix string) string {
	var sb strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&sb, "# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %d\n",
			prefix, name, help, prefix, name, prefix, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&sb, "# HELP %s_%s %s\n# TYPE %s_%s gauge\n%s_%s %d\n",
			prefix, name, help, prefix, name, prefix, name, v)
	}
	counter("jobs_queued_total", "Jobs accepted and enqueued.", s.JobsQueued)
	gauge("jobs_running", "Jobs currently executing.", s.JobsRunning)
	counter("jobs_done_total", "Jobs finished successfully.", s.JobsDone)
	counter("jobs_failed_total", "Jobs finished with an error.", s.JobsFailed)
	counter("jobs_cancelled_total", "Jobs cancelled before completion.", s.JobsCancelled)
	counter("jobs_rejected_total", "Jobs refused (queue full or draining).", s.JobsRejected)
	counter("jobs_shed_total", "Submissions shed by admission control (429).", s.JobsShed)
	counter("jobs_preempted_total", "Running jobs checkpointed and requeued by the scheduler.", s.JobsPreempted)
	counter("cache_hits_total", "Run configurations served from the result cache.", s.CacheHits)
	counter("cache_misses_total", "Run configurations that had to simulate.", s.CacheMisses)
	counter("engine_runs_total", "Engine invocations.", s.EngineRuns)
	counter("coalesced_total", "Configurations that waited on an identical in-flight run.", s.Coalesced)
	counter("replayed_jobs_total", "Jobs reconstructed from the WAL at startup.", s.ReplayedJobs)
	counter("replayed_results_total", "Completed configurations replayed from the WAL.", s.ReplayedResults)
	counter("store_errors_total", "WAL append/close failures.", s.StoreErrors)
	counter("durability_lost_total", "Times the daemon degraded to non-durable (lossy) mode.", s.DurabilityLost)
	counter("durability_restored_total", "Times the durability probe restored the WAL.", s.DurabilityRestored)
	counter("lossy_writes_total", "WAL records skipped while in lossy mode.", s.LossyWrites)
	counter("cluster_batches_dispatched_total", "Batches dispatched to cluster workers.", s.BatchesDispatched)
	counter("cluster_batches_redispatched_total", "Batches re-dispatched after a worker died or errored.", s.BatchesRedispatched)
	counter("cluster_batches_hedged_total", "Hedge batches raced against straggling workers.", s.BatchesHedged)
	counter("cluster_dispatch_retries_total", "Dispatch attempts retried after a failure.", s.DispatchRetries)
	counter("cluster_breaker_opens_total", "Per-worker circuit breakers opened.", s.BreakerOpens)
	counter("cluster_remote_configs_total", "Configurations executed by cluster workers.", s.RemoteConfigs)
	counter("cluster_heartbeats_total", "Worker register/heartbeat requests accepted.", s.HeartbeatsReceived)
	counter("cluster_worker_expiries_total", "Workers expired by the liveness sweeper.", s.WorkerExpiries)
	counter("cluster_workers_drained_total", "Draining workers released after their last in-flight batch.", s.WorkersDrained)
	labeled := func(name, help string, rows ...[2]any) {
		fmt.Fprintf(&sb, "# HELP %s_%s %s\n# TYPE %s_%s counter\n", prefix, name, help, prefix, name)
		for _, r := range rows {
			fmt.Fprintf(&sb, "%s_%s{codec=%q} %d\n", prefix, name, r[0], r[1])
		}
	}
	labeled("cluster_wire_batches_total", "Batches dispatched, by wire codec.",
		[2]any{"binary", s.WireBinaryBatches}, [2]any{"json", s.WireJSONBatches})
	labeled("cluster_wire_bytes_out_total", "Dispatch request bytes on the wire (post-compression), by codec.",
		[2]any{"binary", s.WireBinaryBytesOut}, [2]any{"json", s.WireJSONBytesOut})
	labeled("cluster_wire_bytes_in_total", "Dispatch response bytes on the wire (post-compression), by codec.",
		[2]any{"binary", s.WireBinaryBytesIn}, [2]any{"json", s.WireJSONBytesIn})
	counter("job_latency_observations_total", "Completed jobs with recorded latency.", s.LatencyCount)
	fmt.Fprintf(&sb, "# HELP %s_job_latency_ms Completed-job latency quantiles in milliseconds.\n# TYPE %s_job_latency_ms summary\n", prefix, prefix)
	fmt.Fprintf(&sb, "%s_job_latency_ms{quantile=\"0.5\"} %d\n", prefix, s.LatencyP50ms)
	fmt.Fprintf(&sb, "%s_job_latency_ms{quantile=\"0.99\"} %d\n", prefix, s.LatencyP99ms)
	counter("config_latency_observations_total", "Configurations with recorded execution latency.", s.ConfigLatencyCount)
	fmt.Fprintf(&sb, "# HELP %s_config_latency_ms Per-configuration latency quantiles in milliseconds.\n# TYPE %s_config_latency_ms summary\n", prefix, prefix)
	fmt.Fprintf(&sb, "%s_config_latency_ms{quantile=\"0.5\"} %d\n", prefix, s.ConfigLatencyP50ms)
	fmt.Fprintf(&sb, "%s_config_latency_ms{quantile=\"0.99\"} %d\n", prefix, s.ConfigLatencyP99ms)
	if len(s.Tenants) > 0 {
		names := make([]string, 0, len(s.Tenants))
		for name := range s.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		perTenant := func(name, kind, help string, v func(TenantSnapshot) int64) {
			fmt.Fprintf(&sb, "# HELP %s_%s %s\n# TYPE %s_%s %s\n", prefix, name, help, prefix, name, kind)
			for _, tn := range names {
				fmt.Fprintf(&sb, "%s_%s{tenant=%q} %d\n", prefix, name, tn, v(s.Tenants[tn]))
			}
		}
		perTenant("tenant_jobs_queued_total", "counter", "Jobs accepted, by tenant.",
			func(t TenantSnapshot) int64 { return t.Queued })
		perTenant("tenant_jobs_running", "gauge", "Jobs currently executing, by tenant.",
			func(t TenantSnapshot) int64 { return t.Running })
		perTenant("tenant_jobs_done_total", "counter", "Jobs reaching a terminal state, by tenant.",
			func(t TenantSnapshot) int64 { return t.Done })
		perTenant("tenant_jobs_shed_total", "counter", "Submissions shed by tenant quota (429), by tenant.",
			func(t TenantSnapshot) int64 { return t.Shed })
		perTenant("tenant_jobs_preempted_total", "counter", "Preemptions of running jobs, by tenant.",
			func(t TenantSnapshot) int64 { return t.Preempted })
	}
	return sb.String()
}
