package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServiceStatsCountersAndPercentiles(t *testing.T) {
	s := NewServiceStats()
	if p50, p99 := s.LatencyPercentiles(); p50 != 0 || p99 != 0 {
		t.Fatalf("empty percentiles = %d/%d", p50, p99)
	}
	s.JobsQueued.Add(3)
	s.JobsDone.Add(2)
	s.CacheHits.Add(1)
	s.CacheMisses.Add(1)
	for ms := 1; ms <= 100; ms++ {
		s.ObserveLatency(time.Duration(ms) * time.Millisecond)
	}
	s.ObserveLatency(-time.Second) // clock weirdness clamps to 0

	snap := s.Snapshot()
	if snap.JobsQueued != 3 || snap.JobsDone != 2 || snap.CacheHits != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.LatencyCount != 101 {
		t.Fatalf("latency count = %d, want 101", snap.LatencyCount)
	}
	if snap.LatencyP50ms < 49 || snap.LatencyP50ms > 51 {
		t.Fatalf("p50 = %d, want ~50", snap.LatencyP50ms)
	}
	if snap.LatencyP99ms < 98 || snap.LatencyP99ms > 100 {
		t.Fatalf("p99 = %d, want ~99", snap.LatencyP99ms)
	}
}

func TestServiceStatsConcurrent(t *testing.T) {
	s := NewServiceStats()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.JobsQueued.Add(1)
				s.ObserveLatency(time.Millisecond)
				s.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.JobsQueued != 800 || snap.LatencyCount != 800 {
		t.Fatalf("snapshot after concurrent updates = %+v", snap)
	}
}

func TestSnapshotRenderProm(t *testing.T) {
	s := NewServiceStats()
	s.JobsDone.Add(5)
	s.CacheHits.Add(2)
	s.JobsShed.Add(3)
	s.Coalesced.Add(4)
	s.ReplayedJobs.Add(1)
	s.ReplayedResults.Add(7)
	s.BatchesDispatched.Add(6)
	s.BatchesRedispatched.Add(2)
	s.RemoteConfigs.Add(24)
	s.HeartbeatsReceived.Add(9)
	s.WorkerExpiries.Add(1)
	s.ObserveLatency(40 * time.Millisecond)
	text := s.Snapshot().RenderProm("rescqd")
	for _, want := range []string{
		"rescqd_cluster_batches_dispatched_total 6",
		"rescqd_cluster_batches_redispatched_total 2",
		"rescqd_cluster_remote_configs_total 24",
		"rescqd_cluster_heartbeats_total 9",
		"rescqd_cluster_worker_expiries_total 1",
		"# TYPE rescqd_jobs_done_total counter",
		"rescqd_jobs_done_total 5",
		"rescqd_cache_hits_total 2",
		"rescqd_jobs_shed_total 3",
		"rescqd_coalesced_total 4",
		"rescqd_replayed_jobs_total 1",
		"rescqd_replayed_results_total 7",
		"rescqd_store_errors_total 0",
		"# TYPE rescqd_jobs_running gauge",
		`rescqd_job_latency_ms{quantile="0.5"} 40`,
		`rescqd_job_latency_ms{quantile="0.99"} 40`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered metrics missing %q:\n%s", want, text)
		}
	}
}

// TestSnapshotJSONCarriesDurabilityCounters: the JSON twin of the
// Prometheus rendering exposes the replay/coalesce/shed counters too.
func TestSnapshotJSONCarriesDurabilityCounters(t *testing.T) {
	s := NewServiceStats()
	s.JobsShed.Add(2)
	s.Coalesced.Add(3)
	s.ReplayedJobs.Add(1)
	s.BatchesRedispatched.Add(4)
	data, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"jobs_shed":2`, `"coalesced":3`, `"replayed_jobs":1`, `"replayed_results":0`, `"store_errors":0`,
		`"batches_dispatched":0`, `"batches_redispatched":4`, `"remote_configs":0`, `"heartbeats_received":0`, `"worker_expiries":0`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("snapshot JSON missing %s:\n%s", want, data)
		}
	}
}
