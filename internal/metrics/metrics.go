// Package metrics provides the small statistics and rendering toolkit used
// by the experiment harness: integer histograms (Figure 5), geometric
// means (Figure 10's summary), normalization, and fixed-width ASCII tables
// and series so every paper table/figure can be printed from a terminal.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a frequency count over non-negative integer values (gate
// latencies in cycles).
type Histogram struct {
	counts map[int]int
	n      int
	sum    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add records one observation.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.n++
	h.sum += int64(v)
}

// AddAll records a batch of observations.
func (h *Histogram) AddAll(vs []int) {
	for _, v := range vs {
		h.Add(v)
	}
}

// N returns the observation count.
func (h *Histogram) N() int { return h.n }

// Mean returns the arithmetic mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Count returns the frequency of value v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Fraction returns the share of observations equal to v.
func (h *Histogram) Fraction(v int) float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.n)
}

// FractionAtMost returns the share of observations <= v.
func (h *Histogram) FractionAtMost(v int) float64 {
	if h.n == 0 {
		return 0
	}
	c := 0
	for val, cnt := range h.counts {
		if val <= v {
			c += cnt
		}
	}
	return float64(c) / float64(h.n)
}

// Percentile returns the smallest value v such that at least p (0..1) of
// the observations are <= v.
func (h *Histogram) Percentile(p float64) int {
	if h.n == 0 {
		return 0
	}
	keys := h.sortedKeys()
	target := int(math.Ceil(p * float64(h.n)))
	if target < 1 {
		target = 1
	}
	acc := 0
	for _, k := range keys {
		acc += h.counts[k]
		if acc >= target {
			return k
		}
	}
	return keys[len(keys)-1]
}

func (h *Histogram) sortedKeys() []int {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Render draws the histogram as ASCII bars, bucketing values above maxBin
// into a single overflow row.
func (h *Histogram) Render(title string, maxBin, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (n=%d, mean=%.2f cycles)\n", title, h.n, h.Mean())
	if h.n == 0 {
		return sb.String()
	}
	binned := make(map[int]int)
	overflow := 0
	maxCount := 0
	for v, c := range h.counts {
		if v > maxBin {
			overflow += c
		} else {
			binned[v] += c
		}
	}
	for _, c := range binned {
		if c > maxCount {
			maxCount = c
		}
	}
	if overflow > maxCount {
		maxCount = overflow
	}
	bar := func(c int) string {
		if maxCount == 0 {
			return ""
		}
		w := c * width / maxCount
		return strings.Repeat("#", w)
	}
	for v := 0; v <= maxBin; v++ {
		if c, ok := binned[v]; ok {
			fmt.Fprintf(&sb, "  %4d | %-*s %d (%.1f%%)\n", v, width, bar(c), c, 100*float64(c)/float64(h.n))
		}
	}
	if overflow > 0 {
		fmt.Fprintf(&sb, "  >%3d | %-*s %d (%.1f%%)\n", maxBin, width, bar(overflow), overflow, 100*float64(overflow)/float64(h.n))
	}
	return sb.String()
}

// GeoMean returns the geometric mean of positive values; it panics on an
// empty slice and ignores non-positive entries are NOT allowed (panic), so
// callers normalize first.
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		panic("metrics: geomean of nothing")
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			panic("metrics: geomean of non-positive value")
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// Normalize divides every value by base.
func Normalize(vs []float64, base float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = v / base
	}
	return out
}

// Table renders rows as a fixed-width ASCII table with a header.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Series is a labeled sequence of (x, y) points — one line of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// RenderSeries prints several series in a compact aligned listing, one
// block per X value, suitable for regenerating the paper's line plots.
func RenderSeries(title string, xName string, series []Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	t := NewTable(append([]string{xName}, labels(series)...)...)
	if len(series) == 0 {
		return sb.String()
	}
	for i := range series[0].X {
		cells := make([]any, 0, len(series)+1)
		cells = append(cells, series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				cells = append(cells, s.Y[i])
			} else {
				cells = append(cells, "-")
			}
		}
		t.Row(cells...)
	}
	sb.WriteString(t.String())
	return sb.String()
}

func labels(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Label
	}
	return out
}
