package metrics

import (
	"fmt"
	"io"
)

// PromLine writes one complete metric in the Prometheus text exposition
// format — the HELP and TYPE comments followed by the sample line — for
// handlers that render ad-hoc gauges and counters outside a Snapshot
// (kind is "gauge" or "counter").
func PromLine(w io.Writer, kind, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, kind, name, v)
}
