package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	h.AddAll([]int{2, 2, 2, 5, 8})
	if h.N() != 5 {
		t.Errorf("N = %d", h.N())
	}
	if got := h.Mean(); math.Abs(got-3.8) > 1e-12 {
		t.Errorf("Mean = %v, want 3.8", got)
	}
	if h.Count(2) != 3 || h.Count(5) != 1 || h.Count(3) != 0 {
		t.Error("counts wrong")
	}
	if got := h.Fraction(2); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Fraction(2) = %v", got)
	}
	if got := h.FractionAtMost(5); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("FractionAtMost(5) = %v", got)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Add(i)
	}
	if p := h.Percentile(0.5); p != 50 {
		t.Errorf("p50 = %d", p)
	}
	if p := h.Percentile(0.99); p != 99 {
		t.Errorf("p99 = %d", p)
	}
	if p := h.Percentile(1.0); p != 100 {
		t.Errorf("p100 = %d", p)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Percentile(0.5) != 0 || h.Fraction(1) != 0 {
		t.Error("empty histogram should return zeros")
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram()
	h.AddAll([]int{2, 2, 5, 8, 40})
	s := h.Render("cnot latency", 10, 20)
	if !strings.Contains(s, "n=5") {
		t.Errorf("render missing count: %s", s)
	}
	if !strings.Contains(s, ">") {
		t.Errorf("render missing overflow bucket: %s", s)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v", g)
	}
	if g := GeoMean([]float64{2, 2, 2}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean(2,2,2) = %v", g)
	}
}

func TestGeoMeanPanics(t *testing.T) {
	for _, vs := range [][]float64{nil, {0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GeoMean(%v) should panic", vs)
				}
			}()
			GeoMean(vs)
		}()
	}
}

// Property: geomean lies between min and max and is scale-equivariant.
func TestGeoMeanProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vs := make([]float64, len(raw))
		lo, hi := math.Inf(1), 0.0
		for i, r := range raw {
			vs[i] = 1 + float64(r)
			if vs[i] < lo {
				lo = vs[i]
			}
			if vs[i] > hi {
				hi = vs[i]
			}
		}
		g := GeoMean(vs)
		if g < lo-1e-9 || g > hi+1e-9 {
			return false
		}
		scaled := GeoMean(Normalize(vs, 2))
		return math.Abs(scaled-g/2) < 1e-9*g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("Normalize = %v", out)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("bench", "cycles", "speedup")
	tb.Row("vqe_n13", 153, 2.23)
	tb.Row("gcm_n13", 2474, 1.8)
	s := tb.String()
	if !strings.Contains(s, "vqe_n13") || !strings.Contains(s, "speedup") {
		t.Errorf("table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Errorf("table should have 4 lines, got %d", len(lines))
	}
}

func TestRenderSeries(t *testing.T) {
	s := RenderSeries("Figure 11", "d", []Series{
		{Label: "greedy", X: []float64{5, 7, 9}, Y: []float64{100, 90, 80}},
		{Label: "rescq", X: []float64{5, 7, 9}, Y: []float64{50, 45, 40}},
	})
	if !strings.Contains(s, "greedy") || !strings.Contains(s, "rescq") {
		t.Errorf("series render missing labels:\n%s", s)
	}
	if !strings.Contains(s, "Figure 11") {
		t.Errorf("series render missing title:\n%s", s)
	}
}
