package graph

import (
	"math"
	"math/rand"
	"testing"
)

// TestIncrementalMatchesKruskalOnActivitySequences drives a maintained
// tree through randomized activity-weight snapshots — quantized weights in
// [0,1] plus a small deterministic per-edge jitter, exactly the shape the
// MST pipeline feeds it — and checks after every snapshot that the
// incrementally maintained forest matches a from-scratch Kruskal: same
// total weight, and same minimax (bottleneck) path value for sampled
// vertex pairs.
func TestIncrementalMatchesKruskalOnActivitySequences(t *testing.T) {
	const (
		rows, cols = 8, 11
		snapshots  = 40
		jitter     = 0.004
	)
	rng := rand.New(rand.NewSource(7))
	g := GridGraph(rows, cols, 0)
	eps := make([]float64, g.NumEdges())
	for e := range eps {
		eps[e] = jitter * rng.Float64()
		g.SetWeight(e, eps[e])
	}
	inc := Kruskal(g)
	n := g.NumVertices()
	for snap := 0; snap < snapshots; snap++ {
		// Change a random subset of edges to new quantized activities, as
		// one pipeline snapshot would.
		k := 1 + rng.Intn(g.NumEdges()/2)
		for i := 0; i < k; i++ {
			e := rng.Intn(g.NumEdges())
			w := float64(rng.Intn(101))/100 + eps[e]
			inc.UpdateWeight(e, w)
		}
		full := Kruskal(g)
		if iw, fw := inc.TotalWeight(), full.TotalWeight(); math.Abs(iw-fw) > 1e-9 {
			t.Fatalf("snapshot %d: incremental total weight %v != full Kruskal %v", snap, iw, fw)
		}
		if inc.NumTreeEdges() != full.NumTreeEdges() {
			t.Fatalf("snapshot %d: tree sizes differ: %d vs %d", snap, inc.NumTreeEdges(), full.NumTreeEdges())
		}
		for trial := 0; trial < 25; trial++ {
			u, v := rng.Intn(n), rng.Intn(n)
			bi, oki := inc.Bottleneck(u, v)
			bf, okf := full.Bottleneck(u, v)
			if oki != okf {
				t.Fatalf("snapshot %d: connectivity(%d,%d) differs: %v vs %v", snap, u, v, oki, okf)
			}
			if oki && math.Abs(bi-bf) > 1e-12 {
				t.Fatalf("snapshot %d: bottleneck(%d,%d) %v != %v", snap, u, v, bi, bf)
			}
		}
	}
}

// TestKruskalIntoReuseMatchesFresh checks that reusing the tree, DSU and
// order buffers across recomputes yields exactly the tree a fresh Kruskal
// builds.
func TestKruskalIntoReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := GridGraph(6, 9, 0)
	reused := &Tree{}
	dsu := NewDSU(g.NumVertices())
	order := make([]int32, g.NumEdges())
	for round := 0; round < 10; round++ {
		for e := 0; e < g.NumEdges(); e++ {
			g.SetWeight(e, rng.Float64())
		}
		KruskalInto(g, reused, dsu, order)
		fresh := Kruskal(g)
		if reused.NumTreeEdges() != fresh.NumTreeEdges() {
			t.Fatalf("round %d: edge counts differ", round)
		}
		for e := 0; e < g.NumEdges(); e++ {
			if reused.Contains(e) != fresh.Contains(e) {
				t.Fatalf("round %d: edge %d membership differs", round, e)
			}
		}
	}
}

// TestPathIntoMatchesSearch cross-checks the rooted-index path queries
// against naive expectations on a small maintained tree.
func TestPathIntoMatchesSearch(t *testing.T) {
	g := GridGraph(5, 5, 1)
	tr := Kruskal(g)
	n := g.NumVertices()
	var buf []int
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			buf = tr.PathInto(buf, u, v)
			p2 := tr.Path(u, v)
			if len(buf) != len(p2) {
				t.Fatalf("PathInto/Path length mismatch for (%d,%d)", u, v)
			}
			for i := range buf {
				if buf[i] != p2[i] {
					t.Fatalf("PathInto/Path differ for (%d,%d): %v vs %v", u, v, buf, p2)
				}
			}
			if buf[0] != u || buf[len(buf)-1] != v {
				t.Fatalf("path endpoints wrong for (%d,%d): %v", u, v, buf)
			}
			edges, ok := tr.PathEdges(u, v)
			if !ok || len(edges) != len(buf)-1 {
				t.Fatalf("PathEdges inconsistent for (%d,%d)", u, v)
			}
		}
	}
}
