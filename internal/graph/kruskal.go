package graph

import "math"

// Kruskal computes a minimum spanning forest of g and returns it as a Tree.
// Ties are broken by edge ID so the result is deterministic.
func Kruskal(g *Graph) *Tree {
	return KruskalInto(g, nil, nil, nil)
}

// KruskalInto computes a minimum spanning forest of g into t, reusing t's
// storage, the caller's DSU and edge-order buffer; any of them may be nil,
// in which case fresh ones are allocated. It returns t (or the freshly
// allocated tree when t was nil).
//
// Unlike a comparator-based sort, the edge order comes from a stable LSD
// radix sort over the IEEE-754 bit patterns of the weights, so equal
// weights keep their edge-ID order and the whole recompute is O(E) with no
// per-call allocations once the scratch buffers are warm. The tree
// adjacency is laid out as sub-slices of one flat CSR-style backing array.
func KruskalInto(g *Graph, t *Tree, dsu *DSU, order []int32) *Tree {
	nE := len(g.edges)
	if t == nil {
		t = &Tree{}
	}
	t.g = g
	if cap(t.inTree) >= nE {
		t.inTree = t.inTree[:nE]
		for i := range t.inTree {
			t.inTree[i] = false
		}
	} else {
		t.inTree = make([]bool, nE)
	}
	if cap(t.adj) >= g.n {
		t.adj = t.adj[:g.n]
	} else {
		t.adj = make([][]int32, g.n)
	}
	if dsu == nil {
		dsu = NewDSU(g.n)
	} else {
		dsu.Reset(g.n)
	}
	if cap(order) >= nE {
		order = order[:nE]
	} else {
		order = make([]int32, nE)
	}
	for i := range order {
		order[i] = int32(i)
	}
	if cap(t.keys) >= nE {
		t.keys = t.keys[:nE]
	} else {
		t.keys = make([]uint64, nE)
	}
	for i := range g.edges {
		t.keys[i] = floatKey(g.edges[i].W)
	}
	if cap(t.orderTmp) >= nE {
		t.orderTmp = t.orderTmp[:nE]
	} else {
		t.orderTmp = make([]int32, nE)
	}
	sorted := radixSortEdges(t.keys, order, t.orderTmp)

	chosen := t.treeEdges[:0]
	want := g.n - 1
	for _, id := range sorted {
		e := g.edges[id]
		if dsu.Union(e.U, e.V) {
			t.inTree[id] = true
			chosen = append(chosen, id)
			if len(chosen) == want {
				break
			}
		}
	}
	t.treeEdges = chosen
	t.numEdges = len(chosen)
	t.rebuildAdj(chosen)
	return t
}

// floatKey maps a float64 to a uint64 whose unsigned order matches the
// float order (the standard sign-flip trick, so negative weights sort
// correctly too).
func floatKey(f float64) uint64 {
	b := math.Float64bits(f)
	if b>>63 != 0 {
		return ^b
	}
	return b | 1<<63
}

// radixSortEdges stably sorts order (a permutation of edge IDs) ascending
// by keys[id], using LSD counting passes over 8-bit digits with tmp as
// same-length scratch. Passes whose digit is constant across all keys are
// skipped — on activity weights quantized to [0,1] plus a bounded jitter
// the high exponent bytes rarely vary, so most inputs need only a few
// passes. It returns the sorted slice (one of order or tmp).
func radixSortEdges(keys []uint64, order, tmp []int32) []int32 {
	if len(order) < 2 {
		return order
	}
	var counts [256]int32
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for _, id := range order {
			counts[byte(keys[id]>>shift)]++
		}
		if counts[byte(keys[order[0]]>>shift)] == int32(len(order)) {
			continue
		}
		sum := int32(0)
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for _, id := range order {
			d := byte(keys[id] >> shift)
			tmp[counts[d]] = id
			counts[d]++
		}
		order, tmp = tmp, order
	}
	return order
}
