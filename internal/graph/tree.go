package graph

// Tree is a spanning forest of a Graph, maintained as a minimum spanning
// forest under single-edge weight updates (paper section 5.4.1's two cases).
// It supports path queries between vertices in the same component; by the
// MST cycle/cut properties these paths are minimax (bottleneck-optimal).
type Tree struct {
	g        *Graph
	inTree   []bool    // edge ID -> membership
	adj      [][]int32 // vertex -> incident tree edge IDs
	numEdges int

	// Reusable scratch state for searches, using epoch stamping so no
	// per-query clearing or allocation is needed.
	epoch      int32
	mark       []int32 // vertex -> epoch when last visited (pathSearch)
	markA      []int32 // side A stamp (smallerSide)
	markB      []int32 // side B stamp (smallerSide)
	parentEdge []int32
	stack      []int

	// Reusable scratch for KruskalInto/CloneInto: the adjacency lists above
	// are sub-slices of the flat CSR-style adjBuf, and the remaining
	// buffers avoid per-recompute allocations.
	adjBuf    []int32
	deg       []int32
	treeEdges []int32 // edge IDs chosen by the last KruskalInto
	keys      []uint64
	orderTmp  []int32

	// Rooted path index, built lazily on the first path query and
	// invalidated by any structural change. Published (read-only) trees
	// pay one O(n) build and then answer every path query in O(path
	// length) instead of an O(component) search.
	rooted    bool
	parentOf  []int32 // vertex -> tree edge toward the root, -1 at a root
	parentVtx []int32 // vertex -> parent vertex, -1 at a root
	depthOf   []int32
	compOf    []int32 // vertex -> component id
}

// ensureRooted (re)builds the rooted index: one DFS per component
// assigning parent edges, depths and component ids.
func (t *Tree) ensureRooted() {
	if t.rooted {
		return
	}
	n := t.g.n
	if cap(t.parentOf) >= n {
		t.parentOf, t.parentVtx = t.parentOf[:n], t.parentVtx[:n]
		t.depthOf, t.compOf = t.depthOf[:n], t.compOf[:n]
	} else {
		t.parentOf = make([]int32, n)
		t.parentVtx = make([]int32, n)
		t.depthOf = make([]int32, n)
		t.compOf = make([]int32, n)
	}
	for i := range t.compOf {
		t.compOf[i] = -1
	}
	stack := t.stack[:0]
	comp := int32(0)
	for r := 0; r < n; r++ {
		if t.compOf[r] >= 0 {
			continue
		}
		t.parentOf[r] = -1
		t.parentVtx[r] = -1
		t.depthOf[r] = 0
		t.compOf[r] = comp
		stack = append(stack, r)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, id := range t.adj[x] {
				y := t.g.Other(int(id), x)
				if t.compOf[y] >= 0 {
					continue
				}
				t.parentOf[y] = id
				t.parentVtx[y] = int32(x)
				t.depthOf[y] = t.depthOf[x] + 1
				t.compOf[y] = comp
				stack = append(stack, y)
			}
		}
		comp++
	}
	t.stack = stack
	t.rooted = true
}

// rebuildAdj lays the forest adjacency out as sub-slices of one flat
// CSR-style backing array: count degrees, slice per-vertex ranges, then
// scatter. Each per-vertex slice is capacity-capped so later incremental
// appends (UpdateWeight swaps) copy out instead of clobbering a
// neighbour's range.
func (t *Tree) rebuildAdj(chosen []int32) {
	t.rooted = false
	n := t.g.n
	if cap(t.deg) >= n {
		t.deg = t.deg[:n]
		for i := range t.deg {
			t.deg[i] = 0
		}
	} else {
		t.deg = make([]int32, n)
	}
	for _, id := range chosen {
		e := t.g.edges[id]
		t.deg[e.U]++
		t.deg[e.V]++
	}
	need := 2 * len(chosen)
	if cap(t.adjBuf) >= need {
		t.adjBuf = t.adjBuf[:need]
	} else {
		t.adjBuf = make([]int32, need)
	}
	off := int32(0)
	for v := 0; v < n; v++ {
		end := off + t.deg[v]
		t.adj[v] = t.adjBuf[off:off:end]
		off = end
	}
	for _, id := range chosen {
		e := t.g.edges[id]
		t.adj[e.U] = append(t.adj[e.U], id)
		t.adj[e.V] = append(t.adj[e.V], id)
	}
}

// CloneInto copies t's forest structure into dst (sharing t's underlying
// graph), reusing dst's storage where possible, and returns dst (or a
// fresh tree when dst is nil). The MST pipeline uses it to freeze a
// snapshot of an incrementally maintained tree for delayed publication.
func (t *Tree) CloneInto(dst *Tree) *Tree {
	if dst == nil {
		dst = &Tree{}
	}
	dst.g = t.g
	dst.rooted = false
	dst.numEdges = t.numEdges
	dst.inTree = append(dst.inTree[:0], t.inTree...)
	if cap(dst.adj) >= t.g.n {
		dst.adj = dst.adj[:t.g.n]
	} else {
		dst.adj = make([][]int32, t.g.n)
	}
	total := 0
	for _, a := range t.adj {
		total += len(a)
	}
	if cap(dst.adjBuf) >= total {
		dst.adjBuf = dst.adjBuf[:total]
	} else {
		dst.adjBuf = make([]int32, total)
	}
	off := 0
	for v, a := range t.adj {
		end := off + copy(dst.adjBuf[off:off+len(a)], a)
		dst.adj[v] = dst.adjBuf[off:end:end]
		off = end
	}
	return dst
}

// scratch lazily sizes the reusable buffers and advances the epoch.
func (t *Tree) scratch() {
	if len(t.mark) != t.g.n {
		t.mark = make([]int32, t.g.n)
		t.markA = make([]int32, t.g.n)
		t.markB = make([]int32, t.g.n)
		t.parentEdge = make([]int32, t.g.n)
	}
	t.epoch++
}

func (t *Tree) addTreeEdge(id int) {
	e := t.g.edges[id]
	t.inTree[id] = true
	t.adj[e.U] = append(t.adj[e.U], int32(id))
	t.adj[e.V] = append(t.adj[e.V], int32(id))
	t.numEdges++
	t.rooted = false
}

func (t *Tree) removeTreeEdge(id int) {
	e := t.g.edges[id]
	t.inTree[id] = false
	t.adj[e.U] = removeID(t.adj[e.U], int32(id))
	t.adj[e.V] = removeID(t.adj[e.V], int32(id))
	t.numEdges--
	t.rooted = false
}

func removeID(s []int32, id int32) []int32 {
	for i, v := range s {
		if v == id {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// Graph returns the underlying graph.
func (t *Tree) Graph() *Graph { return t.g }

// Contains reports whether edge id is in the tree.
func (t *Tree) Contains(id int) bool { return t.inTree[id] }

// NumTreeEdges returns the number of edges in the forest.
func (t *Tree) NumTreeEdges() int { return t.numEdges }

// TotalWeight returns the sum of tree edge weights.
func (t *Tree) TotalWeight() float64 {
	var w float64
	for id, in := range t.inTree {
		if in {
			w += t.g.edges[id].W
		}
	}
	return w
}

// Path returns the vertex sequence of the unique tree path from u to v
// (inclusive of both endpoints), or nil if they are in different
// components. Path(u, u) returns [u].
func (t *Tree) Path(u, v int) []int {
	return t.PathInto(nil, u, v)
}

// PathInto is Path reusing buf's storage for the result; it returns nil
// when u and v are disconnected. Queries run over the rooted index: both
// endpoints climb to their lowest common ancestor, so the cost is
// proportional to the path length, not the component size.
func (t *Tree) PathInto(buf []int, u, v int) []int {
	buf = buf[:0]
	if u == v {
		return append(buf, u)
	}
	t.ensureRooted()
	if t.compOf[u] != t.compOf[v] {
		return nil
	}
	du, dv := t.depthOf[u], t.depthOf[v]
	buf = append(buf, u)
	for du > dv {
		u = int(t.parentVtx[u])
		buf = append(buf, u)
		du--
	}
	vside := t.stack[:0]
	for dv > du {
		vside = append(vside, v)
		v = int(t.parentVtx[v])
		dv--
	}
	for u != v {
		u = int(t.parentVtx[u])
		buf = append(buf, u)
		vside = append(vside, v)
		v = int(t.parentVtx[v])
	}
	for i := len(vside) - 1; i >= 0; i-- {
		buf = append(buf, vside[i])
	}
	t.stack = vside[:0]
	return buf
}

// PathEdges returns the tree edge IDs along the unique path from u to v, or
// nil,false if disconnected.
func (t *Tree) PathEdges(u, v int) ([]int32, bool) {
	if u == v {
		return []int32{}, true
	}
	t.ensureRooted()
	if t.compOf[u] != t.compOf[v] {
		return nil, false
	}
	var edges []int32
	du, dv := t.depthOf[u], t.depthOf[v]
	for du > dv {
		edges = append(edges, t.parentOf[u])
		u = int(t.parentVtx[u])
		du--
	}
	var vEdges []int32
	for dv > du {
		vEdges = append(vEdges, t.parentOf[v])
		v = int(t.parentVtx[v])
		dv--
	}
	for u != v {
		edges = append(edges, t.parentOf[u])
		u = int(t.parentVtx[u])
		vEdges = append(vEdges, t.parentOf[v])
		v = int(t.parentVtx[v])
	}
	for i := len(vEdges) - 1; i >= 0; i-- {
		edges = append(edges, vEdges[i])
	}
	return edges, true
}

// pathSearch runs an iterative DFS from u to v over tree edges and returns
// the edge IDs from v back toward u.
func (t *Tree) pathSearch(u, v int) ([]int32, bool) {
	if u == v {
		return []int32{}, true
	}
	t.scratch()
	t.mark[u] = t.epoch
	stack := append(t.stack[:0], u)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range t.adj[x] {
			y := t.g.Other(int(id), x)
			if t.mark[y] == t.epoch {
				continue
			}
			t.mark[y] = t.epoch
			t.parentEdge[y] = id
			if y == v {
				t.stack = stack
				var edges []int32
				cur := y
				for cur != u {
					id := t.parentEdge[cur]
					edges = append(edges, id)
					cur = t.g.Other(int(id), cur)
				}
				return edges, true
			}
			stack = append(stack, y)
		}
	}
	t.stack = stack
	return nil, false
}

// Bottleneck returns the maximum edge weight on the tree path between u and
// v, and false if they are disconnected.
func (t *Tree) Bottleneck(u, v int) (float64, bool) {
	if u == v {
		return 0, true
	}
	t.ensureRooted()
	if t.compOf[u] != t.compOf[v] {
		return 0, false
	}
	var m float64
	climb := func(x int) int {
		if w := t.g.edges[t.parentOf[x]].W; w > m {
			m = w
		}
		return int(t.parentVtx[x])
	}
	du, dv := t.depthOf[u], t.depthOf[v]
	for du > dv {
		u = climb(u)
		du--
	}
	for dv > du {
		v = climb(v)
		dv--
	}
	for u != v {
		u = climb(u)
		v = climb(v)
	}
	return m, true
}

// SameComponent reports whether u and v are connected in the forest.
func (t *Tree) SameComponent(u, v int) bool {
	if u == v {
		return true
	}
	t.ensureRooted()
	return t.compOf[u] == t.compOf[v]
}

// UpdateWeight changes the weight of edge id to w and restores the minimum
// spanning forest invariant. The two non-trivial cases are exactly the ones
// the paper analyzes in section 5.4.1:
//
//  1. the edge is NOT in the tree and its weight decreased: insert it,
//     which closes a unique cycle, and evict the maximum-weight edge on
//     that cycle;
//  2. the edge IS in the tree and its weight increased: removing it splits
//     the component in two, and the minimum-weight crossing edge (possibly
//     the same edge) reconnects them.
//
// The other two cases (tree edge decreasing, non-tree edge increasing)
// cannot violate the invariant and only store the new weight.
func (t *Tree) UpdateWeight(id int, w float64) {
	old := t.g.edges[id].W
	t.g.edges[id].W = w
	switch {
	case !t.inTree[id] && w < old:
		t.maybeSwapIn(id)
	case t.inTree[id] && w > old:
		t.maybeSwapOut(id)
	}
}

// maybeSwapIn handles case 1: non-tree edge got cheaper.
func (t *Tree) maybeSwapIn(id int) {
	e := t.g.edges[id]
	cycle, ok := t.pathSearch(e.U, e.V)
	if !ok {
		// The edge connects two components: always add it.
		t.addTreeEdge(id)
		return
	}
	// Find the max-weight edge on the unique cycle formed by adding id.
	maxID, maxW := -1, e.W
	for _, cid := range cycle {
		if cw := t.g.edges[cid].W; cw > maxW {
			maxW, maxID = cw, int(cid)
		}
	}
	if maxID >= 0 {
		t.removeTreeEdge(maxID)
		t.addTreeEdge(id)
	}
}

// maybeSwapOut handles case 2: tree edge got more expensive. Removing the
// edge cuts its component in two; the replacement is the minimum-weight
// crossing edge. Only the smaller side's incident edges are scanned, which
// keeps the update near the paper's O(max(rows, cols)) bound on grid
// graphs when the cut splits off a small subtree (the common case).
func (t *Tree) maybeSwapOut(id int) {
	e := t.g.edges[id]
	t.removeTreeEdge(id)
	side, epoch, members := t.smallerSide(e.U, e.V)
	// Find the minimum-weight edge leaving the smaller side, including id
	// itself (it may remain the best reconnection).
	bestID, bestW := id, e.W
	for _, x := range members {
		for _, cid := range t.g.adj[x] {
			c := int(cid)
			if t.inTree[c] || c == id {
				continue
			}
			ce := t.g.edges[c]
			if (side[ce.U] == epoch) != (side[ce.V] == epoch) && ce.W < bestW {
				bestID, bestW = c, ce.W
			}
		}
	}
	t.addTreeEdge(bestID)
}

// smallerSide runs two tree BFSs in lockstep from u and v (which were just
// disconnected) and returns the membership mask and vertex list of the
// side that exhausts first — the smaller component — in time proportional
// to its size.
func (t *Tree) smallerSide(u, v int) ([]int32, int32, []int) {
	t.scratch()
	type walker struct {
		seen  []int32
		q     []int // BFS queue; q[:heads] already expanded
		heads int
	}
	a := &walker{seen: t.markA, q: []int{u}}
	b := &walker{seen: t.markB, q: []int{v}}
	a.seen[u] = t.epoch
	b.seen[v] = t.epoch
	step := func(w *walker) bool { // returns false when exhausted
		if w.heads >= len(w.q) {
			return false
		}
		x := w.q[w.heads]
		w.heads++
		for _, tid := range t.adj[x] {
			y := t.g.Other(int(tid), x)
			if w.seen[y] != t.epoch {
				w.seen[y] = t.epoch
				w.q = append(w.q, y)
			}
		}
		return true
	}
	for {
		if !step(a) {
			return a.seen, t.epoch, a.q
		}
		if !step(b) {
			return b.seen, t.epoch, b.q
		}
	}
}
