package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDSUBasics(t *testing.T) {
	d := NewDSU(5)
	if d.Same(0, 1) {
		t.Error("fresh DSU should have disjoint sets")
	}
	if !d.Union(0, 1) {
		t.Error("first union should merge")
	}
	if d.Union(1, 0) {
		t.Error("second union should be a no-op")
	}
	d.Union(2, 3)
	d.Union(0, 3)
	if !d.Same(1, 2) {
		t.Error("1 and 2 should be connected after unions")
	}
	if d.Same(1, 4) {
		t.Error("4 should remain isolated")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(3)
	for _, fn := range []func(){
		func() { g.AddEdge(0, 0, 1) },
		func() { g.AddEdge(-1, 1, 1) },
		func() { g.AddEdge(0, 3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestConnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	if g.Connected() {
		t.Error("vertex 3 is isolated; graph should not be connected")
	}
	g.AddEdge(2, 3, 1)
	if !g.Connected() {
		t.Error("graph should now be connected")
	}
}

// squareGraph builds the small example used in several tests:
//
//	0 --1.0-- 1
//	|         |
//	4.0      2.0
//	|         |
//	3 --3.0-- 2
func squareGraph() (*Graph, [4]int) {
	g := NewGraph(4)
	var ids [4]int
	ids[0] = g.AddEdge(0, 1, 1.0)
	ids[1] = g.AddEdge(1, 2, 2.0)
	ids[2] = g.AddEdge(2, 3, 3.0)
	ids[3] = g.AddEdge(3, 0, 4.0)
	return g, ids
}

func TestKruskalSquare(t *testing.T) {
	g, ids := squareGraph()
	tr := Kruskal(g)
	if tr.NumTreeEdges() != 3 {
		t.Fatalf("tree edges = %d, want 3", tr.NumTreeEdges())
	}
	if tr.Contains(ids[3]) {
		t.Error("max-weight cycle edge (w=4) should be excluded")
	}
	if w := tr.TotalWeight(); w != 6.0 {
		t.Errorf("total weight = %v, want 6", w)
	}
}

func TestTreePath(t *testing.T) {
	g, _ := squareGraph()
	tr := Kruskal(g)
	p := tr.Path(0, 3)
	want := []int{0, 1, 2, 3}
	if len(p) != len(want) {
		t.Fatalf("Path = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Path = %v, want %v", p, want)
		}
	}
	if b, ok := tr.Bottleneck(0, 3); !ok || b != 3.0 {
		t.Errorf("Bottleneck(0,3) = %v,%v, want 3,true", b, ok)
	}
	if p := tr.Path(2, 2); len(p) != 1 || p[0] != 2 {
		t.Errorf("Path(2,2) = %v, want [2]", p)
	}
}

func TestPathDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	tr := Kruskal(g)
	if p := tr.Path(0, 3); p != nil {
		t.Errorf("Path across components = %v, want nil", p)
	}
	if tr.SameComponent(0, 2) {
		t.Error("0 and 2 should be in different components")
	}
	if !tr.SameComponent(2, 3) {
		t.Error("2 and 3 should be in the same component")
	}
}

func TestUpdateWeightSwapIn(t *testing.T) {
	g, ids := squareGraph()
	tr := Kruskal(g)
	// Case 1: non-tree edge (3-0, w=4) becomes cheap; it should displace
	// the max edge of the cycle (2-3, w=3).
	tr.UpdateWeight(ids[3], 0.5)
	if !tr.Contains(ids[3]) {
		t.Error("cheapened edge should have joined the tree")
	}
	if tr.Contains(ids[2]) {
		t.Error("edge 2-3 (now the cycle max) should have left the tree")
	}
	assertMST(t, g, tr)
}

func TestUpdateWeightSwapOut(t *testing.T) {
	g, ids := squareGraph()
	tr := Kruskal(g)
	// Case 2: tree edge (1-2, w=2) becomes expensive; the cut should be
	// reconnected by 3-0 (w=4) ... which is cheaper than the new weight 10.
	tr.UpdateWeight(ids[1], 10)
	if tr.Contains(ids[1]) {
		t.Error("expensive tree edge should have been swapped out")
	}
	if !tr.Contains(ids[3]) {
		t.Error("edge 3-0 should have been swapped in")
	}
	assertMST(t, g, tr)
}

func TestUpdateWeightNoOpCases(t *testing.T) {
	g, ids := squareGraph()
	tr := Kruskal(g)
	// Tree edge decreasing and non-tree edge increasing never change the
	// tree topology.
	before := tr.TotalWeight()
	tr.UpdateWeight(ids[0], 0.1) // tree edge cheaper
	if !tr.Contains(ids[0]) {
		t.Error("tree edge should remain after decrease")
	}
	tr.UpdateWeight(ids[3], 100) // non-tree edge pricier
	if tr.Contains(ids[3]) {
		t.Error("non-tree edge should remain outside after increase")
	}
	_ = before
	assertMST(t, g, tr)
}

func TestUpdateWeightKeepsTreeEdgeWhenStillBest(t *testing.T) {
	g, ids := squareGraph()
	tr := Kruskal(g)
	// Tree edge 1-2 rises to 3.5, still cheaper than the only crossing
	// alternative (3-0, w=4): it must stay in the tree.
	tr.UpdateWeight(ids[1], 3.5)
	if !tr.Contains(ids[1]) {
		t.Error("tree edge should be retained when still the cheapest cut edge")
	}
	assertMST(t, g, tr)
}

// assertMST verifies tr is a minimum spanning forest of g by comparing the
// total weight with a fresh Kruskal run, and checks the edge count matches
// n - #components.
func assertMST(t *testing.T, g *Graph, tr *Tree) {
	t.Helper()
	fresh := Kruskal(g)
	if got, want := tr.TotalWeight(), fresh.TotalWeight(); !almostEq(got, want) {
		t.Errorf("tree weight %v differs from true MST weight %v", got, want)
	}
	if tr.NumTreeEdges() != fresh.NumTreeEdges() {
		t.Errorf("tree has %d edges, fresh MST has %d", tr.NumTreeEdges(), fresh.NumTreeEdges())
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// randomGridGraph builds an r x c grid graph with pseudo-random weights.
func randomGridGraph(rng *rand.Rand, r, c int) *Graph {
	g := NewGraph(r * c)
	at := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(at(i, j), at(i, j+1), rng.Float64())
			}
			if i+1 < r {
				g.AddEdge(at(i, j), at(i+1, j), rng.Float64())
			}
		}
	}
	return g
}

// Property: after a random sequence of UpdateWeight calls, the maintained
// tree has the same total weight as a freshly computed MST.
func TestIncrementalMSTMatchesFreshKruskal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGridGraph(rng, 4+rng.Intn(4), 4+rng.Intn(4))
		tr := Kruskal(g)
		for k := 0; k < 60; k++ {
			id := rng.Intn(g.NumEdges())
			tr.UpdateWeight(id, rng.Float64()*2)
			fresh := Kruskal(g)
			if !almostEq(tr.TotalWeight(), fresh.TotalWeight()) {
				return false
			}
			if tr.NumTreeEdges() != fresh.NumTreeEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: the tree path between two random vertices is a minimax path —
// its bottleneck equals the minimal achievable bottleneck, verified with a
// threshold union-find sweep.
func TestTreePathIsMinimax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGridGraph(rng, 5, 5)
		tr := Kruskal(g)
		for k := 0; k < 20; k++ {
			u, v := rng.Intn(25), rng.Intn(25)
			if u == v {
				continue
			}
			got, ok := tr.Bottleneck(u, v)
			if !ok {
				return false // grid is connected
			}
			if !almostEq(got, minimaxBottleneck(g, u, v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// minimaxBottleneck computes the optimal bottleneck by adding edges in
// weight order until u and v join.
func minimaxBottleneck(g *Graph, u, v int) float64 {
	type we struct {
		w  float64
		id int
	}
	edges := make([]we, g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		edges[i] = we{g.Weight(i), i}
	}
	// Insertion-sort is fine at this size; avoids importing sort twice.
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j].w < edges[j-1].w; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	d := NewDSU(g.NumVertices())
	for _, e := range edges {
		ed := g.Edge(e.id)
		d.Union(ed.U, ed.V)
		if d.Same(u, v) {
			return e.w
		}
	}
	return -1
}

// Property: tree paths visit distinct vertices and consecutive entries are
// joined by tree edges.
func TestTreePathWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGridGraph(rng, 4, 6)
		tr := Kruskal(g)
		for k := 0; k < 10; k++ {
			u, v := rng.Intn(24), rng.Intn(24)
			p := tr.Path(u, v)
			if p == nil || p[0] != u || p[len(p)-1] != v {
				return false
			}
			seen := map[int]bool{}
			for _, x := range p {
				if seen[x] {
					return false
				}
				seen[x] = true
			}
			edges, ok := tr.PathEdges(u, v)
			if !ok || len(edges) != len(p)-1 {
				return false
			}
			for i, id := range edges {
				e := g.Edge(int(id))
				a, b := p[i], p[i+1]
				if !(e.U == a && e.V == b) && !(e.U == b && e.V == a) {
					return false
				}
				if !tr.Contains(int(id)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKruskal100x100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGridGraph(rng, 100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Kruskal(g)
	}
}

func BenchmarkIncrementalUpdate100x100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGridGraph(rng, 100, 100)
	tr := Kruskal(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.UpdateWeight(i%g.NumEdges(), rng.Float64())
	}
}
