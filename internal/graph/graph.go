// Package graph implements the undirected weighted graphs and minimum
// spanning trees that back RESCQ's routing data structure: Kruskal
// construction, the two incremental edge-update cases from paper section
// 5.4.1, and minimax (bottleneck) path extraction. The MST property the
// scheduler relies on is that the tree path between any two vertices is a
// minimax path: it minimizes, over all paths, the maximum edge weight
// (paper section 4.2).
package graph

import (
	"fmt"
)

// Edge is an undirected weighted edge between vertices U and V.
type Edge struct {
	U, V int
	W    float64
}

// Graph is an undirected weighted multigraph over vertices 0..N-1 with a
// stable edge index space: AddEdge returns an edge ID that remains valid for
// the lifetime of the graph, and weights can be updated in place.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]int32 // vertex -> incident edge IDs
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, adj: make([][]int32, n)}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge inserts an undirected edge and returns its ID.
func (g *Graph) AddEdge(u, v int, w float64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self loop at %d", u))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, W: w})
	g.adj[u] = append(g.adj[u], int32(id))
	g.adj[v] = append(g.adj[v], int32(id))
	return id
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Weight returns the current weight of edge id.
func (g *Graph) Weight(id int) float64 { return g.edges[id].W }

// SetWeight updates the weight of edge id without any MST maintenance; use
// Tree.UpdateWeight to keep a spanning tree consistent.
func (g *Graph) SetWeight(id int, w float64) { g.edges[id].W = w }

// Other returns the endpoint of edge id that is not v.
func (g *Graph) Other(id, v int) int {
	e := g.edges[id]
	if e.U == v {
		return e.V
	}
	return e.U
}

// IncidentEdges returns the IDs of edges incident to v (shared slice).
func (g *Graph) IncidentEdges(v int) []int32 { return g.adj[v] }

// Connected reports whether the whole vertex set forms one connected
// component (isolated vertices therefore make a non-empty graph
// disconnected).
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.adj[v] {
			u := g.Other(int(id), v)
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == g.n
}

// DSU is a disjoint-set union (union-find) with path halving and union by
// size.
type DSU struct {
	parent []int32
	size   []int32
}

// NewDSU returns a DSU over n singleton sets.
func NewDSU(n int) *DSU {
	d := &DSU{}
	d.Reset(n)
	return d
}

// Reset reinitializes the DSU to n singleton sets, reusing its storage when
// it is already large enough.
func (d *DSU) Reset(n int) {
	if cap(d.parent) >= n {
		d.parent, d.size = d.parent[:n], d.size[:n]
	} else {
		d.parent, d.size = make([]int32, n), make([]int32, n)
	}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
}

// Find returns the representative of x's set.
func (d *DSU) Find(x int) int {
	for d.parent[x] != int32(x) {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = int(d.parent[x])
	}
	return x
}

// Union merges the sets of a and b, returning false if already joined.
func (d *DSU) Union(a, b int) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = int32(ra)
	d.size[ra] += d.size[rb]
	return true
}

// Same reports whether a and b are in the same set.
func (d *DSU) Same(a, b int) bool { return d.Find(a) == d.Find(b) }

// GridGraph builds the rows x cols 4-neighbour grid graph with all edge
// weights w0 — the structure used for the section 5.4.1 MST timing
// analysis.
func GridGraph(rows, cols int, w0 float64) *Graph {
	g := NewGraph(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(at(r, c), at(r, c+1), w0)
			}
			if r+1 < rows {
				g.AddEdge(at(r, c), at(r+1, c), w0)
			}
		}
	}
	return g
}
