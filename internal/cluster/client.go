package cluster

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/fault"
)

// Failpoint names on the intra-cluster RPC paths (see internal/fault).
// Dispatch and register failures injected here exercise exactly the code
// that handles a dead or flaky peer: retry budgets, the circuit breaker,
// re-dispatch and heartbeat recovery.
const (
	// FaultDispatch fires on the coordinator side of Execute, before the
	// POST leaves the process: an injected error is indistinguishable from
	// a transport failure to the dispatch loop.
	FaultDispatch = "cluster.dispatch"
	// FaultRegister fires inside Register (worker heartbeats and the
	// initial announcement).
	FaultRegister = "cluster.register"
	// FaultExecute is checked by the worker's execute handler (in
	// internal/service): a delay stalls the batch like an overloaded
	// worker, an error turns into a 500 the coordinator must survive.
	FaultExecute = "cluster.execute"
)

// StatusError is a non-200 reply from a cluster peer. The status code is
// what lets the dispatch loop separate peer-says-no (4xx: the request
// itself is bad — a poison batch; re-sending it anywhere is useless) from
// peer-is-broken (5xx: retry on another worker).
type StatusError struct {
	URL  string
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("cluster: %s: status %d: %s", e.URL, e.Code, e.Body)
}

// Terminal reports whether the failure condemns the request rather than
// the peer: a 4xx means re-dispatching the same payload to another worker
// would fail identically.
func (e *StatusError) Terminal() bool { return e.Code >= 400 && e.Code < 500 }

// RetryableDispatch reports whether a dispatch error is worth re-trying on
// another worker. Transport errors, timeouts and 5xx replies are; a 4xx
// (the worker validated and rejected the batch itself) is not.
func RetryableDispatch(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return !se.Terminal()
	}
	return true
}

// ClientOptions tunes the intra-cluster HTTP transport. The zero value
// takes the production defaults.
type ClientOptions struct {
	// DialTimeout bounds connection establishment (default 10s): an
	// unreachable or blackholed peer fails fast instead of hanging a
	// dispatcher on connect.
	DialTimeout time.Duration
	// IdleConnTimeout is how long pooled connections stay open unused
	// (default 90s).
	IdleConnTimeout time.Duration
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.IdleConnTimeout <= 0 {
		o.IdleConnTimeout = 90 * time.Second
	}
	return o
}

// Client is the coordinator<->worker HTTP client: the coordinator uses
// Execute to dispatch batches, workers use Register to announce themselves
// and heartbeat. The zero value is not usable; build with NewClient or
// NewTunedClient.
type Client struct {
	hc *http.Client
}

// NewClient returns a client. A nil http.Client uses the default
// ClientOptions — see NewTunedClient for the rationale.
func NewClient(hc *http.Client) *Client {
	if hc == nil {
		return NewTunedClient(ClientOptions{})
	}
	return &Client{hc: hc}
}

// NewTunedClient returns a client tuned for intra-cluster traffic: no
// overall request timeout (a batch legitimately runs for as long as its
// simulations do — slow-but-alive workers are caught by the coordinator's
// per-batch deadline and liveness expiry, not a transport-level guess),
// but a bounded dial so an unreachable peer fails fast instead of hanging
// a dispatcher on connection establishment.
func NewTunedClient(opts ClientOptions) *Client {
	opts = opts.withDefaults()
	return &Client{hc: &http.Client{
		Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   opts.DialTimeout,
				KeepAlive: 15 * time.Second,
			}).DialContext,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     opts.IdleConnTimeout,
		},
	}}
}

// joinURL appends path to a base URL without doubling slashes.
func joinURL(base, path string) string {
	return strings.TrimRight(base, "/") + path
}

func (c *Client) postJSON(ctx context.Context, url string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cluster: encode request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", url, err)
	}
	// Drain whatever the handler wrote past what we read (the tail of an
	// error reply, trailing junk after a decoded document) before closing:
	// a Close on an unread body tears down the pooled connection, and under
	// a burst of error replies that churned a fresh TCP connection per
	// retry instead of reusing one.
	defer func() {
		drainBody(resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &StatusError{URL: url, Code: resp.StatusCode, Body: string(bytes.TrimSpace(msg))}
	}
	// Responses are deliberately not size-capped: they come from peers this
	// node chose to talk to, and a large batch of KeepLatencies results is
	// legitimately bigger than any request bound. Truncating one here would
	// misread a healthy worker as broken and churn it out of the registry.
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: %s: decode response: %w", url, err)
	}
	return nil
}

// Register announces (or heartbeats) a worker to the coordinator.
func (c *Client) Register(ctx context.Context, coordinatorURL string, req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	if err := fault.Check(FaultRegister); err != nil {
		return resp, err
	}
	err := c.postJSON(ctx, joinURL(coordinatorURL, RegisterPath), req, &resp)
	return resp, err
}

// Drain asks a worker to retire gracefully: it stops accepting new
// batches, finishes its in-flight ones, and deregisters from its
// coordinator once idle. Idempotent — draining an already-draining worker
// re-acknowledges.
func (c *Client) Drain(ctx context.Context, workerURL string) (DrainResponse, error) {
	var resp DrainResponse
	err := c.postJSON(ctx, joinURL(workerURL, DrainPath), struct{}{}, &resp)
	return resp, err
}

// Execute dispatches one batch to a worker and returns its results. Any
// transport error (a SIGKILLed worker resets the connection) or non-200
// status marks the batch undelivered; the caller re-dispatches it.
func (c *Client) Execute(ctx context.Context, workerURL string, req ExecuteRequest) (ExecuteResponse, error) {
	resp, _, err := c.ExecuteWith(ctx, workerURL, req, CodecJSON)
	return resp, err
}

// WireTraffic reports what one dispatch actually put on the wire: the
// codec spoken and the body bytes in each direction as transmitted (after
// compression), so the coordinator's wire metrics measure the network, not
// the pre-encoding payload.
type WireTraffic struct {
	Codec    string
	BytesOut int64
	BytesIn  int64
}

// ExecuteWith dispatches one batch in the given wire codec. The binary
// path frames the request with EncodeExecuteRequestBinary, gzips it when
// that pays, and advertises gzip for the response; CodecJSON (or anything
// unrecognized) is the plain JSON path old workers speak. The response is
// decoded by its own Content-Type, so a worker that answers a binary
// request in JSON — mid-upgrade, or a debug build — still round-trips.
func (c *Client) ExecuteWith(ctx context.Context, workerURL string, req ExecuteRequest, codec string) (ExecuteResponse, WireTraffic, error) {
	if err := fault.Check(FaultDispatch); err != nil {
		return ExecuteResponse{}, WireTraffic{}, err
	}
	var (
		payload     []byte
		contentType string
		err         error
	)
	if codec == CodecBinary {
		payload = EncodeExecuteRequestBinary(req)
		contentType = BinaryContentType
	} else {
		codec = CodecJSON
		if payload, err = json.Marshal(req); err != nil {
			return ExecuteResponse{}, WireTraffic{}, fmt.Errorf("cluster: encode request: %w", err)
		}
		contentType = "application/json"
	}
	traffic := WireTraffic{Codec: codec}
	body, gzipped := payload, false
	if codec == CodecBinary {
		body, gzipped = MaybeGzip(payload)
	}
	traffic.BytesOut = int64(len(body))
	url := joinURL(workerURL, ExecutePath)
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return ExecuteResponse{}, traffic, fmt.Errorf("cluster: %w", err)
	}
	httpReq.Header.Set("Content-Type", contentType)
	if gzipped {
		httpReq.Header.Set("Content-Encoding", "gzip")
	}
	if codec == CodecBinary {
		// Setting Accept-Encoding explicitly disables the transport's
		// transparent decompression, so the raw (compressed) response length
		// is observable for BytesIn and we gunzip ourselves below.
		httpReq.Header.Set("Accept-Encoding", "gzip")
	}
	httpResp, err := c.hc.Do(httpReq)
	if err != nil {
		return ExecuteResponse{}, traffic, fmt.Errorf("cluster: %s: %w", url, err)
	}
	defer func() {
		drainBody(httpResp.Body)
		httpResp.Body.Close()
	}()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		return ExecuteResponse{}, traffic, &StatusError{URL: url, Code: httpResp.StatusCode, Body: string(bytes.TrimSpace(msg))}
	}
	// Responses are deliberately not size-capped: they come from peers this
	// node chose to talk to, and a large batch of KeepLatencies results is
	// legitimately bigger than any request bound.
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return ExecuteResponse{}, traffic, fmt.Errorf("cluster: %s: read response: %w", url, err)
	}
	traffic.BytesIn = int64(len(raw))
	if strings.EqualFold(strings.TrimSpace(httpResp.Header.Get("Content-Encoding")), "gzip") {
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return ExecuteResponse{}, traffic, fmt.Errorf("cluster: %s: gzip response: %w", url, err)
		}
		if raw, err = io.ReadAll(zr); err != nil {
			return ExecuteResponse{}, traffic, fmt.Errorf("cluster: %s: gzip response: %w", url, err)
		}
		zr.Close()
	}
	var resp ExecuteResponse
	if ct, _, _ := strings.Cut(httpResp.Header.Get("Content-Type"), ";"); strings.TrimSpace(ct) == BinaryContentType {
		if resp, err = DecodeExecuteResponseBinary(raw); err != nil {
			return ExecuteResponse{}, traffic, fmt.Errorf("cluster: %s: decode response: %w", url, err)
		}
	} else if err := json.Unmarshal(raw, &resp); err != nil {
		return ExecuteResponse{}, traffic, fmt.Errorf("cluster: %s: decode response: %w", url, err)
	}
	if len(resp.Results) != len(req.Configs) {
		return ExecuteResponse{}, traffic, fmt.Errorf("cluster: worker returned %d results for a %d-config batch",
			len(resp.Results), len(req.Configs))
	}
	return resp, traffic, nil
}

// Backoff computes capped exponential retry delays with jitter: attempt n
// sleeps Base<<n, capped at Max, then scaled by a uniform factor in
// [0.5, 1.5) so a burst of failures (every batch of a dead worker erroring
// at once) decorrelates instead of retrying in lockstep.
type Backoff struct {
	Base time.Duration // first-retry delay (default 100ms)
	Max  time.Duration // cap before jitter (default 5s)
}

// Delay returns the sleep before retry attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// math/rand's top-level functions are safe for concurrent use; the
	// jitter is deliberately unseeded (decorrelation, not reproducibility —
	// deterministic chaos runs come from fault's seeded triggers).
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Sleep blocks for Delay(attempt) or until ctx ends, reporting whether the
// full delay elapsed (false: the caller's work was cancelled mid-backoff).
func (b Backoff) Sleep(ctx context.Context, attempt int) bool {
	t := time.NewTimer(b.Delay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Heartbeater keeps a worker registered with its coordinator: one Register
// POST immediately, then one per (jittered) interval until the context
// ends. Failures are retried Retries times within the beat with backoff,
// then again at the next beat (the coordinator may simply not be up yet);
// onError, when non-nil, observes them.
type Heartbeater struct {
	Client         *Client
	CoordinatorURL string
	Self           RegisterRequest
	Interval       time.Duration
	// Jitter spreads each beat by up to this fraction of Interval in
	// either direction (0 disables). Without it, every worker that
	// registered against the same coordinator boot heartbeats in phase —
	// and a restarted coordinator takes the whole herd's re-register
	// burst in one instant.
	Jitter float64
	// Retries is the per-beat retry budget for a failed register POST
	// (0 means one attempt per beat).
	Retries int
	// OnError observes failed heartbeats (nil ignores them).
	OnError func(error)
	// Draining, when non-nil, is sampled before each beat; true marks the
	// heartbeat as a drain announcement. Once the coordinator acks the
	// drain with Released the loop calls OnReleased (if non-nil) and exits.
	Draining func() bool
	// OnReleased observes the coordinator releasing this worker at the end
	// of a drain (nil ignores it).
	OnReleased func()
}

// jitterInterval spreads interval by ±jitter (a fraction in [0, 0.5]),
// drawing from the shared unseeded PRNG: decorrelation across workers is
// the goal, so sharing a seed would defeat it.
func jitterInterval(interval time.Duration, jitter float64) time.Duration {
	if jitter <= 0 || interval <= 0 {
		return interval
	}
	if jitter > 0.5 {
		jitter = 0.5
	}
	span := float64(interval) * jitter
	return interval + time.Duration((rand.Float64()*2-1)*span)
}

// Run blocks, heartbeating until ctx is cancelled or the coordinator
// releases a drained worker. Each register attempt gets a deadline of one
// interval, so a blackholed coordinator cannot wedge the loop: the worker
// keeps retrying at cadence and re-registers the moment the network heals.
func (h *Heartbeater) Run(ctx context.Context) {
	backoff := Backoff{Base: h.Interval / 8, Max: h.Interval}
	for {
		if h.beat(ctx, backoff) {
			if h.OnReleased != nil {
				h.OnReleased()
			}
			return
		}
		t := time.NewTimer(jitterInterval(h.Interval, h.Jitter))
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// beat performs one registration with its bounded retry budget, reporting
// whether the coordinator released this (draining) worker.
func (h *Heartbeater) beat(ctx context.Context, backoff Backoff) (released bool) {
	self := h.Self
	if h.Draining != nil && h.Draining() {
		self.Draining = true
	}
	for attempt := 0; ; attempt++ {
		call, cancel := context.WithTimeout(ctx, h.Interval)
		resp, err := h.Client.Register(call, h.CoordinatorURL, self)
		cancel()
		if err == nil || ctx.Err() != nil {
			return err == nil && resp.Released
		}
		if h.OnError != nil {
			h.OnError(err)
		}
		if attempt >= h.Retries {
			return false // budget spent; the next beat tries again
		}
		if !backoff.Sleep(ctx, attempt) {
			return false
		}
	}
}
