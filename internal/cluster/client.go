package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// Client is the coordinator<->worker HTTP client: the coordinator uses
// Execute to dispatch batches, workers use Register to announce themselves
// and heartbeat. The zero value is not usable; build with NewClient.
type Client struct {
	hc *http.Client
}

// NewClient returns a client. A nil http.Client uses a default tuned for
// intra-cluster traffic: no overall request timeout (a batch legitimately
// runs for as long as its simulations do — a slow-but-alive worker is
// detected by liveness expiry aborting the call via the lease's gone
// channel, not by a wall-clock guess), but a bounded dial so an
// unreachable or blackholed peer fails fast instead of hanging a
// dispatcher on connection establishment.
func NewClient(hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{
			Transport: &http.Transport{
				DialContext: (&net.Dialer{
					Timeout:   10 * time.Second,
					KeepAlive: 15 * time.Second,
				}).DialContext,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	return &Client{hc: hc}
}

// joinURL appends path to a base URL without doubling slashes.
func joinURL(base, path string) string {
	return strings.TrimRight(base, "/") + path
}

func (c *Client) postJSON(ctx context.Context, url string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cluster: encode request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(msg))
	}
	// Responses are deliberately not size-capped: they come from peers this
	// node chose to talk to, and a large batch of KeepLatencies results is
	// legitimately bigger than any request bound. Truncating one here would
	// misread a healthy worker as broken and churn it out of the registry.
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: %s: decode response: %w", url, err)
	}
	return nil
}

// Register announces (or heartbeats) a worker to the coordinator.
func (c *Client) Register(ctx context.Context, coordinatorURL string, req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	err := c.postJSON(ctx, joinURL(coordinatorURL, RegisterPath), req, &resp)
	return resp, err
}

// Execute dispatches one batch to a worker and returns its results. Any
// transport error (a SIGKILLed worker resets the connection) or non-200
// status marks the batch undelivered; the caller re-dispatches it.
func (c *Client) Execute(ctx context.Context, workerURL string, req ExecuteRequest) (ExecuteResponse, error) {
	var resp ExecuteResponse
	if err := c.postJSON(ctx, joinURL(workerURL, ExecutePath), req, &resp); err != nil {
		return ExecuteResponse{}, err
	}
	if len(resp.Results) != len(req.Configs) {
		return ExecuteResponse{}, fmt.Errorf("cluster: worker returned %d results for a %d-config batch",
			len(resp.Results), len(req.Configs))
	}
	return resp, nil
}

// Heartbeater keeps a worker registered with its coordinator: one Register
// POST immediately, then one per interval until the context ends. Failures
// are retried at the same cadence (the coordinator may simply not be up
// yet); onError, when non-nil, observes them.
type Heartbeater struct {
	Client         *Client
	CoordinatorURL string
	Self           RegisterRequest
	Interval       time.Duration
	// OnError observes failed heartbeats (nil ignores them).
	OnError func(error)
}

// Run blocks, heartbeating until ctx is cancelled. Each heartbeat gets a
// deadline of one interval, so a blackholed coordinator cannot wedge the
// loop: the worker keeps retrying at cadence and re-registers the moment
// the network heals.
func (h *Heartbeater) Run(ctx context.Context) {
	t := time.NewTicker(h.Interval)
	defer t.Stop()
	for {
		beat, cancel := context.WithTimeout(ctx, h.Interval)
		_, err := h.Client.Register(beat, h.CoordinatorURL, h.Self)
		cancel()
		if err != nil && h.OnError != nil && ctx.Err() == nil {
			h.OnError(err)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
