package cluster

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// ErrNoWorkers is returned by Acquire when the registry holds no live
// workers at all; the caller should fall back to executing locally rather
// than waiting for a worker that may never come.
var ErrNoWorkers = errors.New("cluster: no live workers registered")

// worker is the registry's internal record for one registered node.
type worker struct {
	id       string
	url      string
	capacity int
	lastSeen time.Time
	inflight int
	// gone is closed when the worker is removed (explicitly or by liveness
	// expiry); dispatchers watching it abort their in-flight call so the
	// batch can be re-dispatched instead of waiting on a dead socket.
	gone chan struct{}
}

// Registry tracks the coordinator's worker membership, liveness and load.
// All methods are safe for concurrent use.
//
// Dispatch policy: Acquire hands out the least-loaded live worker with a
// free in-flight slot — lowest in-flight batch count first, ties broken by
// lexicographically smallest worker id, so dispatch order is deterministic
// and testable. When every live worker is saturated, Acquire blocks until a
// slot frees, a worker (re-)registers, or ctx is cancelled.
type Registry struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers map[string]*worker
	now     nowFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{workers: make(map[string]*worker), now: time.Now}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Upsert registers a worker or refreshes its heartbeat lease, returning
// whether the worker was previously unknown. Capacity below 1 is clamped
// to 1.
func (r *Registry) Upsert(req RegisterRequest) (isNew bool) {
	capacity := req.Capacity
	if capacity < 1 {
		capacity = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[req.ID]
	if !ok {
		w = &worker{id: req.ID, gone: make(chan struct{})}
		r.workers[req.ID] = w
	}
	w.url = req.URL
	w.capacity = capacity
	w.lastSeen = r.now()
	// A new worker or a raised capacity can unblock saturated dispatchers.
	r.cond.Broadcast()
	return !ok
}

// Remove drops a worker (observed dead by a failed dispatch); its gone
// channel is closed so watchers abort. Removing an unknown id is a no-op.
func (r *Registry) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.removeLocked(id)
}

func (r *Registry) removeLocked(id string) {
	w, ok := r.workers[id]
	if !ok {
		return
	}
	close(w.gone)
	delete(r.workers, id)
	// Dispatchers blocked waiting for a slot must re-evaluate: with this
	// worker gone the registry may now be empty (local-fallback time).
	r.cond.Broadcast()
}

// ExpireDead removes every worker whose last heartbeat is older than
// maxAge, returning the expired ids (sorted, for deterministic logs).
func (r *Registry) ExpireDead(maxAge time.Duration) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := r.now().Add(-maxAge)
	var expired []string
	for id, w := range r.workers {
		if w.lastSeen.Before(cutoff) {
			expired = append(expired, id)
		}
	}
	sort.Strings(expired)
	for _, id := range expired {
		r.removeLocked(id)
	}
	return expired
}

// Len reports the number of registered workers.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.workers)
}

// Lease is one acquired dispatch slot on a worker: the coordinates to dial
// plus the release handle. Gone is closed if the worker dies while the
// lease is held.
type Lease struct {
	ID   string
	URL  string
	Gone <-chan struct{}
	r    *Registry
	w    *worker
}

// Release frees the lease's in-flight slot. Safe to call after the worker
// was removed (the slot died with it) — and only the slot's own worker
// incarnation is decremented: if the worker expired and re-registered
// while the lease was held, the fresh incarnation's accounting must not
// absorb a stale release (that would overrun its capacity).
func (l Lease) Release() {
	l.r.mu.Lock()
	defer l.r.mu.Unlock()
	if cur, ok := l.r.workers[l.ID]; ok && cur == l.w && l.w.inflight > 0 {
		l.w.inflight--
		l.r.cond.Broadcast()
	}
}

// Acquire picks the least-loaded live worker with a free in-flight slot
// and reserves one slot on it. With every worker saturated it blocks until
// a slot frees or membership changes; with no workers registered at all it
// returns ErrNoWorkers immediately (the caller falls back to local
// execution). Cancellation of ctx returns ctx.Err().
func (r *Registry) Acquire(ctx context.Context) (Lease, error) {
	// cond.Wait cannot watch a context; a per-call watcher converts the
	// cancellation into a broadcast so the wait loop re-checks ctx.
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()

	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return Lease{}, err
		}
		if len(r.workers) == 0 {
			return Lease{}, ErrNoWorkers
		}
		if w := r.pickLocked(); w != nil {
			w.inflight++
			return Lease{ID: w.id, URL: w.url, Gone: w.gone, r: r, w: w}, nil
		}
		r.cond.Wait()
	}
}

// pickLocked returns the least-loaded worker with a free slot: lowest
// in-flight count, ties broken by smallest id. Nil when all are saturated.
func (r *Registry) pickLocked() *worker {
	var best *worker
	for _, w := range r.workers {
		if w.inflight >= w.capacity {
			continue
		}
		if best == nil || w.inflight < best.inflight ||
			(w.inflight == best.inflight && w.id < best.id) {
			best = w
		}
	}
	return best
}

// Snapshot returns every registered worker's public view, sorted by id.
func (r *Registry) Snapshot() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, WorkerInfo{
			ID:       w.id,
			URL:      w.url,
			Capacity: w.capacity,
			Inflight: w.inflight,
			AgeSec:   now.Sub(w.lastSeen).Seconds(),
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
