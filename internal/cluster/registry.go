package cluster

import (
	"context"
	"errors"
	"slices"
	"sort"
	"sync"
	"time"
)

// ErrNoWorkers is returned by Acquire when the registry holds no live
// workers at all; the caller should fall back to executing locally rather
// than waiting for a worker that may never come.
var ErrNoWorkers = errors.New("cluster: no live workers registered")

// worker is the registry's internal record for one registered node.
type worker struct {
	id       string
	url      string
	capacity int
	lastSeen time.Time
	inflight int
	// codecs is what the worker advertised at registration; binary caches
	// whether CodecBinary is among them (the per-dispatch question).
	codecs []string
	binary bool
	// gone is closed when the worker is removed (explicitly or by liveness
	// expiry); dispatchers watching it abort their in-flight call so the
	// batch can be re-dispatched instead of waiting on a dead socket.
	gone chan struct{}
	// draining fences the worker from new leases while its in-flight
	// batches finish; the heartbeat that observes inflight==0 removes it.
	draining bool
	// Circuit breaker: fails counts consecutive dispatch failures; at the
	// registry's threshold the breaker opens until openUntil, after which
	// the worker is half-open — eligible for exactly one probe batch
	// (probing true while it is out) whose outcome closes or re-opens it.
	fails     int
	openUntil time.Time
	probing   bool
}

// Registry tracks the coordinator's worker membership, liveness and load.
// All methods are safe for concurrent use.
//
// Dispatch policy: Acquire hands out the least-loaded live worker with a
// free in-flight slot — lowest in-flight batch count first, ties broken by
// lexicographically smallest worker id, so dispatch order is deterministic
// and testable. When every live worker is saturated, Acquire blocks until a
// slot frees, a worker (re-)registers, or ctx is cancelled.
type Registry struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers map[string]*worker
	now     nowFunc
	// Circuit-breaker policy (see SetBreaker).
	breakerFailures int
	breakerCooldown time.Duration
}

// NewRegistry returns an empty registry with the default breaker policy
// (3 consecutive failures open a breaker for 5s).
func NewRegistry() *Registry {
	r := &Registry{
		workers:         make(map[string]*worker),
		now:             time.Now,
		breakerFailures: 3,
		breakerCooldown: 5 * time.Second,
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// SetBreaker tunes the per-worker circuit breaker: failures consecutive
// ReportFailure calls open a worker's breaker for cooldown, after which one
// half-open probe decides between closing it and re-opening it. Arguments
// below the minimums are clamped (failures to 1, cooldown to 0).
func (r *Registry) SetBreaker(failures int, cooldown time.Duration) {
	if failures < 1 {
		failures = 1
	}
	if cooldown < 0 {
		cooldown = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.breakerFailures = failures
	r.breakerCooldown = cooldown
}

// UpsertStatus reports what a registration/heartbeat did to the registry.
type UpsertStatus struct {
	// IsNew means the worker was previously unknown and has just joined.
	IsNew bool
	// Released means a draining worker is done with the coordinator: it is
	// no longer (or never was) in the registry and may stop heartbeating.
	Released bool
	// Drained means this heartbeat completed a drain — the worker was
	// removed with zero batches in flight (Released is also set).
	Drained bool
}

// Upsert registers a worker or refreshes its heartbeat lease. Capacity
// below 1 is clamped to 1.
//
// A draining heartbeat fences the worker (no new leases) and, once its
// in-flight count is zero, removes it and acks Released; an unknown
// draining worker is never (re-)registered — it is Released immediately,
// so a drain that races liveness expiry cannot resurrect the node.
func (r *Registry) Upsert(req RegisterRequest) UpsertStatus {
	capacity := req.Capacity
	if capacity < 1 {
		capacity = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[req.ID]
	if !ok {
		if req.Draining {
			return UpsertStatus{Released: true}
		}
		w = &worker{id: req.ID, gone: make(chan struct{})}
		r.workers[req.ID] = w
	}
	w.url = req.URL
	w.capacity = capacity
	w.lastSeen = r.now()
	w.codecs = req.Codecs
	w.binary = slices.Contains(req.Codecs, CodecBinary)
	// The drain flag follows the worker's announcement both ways: a worker
	// restarted after an aborted drain re-enters rotation on its first
	// non-draining heartbeat.
	w.draining = req.Draining
	if w.draining && w.inflight == 0 {
		r.removeLocked(req.ID)
		return UpsertStatus{Released: true, Drained: true}
	}
	// A new worker or a raised capacity can unblock saturated dispatchers.
	r.cond.Broadcast()
	return UpsertStatus{IsNew: !ok}
}

// Remove drops a worker (observed dead by a failed dispatch); its gone
// channel is closed so watchers abort. Removing an unknown id is a no-op.
func (r *Registry) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.removeLocked(id)
}

func (r *Registry) removeLocked(id string) {
	w, ok := r.workers[id]
	if !ok {
		return
	}
	close(w.gone)
	delete(r.workers, id)
	// Dispatchers blocked waiting for a slot must re-evaluate: with this
	// worker gone the registry may now be empty (local-fallback time).
	r.cond.Broadcast()
}

// ExpireDead removes every worker whose last heartbeat is older than
// maxAge, returning the expired ids (sorted, for deterministic logs).
func (r *Registry) ExpireDead(maxAge time.Duration) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := r.now().Add(-maxAge)
	var expired []string
	for id, w := range r.workers {
		if w.lastSeen.Before(cutoff) {
			expired = append(expired, id)
		}
	}
	sort.Strings(expired)
	for _, id := range expired {
		r.removeLocked(id)
	}
	return expired
}

// Len reports the number of registered workers.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.workers)
}

// Lease is one acquired dispatch slot on a worker: the coordinates to dial
// plus the release handle. Gone is closed if the worker dies while the
// lease is held.
type Lease struct {
	ID  string
	URL string
	// Binary reports whether the worker advertised the binary wire codec;
	// false means it must be spoken to in JSON.
	Binary bool
	Gone   <-chan struct{}
	r      *Registry
	w      *worker
}

// Release frees the lease's in-flight slot. Safe to call after the worker
// was removed (the slot died with it) — and only the slot's own worker
// incarnation is decremented: if the worker expired and re-registered
// while the lease was held, the fresh incarnation's accounting must not
// absorb a stale release (that would overrun its capacity).
func (l Lease) Release() {
	l.r.mu.Lock()
	defer l.r.mu.Unlock()
	if cur, ok := l.r.workers[l.ID]; ok && cur == l.w && l.w.inflight > 0 {
		l.w.inflight--
		// A probe released without a verdict (the dispatch was cancelled,
		// not failed) leaves the worker half-open for the next probe.
		l.w.probing = false
		l.r.cond.Broadcast()
	}
}

// ReportSuccess records a successful dispatch on the lease's worker,
// closing its circuit breaker (the consecutive-failure count resets).
func (l Lease) ReportSuccess() {
	l.r.mu.Lock()
	defer l.r.mu.Unlock()
	if cur, ok := l.r.workers[l.ID]; ok && cur == l.w {
		l.w.fails = 0
		l.w.probing = false
		l.w.openUntil = time.Time{}
		l.r.cond.Broadcast()
	}
}

// ReportFailure records a failed dispatch on the lease's worker. At the
// registry's consecutive-failure threshold the worker's breaker opens
// (re-opens, for a failed half-open probe): it takes no new batches until
// the cooldown elapses and a probe succeeds. Unlike the old
// fail-once-and-evict policy the worker stays registered — liveness expiry
// still removes nodes that stop heartbeating, but a node that is alive and
// misbehaving gets a path back. Returns whether this failure opened the
// breaker (for metrics).
func (l Lease) ReportFailure() (opened bool) {
	l.r.mu.Lock()
	defer l.r.mu.Unlock()
	cur, ok := l.r.workers[l.ID]
	if !ok || cur != l.w {
		return false
	}
	wasOpen := l.w.fails >= l.r.breakerFailures
	l.w.fails++
	l.w.probing = false
	if l.w.fails >= l.r.breakerFailures {
		l.w.openUntil = l.r.now().Add(l.r.breakerCooldown)
	}
	// Waiters must re-evaluate: this may have been the last closed worker,
	// turning their wait into an ErrNoWorkers local fallback.
	l.r.cond.Broadcast()
	return !wasOpen && l.w.fails >= l.r.breakerFailures
}

// Acquire picks the least-loaded live worker with a free in-flight slot
// and reserves one slot on it. With every worker saturated it blocks until
// a slot frees or membership changes; with no workers registered at all it
// returns ErrNoWorkers immediately (the caller falls back to local
// execution). Cancellation of ctx returns ctx.Err().
func (r *Registry) Acquire(ctx context.Context) (Lease, error) {
	// cond.Wait cannot watch a context; a per-call watcher converts the
	// cancellation into a broadcast so the wait loop re-checks ctx.
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()

	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return Lease{}, err
		}
		if len(r.workers) == 0 {
			return Lease{}, ErrNoWorkers
		}
		if l, ok := r.leaseLocked(""); ok {
			return l, nil
		}
		// Nothing pickable. Waiting only helps if some non-open worker will
		// free a slot, or an outstanding probe will resolve; with every
		// usable worker's breaker open, time (not a broadcast) is what heals
		// the registry, so fall back to local execution instead of wedging.
		if !r.waitWorthwhileLocked() {
			return Lease{}, ErrNoWorkers
		}
		r.cond.Wait()
	}
}

// TryAcquire reserves a slot like Acquire but never blocks, and skips the
// worker named exclude. It exists for hedged re-dispatch: the hedge wants a
// *different* worker right now, or nothing — blocking for one, or doubling
// down on the straggler itself, would defeat the point.
func (r *Registry) TryAcquire(exclude string) (Lease, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaseLocked(exclude)
}

// leaseLocked picks and reserves a slot, marking half-open picks as the
// worker's probe.
func (r *Registry) leaseLocked(exclude string) (Lease, bool) {
	w := r.pickLocked(exclude)
	if w == nil {
		return Lease{}, false
	}
	if w.fails >= r.breakerFailures {
		w.probing = true
	}
	w.inflight++
	return Lease{ID: w.id, URL: w.url, Binary: w.binary, Gone: w.gone, r: r, w: w}, true
}

// waitWorthwhileLocked reports whether a blocked Acquire can be unblocked
// by a broadcast: a healthy-but-saturated worker releasing a slot, or a
// half-open probe resolving.
func (r *Registry) waitWorthwhileLocked() bool {
	now := r.now()
	for _, w := range r.workers {
		if w.probing {
			return true
		}
		open := w.fails >= r.breakerFailures && now.Before(w.openUntil)
		if !open && !w.draining && w.inflight >= w.capacity {
			return true
		}
	}
	return false
}

// pickLocked returns the best dispatch target with a free slot: healthy
// workers (fewest consecutive failures) before half-open ones, then lowest
// in-flight count, ties broken by smallest id — so dispatch order stays
// deterministic and testable. Breaker-open workers and in-flight probes are
// skipped entirely. Nil when nothing is pickable.
func (r *Registry) pickLocked(exclude string) *worker {
	now := r.now()
	var best *worker
	for _, w := range r.workers {
		if w.id == exclude || w.draining || w.inflight >= w.capacity {
			continue
		}
		if w.fails >= r.breakerFailures && (w.probing || now.Before(w.openUntil)) {
			continue
		}
		if best == nil || w.fails < best.fails ||
			(w.fails == best.fails && w.inflight < best.inflight) ||
			(w.fails == best.fails && w.inflight == best.inflight && w.id < best.id) {
			best = w
		}
	}
	return best
}

// Capacity reports the cluster's live dispatch capacity: total in-flight
// slots on non-draining workers, and how many of those are currently free
// on workers whose breaker is not open (i.e. slots a lease could actually
// land on right now).
func (r *Registry) Capacity() (slots, free int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	for _, w := range r.workers {
		if w.draining {
			continue
		}
		slots += w.capacity
		if w.fails >= r.breakerFailures && (w.probing || now.Before(w.openUntil)) {
			continue
		}
		if f := w.capacity - w.inflight; f > 0 {
			free += f
		}
	}
	return slots, free
}

// Snapshot returns every registered worker's public view, sorted by id.
func (r *Registry) Snapshot() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		state := "closed"
		if w.fails >= r.breakerFailures {
			if w.probing || now.Before(w.openUntil) {
				state = "open"
			} else {
				state = "half-open"
			}
		}
		out = append(out, WorkerInfo{
			ID:       w.id,
			URL:      w.url,
			Capacity: w.capacity,
			Inflight: w.inflight,
			AgeSec:   now.Sub(w.lastSeen).Seconds(),
			Failures: w.fails,
			Breaker:  state,
			Codecs:   slices.Clone(w.codecs),
			Draining: w.draining,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
